// vppd: the characterization-as-a-service daemon, and (with --connect) a
// distributed-campaign worker.
//
//   vppd [--port N] [--port-file PATH] [--jobs N] [--rows-per-shard N]
//        [--queue-cap N] [--quota N] [--dispatchers N] [--manifest-dir DIR]
//        [--cache-max-cells N]
//   vppd --connect PORT [--worker NAME] [--jobs N] [--lease-shards N]
//        [--lease-ttl-ms N]
//
// Daemon mode binds 127.0.0.1 (never a routable interface) and serves the
// vppctl protocol: sweep/inject/replay requests scheduled through a bounded
// job queue with per-client quotas, results served from a content-addressed
// cache (see src/server/ and DESIGN.md section 9). --port 0 (the default)
// binds an ephemeral port; --port-file publishes the bound port atomically
// for child-process harnesses. --manifest-dir enables campaign checkpoint
// manifests: a daemon killed mid-sweep resumes completed shards after
// restart and the merged result is byte-identical (DESIGN.md section 10).
// --cache-max-cells bounds the result cache with LRU eviction (0 =
// unbounded). Runs until a client sends `shutdown`.
//
// Worker mode (--connect PORT) joins the campaign coordinated by the
// daemon on that loopback port and loops lease -> compute -> submit until
// the campaign completes (DESIGN.md section 11). --worker defaults to
// vppd-<pid>.
// Exit codes: 0 clean shutdown / campaign complete, 2 bad usage, 3 typed
// (startup or worker) error.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "server/server.hpp"
#include "server/worker.hpp"

namespace {

using namespace vppstudy;

std::map<std::string, std::string> parse_flags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "vppd: unexpected argument '%s'\n", argv[i]);
      std::exit(2);
    }
    std::string name(argv[i] + 2);
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      flags.insert_or_assign(std::move(name), std::string("1"));
    } else {
      flags.insert_or_assign(std::move(name), std::string(argv[i + 1]));
      ++i;
    }
  }
  return flags;
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

}  // namespace

namespace {

int run_worker(const std::map<std::string, std::string>& flags) {
  server::CampaignWorker::Options options;
  options.port = static_cast<std::uint16_t>(
      std::atoi(flag_or(flags, "connect", "0").c_str()));
  if (options.port == 0) {
    std::fprintf(stderr, "vppd: --connect needs a port\n");
    return 2;
  }
  options.worker_id = flag_or(flags, "worker", "");
  if (options.worker_id.empty()) {
    options.worker_id = "vppd-" + std::to_string(::getpid());
  }
  options.jobs = std::atoi(flag_or(flags, "jobs", "1").c_str());
  options.lease_shards = static_cast<std::uint64_t>(
      std::atoll(flag_or(flags, "lease-shards", "4").c_str()));
  options.ttl_ms = std::atoll(flag_or(flags, "lease-ttl-ms", "30000").c_str());
  if (options.ttl_ms <= 0) {
    std::fprintf(stderr, "vppd: --lease-ttl-ms must be positive\n");
    return 2;
  }
  auto summary = server::CampaignWorker::run(options);
  if (!summary) {
    std::fprintf(stderr, "vppd: worker %s: %s\n", options.worker_id.c_str(),
                 summary.error().to_string().c_str());
    return 3;
  }
  std::printf(
      "vppd worker %s done: %llu shard(s) over %llu lease(s), "
      "%llu duplicate(s), %llu dropped batch(es)\n",
      options.worker_id.c_str(),
      static_cast<unsigned long long>(summary->shards),
      static_cast<unsigned long long>(summary->leases),
      static_cast<unsigned long long>(summary->duplicates),
      static_cast<unsigned long long>(summary->dropped));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv);
  if (flags.count("connect") != 0) return run_worker(flags);
  server::DaemonOptions options;
  options.config.port = static_cast<std::uint16_t>(
      std::atoi(flag_or(flags, "port", "0").c_str()));
  options.port_file = flag_or(flags, "port-file", "");
  options.config.service.jobs =
      std::atoi(flag_or(flags, "jobs", "0").c_str());
  options.config.service.rows_per_shard = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "rows-per-shard", "4").c_str()));
  options.config.service.manifest_dir = flag_or(flags, "manifest-dir", "");
  options.config.service.cache_max_cells = static_cast<std::uint64_t>(
      std::atoll(flag_or(flags, "cache-max-cells", "0").c_str()));
  options.config.queue.capacity = static_cast<std::size_t>(
      std::atoll(flag_or(flags, "queue-cap", "16").c_str()));
  options.config.queue.per_client_quota = static_cast<std::size_t>(
      std::atoll(flag_or(flags, "quota", "8").c_str()));
  options.config.queue.dispatchers = static_cast<unsigned>(
      std::atoi(flag_or(flags, "dispatchers", "2").c_str()));
  return server::run_daemon(options);
}
