#!/usr/bin/env python3
"""CI perf gate over vppstudy bench snapshots.

Snapshots are the ``vppstudy-bench-perf/1`` JSON files the bench binaries
write (``{"benchmarks": [{"name": ..., "ns_per_op": ...}, ...]}``). A name
can appear several times in one snapshot -- ``--benchmark_repetitions=N``
emits one entry per repetition, and ``BM_StudySweep``'s hardware-concurrency
argument can collide with a fixed argument on small runners -- so every
consumer here first reduces a name's samples to their median, which is what
makes the gate stable on shared CI runners.

Subcommands:
  compare BASELINE CURRENT  Gate median ns/op against the checked-in
                            baseline: any benchmark whose ratio exceeds the
                            threshold (default 1.15) fails the job, unless
                            advisory mode is on (--advisory, or a non-empty
                            $PERF_ADVISORY -- the workflow sets it from the
                            `perf-regression-ok` PR label). Always renders
                            the full delta table, and appends it to
                            $GITHUB_STEP_SUMMARY when that is set.
  scaling CURRENT           Parallel-scaling smoke: the jobs=2 study sweep
                            must not be slower than jobs=1 (the whole point
                            of sharded jobs). Fails when the wall-time ratio
                            exceeds --tolerance (default 1.0).
  self-test                 Unit check for the gate itself: a synthetic >15%
                            regression must trip `compare`, a borderline one
                            must not, and `scaling` must cut both ways.
                            Run in CI so a broken gate cannot pass silently.
"""

import argparse
import json
import os
import statistics
import sys

DEFAULT_THRESHOLD = 1.15
SCALING_BASE = "BM_StudySweep/1/process_time/real_time"
SCALING_TEST = "BM_StudySweep/2/process_time/real_time"


def load_medians(path):
    """name -> median ns_per_op across all samples of that name."""
    with open(path) as f:
        data = json.load(f)
    samples = {}
    for bench in data.get("benchmarks", []):
        samples.setdefault(bench["name"], []).append(float(bench["ns_per_op"]))
    return {name: statistics.median(vals) for name, vals in samples.items()}


def compare_medians(base, current, threshold):
    """Return (table_lines, regressions) for current vs base medians."""
    lines = [
        "| benchmark | baseline ns/op | current ns/op | ratio |",
        "|---|---:|---:|---:|",
    ]
    regressions = []
    for name in sorted(current):
        ns = current[name]
        ref = base.get(name)
        if ref is None:
            lines.append(f"| {name} | (new) | {ns:,.1f} | - |")
            continue
        ratio = ns / ref if ref > 0 else float("inf")
        flag = " :x:" if ratio > threshold else ""
        lines.append(f"| {name} | {ref:,.1f} | {ns:,.1f} | {ratio:.2f}x{flag} |")
        if ratio > threshold:
            regressions.append((name, ratio))
    for name in sorted(set(base) - set(current)):
        lines.append(f"| {name} | {base[name]:,.1f} | (missing) | - |")
    return lines, regressions


def append_step_summary(text):
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if path:
        with open(path, "a") as f:
            f.write(text)


def advisory_requested(args):
    if getattr(args, "advisory", False):
        return True
    env = os.environ.get("PERF_ADVISORY", "")
    return env not in ("", "0", "false")


def missing_required(current, prefixes):
    """Required prefixes with no matching benchmark name in the snapshot."""
    return [
        p
        for p in prefixes
        if not any(name.startswith(p) for name in current)
    ]


def cmd_compare(args):
    base = load_medians(args.baseline)
    current = load_medians(args.current)
    # A benchmark the baseline lists but the run filter dropped shows up as
    # "(missing)" in the table without failing; --require turns absence of a
    # named family into a hard error so a filter typo cannot un-gate it.
    absent = missing_required(current, getattr(args, "require", None) or [])
    if absent:
        for prefix in absent:
            print(
                f"::error::required benchmark '{prefix}' is absent from "
                f"{args.current} -- check the --benchmark_filter"
            )
        return 2
    table, regressions = compare_medians(base, current, args.threshold)
    advisory = advisory_requested(args)
    mode = "advisory (perf-regression-ok)" if advisory else "gating"
    header = (
        f"## perf gate: median ns/op vs baseline "
        f"({mode}, threshold {args.threshold:.2f}x)"
    )
    lines = [header, ""] + table
    if regressions:
        lines.append("")
        lines.append(
            f"Regressions (> {args.threshold:.2f}x): "
            + ", ".join(f"{n} ({r:.2f}x)" for n, r in regressions)
        )
    summary = "\n".join(lines) + "\n"
    print(summary)
    append_step_summary(summary)
    for name, ratio in regressions:
        level = "warning" if advisory else "error"
        print(f"::{level}::{name} is {ratio:.2f}x the baseline median ns/op")
    if regressions and not advisory:
        print(
            "perf gate FAILED; refresh bench/BENCH_baseline.json if the "
            "regression is intentional, or apply the perf-regression-ok label"
        )
        return 1
    return 0


def cmd_scaling(args):
    medians = load_medians(args.current)
    base = medians.get(args.base)
    test = medians.get(args.test)
    if base is None or test is None:
        print(
            f"::error::scaling smoke needs both '{args.base}' and "
            f"'{args.test}' in {args.current}; found {sorted(medians)}"
        )
        return 2
    ratio = test / base if base > 0 else float("inf")
    verdict = "ok" if ratio <= args.tolerance else "FAILED"
    summary = (
        f"## scaling smoke: jobs=2 vs jobs=1 ({verdict})\n\n"
        f"| run | median wall ns/op |\n|---|---:|\n"
        f"| {args.base} | {base:,.1f} |\n"
        f"| {args.test} | {test:,.1f} |\n\n"
        f"jobs=2 / jobs=1 = {ratio:.3f}x (tolerance {args.tolerance:.2f}x)\n"
    )
    print(summary)
    append_step_summary(summary)
    if ratio > args.tolerance:
        print(
            f"::error::jobs=2 sweep is {ratio:.2f}x the jobs=1 wall time -- "
            "the parallel engine is not scaling"
        )
        return 1
    return 0


def cmd_self_test(_args):
    """The gate must trip on a synthetic regression and stay quiet otherwise."""
    base = {"BM_A": 100.0, "BM_B": 200.0}
    # 1.20x on BM_A: must be flagged at the 1.15 threshold.
    _, regressions = compare_medians(base, {"BM_A": 120.0, "BM_B": 200.0}, 1.15)
    if [name for name, _ in regressions] != ["BM_A"]:
        print(f"self-test FAILED: 1.20x regression not flagged: {regressions}")
        return 1
    # 1.10x on both: inside the threshold, must pass.
    _, regressions = compare_medians(base, {"BM_A": 110.0, "BM_B": 220.0}, 1.15)
    if regressions:
        print(f"self-test FAILED: 1.10x wrongly flagged: {regressions}")
        return 1
    # --require: a present prefix passes, an absent one must be reported.
    current = {"BM_FuzzGeneration/8": 100.0, "BM_A": 100.0}
    if missing_required(current, ["BM_FuzzGeneration", "BM_A"]):
        print("self-test FAILED: present prefixes reported missing")
        return 1
    if missing_required(current, ["BM_StudySweep"]) != ["BM_StudySweep"]:
        print("self-test FAILED: absent prefix not reported")
        return 1
    # Median reduction: {90, 300, 100} -> 100, not the 163 mean.
    import tempfile

    snapshot = {
        "schema": "vppstudy-bench-perf/1",
        "benchmarks": [
            {"name": "BM_A", "ns_per_op": 90.0},
            {"name": "BM_A", "ns_per_op": 300.0},
            {"name": "BM_A", "ns_per_op": 100.0},
            {"name": SCALING_BASE, "ns_per_op": 1000.0},
            {"name": SCALING_TEST, "ns_per_op": 600.0},
        ],
    }
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        json.dump(snapshot, f)
        path = f.name
    saved_summary = os.environ.pop("GITHUB_STEP_SUMMARY", None)
    try:
        medians = load_medians(path)
        if medians["BM_A"] != 100.0:
            print(f"self-test FAILED: median wrong: {medians['BM_A']}")
            return 1
        # Scaling: 0.6x passes, and an inverted (regressing) pair must fail.
        ns = argparse.Namespace(
            current=path, base=SCALING_BASE, test=SCALING_TEST, tolerance=1.0
        )
        if cmd_scaling(ns) != 0:
            print("self-test FAILED: 0.6x scaling wrongly rejected")
            return 1
        ns_bad = argparse.Namespace(
            current=path, base=SCALING_TEST, test=SCALING_BASE, tolerance=1.0
        )
        if cmd_scaling(ns_bad) == 0:
            print("self-test FAILED: inverted scaling not rejected")
            return 1
    finally:
        os.unlink(path)
        if saved_summary is not None:
            os.environ["GITHUB_STEP_SUMMARY"] = saved_summary
    print("perf gate self-test passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="gate current snapshot vs baseline")
    p.add_argument("baseline")
    p.add_argument("current")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    p.add_argument("--advisory", action="store_true")
    p.add_argument(
        "--require",
        action="append",
        metavar="PREFIX",
        help="fail (exit 2) unless CURRENT has a benchmark with this "
        "name prefix; repeatable",
    )
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("scaling", help="jobs=2 must not be slower than jobs=1")
    p.add_argument("current")
    p.add_argument("--base", default=SCALING_BASE)
    p.add_argument("--test", default=SCALING_TEST)
    p.add_argument("--tolerance", type=float, default=1.0)
    p.set_defaults(func=cmd_scaling)

    p = sub.add_parser("self-test", help="unit check of the gate logic")
    p.set_defaults(func=cmd_self_test)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
