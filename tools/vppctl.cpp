// vppctl: command-line front end to the characterization stack.
//
//   vppctl list
//       Print the module catalog (Table 3 anchors).
//   vppctl hammer  --module B3 [--vpp 1.8] [--row 1500] [--hc 300000]
//                  [--counters] [--trace [N]]
//       Double-sided hammer one row and report BER + HCfirst.
//       --counters prints the rig session's command counts; --trace prints
//       the last N commands the rig issued (default 32).
//   vppctl sweep   --module B3 --test rowhammer|trcd|retention
//                  [--rows 16] [--step 0.2] [--seed 0] [--csv out.csv]
//                  [--counters] [--connect PORT]
//       Run a full VPP sweep and print (or export) the series. --counters
//       prints the aggregated instrumentation of every rig session the
//       sweep ran; --csv additionally writes the same instrumentation as a
//       machine-readable JSON sidecar at <out.csv>.json. --connect PORT
//       sends the sweep to a vppd daemon on 127.0.0.1:PORT instead of
//       running it in-process: same numbers, byte-identical CSV, but no
//       instrumentation sidecar (a cached response ran no rig sessions).
//       Exit 0 on success, 3 on a typed error (local or remote).
//   vppctl profile --module B6 [--vpp 1.7] [--rows 128]
//       REAPER-style retention profile at a VPP level.
//   vppctl inject  --faults "seed=7;drop_act=0.001;spurious@5000"
//                  [--modules B3,A0] [--rows 8] [--retries 3] [--seed 1]
//                  [--trace-cap 4096] [--csv out.csv] [--dump-dir DIR]
//       Run a fault-injected RowHammer campaign under the harness retry
//       policy. Deterministic: the same invocation produces the same
//       quarantine set and byte-identical --csv/JSON exports. --dump-dir
//       writes a replayable trace dump per quarantined module. Exit 0 when
//       the campaign ran (quarantines included), 3 on a typed error.
//   vppctl replay  <dump.json> [--verbose] [--connect PORT]
//       Feed a captured trace dump through a fresh session and check that
//       it reproduces the recorded outcome. Exit 0 when reproduced, 4 when
//       the replay diverged, 3 on a typed error. --connect ships the dump
//       text to a vppd daemon and replays there.
//   vppctl serve   [--port N] [--port-file PATH] [--jobs N]
//                  [--rows-per-shard N] [--queue-cap N] [--quota N]
//                  [--dispatchers N] [--manifest-dir DIR]
//       Run the vppd daemon in-process (same server as tools/vppd): serves
//       sweep/inject/replay over the length-prefixed JSON protocol with a
//       content-addressed result cache. Runs until a client sends
//       `shutdown`. Exit 0 on clean shutdown, 3 on a startup error.
//   vppctl campaign run    [--manifest PATH] --module B3 [--modules B3,A0]
//                          [--test rowhammer|trcd|retention] [--rows 16]
//                          [--step 0.2] [--temps 50,65,80]
//                          [--hammer-counts 150000,300000] [--on-times 45,90]
//                          [--seed 0] [--jobs 1] [--rows-per-shard 4]
//                          [--max-shards N] [--csv out.csv] [--json out.json]
//   vppctl campaign resume --manifest PATH [--jobs N] [--max-shards N]
//                          [--csv out.csv] [--json out.json]
//   vppctl campaign status --manifest PATH
//   vppctl campaign distribute --manifest PATH [--workers N]
//                          [--port N] [--port-file PATH]
//                          [--lease-shards N] [--lease-ttl-ms N]
//                          [plus every `campaign run` plan flag]
//                          [--csv out.csv] [--json out.json]
//       Multi-axis characterization campaigns through core::CampaignEngine.
//       `run` compiles the flags into a CampaignPlan (VPP levels x optional
//       temperature / hammer-count / on-time axes), executes it, and prints
//       one grid summary per module; --csv/--json export the full grid
//       (per-module suffixed files when more than one module). With
//       --manifest, completed shards are checkpointed so a killed campaign
//       is resumable; --max-shards bounds fresh shard computations per
//       invocation (incremental fill-in). `resume` reconstructs the plan
//       from the manifest alone and continues it -- the merged result is
//       byte-identical to an uninterrupted run. `status` prints checkpoint
//       progress without running anything; when a lease ledger sits beside
//       the manifest (a distributed campaign) it also prints shard lease
//       state and per-worker leased/completed/expired counts. Exit 0 on
//       success (a completed campaign; for `status`, a readable manifest),
//       2 on usage errors, 3 on typed errors -- including the deliberate
//       kCancelled of an exhausted --max-shards budget, which leaves a
//       resumable manifest behind.
//       `distribute` runs the same plan across N workers (DESIGN.md section
//       11): it compiles the canonical shard grid, opens a coordinator on a
//       loopback daemon, and leases disjoint shard subsets to workers with
//       fencing tokens and lease expiry recorded in <manifest>.leases.json.
//       --workers N (default 2) runs N in-process workers; --workers 0
//       publishes the port (--port/--port-file) and waits for external
//       `vppd --connect` workers instead. Completed shard records stream
//       back over the lease/submit protocol and merge in canonical order,
//       so the final --csv/--json is byte-identical to a single-host run.
//       Exit 0 when the campaign completed, 2 on usage errors, 3 on typed
//       errors (including any worker's fatal error).
//
//   --connect PORT is also accepted by inject. Remote inject does not
//   support --csv or --dump-dir (the artifacts would land on the daemon's
//   filesystem); requesting them remotely is a usage error (exit 3).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chips/module_db.hpp"
#include "common/csv.hpp"
#include "common/units.hpp"
#include "core/campaign.hpp"
#include "core/campaign_lease.hpp"
#include "core/export.hpp"
#include "core/fuzz_campaign.hpp"
#include "core/resilient_study.hpp"
#include "core/study.hpp"
#include "harness/rowhammer_test.hpp"
#include "harness/wcdp.hpp"
#include "memctrl/retention_profiler.hpp"
#include "server/client.hpp"
#include "server/coordinator.hpp"
#include "server/server.hpp"
#include "server/worker.hpp"
#include "softmc/fault_injector.hpp"
#include "softmc/trace_dump.hpp"
#include "softmc/trace_replayer.hpp"

namespace {

using namespace vppstudy;

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) break;
    std::string name(argv[i] + 2);
    // A flag followed by another flag (or by nothing) is boolean.
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      flags.insert_or_assign(std::move(name), std::string("1"));
    } else {
      flags.insert_or_assign(std::move(name), std::string(argv[i + 1]));
      ++i;
    }
  }
  return flags;
}

bool has_flag(const std::map<std::string, std::string>& flags,
              const std::string& key) {
  return flags.find(key) != flags.end();
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int cmd_list() {
  std::printf("%-4s %-26s %-6s %6s %6s %9s %10s %6s %8s\n", "name", "model",
              "mfr", "chips", "Gbit", "HCfirst", "BER@300K", "VPPmin",
              "VPP_rec");
  for (const auto& p : chips::all_profiles()) {
    std::printf("%-4s %-26s %-6c %6d %6d %9.0f %10.2e %6.1f %8.1f\n",
                p.name.c_str(), p.dimm_model.c_str(),
                dram::manufacturer_letter(p.mfr), p.num_chips, p.density_gbit,
                p.hc_first_nominal, p.ber_nominal, p.vppmin_v, p.vpp_rec_v);
  }
  return 0;
}

int cmd_hammer(const std::map<std::string, std::string>& flags) {
  const auto profile = chips::profile_by_name(flag_or(flags, "module", "B3"));
  if (!profile) {
    std::fprintf(stderr, "unknown module\n");
    return 1;
  }
  const double vpp = std::atof(flag_or(flags, "vpp", "2.5").c_str());
  const auto row =
      static_cast<std::uint32_t>(std::atoi(flag_or(flags, "row", "1500").c_str()));
  const auto hc = static_cast<std::uint64_t>(
      std::atoll(flag_or(flags, "hc", "300000").c_str()));

  softmc::Session session(*profile);
  session.set_auto_refresh(false);
  if (has_flag(flags, "trace")) {
    const int cap = std::atoi(flag_or(flags, "trace", "1").c_str());
    session.enable_trace(cap > 1 ? static_cast<std::size_t>(cap) : 32);
  }
  if (auto st = session.set_vpp(vpp); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.error().to_string().c_str());
    return 1;
  }
  auto wcdp = harness::find_wcdp_hammer(session, 0, row);
  if (!wcdp) {
    std::fprintf(stderr, "%s\n", wcdp.error().to_string().c_str());
    return 1;
  }
  harness::RowHammerConfig cfg;
  cfg.num_iterations = 1;
  cfg.ber_hc = hc;
  harness::RowHammerTest test(session, cfg);
  auto result = test.test_row(0, row, *wcdp);
  if (!result) {
    std::fprintf(stderr, "%s\n", result.error().to_string().c_str());
    return 1;
  }
  std::printf("module %s row %u at VPP=%.2fV (WCDP %s):\n",
              profile->name.c_str(), row, vpp,
              std::string(dram::pattern_name(*wcdp)).c_str());
  std::printf("  HCfirst = %llu\n",
              static_cast<unsigned long long>(result->hc_first));
  std::printf("  BER at HC=%llu: %.4e\n", static_cast<unsigned long long>(hc),
              result->ber);
  if (has_flag(flags, "counters")) {
    std::printf("  counters: %s\n", session.counters().summary().c_str());
  }
  if (const auto* trace = session.trace()) {
    std::printf("  last %zu of %llu commands:\n", trace->entries().size(),
                static_cast<unsigned long long>(trace->total_recorded()));
    for (const auto& entry : trace->entries()) {
      std::printf("    %s\n", entry.to_string().c_str());
    }
  }
  return 0;
}

server::SweepRequest sweep_request_from_flags(
    const std::map<std::string, std::string>& flags) {
  server::SweepRequest request;
  request.module = flag_or(flags, "module", "B3");
  request.test = flag_or(flags, "test", "rowhammer");
  request.rows = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "rows", "16").c_str()));
  request.step = std::atof(flag_or(flags, "step", "0.2").c_str());
  request.seed = static_cast<std::uint64_t>(
      std::strtoull(flag_or(flags, "seed", "0").c_str(), nullptr, 10));
  return request;
}

// The render helpers below are shared by the in-process and --connect paths
// so both produce the same table and byte-identical CSV. `sidecar` is false
// for remote results: a cached response ran no rig sessions, so there is no
// meaningful instrumentation to write.
int render_hammer_sweep(const core::ModuleSweepResult& sweep,
                        const std::string& csv_path, bool sidecar) {
  common::CsvWriter csv({"vpp_v", "min_hc_first", "max_ber"});
  std::printf("%-8s %12s %12s\n", "VPP[V]", "minHCfirst", "maxBER");
  for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
    std::printf("%-8.2f %12llu %12.4e\n", sweep.vpp_levels[l],
                static_cast<unsigned long long>(sweep.min_hc_first_at(l)),
                sweep.max_ber_at(l));
    csv.begin_row();
    csv.add(sweep.vpp_levels[l]);
    csv.add(static_cast<std::uint64_t>(sweep.min_hc_first_at(l)));
    csv.add(sweep.max_ber_at(l));
  }
  if (!csv_path.empty()) {
    if (!csv.write_file(csv_path)) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 3;
    }
    if (sidecar && !core::write_instrumentation_sidecar(
                       csv_path, core::instrumentation_json(sweep))) {
      std::fprintf(stderr, "cannot write %s.json\n", csv_path.c_str());
      return 3;
    }
  }
  return 0;
}

int render_trcd_sweep(const core::TrcdSweepResult& sweep,
                      const std::string& csv_path, bool sidecar) {
  common::CsvWriter csv({"vpp_v", "trcd_min_ns"});
  std::printf("%-8s %12s\n", "VPP[V]", "tRCDmin[ns]");
  for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
    std::printf("%-8.2f %12.1f\n", sweep.vpp_levels[l], sweep.trcd_min_ns[l]);
    csv.begin_row();
    csv.add(sweep.vpp_levels[l]);
    csv.add(sweep.trcd_min_ns[l]);
  }
  if (!csv_path.empty()) {
    if (!csv.write_file(csv_path)) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 3;
    }
    if (sidecar && !core::write_instrumentation_sidecar(
                       csv_path, core::instrumentation_json(sweep))) {
      std::fprintf(stderr, "cannot write %s.json\n", csv_path.c_str());
      return 3;
    }
  }
  return 0;
}

int render_retention_sweep(const core::RetentionSweepResult& sweep,
                           const std::string& csv_path, bool sidecar) {
  common::CsvWriter csv({"vpp_v", "trefw_ms", "mean_ber"});
  std::printf("%-8s %10s %12s\n", "VPP[V]", "tREFW[ms]", "meanBER");
  for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
    for (std::size_t w = 0; w < sweep.trefw_ms.size(); ++w) {
      std::printf("%-8.2f %10.0f %12.4e\n", sweep.vpp_levels[l],
                  sweep.trefw_ms[w], sweep.mean_ber[l][w]);
      csv.begin_row();
      csv.add(sweep.vpp_levels[l]);
      csv.add(sweep.trefw_ms[w]);
      csv.add(sweep.mean_ber[l][w]);
    }
  }
  if (!csv_path.empty()) {
    if (!csv.write_file(csv_path)) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 3;
    }
    if (sidecar && !core::write_instrumentation_sidecar(
                       csv_path, core::instrumentation_json(sweep))) {
      std::fprintf(stderr, "cannot write %s.json\n", csv_path.c_str());
      return 3;
    }
  }
  return 0;
}

int cmd_sweep_remote(const server::SweepRequest& request, std::uint16_t port,
                     const std::string& csv_path) {
  auto client = server::Client::connect(port);
  if (!client) {
    std::fprintf(stderr, "%s\n", client.error().to_string().c_str());
    return 3;
  }
  auto response = client->sweep(request);
  if (!response) {
    std::fprintf(stderr, "%s\n", response.error().to_string().c_str());
    return 3;
  }
  std::printf("vppd: %llu cells from cache, %llu computed\n",
              static_cast<unsigned long long>(response->stats.cache_hits),
              static_cast<unsigned long long>(response->stats.cache_misses));
  const std::string kind = response->result.string_or("kind", "");
  if (kind == "rowhammer") {
    auto sweep = server::hammer_sweep_from_json(response->result);
    if (!sweep) {
      std::fprintf(stderr, "%s\n", sweep.error().to_string().c_str());
      return 3;
    }
    return render_hammer_sweep(*sweep, csv_path, /*sidecar=*/false);
  }
  if (kind == "trcd") {
    auto sweep = server::trcd_sweep_from_json(response->result);
    if (!sweep) {
      std::fprintf(stderr, "%s\n", sweep.error().to_string().c_str());
      return 3;
    }
    return render_trcd_sweep(*sweep, csv_path, /*sidecar=*/false);
  }
  if (kind == "retention") {
    auto sweep = server::retention_sweep_from_json(response->result);
    if (!sweep) {
      std::fprintf(stderr, "%s\n", sweep.error().to_string().c_str());
      return 3;
    }
    return render_retention_sweep(*sweep, csv_path, /*sidecar=*/false);
  }
  std::fprintf(stderr, "vppd returned unknown result kind '%s'\n",
               kind.c_str());
  return 3;
}

int cmd_sweep(const std::map<std::string, std::string>& flags) {
  const server::SweepRequest request = sweep_request_from_flags(flags);
  const std::string csv_path = flag_or(flags, "csv", "");
  const std::string connect = flag_or(flags, "connect", "");
  if (!connect.empty()) {
    return cmd_sweep_remote(
        request, static_cast<std::uint16_t>(std::atoi(connect.c_str())),
        csv_path);
  }

  const auto profile = chips::profile_by_name(request.module);
  if (!profile) {
    std::fprintf(stderr, "unknown module\n");
    return 1;
  }
  // The same config builder the daemon uses, so a remote sweep is the same
  // sweep (VPP levels quantized to the supply's millivolt grid included).
  const core::SweepConfig cfg = server::sweep_config_from_request(request);

  core::Study study(*profile);
  if (request.test == "rowhammer") {
    auto sweep = study.rowhammer_sweep(cfg);
    if (!sweep) {
      std::fprintf(stderr, "%s\n", sweep.error().to_string().c_str());
      return 1;
    }
    if (has_flag(flags, "counters")) {
      std::printf("instrumentation: %s\n",
                  sweep->instrumentation.summary().c_str());
    }
    return render_hammer_sweep(*sweep, csv_path, /*sidecar=*/true);
  }
  if (request.test == "trcd") {
    auto sweep = study.trcd_sweep(cfg);
    if (!sweep) {
      std::fprintf(stderr, "%s\n", sweep.error().to_string().c_str());
      return 1;
    }
    if (has_flag(flags, "counters")) {
      std::printf("instrumentation: %s\n",
                  sweep->instrumentation.summary().c_str());
    }
    return render_trcd_sweep(*sweep, csv_path, /*sidecar=*/true);
  }
  if (request.test == "retention") {
    auto sweep = study.retention_sweep(cfg);
    if (!sweep) {
      std::fprintf(stderr, "%s\n", sweep.error().to_string().c_str());
      return 1;
    }
    if (has_flag(flags, "counters")) {
      std::printf("instrumentation: %s\n",
                  sweep->instrumentation.summary().c_str());
    }
    return render_retention_sweep(*sweep, csv_path, /*sidecar=*/true);
  }
  std::fprintf(stderr, "unknown --test '%s'\n", request.test.c_str());
  return 1;
}

int cmd_profile(const std::map<std::string, std::string>& flags) {
  const auto profile = chips::profile_by_name(flag_or(flags, "module", "B6"));
  if (!profile) {
    std::fprintf(stderr, "unknown module\n");
    return 1;
  }
  const double vpp =
      std::atof(flag_or(flags, "vpp", std::to_string(profile->vppmin_v))
                    .c_str());
  const auto rows =
      static_cast<std::uint32_t>(std::atoi(flag_or(flags, "rows", "128").c_str()));

  softmc::Session session(*profile);
  session.set_auto_refresh(false);
  if (auto st = session.set_temperature(common::kRetentionTestTempC); !st.ok())
    return 1;
  if (auto st = session.set_vpp(vpp); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.error().to_string().c_str());
    return 1;
  }
  memctrl::ProfilerOptions opts;
  opts.row_count = rows;
  auto prof = memctrl::profile_retention(session, opts);
  if (!prof) {
    std::fprintf(stderr, "%s\n", prof.error().to_string().c_str());
    return 1;
  }
  std::printf("module %s at VPP=%.2fV, 80C: %zu of %u rows need 2x refresh "
              "(%.1f%%)\n",
              profile->name.c_str(), vpp, prof->weak_rows.size(),
              prof->rows_scanned, 100.0 * prof->weak_fraction());
  for (const auto& addr : prof->weak_rows) {
    std::printf("  bank %u row %u\n", addr.bank, addr.row);
  }
  return 0;
}

int cmd_inject_remote(const std::map<std::string, std::string>& flags,
                      std::uint16_t port) {
  if (has_flag(flags, "csv") || has_flag(flags, "dump-dir")) {
    std::fprintf(stderr,
                 "--csv/--dump-dir are not supported with --connect (the "
                 "artifacts would land on the daemon's filesystem)\n");
    return 3;
  }
  server::InjectRequest request;
  request.faults = flag_or(flags, "faults", "seed=1");
  request.modules.clear();
  const std::string names =
      flag_or(flags, "modules", flag_or(flags, "module", "B3"));
  for (std::size_t pos = 0; pos <= names.size();) {
    const std::size_t end = std::min(names.find(',', pos), names.size());
    std::string name = names.substr(pos, end - pos);
    pos = end + 1;
    if (!name.empty()) request.modules.push_back(std::move(name));
  }
  request.rows = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "rows", "8").c_str()));
  request.retries = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "retries", "3").c_str()));
  request.seed = static_cast<std::uint64_t>(
      std::strtoull(flag_or(flags, "seed", "1").c_str(), nullptr, 10));
  request.trace_cap = static_cast<std::uint64_t>(
      std::atoll(flag_or(flags, "trace-cap", "4096").c_str()));

  auto client = server::Client::connect(port);
  if (!client) {
    std::fprintf(stderr, "%s\n", client.error().to_string().c_str());
    return 3;
  }
  auto result = client->inject(request);
  if (!result) {
    std::fprintf(stderr, "%s\n", result.error().to_string().c_str());
    return 3;
  }
  std::size_t total = 0;
  if (const common::JsonValue* modules = result->find("modules")) {
    total = modules->items().size();
    for (const auto& m : modules->items()) {
      std::printf("%-4s %-11s attempts=%llu injected=%llu",
                  m.string_or("module", "?").c_str(),
                  m.bool_or("completed", false) ? "completed" : "quarantined",
                  static_cast<unsigned long long>(m.uint_or("attempts", 0)),
                  static_cast<unsigned long long>(m.uint_or("injected", 0)));
      if (!m.bool_or("completed", false)) {
        std::printf("  %s", m.string_or("error", "").c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("completed %llu/%zu modules, HCfirst CV (completed only) = "
              "%.4f\n",
              static_cast<unsigned long long>(result->uint_or("completed", 0)),
              total, result->number_or("hc_first_cv", 0.0));
  return 0;
}

int cmd_inject(const std::map<std::string, std::string>& flags) {
  // Typed-error exit code contract (asserted by the replay-fuzz CI job):
  // 0 = campaign ran to completion (quarantined modules included),
  // 3 = typed error (bad spec, unknown module, export I/O failure).
  const std::string connect = flag_or(flags, "connect", "");
  if (!connect.empty()) {
    return cmd_inject_remote(
        flags, static_cast<std::uint16_t>(std::atoi(connect.c_str())));
  }
  auto plan = softmc::FaultPlan::parse(flag_or(flags, "faults", "seed=1"));
  if (!plan) {
    std::fprintf(stderr, "%s\n", plan.error().to_string().c_str());
    return 3;
  }

  core::ResilientConfig config;
  config.faults = std::move(*plan);
  config.seed = static_cast<std::uint64_t>(
      std::strtoull(flag_or(flags, "seed", "1").c_str(), nullptr, 10));
  config.retry.max_attempts = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "retries", "3").c_str()));

  const auto rows =
      static_cast<std::uint32_t>(std::atoi(flag_or(flags, "rows", "8").c_str()));
  // Generous default ring so quarantine dumps usually cover the whole
  // failing session (untruncated dumps replay exactly).
  config.trace_capacity = static_cast<std::size_t>(
      std::atoll(flag_or(flags, "trace-cap", "4096").c_str()));
  config.sweep = core::SweepConfig::quick();
  config.sweep.sampling.chunks = 2;
  config.sweep.sampling.rows_per_chunk = std::max(1u, rows / 2);

  std::string names =
      flag_or(flags, "modules", flag_or(flags, "module", "B3"));
  for (std::size_t pos = 0; pos <= names.size();) {
    const std::size_t end = std::min(names.find(',', pos), names.size());
    const std::string name = names.substr(pos, end - pos);
    pos = end + 1;
    if (name.empty()) continue;
    auto profile = chips::profile_by_name(name);
    if (!profile) {
      std::fprintf(stderr, "unknown module '%s'\n", name.c_str());
      return 3;
    }
    // Small banks keep the campaign fast; physics keys off the profile seed.
    profile->rows_per_bank = 4096;
    config.modules.push_back(std::move(*profile));
  }

  const core::CampaignResult campaign = core::run_resilient_rowhammer(config);

  for (const auto& m : campaign.modules) {
    std::printf("%-4s %-11s attempts=%u injected=%llu", m.module_name.c_str(),
                m.completed ? "completed" : "quarantined", m.attempts,
                static_cast<unsigned long long>(m.injections.total()));
    if (!m.completed) {
      std::printf("  %s", m.error_message.c_str());
    }
    std::printf("\n");
  }
  std::printf("campaign: %s\n", campaign.instrumentation.summary().c_str());
  std::printf("completed %zu/%zu modules, HCfirst CV (completed only) = %.4f\n",
              campaign.completed_count(), campaign.modules.size(),
              campaign.hc_first_cv());

  const std::string dump_dir = flag_or(flags, "dump-dir", "");
  if (!dump_dir.empty()) {
    std::error_code dir_ec;
    std::filesystem::create_directories(dump_dir, dir_ec);
    if (dir_ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", dump_dir.c_str(),
                   dir_ec.message().c_str());
      return 3;
    }
    for (const auto& m : campaign.modules) {
      if (!m.has_dump) continue;
      const std::string path =
          dump_dir + "/" + m.module_name + ".trace.json";
      if (!softmc::write_trace_dump(path, m.dump)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 3;
      }
      std::printf("wrote quarantine dump %s (%zu commands)\n", path.c_str(),
                  m.dump.entries.size());
    }
  }

  const std::string csv_path = flag_or(flags, "csv", "");
  if (!csv_path.empty()) {
    if (!core::campaign_to_csv(campaign).write_file(csv_path)) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 3;
    }
    if (!core::write_instrumentation_sidecar(csv_path,
                                             core::campaign_json(campaign))) {
      std::fprintf(stderr, "cannot write %s.json\n", csv_path.c_str());
      return 3;
    }
  }
  return 0;
}

int cmd_replay_remote(const std::string& path, std::uint16_t port) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 3;
  }
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    text.append(buf, n);
  }
  std::fclose(f);

  auto client = server::Client::connect(port);
  if (!client) {
    std::fprintf(stderr, "%s\n", client.error().to_string().c_str());
    return 3;
  }
  auto result = client->replay(text);
  if (!result) {
    std::fprintf(stderr, "%s\n", result.error().to_string().c_str());
    return 3;
  }
  std::printf("replayed %llu commands on %s (%zu timing violations)\n",
              static_cast<unsigned long long>(
                  result->uint_or("commands_replayed", 0)),
              result->string_or("module", "?").c_str(),
              static_cast<std::size_t>(result->uint_or("timing_violations", 0)));
  if (result->bool_or("reproduced", false)) {
    std::printf("reproduced: yes\n");
    return 0;
  }
  std::printf("reproduced: NO\n");
  return 4;
}

int cmd_replay(const std::string& path,
               const std::map<std::string, std::string>& flags) {
  const std::string connect = flag_or(flags, "connect", "");
  if (!connect.empty()) {
    return cmd_replay_remote(
        path, static_cast<std::uint16_t>(std::atoi(connect.c_str())));
  }
  auto dump = softmc::load_trace_dump(path);
  if (!dump) {
    std::fprintf(stderr, "%s\n", dump.error().to_string().c_str());
    return 3;
  }
  const auto profile = chips::profile_by_name(dump->module);
  if (!profile) {
    std::fprintf(stderr, "dump names unknown module '%s'\n",
                 dump->module.c_str());
    return 3;
  }
  std::printf("replaying %zu of %llu commands on %s at VPP=%.2fV%s\n",
              dump->entries.size(),
              static_cast<unsigned long long>(dump->total_recorded),
              dump->module.c_str(), dump->vpp_v,
              dump->truncated() ? " (ring truncated: best-effort)" : "");

  softmc::TraceReplayer replayer(std::move(*dump));
  auto report = replayer.replay_on_profile(*profile);
  if (!report) {
    std::fprintf(stderr, "%s\n", report.error().to_string().c_str());
    return 3;
  }
  if (has_flag(flags, "verbose")) {
    std::printf("  replayed %llu commands, %zu timing violations\n",
                static_cast<unsigned long long>(report->commands_replayed),
                report->timing_violations);
    std::printf("  counters: %s\n", report->counters.summary().c_str());
  }
  std::printf("original: %s, replay: %s\n",
              report->original_failed
                  ? std::string(common::error_code_name(report->original_code))
                        .c_str()
                  : "clean",
              report->replay_failed ? report->replay_message.c_str() : "clean");
  if (report->reproduced()) {
    std::printf("reproduced: yes\n");
    return 0;
  }
  std::printf("reproduced: NO\n");
  return 4;
}

std::vector<std::string> split_csv_list(const std::string& text) {
  std::vector<std::string> parts;
  for (std::size_t pos = 0; pos <= text.size();) {
    const std::size_t end = std::min(text.find(',', pos), text.size());
    std::string part = text.substr(pos, end - pos);
    pos = end + 1;
    if (!part.empty()) parts.push_back(std::move(part));
  }
  return parts;
}

std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> values;
  for (const std::string& part : split_csv_list(text)) {
    values.push_back(std::atof(part.c_str()));
  }
  return values;
}

std::vector<std::uint64_t> parse_uint_list(const std::string& text) {
  std::vector<std::uint64_t> values;
  for (const std::string& part : split_csv_list(text)) {
    values.push_back(
        static_cast<std::uint64_t>(std::strtoull(part.c_str(), nullptr, 10)));
  }
  return values;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

/// Exports of a multi-module campaign get a per-module suffix before the
/// extension (grid-B3.csv) so one invocation never overwrites itself.
std::string per_module_path(const std::string& path, const std::string& module,
                            bool multi) {
  if (!multi) return path;
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "-" + module;
  }
  return path.substr(0, dot) + "-" + module + path.substr(dot);
}

template <typename Grid>
int render_campaign_grids(core::JobPhase phase, const std::vector<Grid>& grids,
                          const std::string& csv_path,
                          const std::string& json_path) {
  const bool multi = grids.size() > 1;
  for (const Grid& grid : grids) {
    std::printf("%-4s %s grid: %zu points x %zu rows  (%s)\n",
                grid.module_name.c_str(),
                std::string(core::campaign_phase_name(phase)).c_str(),
                grid.points.size(), grid.rows.size(),
                grid.instrumentation.summary().c_str());
    if (!csv_path.empty()) {
      const std::string path =
          per_module_path(csv_path, grid.module_name, multi);
      if (!core::grid_csv(grid).write_file(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 3;
      }
    }
    if (!json_path.empty()) {
      const std::string path =
          per_module_path(json_path, grid.module_name, multi);
      if (!write_text_file(path, core::grid_json(grid).str())) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 3;
      }
    }
  }
  return 0;
}

int run_campaign(core::CampaignPlan plan, core::JobPhase phase,
                 const std::string& csv_path, const std::string& json_path) {
  const std::string manifest = plan.manifest_path;
  core::CampaignEngine engine(std::move(plan));
  int rc = 3;
  common::Error error{common::ErrorCode::kUnknown, ""};
  switch (phase) {
    case core::JobPhase::kTrcd: {
      auto grids = engine.run_trcd();
      if (grids) {
        rc = render_campaign_grids(phase, *grids, csv_path, json_path);
      } else {
        error = std::move(grids).error();
      }
      break;
    }
    case core::JobPhase::kRetention: {
      auto grids = engine.run_retention();
      if (grids) {
        rc = render_campaign_grids(phase, *grids, csv_path, json_path);
      } else {
        error = std::move(grids).error();
      }
      break;
    }
    default: {
      auto grids = engine.run_hammer();
      if (grids) {
        rc = render_campaign_grids(phase, *grids, csv_path, json_path);
      } else {
        error = std::move(grids).error();
      }
      break;
    }
  }
  if (rc == 3 && !error.message.empty()) {
    std::fprintf(stderr, "%s\n", error.to_string().c_str());
    if (!manifest.empty()) {
      std::fprintf(stderr,
                   "completed shards are checkpointed; continue with: vppctl "
                   "campaign resume --manifest %s\n",
                   manifest.c_str());
    }
  }
  return rc;
}

/// Shared flag -> plan compiler of `campaign run` and `campaign
/// distribute`. Returns 0 and fills plan/phase, or a nonzero exit code
/// (message already printed).
int campaign_plan_from_flags(const std::map<std::string, std::string>& flags,
                             core::CampaignPlan& plan,
                             core::JobPhase& phase) {
  // The sweep config comes through the daemon's request expander so a
  // campaign's VPP grid is millivolt-quantized exactly like `vppctl sweep`
  // (and the stream seeds therefore agree across all front ends).
  const server::SweepRequest request = sweep_request_from_flags(flags);
  phase = request.test == "trcd"
              ? core::JobPhase::kTrcd
              : request.test == "retention" ? core::JobPhase::kRetention
                                            : core::JobPhase::kRowHammer;
  if (request.test != "rowhammer" && request.test != "trcd" &&
      request.test != "retention") {
    std::fprintf(stderr, "unknown --test '%s'\n", request.test.c_str());
    return 2;
  }

  plan.sweep = server::sweep_config_from_request(request);
  plan.axes.temperatures_c = parse_double_list(flag_or(flags, "temps", ""));
  plan.axes.hammer_counts = parse_uint_list(flag_or(flags, "hammer-counts", ""));
  plan.axes.act_to_act_ns = parse_double_list(flag_or(flags, "on-times", ""));
  plan.seed = request.seed;
  plan.jobs = std::atoi(flag_or(flags, "jobs", "1").c_str());
  plan.rows_per_shard = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "rows-per-shard", "4").c_str()));
  plan.max_new_shards = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "max-shards", "0").c_str()));
  plan.manifest_path = flag_or(flags, "manifest", "");

  const std::string names =
      flag_or(flags, "modules", flag_or(flags, "module", "B3"));
  for (const std::string& name : split_csv_list(names)) {
    auto profile = chips::profile_by_name(name);
    if (!profile) {
      std::fprintf(stderr, "unknown module '%s'\n", name.c_str());
      return 3;
    }
    plan.modules.push_back(std::move(*profile));
  }
  return 0;
}

int cmd_campaign_run(const std::map<std::string, std::string>& flags) {
  core::CampaignPlan plan;
  core::JobPhase phase = core::JobPhase::kRowHammer;
  if (const int rc = campaign_plan_from_flags(flags, plan, phase); rc != 0) {
    return rc;
  }
  return run_campaign(std::move(plan), phase, flag_or(flags, "csv", ""),
                      flag_or(flags, "json", ""));
}

int cmd_campaign_distribute(const std::map<std::string, std::string>& flags) {
  core::CampaignPlan plan;
  core::JobPhase phase = core::JobPhase::kRowHammer;
  if (const int rc = campaign_plan_from_flags(flags, plan, phase); rc != 0) {
    return rc;
  }
  const std::string manifest_path = plan.manifest_path;
  if (manifest_path.empty()) {
    std::fprintf(stderr, "campaign distribute requires --manifest PATH\n");
    return 2;
  }
  const int workers = std::atoi(flag_or(flags, "workers", "2").c_str());
  if (workers < 0) {
    std::fprintf(stderr, "--workers must be >= 0\n");
    return 2;
  }
  const std::uint64_t lease_shards = static_cast<std::uint64_t>(
      std::atoll(flag_or(flags, "lease-shards", "4").c_str()));
  const std::int64_t ttl_ms =
      std::atoll(flag_or(flags, "lease-ttl-ms", "30000").c_str());
  if (ttl_ms <= 0) {
    std::fprintf(stderr, "--lease-ttl-ms must be positive\n");
    return 2;
  }

  // The coordinator owns the manifest at the exact path the user named;
  // the final export resumes the engine over it, so keep a plan copy.
  core::CampaignPlan export_plan = plan;
  auto coordinator =
      server::CampaignCoordinator::open(std::move(plan), phase, manifest_path);
  if (!coordinator) {
    std::fprintf(stderr, "%s\n", coordinator.error().to_string().c_str());
    return 3;
  }
  std::shared_ptr<server::CampaignCoordinator> coord = std::move(*coordinator);

  server::DaemonOptions daemon;
  daemon.config.port = static_cast<std::uint16_t>(
      std::atoi(flag_or(flags, "port", "0").c_str()));
  daemon.port_file = flag_or(flags, "port-file", "");
  auto started = server::Server::start(daemon.config);
  if (!started) {
    std::fprintf(stderr, "%s\n", started.error().to_string().c_str());
    return 3;
  }
  std::unique_ptr<server::Server> srv = std::move(*started);
  srv->service().adopt_campaign(coord);
  if (!daemon.port_file.empty()) {
    const std::string tmp = daemon.port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr ||
        std::fprintf(f, "%u\n", static_cast<unsigned>(srv->port())) < 0 ||
        std::fclose(f) != 0 ||
        std::rename(tmp.c_str(), daemon.port_file.c_str()) != 0) {
      std::fprintf(stderr, "cannot publish %s\n", daemon.port_file.c_str());
      return 3;
    }
  }
  std::printf("coordinator on 127.0.0.1:%u: %llu shard(s), manifest %s\n",
              static_cast<unsigned>(srv->port()),
              static_cast<unsigned long long>(coord->status().planned),
              manifest_path.c_str());
  std::fflush(stdout);

  int rc = 0;
  if (workers == 0) {
    // External-worker mode: wait for `vppd --connect` workers to finish the
    // grid. The coordinator fences crashed workers, so polling completeness
    // is the only job left here.
    while (!coord->complete()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  } else {
    struct WorkerOutcome {
      bool ok = false;
      server::CampaignWorker::Summary summary;
      std::string error;
    };
    std::vector<WorkerOutcome> outcomes(static_cast<std::size_t>(workers));
    std::vector<std::thread> threads;
    threads.reserve(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      server::CampaignWorker::Options options;
      options.port = srv->port();
      options.worker_id = "w" + std::to_string(i + 1);
      options.lease_shards = lease_shards;
      options.ttl_ms = ttl_ms;
      options.jobs = std::atoi(flag_or(flags, "jobs", "1").c_str());
      threads.emplace_back([&outcomes, i, options] {
        auto summary = server::CampaignWorker::run(options);
        if (summary) {
          outcomes[i].ok = true;
          outcomes[i].summary = *summary;
        } else {
          outcomes[i].error = summary.error().to_string();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (!outcomes[i].ok) {
        std::fprintf(stderr, "worker w%zu: %s\n", i + 1,
                     outcomes[i].error.c_str());
        rc = 3;
      }
    }
  }
  srv->stop();
  srv.reset();

  for (const core::LeaseWorkerStats& w : coord->worker_stats()) {
    std::printf("  worker %-8s leased %llu  completed %llu  expired %llu\n",
                w.worker.c_str(), static_cast<unsigned long long>(w.leased),
                static_cast<unsigned long long>(w.completed),
                static_cast<unsigned long long>(w.expired));
  }
  if (rc != 0) return rc;
  if (!coord->complete()) {
    std::fprintf(stderr,
                 "campaign incomplete after all workers exited; continue "
                 "with: vppctl campaign distribute --manifest %s\n",
                 manifest_path.c_str());
    return 3;
  }

  // Final export: resume the single-host engine over the complete merged
  // manifest. Every shard restores from the checkpoint (zero compute), and
  // the rendered CSV/JSON is byte-identical to an undistributed run.
  export_plan.manifest_path = manifest_path;
  return run_campaign(std::move(export_plan), phase, flag_or(flags, "csv", ""),
                      flag_or(flags, "json", ""));
}

int cmd_campaign_resume(const std::map<std::string, std::string>& flags) {
  const std::string manifest_path = flag_or(flags, "manifest", "");
  if (manifest_path.empty()) {
    std::fprintf(stderr, "campaign resume requires --manifest PATH\n");
    return 2;
  }
  auto manifest = core::load_campaign_manifest(manifest_path);
  if (!manifest) {
    std::fprintf(stderr, "%s\n", manifest.error().to_string().c_str());
    return 3;
  }
  auto plan = core::plan_from_manifest(*manifest);
  if (!plan) {
    std::fprintf(stderr, "%s\n", plan.error().to_string().c_str());
    return 3;
  }
  // Execution knobs are not part of the plan identity; they may be re-chosen
  // at resume time without perturbing a single result bit.
  plan->manifest_path = manifest_path;
  plan->jobs = std::atoi(flag_or(flags, "jobs", "1").c_str());
  plan->max_new_shards = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "max-shards", "0").c_str()));
  std::printf("resuming %s campaign (%zu of %llu shards checkpointed)\n",
              std::string(core::campaign_phase_name(manifest->phase)).c_str(),
              manifest->shards.size(),
              static_cast<unsigned long long>(manifest->planned_shards));
  return run_campaign(*std::move(plan), manifest->phase,
                      flag_or(flags, "csv", ""), flag_or(flags, "json", ""));
}

int cmd_campaign_status(const std::map<std::string, std::string>& flags) {
  const std::string manifest_path = flag_or(flags, "manifest", "");
  if (manifest_path.empty()) {
    std::fprintf(stderr, "campaign status requires --manifest PATH\n");
    return 2;
  }
  auto manifest = core::load_campaign_manifest(manifest_path);
  if (!manifest) {
    std::fprintf(stderr, "%s\n", manifest.error().to_string().c_str());
    return 3;
  }
  std::printf("manifest: %s\n", manifest_path.c_str());
  std::printf("phase: %s  plan: 0x%016llx  seed: %llu\n",
              std::string(core::campaign_phase_name(manifest->phase)).c_str(),
              static_cast<unsigned long long>(manifest->plan_hash),
              static_cast<unsigned long long>(manifest->seed));
  std::printf("shards: %zu of %llu complete, wcdp preps: %zu of %zu\n",
              manifest->shards.size(),
              static_cast<unsigned long long>(manifest->planned_shards),
              manifest->wcdp.size(), manifest->modules.size());
  for (const auto& [name, rows_per_bank] : manifest->modules) {
    std::size_t done = 0;
    for (const auto& shard : manifest->shards) {
      if (shard.module == name) ++done;
    }
    std::printf("  %-4s %zu shards done (rows_per_bank=%u)\n", name.c_str(),
                done, rows_per_bank);
  }
  // A distributed campaign keeps its lease ledger beside the manifest;
  // surface shard lease state and per-worker accounting when present.
  const std::string ledger_path = core::campaign_ledger_path(manifest_path);
  if (std::filesystem::exists(ledger_path)) {
    auto ledger = core::load_campaign_ledger(ledger_path);
    if (!ledger) {
      std::fprintf(stderr, "%s\n", ledger.error().to_string().c_str());
      return 3;
    }
    std::printf("leases: %llu open, %llu leased, %llu done\n",
                static_cast<unsigned long long>(
                    ledger->count(core::LeaseState::kOpen)),
                static_cast<unsigned long long>(
                    ledger->count(core::LeaseState::kLeased)),
                static_cast<unsigned long long>(
                    ledger->count(core::LeaseState::kDone)));
    for (const core::LeaseWorkerStats& w : ledger->workers) {
      std::printf("  worker %-8s leased %llu  completed %llu  expired %llu\n",
                  w.worker.c_str(), static_cast<unsigned long long>(w.leased),
                  static_cast<unsigned long long>(w.completed),
                  static_cast<unsigned long long>(w.expired));
    }
  }
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
    std::fprintf(stderr,
                 "usage: vppctl campaign <run|resume|status|distribute> "
                 "[--flag value ...]\n");
    return 2;
  }
  const std::string verb = argv[2];
  const auto flags = parse_flags(argc, argv, 3);
  if (verb == "run") return cmd_campaign_run(flags);
  if (verb == "resume") return cmd_campaign_resume(flags);
  if (verb == "status") return cmd_campaign_status(flags);
  if (verb == "distribute") return cmd_campaign_distribute(flags);
  std::fprintf(stderr, "unknown campaign verb '%s'\n", verb.c_str());
  return 2;
}

// --- fuzz --------------------------------------------------------------------
// `vppctl fuzz run/resume/status`: the attack-pattern fuzzer
// (core/fuzz_campaign) on the campaign exit-code contract -- 0 a completed
// campaign, 2 usage errors, 3 typed errors (killed/cancelled runs leave a
// resumable manifest behind).

/// The summed post-TRR flip score of one pattern at one (module, VPP) grid
/// point, straight from the final generation's grids.
double fuzz_grid_score(const std::vector<core::HammerGrid>& grids,
                       const std::string& module, std::uint64_t vpp_mv,
                       std::uint64_t pattern_hash) {
  double total = 0.0;
  for (const core::HammerGrid& grid : grids) {
    if (grid.module_name != module) continue;
    for (std::size_t p = 0; p < grid.points.size(); ++p) {
      if (grid.points[p].pattern_hash != pattern_hash ||
          core::vpp_millivolts(grid.points[p].vpp_v) != vpp_mv) {
        continue;
      }
      for (const auto& cell : grid.cells[p]) {
        total += static_cast<double>(cell.hc_first);
      }
    }
  }
  return total;
}

int render_fuzz_result(const core::FuzzCampaignResult& result,
                       const std::string& csv_path,
                       const std::string& json_path) {
  const std::uint64_t uniform_hash =
      harness::uniform_double_sided_spec().spec_hash();
  std::printf("%u generation(s) complete\n", result.generations);
  std::printf("%-4s %-8s %-24s %12s %12s\n", "mod", "VPP[V]", "best pattern",
              "best flips", "uniform");
  for (const core::FuzzPopulation& point : result.points) {
    if (point.members.empty()) continue;
    const harness::ScoredSpec& best = point.members.front();
    std::printf("%-4s %-8.2f %-24s %12.0f %12.0f\n", point.module.c_str(),
                static_cast<double>(point.vpp_mv) / 1000.0,
                best.spec.name.c_str(), best.score,
                fuzz_grid_score(result.grids, point.module, point.vpp_mv,
                                uniform_hash));
  }
  return render_campaign_grids(core::JobPhase::kRowHammer, result.grids,
                               csv_path, json_path);
}

int run_fuzz(const core::FuzzCampaignConfig& config,
             const std::string& csv_path, const std::string& json_path) {
  auto result = core::run_fuzz_campaign(config);
  if (!result) {
    std::fprintf(stderr, "%s\n", result.error().to_string().c_str());
    if (!config.base.manifest_path.empty()) {
      std::fprintf(stderr,
                   "completed work is checkpointed; continue with: vppctl "
                   "fuzz resume --manifest %s\n",
                   config.base.manifest_path.c_str());
    }
    return 3;
  }
  return render_fuzz_result(*result, csv_path, json_path);
}

/// Load every *.json pattern-spec document in `dir` (sorted by filename, so
/// the seed order -- part of the config digest -- is stable across
/// filesystems) into `seeds`. Sibling documents carrying a different schema
/// tag (the corpus keeps GOLDENS.json beside its specs) are skipped; files
/// that claim the pattern-spec schema but fail to parse are hard errors.
/// Returns 0, or 2/3 per the exit-code contract.
int load_seed_corpus(const std::string& dir,
                     std::vector<harness::PatternSpec>* seeds) {
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "cannot read corpus directory %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  std::sort(files.begin(), files.end());
  std::size_t loaded = 0;
  for (const auto& file : files) {
    std::ifstream in(file);
    std::ostringstream text;
    text << in.rdbuf();
    if (!in.good() && !in.eof()) {
      std::fprintf(stderr, "cannot read %s\n", file.c_str());
      return 3;
    }
    auto doc = common::parse_json(text.str());
    if (!doc) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   doc.error().to_string().c_str());
      return 3;
    }
    if (doc->string_or("schema", "")
            .rfind(harness::PatternSpec::kSchemaPrefix, 0) != 0) {
      continue;  // goldens, manifests, ... -- not a seed
    }
    auto spec = harness::parse_pattern_spec_document(*doc);
    if (!spec) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   spec.error().to_string().c_str());
      return 3;
    }
    seeds->push_back(*std::move(spec));
    ++loaded;
  }
  if (loaded == 0) {
    std::fprintf(stderr, "no pattern-spec documents in %s\n", dir.c_str());
    return 2;
  }
  return 0;
}

int cmd_fuzz_run(const std::map<std::string, std::string>& flags) {
  if (flag_or(flags, "test", "rowhammer") != std::string("rowhammer")) {
    std::fprintf(stderr, "fuzz campaigns score rowhammer only\n");
    return 2;
  }
  core::FuzzCampaignConfig config;
  core::JobPhase phase = core::JobPhase::kRowHammer;
  if (const int rc = campaign_plan_from_flags(flags, config.base, phase);
      rc != 0) {
    return rc;
  }
  config.generations = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "generations", "4").c_str()));
  config.fuzzer.population = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "population", "8").c_str()));
  config.fuzzer.elites = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "elites", "2").c_str()));
  if (config.generations == 0 || config.fuzzer.population < 2 ||
      config.fuzzer.elites >= config.fuzzer.population) {
    std::fprintf(stderr,
                 "need --generations >= 1 and --elites < --population "
                 "(population >= 2)\n");
    return 2;
  }
  if (const std::string corpus = flag_or(flags, "corpus", ""); !corpus.empty()) {
    if (const int rc = load_seed_corpus(corpus, &config.fuzzer.seeds); rc != 0) {
      return rc;
    }
  }
  return run_fuzz(config, flag_or(flags, "csv", ""),
                  flag_or(flags, "json", ""));
}

int cmd_fuzz_resume(const std::map<std::string, std::string>& flags) {
  const std::string manifest_path = flag_or(flags, "manifest", "");
  if (manifest_path.empty()) {
    std::fprintf(stderr, "fuzz resume requires --manifest PATH\n");
    return 2;
  }
  auto manifest = core::load_fuzz_manifest(manifest_path);
  if (!manifest) {
    std::fprintf(stderr, "%s\n", manifest.error().to_string().c_str());
    return 3;
  }
  auto config = core::config_from_fuzz_manifest(*manifest);
  if (!config) {
    std::fprintf(stderr, "%s\n", config.error().to_string().c_str());
    return 3;
  }
  // Execution knobs are not part of the config identity (same rule as
  // campaign resume): re-chosen freely without perturbing a result bit.
  config->base.manifest_path = manifest_path;
  config->base.jobs = std::atoi(flag_or(flags, "jobs", "1").c_str());
  std::printf("resuming fuzz campaign (%zu of %u generations complete)\n",
              manifest->completed.size(), manifest->generations);
  return run_fuzz(*config, flag_or(flags, "csv", ""),
                  flag_or(flags, "json", ""));
}

int cmd_fuzz_status(const std::map<std::string, std::string>& flags) {
  const std::string manifest_path = flag_or(flags, "manifest", "");
  if (manifest_path.empty()) {
    std::fprintf(stderr, "fuzz status requires --manifest PATH\n");
    return 2;
  }
  auto manifest = core::load_fuzz_manifest(manifest_path);
  if (!manifest) {
    std::fprintf(stderr, "%s\n", manifest.error().to_string().c_str());
    return 3;
  }
  std::printf("manifest: %s\n", manifest_path.c_str());
  std::printf("config: 0x%016llx  generations: %zu of %u complete\n",
              static_cast<unsigned long long>(manifest->config_hash),
              manifest->completed.size(), manifest->generations);
  if (!manifest->completed.empty()) {
    for (const core::FuzzPopulation& point : manifest->completed.back()) {
      const harness::ScoredSpec* best = nullptr;
      for (const harness::ScoredSpec& m : point.members) {
        if (best == nullptr || m.score > best->score ||
            (m.score == best->score &&
             m.spec.spec_hash() < best->spec.spec_hash())) {
          best = &m;
        }
      }
      if (best != nullptr) {
        std::printf("  %-4s VPP=%.2fV best %-24s score %.0f\n",
                    point.module.c_str(),
                    static_cast<double>(point.vpp_mv) / 1000.0,
                    best->spec.name.c_str(), best->score);
      }
    }
  }
  // An interrupted generation leaves its engine checkpoint beside the fuzz
  // manifest; surface its shard progress.
  const std::string generation_path = core::fuzz_generation_manifest_path(
      manifest_path, static_cast<std::uint32_t>(manifest->completed.size()));
  if (std::filesystem::exists(generation_path)) {
    if (auto gen = core::load_campaign_manifest(generation_path)) {
      std::printf(
          "generation %zu in flight: %zu of %llu shards checkpointed\n",
          manifest->completed.size(), gen->shards.size(),
          static_cast<unsigned long long>(gen->planned_shards));
    }
  }
  return 0;
}

int cmd_fuzz(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
    std::fprintf(stderr,
                 "usage: vppctl fuzz <run|resume|status> [--flag value ...]\n");
    return 2;
  }
  const std::string verb = argv[2];
  const auto flags = parse_flags(argc, argv, 3);
  if (verb == "run") return cmd_fuzz_run(flags);
  if (verb == "resume") return cmd_fuzz_resume(flags);
  if (verb == "status") return cmd_fuzz_status(flags);
  std::fprintf(stderr, "unknown fuzz verb '%s'\n", verb.c_str());
  return 2;
}

int cmd_serve(const std::map<std::string, std::string>& flags) {
  server::DaemonOptions options;
  options.config.port = static_cast<std::uint16_t>(
      std::atoi(flag_or(flags, "port", "0").c_str()));
  options.port_file = flag_or(flags, "port-file", "");
  options.config.service.jobs = std::atoi(flag_or(flags, "jobs", "0").c_str());
  options.config.service.rows_per_shard = static_cast<std::uint32_t>(
      std::atoi(flag_or(flags, "rows-per-shard", "4").c_str()));
  options.config.queue.capacity = static_cast<std::size_t>(
      std::atoll(flag_or(flags, "queue-cap", "16").c_str()));
  options.config.queue.per_client_quota = static_cast<std::size_t>(
      std::atoll(flag_or(flags, "quota", "8").c_str()));
  options.config.service.manifest_dir = flag_or(flags, "manifest-dir", "");
  options.config.service.cache_max_cells = static_cast<std::uint64_t>(
      std::atoll(flag_or(flags, "cache-max-cells", "0").c_str()));
  options.config.queue.dispatchers = static_cast<unsigned>(
      std::atoi(flag_or(flags, "dispatchers", "2").c_str()));
  return server::run_daemon(options);
}

int usage() {
  std::fprintf(stderr,
               "usage: vppctl "
               "<list|hammer|sweep|campaign|fuzz|profile|inject|replay|serve> "
               "[--flag value ...]\n"
               "see the header comment of tools/vppctl.cpp for details\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  if (cmd == "list") return cmd_list();
  if (cmd == "hammer") return cmd_hammer(flags);
  if (cmd == "sweep") return cmd_sweep(flags);
  if (cmd == "campaign") return cmd_campaign(argc, argv);
  if (cmd == "fuzz") return cmd_fuzz(argc, argv);
  if (cmd == "profile") return cmd_profile(flags);
  if (cmd == "inject") return cmd_inject(flags);
  if (cmd == "serve") return cmd_serve(flags);
  if (cmd == "replay") {
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) return usage();
    return cmd_replay(argv[2], parse_flags(argc, argv, 3));
  }
  return usage();
}
