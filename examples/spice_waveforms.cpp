// Circuit-level exploration: run the Table 2 cell/bitline/sense-amp netlist
// through the built-in SPICE-class solver and dump activation waveforms as
// CSV for plotting (Fig. 8a/9a style).
//
// Usage: ./build/examples/spice_waveforms [out.csv]   (default: stdout)
#include <cstdio>
#include <string>

#include "circuit/dram_cell.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;

  const double levels[] = {2.5, 2.1, 1.9, 1.8, 1.7};
  std::vector<circuit::ActivationResult> results;
  for (const double vpp : levels) {
    circuit::DramCellSimParams p;
    p.vpp_v = vpp;
    auto r = circuit::simulate_activation(p);
    if (!r) {
      std::fprintf(stderr, "simulation failed at VPP=%.1fV: %s\n", vpp,
                   r.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "VPP=%.1fV: tRCDmin=%.2fns tRASmin=%.2fns Vcell=%.3fV %s\n",
                 vpp, r->t_rcd_min_ns, r->t_ras_min_ns, r->v_cell_final,
                 r->reliable ? "reliable" : "UNRELIABLE");
    results.push_back(std::move(*r));
  }

  std::vector<std::string> header{"t_ns"};
  for (const double vpp : levels) {
    header.push_back("bitline_" + std::to_string(vpp).substr(0, 3) + "V");
    header.push_back("cell_" + std::to_string(vpp).substr(0, 3) + "V");
  }
  common::CsvWriter csv(header);
  for (std::size_t i = 0; i < results[0].t_ns.size(); i += 8) {
    csv.begin_row();
    csv.add(results[0].t_ns[i]);
    for (const auto& r : results) {
      csv.add(r.v_bitline[i]);
      csv.add(r.v_cell[i]);
    }
  }

  if (argc > 1) {
    if (!csv.write_file(argv[1])) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu samples)\n", argv[1], csv.row_count());
  } else {
    std::fputs(csv.str().c_str(), stdout);
  }
  return 0;
}
