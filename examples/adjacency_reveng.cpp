// Reverse-engineering demo (section 4.2): recover the DRAM-internal
// logical->physical row mapping by hammering and observing which logical
// rows flip, then check the recovery against the device's actual scheme.
//
// Usage: ./build/examples/adjacency_reveng [module-name]   (default: B3)
#include <cstdio>
#include <string>

#include "chips/module_db.hpp"
#include "harness/adjacency.hpp"
#include "softmc/session.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  const std::string name = argc > 1 ? argv[1] : "B3";
  auto profile = chips::profile_by_name(name);
  if (!profile) {
    std::fprintf(stderr, "unknown module '%s'\n", name.c_str());
    return 1;
  }
  profile->rows_per_bank = 8192;  // keep the demo quick

  softmc::Session session(*profile);
  session.module().set_trr_enabled(false);
  harness::AdjacencyRevEng reveng(session, harness::AdjacencyConfig{});

  std::printf("module %s: recovering physical adjacency for rows 512..519\n",
              name.c_str());
  auto recovered = reveng.recover_block(0, 512, 8);
  if (!recovered) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.error().message.c_str());
    return 1;
  }

  const auto& mapping = session.module().mapping();
  int correct = 0;
  int total = 0;
  std::printf("%8s %22s %22s\n", "victim", "recovered aggressors",
              "ground truth");
  for (std::uint32_t v = 512; v < 520; ++v) {
    const auto it = recovered->find(v);
    const auto truth = mapping.physical_neighbors(v);
    if (it == recovered->end() || !it->second.complete) {
      std::printf("%8u %22s\n", v, "(not recovered)");
      continue;
    }
    ++total;
    const bool match =
        (std::min(it->second.below, it->second.above) ==
         std::min(truth.below, truth.above)) &&
        (std::max(it->second.below, it->second.above) ==
         std::max(truth.below, truth.above));
    correct += match ? 1 : 0;
    std::printf("%8u %10u,%-10u %10u,%-10u %s\n", v, it->second.below,
                it->second.above, truth.below, truth.above,
                match ? "ok" : "MISMATCH");
  }
  std::printf("\n%d/%d victims recovered correctly\n", correct, total);
  return correct == total && total > 0 ? 0 : 1;
}
