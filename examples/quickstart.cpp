// Quickstart: mount a module from the Table 3 catalog, hammer one row
// double-sided at nominal and reduced wordline voltage, and watch the
// paper's headline effect -- fewer RowHammer bit flips at lower VPP.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "chips/module_db.hpp"
#include "harness/rowhammer_test.hpp"
#include "harness/wcdp.hpp"
#include "softmc/session.hpp"

int main() {
  using namespace vppstudy;

  // B3 is the module with the paper's strongest VPP response
  // (HCfirst +27% at its VPPmin of 1.6V).
  auto profile = chips::profile_by_name("B3").value();
  softmc::Session session(profile);
  session.set_auto_refresh(false);  // also neutralizes TRR (section 4.1)

  std::printf("module %s (%s), %d chips, VPPmin %.1fV\n",
              profile.name.c_str(), profile.dimm_model.c_str(),
              profile.num_chips, profile.vppmin_v);

  const std::uint32_t victim = 1500;
  const auto wcdp = harness::find_wcdp_hammer(session, 0, victim);
  if (!wcdp) {
    std::fprintf(stderr, "WCDP search failed: %s\n",
                 wcdp.error().message.c_str());
    return 1;
  }
  std::printf("worst-case data pattern for row %u: %s\n", victim,
              std::string(dram::pattern_name(*wcdp)).c_str());

  harness::RowHammerConfig cfg;
  cfg.num_iterations = 1;
  harness::RowHammerTest test(session, cfg);

  for (const double vpp : {2.5, 2.0, 1.6}) {
    if (auto st = session.set_vpp(vpp); !st.ok()) {
      std::printf("VPP=%.1fV: %s\n", vpp, st.error().message.c_str());
      continue;
    }
    auto result = test.test_row(0, victim, *wcdp);
    if (!result) {
      std::fprintf(stderr, "test failed: %s\n",
                   result.error().message.c_str());
      return 1;
    }
    std::printf("VPP=%.1fV: HCfirst = %llu activations, BER@300K = %.3e\n",
                vpp, static_cast<unsigned long long>(result->hc_first),
                result->ber);
  }

  std::printf(
      "\nLowering VPP makes the attacker hammer more (higher HCfirst) for "
      "fewer flips (lower BER)\n-- the paper's Takeaway 1.\n");
  return 0;
}
