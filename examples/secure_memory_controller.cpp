// Secure memory controller demo: combine the paper's findings into a
// defense-in-depth configuration and pit it against a double-sided
// RowHammer attacker.
//
//   baseline:  nominal VPP, refresh disabled            -> flips land
//   defended:  reduced VPP (weaker disturbance) +
//              regular refresh (enables in-DRAM TRR) +
//              rank-level SECDED scrubbing              -> attack blunted
//
// Usage: ./build/examples/secure_memory_controller
#include <cstdio>

#include "chips/module_db.hpp"
#include "dram/data_pattern.hpp"
#include "ecc/secded.hpp"
#include "ecc/word_census.hpp"
#include "softmc/session.hpp"

namespace {

using namespace vppstudy;

struct AttackOutcome {
  std::uint64_t flipped_bits = 0;
  std::uint64_t uncorrectable_words = 0;  // after SECDED (when enabled)
  std::uint64_t trr_mitigations = 0;
};

AttackOutcome run_attack(bool defended) {
  auto profile = chips::profile_by_name("B3").value();
  softmc::Session session(profile);
  session.set_auto_refresh(defended);  // defended controller refreshes
  if (defended) {
    // Table 3's recommended operating point for B3 is its VPPmin, 1.6V.
    (void)session.set_vpp(chips::recommended_vpp(profile));
  }

  const std::uint32_t victim = 1500;
  const auto n = session.module().mapping().physical_neighbors(victim);
  const auto image =
      dram::pattern_row(dram::DataPattern::kCheckerAA, dram::kBytesPerRow);
  const auto agg = dram::pattern_row(dram::DataPattern::kChecker55,
                                     dram::kBytesPerRow);
  (void)session.init_row(0, victim, image);
  (void)session.init_row(0, n.below, agg);
  (void)session.init_row(0, n.above, agg);

  // The attacker hammers in bursts; a real controller interleaves its
  // refresh stream (tREFI) with the attacker's activations.
  for (int burst = 0; burst < 30; ++burst) {
    (void)session.hammer_double_sided(0, n.below, n.above, 10'000);
    if (defended) (void)session.wait_ms(0.2);  // ~25 REFs via auto-refresh
  }

  AttackOutcome out;
  auto observed = session.read_row(0, victim, 30.0);
  if (!observed) return out;
  const auto census = ecc::census_row(image, *observed);
  out.flipped_bits = census.flipped_bits;
  out.uncorrectable_words = defended ? census.multi_bit_words
                                     : census.erroneous_words();
  out.trr_mitigations = session.module().stats().trr_mitigations;
  return out;
}

}  // namespace

int main() {
  std::printf("double-sided RowHammer, 300K activations per aggressor\n\n");

  const AttackOutcome baseline = run_attack(/*defended=*/false);
  std::printf("baseline   (VPP=2.5V, no refresh, no ECC):\n");
  std::printf("  flipped bits: %llu, exploitable words: %llu\n\n",
              static_cast<unsigned long long>(baseline.flipped_bits),
              static_cast<unsigned long long>(baseline.uncorrectable_words));

  const AttackOutcome defended = run_attack(/*defended=*/true);
  std::printf("defended   (VPP=1.6V + refresh/TRR + SECDED):\n");
  std::printf("  flipped bits: %llu, TRR mitigations fired: %llu,\n"
              "  words SECDED cannot repair: %llu\n\n",
              static_cast<unsigned long long>(defended.flipped_bits),
              static_cast<unsigned long long>(defended.trr_mitigations),
              static_cast<unsigned long long>(defended.uncorrectable_words));

  if (defended.uncorrectable_words == 0 && baseline.uncorrectable_words > 0) {
    std::printf("attack blunted: VPP scaling composes with existing "
                "defenses (section 3's key argument).\n");
    return 0;
  }
  std::printf("unexpected outcome -- inspect the defense configuration.\n");
  return 1;
}
