// VPP explorer: section 8's "Finding Optimal Wordline Voltage". Sweeps a
// module across its usable VPP range and prints the full trade-off surface
// -- RowHammer resistance vs activation latency vs retention -- then picks
// an operating point for two different system policies.
//
// Usage: ./build/examples/vpp_explorer [module-name]   (default: C0)
#include <cstdio>
#include <string>

#include "chips/module_db.hpp"
#include "common/units.hpp"
#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  const std::string name = argc > 1 ? argv[1] : "C0";
  const auto profile = chips::profile_by_name(name);
  if (!profile) {
    std::fprintf(stderr, "unknown module '%s' (try A0..C9)\n", name.c_str());
    return 1;
  }

  core::SweepConfig cfg = core::SweepConfig::quick();
  cfg.vpp_levels.clear();
  for (double v = 2.5; v >= profile->vppmin_v - 1e-9; v -= 0.1) {
    cfg.vpp_levels.push_back(v);
  }
  cfg.sampling.chunks = 2;
  cfg.sampling.rows_per_chunk = 6;

  core::Study study(*profile);
  auto hammer = study.rowhammer_sweep(cfg);
  auto trcd = study.trcd_sweep(cfg);
  if (!hammer || !trcd) {
    std::fprintf(stderr, "sweep failed\n");
    return 1;
  }

  std::printf("module %s: trade-off surface (VPPmin %.1fV)\n", name.c_str(),
              profile->vppmin_v);
  std::printf("%-8s %12s %12s %12s %10s\n", "VPP[V]", "minHCfirst",
              "maxBER@300K", "tRCDmin[ns]", "guardband");
  for (std::size_t l = 0; l < hammer->vpp_levels.size(); ++l) {
    const double gb = common::kNominalTrcdNs - trcd->trcd_min_ns[l];
    std::printf("%-8.1f %12llu %12.3e %12.1f %9.1f%%\n",
                hammer->vpp_levels[l],
                static_cast<unsigned long long>(hammer->min_hc_first_at(l)),
                hammer->max_ber_at(l), trcd->trcd_min_ns[l],
                100.0 * gb / common::kNominalTrcdNs);
  }

  // Policy 1 (security-critical): lowest VPP whose tRCDmin still fits the
  // nominal timing -- maximal RowHammer resistance at zero latency cost.
  // Policy 2 (performance-critical): nominal VPP.
  double secure_vpp = 2.5;
  std::uint64_t secure_hc = hammer->min_hc_first_at(0);
  for (std::size_t l = 0; l < hammer->vpp_levels.size(); ++l) {
    if (trcd->trcd_min_ns[l] <= common::kNominalTrcdNs &&
        hammer->min_hc_first_at(l) >= secure_hc) {
      secure_vpp = hammer->vpp_levels[l];
      secure_hc = hammer->min_hc_first_at(l);
    }
  }
  std::printf(
      "\nsecurity-critical policy: run at VPP=%.1fV (HCfirst %llu, nominal "
      "timing preserved)\n",
      secure_vpp, static_cast<unsigned long long>(secure_hc));
  std::printf("performance-critical policy: stay at 2.5V\n");
  std::printf("Table 3's recommended VPP for %s: %.1fV\n", name.c_str(),
              chips::recommended_vpp(*profile));
  return 0;
}
