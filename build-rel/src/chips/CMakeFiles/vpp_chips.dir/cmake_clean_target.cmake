file(REMOVE_RECURSE
  "libvpp_chips.a"
)
