file(REMOVE_RECURSE
  "CMakeFiles/vpp_chips.dir/module_db.cpp.o"
  "CMakeFiles/vpp_chips.dir/module_db.cpp.o.d"
  "libvpp_chips.a"
  "libvpp_chips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_chips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
