file(REMOVE_RECURSE
  "libvpp_ecc.a"
)
