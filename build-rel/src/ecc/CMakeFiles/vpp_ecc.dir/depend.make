# Empty dependencies file for vpp_ecc.
# This may be replaced when dependencies are built.
