file(REMOVE_RECURSE
  "CMakeFiles/vpp_circuit.dir/dram_cell.cpp.o"
  "CMakeFiles/vpp_circuit.dir/dram_cell.cpp.o.d"
  "CMakeFiles/vpp_circuit.dir/matrix.cpp.o"
  "CMakeFiles/vpp_circuit.dir/matrix.cpp.o.d"
  "CMakeFiles/vpp_circuit.dir/montecarlo.cpp.o"
  "CMakeFiles/vpp_circuit.dir/montecarlo.cpp.o.d"
  "CMakeFiles/vpp_circuit.dir/mosfet.cpp.o"
  "CMakeFiles/vpp_circuit.dir/mosfet.cpp.o.d"
  "CMakeFiles/vpp_circuit.dir/netlist.cpp.o"
  "CMakeFiles/vpp_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/vpp_circuit.dir/solver.cpp.o"
  "CMakeFiles/vpp_circuit.dir/solver.cpp.o.d"
  "libvpp_circuit.a"
  "libvpp_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
