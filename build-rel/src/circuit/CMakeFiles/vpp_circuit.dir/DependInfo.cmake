
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/dram_cell.cpp" "src/circuit/CMakeFiles/vpp_circuit.dir/dram_cell.cpp.o" "gcc" "src/circuit/CMakeFiles/vpp_circuit.dir/dram_cell.cpp.o.d"
  "/root/repo/src/circuit/matrix.cpp" "src/circuit/CMakeFiles/vpp_circuit.dir/matrix.cpp.o" "gcc" "src/circuit/CMakeFiles/vpp_circuit.dir/matrix.cpp.o.d"
  "/root/repo/src/circuit/montecarlo.cpp" "src/circuit/CMakeFiles/vpp_circuit.dir/montecarlo.cpp.o" "gcc" "src/circuit/CMakeFiles/vpp_circuit.dir/montecarlo.cpp.o.d"
  "/root/repo/src/circuit/mosfet.cpp" "src/circuit/CMakeFiles/vpp_circuit.dir/mosfet.cpp.o" "gcc" "src/circuit/CMakeFiles/vpp_circuit.dir/mosfet.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/vpp_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/vpp_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/solver.cpp" "src/circuit/CMakeFiles/vpp_circuit.dir/solver.cpp.o" "gcc" "src/circuit/CMakeFiles/vpp_circuit.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/common/CMakeFiles/vpp_common.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/stats/CMakeFiles/vpp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
