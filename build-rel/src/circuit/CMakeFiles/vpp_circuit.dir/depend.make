# Empty dependencies file for vpp_circuit.
# This may be replaced when dependencies are built.
