file(REMOVE_RECURSE
  "CMakeFiles/vpp_memctrl.dir/controller.cpp.o"
  "CMakeFiles/vpp_memctrl.dir/controller.cpp.o.d"
  "CMakeFiles/vpp_memctrl.dir/mitigation.cpp.o"
  "CMakeFiles/vpp_memctrl.dir/mitigation.cpp.o.d"
  "CMakeFiles/vpp_memctrl.dir/retention_profiler.cpp.o"
  "CMakeFiles/vpp_memctrl.dir/retention_profiler.cpp.o.d"
  "libvpp_memctrl.a"
  "libvpp_memctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_memctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
