file(REMOVE_RECURSE
  "libvpp_workload.a"
)
