# CMake generated Testfile for 
# Source directory: /root/repo/src/softmc
# Build directory: /root/repo/build-rel/src/softmc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
