file(REMOVE_RECURSE
  "CMakeFiles/vpp_softmc.dir/counters.cpp.o"
  "CMakeFiles/vpp_softmc.dir/counters.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/dispatcher.cpp.o"
  "CMakeFiles/vpp_softmc.dir/dispatcher.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/fault_injector.cpp.o"
  "CMakeFiles/vpp_softmc.dir/fault_injector.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/power_rail.cpp.o"
  "CMakeFiles/vpp_softmc.dir/power_rail.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/program.cpp.o"
  "CMakeFiles/vpp_softmc.dir/program.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/program_text.cpp.o"
  "CMakeFiles/vpp_softmc.dir/program_text.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/row_ops.cpp.o"
  "CMakeFiles/vpp_softmc.dir/row_ops.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/session.cpp.o"
  "CMakeFiles/vpp_softmc.dir/session.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/thermal.cpp.o"
  "CMakeFiles/vpp_softmc.dir/thermal.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/timing_checker.cpp.o"
  "CMakeFiles/vpp_softmc.dir/timing_checker.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/trace_dump.cpp.o"
  "CMakeFiles/vpp_softmc.dir/trace_dump.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/trace_recorder.cpp.o"
  "CMakeFiles/vpp_softmc.dir/trace_recorder.cpp.o.d"
  "CMakeFiles/vpp_softmc.dir/trace_replayer.cpp.o"
  "CMakeFiles/vpp_softmc.dir/trace_replayer.cpp.o.d"
  "libvpp_softmc.a"
  "libvpp_softmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_softmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
