
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/softmc/counters.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/counters.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/counters.cpp.o.d"
  "/root/repo/src/softmc/dispatcher.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/dispatcher.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/dispatcher.cpp.o.d"
  "/root/repo/src/softmc/fault_injector.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/fault_injector.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/fault_injector.cpp.o.d"
  "/root/repo/src/softmc/power_rail.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/power_rail.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/power_rail.cpp.o.d"
  "/root/repo/src/softmc/program.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/program.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/program.cpp.o.d"
  "/root/repo/src/softmc/program_text.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/program_text.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/program_text.cpp.o.d"
  "/root/repo/src/softmc/row_ops.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/row_ops.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/row_ops.cpp.o.d"
  "/root/repo/src/softmc/session.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/session.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/session.cpp.o.d"
  "/root/repo/src/softmc/thermal.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/thermal.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/thermal.cpp.o.d"
  "/root/repo/src/softmc/timing_checker.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/timing_checker.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/timing_checker.cpp.o.d"
  "/root/repo/src/softmc/trace_dump.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/trace_dump.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/trace_dump.cpp.o.d"
  "/root/repo/src/softmc/trace_recorder.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/trace_recorder.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/trace_recorder.cpp.o.d"
  "/root/repo/src/softmc/trace_replayer.cpp" "src/softmc/CMakeFiles/vpp_softmc.dir/trace_replayer.cpp.o" "gcc" "src/softmc/CMakeFiles/vpp_softmc.dir/trace_replayer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/common/CMakeFiles/vpp_common.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/dram/CMakeFiles/vpp_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
