file(REMOVE_RECURSE
  "libvpp_softmc.a"
)
