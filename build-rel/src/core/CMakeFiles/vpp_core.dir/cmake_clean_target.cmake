file(REMOVE_RECURSE
  "libvpp_core.a"
)
