# Empty dependencies file for vpp_common.
# This may be replaced when dependencies are built.
