file(REMOVE_RECURSE
  "CMakeFiles/vpp_common.dir/csv.cpp.o"
  "CMakeFiles/vpp_common.dir/csv.cpp.o.d"
  "CMakeFiles/vpp_common.dir/error.cpp.o"
  "CMakeFiles/vpp_common.dir/error.cpp.o.d"
  "CMakeFiles/vpp_common.dir/json.cpp.o"
  "CMakeFiles/vpp_common.dir/json.cpp.o.d"
  "CMakeFiles/vpp_common.dir/log.cpp.o"
  "CMakeFiles/vpp_common.dir/log.cpp.o.d"
  "CMakeFiles/vpp_common.dir/rng.cpp.o"
  "CMakeFiles/vpp_common.dir/rng.cpp.o.d"
  "CMakeFiles/vpp_common.dir/simd.cpp.o"
  "CMakeFiles/vpp_common.dir/simd.cpp.o.d"
  "CMakeFiles/vpp_common.dir/thread_pool.cpp.o"
  "CMakeFiles/vpp_common.dir/thread_pool.cpp.o.d"
  "libvpp_common.a"
  "libvpp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
