file(REMOVE_RECURSE
  "CMakeFiles/vpp_harness.dir/adjacency.cpp.o"
  "CMakeFiles/vpp_harness.dir/adjacency.cpp.o.d"
  "CMakeFiles/vpp_harness.dir/attack_patterns.cpp.o"
  "CMakeFiles/vpp_harness.dir/attack_patterns.cpp.o.d"
  "CMakeFiles/vpp_harness.dir/experiment.cpp.o"
  "CMakeFiles/vpp_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/vpp_harness.dir/recovery.cpp.o"
  "CMakeFiles/vpp_harness.dir/recovery.cpp.o.d"
  "CMakeFiles/vpp_harness.dir/retention_test.cpp.o"
  "CMakeFiles/vpp_harness.dir/retention_test.cpp.o.d"
  "CMakeFiles/vpp_harness.dir/rowhammer_test.cpp.o"
  "CMakeFiles/vpp_harness.dir/rowhammer_test.cpp.o.d"
  "CMakeFiles/vpp_harness.dir/trcd_test.cpp.o"
  "CMakeFiles/vpp_harness.dir/trcd_test.cpp.o.d"
  "CMakeFiles/vpp_harness.dir/wcdp.cpp.o"
  "CMakeFiles/vpp_harness.dir/wcdp.cpp.o.d"
  "libvpp_harness.a"
  "libvpp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
