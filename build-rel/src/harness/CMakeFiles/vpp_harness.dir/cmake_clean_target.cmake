file(REMOVE_RECURSE
  "libvpp_harness.a"
)
