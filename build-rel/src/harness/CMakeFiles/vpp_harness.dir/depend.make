# Empty dependencies file for vpp_harness.
# This may be replaced when dependencies are built.
