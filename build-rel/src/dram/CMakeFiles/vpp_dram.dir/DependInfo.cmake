
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/data_pattern.cpp" "src/dram/CMakeFiles/vpp_dram.dir/data_pattern.cpp.o" "gcc" "src/dram/CMakeFiles/vpp_dram.dir/data_pattern.cpp.o.d"
  "/root/repo/src/dram/energy.cpp" "src/dram/CMakeFiles/vpp_dram.dir/energy.cpp.o" "gcc" "src/dram/CMakeFiles/vpp_dram.dir/energy.cpp.o.d"
  "/root/repo/src/dram/mapping.cpp" "src/dram/CMakeFiles/vpp_dram.dir/mapping.cpp.o" "gcc" "src/dram/CMakeFiles/vpp_dram.dir/mapping.cpp.o.d"
  "/root/repo/src/dram/mode_registers.cpp" "src/dram/CMakeFiles/vpp_dram.dir/mode_registers.cpp.o" "gcc" "src/dram/CMakeFiles/vpp_dram.dir/mode_registers.cpp.o.d"
  "/root/repo/src/dram/module.cpp" "src/dram/CMakeFiles/vpp_dram.dir/module.cpp.o" "gcc" "src/dram/CMakeFiles/vpp_dram.dir/module.cpp.o.d"
  "/root/repo/src/dram/physics.cpp" "src/dram/CMakeFiles/vpp_dram.dir/physics.cpp.o" "gcc" "src/dram/CMakeFiles/vpp_dram.dir/physics.cpp.o.d"
  "/root/repo/src/dram/timing.cpp" "src/dram/CMakeFiles/vpp_dram.dir/timing.cpp.o" "gcc" "src/dram/CMakeFiles/vpp_dram.dir/timing.cpp.o.d"
  "/root/repo/src/dram/trr.cpp" "src/dram/CMakeFiles/vpp_dram.dir/trr.cpp.o" "gcc" "src/dram/CMakeFiles/vpp_dram.dir/trr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/common/CMakeFiles/vpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
