file(REMOVE_RECURSE
  "CMakeFiles/vpp_dram.dir/data_pattern.cpp.o"
  "CMakeFiles/vpp_dram.dir/data_pattern.cpp.o.d"
  "CMakeFiles/vpp_dram.dir/energy.cpp.o"
  "CMakeFiles/vpp_dram.dir/energy.cpp.o.d"
  "CMakeFiles/vpp_dram.dir/mapping.cpp.o"
  "CMakeFiles/vpp_dram.dir/mapping.cpp.o.d"
  "CMakeFiles/vpp_dram.dir/mode_registers.cpp.o"
  "CMakeFiles/vpp_dram.dir/mode_registers.cpp.o.d"
  "CMakeFiles/vpp_dram.dir/module.cpp.o"
  "CMakeFiles/vpp_dram.dir/module.cpp.o.d"
  "CMakeFiles/vpp_dram.dir/physics.cpp.o"
  "CMakeFiles/vpp_dram.dir/physics.cpp.o.d"
  "CMakeFiles/vpp_dram.dir/timing.cpp.o"
  "CMakeFiles/vpp_dram.dir/timing.cpp.o.d"
  "CMakeFiles/vpp_dram.dir/trr.cpp.o"
  "CMakeFiles/vpp_dram.dir/trr.cpp.o.d"
  "libvpp_dram.a"
  "libvpp_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
