# Empty dependencies file for vpp_dram.
# This may be replaced when dependencies are built.
