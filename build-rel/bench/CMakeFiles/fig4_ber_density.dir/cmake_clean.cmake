file(REMOVE_RECURSE
  "CMakeFiles/fig4_ber_density.dir/fig4_ber_density.cpp.o"
  "CMakeFiles/fig4_ber_density.dir/fig4_ber_density.cpp.o.d"
  "fig4_ber_density"
  "fig4_ber_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ber_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
