file(REMOVE_RECURSE
  "CMakeFiles/fig10_retention_ber.dir/fig10_retention_ber.cpp.o"
  "CMakeFiles/fig10_retention_ber.dir/fig10_retention_ber.cpp.o.d"
  "fig10_retention_ber"
  "fig10_retention_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_retention_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
