# Empty dependencies file for fig5_hcfirst_vs_vpp.
# This may be replaced when dependencies are built.
