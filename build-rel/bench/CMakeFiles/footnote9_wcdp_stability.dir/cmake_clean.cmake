file(REMOVE_RECURSE
  "CMakeFiles/footnote9_wcdp_stability.dir/footnote9_wcdp_stability.cpp.o"
  "CMakeFiles/footnote9_wcdp_stability.dir/footnote9_wcdp_stability.cpp.o.d"
  "footnote9_wcdp_stability"
  "footnote9_wcdp_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/footnote9_wcdp_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
