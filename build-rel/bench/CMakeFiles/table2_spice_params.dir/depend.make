# Empty dependencies file for table2_spice_params.
# This may be replaced when dependencies are built.
