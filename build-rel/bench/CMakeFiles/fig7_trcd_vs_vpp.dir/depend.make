# Empty dependencies file for fig7_trcd_vs_vpp.
# This may be replaced when dependencies are built.
