
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_trcd_vs_vpp.cpp" "bench/CMakeFiles/fig7_trcd_vs_vpp.dir/fig7_trcd_vs_vpp.cpp.o" "gcc" "bench/CMakeFiles/fig7_trcd_vs_vpp.dir/fig7_trcd_vs_vpp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/bench/CMakeFiles/vpp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/core/CMakeFiles/vpp_core.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/harness/CMakeFiles/vpp_harness.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/softmc/CMakeFiles/vpp_softmc.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/ecc/CMakeFiles/vpp_ecc.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/chips/CMakeFiles/vpp_chips.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/dram/CMakeFiles/vpp_dram.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/circuit/CMakeFiles/vpp_circuit.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/stats/CMakeFiles/vpp_stats.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/common/CMakeFiles/vpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
