# Empty dependencies file for fig3_ber_vs_vpp.
# This may be replaced when dependencies are built.
