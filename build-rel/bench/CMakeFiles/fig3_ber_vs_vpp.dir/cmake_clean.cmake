file(REMOVE_RECURSE
  "CMakeFiles/fig3_ber_vs_vpp.dir/fig3_ber_vs_vpp.cpp.o"
  "CMakeFiles/fig3_ber_vs_vpp.dir/fig3_ber_vs_vpp.cpp.o.d"
  "fig3_ber_vs_vpp"
  "fig3_ber_vs_vpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ber_vs_vpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
