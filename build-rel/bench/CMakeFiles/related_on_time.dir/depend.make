# Empty dependencies file for related_on_time.
# This may be replaced when dependencies are built.
