file(REMOVE_RECURSE
  "CMakeFiles/future_temperature_interaction.dir/future_temperature_interaction.cpp.o"
  "CMakeFiles/future_temperature_interaction.dir/future_temperature_interaction.cpp.o.d"
  "future_temperature_interaction"
  "future_temperature_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_temperature_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
