file(REMOVE_RECURSE
  "CMakeFiles/pareto_operating_points.dir/pareto_operating_points.cpp.o"
  "CMakeFiles/pareto_operating_points.dir/pareto_operating_points.cpp.o.d"
  "pareto_operating_points"
  "pareto_operating_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_operating_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
