file(REMOVE_RECURSE
  "CMakeFiles/ablation_mitigations.dir/ablation_mitigations.cpp.o"
  "CMakeFiles/ablation_mitigations.dir/ablation_mitigations.cpp.o.d"
  "ablation_mitigations"
  "ablation_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
