# Empty dependencies file for ablation_mitigations.
# This may be replaced when dependencies are built.
