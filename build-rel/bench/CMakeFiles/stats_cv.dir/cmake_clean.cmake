file(REMOVE_RECURSE
  "CMakeFiles/stats_cv.dir/stats_cv.cpp.o"
  "CMakeFiles/stats_cv.dir/stats_cv.cpp.o.d"
  "stats_cv"
  "stats_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
