file(REMOVE_RECURSE
  "CMakeFiles/observations_summary.dir/observations_summary.cpp.o"
  "CMakeFiles/observations_summary.dir/observations_summary.cpp.o.d"
  "observations_summary"
  "observations_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observations_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
