file(REMOVE_RECURSE
  "CMakeFiles/table1_modules.dir/table1_modules.cpp.o"
  "CMakeFiles/table1_modules.dir/table1_modules.cpp.o.d"
  "table1_modules"
  "table1_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
