# Empty dependencies file for table3_characteristics.
# This may be replaced when dependencies are built.
