file(REMOVE_RECURSE
  "CMakeFiles/methodology_ecc_masking.dir/methodology_ecc_masking.cpp.o"
  "CMakeFiles/methodology_ecc_masking.dir/methodology_ecc_masking.cpp.o.d"
  "methodology_ecc_masking"
  "methodology_ecc_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology_ecc_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
