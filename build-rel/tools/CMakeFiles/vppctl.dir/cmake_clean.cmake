file(REMOVE_RECURSE
  "CMakeFiles/vppctl.dir/vppctl.cpp.o"
  "CMakeFiles/vppctl.dir/vppctl.cpp.o.d"
  "vppctl"
  "vppctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
