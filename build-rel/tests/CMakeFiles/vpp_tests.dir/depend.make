# Empty dependencies file for vpp_tests.
# This may be replaced when dependencies are built.
