
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chips/module_db_test.cpp" "tests/CMakeFiles/vpp_tests.dir/chips/module_db_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/chips/module_db_test.cpp.o.d"
  "/root/repo/tests/circuit/dram_cell_test.cpp" "tests/CMakeFiles/vpp_tests.dir/circuit/dram_cell_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/circuit/dram_cell_test.cpp.o.d"
  "/root/repo/tests/circuit/matrix_test.cpp" "tests/CMakeFiles/vpp_tests.dir/circuit/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/circuit/matrix_test.cpp.o.d"
  "/root/repo/tests/circuit/montecarlo_test.cpp" "tests/CMakeFiles/vpp_tests.dir/circuit/montecarlo_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/circuit/montecarlo_test.cpp.o.d"
  "/root/repo/tests/circuit/mosfet_test.cpp" "tests/CMakeFiles/vpp_tests.dir/circuit/mosfet_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/circuit/mosfet_test.cpp.o.d"
  "/root/repo/tests/circuit/solver_test.cpp" "tests/CMakeFiles/vpp_tests.dir/circuit/solver_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/circuit/solver_test.cpp.o.d"
  "/root/repo/tests/common/csv_test.cpp" "tests/CMakeFiles/vpp_tests.dir/common/csv_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/common/csv_test.cpp.o.d"
  "/root/repo/tests/common/expected_test.cpp" "tests/CMakeFiles/vpp_tests.dir/common/expected_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/common/expected_test.cpp.o.d"
  "/root/repo/tests/common/json_parse_test.cpp" "tests/CMakeFiles/vpp_tests.dir/common/json_parse_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/common/json_parse_test.cpp.o.d"
  "/root/repo/tests/common/result_test.cpp" "tests/CMakeFiles/vpp_tests.dir/common/result_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/common/result_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/vpp_tests.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/thread_pool_test.cpp" "tests/CMakeFiles/vpp_tests.dir/common/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/common/thread_pool_test.cpp.o.d"
  "/root/repo/tests/core/calibration_test.cpp" "tests/CMakeFiles/vpp_tests.dir/core/calibration_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/core/calibration_test.cpp.o.d"
  "/root/repo/tests/core/export_test.cpp" "tests/CMakeFiles/vpp_tests.dir/core/export_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/core/export_test.cpp.o.d"
  "/root/repo/tests/core/instrumentation_test.cpp" "tests/CMakeFiles/vpp_tests.dir/core/instrumentation_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/core/instrumentation_test.cpp.o.d"
  "/root/repo/tests/core/parallel_study_test.cpp" "tests/CMakeFiles/vpp_tests.dir/core/parallel_study_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/core/parallel_study_test.cpp.o.d"
  "/root/repo/tests/core/resilient_study_test.cpp" "tests/CMakeFiles/vpp_tests.dir/core/resilient_study_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/core/resilient_study_test.cpp.o.d"
  "/root/repo/tests/core/study_test.cpp" "tests/CMakeFiles/vpp_tests.dir/core/study_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/core/study_test.cpp.o.d"
  "/root/repo/tests/dram/blast_radius_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/blast_radius_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/blast_radius_test.cpp.o.d"
  "/root/repo/tests/dram/mapping_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/mapping_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/mapping_test.cpp.o.d"
  "/root/repo/tests/dram/mode_registers_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/mode_registers_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/mode_registers_test.cpp.o.d"
  "/root/repo/tests/dram/module_fuzz_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/module_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/module_fuzz_test.cpp.o.d"
  "/root/repo/tests/dram/module_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/module_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/module_test.cpp.o.d"
  "/root/repo/tests/dram/on_time_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/on_time_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/on_time_test.cpp.o.d"
  "/root/repo/tests/dram/physics_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/physics_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/physics_test.cpp.o.d"
  "/root/repo/tests/dram/row_repair_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/row_repair_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/row_repair_test.cpp.o.d"
  "/root/repo/tests/dram/sensing_equivalence_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/sensing_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/sensing_equivalence_test.cpp.o.d"
  "/root/repo/tests/dram/simd_word_walk_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/simd_word_walk_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/simd_word_walk_test.cpp.o.d"
  "/root/repo/tests/dram/timing_pattern_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/timing_pattern_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/timing_pattern_test.cpp.o.d"
  "/root/repo/tests/dram/trr_test.cpp" "tests/CMakeFiles/vpp_tests.dir/dram/trr_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/dram/trr_test.cpp.o.d"
  "/root/repo/tests/ecc/secded_test.cpp" "tests/CMakeFiles/vpp_tests.dir/ecc/secded_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/ecc/secded_test.cpp.o.d"
  "/root/repo/tests/ecc/word_census_test.cpp" "tests/CMakeFiles/vpp_tests.dir/ecc/word_census_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/ecc/word_census_test.cpp.o.d"
  "/root/repo/tests/harness/adjacency_test.cpp" "tests/CMakeFiles/vpp_tests.dir/harness/adjacency_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/harness/adjacency_test.cpp.o.d"
  "/root/repo/tests/harness/attack_patterns_test.cpp" "tests/CMakeFiles/vpp_tests.dir/harness/attack_patterns_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/harness/attack_patterns_test.cpp.o.d"
  "/root/repo/tests/harness/rowhammer_test_test.cpp" "tests/CMakeFiles/vpp_tests.dir/harness/rowhammer_test_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/harness/rowhammer_test_test.cpp.o.d"
  "/root/repo/tests/harness/trcd_retention_test.cpp" "tests/CMakeFiles/vpp_tests.dir/harness/trcd_retention_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/harness/trcd_retention_test.cpp.o.d"
  "/root/repo/tests/memctrl/controller_test.cpp" "tests/CMakeFiles/vpp_tests.dir/memctrl/controller_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/memctrl/controller_test.cpp.o.d"
  "/root/repo/tests/memctrl/mitigation_test.cpp" "tests/CMakeFiles/vpp_tests.dir/memctrl/mitigation_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/memctrl/mitigation_test.cpp.o.d"
  "/root/repo/tests/memctrl/page_policy_test.cpp" "tests/CMakeFiles/vpp_tests.dir/memctrl/page_policy_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/memctrl/page_policy_test.cpp.o.d"
  "/root/repo/tests/properties/circuit_properties_test.cpp" "tests/CMakeFiles/vpp_tests.dir/properties/circuit_properties_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/properties/circuit_properties_test.cpp.o.d"
  "/root/repo/tests/properties/module_properties_test.cpp" "tests/CMakeFiles/vpp_tests.dir/properties/module_properties_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/properties/module_properties_test.cpp.o.d"
  "/root/repo/tests/softmc/fault_injector_test.cpp" "tests/CMakeFiles/vpp_tests.dir/softmc/fault_injector_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/softmc/fault_injector_test.cpp.o.d"
  "/root/repo/tests/softmc/observer_test.cpp" "tests/CMakeFiles/vpp_tests.dir/softmc/observer_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/softmc/observer_test.cpp.o.d"
  "/root/repo/tests/softmc/program_test.cpp" "tests/CMakeFiles/vpp_tests.dir/softmc/program_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/softmc/program_test.cpp.o.d"
  "/root/repo/tests/softmc/program_text_test.cpp" "tests/CMakeFiles/vpp_tests.dir/softmc/program_text_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/softmc/program_text_test.cpp.o.d"
  "/root/repo/tests/softmc/rig_test.cpp" "tests/CMakeFiles/vpp_tests.dir/softmc/rig_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/softmc/rig_test.cpp.o.d"
  "/root/repo/tests/softmc/session_test.cpp" "tests/CMakeFiles/vpp_tests.dir/softmc/session_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/softmc/session_test.cpp.o.d"
  "/root/repo/tests/softmc/timing_checker_test.cpp" "tests/CMakeFiles/vpp_tests.dir/softmc/timing_checker_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/softmc/timing_checker_test.cpp.o.d"
  "/root/repo/tests/softmc/trace_replay_test.cpp" "tests/CMakeFiles/vpp_tests.dir/softmc/trace_replay_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/softmc/trace_replay_test.cpp.o.d"
  "/root/repo/tests/softmc/trace_ring_test.cpp" "tests/CMakeFiles/vpp_tests.dir/softmc/trace_ring_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/softmc/trace_ring_test.cpp.o.d"
  "/root/repo/tests/stats/descriptive_test.cpp" "tests/CMakeFiles/vpp_tests.dir/stats/descriptive_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/stats/descriptive_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_test.cpp" "tests/CMakeFiles/vpp_tests.dir/stats/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/stats/histogram_test.cpp.o.d"
  "/root/repo/tests/stats/inference_test.cpp" "tests/CMakeFiles/vpp_tests.dir/stats/inference_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/stats/inference_test.cpp.o.d"
  "/root/repo/tests/stats/kde_test.cpp" "tests/CMakeFiles/vpp_tests.dir/stats/kde_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/stats/kde_test.cpp.o.d"
  "/root/repo/tests/workload/workload_test.cpp" "tests/CMakeFiles/vpp_tests.dir/workload/workload_test.cpp.o" "gcc" "tests/CMakeFiles/vpp_tests.dir/workload/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/common/CMakeFiles/vpp_common.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/stats/CMakeFiles/vpp_stats.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/circuit/CMakeFiles/vpp_circuit.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/ecc/CMakeFiles/vpp_ecc.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/dram/CMakeFiles/vpp_dram.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/softmc/CMakeFiles/vpp_softmc.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/chips/CMakeFiles/vpp_chips.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/harness/CMakeFiles/vpp_harness.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/memctrl/CMakeFiles/vpp_memctrl.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/workload/CMakeFiles/vpp_workload.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/core/CMakeFiles/vpp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
