# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-rel/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-rel/tests/vpp_tests[1]_include.cmake")
include("/root/repo/build-rel/tests/vpp_tests[2]_include.cmake")
include("/root/repo/build-rel/tests/vpp_tests[3]_include.cmake")
