# Empty dependencies file for spice_waveforms.
# This may be replaced when dependencies are built.
