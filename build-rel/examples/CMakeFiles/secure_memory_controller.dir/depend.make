# Empty dependencies file for secure_memory_controller.
# This may be replaced when dependencies are built.
