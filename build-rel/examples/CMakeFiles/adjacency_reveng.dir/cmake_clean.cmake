file(REMOVE_RECURSE
  "CMakeFiles/adjacency_reveng.dir/adjacency_reveng.cpp.o"
  "CMakeFiles/adjacency_reveng.dir/adjacency_reveng.cpp.o.d"
  "adjacency_reveng"
  "adjacency_reveng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjacency_reveng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
