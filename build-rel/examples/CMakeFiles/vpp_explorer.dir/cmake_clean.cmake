file(REMOVE_RECURSE
  "CMakeFiles/vpp_explorer.dir/vpp_explorer.cpp.o"
  "CMakeFiles/vpp_explorer.dir/vpp_explorer.cpp.o.d"
  "vpp_explorer"
  "vpp_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
