// Ablation: Obsv. 15's mitigation -- instead of doubling the refresh rate
// for the whole rank when operating at VPPmin, profile retention once and
// refresh only the weak rows at 2x. Compares refresh work and verifies both
// schemes hold data through a full nominal refresh window.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "memctrl/controller.hpp"
#include "memctrl/retention_profiler.hpp"

int main() {
  using namespace vppstudy;
  auto profile = chips::profile_by_name("B6").value();  // has 64ms weak rows
  profile.rows_per_bank = 8192;

  std::printf("# Ablation: selective 2x refresh vs blanket 2x refresh "
              "(module B6 at VPPmin %.1fV, 80C)\n\n", profile.vppmin_v);

  // Profile once (REAPER-style, 2x guardband).
  softmc::Session profiling_session(profile);
  (void)profiling_session.set_temperature(common::kRetentionTestTempC);
  (void)profiling_session.set_vpp(profile.vppmin_v);
  memctrl::ProfilerOptions popts;
  popts.row_count = 256;
  auto prof = memctrl::profile_retention(profiling_session, popts);
  if (!prof) {
    std::fprintf(stderr, "profiling failed: %s\n", prof.error().message.c_str());
    return 1;
  }
  std::printf("retention profile: %zu of %u rows weak (%.1f%%; paper Obsv. "
              "15: 16.4%% at 64ms)\n\n",
              prof->weak_rows.size(), prof->rows_scanned,
              100.0 * prof->weak_fraction());

  // Refresh work per tREFW for a full bank, extrapolated from the profile:
  //   blanket 2x: one extra full REF sweep -> rows_per_bank extra row
  //               refreshes per bank per window;
  //   selective:  2 extra touches per weak row per window.
  const double weak_rows_per_bank =
      prof->weak_fraction() * profile.rows_per_bank;
  const double blanket_extra = profile.rows_per_bank;
  const double selective_extra = 2.0 * weak_rows_per_bank;
  std::printf("extra row-refreshes per bank per 64ms window:\n");
  std::printf("  blanket 2x refresh:   %.0f\n", blanket_extra);
  std::printf("  selective 2x refresh: %.0f  (%.1f%% of blanket)\n\n",
              selective_extra, 100.0 * selective_extra / blanket_extra);

  // Functional check: a weak row written through the controller survives a
  // full window under the selective scheme.
  if (!prof->weak_rows.empty()) {
    softmc::Session session(profile);
    (void)session.set_temperature(common::kRetentionTestTempC);
    (void)session.set_vpp(profile.vppmin_v);
    memctrl::ControllerOptions opts;
    opts.fast_refresh_rows = prof->weak_rows;
    opts.use_secded = false;
    memctrl::MemoryController mc(session, opts,
                                 std::make_unique<memctrl::NoMitigation>());
    const auto weak = prof->weak_rows.front();
    memctrl::Request wr;
    wr.kind = memctrl::Request::Kind::kWrite;
    wr.address = weak;
    wr.data.fill(0x5A);
    (void)mc.execute(wr);
    (void)mc.idle_ms(64.0);
    memctrl::Request rd;
    rd.kind = memctrl::Request::Kind::kRead;
    rd.address = weak;
    auto r = mc.execute(rd);
    std::array<std::uint8_t, 8> expected{};
    expected.fill(0x5A);
    const bool ok = r.has_value() && r->data == expected;
    std::printf("functional check on weak row %u: %s (selective refreshes "
                "issued: %llu)\n",
                weak.row, ok ? "data intact" : "DATA LOST",
                static_cast<unsigned long long>(
                    mc.stats().selective_refreshes));
    if (!ok) return 1;
  }
  return 0;
}
