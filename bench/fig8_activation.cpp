// Fig. 8: (a) bitline voltage waveform during activation at different VPP
// levels; (b) Monte-Carlo distribution of tRCDmin per VPP level with the
// worst-case (largest) values annotated.
// Paper results to reproduce: mean tRCDmin 11.6ns (2.5V) -> 13.6ns (1.7V);
// worst case 12.9 -> 13.3 / 14.2 / 16.9ns at 1.9 / 1.8 / 1.7V; no reliable
// operation at VPP <= 1.6V (footnote 13).
#include <cstdio>
#include <cstdlib>

#include "circuit/montecarlo.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace vppstudy;
  long runs = 200;
  if (const char* env = std::getenv("VPP_BENCH_MC_RUNS")) {
    runs = std::max(10L, std::strtol(env, nullptr, 10));
  }
  std::printf("# Fig. 8: activation under reduced VPP (%ld MC runs/level; "
              "paper: 10000). Override: VPP_BENCH_MC_RUNS\n\n", runs);

  // (a) nominal waveforms, decimated to 2ns prints.
  std::printf("Fig. 8a: bitline voltage after ACT (V), one column per VPP\n");
  std::printf("%-8s", "t[ns]");
  const double levels[] = {2.5, 2.1, 1.9, 1.8, 1.7};
  std::vector<circuit::ActivationResult> waves;
  for (const double vpp : levels) {
    circuit::DramCellSimParams p;
    p.vpp_v = vpp;
    auto r = circuit::simulate_activation(p);
    if (!r) {
      std::fprintf(stderr, "simulation failed at %.1fV: %s\n", vpp,
                   r.error().message.c_str());
      return 1;
    }
    waves.push_back(std::move(*r));
    std::printf("  %5.1fV", vpp);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < waves[0].t_ns.size(); i += 80) {  // 2ns steps
    std::printf("%-8.1f", waves[0].t_ns[i]);
    for (const auto& w : waves) std::printf("  %6.3f", w.v_bitline[i]);
    std::printf("\n");
  }

  // (b) Monte-Carlo tRCDmin distributions.
  std::printf("\nFig. 8b: tRCDmin distribution per VPP (Monte-Carlo)\n");
  for (const double vpp : {2.5, 1.9, 1.8, 1.7, 1.6}) {
    circuit::DramCellSimParams p;
    p.vpp_v = vpp;
    circuit::MonteCarloOptions opts;
    opts.runs = static_cast<std::size_t>(runs);
    const auto mc = circuit::run_monte_carlo(p, opts);
    const auto summary = mc.trcd_summary();
    std::printf(
        "VPP=%.1fV: reliable %.0f%%, mean tRCDmin %.2fns, worst %.2fns\n",
        vpp, 100.0 * mc.reliability(opts.runs), summary.mean,
        mc.worst_trcd_ns());
    if (!mc.t_rcd_min_ns.empty()) {
      stats::Histogram h(10.0, 18.0, 16);
      h.add_all(mc.t_rcd_min_ns);
      std::printf("%s", h.render(40).c_str());
    }
  }
  std::printf(
      "\nPaper: mean 11.6 -> 13.6ns (2.5 -> 1.7V); worst 12.9 -> 13.3 / 14.2 "
      "/ 16.9ns at 1.9 / 1.8 / 1.7V; unreliable at <= 1.6V\n");
  return 0;
}
