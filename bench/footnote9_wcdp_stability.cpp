// Footnote 9: "WCDP changes for only ~2.4% of tested rows [when VPP is
// reduced], causing less than 9% deviation in HCfirst for 90% of the
// affected rows." This bench repeats the WCDP determination at every VPP
// level for a sample of rows and reports both numbers.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "harness/rowhammer_test.hpp"
#include "harness/wcdp.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace vppstudy;
  auto profile = chips::profile_by_name("C6").value();
  profile.rows_per_bank = 8192;
  constexpr std::uint32_t kRows = 48;

  std::printf("# Footnote 9: WCDP stability across VPP (module C6, %u "
              "rows)\n\n", kRows);

  softmc::Session session(profile);
  session.set_auto_refresh(false);

  std::vector<std::uint32_t> rows;
  for (std::uint32_t r = 64; rows.size() < kRows; r += 23) rows.push_back(r);

  // WCDP at nominal VPP.
  std::vector<dram::DataPattern> wcdp_nominal(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto p = harness::find_wcdp_hammer(session, 0, rows[i]);
    if (!p) return 1;
    wcdp_nominal[i] = *p;
  }

  std::uint32_t changed = 0;
  std::vector<double> deviation;
  if (!session.set_vpp(profile.vppmin_v).ok()) return 1;
  harness::RowHammerConfig cfg;
  cfg.num_iterations = 1;
  harness::RowHammerTest test(session, cfg);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto p = harness::find_wcdp_hammer(session, 0, rows[i]);
    if (!p) return 1;
    if (*p == wcdp_nominal[i]) continue;
    ++changed;
    // Deviation in HCfirst between using the stale WCDP vs the fresh one.
    auto stale = test.test_row(0, rows[i], wcdp_nominal[i]);
    auto fresh = test.test_row(0, rows[i], *p);
    if (stale && fresh && fresh->hc_first > 0) {
      deviation.push_back(std::abs(static_cast<double>(stale->hc_first) -
                                   static_cast<double>(fresh->hc_first)) /
                          static_cast<double>(fresh->hc_first));
    }
  }

  std::printf("rows whose WCDP changed at VPPmin: %u of %u (%.1f%%; paper: "
              "~2.4%%)\n",
              changed, kRows, 100.0 * changed / kRows);
  if (!deviation.empty()) {
    std::printf("HCfirst deviation from using the stale WCDP: p90 = %.1f%% "
                "(paper: <9%% for 90%% of affected rows)\n",
                100.0 * stats::percentile(deviation, 90.0));
  } else {
    std::printf("no affected rows in this sample -> deviation n/a\n");
  }
  std::printf(
      "\nNote: the model's per-pattern cell populations resample between "
      "patterns, so its\nWCDP ranking is noisier than real silicon's; the "
      "qualitative conclusion matches\nsection 4.1's methodology -- "
      "determining WCDP once at nominal VPP and reusing it\nat reduced VPP "
      "is sound.\n");
  return 0;
}
