// Related characterization axis ([12], later the RowPress attack): the
// longer an aggressor row stays open per activation, the fewer activations
// a bit flip needs. This bench sweeps the hammer-loop spacing and reports
// the victim flip count at a fixed activation budget -- and shows that VPP
// reduction keeps paying off even against on-time-boosted attacks.
#include <cstdio>

#include "bench_common.hpp"
#include "dram/data_pattern.hpp"
#include "harness/experiment.hpp"

namespace {

using namespace vppstudy;

std::uint64_t flips(double vpp, double act_to_act_ns, std::uint64_t count) {
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 8192;
  softmc::Session s(profile);
  s.module().set_trr_enabled(false);
  if (!s.set_vpp(vpp).ok()) return 0;
  const std::uint32_t victim = 700;
  const auto n = s.module().mapping().physical_neighbors(victim);
  const auto vimg = dram::pattern_row(dram::DataPattern::kCheckerAA,
                                      dram::kBytesPerRow);
  const auto aimg = dram::pattern_row(dram::DataPattern::kChecker55,
                                      dram::kBytesPerRow);
  (void)s.init_row(0, victim, vimg);
  (void)s.init_row(0, n.below, aimg);
  (void)s.init_row(0, n.above, aimg);
  (void)s.hammer_double_sided(0, n.below, n.above, count, act_to_act_ns);
  auto observed = s.read_row(0, victim, harness::kSafeReadTrcdNs);
  if (!observed) return 0;
  return harness::count_bit_flips(vimg, *observed);
}

}  // namespace

int main() {
  constexpr std::uint64_t kBudget = 40'000;  // activations per aggressor
  std::printf("# Aggressor on-time sweep (module B3, %llu ACTs/aggressor)\n\n",
              static_cast<unsigned long long>(kBudget));
  std::printf("%-14s %10s | %14s %14s\n", "spacing[ns]", "on-time[ns]",
              "flips @2.5V", "flips @1.6V");
  for (const double mult : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double spacing = 45.5 * mult;
    std::printf("%-14.1f %10.1f | %14llu %14llu\n", spacing, spacing - 13.5,
                static_cast<unsigned long long>(flips(2.5, spacing, kBudget)),
                static_cast<unsigned long long>(flips(1.6, spacing, kBudget)));
  }
  std::printf(
      "\nLonger open times amplify the attack at both voltages, but the "
      "reduced-VPP column\nstays well below the nominal one throughout: the "
      "VPP benefit composes with the\non-time axis instead of being erased "
      "by it.\n");
  return 0;
}
