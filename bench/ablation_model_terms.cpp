// Ablation of the device model's design choices (DESIGN.md section 4):
// which mechanism produces which published observation?
//
//   (1) Zero the restoration-penalty terms -> the minority of rows whose
//       RowHammer vulnerability *worsens* at low VPP (Obsv. 2/5) vanishes.
//   (2) Zero the per-row sensitivity jitter -> the per-vendor population
//       spreads of Figs. 4/6 collapse to a point.
// Computed analytically from the cell physics (no harness) over many rows.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "dram/physics.hpp"

namespace {

using namespace vppstudy;

struct Spread {
  double min_m = 1e9;
  double max_m = -1e9;
  double frac_below_one = 0.0;
};

Spread measure(const dram::CellPhysics& phys, double vpp,
               std::uint32_t rows) {
  Spread s;
  std::uint32_t below = 0;
  for (std::uint32_t r = 1; r <= rows; ++r) {
    const auto rp = phys.row_params(0, r);
    const double m = phys.hammer_multiplier(rp, vpp);
    s.min_m = std::min(s.min_m, m);
    s.max_m = std::max(s.max_m, m);
    if (m < 1.0 - 1e-9) ++below;
  }
  s.frac_below_one = static_cast<double>(below) / rows;
  return s;
}

}  // namespace

int main() {
  // C2's module-level shift is near zero (9.6K -> 9.2K), so the per-row
  // terms are clearly visible around M = 1.
  const auto profile = chips::profile_by_name("C2").value();
  constexpr std::uint32_t kRows = 4000;
  const double vppmin = profile.vppmin_v;

  const auto& base_curve = dram::vendor_curve(profile.mfr);

  std::printf("# Model-term ablation (module C2, %u rows, at VPPmin %.1fV)\n\n",
              kRows, vppmin);
  std::printf("%-34s %8s %8s %16s\n", "configuration", "min M", "max M",
              "rows with M<1");

  const dram::CellPhysics full(profile);
  const auto s_full = measure(full, vppmin, kRows);
  std::printf("%-34s %8.3f %8.3f %15.1f%%\n", "full model", s_full.min_m,
              s_full.max_m, 100.0 * s_full.frac_below_one);

  dram::VendorCurve no_penalty = base_curve;
  no_penalty.inversion_fraction = 0.0;
  no_penalty.inversion_scale = 0.0;
  const dram::CellPhysics ablate_penalty(profile, no_penalty);
  const auto s_np = measure(ablate_penalty, vppmin, kRows);
  std::printf("%-34s %8.3f %8.3f %15.1f%%   <- Obsv. 2/5 need this term\n",
              "no restoration penalty", s_np.min_m, s_np.max_m,
              100.0 * s_np.frac_below_one);

  dram::VendorCurve no_jitter = base_curve;
  no_jitter.s_jitter_sigma = 0.0;
  const dram::CellPhysics ablate_jitter(profile, no_jitter);
  const auto s_nj = measure(ablate_jitter, vppmin, kRows);
  std::printf("%-34s %8.3f %8.3f %15.1f%%   <- Figs. 4/6 spread needs this\n",
              "no per-row sensitivity jitter", s_nj.min_m, s_nj.max_m,
              100.0 * s_nj.frac_below_one);

  dram::VendorCurve neither = no_penalty;
  neither.s_jitter_sigma = 0.0;
  const dram::CellPhysics ablate_both(profile, neither);
  const auto s_nb = measure(ablate_both, vppmin, kRows);
  std::printf("%-34s %8.3f %8.3f %15.1f%%   <- pure module-level shift\n",
              "neither", s_nb.min_m, s_nb.max_m,
              100.0 * s_nb.frac_below_one);

  const bool ok = s_full.frac_below_one > 0.01 &&
                  s_np.frac_below_one < s_full.frac_below_one &&
                  (s_nb.max_m - s_nb.min_m) < 0.05 &&
                  (s_full.max_m - s_full.min_m) > 0.2;
  std::printf("\n%s\n", ok ? "ablation confirms both terms are load-bearing"
                           : "UNEXPECTED: ablation did not separate terms");
  return ok ? 0 : 1;
}
