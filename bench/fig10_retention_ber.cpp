// Fig. 10: (a) data retention BER vs refresh window for different VPP
// levels (mean across rows, 90% CI); (b) distribution of per-row retention
// BER at tREFW = 4s per manufacturer.
// Paper results to reproduce: higher BER curves at lower VPP; mean BER at 4s
// rising 0.3->0.8% (A), 0.2->0.5% (B), 1.4->2.5% (C) as VPP drops 2.5->1.5V;
// most modules clean at the nominal 64ms window.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  auto opt = bench::options_from_args(argc, argv);
  bench::print_scale_banner("Fig. 10: retention BER under reduced VPP", opt);

  const auto cfg = bench::sweep_config(opt);
  // Retention needs only a coarse VPP grid: nominal, 2.0, and VPPmin.
  struct VendorAccum {
    std::vector<double> ref_ber_nominal;  // per-row BER at 4s, 2.5V
    std::vector<double> ref_ber_low;      // per-row BER at 4s, VPPmin
  };
  std::map<dram::Manufacturer, VendorAccum> vendors;
  std::vector<double> windows;
  std::map<int, std::vector<double>> mean_curves;  // level index -> sums
  int curve_count = 0;
  int clean_at_64ms = 0;
  int modules_tested = 0;

  // One job per module on a {2.5V, 2.0V, VPPmin} grid; aggregation stays
  // serial and in module order below.
  const auto sweeps = bench::parallel_module_map(
      opt,
      [&cfg](const dram::ModuleProfile& profile) {
        auto module_cfg = cfg;
        module_cfg.vpp_levels = {2.5, 2.0, profile.vppmin_v};
        core::Study study(profile);
        return study.retention_sweep(module_cfg);
      });
  for (const auto& sweep : sweeps) {
    ++modules_tested;
    if (windows.empty()) windows = sweep.trefw_ms;
    for (std::size_t l = 0; l < sweep.vpp_levels.size() && l < 3; ++l) {
      auto& acc = mean_curves[static_cast<int>(l)];
      if (acc.empty()) acc.assign(sweep.mean_ber[l].size(), 0.0);
      for (std::size_t w = 0; w < sweep.mean_ber[l].size(); ++w) {
        acc[w] += sweep.mean_ber[l][w];
      }
    }
    ++curve_count;
    auto& v = vendors[sweep.mfr];
    const auto& nominal_rows = sweep.row_ber_at_reference.front();
    const auto& low_rows = sweep.row_ber_at_reference.back();
    v.ref_ber_nominal.insert(v.ref_ber_nominal.end(), nominal_rows.begin(),
                             nominal_rows.end());
    v.ref_ber_low.insert(v.ref_ber_low.end(), low_rows.begin(),
                         low_rows.end());
    // Obsv. 13: does this module flip at 64ms at VPPmin?
    std::size_t idx64 = 0;
    for (std::size_t w = 0; w < windows.size(); ++w) {
      if (std::abs(windows[w] - 64.0) < 1.0) idx64 = w;
    }
    if (sweep.mean_ber.back()[idx64] == 0.0) ++clean_at_64ms;
  }

  std::printf("\nFig. 10a: mean retention BER vs tREFW (rows averaged over "
              "all modules)\n%-10s %12s %12s %12s\n", "tREFW[ms]", "VPP=2.5",
              "VPP=2.0", "VPP=min");
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::printf("%-10.0f", windows[w]);
    for (int l = 0; l < 3; ++l) {
      const auto it = mean_curves.find(l);
      if (it == mean_curves.end() || w >= it->second.size()) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %12.4e", it->second[w] / curve_count);
      }
    }
    std::printf("\n");
  }

  std::printf("\nFig. 10b: mean per-row BER at tREFW=4s, per vendor\n");
  for (const auto& [mfr, acc] : vendors) {
    std::printf("  %s: %.2f%% at 2.5V -> %.2f%% at VPPmin\n",
                dram::manufacturer_name(mfr),
                100.0 * stats::mean(acc.ref_ber_nominal),
                100.0 * stats::mean(acc.ref_ber_low));
  }
  std::printf(
      "\nObsv. 13 check: %d of %d modules show no flips at the 64ms window "
      "at VPPmin (paper: 23 of 30)\n",
      clean_at_64ms, modules_tested);
  std::printf(
      "Paper Fig. 10b: A 0.3->0.8%%, B 0.2->0.5%%, C 1.4->2.5%% "
      "(2.5V -> 1.5V)\n");
  return 0;
}
