// Table 3: per-DIMM RowHammer characteristics at nominal VPP (2.5V) and at
// VPPmin, re-measured through the full harness (Alg. 1 with WCDP selection)
// and printed next to the paper's values.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "chips/module_db.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  const auto opt = bench::options_from_args(argc, argv);
  bench::print_scale_banner("Table 3: module characteristics", opt);

  std::printf(
      "%-4s %-26s | %9s %9s | %5s | %9s %9s | %9s %9s | %9s %9s\n", "DIMM",
      "Model", "HC@2.5", "BER@2.5", "VPmin", "HC@min", "BER@min",
      "paperHC25", "paperBER25", "paperHCmn", "paperBERmn");

  const auto cfg = bench::sweep_config(opt);
  // Each job measures one module on its own {2.5V, VPPmin} grid and formats
  // its table row; rows print in module order regardless of scheduling.
  const auto lines = bench::parallel_module_map(
      opt,
      [&cfg](const dram::ModuleProfile& profile)
          -> common::Expected<std::string> {
        auto module_cfg = cfg;
        module_cfg.vpp_levels = {2.5, profile.vppmin_v};
        core::Study study(profile);
        auto sweep = study.rowhammer_sweep(module_cfg);
        if (!sweep) return sweep.error();
        const std::size_t last = sweep->vpp_levels.size() - 1;
        char line[256];
        std::snprintf(
            line, sizeof(line),
            "%-4s %-26s | %9llu %9.2e | %5.1f | %9llu %9.2e | %9.0f %9.2e | "
            "%9.0f %9.2e",
            profile.name.c_str(), profile.dimm_model.c_str(),
            static_cast<unsigned long long>(sweep->min_hc_first_at(0)),
            sweep->max_ber_at(0), profile.vppmin_v,
            static_cast<unsigned long long>(sweep->min_hc_first_at(last)),
            sweep->max_ber_at(last), profile.hc_first_nominal,
            profile.ber_nominal, profile.hc_first_vppmin, profile.ber_vppmin);
        return std::string(line);
      });
  for (const auto& line : lines) std::printf("%s\n", line.c_str());
  std::printf(
      "\nNote: measured columns come from the simulated-device harness on a "
      "row sample;\npaper columns are the Table 3 anchors the device model "
      "was calibrated against.\nA5 is the known outlier: its paper BER "
      "(1.4e-6) reflects a row population far\nlarger than any practical "
      "sample (see DESIGN.md section 5).\n");
  return 0;
}
