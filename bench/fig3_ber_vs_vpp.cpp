// Fig. 3: normalized RowHammer BER (at HC = 300K) across VPP levels, one
// curve per module, with 90% confidence bands across tested rows.
// Paper result to reproduce: BER *decreases* with reduced VPP for most rows,
// by 15.2% on average and up to 66.9% (B3 at 1.6V).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  const auto opt = bench::options_from_args(argc, argv);
  bench::print_scale_banner("Fig. 3: normalized RowHammer BER vs VPP", opt);

  const auto sweeps = bench::run_rowhammer_all(opt);
  double worst_reduction = 0.0;
  std::string worst_module;
  double worst_vpp = 2.5;
  double sum_reduction = 0.0;
  std::size_t n_rows = 0;

  std::printf("%-6s", "VPP[V]");
  for (const auto& s : sweeps) std::printf(" %8s", s.module_name.c_str());
  std::printf("\n");
  // All modules share the master grid; print per level, gaps below VPPmin.
  const auto grid = bench::vpp_grid(opt.vpp_step);
  for (const double vpp : grid) {
    std::printf("%-6.2f", vpp);
    for (const auto& s : sweeps) {
      const int idx = s.level_index(vpp);
      if (idx < 0) {
        std::printf(" %8s", "-");
        continue;
      }
      const auto norm = s.normalized_ber_at(static_cast<std::size_t>(idx));
      const double mean = stats::mean(norm);
      std::printf(" %8.3f", mean);
      if (idx == static_cast<int>(s.vpp_levels.size()) - 1) {
        for (const double r : norm) {
          sum_reduction += 1.0 - r;
          ++n_rows;
          if (1.0 - r > worst_reduction) {
            worst_reduction = 1.0 - r;
            worst_module = s.module_name;
            worst_vpp = vpp;
          }
        }
      }
    }
    std::printf("\n");
  }

  std::printf("\n90%% bands across rows (per module, at its VPPmin):\n");
  for (const auto& s : sweeps) {
    const auto norm = s.normalized_ber_at(s.vpp_levels.size() - 1);
    const auto band = stats::central_interval(norm, 0.90);
    std::printf("  %-4s @%.1fV: mean %.3f [%.3f, %.3f]\n",
                s.module_name.c_str(), s.vpp_levels.back(),
                stats::mean(norm), band.lower, band.upper);
  }

  std::printf(
      "\nHeadline: mean BER reduction at VPPmin = %.1f%% (paper: 15.2%%), "
      "max = %.1f%% on %s at %.1fV (paper: 66.9%% on B3 at 1.6V)\n",
      100.0 * sum_reduction / static_cast<double>(std::max<std::size_t>(n_rows, 1)),
      100.0 * worst_reduction, worst_module.c_str(), worst_vpp);
  return 0;
}
