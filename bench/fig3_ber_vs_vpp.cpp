// Fig. 3: normalized RowHammer BER (at HC = 300K) across VPP levels, one
// curve per module, with 90% confidence bands across tested rows.
// Paper result to reproduce: BER *decreases* with reduced VPP for most rows,
// by 15.2% on average and up to 66.9% (B3 at 1.6V).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  const auto opt = bench::options_from_args(argc, argv);
  bench::print_scale_banner("Fig. 3: normalized RowHammer BER vs VPP", opt);

  const auto sweeps = bench::run_rowhammer_all(opt);
  const auto headline = bench::print_normalized_sweep_table(
      sweeps, opt,
      [](const core::ModuleSweepResult& s, std::size_t level) {
        return s.normalized_ber_at(level);
      },
      [](double r) { return 1.0 - r; });

  std::printf(
      "\nHeadline: mean BER reduction at VPPmin = %.1f%% (paper: 15.2%%), "
      "max = %.1f%% on %s at %.1fV (paper: 66.9%% on B3 at 1.6V)\n",
      headline.mean_pct(), headline.max_pct(), headline.max_module.c_str(),
      headline.max_vpp);
  return 0;
}
