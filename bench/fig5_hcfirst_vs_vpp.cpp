// Fig. 5: normalized HCfirst across VPP levels, one curve per module, with
// 90% bands across rows. Paper result to reproduce: HCfirst *increases* with
// reduced VPP for most rows, by 7.4% on average and up to 85.8% (B3, 1.6V).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  const auto opt = bench::options_from_args(argc, argv);
  bench::print_scale_banner("Fig. 5: normalized HCfirst vs VPP", opt);

  const auto sweeps = bench::run_rowhammer_all(opt);
  double max_increase = 0.0;
  std::string max_module;
  double sum_increase = 0.0;
  std::size_t n_rows = 0;

  std::printf("%-6s", "VPP[V]");
  for (const auto& s : sweeps) std::printf(" %8s", s.module_name.c_str());
  std::printf("\n");
  const auto grid = bench::vpp_grid(opt.vpp_step);
  for (const double vpp : grid) {
    std::printf("%-6.2f", vpp);
    for (const auto& s : sweeps) {
      const int idx = s.level_index(vpp);
      if (idx < 0) {
        std::printf(" %8s", "-");
        continue;
      }
      const auto norm = s.normalized_hc_first_at(static_cast<std::size_t>(idx));
      std::printf(" %8.3f", stats::mean(norm));
      if (idx == static_cast<int>(s.vpp_levels.size()) - 1) {
        for (const double r : norm) {
          sum_increase += r - 1.0;
          ++n_rows;
          if (r - 1.0 > max_increase) {
            max_increase = r - 1.0;
            max_module = s.module_name;
          }
        }
      }
    }
    std::printf("\n");
  }

  std::printf("\n90%% bands across rows (per module, at its VPPmin):\n");
  for (const auto& s : sweeps) {
    const auto norm = s.normalized_hc_first_at(s.vpp_levels.size() - 1);
    const auto band = stats::central_interval(norm, 0.90);
    std::printf("  %-4s @%.1fV: mean %.3f [%.3f, %.3f]\n",
                s.module_name.c_str(), s.vpp_levels.back(),
                stats::mean(norm), band.lower, band.upper);
  }

  std::printf(
      "\nHeadline: mean HCfirst increase at VPPmin = %.1f%% (paper: 7.4%%), "
      "max = %.1f%% on %s (paper: 85.8%% on B3)\n",
      100.0 * sum_increase / static_cast<double>(std::max<std::size_t>(n_rows, 1)),
      100.0 * max_increase, max_module.c_str());
  return 0;
}
