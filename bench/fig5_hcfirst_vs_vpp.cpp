// Fig. 5: normalized HCfirst across VPP levels, one curve per module, with
// 90% bands across rows. Paper result to reproduce: HCfirst *increases* with
// reduced VPP for most rows, by 7.4% on average and up to 85.8% (B3, 1.6V).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  const auto opt = bench::options_from_args(argc, argv);
  bench::print_scale_banner("Fig. 5: normalized HCfirst vs VPP", opt);

  const auto sweeps = bench::run_rowhammer_all(opt);
  const auto headline = bench::print_normalized_sweep_table(
      sweeps, opt,
      [](const core::ModuleSweepResult& s, std::size_t level) {
        return s.normalized_hc_first_at(level);
      },
      [](double r) { return r - 1.0; });

  std::printf(
      "\nHeadline: mean HCfirst increase at VPPmin = %.1f%% (paper: 7.4%%), "
      "max = %.1f%% on %s (paper: 85.8%% on B3)\n",
      headline.mean_pct(), headline.max_pct(), headline.max_module.c_str());
  return 0;
}
