// Table 2: key parameters of the SPICE model, printed from the actual
// defaults the circuit simulator uses (so the table can never drift from
// the code), plus a sanity DC check of the cell's restored level.
#include <cstdio>

#include "circuit/dram_cell.hpp"

int main() {
  using namespace vppstudy::circuit;
  const DramCellSimParams p;

  std::printf("Table 2: Key parameters used in SPICE simulations\n");
  std::printf("%-20s %s\n", "Component", "Parameters");
  std::printf("%-20s C: %.1f fF, R: %.0f Ohm\n", "DRAM Cell",
              p.cell_c_f * 1e15, p.cell_r_ohm);
  std::printf("%-20s C: %.1f fF, R: %.0f Ohm\n", "Bitline",
              p.bitline_c_f * 1e15, p.bitline_r_ohm);
  std::printf("%-20s W: %.0f nm, L: %.0f nm\n", "Cell Access NMOS",
              p.access_nmos.w_m * 1e9, p.access_nmos.l_m * 1e9);
  std::printf("%-20s W: %.1f um, L: %.1f um\n", "Sense Amp. NMOS",
              p.sa_nmos.w_m * 1e6, p.sa_nmos.l_m * 1e6);
  std::printf("%-20s W: %.1f um, L: %.1f um\n", "Sense Amp. PMOS",
              p.sa_pmos.w_m * 1e6, p.sa_pmos.l_m * 1e6);
  std::printf("\nOperating points: VDD = %.2fV, nominal VPP = %.2fV\n",
              p.vdd_v, p.vpp_v);
  std::printf("Restored cell level vs VPP (Obsv. 10 anchor points):\n");
  for (double vpp : {2.5, 2.0, 1.9, 1.8, 1.7}) {
    DramCellSimParams q = p;
    q.vpp_v = vpp;
    std::printf("  VPP=%.1fV -> Vcell(sat) = %.3fV\n", vpp,
                steady_state_cell_voltage(q));
  }
  return 0;
}
