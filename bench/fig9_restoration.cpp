// Fig. 9: (a) cell capacitor voltage during charge restoration at different
// VPP levels; (b) Monte-Carlo distribution of tRASmin.
// Paper results to reproduce: the cell saturates at a lower level below
// 2.0V (-4.1% / -11.0% / -18.1% at 1.9 / 1.8 / 1.7V, Obsv. 10) and tRASmin
// shifts above the nominal tRAS when VPP < 2.0V (Obsv. 11).
#include <cstdio>
#include <cstdlib>

#include "circuit/montecarlo.hpp"
#include "dram/timing.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace vppstudy;
  long runs = 200;
  if (const char* env = std::getenv("VPP_BENCH_MC_RUNS")) {
    runs = std::max(10L, std::strtol(env, nullptr, 10));
  }
  const double nominal_tras = dram::timing_for_speed_grade(2400).t_ras_ns;
  std::printf("# Fig. 9: charge restoration under reduced VPP (%ld MC "
              "runs/level; paper: 10000)\n\n", runs);

  std::printf("Fig. 9a: cell capacitor voltage after ACT (V)\n");
  std::printf("%-8s", "t[ns]");
  const double levels[] = {2.5, 2.1, 2.0, 1.9, 1.8, 1.7};
  std::vector<circuit::ActivationResult> waves;
  for (const double vpp : levels) {
    circuit::DramCellSimParams p;
    p.vpp_v = vpp;
    auto r = circuit::simulate_activation(p);
    if (!r) {
      std::fprintf(stderr, "simulation failed at %.1fV\n", vpp);
      return 1;
    }
    waves.push_back(std::move(*r));
    std::printf("  %5.1fV", vpp);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < waves[0].t_ns.size(); i += 160) {  // 4ns steps
    std::printf("%-8.1f", waves[0].t_ns[i]);
    for (const auto& w : waves) std::printf("  %6.3f", w.v_cell[i]);
    std::printf("\n");
  }
  std::printf("\nSaturation levels (Obsv. 10):\n");
  for (std::size_t i = 0; i < waves.size(); ++i) {
    std::printf("  VPP=%.1fV -> Vcell(final) = %.3fV (%.1f%% of VDD)\n",
                levels[i], waves[i].v_cell_final,
                100.0 * waves[i].v_cell_final / 1.2);
  }

  std::printf("\nFig. 9b: tRASmin distribution per VPP (Monte-Carlo), "
              "nominal tRAS = %.0fns\n", nominal_tras);
  for (const double vpp : {2.5, 2.1, 2.0, 1.9, 1.8, 1.7}) {
    circuit::DramCellSimParams p;
    p.vpp_v = vpp;
    circuit::MonteCarloOptions opts;
    opts.runs = static_cast<std::size_t>(runs);
    const auto mc = circuit::run_monte_carlo(p, opts);
    const auto summary = mc.tras_summary();
    std::printf(
        "VPP=%.1fV: mean tRASmin %.2fns, worst %.2fns%s\n", vpp, summary.mean,
        mc.worst_tras_ns(),
        summary.mean > nominal_tras ? "  ** exceeds nominal tRAS **" : "");
    if (!mc.t_ras_min_ns.empty()) {
      stats::Histogram h(12.0, 60.0, 16);
      h.add_all(mc.t_ras_min_ns);
      std::printf("%s", h.render(40).c_str());
    }
  }
  std::printf(
      "\nPaper: saturation -4.1%% / -11.0%% / -18.1%% at 1.9 / 1.8 / 1.7V; "
      "tRAS exceeds nominal when VPP < 2.0V\n");
  return 0;
}
