// Distributed-campaign scaling benchmark (google-benchmark): one full
// coordinator + N-worker campaign over a real loopback daemon per
// iteration, so BM_DistributedCampaign/1 vs /2 measures the end-to-end
// wall-clock speedup of the lease/submit distribution layer (DESIGN.md
// section 11) including every protocol round trip and manifest flush. CI's
// perf-smoke job gates workers=2 <= workers=1 via tools/ci/perf_gate.py
// scaling. After the timed loop the final merged manifest is resumed and
// checked byte-identical against a single-host engine run -- a bench that
// got faster by dropping work fails instead of winning.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "core/campaign_lease.hpp"
#include "core/export.hpp"
#include "server/coordinator.hpp"
#include "server/server.hpp"
#include "server/worker.hpp"

namespace {

using namespace vppstudy;

// Fixed small scale, independent of the env knobs: big enough that shard
// compute dominates the lease/submit round trips, small enough for
// --benchmark_repetitions=3 on a shared runner.
core::CampaignPlan bench_plan() {
  bench::BenchOptions opt;
  opt.rows_per_chunk = 2;
  opt.chunks = 2;
  opt.iterations = 1;
  opt.max_modules = 4;
  opt.vpp_step = 0.2;
  opt.jobs = 1;
  core::CampaignPlan plan = bench::campaign_plan(opt);
  plan.rows_per_shard = 2;
  return plan;
}

std::string bench_manifest_path(int workers) {
  return "/tmp/vpp_dist_bench_" + std::to_string(::getpid()) + "_w" +
         std::to_string(workers) + ".json";
}

void remove_campaign_files(const std::string& manifest_path) {
  std::remove(manifest_path.c_str());
  std::remove(core::campaign_ledger_path(manifest_path).c_str());
}

/// One whole distributed campaign: coordinator + daemon + `workers` worker
/// threads, all over loopback. Returns false (with a message in *error) on
/// any failure.
bool run_distributed(int workers, const std::string& manifest_path,
                     std::string* error) {
  auto coordinator = server::CampaignCoordinator::open(
      bench_plan(), core::JobPhase::kRowHammer, manifest_path);
  if (!coordinator) {
    *error = coordinator.error().to_string();
    return false;
  }
  auto daemon = server::Server::start({});
  if (!daemon) {
    *error = daemon.error().to_string();
    return false;
  }
  std::shared_ptr<server::CampaignCoordinator> shared = *std::move(coordinator);
  (*daemon)->service().adopt_campaign(shared);

  std::vector<std::string> failures(static_cast<std::size_t>(workers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      server::CampaignWorker::Options options;
      options.port = (*daemon)->port();
      options.worker_id = "bench-w" + std::to_string(w + 1);
      options.lease_shards = 4;
      options.jobs = 1;
      auto summary = server::CampaignWorker::run(options);
      if (!summary) {
        failures[static_cast<std::size_t>(w)] = summary.error().to_string();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  (*daemon)->stop();
  for (const std::string& failure : failures) {
    if (!failure.empty()) {
      *error = failure;
      return false;
    }
  }
  if (!shared->complete()) {
    *error = "campaign did not complete";
    return false;
  }
  return true;
}

/// The merged manifest must resume to grids byte-identical to a fresh
/// single-host run -- asserted once per benchmark, outside the timed loop.
bool verify_byte_identity(const std::string& manifest_path,
                          std::string* error) {
  core::CampaignPlan resume_plan = bench_plan();
  resume_plan.manifest_path = manifest_path;
  core::CampaignEngine resumed(std::move(resume_plan));
  auto merged = resumed.run_hammer();
  if (!merged) {
    *error = merged.error().to_string();
    return false;
  }
  core::CampaignEngine single_engine(bench_plan());
  auto single = single_engine.run_hammer();
  if (!single) {
    *error = single.error().to_string();
    return false;
  }
  if (merged->size() != single->size()) {
    *error = "module count mismatch";
    return false;
  }
  for (std::size_t m = 0; m < single->size(); ++m) {
    if (core::grid_json((*merged)[m]).str() !=
        core::grid_json((*single)[m]).str()) {
      *error = "distributed grid is not byte-identical to single-host";
      return false;
    }
  }
  return true;
}

void BM_DistributedCampaign(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const std::string manifest_path = bench_manifest_path(workers);
  std::string error;
  bool ok = true;
  for (auto _ : state) {
    // A fresh campaign every iteration: stale checkpoint files would turn
    // the run into a zero-compute resume.
    state.PauseTiming();
    remove_campaign_files(manifest_path);
    state.ResumeTiming();
    if (!run_distributed(workers, manifest_path, &error)) {
      state.SkipWithError(error.c_str());
      ok = false;
      break;
    }
  }
  if (ok && !verify_byte_identity(manifest_path, &error)) {
    state.SkipWithError(error.c_str());
  }
  remove_campaign_files(manifest_path);
  state.counters["workers"] = static_cast<double>(workers);
}
BENCHMARK(BM_DistributedCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Same snapshot plumbing as perf_microbench: every run lands in the
// machine-readable perf snapshot for the CI scaling gate.
class PerfSnapshotReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      bench::PerfEntry entry;
      entry.name = run.benchmark_name();
      entry.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9
              : 0.0;
      for (const auto& [name, counter] : run.counters) {
        entry.counters.emplace_back(name, counter.value);
      }
      entries_.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<bench::PerfEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<bench::PerfEntry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  PerfSnapshotReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const std::string path = vppstudy::bench::perf_snapshot_path();
  if (!vppstudy::bench::write_perf_snapshot(path, reporter.entries())) {
    std::fprintf(stderr, "cannot write perf snapshot %s\n", path.c_str());
    return 1;
  }
  std::printf("perf snapshot: %s (%zu benchmarks)\n", path.c_str(),
              reporter.entries().size());
  return 0;
}
