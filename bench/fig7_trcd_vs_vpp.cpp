// Fig. 7: minimum reliable tRCD across VPP levels, one curve per module
// (Alg. 2). Paper results to reproduce: tRCDmin grows as VPP drops; only
// A0-A2 (fixed by 24ns) and B2/B5 (fixed by 15ns) exceed the nominal 13.5ns,
// leaving 208 of 272 chips inside the guardband, which shrinks by ~21.9%.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/units.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  const auto opt = bench::options_from_args(argc, argv);
  bench::print_scale_banner("Fig. 7: minimum reliable tRCD vs VPP", opt);

  const auto sweeps = bench::run_trcd_all(opt);

  std::printf("%-6s", "VPP[V]");
  for (const auto& s : sweeps) std::printf(" %5s", s.module_name.c_str());
  std::printf("\n");
  const auto grid = bench::vpp_grid(opt.vpp_step);
  for (const double vpp : grid) {
    std::printf("%-6.2f", vpp);
    for (const auto& s : sweeps) {
      int idx = -1;
      for (std::size_t i = 0; i < s.vpp_levels.size(); ++i) {
        if (std::abs(s.vpp_levels[i] - vpp) < 1e-6) idx = static_cast<int>(i);
      }
      if (idx < 0) {
        std::printf(" %5s", "-");
      } else {
        std::printf(" %5.1f", s.trcd_min_ns[static_cast<std::size_t>(idx)]);
      }
    }
    std::printf("\n");
  }

  // Obsv. 7 aggregates.
  int exceed = 0;
  int chips_ok = 0;
  int chips_fail = 0;
  double guardband_reduction_sum = 0.0;
  int guardband_n = 0;
  std::size_t module_idx = 0;
  for (const auto& s : sweeps) {
    const auto& profile = chips::all_profiles()[module_idx++];
    const double worst =
        *std::max_element(s.trcd_min_ns.begin(), s.trcd_min_ns.end());
    const bool fails = worst > common::kNominalTrcdNs + 1e-9;
    exceed += fails ? 1 : 0;
    (fails ? chips_fail : chips_ok) += profile.num_chips;
    if (!fails) {
      const double gb0 = common::kNominalTrcdNs - s.trcd_min_ns.front();
      const double gb1 = common::kNominalTrcdNs - s.trcd_min_ns.back();
      if (gb0 > 0.0) {
        guardband_reduction_sum += (gb0 - gb1) / gb0;
        ++guardband_n;
      }
    }
    if (fails) {
      std::printf("  %s exceeds nominal tRCD; worst %.1fns (reliable at %s)\n",
                  s.module_name.c_str(), worst,
                  profile.mfr == dram::Manufacturer::kMfrA ? "24ns" : "15ns");
    }
  }
  std::printf(
      "\nHeadline: %d modules exceed nominal tRCD (paper: 5); %d chips OK / "
      "%d need longer tRCD (paper: 208 / 64);\n"
      "mean guardband reduction across passing modules: %.1f%% "
      "(paper: 21.9%%)\n",
      exceed, chips_ok, chips_fail,
      guardband_n > 0 ? 100.0 * guardband_reduction_sum / guardband_n : 0.0);
  return 0;
}
