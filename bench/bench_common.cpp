#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "chips/module_db.hpp"
#include "common/json.hpp"

namespace vppstudy::bench {

namespace {
long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != v && parsed > 0) ? parsed : fallback;
}
double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != v && parsed > 0.0) ? parsed : fallback;
}
}  // namespace

BenchOptions options_from_env() {
  BenchOptions opt;
  opt.rows_per_chunk =
      static_cast<std::uint32_t>(env_long("VPP_BENCH_ROWS", 4));
  opt.iterations = static_cast<int>(env_long("VPP_BENCH_ITERS", 1));
  opt.max_modules =
      static_cast<std::size_t>(env_long("VPP_BENCH_MODULES", 30));
  opt.vpp_step = env_double("VPP_BENCH_STEP", 0.2);
  // 0 is meaningful for jobs (all hardware threads), so parse it directly.
  if (const char* v = std::getenv("VPP_BENCH_JOBS")) {
    opt.jobs = std::atoi(v);
  }
  return opt;
}

BenchOptions options_from_args(int argc, char** argv) {
  BenchOptions opt = options_from_env();
  for (int i = 1; i < argc; ++i) {
    const auto flag_value = [&](const char* flag, const char** out) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        *out = argv[++i];
        return true;
      }
      return false;
    };
    const char* value = nullptr;
    if (flag_value("--jobs", &value)) {
      opt.jobs = std::atoi(value);
    } else if (flag_value("--rows", &value)) {
      opt.rows_per_chunk = static_cast<std::uint32_t>(std::atol(value));
    } else if (flag_value("--iters", &value)) {
      opt.iterations = std::atoi(value);
    } else if (flag_value("--modules", &value)) {
      opt.max_modules = static_cast<std::size_t>(std::atol(value));
    } else if (flag_value("--step", &value)) {
      opt.vpp_step = std::atof(value);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (known: --jobs N, --rows N, --iters N, "
                   "--modules N, --step V)\n",
                   argv[i]);
    }
  }
  return opt;
}

std::vector<double> vpp_grid(double step) {
  std::vector<double> grid;
  for (double v = 2.5; v >= 1.4 - 1e-9; v -= step) grid.push_back(v);
  return grid;
}

core::SweepConfig sweep_config(const BenchOptions& opt) {
  core::SweepConfig cfg;
  cfg.vpp_levels = vpp_grid(opt.vpp_step);
  cfg.sampling.chunks = opt.chunks;
  cfg.sampling.rows_per_chunk = opt.rows_per_chunk;
  cfg.hammer.num_iterations = opt.iterations;
  cfg.trcd.num_iterations = opt.iterations;
  cfg.trcd.column_stride = 64;
  cfg.retention.num_iterations = 1;
  return cfg;
}

std::vector<dram::ModuleProfile> bench_modules(const BenchOptions& opt) {
  std::vector<dram::ModuleProfile> modules;
  for (const auto& profile : chips::all_profiles()) {
    if (modules.size() >= opt.max_modules) break;
    modules.push_back(profile);
  }
  return modules;
}

core::StudyConfig study_config(const BenchOptions& opt) {
  core::StudyConfig config;
  config.sweep = sweep_config(opt);
  config.modules = bench_modules(opt);
  config.seed = opt.seed;
  config.jobs = opt.jobs;
  return config;
}

core::CampaignPlan campaign_plan(const BenchOptions& opt) {
  return core::CampaignPlan::from_study(study_config(opt));
}

std::vector<core::ModuleSweepResult> run_rowhammer_all(
    const BenchOptions& opt) {
  core::CampaignEngine engine(campaign_plan(opt));
  auto grids = engine.run_hammer();
  if (!grids) {
    std::fprintf(stderr, "rowhammer sweep failed: %s\n",
                 grids.error().to_string().c_str());
    return {};
  }
  std::vector<core::ModuleSweepResult> sweeps;
  sweeps.reserve(grids->size());
  for (const auto& grid : *grids) sweeps.push_back(grid.to_sweep());
  print_instrumentation("rowhammer", sweeps);
  return sweeps;
}

std::vector<core::TrcdSweepResult> run_trcd_all(const BenchOptions& opt) {
  core::CampaignEngine engine(campaign_plan(opt));
  auto grids = engine.run_trcd();
  if (!grids) {
    std::fprintf(stderr, "tRCD sweep failed: %s\n",
                 grids.error().to_string().c_str());
    return {};
  }
  std::vector<core::TrcdSweepResult> sweeps;
  sweeps.reserve(grids->size());
  for (const auto& grid : *grids) sweeps.push_back(grid.to_sweep());
  print_instrumentation("trcd", sweeps);
  return sweeps;
}

void print_scale_banner(const std::string& what, const BenchOptions& opt) {
  std::printf(
      "# %s\n"
      "# scale: %u rows/module (paper: 4096), %d iteration(s) (paper: 10), "
      "%zu module(s), %.2fV steps (paper: 0.1V), %d job(s)\n"
      "# override via VPP_BENCH_ROWS / VPP_BENCH_ITERS / VPP_BENCH_MODULES / "
      "VPP_BENCH_STEP / VPP_BENCH_JOBS or --jobs N\n",
      what.c_str(), opt.rows_per_chunk * opt.chunks, opt.iterations,
      opt.max_modules, opt.vpp_step, opt.jobs);
}

std::string perf_snapshot_path() {
  if (const char* v = std::getenv("VPP_BENCH_JSON")) return v;
  return "BENCH_perf.json";
}

bool write_perf_snapshot(const std::string& path,
                         std::span<const PerfEntry> entries) {
  common::JsonWriter json;
  json.begin_object();
  json.kv("schema", "vppstudy-bench-perf/1");
  json.key("benchmarks").begin_array();
  for (const auto& e : entries) {
    json.begin_object();
    json.kv("name", e.name);
    json.kv("ns_per_op", e.ns_per_op);
    if (!e.counters.empty()) {
      json.key("counters").begin_object();
      for (const auto& [name, value] : e.counters) json.kv(name, value);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.write_file(path);
}

void print_series(const std::string& label, std::span<const double> x,
                  std::span<const double> y, std::span<const double> lo,
                  std::span<const double> hi) {
  std::printf("%s\n", label.c_str());
  for (std::size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (i < lo.size() && i < hi.size()) {
      std::printf("  %8.3f  %12.6g  [%12.6g, %12.6g]\n", x[i], y[i], lo[i],
                  hi[i]);
    } else {
      std::printf("  %8.3f  %12.6g\n", x[i], y[i]);
    }
  }
}

}  // namespace vppstudy::bench
