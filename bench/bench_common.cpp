#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

#include "chips/module_db.hpp"

namespace vppstudy::bench {

namespace {
long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != v && parsed > 0) ? parsed : fallback;
}
double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != v && parsed > 0.0) ? parsed : fallback;
}
}  // namespace

BenchOptions options_from_env() {
  BenchOptions opt;
  opt.rows_per_chunk =
      static_cast<std::uint32_t>(env_long("VPP_BENCH_ROWS", 4));
  opt.iterations = static_cast<int>(env_long("VPP_BENCH_ITERS", 1));
  opt.max_modules =
      static_cast<std::size_t>(env_long("VPP_BENCH_MODULES", 30));
  opt.vpp_step = env_double("VPP_BENCH_STEP", 0.2);
  return opt;
}

std::vector<double> vpp_grid(double step) {
  std::vector<double> grid;
  for (double v = 2.5; v >= 1.4 - 1e-9; v -= step) grid.push_back(v);
  return grid;
}

core::SweepConfig sweep_config(const BenchOptions& opt) {
  core::SweepConfig cfg;
  cfg.vpp_levels = vpp_grid(opt.vpp_step);
  cfg.sampling.chunks = opt.chunks;
  cfg.sampling.rows_per_chunk = opt.rows_per_chunk;
  cfg.hammer.num_iterations = opt.iterations;
  cfg.trcd.num_iterations = opt.iterations;
  cfg.trcd.column_stride = 64;
  cfg.retention.num_iterations = 1;
  return cfg;
}

std::vector<core::ModuleSweepResult> run_rowhammer_all(
    const BenchOptions& opt) {
  std::vector<core::ModuleSweepResult> sweeps;
  const auto cfg = sweep_config(opt);
  std::size_t done = 0;
  for (const auto& profile : chips::all_profiles()) {
    if (done >= opt.max_modules) break;
    core::Study study(profile);
    auto sweep = study.rowhammer_sweep(cfg);
    if (!sweep) {
      std::fprintf(stderr, "module %s failed: %s\n", profile.name.c_str(),
                   sweep.error().message.c_str());
      continue;
    }
    sweeps.push_back(std::move(*sweep));
    ++done;
  }
  return sweeps;
}

void print_scale_banner(const std::string& what, const BenchOptions& opt) {
  std::printf(
      "# %s\n"
      "# scale: %u rows/module (paper: 4096), %d iteration(s) (paper: 10), "
      "%zu module(s), %.2fV steps (paper: 0.1V)\n"
      "# override via VPP_BENCH_ROWS / VPP_BENCH_ITERS / VPP_BENCH_MODULES / "
      "VPP_BENCH_STEP\n",
      what.c_str(), opt.rows_per_chunk * opt.chunks, opt.iterations,
      opt.max_modules, opt.vpp_step);
}

void print_series(const std::string& label, std::span<const double> x,
                  std::span<const double> y, std::span<const double> lo,
                  std::span<const double> hi) {
  std::printf("%s\n", label.c_str());
  for (std::size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (i < lo.size() && i < hi.size()) {
      std::printf("  %8.3f  %12.6g  [%12.6g, %12.6g]\n", x[i], y[i], lo[i],
                  hi[i]);
    } else {
      std::printf("  %8.3f  %12.6g\n", x[i], y[i]);
    }
  }
}

}  // namespace vppstudy::bench
