// Fig. 11: distribution of DRAM rows by the number of erroneous 64-bit data
// words they contain at (a) tREFW = 64ms and (b) 128ms, at VPPmin -- rows
// that fail at that window but not at a smaller one.
// Paper results to reproduce (Obsv. 14/15): every erroneous word has exactly
// one flipped bit (SECDED-correctable); at 64ms Mfr. A is clean while 15.5%
// of Mfr. B rows show 4 erroneous words and 0.2% of Mfr. C rows show 1;
// overall 16.4% / 5.0% of rows are erroneous at 64 / 128ms.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "harness/retention_test.hpp"

int main() {
  using namespace vppstudy;
  long rows_per_module = 160;
  if (const char* env = std::getenv("VPP_BENCH_ROWS")) {
    rows_per_module = std::max(8L, std::strtol(env, nullptr, 10) * 4L);
  }
  std::printf("# Fig. 11: erroneous-word census at VPPmin (%ld rows/module; "
              "paper: 4096)\n", rows_per_module);
  std::printf("# note: Mfr. B's 116-word row class has frequency 1e-4 and "
              "only appears in large samples\n\n");

  for (const double window_ms : {64.0, 128.0}) {
    std::printf("tREFW = %.0fms (rows failing here but not at %.0fms):\n",
                window_ms, window_ms / 2.0);
    // vendor -> (words-with-one-flip count -> rows)
    std::map<dram::Manufacturer, std::map<std::uint64_t, std::uint64_t>> hist;
    // Fractions are over rows of *affected* modules (those exhibiting any
    // flip at this window), matching the paper's per-vendor percentages.
    std::map<dram::Manufacturer, std::uint64_t> rows_affected_modules;
    std::uint64_t multi_bit_words = 0;
    std::uint64_t secded_uncorrectable_rows = 0;

    for (const auto& profile : chips::all_profiles()) {
      core::Study study(profile);
      auto& session = study.session();
      if (!session.set_temperature(common::kRetentionTestTempC).ok()) continue;
      if (!session.set_vpp(profile.vppmin_v).ok()) continue;
      harness::RetentionTest test(session, harness::RetentionConfig{});
      const auto rows = harness::RowSampling{
          0, 4, static_cast<std::uint32_t>(rows_per_module / 4)}
                            .sample(session.module().mapping());
      std::uint64_t module_rows = 0;
      std::uint64_t module_err_rows = 0;
      for (const std::uint32_t row : rows) {
        auto at_half = test.census_at(0, row, dram::DataPattern::kCheckerAA,
                                      window_ms / 2.0);
        if (!at_half || at_half->census.erroneous_words() > 0) continue;
        auto at_window =
            test.census_at(0, row, dram::DataPattern::kCheckerAA, window_ms);
        if (!at_window) continue;
        ++module_rows;
        const auto& c = at_window->census;
        if (c.erroneous_words() == 0) continue;
        ++module_err_rows;
        ++hist[profile.mfr][c.single_bit_words];
        multi_bit_words += c.multi_bit_words;
        if (!c.secded_correctable()) ++secded_uncorrectable_rows;
      }
      if (module_err_rows > 0) {
        rows_affected_modules[profile.mfr] += module_rows;
      }
    }

    std::uint64_t err_rows = 0;
    std::uint64_t all_rows = 0;
    for (const auto& [mfr, counts] : hist) {
      for (const auto& [words, n] : counts) {
        std::printf("  %s: %llu row(s) with %llu erroneous word(s) "
                    "(%.2f%% of affected-module rows)\n",
                    dram::manufacturer_name(mfr),
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(words),
                    100.0 * static_cast<double>(n) /
                        static_cast<double>(rows_affected_modules[mfr]));
        err_rows += n;
      }
    }
    for (const auto& [mfr, n] : rows_affected_modules) all_rows += n;
    std::printf(
        "  total: %.1f%% of rows erroneous (paper: %.1f%%); multi-bit words: "
        "%llu; SECDED-uncorrectable rows: %llu (paper + Obsv. 14: 0)\n\n",
        all_rows ? 100.0 * static_cast<double>(err_rows) /
                       static_cast<double>(all_rows)
                 : 0.0,
        window_ms < 100.0 ? 16.4 : 5.0,
        static_cast<unsigned long long>(multi_bit_words),
        static_cast<unsigned long long>(secded_uncorrectable_rows));
  }
  return 0;
}
