// Shared plumbing for the reproduction benches: common sweep drivers, text
// rendering of figure series, and environment knobs so a user can trade
// fidelity for runtime (VPP_BENCH_ROWS, VPP_BENCH_MODULES, ...). Every bench
// accepts a --jobs N flag (or VPP_BENCH_JOBS) and runs its sweeps on the
// parallel deterministic engine: results are bit-identical at any job count.
#pragma once

#include <cstdint>
#include <cstdio>
#include <future>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "chips/module_db.hpp"
#include "common/thread_pool.hpp"
#include "core/campaign.hpp"
#include "core/parallel_study.hpp"
#include "core/study.hpp"
#include "dram/profile.hpp"
#include "stats/descriptive.hpp"

namespace vppstudy::bench {

/// Environment-tunable knobs shared by all bench binaries.
struct BenchOptions {
  std::uint32_t rows_per_chunk = 4;   ///< x4 chunks => rows per module
  std::uint32_t chunks = 4;
  int iterations = 1;
  std::size_t max_modules = 30;
  double vpp_step = 0.2;              ///< figure sweeps: 2.5 down in steps
  int jobs = 1;                       ///< worker threads; 0 = all hardware
  std::uint64_t seed = 0;             ///< base seed of per-job noise streams
};

/// Read overrides from the environment:
///   VPP_BENCH_ROWS     rows per chunk (default 4; paper: 1024)
///   VPP_BENCH_ITERS    iterations (default 1; paper: 10)
///   VPP_BENCH_MODULES  number of modules (default 30)
///   VPP_BENCH_STEP     VPP step in volts (default 0.2; paper: 0.1)
///   VPP_BENCH_JOBS     worker threads (default 1; 0 = all hardware threads)
[[nodiscard]] BenchOptions options_from_env();

/// options_from_env plus command-line flags (flags win):
///   --jobs N      worker threads (0 = all hardware threads)
///   --rows N      rows per chunk
///   --iters N     iterations
///   --modules N   number of modules
///   --step V      VPP step in volts
[[nodiscard]] BenchOptions options_from_args(int argc, char** argv);

/// VPP grid from 2.5 down to 1.4 in `step` volt steps.
[[nodiscard]] std::vector<double> vpp_grid(double step);

/// Sweep config assembled from bench options.
[[nodiscard]] core::SweepConfig sweep_config(const BenchOptions& opt);

/// Engine config over the first `max_modules` profiles with the shared grid.
[[nodiscard]] core::StudyConfig study_config(const BenchOptions& opt);

/// The same configuration lifted into the multi-axis engine's vocabulary: a
/// VPP-only CampaignPlan over the bench modules. Benches that sweep extra
/// axes start from this and populate `axes` (and every bench sweep now runs
/// through the one CampaignEngine, so figure output and `vppctl campaign`
/// output come from the same code path).
[[nodiscard]] core::CampaignPlan campaign_plan(const BenchOptions& opt);

/// The first `max_modules` profiles.
[[nodiscard]] std::vector<dram::ModuleProfile> bench_modules(
    const BenchOptions& opt);

/// Run the RowHammer sweep for the first `max_modules` profiles on the
/// parallel engine ((module, VPP level) job granularity).
[[nodiscard]] std::vector<core::ModuleSweepResult> run_rowhammer_all(
    const BenchOptions& opt);

/// Run the tRCD sweep for the first `max_modules` profiles (Fig. 7).
[[nodiscard]] std::vector<core::TrcdSweepResult> run_trcd_all(
    const BenchOptions& opt);

/// Fan one job per module out on a work-stealing pool. `fn` maps a profile
/// to common::Expected<R>; results come back in module order (deterministic
/// regardless of scheduling), with failed modules skipped after a stderr
/// note. This is the driver for benches whose VPP grid depends on the
/// module (e.g. {2.5V, VPPmin}) -- within each job the engine runs inline.
template <typename Fn>
[[nodiscard]] auto parallel_module_map(const BenchOptions& opt, Fn fn)
    -> std::vector<typename std::invoke_result_t<
        Fn&, const dram::ModuleProfile&>::value_type>;

/// Print a one-line banner describing the bench scale vs the paper's.
void print_scale_banner(const std::string& what, const BenchOptions& opt);

/// Print each sweep's aggregated rig instrumentation as '#'-prefixed comment
/// lines (so figure output stays machine-parseable), plus a campaign total.
/// Works for any sweep-result type carrying an `instrumentation` member.
template <typename SweepResult>
void print_instrumentation(const std::string& what,
                           std::span<const SweepResult> sweeps) {
  core::SweepInstrumentation total;
  for (const auto& sweep : sweeps) {
    std::printf("# instrumentation %s %s: %s\n", what.c_str(),
                sweep.module_name.c_str(),
                sweep.instrumentation.summary().c_str());
    total += sweep.instrumentation;
  }
  std::printf("# instrumentation %s total: %s\n", what.c_str(),
              total.summary().c_str());
}

template <typename SweepResult>
void print_instrumentation(const std::string& what,
                           const std::vector<SweepResult>& sweeps) {
  print_instrumentation(what, std::span<const SweepResult>(sweeps));
}

/// Headline aggregate accumulated by print_normalized_sweep_table: the mean
/// and max of a per-row delta at each module's VPPmin level.
struct NormalizedHeadline {
  double sum = 0.0;
  std::size_t rows = 0;
  double max_delta = 0.0;
  std::string max_module;
  double max_vpp = 2.5;

  [[nodiscard]] double mean_pct() const {
    return 100.0 * sum / static_cast<double>(rows == 0 ? 1 : rows);
  }
  [[nodiscard]] double max_pct() const { return 100.0 * max_delta; }
};

/// The shared Fig. 3 / Fig. 5 scaffolding: a per-(VPP, module) table of the
/// mean normalized series, then 90% bands per module at its VPPmin.
/// `norm_at(sweep, level)` extracts the normalized per-row series;
/// `delta(r)` maps one normalized value to the headline quantity (1-r for a
/// BER reduction, r-1 for an HCfirst increase), accumulated at VPPmin only.
template <typename NormAt, typename Delta>
NormalizedHeadline print_normalized_sweep_table(
    const std::vector<core::ModuleSweepResult>& sweeps,
    const BenchOptions& opt, NormAt norm_at, Delta delta) {
  NormalizedHeadline headline;
  std::printf("%-6s", "VPP[V]");
  for (const auto& s : sweeps) std::printf(" %8s", s.module_name.c_str());
  std::printf("\n");
  // All modules share the master grid; print per level, gaps below VPPmin.
  const auto grid = vpp_grid(opt.vpp_step);
  for (const double vpp : grid) {
    std::printf("%-6.2f", vpp);
    for (const auto& s : sweeps) {
      const int idx = s.level_index(vpp);
      if (idx < 0) {
        std::printf(" %8s", "-");
        continue;
      }
      const auto norm = norm_at(s, static_cast<std::size_t>(idx));
      std::printf(" %8.3f", stats::mean(norm));
      if (idx == static_cast<int>(s.vpp_levels.size()) - 1) {
        for (const double r : norm) {
          const double d = delta(r);
          headline.sum += d;
          ++headline.rows;
          if (d > headline.max_delta) {
            headline.max_delta = d;
            headline.max_module = s.module_name;
            headline.max_vpp = vpp;
          }
        }
      }
    }
    std::printf("\n");
  }

  std::printf("\n90%% bands across rows (per module, at its VPPmin):\n");
  for (const auto& s : sweeps) {
    const auto norm = norm_at(s, s.vpp_levels.size() - 1);
    const auto band = stats::central_interval(norm, 0.90);
    std::printf("  %-4s @%.1fV: mean %.3f [%.3f, %.3f]\n",
                s.module_name.c_str(), s.vpp_levels.back(), stats::mean(norm),
                band.lower, band.upper);
  }
  return headline;
}

/// Render one series as a fixed-width table row block:
///   label, then (x, y, [lo, hi]) lines.
void print_series(const std::string& label, std::span<const double> x,
                  std::span<const double> y,
                  std::span<const double> lo = {},
                  std::span<const double> hi = {});

/// One benchmark's measurement in the machine-readable perf snapshot.
struct PerfEntry {
  std::string name;
  double ns_per_op = 0.0;
  /// User counters as finalized by google-benchmark (rates already divided
  /// by elapsed time), e.g. "flips_per_s".
  std::vector<std::pair<std::string, double>> counters;
};

/// Resolve the perf-snapshot path: $VPP_BENCH_JSON, or "BENCH_perf.json" in
/// the working directory when unset.
[[nodiscard]] std::string perf_snapshot_path();

/// Write the perf snapshot (name -> ns/op + counters) as a JSON document so
/// CI can archive a perf trajectory across commits. Returns false on I/O
/// failure.
[[nodiscard]] bool write_perf_snapshot(const std::string& path,
                                       std::span<const PerfEntry> entries);

// --- template implementation -------------------------------------------------

template <typename Fn>
auto parallel_module_map(const BenchOptions& opt, Fn fn)
    -> std::vector<typename std::invoke_result_t<
        Fn&, const dram::ModuleProfile&>::value_type> {
  using Result = std::invoke_result_t<Fn&, const dram::ModuleProfile&>;
  const auto modules = bench_modules(opt);
  common::ThreadPool pool(common::ThreadPool::workers_for_jobs(opt.jobs));
  std::vector<std::future<Result>> futures;
  futures.reserve(modules.size());
  for (const auto& profile : modules) {
    futures.push_back(pool.submit([&fn, &profile] { return fn(profile); }));
  }
  std::vector<typename Result::value_type> out;
  out.reserve(modules.size());
  for (std::size_t m = 0; m < modules.size(); ++m) {
    auto result = futures[m].get();
    if (!result) {
      std::fprintf(stderr, "module %s failed: %s\n", modules[m].name.c_str(),
                   result.error().to_string().c_str());
      continue;
    }
    out.push_back(std::move(*result));
  }
  return out;
}

}  // namespace vppstudy::bench
