// Shared plumbing for the reproduction benches: common sweep drivers, text
// rendering of figure series, and environment knobs so a user can trade
// fidelity for runtime (VPP_BENCH_ROWS, VPP_BENCH_MODULES, ...).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "chips/module_db.hpp"
#include "core/study.hpp"
#include "dram/profile.hpp"

namespace vppstudy::bench {

/// Environment-tunable knobs shared by all bench binaries.
struct BenchOptions {
  std::uint32_t rows_per_chunk = 4;   ///< x4 chunks => rows per module
  std::uint32_t chunks = 4;
  int iterations = 1;
  std::size_t max_modules = 30;
  double vpp_step = 0.2;              ///< figure sweeps: 2.5 down in steps
};

/// Read overrides from the environment:
///   VPP_BENCH_ROWS     rows per chunk (default 4; paper: 1024)
///   VPP_BENCH_ITERS    iterations (default 1; paper: 10)
///   VPP_BENCH_MODULES  number of modules (default 30)
///   VPP_BENCH_STEP     VPP step in volts (default 0.2; paper: 0.1)
[[nodiscard]] BenchOptions options_from_env();

/// VPP grid from 2.5 down to 1.4 in `step` volt steps.
[[nodiscard]] std::vector<double> vpp_grid(double step);

/// Sweep config assembled from bench options.
[[nodiscard]] core::SweepConfig sweep_config(const BenchOptions& opt);

/// Run the RowHammer sweep for the first `max_modules` profiles.
[[nodiscard]] std::vector<core::ModuleSweepResult> run_rowhammer_all(
    const BenchOptions& opt);

/// Print a one-line banner describing the bench scale vs the paper's.
void print_scale_banner(const std::string& what, const BenchOptions& opt);

/// Render one series as a fixed-width table row block:
///   label, then (x, y, [lo, hi]) lines.
void print_series(const std::string& label, std::span<const double> x,
                  std::span<const double> y,
                  std::span<const double> lo = {},
                  std::span<const double> hi = {});

}  // namespace vppstudy::bench
