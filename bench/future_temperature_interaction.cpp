// Section 7 / future work: the three-way VPP x temperature x RowHammer
// interaction the paper explicitly defers ("requires several months of
// testing time" on real silicon; seconds here). Declared as a multi-axis
// CampaignPlan -- VPP levels x a first-class temperature axis -- and run
// through core::CampaignEngine, so this bench exercises exactly the grid
// path `vppctl campaign run --temps ...` and the vppd daemon use. Prints
// the mean normalized HCfirst surface plus the fraction of rows whose
// temperature direction flips sign -- the row-dependence [12] reports.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace vppstudy;

/// Index of the grid point at (vpp, temp); the engine stores normalized
/// points, so match on the resolved temperature.
int point_index(const core::HammerGrid& grid, double vpp, double temp) {
  for (std::size_t p = 0; p < grid.points.size(); ++p) {
    const auto& point = grid.points[p];
    if (point.vpp_v == vpp &&
        point.resolved_temperature(core::JobPhase::kRowHammer) == temp) {
      return static_cast<int>(p);
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::options_from_args(argc, argv);
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 8192;

  const std::vector<double> temps = {50.0, 65.0, 80.0};
  const std::vector<double> vpps = {2.5, 2.0, 1.6};

  core::CampaignPlan plan;
  plan.sweep = bench::sweep_config(opt);
  plan.sweep.vpp_levels = vpps;
  plan.sweep.sampling.chunks = 4;
  plan.sweep.sampling.rows_per_chunk = 6;  // 24 rows, like the original bench
  plan.axes.temperatures_c = temps;
  plan.modules.push_back(profile);
  plan.seed = opt.seed;
  plan.jobs = opt.jobs;

  core::CampaignEngine engine(std::move(plan));
  auto grids = engine.run_hammer();
  if (!grids || grids->empty()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 grids ? "no grids" : grids.error().to_string().c_str());
    return 1;
  }
  const core::HammerGrid& grid = grids->front();

  std::printf("# Future work (section 7): VPP x temperature x RowHammer "
              "(module B3, %zu rows)\n\n", grid.rows.size());

  // Reference HCfirst per row at (2.5V, 50C) -- the methodology corner.
  const int ref = point_index(grid, 2.5, 50.0);
  if (ref < 0) {
    std::fprintf(stderr, "reference point (2.5V, 50C) missing from grid\n");
    return 1;
  }
  const auto& reference = grid.cells[static_cast<std::size_t>(ref)];

  std::printf("mean normalized HCfirst (vs 2.5V/50C):\n%-8s", "VPP[V]");
  for (const double t : temps) std::printf(" %8.0fC", t);
  std::printf("\n");

  std::vector<double> norm_at_80c;  // 2.5V column, for direction stats
  for (const double vpp : vpps) {
    std::printf("%-8.1f", vpp);
    for (const double temp : temps) {
      const int p = point_index(grid, vpp, temp);
      if (p < 0) {
        std::printf(" %9s", "-");
        continue;
      }
      std::vector<double> norm;
      const auto& cells = grid.cells[static_cast<std::size_t>(p)];
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const double base = static_cast<double>(reference[i].hc_first);
        if (base > 0.0) {
          norm.push_back(static_cast<double>(cells[i].hc_first) / base);
        }
      }
      if (vpp == 2.5 && temp == 80.0) norm_at_80c = norm;
      std::printf(" %9.3f", stats::mean(norm));
    }
    std::printf("\n");
  }

  if (!norm_at_80c.empty()) {
    const double frac_up = stats::fraction_above(norm_at_80c, 1.0);
    std::printf(
        "\nrow-dependence at 2.5V/80C: %.0f%% of rows get *stronger* with "
        "temperature,\n%.0f%% weaker -- the direction is per-row, matching "
        "[12]'s finding that a single\ntemperature cannot capture the "
        "worst case.\n",
        100.0 * frac_up, 100.0 * (1.0 - frac_up));
  }
  std::printf("\nThe VPP effect (columns constant, rows improving toward "
              "1.6V) persists at every\ntemperature: the two knobs compose "
              "rather than cancel.\n");
  return 0;
}
