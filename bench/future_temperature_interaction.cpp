// Section 7 / future work: the three-way VPP x temperature x RowHammer
// interaction the paper explicitly defers ("requires several months of
// testing time" on real silicon; seconds here). Sweeps both axes on one
// module and prints the mean normalized HCfirst surface plus the fraction
// of rows whose temperature direction flips sign -- the row-dependence
// [12] reports.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/rowhammer_test.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace vppstudy;
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 8192;
  constexpr std::uint32_t kRows = 24;

  std::printf("# Future work (section 7): VPP x temperature x RowHammer "
              "(module B3, %u rows)\n\n", kRows);
  const double temps[] = {50.0, 65.0, 80.0};
  const double vpps[] = {2.5, 2.0, 1.6};

  // Reference HCfirst per row at (2.5V, 50C).
  std::vector<std::uint32_t> rows;
  for (std::uint32_t r = 100; rows.size() < kRows; r += 17) rows.push_back(r);

  std::vector<double> reference(rows.size(), 0.0);
  std::printf("mean normalized HCfirst (vs 2.5V/50C):\n%-8s", "VPP[V]");
  for (const double t : temps) std::printf(" %8.0fC", t);
  std::printf("\n");

  std::vector<std::vector<double>> per_row_at_80c;  // for direction stats
  for (const double vpp : vpps) {
    std::printf("%-8.1f", vpp);
    for (const double temp : temps) {
      softmc::Session session(profile);
      session.set_auto_refresh(false);
      if (!session.set_temperature(temp).ok() || !session.set_vpp(vpp).ok()) {
        std::printf(" %9s", "-");
        continue;
      }
      harness::RowHammerConfig cfg;
      cfg.num_iterations = 1;
      harness::RowHammerTest test(session, cfg);
      std::vector<double> norm;
      std::vector<double> raw;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        auto rr = test.test_row(0, rows[i], dram::DataPattern::kCheckerAA);
        if (!rr) continue;
        raw.push_back(static_cast<double>(rr->hc_first));
        if (vpp == 2.5 && temp == 50.0) {
          reference[i] = static_cast<double>(rr->hc_first);
        }
        if (reference[i] > 0.0) {
          norm.push_back(static_cast<double>(rr->hc_first) / reference[i]);
        }
      }
      if (vpp == 2.5 && temp == 80.0) per_row_at_80c.push_back(norm);
      std::printf(" %9.3f", stats::mean(norm));
    }
    std::printf("\n");
  }

  if (!per_row_at_80c.empty()) {
    const auto& n = per_row_at_80c.front();
    const double frac_up = stats::fraction_above(n, 1.0);
    std::printf(
        "\nrow-dependence at 2.5V/80C: %.0f%% of rows get *stronger* with "
        "temperature,\n%.0f%% weaker -- the direction is per-row, matching "
        "[12]'s finding that a single\ntemperature cannot capture the "
        "worst case.\n",
        100.0 * frac_up, 100.0 * (1.0 - frac_up));
  }
  std::printf("\nThe VPP effect (columns constant, rows improving toward "
              "1.6V) persists at every\ntemperature: the two knobs compose "
              "rather than cancel.\n");
  return 0;
}
