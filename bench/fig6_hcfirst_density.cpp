// Fig. 6: population density of per-row normalized HCfirst at VPPmin, per
// manufacturer. Paper ranges: A 0.94-1.52, B 0.92-1.86, C 0.91-1.35;
// fraction of rows with an HCfirst increase: 50.9% (A) .. 83.5% (C).
#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "stats/inference.hpp"
#include "stats/kde.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  auto opt = bench::options_from_args(argc, argv);
  opt.vpp_step = 1.1;
  bench::print_scale_banner("Fig. 6: normalized HCfirst density at VPPmin",
                            opt);

  const auto cfg = bench::sweep_config(opt);
  using VendorRows = std::pair<dram::Manufacturer, std::vector<double>>;
  auto rows = bench::parallel_module_map(
      opt,
      [&cfg](const dram::ModuleProfile& profile)
          -> common::Expected<VendorRows> {
        auto module_cfg = cfg;
        module_cfg.vpp_levels = {2.5, profile.vppmin_v};
        core::Study study(profile);
        auto sweep = study.rowhammer_sweep(module_cfg);
        if (!sweep) return sweep.error();
        return VendorRows{
            profile.mfr,
            sweep->normalized_hc_first_at(sweep->vpp_levels.size() - 1)};
      });
  std::map<dram::Manufacturer, std::vector<double>> per_vendor;
  for (auto& [mfr, norm] : rows) {
    auto& bucket = per_vendor[mfr];
    bucket.insert(bucket.end(), norm.begin(), norm.end());
  }

  for (const auto& [mfr, values] : per_vendor) {
    if (values.empty()) continue;
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    const double frac_up = stats::fraction_above(values, 1.0);
    std::printf(
        "\n%s: %zu rows, normalized HCfirst range [%.3f, %.3f], "
        "%.1f%% of rows increase\n",
        dram::manufacturer_name(mfr), values.size(), *lo, *hi,
        100.0 * frac_up);
    const auto kde = stats::gaussian_kde(values, 0.7, 2.0, 27);
    for (const auto& pt : kde) {
      const int bar = static_cast<int>(pt.density * 12.0);
      std::printf("  %5.2f %8.4f %s\n", pt.x, pt.density,
                  std::string(static_cast<std::size_t>(std::max(bar, 0)), '#')
                      .c_str());
    }
  }
  std::printf(
      "\nPaper: ranges A 0.94-1.52, B 0.92-1.86, C 0.91-1.35; increase "
      "fractions A 50.9%%, C 83.5%% (Obsv. 6)\n");

  // Obsv. 6's vendor contrast, tested formally: is Mfr. C's normalized
  // HCfirst population shifted above Mfr. A's?
  const auto a_it = per_vendor.find(dram::Manufacturer::kMfrA);
  const auto c_it = per_vendor.find(dram::Manufacturer::kMfrC);
  if (a_it != per_vendor.end() && c_it != per_vendor.end() &&
      !a_it->second.empty() && !c_it->second.empty()) {
    const auto mw = stats::mann_whitney_u(c_it->second, a_it->second);
    const auto ci_a = stats::bootstrap_mean_ci(a_it->second, 0.90);
    const auto ci_c = stats::bootstrap_mean_ci(c_it->second, 0.90);
    std::printf(
        "Mann-Whitney C vs A: effect=%.2f, p=%.2g; 90%% bootstrap mean CIs "
        "A [%.3f, %.3f], C [%.3f, %.3f]\n",
        mw.effect, mw.p_two_sided, ci_a.lower, ci_a.upper, ci_c.lower,
        ci_c.upper);
  }
  return 0;
}
