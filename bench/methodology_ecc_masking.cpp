// Methodology check (section 4.1): the study deliberately tests DIMMs
// *without* ECC because on-die ECC silently corrects single-bit flips and
// would distort every RowHammer metric. This bench runs the same Alg. 1
// measurement against the same module with and without a modeled on-die
// SEC code and shows how badly the visible BER and HCfirst are skewed.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/rowhammer_test.hpp"

int main() {
  using namespace vppstudy;
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 8192;
  constexpr std::uint32_t kRows = 12;

  std::printf("# Methodology: why the study tests non-ECC DIMMs "
              "(module B3, %u rows)\n\n", kRows);
  std::printf("%-12s %14s %14s %14s\n", "on-die ECC", "min HCfirst",
              "mean BER@300K", "corrections");

  for (const bool ecc : {false, true}) {
    auto p = profile;
    p.has_ondie_ecc = ecc;
    softmc::Session session(p);
    session.set_auto_refresh(false);
    harness::RowHammerConfig cfg;
    cfg.num_iterations = 1;
    harness::RowHammerTest test(session, cfg);

    std::uint64_t min_hc = ~0ULL;
    double ber_sum = 0.0;
    std::uint32_t measured = 0;
    for (std::uint32_t r = 100; measured < kRows; r += 29) {
      auto rr = test.test_row(0, r, dram::DataPattern::kCheckerAA);
      if (!rr) continue;
      min_hc = std::min(min_hc, rr->hc_first);
      ber_sum += rr->ber;
      ++measured;
    }
    std::printf("%-12s %14llu %14.3e %14llu\n", ecc ? "enabled" : "disabled",
                static_cast<unsigned long long>(min_hc), ber_sum / measured,
                static_cast<unsigned long long>(
                    session.module().stats().ondie_ecc_corrections));
  }

  std::printf(
      "\nWith on-die SEC enabled the visible BER collapses (singles are "
      "eaten per 64-bit\ndevice word) and the apparent HCfirst inflates -- "
      "any characterization through an\nECC DIMM would understate the true "
      "vulnerability, which is why section 4.1 rules\nthem out.\n");
  return 0;
}
