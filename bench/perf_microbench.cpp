// Performance microbenchmarks (google-benchmark) for the hot paths of the
// simulation stack: counter-RNG synthesis, whole-row flip evaluation,
// Alg. 1's measure_BER, the circuit solver, and dense LU -- plus an
// end-to-end study sweep parameterized by --jobs, so serial-vs-parallel
// speedup is one `--benchmark_filter=BM_StudySweep` run away.
#include <benchmark/benchmark.h>

#include <thread>

#include "bench_common.hpp"
#include "chips/module_db.hpp"
#include "circuit/dram_cell.hpp"
#include "circuit/matrix.hpp"
#include "common/rng.hpp"
#include "dram/module.hpp"
#include "harness/pattern_fuzzer.hpp"
#include "harness/pattern_spec.hpp"
#include "harness/rowhammer_test.hpp"
#include "softmc/session.hpp"

namespace {

using namespace vppstudy;

void BM_Mix64(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = common::mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_CellUniform(benchmark::State& state) {
  const dram::CellPhysics phys(chips::profile_by_name("B3").value());
  std::uint32_t bit = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phys.cell_uniform(
        0, 500, bit++, dram::CellPhysics::CellDraw::kHammer));
  }
}
BENCHMARK(BM_CellUniform);

void BM_RowParams(benchmark::State& state) {
  const dram::CellPhysics phys(chips::profile_by_name("B3").value());
  std::uint32_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phys.row_params(0, row++ % 4096));
  }
}
BENCHMARK(BM_RowParams);

void BM_MeasureBer(benchmark::State& state) {
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 4096;
  softmc::Session session(profile);
  harness::RowHammerConfig cfg;
  cfg.num_iterations = 1;
  harness::RowHammerTest test(session, cfg);
  for (auto _ : state) {
    auto ber = test.measure_ber(0, 500, dram::DataPattern::kCheckerAA,
                                static_cast<std::uint64_t>(state.range(0)));
    benchmark::DoNotOptimize(ber);
  }
}
BENCHMARK(BM_MeasureBer)->Arg(1000)->Arg(300000);

// Victim sensing after a double-sided hammer burst, directly on the device
// model: each iteration is hammer_pair (O(1) bulk accounting) followed by the
// ACT+PRE that evaluates the accumulated disturbance on the victim. range(0)
// is the per-side hammer count; range(1) == 1 evaluates flips with the
// reference full-row scan instead of the flip-index fast path, so fast vs
// reference is a pair of adjacent bench rows. The low-count case keeps the
// flip probability within the index (O(actual flips)); the high-count case
// exceeds the index tail and exercises the bit-exact full-scan fallback in
// both modes.
void BM_SenseRestore(benchmark::State& state) {
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 4096;
  dram::Module::Options opts;
  opts.reference_sensing = state.range(1) != 0;
  dram::Module module(std::move(profile), opts);
  module.set_trr_enabled(false);
  const std::uint32_t victim = 500;
  const auto neighbors = module.mapping().physical_neighbors(victim);
  if (!neighbors.valid) {
    state.SkipWithError("victim has no double-sided neighborhood");
    return;
  }
  (void)module.debug_row_snapshot(0, victim, 0.0);  // initialize row content
  const auto hc = static_cast<std::uint64_t>(state.range(0));
  const dram::ModuleStats before = module.stats();
  double now = 100.0;
  for (auto _ : state) {
    auto st =
        module.hammer_pair(0, neighbors.below, neighbors.above, hc, 45.0, now);
    if (st.ok()) st = module.activate(0, victim, now);
    now += 35.0;
    if (st.ok()) st = module.precharge(0, now);
    now += 15.0;
    if (!st.ok()) {
      state.SkipWithError(st.error().message.c_str());
      break;
    }
  }
  const dram::ModuleStats& after = module.stats();
  state.counters["flips_per_s"] = benchmark::Counter(
      static_cast<double>((after.hammer_bit_flips + after.retention_bit_flips) -
                          (before.hammer_bit_flips +
                           before.retention_bit_flips)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SenseRestore)
    ->Args({120000, 0})
    ->Args({120000, 1})
    ->Args({2000000, 0})
    ->Args({2000000, 1});

// Retention-dominated flip evaluation: the victim sits unrefreshed for
// 500ms, then one ACT+PRE applies leakage and weak-cell physics. range(0)
// == 1 uses the reference full-row scan (as above).
void BM_ApplyFlips(benchmark::State& state) {
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 4096;
  dram::Module::Options opts;
  opts.reference_sensing = state.range(0) != 0;
  dram::Module module(std::move(profile), opts);
  module.set_trr_enabled(false);
  (void)module.debug_row_snapshot(0, 500, 0.0);
  double now = 100.0;
  for (auto _ : state) {
    auto st = module.activate(0, 500, now);
    now += 35.0;
    if (st.ok()) st = module.precharge(0, now);
    now += 500e6;  // half a second without refresh before the next sense
    if (!st.ok()) {
      state.SkipWithError(st.error().message.c_str());
      break;
    }
  }
}
BENCHMARK(BM_ApplyFlips)->Arg(0)->Arg(1);

// Full-row readout (ACT + 1024 RD + PRE): the read-burst buffer is pre-sized
// from Program::read_count(), so the executor does no vector reallocation.
void BM_ReadRow(benchmark::State& state) {
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 4096;
  softmc::Session session(profile);
  for (auto _ : state) {
    auto row = session.read_row(0, 500);
    if (!row) state.SkipWithError(row.error().message.c_str());
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_ReadRow);

void BM_CircuitActivation(benchmark::State& state) {
  circuit::DramCellSimParams p;
  p.t_stop_ns = 30.0;
  for (auto _ : state) {
    auto r = circuit::simulate_activation(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CircuitActivation);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Xoshiro256 rng(7);
  for (auto _ : state) {
    circuit::Matrix a(n);
    std::vector<double> b(n);
    for (std::size_t r = 0; r < n; ++r) {
      b[r] = rng.uniform();
      for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.uniform() + (r == c);
    }
    std::vector<double> x;
    benchmark::DoNotOptimize(circuit::lu_solve(a, b, x));
  }
}
BENCHMARK(BM_LuSolve)->Arg(9)->Arg(32);

// One fuzzer generation step on the pure-function side: synthetic
// deterministic scores, evolve_population, then every evolved member
// compiled into a one-period SoftMC program. This is the per-generation CPU
// overhead a fuzz campaign pays on top of the hammer simulation itself;
// range(0) is the population size.
void BM_FuzzGeneration(benchmark::State& state) {
  harness::FuzzerConfig config;
  config.population = static_cast<std::uint32_t>(state.range(0));
  config.elites = 2;
  const std::uint64_t seed = 0x5eed;
  const dram::Ddr4Timing timing;
  const std::int64_t victim = 500;
  auto population = harness::initial_population(seed, config);
  std::uint32_t generation = 0;
  std::vector<harness::ScoredSpec> scored;
  std::vector<std::uint32_t> rows;
  for (auto _ : state) {
    scored.clear();
    for (std::size_t i = 0; i < population.size(); ++i) {
      scored.push_back(
          {population[i], static_cast<double>((i * 37 + generation) % 101)});
    }
    population = harness::evolve_population(scored, seed, ++generation, config);
    for (const harness::PatternSpec& spec : population) {
      rows.clear();
      for (const harness::AggressorSpec& a : spec.aggressors) {
        rows.push_back(static_cast<std::uint32_t>(victim + a.offset));
      }
      const softmc::Program p = harness::compile_pattern(spec, timing, 0,
                                                         rows, 1);
      benchmark::DoNotOptimize(p.instructions().data());
    }
  }
  state.counters["specs_per_s"] = benchmark::Counter(
      static_cast<double>(config.population), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FuzzGeneration)->Arg(8)->Arg(32);

// End-to-end RowHammer sweep through the parallel engine, with the job count
// as the benchmark argument. Compare the `jobs:1` row against `jobs:N` to
// read off the parallel speedup; the per-iteration work is identical (the
// engine is deterministic at any job count), so wall time is the whole story.
void BM_StudySweep(benchmark::State& state) {
  bench::BenchOptions opt;  // fixed small scale; independent of env knobs
  opt.rows_per_chunk = 2;
  opt.chunks = 2;
  opt.iterations = 1;
  opt.max_modules = 8;
  opt.vpp_step = 0.4;
  opt.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::ParallelStudy engine(bench::study_config(opt));
    auto sweeps = engine.rowhammer_sweeps();
    if (!sweeps) state.SkipWithError(sweeps.error().message.c_str());
    benchmark::DoNotOptimize(sweeps);
  }
  state.counters["jobs"] = static_cast<double>(
      common::ThreadPool::resolve_jobs(opt.jobs));
}
BENCHMARK(BM_StudySweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(std::thread::hardware_concurrency()))
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Console output as usual, plus every per-iteration run captured for the
// machine-readable BENCH_perf.json snapshot (ns/op + finalized counters).
class PerfSnapshotReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      bench::PerfEntry entry;
      entry.name = run.benchmark_name();
      entry.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9
              : 0.0;
      for (const auto& [name, counter] : run.counters) {
        entry.counters.emplace_back(name, counter.value);
      }
      entries_.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<bench::PerfEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<bench::PerfEntry> entries_;
};

}  // namespace

// BENCHMARK_MAIN expanded so the run can end by writing the perf snapshot
// ($VPP_BENCH_JSON, default ./BENCH_perf.json).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  PerfSnapshotReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const std::string path = vppstudy::bench::perf_snapshot_path();
  if (!vppstudy::bench::write_perf_snapshot(path, reporter.entries())) {
    std::fprintf(stderr, "cannot write perf snapshot %s\n", path.c_str());
    return 1;
  }
  std::printf("perf snapshot: %s (%zu benchmarks)\n", path.c_str(),
              reporter.entries().size());
  return 0;
}
