// Performance microbenchmarks (google-benchmark) for the hot paths of the
// simulation stack: counter-RNG synthesis, whole-row flip evaluation,
// Alg. 1's measure_BER, the circuit solver, and dense LU -- plus an
// end-to-end study sweep parameterized by --jobs, so serial-vs-parallel
// speedup is one `--benchmark_filter=BM_StudySweep` run away.
#include <benchmark/benchmark.h>

#include <thread>

#include "bench_common.hpp"
#include "chips/module_db.hpp"
#include "circuit/dram_cell.hpp"
#include "circuit/matrix.hpp"
#include "common/rng.hpp"
#include "harness/rowhammer_test.hpp"
#include "softmc/session.hpp"

namespace {

using namespace vppstudy;

void BM_Mix64(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = common::mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_CellUniform(benchmark::State& state) {
  const dram::CellPhysics phys(chips::profile_by_name("B3").value());
  std::uint32_t bit = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phys.cell_uniform(
        0, 500, bit++, dram::CellPhysics::CellDraw::kHammer));
  }
}
BENCHMARK(BM_CellUniform);

void BM_RowParams(benchmark::State& state) {
  const dram::CellPhysics phys(chips::profile_by_name("B3").value());
  std::uint32_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phys.row_params(0, row++ % 4096));
  }
}
BENCHMARK(BM_RowParams);

void BM_MeasureBer(benchmark::State& state) {
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 4096;
  softmc::Session session(profile);
  harness::RowHammerConfig cfg;
  cfg.num_iterations = 1;
  harness::RowHammerTest test(session, cfg);
  for (auto _ : state) {
    auto ber = test.measure_ber(0, 500, dram::DataPattern::kCheckerAA,
                                static_cast<std::uint64_t>(state.range(0)));
    benchmark::DoNotOptimize(ber);
  }
}
BENCHMARK(BM_MeasureBer)->Arg(1000)->Arg(300000);

// Full-row readout (ACT + 1024 RD + PRE): the read-burst buffer is pre-sized
// from Program::read_count(), so the executor does no vector reallocation.
void BM_ReadRow(benchmark::State& state) {
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 4096;
  softmc::Session session(profile);
  for (auto _ : state) {
    auto row = session.read_row(0, 500);
    if (!row) state.SkipWithError(row.error().message.c_str());
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_ReadRow);

void BM_CircuitActivation(benchmark::State& state) {
  circuit::DramCellSimParams p;
  p.t_stop_ns = 30.0;
  for (auto _ : state) {
    auto r = circuit::simulate_activation(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CircuitActivation);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Xoshiro256 rng(7);
  for (auto _ : state) {
    circuit::Matrix a(n);
    std::vector<double> b(n);
    for (std::size_t r = 0; r < n; ++r) {
      b[r] = rng.uniform();
      for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.uniform() + (r == c);
    }
    std::vector<double> x;
    benchmark::DoNotOptimize(circuit::lu_solve(a, b, x));
  }
}
BENCHMARK(BM_LuSolve)->Arg(9)->Arg(32);

// End-to-end RowHammer sweep through the parallel engine, with the job count
// as the benchmark argument. Compare the `jobs:1` row against `jobs:N` to
// read off the parallel speedup; the per-iteration work is identical (the
// engine is deterministic at any job count), so wall time is the whole story.
void BM_StudySweep(benchmark::State& state) {
  bench::BenchOptions opt;  // fixed small scale; independent of env knobs
  opt.rows_per_chunk = 2;
  opt.chunks = 2;
  opt.iterations = 1;
  opt.max_modules = 8;
  opt.vpp_step = 0.4;
  opt.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::ParallelStudy engine(bench::study_config(opt));
    auto sweeps = engine.rowhammer_sweeps();
    if (!sweeps) state.SkipWithError(sweeps.error().message.c_str());
    benchmark::DoNotOptimize(sweeps);
  }
  state.counters["jobs"] = static_cast<double>(
      common::ThreadPool::resolve_jobs(opt.jobs));
}
BENCHMARK(BM_StudySweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(std::thread::hardware_concurrency()))
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
