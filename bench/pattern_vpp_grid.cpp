// Pattern-family x VPP grid: the non-uniform-attack counterpart of the
// Fig. 3/5 sweeps. Stage 1 runs a short corpus-seeded fuzz campaign
// (core/fuzz_campaign) to evolve TRR-evading pattern specs per (module, VPP)
// point; stage 2 evaluates the winners next to the uniform double-sided
// reference on the full VPP grid and exports the post-TRR flip landscape as
// CSV + JSON (core::grid_csv / grid_json, one file per module).
//
// Two built-in gates make this bench a CI check rather than a chart
// generator:
//  * effectiveness -- at nominal VPP (where TRR fully suppresses the uniform
//    attack) at least one fuzzed non-uniform pattern must out-flip the
//    uniform reference, or the bench exits 1;
//  * determinism -- the stage-2 grid is recomputed at a different --jobs
//    count and the rendered CSVs must match byte for byte, or the bench
//    exits 1. Kill/resume identity is driven externally: pass --manifest and
//    VPP_CAMPAIGN_KILL_AFTER, re-run to resume, and compare CSVs (CI's
//    pattern-fuzz-gauntlet does exactly this).
//
// Fixed small scale by default (1 module, 2 rows, 0.4V steps) so the default
// run finishes in well under a minute; flags scale it up:
//   --modules N --rows N --step V --jobs N --seed N
//   --generations N --population N
//   --csv PATH --json PATH --manifest PATH
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chips/module_db.hpp"
#include "core/campaign.hpp"
#include "core/export.hpp"
#include "core/fuzz_campaign.hpp"
#include "core/parallel_study.hpp"
#include "harness/pattern_fuzzer.hpp"
#include "harness/pattern_spec.hpp"

namespace {

using namespace vppstudy;

struct Options {
  /// Named module (the corpus-goldens module by default); --modules N > 0
  /// switches to the first N profiles instead.
  std::string module = "B3";
  std::size_t modules = 0;
  std::uint32_t rows = 2;
  double step = 0.4;
  int jobs = 1;
  std::uint64_t seed = 0;
  std::uint32_t generations = 2;
  std::uint32_t population = 6;
  std::string csv = "pattern_vpp_grid.csv";
  std::string json = "pattern_vpp_grid.json";
  std::string manifest;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&](const char* flag, const char** out) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        *out = argv[++i];
        return true;
      }
      return false;
    };
    const char* v = nullptr;
    if (value("--modules", &v)) {
      opt.modules = static_cast<std::size_t>(std::atol(v));
    } else if (value("--module", &v)) {
      opt.module = v;
    } else if (value("--rows", &v)) {
      opt.rows = static_cast<std::uint32_t>(std::atol(v));
    } else if (value("--step", &v)) {
      opt.step = std::atof(v);
    } else if (value("--jobs", &v)) {
      opt.jobs = std::atoi(v);
    } else if (value("--seed", &v)) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (value("--generations", &v)) {
      opt.generations = static_cast<std::uint32_t>(std::atol(v));
    } else if (value("--population", &v)) {
      opt.population = static_cast<std::uint32_t>(std::atol(v));
    } else if (value("--csv", &v)) {
      opt.csv = v;
    } else if (value("--json", &v)) {
      opt.json = v;
    } else if (value("--manifest", &v)) {
      opt.manifest = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  return opt;
}

/// The crowd-out seed (tests/harness/corpus/crowd_out.json, inlined so the
/// bench has no data-file dependency): eight decoy aggressors keep the
/// 8-entry Misra-Gries tracker saturated while two low-amplitude real
/// aggressors are displaced on every burst and never earn a mitigation.
harness::PatternSpec crowd_out_seed() {
  harness::PatternSpec spec;
  spec.name = "crowd-out";
  spec.slots_per_period = 64;
  spec.refs_per_period = 2;
  const std::int32_t offsets[] = {-6, -5, -4, -3, 3, 4, 5, 6};
  for (std::uint32_t i = 0; i < 8; ++i) {
    spec.aggressors.push_back({offsets[i], i, 1, 24});
  }
  spec.aggressors.push_back({-1, 8, 8, 3});
  spec.aggressors.push_back({1, 9, 8, 3});
  return spec;
}

core::CampaignPlan base_plan(const Options& opt) {
  bench::BenchOptions bopt;
  bopt.max_modules = opt.modules == 0 ? 1 : opt.modules;
  // Two chunks: chunk 0 hugs the bank edge (where wide patterns score zero
  // by the fit rule), chunk 1 sits mid-bank where every family can attack.
  bopt.chunks = 2;
  bopt.rows_per_chunk = opt.rows;
  bopt.vpp_step = opt.step;
  bopt.iterations = 1;
  bopt.jobs = opt.jobs;
  bopt.seed = opt.seed;
  core::CampaignPlan plan = bench::campaign_plan(bopt);
  if (opt.modules == 0) {
    auto profile = chips::profile_by_name(opt.module);
    if (!profile) {
      std::fprintf(stderr, "unknown module %s\n", opt.module.c_str());
      std::exit(2);
    }
    plan.modules = {*profile};
  }
  plan.rows_per_shard = 2;
  return plan;
}

/// Summed post-TRR flips for (pattern, VPP) across every module grid.
double flips_at(const std::vector<core::HammerGrid>& grids,
                std::uint64_t pattern_hash, std::uint64_t vpp_mv) {
  double total = 0.0;
  for (const core::HammerGrid& grid : grids) {
    for (std::size_t p = 0; p < grid.points.size(); ++p) {
      if (grid.points[p].pattern_hash != pattern_hash ||
          core::vpp_millivolts(grid.points[p].vpp_v) != vpp_mv) {
        continue;
      }
      for (const auto& cell : grid.cells[p]) {
        total += static_cast<double>(cell.hc_first);
      }
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  // Stage 1: evolve patterns per (module, VPP) point, seeded from the
  // corpus' crowd-out spec so the gene pool starts with one known
  // TRR-evading family next to the random specs.
  core::FuzzCampaignConfig fuzz;
  fuzz.base = base_plan(opt);
  if (!opt.manifest.empty()) fuzz.base.manifest_path = opt.manifest + ".fuzz.json";
  fuzz.generations = opt.generations;
  fuzz.fuzzer.population = opt.population;
  fuzz.fuzzer.elites = 2;
  fuzz.fuzzer.seeds.push_back(crowd_out_seed());
  std::printf("stage 1: fuzz campaign (%u generations, population %u)\n",
              fuzz.generations, fuzz.fuzzer.population);
  auto evolved = core::run_fuzz_campaign(fuzz);
  if (!evolved) {
    std::fprintf(stderr, "fuzz campaign failed: %s\n",
                 evolved.error().to_string().c_str());
    return 3;
  }

  // The grid's pattern families: the uniform reference first, then the top
  // two fuzzed specs of every (module, VPP) population, deduped by hash.
  std::vector<harness::PatternSpec> families;
  families.push_back(harness::uniform_double_sided_spec());
  std::vector<std::uint64_t> seen{families[0].spec_hash()};
  for (const core::FuzzPopulation& point : evolved->points) {
    std::size_t taken = 0;
    for (const harness::ScoredSpec& member : point.members) {
      if (taken >= 2) break;
      const std::uint64_t hash = member.spec.spec_hash();
      if (std::find(seen.begin(), seen.end(), hash) != seen.end()) continue;
      seen.push_back(hash);
      families.push_back(member.spec);
      ++taken;
    }
  }

  // Stage 2: the full pattern-family x VPP grid.
  core::CampaignPlan plan = base_plan(opt);
  plan.axes.patterns = families;
  if (!opt.manifest.empty()) plan.manifest_path = opt.manifest + ".grid.json";
  std::printf("stage 2: %zu pattern families x VPP grid\n", families.size());
  core::CampaignEngine engine(plan);
  auto grids = engine.run_hammer();
  if (!grids) {
    std::fprintf(stderr, "grid campaign failed: %s\n",
                 grids.error().to_string().c_str());
    return 3;
  }

  std::map<std::uint64_t, std::string> names;
  for (const harness::PatternSpec& spec : families) {
    names[spec.spec_hash()] = spec.name;
  }

  // One table per module: pattern family rows, VPP columns, post-TRR flips.
  for (const core::HammerGrid& grid : *grids) {
    std::vector<std::uint64_t> levels;
    for (const core::AxisPoint& point : grid.points) {
      const std::uint64_t mv = core::vpp_millivolts(point.vpp_v);
      if (std::find(levels.begin(), levels.end(), mv) == levels.end()) {
        levels.push_back(mv);
      }
    }
    std::printf("\n%s: post-TRR flips (%zu rows)\n", grid.module_name.c_str(),
                grid.rows.size());
    std::printf("%-24s", "pattern \\ VPP[V]");
    for (const std::uint64_t mv : levels) {
      std::printf(" %8.2f", static_cast<double>(mv) / 1000.0);
    }
    std::printf("\n");
    for (const harness::PatternSpec& spec : families) {
      std::printf("%-24s", spec.name.c_str());
      for (const std::uint64_t mv : levels) {
        std::printf(" %8.0f",
                    flips_at({grid}, spec.spec_hash(), mv));
      }
      std::printf("\n");
    }
  }

  // Exports (per-module suffix handled by the caller naming; grids arrive in
  // module order so multi-module runs append -<module> before the dot).
  const bool multi = grids->size() > 1;
  for (const core::HammerGrid& grid : *grids) {
    auto suffixed = [&](const std::string& path) {
      if (!multi) return path;
      const std::size_t dot = path.rfind('.');
      if (dot == std::string::npos) return path + "-" + grid.module_name;
      return path.substr(0, dot) + "-" + grid.module_name + path.substr(dot);
    };
    if (!core::grid_csv(grid).write_file(suffixed(opt.csv))) {
      std::fprintf(stderr, "cannot write %s\n", suffixed(opt.csv).c_str());
      return 3;
    }
    std::FILE* out = std::fopen(suffixed(opt.json).c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", suffixed(opt.json).c_str());
      return 3;
    }
    const std::string doc = core::grid_json(grid).str();
    std::fwrite(doc.data(), 1, doc.size(), out);
    std::fclose(out);
  }

  // Gate 1: a fuzzed non-uniform pattern must beat uniform at nominal VPP.
  const std::uint64_t nominal_mv = core::vpp_millivolts(2.5);
  const double uniform_flips =
      flips_at(*grids, families[0].spec_hash(), nominal_mv);
  double best_fuzzed = 0.0;
  std::string best_name;
  for (std::size_t f = 1; f < families.size(); ++f) {
    const double flips = flips_at(*grids, families[f].spec_hash(), nominal_mv);
    if (flips > best_fuzzed) {
      best_fuzzed = flips;
      best_name = families[f].name;
    }
  }
  std::printf("\nnominal VPP: uniform=%.0f flips, best fuzzed=%.0f (%s)\n",
              uniform_flips, best_fuzzed, best_name.c_str());
  if (best_fuzzed <= uniform_flips) {
    std::fprintf(stderr,
                 "FAIL: no fuzzed pattern out-flipped the uniform reference "
                 "at nominal VPP\n");
    return 1;
  }

  // Gate 2: recompute the grid at a different jobs count; the rendered CSVs
  // must be byte-identical (no manifest on the re-run, so checkpointing
  // cannot mask a divergence).
  core::CampaignPlan replan = base_plan(opt);
  replan.axes.patterns = families;
  replan.jobs = opt.jobs == 1 ? 2 : 1;
  core::CampaignEngine reengine(replan);
  auto regrids = reengine.run_hammer();
  if (!regrids) {
    std::fprintf(stderr, "identity re-run failed: %s\n",
                 regrids.error().to_string().c_str());
    return 3;
  }
  for (std::size_t g = 0; g < grids->size(); ++g) {
    if (core::grid_csv((*grids)[g]).str() !=
        core::grid_csv((*regrids)[g]).str()) {
      std::fprintf(stderr, "FAIL: grid for %s differs between jobs=%d and jobs=%d\n",
                   (*grids)[g].module_name.c_str(), opt.jobs, replan.jobs);
      return 1;
    }
  }
  std::printf("byte-identity jobs=%d vs jobs=%d: OK\n", opt.jobs, replan.jobs);
  return 0;
}
