// Section 8 ("Finding Optimal Wordline Voltage") made quantitative: sweep a
// module's usable VPP range and report, per operating point,
//   * security:    module-min HCfirst (higher = harder to hammer),
//   * performance: mean/p99 latency of a mixed workload through the memory
//                  controller (with the tRCD override the module needs),
//   * power:       energy per request, split by rail.
// The printout is the Pareto frontier the paper's discussion describes: a
// security-critical system picks the bottom rows, a performance-critical
// one the top.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "dram/energy.hpp"
#include "memctrl/controller.hpp"
#include "workload/runner.hpp"

namespace {

void frontier_for(const char* module_name, const char* note) {
  using namespace vppstudy;
  auto profile = chips::profile_by_name(module_name).value();
  profile.rows_per_bank = 8192;
  constexpr std::uint64_t kRequests = 20'000;

  std::printf("module %s (%s), %llu mixed requests per level\n", module_name,
              note, static_cast<unsigned long long>(kRequests));
  std::printf("%-7s %10s %10s %10s %10s %12s %9s\n", "VPP[V]", "minHCfirst",
              "tRCD[ns]", "mean[ns]", "p99[ns]", "energy[uJ/rq]", "VPPrail%");

  // Security metric per level: quick Alg. 1 on a small sample.
  core::SweepConfig cfg = core::SweepConfig::quick();
  cfg.sampling.chunks = 2;
  cfg.sampling.rows_per_chunk = 4;

  for (double vpp = 2.5; vpp >= profile.vppmin_v - 1e-9; vpp -= 0.2) {
    // (1) security
    core::Study study(profile);
    cfg.vpp_levels = {vpp};
    auto sweep = study.rowhammer_sweep(cfg);
    if (!sweep) continue;
    const auto hc = sweep->min_hc_first_at(0);

    // (2) the tRCD this module needs at this VPP (quantized like Fig. 7)
    dram::CellPhysics physics(profile);
    const auto rp = physics.row_params(0, 100);
    const double needed = physics.trcd_row_mean_ns(rp, vpp) + 0.6;
    const double trcd =
        std::max(13.5, std::ceil(needed / 1.5) * 1.5);

    // (3) performance + power through the controller
    softmc::Session session(profile);
    if (!session.set_vpp(vpp).ok()) continue;
    memctrl::ControllerOptions opts;
    opts.trcd_override_ns = trcd;
    memctrl::MemoryController mc(session, opts,
                                 std::make_unique<memctrl::NoMitigation>());
    workload::TraceConfig tc;
    tc.kind = workload::TraceKind::kRandom;
    tc.rows = profile.rows_per_bank;
    workload::TraceGenerator gen(tc);
    auto run = workload::run_trace(session, mc, gen, kRequests);
    if (!run) continue;

    const double vpp_pct =
        100.0 * run->energy.vpp_mj /
        std::max(run->energy.total_mj(), 1e-12);
    std::printf("%-7.1f %10llu %10.1f %10.1f %10.1f %12.4f %8.1f%%\n", vpp,
                static_cast<unsigned long long>(hc), trcd,
                run->mean_latency_ns, run->p99_latency_ns,
                run->energy_per_request_uj(), vpp_pct);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("# Pareto operating points (section 8)\n\n");
  frontier_for("A2", "pays latency for low VPP: needs up to 24ns tRCD");
  frontier_for("B3", "gains security at low VPP: HCfirst +27% at 1.6V");
  std::printf(
      "\nReading the frontier: HCfirst (security) improves toward the "
      "bottom; latency and the\nVPP rail's energy share move the other "
      "way -- the paper's security-vs-performance\ntrade-off, with energy "
      "as a bonus axis (pump energy scales ~VPP^2).\n");
  return 0;
}
