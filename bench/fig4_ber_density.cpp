// Fig. 4: population density of per-row normalized BER at VPPmin, per
// manufacturer (KDE over rows of all of a vendor's modules).
// Paper ranges to reproduce: A 0.43-1.11, B 0.33-1.03, C 0.74-0.94.
#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  auto opt = bench::options_from_args(argc, argv);
  opt.vpp_step = 1.1;  // only 2.5V and VPPmin matter for this figure
  bench::print_scale_banner("Fig. 4: normalized BER density at VPPmin", opt);

  const auto cfg = bench::sweep_config(opt);
  // One job per module; each runs a {2.5V, VPPmin} grid inline and reports
  // its vendor plus the per-row normalized BERs at VPPmin.
  using VendorRows = std::pair<dram::Manufacturer, std::vector<double>>;
  auto rows = bench::parallel_module_map(
      opt,
      [&cfg](const dram::ModuleProfile& profile)
          -> common::Expected<VendorRows> {
        auto module_cfg = cfg;
        module_cfg.vpp_levels = {2.5, profile.vppmin_v};
        core::Study study(profile);
        auto sweep = study.rowhammer_sweep(module_cfg);
        if (!sweep) return sweep.error();
        return VendorRows{
            profile.mfr,
            sweep->normalized_ber_at(sweep->vpp_levels.size() - 1)};
      });
  std::map<dram::Manufacturer, std::vector<double>> per_vendor;
  for (auto& [mfr, norm] : rows) {
    auto& bucket = per_vendor[mfr];
    bucket.insert(bucket.end(), norm.begin(), norm.end());
  }

  for (const auto& [mfr, values] : per_vendor) {
    if (values.empty()) continue;
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    std::printf("\n%s: %zu rows, normalized BER range [%.3f, %.3f]\n",
                dram::manufacturer_name(mfr), values.size(), *lo, *hi);
    const auto kde = stats::gaussian_kde(values, 0.2, 1.3, 23);
    for (const auto& pt : kde) {
      const int bar = static_cast<int>(pt.density * 12.0);
      std::printf("  %5.2f %8.4f %s\n", pt.x, pt.density,
                  std::string(static_cast<std::size_t>(std::max(bar, 0)), '#')
                      .c_str());
    }
  }
  std::printf(
      "\nPaper ranges: A 0.43-1.11, B 0.33-1.03, C 0.74-0.94 (Obsv. 3)\n");
  return 0;
}
