// Multi-axis sensitivity grid: temperature x VPP x hammer-count RowHammer
// characterization of one module, run as a single CampaignPlan through
// core::CampaignEngine and exported in full via the shared grid_csv /
// grid_json serializers (the same documents `vppctl campaign --csv/--json`
// writes). The stdout summary is a VPPmin pivot of mean BER over the
// (temperature, hammer count) plane -- the two-knob sensitivity surface
// "A Deeper Look into RowHammer's Sensitivities" explores one axis at a
// time.
//
// Output paths default to sensitivity_grid.{csv,json} in the working
// directory; set VPP_BENCH_GRID_PREFIX to redirect both. VPP_BENCH_* and
// --jobs/--rows/--step scale fidelity as in every other bench.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/export.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  const auto opt = bench::options_from_args(argc, argv);
  bench::print_scale_banner(
      "Sensitivity grid: temperature x VPP x hammer count", opt);

  const std::vector<double> temps = {50.0, 65.0, 80.0};
  const std::vector<std::uint64_t> hammer_counts = {150000, 300000, 600000};

  core::CampaignPlan plan = bench::campaign_plan(opt);
  plan.modules.resize(1);  // one module: the grid is already 3-axis
  plan.axes.temperatures_c = temps;
  plan.axes.hammer_counts = hammer_counts;

  const std::string module_name = plan.modules.front().name;
  const std::uint64_t default_hc = plan.sweep.hammer.ber_hc;
  core::CampaignEngine engine(std::move(plan));
  auto grids = engine.run_hammer();
  if (!grids || grids->empty()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 grids ? "no grids" : grids.error().to_string().c_str());
    return 1;
  }
  const core::HammerGrid& grid = grids->front();
  std::printf("# module %s: %zu grid points x %zu rows\n", module_name.c_str(),
              grid.points.size(), grid.rows.size());

  // VPPmin pivot: mean BER over rows per (temperature, hammer count).
  const double vppmin = grid.points.empty() ? 0.0 : grid.points.back().vpp_v;
  std::printf("\nmean BER at VPP=%.2fV (rows averaged):\n%-10s", vppmin,
              "HC\\temp");
  for (const double t : temps) std::printf(" %9.0fC", t);
  std::printf("\n");
  for (const std::uint64_t hc : hammer_counts) {
    std::printf("%-10llu", static_cast<unsigned long long>(hc));
    for (const double temp : temps) {
      double shown = -1.0;
      for (std::size_t p = 0; p < grid.points.size(); ++p) {
        const auto& point = grid.points[p];
        if (point.vpp_v != vppmin) continue;
        if (point.resolved_temperature(core::JobPhase::kRowHammer) != temp) {
          continue;
        }
        // Normalized points collapse the default hammer count to 0.
        const std::uint64_t point_hc =
            point.hammer_count == 0 ? default_hc : point.hammer_count;
        if (point_hc != hc) continue;
        std::vector<double> bers;
        for (const auto& cell : grid.cells[p]) bers.push_back(cell.ber);
        shown = stats::mean(bers);
        break;
      }
      if (shown < 0.0) {
        std::printf(" %10s", "-");
      } else {
        std::printf(" %10.3e", shown);
      }
    }
    std::printf("\n");
  }

  std::string prefix = "sensitivity_grid";
  if (const char* v = std::getenv("VPP_BENCH_GRID_PREFIX")) prefix = v;
  const std::string csv_path = prefix + ".csv";
  const std::string json_path = prefix + ".json";
  if (!core::grid_csv(grid).write_file(csv_path)) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  if (!core::grid_json(grid).write_file(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s and %s (full %zu-point grid)\n", csv_path.c_str(),
              json_path.c_str(), grid.points.size());
  return 0;
}
