// Table 1: summary of the tested DDR4 DRAM chips per manufacturer.
#include <cstdio>
#include <map>

#include "chips/module_db.hpp"

int main() {
  using namespace vppstudy;
  std::printf("Table 1: Summary of the tested DDR4 DRAM chips\n");
  std::printf("%-22s %7s %7s %8s %8s %5s %7s\n", "Mfr.", "#DIMMs", "#Chips",
              "Density", "Die Rev.", "Org.", "Date");

  // Group rows exactly as the paper does: (mfr, density, die rev, org, date).
  struct Key {
    dram::Manufacturer mfr;
    int density;
    std::string rev;
    int org;
    std::string date;
    bool operator<(const Key& o) const {
      return std::tie(mfr, density, rev, org, date) <
             std::tie(o.mfr, o.density, o.rev, o.org, o.date);
    }
  };
  std::map<Key, std::pair<int, int>> groups;  // -> (dimms, chips)
  for (const auto& p : chips::all_profiles()) {
    Key k{p.mfr, p.density_gbit, p.die_revision, p.org_width, p.mfr_date};
    auto& [dimms, n_chips] = groups[k];
    ++dimms;
    n_chips += p.num_chips;
  }
  dram::Manufacturer last = dram::Manufacturer::kMfrC;
  bool first = true;
  int total_chips = 0;
  int total_dimms = 0;
  for (const auto& [k, v] : groups) {
    const bool new_mfr = first || k.mfr != last;
    std::printf("%-22s %7d %7d %6dGb %8s   x%-3d %7s\n",
                new_mfr ? dram::manufacturer_name(k.mfr) : "", v.first,
                v.second, k.density, k.rev.c_str(), k.org, k.date.c_str());
    last = k.mfr;
    first = false;
    total_chips += v.second;
    total_dimms += v.first;
  }
  std::printf("%-22s %7d %7d   (paper: 30 DIMMs, 272 chips)\n", "Total",
              total_dimms, total_chips);
  return 0;
}
