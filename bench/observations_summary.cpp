// The headline aggregates of sections 5 and 8 (Takeaway 1): one run over
// all modules at {2.5V, VPPmin}, printing every Obsv. 1-6 quantity next to
// the paper's number.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vppstudy;
  const auto opt = bench::options_from_args(argc, argv);
  bench::print_scale_banner("Observations 1-6 summary", opt);

  const auto cfg = bench::sweep_config(opt);
  const auto sweeps = bench::parallel_module_map(
      opt,
      [&cfg](const dram::ModuleProfile& profile) {
        auto module_cfg = cfg;
        module_cfg.vpp_levels = {2.5, profile.vppmin_v};
        core::Study study(profile);
        return study.rowhammer_sweep(module_cfg);
      });
  const auto obs = core::aggregate_observations(sweeps);

  std::printf("\n%-46s %10s %10s\n", "quantity (at VPPmin)", "measured",
              "paper");
  std::printf("%-46s %9.1f%% %10s\n", "mean HCfirst increase (Obsv. 4)",
              100.0 * obs.mean_hc_first_increase, "7.4%");
  std::printf("%-46s %9.1f%% %10s\n", "max HCfirst increase (Obsv. 4)",
              100.0 * obs.max_hc_first_increase, "85.8%");
  std::printf("%-46s %9.1f%% %10s\n", "mean BER reduction (Obsv. 1)",
              100.0 * obs.mean_ber_reduction, "15.2%");
  std::printf("%-46s %9.1f%% %10s\n", "max BER reduction (Obsv. 1)",
              100.0 * obs.max_ber_reduction, "66.9%");
  std::printf("%-46s %9.1f%% %10s\n", "rows with HCfirst increase (Obsv. 4)",
              100.0 * obs.fraction_rows_hc_increase, "69.3%");
  std::printf("%-46s %9.1f%% %10s\n", "rows with HCfirst decrease (Obsv. 5)",
              100.0 * obs.fraction_rows_hc_decrease, "14.2%");
  std::printf("%-46s %9.1f%% %10s\n", "rows with BER decrease (Obsv. 1)",
              100.0 * obs.fraction_rows_ber_decrease, "81.2%");
  std::printf("%-46s %9.1f%% %10s\n", "rows with BER increase (Obsv. 2)",
              100.0 * obs.fraction_rows_ber_increase, "15.4%");
  return 0;
}
