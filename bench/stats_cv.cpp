// Section 4.6: statistical significance of the methodology. Repeats each
// measurement ten times (with the rig's run-to-run measurement noise
// enabled) and reports the coefficient of variation at the 90th / 95th /
// 99th percentiles across all measurements.
// Paper values to reproduce: CV = 0.08 / 0.13 / 0.24.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "harness/rowhammer_test.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace vppstudy;
  const auto opt = bench::options_from_env();
  std::printf("# Section 4.6: coefficient of variation across 10 repeated "
              "measurements\n");

  std::vector<double> cvs;
  std::size_t done = 0;
  for (const auto& profile : chips::all_profiles()) {
    if (done++ >= std::min<std::size_t>(opt.max_modules, 10)) break;
    core::Study study(profile);
    auto& session = study.session();
    // Enable the rig's iteration-to-iteration noise (thermal / supply
    // fluctuations); default runs are bit-exact for reproducibility.
    session.module().set_measurement_noise(0.03);
    harness::RowHammerConfig cfg;
    cfg.num_iterations = 1;
    harness::RowHammerTest test(session, cfg);

    const auto rows = harness::RowSampling{0, 2, 4}.sample(
        session.module().mapping());
    for (const std::uint32_t row : rows) {
      std::vector<double> bers;
      for (int iter = 0; iter < 10; ++iter) {
        auto ber = test.measure_ber(0, row, dram::DataPattern::kCheckerAA,
                                    300'000);
        if (!ber) break;
        if (*ber > 0.0) bers.push_back(*ber);
      }
      if (bers.size() == 10) {
        cvs.push_back(stats::coefficient_of_variation(bers));
      }
    }
  }

  if (cvs.empty()) {
    std::printf("no measurable rows at the probe hammer count\n");
    return 0;
  }
  std::printf("measurements: %zu rows x 10 iterations\n", cvs.size());
  std::printf("CV p50 = %.3f\n", stats::percentile(cvs, 50.0));
  std::printf("CV p90 = %.3f (paper: 0.08)\n", stats::percentile(cvs, 90.0));
  std::printf("CV p95 = %.3f (paper: 0.13)\n", stats::percentile(cvs, 95.0));
  std::printf("CV p99 = %.3f (paper: 0.24)\n", stats::percentile(cvs, 99.0));
  return 0;
}
