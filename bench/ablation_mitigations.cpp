// Ablation: section 3's claim that "VPP scaling is complementary to existing
// mitigation mechanisms ... and can reduce their overheads", quantified.
//
// For one module, at nominal VPP and at its VPPmin, sweep the strength of
// two controller-side defenses against a fixed double-sided attack and find
// the cheapest setting that still prevents every bit flip:
//   * Graphene: the maximum safe counter threshold (higher = smaller/cheaper
//     counter tables and fewer preventive refreshes);
//   * PARA: the minimum safe refresh probability (lower = fewer extra ACTs).
// Because HCfirst rises at reduced VPP, both defenses can be dialed down.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "memctrl/controller.hpp"

namespace {

using namespace vppstudy;

struct AttackResult {
  bool protected_ok = false;
  std::uint64_t preventive_refreshes = 0;
};

AttackResult run_attack(const dram::ModuleProfile& profile, double vpp,
                        std::unique_ptr<memctrl::MitigationPolicy> policy,
                        std::uint64_t acts_per_aggressor) {
  AttackResult out;
  softmc::Session session(profile);
  if (!session.set_vpp(vpp).ok()) return out;
  memctrl::ControllerOptions opts;
  opts.auto_refresh = false;
  opts.use_secded = false;
  memctrl::MemoryController mc(session, opts, std::move(policy));

  const std::uint32_t victim = 1500;
  const auto n = session.module().mapping().physical_neighbors(victim);
  memctrl::Request wr;
  wr.kind = memctrl::Request::Kind::kWrite;
  wr.data.fill(0xAA);
  for (std::uint32_t c = 0; c < dram::kColumnsPerRow; ++c) {
    wr.address = {0, victim, c};
    (void)mc.execute(wr);
  }
  memctrl::Request rd;
  rd.kind = memctrl::Request::Kind::kRead;
  for (std::uint64_t i = 0; i < acts_per_aggressor; ++i) {
    rd.address = {0, n.below, 0};
    (void)mc.execute(rd);
    rd.address = {0, n.above, 0};
    (void)mc.execute(rd);
  }
  out.preventive_refreshes = mc.stats().mitigative_refreshes;

  std::array<std::uint8_t, 8> expected{};
  expected.fill(0xAA);
  out.protected_ok = true;
  for (std::uint32_t c = 0; c < dram::kColumnsPerRow; ++c) {
    rd.address = {0, victim, c};
    auto r = mc.execute(rd);
    if (!r.has_value() || r->data != expected) {
      out.protected_ok = false;
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 8192;
  constexpr std::uint64_t kAttackActs = 60'000;

  std::printf(
      "# Ablation: mitigation overhead vs VPP (module B3, %llu ACTs per "
      "aggressor)\n\n",
      static_cast<unsigned long long>(kAttackActs));

  for (const double vpp : {2.5, profile.vppmin_v}) {
    std::printf("VPP = %.1fV (module-min HCfirst anchor: %.0f)\n", vpp,
                vpp > 2.4 ? profile.hc_first_nominal
                          : profile.hc_first_vppmin);

    // Graphene: find the largest safe threshold.
    std::uint64_t best_threshold = 0;
    std::uint64_t best_refreshes = 0;
    // The safe threshold tracks the victim's HCfirst (its neighbors get a
    // preventive refresh roughly every T activations).
    for (const std::uint64_t threshold :
         {8000ULL, 16000ULL, 24000ULL, 32000ULL, 40000ULL, 48000ULL,
          56000ULL, 64000ULL}) {
      const auto r = run_attack(
          profile, vpp,
          std::make_unique<memctrl::Graphene>(profile.banks, 16, threshold),
          kAttackActs);
      if (r.protected_ok) {
        best_threshold = threshold;
        best_refreshes = r.preventive_refreshes;
      }
    }
    std::printf(
        "  graphene: max safe threshold %llu (preventive refreshes: %llu)\n",
        static_cast<unsigned long long>(best_threshold),
        static_cast<unsigned long long>(best_refreshes));

    // PARA: find the smallest probability that survives 8 independent
    // trials (PARA's protection is probabilistic, so a single lucky run
    // proves nothing).
    double best_p = 1.0;
    std::uint64_t para_refreshes = 0;
    for (const double p : {1.0 / 32768, 1.0 / 24576, 1.0 / 16384,
                           1.0 / 12288, 1.0 / 8192, 1.0 / 4096}) {
      bool all_safe = true;
      std::uint64_t refreshes = 0;
      for (std::uint64_t trial = 0; trial < 8 && all_safe; ++trial) {
        const auto r = run_attack(
            profile, vpp,
            std::make_unique<memctrl::Para>(p, 0x9a7a + trial), kAttackActs);
        all_safe = r.protected_ok;
        refreshes = r.preventive_refreshes;
      }
      if (all_safe) {
        best_p = p;
        para_refreshes = refreshes;
        break;  // probabilities ascend: first safe one is the cheapest
      }
    }
    std::printf("  para:     min safe probability 1/%.0f (preventive "
                "refreshes: %llu)\n\n",
                1.0 / best_p,
                static_cast<unsigned long long>(para_refreshes));
  }
  std::printf(
      "Takeaway: at VPPmin the same attack is defeated with a weaker (and "
      "cheaper) policy\nsetting -- the composition benefit section 3 argues "
      "for.\n");
  return 0;
}
