
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/vpp_explorer.cpp" "examples/CMakeFiles/vpp_explorer.dir/vpp_explorer.cpp.o" "gcc" "examples/CMakeFiles/vpp_explorer.dir/vpp_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/core/CMakeFiles/vpp_core.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/harness/CMakeFiles/vpp_harness.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/stats/CMakeFiles/vpp_stats.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/softmc/CMakeFiles/vpp_softmc.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/ecc/CMakeFiles/vpp_ecc.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/chips/CMakeFiles/vpp_chips.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/dram/CMakeFiles/vpp_dram.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/common/CMakeFiles/vpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
