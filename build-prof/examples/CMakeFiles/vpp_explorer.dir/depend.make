# Empty dependencies file for vpp_explorer.
# This may be replaced when dependencies are built.
