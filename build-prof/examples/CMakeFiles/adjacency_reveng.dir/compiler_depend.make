# Empty compiler generated dependencies file for adjacency_reveng.
# This may be replaced when dependencies are built.
