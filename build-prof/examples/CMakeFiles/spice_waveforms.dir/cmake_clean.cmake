file(REMOVE_RECURSE
  "CMakeFiles/spice_waveforms.dir/spice_waveforms.cpp.o"
  "CMakeFiles/spice_waveforms.dir/spice_waveforms.cpp.o.d"
  "spice_waveforms"
  "spice_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
