file(REMOVE_RECURSE
  "CMakeFiles/secure_memory_controller.dir/secure_memory_controller.cpp.o"
  "CMakeFiles/secure_memory_controller.dir/secure_memory_controller.cpp.o.d"
  "secure_memory_controller"
  "secure_memory_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_memory_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
