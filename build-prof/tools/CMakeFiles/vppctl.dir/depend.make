# Empty dependencies file for vppctl.
# This may be replaced when dependencies are built.
