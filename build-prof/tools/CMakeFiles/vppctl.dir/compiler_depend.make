# Empty compiler generated dependencies file for vppctl.
# This may be replaced when dependencies are built.
