# Empty compiler generated dependencies file for fig8_activation.
# This may be replaced when dependencies are built.
