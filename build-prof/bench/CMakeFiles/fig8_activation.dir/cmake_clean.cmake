file(REMOVE_RECURSE
  "CMakeFiles/fig8_activation.dir/fig8_activation.cpp.o"
  "CMakeFiles/fig8_activation.dir/fig8_activation.cpp.o.d"
  "fig8_activation"
  "fig8_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
