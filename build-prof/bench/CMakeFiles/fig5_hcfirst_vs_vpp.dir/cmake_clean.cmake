file(REMOVE_RECURSE
  "CMakeFiles/fig5_hcfirst_vs_vpp.dir/fig5_hcfirst_vs_vpp.cpp.o"
  "CMakeFiles/fig5_hcfirst_vs_vpp.dir/fig5_hcfirst_vs_vpp.cpp.o.d"
  "fig5_hcfirst_vs_vpp"
  "fig5_hcfirst_vs_vpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hcfirst_vs_vpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
