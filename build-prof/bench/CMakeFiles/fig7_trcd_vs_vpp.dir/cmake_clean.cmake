file(REMOVE_RECURSE
  "CMakeFiles/fig7_trcd_vs_vpp.dir/fig7_trcd_vs_vpp.cpp.o"
  "CMakeFiles/fig7_trcd_vs_vpp.dir/fig7_trcd_vs_vpp.cpp.o.d"
  "fig7_trcd_vs_vpp"
  "fig7_trcd_vs_vpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_trcd_vs_vpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
