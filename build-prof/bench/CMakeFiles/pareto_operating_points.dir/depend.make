# Empty dependencies file for pareto_operating_points.
# This may be replaced when dependencies are built.
