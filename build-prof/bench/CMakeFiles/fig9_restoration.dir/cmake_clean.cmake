file(REMOVE_RECURSE
  "CMakeFiles/fig9_restoration.dir/fig9_restoration.cpp.o"
  "CMakeFiles/fig9_restoration.dir/fig9_restoration.cpp.o.d"
  "fig9_restoration"
  "fig9_restoration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_restoration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
