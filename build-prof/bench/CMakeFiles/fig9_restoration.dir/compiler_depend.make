# Empty compiler generated dependencies file for fig9_restoration.
# This may be replaced when dependencies are built.
