# Empty dependencies file for future_temperature_interaction.
# This may be replaced when dependencies are built.
