file(REMOVE_RECURSE
  "CMakeFiles/ablation_selective_refresh.dir/ablation_selective_refresh.cpp.o"
  "CMakeFiles/ablation_selective_refresh.dir/ablation_selective_refresh.cpp.o.d"
  "ablation_selective_refresh"
  "ablation_selective_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selective_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
