# Empty dependencies file for ablation_selective_refresh.
# This may be replaced when dependencies are built.
