# Empty dependencies file for stats_cv.
# This may be replaced when dependencies are built.
