file(REMOVE_RECURSE
  "CMakeFiles/related_on_time.dir/related_on_time.cpp.o"
  "CMakeFiles/related_on_time.dir/related_on_time.cpp.o.d"
  "related_on_time"
  "related_on_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_on_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
