file(REMOVE_RECURSE
  "CMakeFiles/fig6_hcfirst_density.dir/fig6_hcfirst_density.cpp.o"
  "CMakeFiles/fig6_hcfirst_density.dir/fig6_hcfirst_density.cpp.o.d"
  "fig6_hcfirst_density"
  "fig6_hcfirst_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hcfirst_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
