# Empty dependencies file for fig6_hcfirst_density.
# This may be replaced when dependencies are built.
