file(REMOVE_RECURSE
  "CMakeFiles/fig11_word_census.dir/fig11_word_census.cpp.o"
  "CMakeFiles/fig11_word_census.dir/fig11_word_census.cpp.o.d"
  "fig11_word_census"
  "fig11_word_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_word_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
