# Empty dependencies file for fig11_word_census.
# This may be replaced when dependencies are built.
