# Empty dependencies file for methodology_ecc_masking.
# This may be replaced when dependencies are built.
