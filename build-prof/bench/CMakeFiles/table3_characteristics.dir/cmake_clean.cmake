file(REMOVE_RECURSE
  "CMakeFiles/table3_characteristics.dir/table3_characteristics.cpp.o"
  "CMakeFiles/table3_characteristics.dir/table3_characteristics.cpp.o.d"
  "table3_characteristics"
  "table3_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
