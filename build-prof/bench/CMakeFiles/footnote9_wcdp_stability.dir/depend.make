# Empty dependencies file for footnote9_wcdp_stability.
# This may be replaced when dependencies are built.
