# Empty dependencies file for fig10_retention_ber.
# This may be replaced when dependencies are built.
