# Empty dependencies file for observations_summary.
# This may be replaced when dependencies are built.
