file(REMOVE_RECURSE
  "libvpp_bench_common.a"
)
