# Empty dependencies file for vpp_bench_common.
# This may be replaced when dependencies are built.
