file(REMOVE_RECURSE
  "CMakeFiles/vpp_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/vpp_bench_common.dir/bench_common.cpp.o.d"
  "libvpp_bench_common.a"
  "libvpp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
