# Empty dependencies file for fig4_ber_density.
# This may be replaced when dependencies are built.
