file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_terms.dir/ablation_model_terms.cpp.o"
  "CMakeFiles/ablation_model_terms.dir/ablation_model_terms.cpp.o.d"
  "ablation_model_terms"
  "ablation_model_terms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
