# Empty compiler generated dependencies file for ablation_model_terms.
# This may be replaced when dependencies are built.
