# Empty dependencies file for vpp_workload.
# This may be replaced when dependencies are built.
