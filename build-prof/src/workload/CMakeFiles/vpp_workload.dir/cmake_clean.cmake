file(REMOVE_RECURSE
  "CMakeFiles/vpp_workload.dir/runner.cpp.o"
  "CMakeFiles/vpp_workload.dir/runner.cpp.o.d"
  "CMakeFiles/vpp_workload.dir/trace.cpp.o"
  "CMakeFiles/vpp_workload.dir/trace.cpp.o.d"
  "libvpp_workload.a"
  "libvpp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
