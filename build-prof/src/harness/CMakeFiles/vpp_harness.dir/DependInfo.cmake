
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/adjacency.cpp" "src/harness/CMakeFiles/vpp_harness.dir/adjacency.cpp.o" "gcc" "src/harness/CMakeFiles/vpp_harness.dir/adjacency.cpp.o.d"
  "/root/repo/src/harness/attack_patterns.cpp" "src/harness/CMakeFiles/vpp_harness.dir/attack_patterns.cpp.o" "gcc" "src/harness/CMakeFiles/vpp_harness.dir/attack_patterns.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/harness/CMakeFiles/vpp_harness.dir/experiment.cpp.o" "gcc" "src/harness/CMakeFiles/vpp_harness.dir/experiment.cpp.o.d"
  "/root/repo/src/harness/recovery.cpp" "src/harness/CMakeFiles/vpp_harness.dir/recovery.cpp.o" "gcc" "src/harness/CMakeFiles/vpp_harness.dir/recovery.cpp.o.d"
  "/root/repo/src/harness/retention_test.cpp" "src/harness/CMakeFiles/vpp_harness.dir/retention_test.cpp.o" "gcc" "src/harness/CMakeFiles/vpp_harness.dir/retention_test.cpp.o.d"
  "/root/repo/src/harness/rowhammer_test.cpp" "src/harness/CMakeFiles/vpp_harness.dir/rowhammer_test.cpp.o" "gcc" "src/harness/CMakeFiles/vpp_harness.dir/rowhammer_test.cpp.o.d"
  "/root/repo/src/harness/trcd_test.cpp" "src/harness/CMakeFiles/vpp_harness.dir/trcd_test.cpp.o" "gcc" "src/harness/CMakeFiles/vpp_harness.dir/trcd_test.cpp.o.d"
  "/root/repo/src/harness/wcdp.cpp" "src/harness/CMakeFiles/vpp_harness.dir/wcdp.cpp.o" "gcc" "src/harness/CMakeFiles/vpp_harness.dir/wcdp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/common/CMakeFiles/vpp_common.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/stats/CMakeFiles/vpp_stats.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/dram/CMakeFiles/vpp_dram.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/softmc/CMakeFiles/vpp_softmc.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/ecc/CMakeFiles/vpp_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
