# Empty dependencies file for vpp_chips.
# This may be replaced when dependencies are built.
