file(REMOVE_RECURSE
  "libvpp_memctrl.a"
)
