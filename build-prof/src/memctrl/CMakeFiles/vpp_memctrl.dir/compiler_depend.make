# Empty compiler generated dependencies file for vpp_memctrl.
# This may be replaced when dependencies are built.
