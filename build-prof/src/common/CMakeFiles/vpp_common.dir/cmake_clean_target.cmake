file(REMOVE_RECURSE
  "libvpp_common.a"
)
