file(REMOVE_RECURSE
  "libvpp_dram.a"
)
