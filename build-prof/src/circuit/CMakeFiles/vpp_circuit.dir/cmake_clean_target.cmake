file(REMOVE_RECURSE
  "libvpp_circuit.a"
)
