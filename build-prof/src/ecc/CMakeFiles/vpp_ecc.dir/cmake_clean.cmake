file(REMOVE_RECURSE
  "CMakeFiles/vpp_ecc.dir/secded.cpp.o"
  "CMakeFiles/vpp_ecc.dir/secded.cpp.o.d"
  "CMakeFiles/vpp_ecc.dir/word_census.cpp.o"
  "CMakeFiles/vpp_ecc.dir/word_census.cpp.o.d"
  "libvpp_ecc.a"
  "libvpp_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
