# Empty dependencies file for vpp_softmc.
# This may be replaced when dependencies are built.
