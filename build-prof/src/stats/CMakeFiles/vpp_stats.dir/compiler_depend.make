# Empty compiler generated dependencies file for vpp_stats.
# This may be replaced when dependencies are built.
