file(REMOVE_RECURSE
  "libvpp_stats.a"
)
