file(REMOVE_RECURSE
  "CMakeFiles/vpp_stats.dir/descriptive.cpp.o"
  "CMakeFiles/vpp_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/vpp_stats.dir/histogram.cpp.o"
  "CMakeFiles/vpp_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/vpp_stats.dir/inference.cpp.o"
  "CMakeFiles/vpp_stats.dir/inference.cpp.o.d"
  "CMakeFiles/vpp_stats.dir/kde.cpp.o"
  "CMakeFiles/vpp_stats.dir/kde.cpp.o.d"
  "libvpp_stats.a"
  "libvpp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
