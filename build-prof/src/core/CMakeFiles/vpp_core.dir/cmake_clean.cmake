file(REMOVE_RECURSE
  "CMakeFiles/vpp_core.dir/export.cpp.o"
  "CMakeFiles/vpp_core.dir/export.cpp.o.d"
  "CMakeFiles/vpp_core.dir/parallel_study.cpp.o"
  "CMakeFiles/vpp_core.dir/parallel_study.cpp.o.d"
  "CMakeFiles/vpp_core.dir/resilient_study.cpp.o"
  "CMakeFiles/vpp_core.dir/resilient_study.cpp.o.d"
  "CMakeFiles/vpp_core.dir/study.cpp.o"
  "CMakeFiles/vpp_core.dir/study.cpp.o.d"
  "libvpp_core.a"
  "libvpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
