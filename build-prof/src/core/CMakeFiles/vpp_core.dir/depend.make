# Empty dependencies file for vpp_core.
# This may be replaced when dependencies are built.
