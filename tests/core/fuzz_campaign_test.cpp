// Fuzz-campaign contract tests: the generation loop is a pure function of
// its config (bit-identical grids and populations at any --jobs count, and
// on a rerun that resumes from a completed manifest), and the fuzz manifest
// round-trips the whole config -- including corpus seeds -- through JSON.
// The CI pattern-fuzz gauntlet covers the SIGKILL variants on the shipped
// vppctl binary; these tests pin the library-level contract.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "chips/module_db.hpp"
#include "core/campaign.hpp"
#include "core/export.hpp"
#include "core/fuzz_campaign.hpp"
#include "core/study.hpp"
#include "harness/pattern_fuzzer.hpp"
#include "harness/pattern_spec.hpp"

namespace vppstudy::core {
namespace {

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "fuzz_manifest_" + tag + "_" +
         std::to_string(::getpid()) + ".json";
}

FuzzCampaignConfig small_config(int jobs = 1) {
  SweepConfig sweep;
  sweep.vpp_levels = {2.5, 2.1};
  sweep.sampling.chunks = 2;
  sweep.sampling.rows_per_chunk = 1;
  sweep.hammer.num_iterations = 1;

  StudyConfig study;
  study.sweep = sweep;
  study.modules = {chips::profile_by_name("B3").value()};
  study.seed = 11;
  study.jobs = jobs;
  study.rows_per_shard = 2;

  FuzzCampaignConfig config;
  config.base = CampaignPlan::from_study(study);
  config.generations = 2;
  config.fuzzer.population = 4;
  config.fuzzer.elites = 1;
  return config;
}

// Flattened comparison key: generations, then every point's module/VPP and
// every member's (hash, score), then the rendered grids.
std::string result_fingerprint(const FuzzCampaignResult& result) {
  std::string fp = "generations=" + std::to_string(result.generations) + "\n";
  for (const FuzzPopulation& point : result.points) {
    fp += point.module + "@" + std::to_string(point.vpp_mv) + ":";
    for (const harness::ScoredSpec& member : point.members) {
      char buf[64];
      std::snprintf(buf, sizeof buf, " %016llx=%.17g",
                    static_cast<unsigned long long>(member.spec.spec_hash()),
                    member.score);
      fp += buf;
    }
    fp += "\n";
  }
  for (const HammerGrid& grid : result.grids) fp += grid_csv(grid).str();
  return fp;
}

TEST(FuzzCampaignTest, ResultIsIdenticalAtAnyJobsCount) {
  auto serial = run_fuzz_campaign(small_config(/*jobs=*/1));
  ASSERT_TRUE(serial.has_value()) << serial.error().to_string();
  auto parallel = run_fuzz_campaign(small_config(/*jobs=*/3));
  ASSERT_TRUE(parallel.has_value()) << parallel.error().to_string();
  EXPECT_EQ(result_fingerprint(*serial), result_fingerprint(*parallel));
  EXPECT_EQ(serial->generations, 2u);
  ASSERT_FALSE(serial->points.empty());
  // Populations come back ranked best-first.
  for (const FuzzPopulation& point : serial->points) {
    for (std::size_t i = 1; i < point.members.size(); ++i) {
      const auto& a = point.members[i - 1];
      const auto& b = point.members[i];
      EXPECT_TRUE(a.score > b.score ||
                  (a.score == b.score &&
                   a.spec.spec_hash() < b.spec.spec_hash()))
          << "population not ranked (score desc, hash asc) at member " << i;
    }
  }
}

TEST(FuzzCampaignTest, RerunResumesFromCompletedManifest) {
  const std::string path = temp_path("rerun");
  FuzzCampaignConfig config = small_config();
  config.base.manifest_path = path;
  auto first = run_fuzz_campaign(config);
  ASSERT_TRUE(first.has_value()) << first.error().to_string();
  // Second run restores every completed generation from the manifest and
  // must land on the identical result.
  auto second = run_fuzz_campaign(config);
  ASSERT_TRUE(second.has_value()) << second.error().to_string();
  EXPECT_EQ(result_fingerprint(*first), result_fingerprint(*second));
  // And matches a checkpoint-free run: the manifest is an execution detail,
  // never part of the result.
  auto clean = run_fuzz_campaign(small_config());
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(result_fingerprint(*first), result_fingerprint(*clean));
  std::remove(path.c_str());
  std::remove(fuzz_generation_manifest_path(path, 0).c_str());
  std::remove(fuzz_generation_manifest_path(path, 1).c_str());
}

TEST(FuzzCampaignTest, ManifestRoundTripsConfigAndPopulations) {
  const std::string path = temp_path("roundtrip");
  FuzzCampaignConfig config = small_config();
  config.base.manifest_path = path;
  auto result = run_fuzz_campaign(config);
  ASSERT_TRUE(result.has_value()) << result.error().to_string();

  auto manifest = load_fuzz_manifest(path);
  ASSERT_TRUE(manifest.has_value()) << manifest.error().to_string();
  EXPECT_EQ(manifest->config_hash, fuzz_config_digest(config));
  EXPECT_EQ(manifest->generations, config.generations);
  ASSERT_EQ(manifest->completed.size(), config.generations);
  // The recorded final generation holds the same scored members as the
  // result's points (the manifest keeps evolution order; the result is
  // re-ranked best-first, so compare under the result's ranking).
  const auto rank = [](const harness::ScoredSpec& a,
                       const harness::ScoredSpec& b) {
    return a.score > b.score ||
           (a.score == b.score && a.spec.spec_hash() < b.spec.spec_hash());
  };
  auto last = manifest->completed.back();
  ASSERT_EQ(last.size(), result->points.size());
  for (std::size_t p = 0; p < last.size(); ++p) {
    EXPECT_EQ(last[p].module, result->points[p].module);
    EXPECT_EQ(last[p].vpp_mv, result->points[p].vpp_mv);
    ASSERT_EQ(last[p].members.size(), result->points[p].members.size());
    std::sort(last[p].members.begin(), last[p].members.end(), rank);
    for (std::size_t m = 0; m < last[p].members.size(); ++m) {
      EXPECT_EQ(last[p].members[m].spec, result->points[p].members[m].spec);
      EXPECT_EQ(last[p].members[m].score,
                result->points[p].members[m].score);
    }
  }

  auto restored = config_from_fuzz_manifest(*manifest);
  ASSERT_TRUE(restored.has_value()) << restored.error().to_string();
  EXPECT_EQ(fuzz_config_digest(*restored), fuzz_config_digest(config));
  std::remove(path.c_str());
  std::remove(fuzz_generation_manifest_path(path, 0).c_str());
  std::remove(fuzz_generation_manifest_path(path, 1).c_str());
}

TEST(FuzzCampaignTest, CorpusSeedsFoldIntoDigestAndSurviveTheManifest) {
  const std::string path = temp_path("seeds");
  FuzzCampaignConfig config = small_config();
  const std::uint64_t seedless = fuzz_config_digest(config);

  harness::PatternSpec seed_spec = harness::uniform_double_sided_spec();
  seed_spec.name = "corpus-seed";
  seed_spec.aggressors[0].amplitude = 2;
  seed_spec.aggressors[1].amplitude = 2;
  config.fuzzer.seeds = {seed_spec};
  // Seeds shape generation 0, so they are part of the config identity.
  EXPECT_NE(fuzz_config_digest(config), seedless);

  config.base.manifest_path = path;
  auto result = run_fuzz_campaign(config);
  ASSERT_TRUE(result.has_value()) << result.error().to_string();
  auto manifest = load_fuzz_manifest(path);
  ASSERT_TRUE(manifest.has_value()) << manifest.error().to_string();
  ASSERT_EQ(manifest->fuzzer.seeds.size(), 1u);
  EXPECT_EQ(manifest->fuzzer.seeds[0], seed_spec);
  auto restored = config_from_fuzz_manifest(*manifest);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(fuzz_config_digest(*restored), fuzz_config_digest(config));
  std::remove(path.c_str());
  std::remove(fuzz_generation_manifest_path(path, 0).c_str());
  std::remove(fuzz_generation_manifest_path(path, 1).c_str());
}

}  // namespace
}  // namespace vppstudy::core
