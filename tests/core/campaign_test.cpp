// CampaignEngine contract tests: grid results are bit-identical to the
// serial reference study (the tentpole's byte-compatibility promise), axis
// points seed and normalize per the core/axis.hpp contract, and a campaign
// killed mid-shard resumes from its manifest to a byte-identical merged
// result.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chips/module_db.hpp"
#include "core/campaign.hpp"
#include "core/export.hpp"
#include "core/parallel_study.hpp"
#include "core/study.hpp"

namespace vppstudy::core {
namespace {

SweepConfig small_sweep() {
  SweepConfig cfg;
  cfg.vpp_levels = {2.5, 2.1, 1.7};
  cfg.sampling.chunks = 2;
  cfg.sampling.rows_per_chunk = 2;
  cfg.hammer.num_iterations = 1;
  cfg.trcd.num_iterations = 1;
  cfg.retention.num_iterations = 1;
  return cfg;
}

StudyConfig small_study(std::uint64_t seed = 7, int jobs = 3) {
  StudyConfig config;
  config.sweep = small_sweep();
  config.modules = {chips::profile_by_name("B3").value(),
                    chips::profile_by_name("A0").value()};
  config.seed = seed;
  config.jobs = jobs;
  config.rows_per_shard = 2;
  return config;
}

std::string temp_manifest_path(const char* tag) {
  return ::testing::TempDir() + "campaign_manifest_" + tag + "_" +
         std::to_string(::getpid()) + ".json";
}

// --- Equivalence vs the serial reference study -------------------------------

TEST(CampaignEngineEquivalence, HammerGridMatchesSerialStudy) {
  // The serial Study facade is the original reference implementation; it
  // runs at campaign seed 0, so compare a seed-0 engine campaign against it.
  const StudyConfig config = small_study(/*seed=*/0);
  CampaignEngine engine(CampaignPlan::from_study(config));
  auto grids = engine.run_hammer();
  ASSERT_TRUE(grids.has_value()) << grids.error().to_string();
  ASSERT_EQ(grids->size(), config.modules.size());

  for (std::size_t m = 0; m < config.modules.size(); ++m) {
    Study study(config.modules[m]);
    auto reference = study.rowhammer_sweep(config.sweep);
    ASSERT_TRUE(reference.has_value());
    const ModuleSweepResult sweep = (*grids)[m].to_sweep();
    EXPECT_EQ(sweep.vpp_levels, reference->vpp_levels);
    ASSERT_EQ(sweep.rows.size(), reference->rows.size());
    for (std::size_t r = 0; r < sweep.rows.size(); ++r) {
      EXPECT_EQ(sweep.rows[r].row, reference->rows[r].row);
      EXPECT_EQ(sweep.rows[r].hc_first, reference->rows[r].hc_first);
      EXPECT_EQ(sweep.rows[r].ber, reference->rows[r].ber);  // bitwise
    }
  }
}

TEST(CampaignEngineEquivalence, TrcdAndRetentionGridsMatchSerialStudy) {
  const StudyConfig config = small_study(/*seed=*/0);
  CampaignEngine trcd_engine(CampaignPlan::from_study(config));
  auto trcd_grids = trcd_engine.run_trcd();
  ASSERT_TRUE(trcd_grids.has_value()) << trcd_grids.error().to_string();
  CampaignEngine ret_engine(CampaignPlan::from_study(config));
  auto ret_grids = ret_engine.run_retention();
  ASSERT_TRUE(ret_grids.has_value()) << ret_grids.error().to_string();

  for (std::size_t m = 0; m < config.modules.size(); ++m) {
    Study study(config.modules[m]);
    auto trcd_ref = study.trcd_sweep(config.sweep);
    ASSERT_TRUE(trcd_ref.has_value());
    const TrcdSweepResult trcd = (*trcd_grids)[m].to_sweep();
    EXPECT_EQ(trcd.vpp_levels, trcd_ref->vpp_levels);
    EXPECT_EQ(trcd.trcd_min_ns, trcd_ref->trcd_min_ns);

    auto ret_ref = study.retention_sweep(config.sweep);
    ASSERT_TRUE(ret_ref.has_value());
    const RetentionSweepResult ret = (*ret_grids)[m].to_sweep();
    EXPECT_EQ(ret.vpp_levels, ret_ref->vpp_levels);
    EXPECT_EQ(ret.trefw_ms, ret_ref->trefw_ms);
    EXPECT_EQ(ret.mean_ber, ret_ref->mean_ber);
  }
}

// Spelling out the phase-default temperature must be indistinguishable from
// not having a temperature axis at all (the normalization contract that
// keeps legacy outputs and cache keys stable).
TEST(CampaignEngineEquivalence, DefaultAxisSpellingIsBaseline) {
  CampaignPlan bare = CampaignPlan::from_study(small_study());
  CampaignPlan spelled = CampaignPlan::from_study(small_study());
  spelled.axes.temperatures_c = {50.0};  // the hammer-phase default

  CampaignEngine bare_engine(std::move(bare));
  auto bare_grids = bare_engine.run_hammer();
  ASSERT_TRUE(bare_grids.has_value());
  CampaignEngine spelled_engine(std::move(spelled));
  auto spelled_grids = spelled_engine.run_hammer();
  ASSERT_TRUE(spelled_grids.has_value());

  ASSERT_EQ(bare_grids->size(), spelled_grids->size());
  for (std::size_t m = 0; m < bare_grids->size(); ++m) {
    EXPECT_EQ(grid_json((*bare_grids)[m]).str(),
              grid_json((*spelled_grids)[m]).str());
    EXPECT_EQ(grid_csv((*bare_grids)[m]).str(),
              grid_csv((*spelled_grids)[m]).str());
  }
}

// --- Axis seeding and normalization ------------------------------------------

TEST(CampaignAxisSeeding, BaselinePointUsesLegacyRowSeed) {
  const AxisPoint baseline{.vpp_v = 2.1};
  EXPECT_TRUE(baseline.baseline());
  EXPECT_EQ(point_stream_seed(7, 99, JobPhase::kRowHammer, 1234, baseline),
            row_stream_seed(7, 99, vpp_millivolts(2.1), JobPhase::kRowHammer,
                            1234));
}

TEST(CampaignAxisSeeding, OffDefaultCoordinatesExtendTheSeed) {
  const AxisPoint baseline{.vpp_v = 2.1};
  const AxisPoint hot{.vpp_v = 2.1, .temperature_c = 65.0};
  const AxisPoint hotter{.vpp_v = 2.1, .temperature_c = 80.0};
  const AxisPoint heavy{.vpp_v = 2.1, .hammer_count = 600000};
  const std::uint64_t base =
      point_stream_seed(7, 99, JobPhase::kRowHammer, 1234, baseline);
  const std::uint64_t at65 =
      point_stream_seed(7, 99, JobPhase::kRowHammer, 1234, hot);
  const std::uint64_t at80 =
      point_stream_seed(7, 99, JobPhase::kRowHammer, 1234, hotter);
  const std::uint64_t at600k =
      point_stream_seed(7, 99, JobPhase::kRowHammer, 1234, heavy);
  EXPECT_NE(base, at65);
  EXPECT_NE(at65, at80);
  EXPECT_NE(base, at600k);
  EXPECT_NE(at65, at600k);
}

TEST(CampaignAxisSeeding, NormalizationCollapsesPhaseDefaults) {
  const AxisPoint spelled{.vpp_v = 1.7,
                          .temperature_c = 50.0,
                          .hammer_count = 300000};
  const AxisPoint norm = spelled.normalized(JobPhase::kRowHammer, 300000);
  EXPECT_TRUE(norm.baseline());
  EXPECT_EQ(norm, (AxisPoint{.vpp_v = 1.7}));
  // Retention's default is 80C, so 50C stays off-default there.
  const AxisPoint ret =
      AxisPoint{.vpp_v = 1.7, .temperature_c = 50.0}.normalized(
          JobPhase::kRetention, 0);
  EXPECT_EQ(ret.temperature_c, 50.0);

  CampaignAxes axes;
  axes.temperatures_c = {50.0, 65.0};
  const auto points =
      axes.points_for({2.5, 1.7}, JobPhase::kRowHammer, 300000);
  // 2 VPP x {default, 65C}; the spelled-out default dedups with baseline.
  ASSERT_EQ(points.size(), 4u);
  EXPECT_TRUE(points[0].baseline());
  EXPECT_EQ(points[1].temperature_c, 65.0);
}

// --- Manifest round trip and plan binding ------------------------------------

TEST(CampaignManifest, CheckpointRoundTripsAndBindsToPlan) {
  const std::string path = temp_manifest_path("roundtrip");
  std::remove(path.c_str());

  CampaignPlan plan = CampaignPlan::from_study(small_study());
  plan.manifest_path = path;
  const std::uint64_t hash = plan.digest(JobPhase::kRowHammer);
  CampaignEngine engine(std::move(plan));
  ASSERT_TRUE(engine.run_hammer().has_value());

  auto manifest = load_campaign_manifest(path);
  ASSERT_TRUE(manifest.has_value()) << manifest.error().to_string();
  EXPECT_EQ(manifest->phase, JobPhase::kRowHammer);
  EXPECT_EQ(manifest->plan_hash, hash);
  EXPECT_GT(manifest->planned_shards, 0u);
  EXPECT_EQ(manifest->shards.size(), manifest->planned_shards);
  EXPECT_EQ(manifest->modules.size(), 2u);

  auto rebuilt = plan_from_manifest(*manifest);
  ASSERT_TRUE(rebuilt.has_value()) << rebuilt.error().to_string();
  EXPECT_EQ(rebuilt->digest(JobPhase::kRowHammer), hash);
  std::remove(path.c_str());
}

TEST(CampaignManifest, ResumeWithDifferentPlanIsRejected) {
  const std::string path = temp_manifest_path("mismatch");
  std::remove(path.c_str());

  CampaignPlan plan = CampaignPlan::from_study(small_study(/*seed=*/7));
  plan.manifest_path = path;
  CampaignEngine engine(std::move(plan));
  ASSERT_TRUE(engine.run_hammer().has_value());

  CampaignPlan other = CampaignPlan::from_study(small_study(/*seed=*/8));
  other.manifest_path = path;
  CampaignEngine mismatched(std::move(other));
  auto grids = mismatched.run_hammer();
  ASSERT_FALSE(grids.has_value());
  EXPECT_EQ(grids.error().code, common::ErrorCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --- Kill mid-shard, resume, byte-identical ----------------------------------

std::vector<std::string> grid_documents(const std::vector<HammerGrid>& grids) {
  std::vector<std::string> docs;
  for (const auto& grid : grids) {
    docs.push_back(grid_csv(grid).str());
    docs.push_back(grid_json(grid).str());
  }
  return docs;
}

TEST(CampaignResume, BudgetInterruptedCampaignResumesByteIdentical) {
  // Reference: one uninterrupted serial run.
  CampaignEngine reference(CampaignPlan::from_study(small_study(7, 1)));
  auto expected = reference.run_hammer();
  ASSERT_TRUE(expected.has_value());

  // Interrupted: at most 2 fresh shards per attempt, parallel workers, until
  // the manifest carries the whole campaign.
  const std::string path = temp_manifest_path("budget");
  std::remove(path.c_str());
  std::vector<HammerGrid> merged;
  int attempts = 0;
  for (; attempts < 64; ++attempts) {
    CampaignPlan plan = CampaignPlan::from_study(small_study(7, 3));
    plan.manifest_path = path;
    plan.max_new_shards = 2;
    CampaignEngine engine(std::move(plan));
    auto grids = engine.run_hammer();
    if (grids.has_value()) {
      merged = *std::move(grids);
      break;
    }
    ASSERT_EQ(grids.error().code, common::ErrorCode::kCancelled)
        << grids.error().to_string();
  }
  ASSERT_GT(attempts, 0) << "budget never interrupted the campaign";
  ASSERT_FALSE(merged.empty()) << "campaign never completed";
  EXPECT_EQ(grid_documents(merged), grid_documents(*expected));
  std::remove(path.c_str());
}

TEST(CampaignResume, SigkillMidShardResumesByteIdentical) {
  CampaignEngine reference(CampaignPlan::from_study(small_study(7, 1)));
  auto expected = reference.run_hammer();
  ASSERT_TRUE(expected.has_value());

  const std::string path = temp_manifest_path("sigkill");
  std::remove(path.c_str());

  // Child: run the campaign with the deterministic kill switch armed. The
  // manifest writer SIGKILLs the process after its 2nd write -- mid-shard,
  // with completed work checkpointed.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("VPP_CAMPAIGN_KILL_AFTER", "2", 1);
    CampaignPlan plan = CampaignPlan::from_study(small_study(7, 1));
    plan.manifest_path = path;
    CampaignEngine engine(std::move(plan));
    (void)engine.run_hammer();
    ::_exit(0);  // unreachable when the kill switch fires
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child was not killed mid-campaign";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The checkpoint is partial but loadable.
  auto manifest = load_campaign_manifest(path);
  ASSERT_TRUE(manifest.has_value()) << manifest.error().to_string();
  EXPECT_LT(manifest->shards.size(), manifest->planned_shards);

  // Resume in this process (no kill switch), different worker count.
  CampaignPlan plan = CampaignPlan::from_study(small_study(7, 3));
  plan.manifest_path = path;
  CampaignEngine engine(std::move(plan));
  auto resumed = engine.run_hammer();
  ASSERT_TRUE(resumed.has_value()) << resumed.error().to_string();
  EXPECT_EQ(grid_documents(*resumed), grid_documents(*expected));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vppstudy::core
