#include "core/parallel_study.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chips/module_db.hpp"
#include "core/export.hpp"
#include "core/study.hpp"

namespace vppstudy::core {
namespace {

std::vector<dram::ModuleProfile> small_modules() {
  std::vector<dram::ModuleProfile> modules;
  for (const char* name : {"A0", "B3", "C1"}) {
    auto p = chips::profile_by_name(name).value();
    p.rows_per_bank = 4096;
    modules.push_back(std::move(p));
  }
  return modules;
}

StudyConfig small_config(int jobs) {
  StudyConfig config;
  config.sweep = SweepConfig::quick();
  config.sweep.vpp_levels = {2.5, 2.0, 1.6};
  config.sweep.sampling.chunks = 2;
  config.sweep.sampling.rows_per_chunk = 4;
  config.modules = small_modules();
  config.seed = 0;
  config.jobs = jobs;
  return config;
}

template <typename Sweeps>
std::string concat_csv(const Sweeps& sweeps) {
  std::string all;
  for (const auto& sweep : sweeps) all += to_csv(sweep).str();
  return all;
}

TEST(ParallelStudy, JobStreamSeedSeparatesCells) {
  const auto base = job_stream_seed(0, 11, 2500, JobPhase::kRowHammer);
  EXPECT_NE(base, job_stream_seed(1, 11, 2500, JobPhase::kRowHammer));
  EXPECT_NE(base, job_stream_seed(0, 12, 2500, JobPhase::kRowHammer));
  EXPECT_NE(base, job_stream_seed(0, 11, 1600, JobPhase::kRowHammer));
  EXPECT_NE(base, job_stream_seed(0, 11, 2500, JobPhase::kTrcd));
  // Same key, same stream: the whole determinism story rests on this.
  EXPECT_EQ(base, job_stream_seed(0, 11, 2500, JobPhase::kRowHammer));
}

TEST(ParallelStudy, VppMillivoltsIsStableUnderLevelArithmetic) {
  EXPECT_EQ(vpp_millivolts(2.5), 2500u);
  EXPECT_EQ(vpp_millivolts(2.5 - 0.1 - 0.1 - 0.1), 2200u);
  EXPECT_EQ(vpp_millivolts(1.4000000000000004), 1400u);
}

TEST(ParallelStudy, RowHammerCsvIsByteIdenticalAcrossJobCounts) {
  ParallelStudy serial(small_config(1));
  ParallelStudy parallel(small_config(8));
  auto s = serial.rowhammer_sweeps();
  auto p = parallel.rowhammer_sweeps();
  ASSERT_TRUE(s.has_value()) << s.error().message;
  ASSERT_TRUE(p.has_value()) << p.error().message;
  ASSERT_EQ(s->size(), 3u);
  EXPECT_EQ(concat_csv(*s), concat_csv(*p));
}

TEST(ParallelStudy, TrcdCsvIsByteIdenticalAcrossJobCounts) {
  ParallelStudy serial(small_config(1));
  ParallelStudy parallel(small_config(8));
  auto s = serial.trcd_sweeps();
  auto p = parallel.trcd_sweeps();
  ASSERT_TRUE(s.has_value()) << s.error().message;
  ASSERT_TRUE(p.has_value()) << p.error().message;
  EXPECT_EQ(concat_csv(*s), concat_csv(*p));
}

TEST(ParallelStudy, RetentionCsvIsByteIdenticalAcrossJobCounts) {
  auto config = small_config(1);
  config.sweep.vpp_levels = {2.5, 2.0};
  ParallelStudy serial(config);
  config.jobs = 8;
  ParallelStudy parallel(config);
  auto s = serial.retention_sweeps();
  auto p = parallel.retention_sweeps();
  ASSERT_TRUE(s.has_value()) << s.error().message;
  ASSERT_TRUE(p.has_value()) << p.error().message;
  EXPECT_EQ(concat_csv(*s), concat_csv(*p));
}

TEST(ParallelStudy, RowStreamSeedSeparatesRows) {
  const auto base = row_stream_seed(0, 11, 2500, JobPhase::kRowHammer, 500);
  EXPECT_NE(base, row_stream_seed(0, 11, 2500, JobPhase::kRowHammer, 501));
  EXPECT_NE(base, row_stream_seed(0, 11, 2500, JobPhase::kTrcd, 500));
  EXPECT_NE(base, row_stream_seed(1, 11, 2500, JobPhase::kRowHammer, 500));
  EXPECT_EQ(base, row_stream_seed(0, 11, 2500, JobPhase::kRowHammer, 500));
}

TEST(ParallelStudy, ShardGranularityIsAPurePerformanceKnob) {
  // rows_per_shard only changes how work is cut into jobs; per-row noise
  // streams make every granularity -- including 0, one shard per cell --
  // produce byte-identical CSV exports.
  auto config = small_config(4);
  config.sweep.vpp_levels = {2.5, 1.6};
  std::vector<std::string> hammer_csv, trcd_csv, retention_csv;
  for (const std::uint32_t rows_per_shard : {0u, 1u, 3u, 64u}) {
    config.rows_per_shard = rows_per_shard;
    ParallelStudy engine(config);
    auto h = engine.rowhammer_sweeps();
    ASSERT_TRUE(h.has_value()) << h.error().message;
    hammer_csv.push_back(concat_csv(*h));
    auto t = engine.trcd_sweeps();
    ASSERT_TRUE(t.has_value()) << t.error().message;
    trcd_csv.push_back(concat_csv(*t));
    auto r = engine.retention_sweeps();
    ASSERT_TRUE(r.has_value()) << r.error().message;
    retention_csv.push_back(concat_csv(*r));
  }
  for (std::size_t i = 1; i < hammer_csv.size(); ++i) {
    EXPECT_EQ(hammer_csv[0], hammer_csv[i]) << "granularity case " << i;
    EXPECT_EQ(trcd_csv[0], trcd_csv[i]) << "granularity case " << i;
    EXPECT_EQ(retention_csv[0], retention_csv[i]) << "granularity case " << i;
  }
}

TEST(ParallelStudy, MatchesSerialStudyFacade) {
  // The Study facade delegates to a jobs=1 engine; a multi-module parallel
  // campaign must reproduce it module for module.
  auto config = small_config(4);
  ParallelStudy engine(config);
  auto sweeps = engine.rowhammer_sweeps();
  ASSERT_TRUE(sweeps.has_value()) << sweeps.error().message;
  for (std::size_t m = 0; m < config.modules.size(); ++m) {
    Study study(config.modules[m]);
    auto single = study.rowhammer_sweep(config.sweep);
    ASSERT_TRUE(single.has_value()) << single.error().message;
    EXPECT_EQ(to_csv(*single).str(), to_csv((*sweeps)[m]).str())
        << config.modules[m].name;
  }
}

TEST(ParallelStudy, CampaignSeedChangesNoiseNotPhysics) {
  auto config = small_config(2);
  config.sweep.vpp_levels = {2.5};
  ParallelStudy engine_a(config);
  config.seed = 99;
  ParallelStudy engine_b(config);
  auto a = engine_a.rowhammer_sweeps();
  auto b = engine_b.rowhammer_sweeps();
  ASSERT_TRUE(a.has_value()) << a.error().message;
  ASSERT_TRUE(b.has_value()) << b.error().message;
  // Same modules, same rows sampled (physics keyed by profile seed)...
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t m = 0; m < a->size(); ++m) {
    ASSERT_EQ((*a)[m].rows.size(), (*b)[m].rows.size());
    for (std::size_t r = 0; r < (*a)[m].rows.size(); ++r) {
      EXPECT_EQ((*a)[m].rows[r].row, (*b)[m].rows[r].row);
    }
  }
}

}  // namespace
}  // namespace vppstudy::core
