// Tests for the fault-tolerant campaign runner: retry accounting in the
// sweep instrumentation, deterministic quarantine decisions under a seeded
// fault plan, exclusion of quarantined modules from cross-module statistics,
// replayability of the quarantine evidence, and the partial-result CSV/JSON
// markers downstream consumers rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chips/module_db.hpp"
#include "common/error.hpp"
#include "core/export.hpp"
#include "core/resilient_study.hpp"
#include "softmc/trace_replayer.hpp"
#include "stats/descriptive.hpp"

namespace vppstudy::core {
namespace {

dram::ModuleProfile small_profile(const char* name = "B3") {
  auto p = chips::profile_by_name(name).value();
  p.rows_per_bank = 4096;
  return p;
}

ResilientConfig tiny_config(const std::string& fault_spec = "") {
  ResilientConfig cfg;
  cfg.sweep = SweepConfig::quick();
  cfg.sweep.vpp_levels = {2.5, 1.9};
  cfg.sweep.sampling.chunks = 2;
  cfg.sweep.sampling.rows_per_chunk = 1;
  cfg.modules = {small_profile()};
  cfg.seed = 1;
  cfg.retry.max_attempts = 2;
  cfg.trace_capacity = 512;
  if (!fault_spec.empty()) {
    cfg.faults = softmc::FaultPlan::parse(fault_spec).value();
  }
  return cfg;
}

TEST(ResilientStudy, CleanCampaignCompletesWithoutRetries) {
  const CampaignResult campaign = run_resilient_rowhammer(tiny_config());
  ASSERT_EQ(campaign.modules.size(), 1u);
  const ModuleCampaignResult& m = campaign.modules[0];
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.attempts, 1u);
  EXPECT_FALSE(m.has_dump);
  EXPECT_EQ(m.injections.total(), 0u);
  // Edge-of-bank rows are skipped by the sampler, so >= 1 of the 2 chunks.
  EXPECT_GE(m.sweep.rows.size(), 1u);
  EXPECT_EQ(campaign.completed_count(), 1u);
  EXPECT_TRUE(campaign.quarantines.empty());
  EXPECT_EQ(campaign.instrumentation.retries, 0u);
  EXPECT_EQ(campaign.instrumentation.quarantined_modules, 0u);
  EXPECT_GT(campaign.instrumentation.jobs, 0u);

  const std::string csv = campaign_to_csv(campaign).str();
  EXPECT_NE(csv.find("B3,completed,"), std::string::npos);
  EXPECT_EQ(csv.find("quarantined"), std::string::npos);
}

TEST(ResilientStudy, PersistentFaultQuarantinesWithoutRetry) {
  // kInvalidArgument is classified persistent: retrying cannot help, so the
  // module is quarantined after a single attempt.
  const CampaignResult campaign = run_resilient_rowhammer(
      tiny_config("seed=2;spurious@10,code=kInvalidArgument"));
  ASSERT_EQ(campaign.modules.size(), 1u);
  const ModuleCampaignResult& m = campaign.modules[0];
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.attempts, 1u);
  EXPECT_EQ(m.error_code, common::ErrorCode::kInvalidArgument);
  EXPECT_TRUE(m.has_dump);
  EXPECT_EQ(campaign.instrumentation.retries, 0u);
  EXPECT_EQ(campaign.instrumentation.quarantined_modules, 1u);
  ASSERT_EQ(campaign.quarantines.size(), 1u);
  EXPECT_EQ(campaign.quarantines[0].module, "B3");
  EXPECT_EQ(campaign.quarantines[0].attempts, 1u);
}

TEST(ResilientStudy, TransientFaultBurnsRetryBudgetAndKeepsEvidence) {
  // A scheduled drop_act fires at the same command index on every attempt,
  // so both attempts die with kDeviceProtocol (transient) and the module
  // quarantines with the full budget spent and one retry on the books.
  const CampaignResult campaign =
      run_resilient_rowhammer(tiny_config("seed=3;drop_act@0"));
  ASSERT_EQ(campaign.modules.size(), 1u);
  const ModuleCampaignResult& m = campaign.modules[0];
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.attempts, 2u);
  EXPECT_EQ(m.error_code, common::ErrorCode::kDeviceProtocol);
  EXPECT_EQ(campaign.instrumentation.retries, 1u);
  EXPECT_EQ(campaign.instrumentation.quarantined_modules, 1u);

  // The quarantine evidence is a replayable dump that reproduces the
  // original typed failure on a fresh rig.
  ASSERT_TRUE(m.has_dump);
  EXPECT_EQ(m.dump.error_code, common::ErrorCode::kDeviceProtocol);
  softmc::TraceReplayer replayer(m.dump);
  const auto report = replayer.replay_on_profile(small_profile());
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->reproduced());

  const std::string csv = campaign_to_csv(campaign).str();
  EXPECT_NE(csv.find("B3,quarantined,kDeviceProtocol,2,,,,,"),
            std::string::npos);
  const std::string json = campaign_json(campaign).str();
  EXPECT_NE(json.find("\"status\":\"quarantined\""), std::string::npos);
  EXPECT_NE(json.find("\"retries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"error_code\":\"kDeviceProtocol\""),
            std::string::npos);
}

TEST(ResilientStudy, SeededCampaignIsBitReproducible) {
  // Probability-based faults draw from (seed, attempt, kind, index) only, so
  // two identical invocations produce byte-identical exports -- the same
  // guarantee the replay-fuzz CI job asserts on vppctl inject.
  const auto cfg = tiny_config("seed=9;drop_read=0.0001;flip_read=0.0001");
  const CampaignResult a = run_resilient_rowhammer(cfg);
  const CampaignResult b = run_resilient_rowhammer(cfg);
  EXPECT_EQ(a.modules.size(), b.modules.size());
  EXPECT_EQ(a.completed_count(), b.completed_count());
  EXPECT_EQ(a.quarantines.size(), b.quarantines.size());
  EXPECT_EQ(a.instrumentation, b.instrumentation);
  EXPECT_EQ(campaign_json(a).str(), campaign_json(b).str());
  EXPECT_EQ(campaign_to_csv(a).str(), campaign_to_csv(b).str());
}

TEST(ResilientStudy, CvExcludesQuarantinedModules) {
  auto make_completed = [](const char* name, std::uint64_t hc) {
    ModuleCampaignResult m;
    m.module_name = name;
    m.completed = true;
    m.sweep.module_name = name;
    m.sweep.vpp_levels = {2.5};
    RowSeries r;
    r.hc_first = {hc};
    r.ber = {0.0};
    m.sweep.rows.push_back(r);
    return m;
  };

  CampaignResult campaign;
  campaign.modules.push_back(make_completed("M0", 10000));
  campaign.modules.push_back(make_completed("M1", 20000));
  // A quarantined module with wild partial data that must not leak into the
  // cross-module spread.
  ModuleCampaignResult q = make_completed("M2", 999999);
  q.completed = false;
  campaign.modules.push_back(q);

  EXPECT_EQ(campaign.completed_count(), 2u);
  const double expected = stats::coefficient_of_variation(
      std::vector<double>{10000.0, 20000.0});
  EXPECT_DOUBLE_EQ(campaign.hc_first_cv(), expected);

  // With fewer than two completed modules there is no spread to report.
  campaign.modules[1].completed = false;
  EXPECT_DOUBLE_EQ(campaign.hc_first_cv(), 0.0);
}

}  // namespace
}  // namespace vppstudy::core
