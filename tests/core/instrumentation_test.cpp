// Tests for the per-sweep rig instrumentation: every (module, VPP level) job
// contributes its session's command counts, the aggregate is identical at
// any --jobs count, and typed errors cross the softmc -> harness -> core
// boundary with their code and context intact.
#include <gtest/gtest.h>

#include <cstdint>

#include "chips/module_db.hpp"
#include "common/error.hpp"
#include "core/parallel_study.hpp"
#include "core/study.hpp"

namespace vppstudy::core {
namespace {

dram::ModuleProfile small_profile(const char* name = "B3") {
  auto p = chips::profile_by_name(name).value();
  p.rows_per_bank = 4096;
  return p;
}

StudyConfig small_config(int jobs) {
  StudyConfig config;
  config.sweep = SweepConfig::quick();
  config.sweep.vpp_levels = {2.5, 2.0, 1.6};
  config.sweep.sampling.chunks = 2;
  config.sweep.sampling.rows_per_chunk = 2;
  config.modules = {small_profile()};
  config.seed = 0;
  config.jobs = jobs;
  return config;
}

TEST(SweepInstrumentation, AggregatesJobCountsAsAFold) {
  softmc::CommandCounts a;
  a.activates = 3;
  a.reads = 10;
  softmc::CommandCounts b;
  b.activates = 1;
  b.hammer_activations = 600;

  SweepInstrumentation inst;
  inst.add_job(a);
  inst.add_job(b);
  EXPECT_EQ(inst.jobs, 2u);
  EXPECT_EQ(inst.counts.activates, 4u);
  EXPECT_EQ(inst.counts.reads, 10u);
  EXPECT_EQ(inst.counts.hammer_activations, 600u);

  SweepInstrumentation other;
  other.add_job(a);
  inst += other;
  EXPECT_EQ(inst.jobs, 3u);
  EXPECT_EQ(inst.counts.activates, 7u);
}

TEST(SweepInstrumentation, RowHammerSweepCountsOneJobPerLevelPlusPrep) {
  ParallelStudy engine(small_config(1));
  auto sweeps = engine.rowhammer_sweeps();
  ASSERT_TRUE(sweeps.has_value()) << sweeps.error().to_string();
  ASSERT_EQ(sweeps->size(), 1u);
  const ModuleSweepResult& sweep = sweeps->front();

  // B3's VPPmin is 1.6V, so all three levels run: one WCDP-prep session
  // plus one session per level.
  ASSERT_EQ(sweep.vpp_levels.size(), 3u);
  EXPECT_EQ(sweep.instrumentation.jobs, 4u);
  // A hammer campaign is dominated by loop activations; every job also
  // reads rows back for verification.
  EXPECT_GT(sweep.instrumentation.counts.hammer_activations, 0u);
  EXPECT_GT(sweep.instrumentation.counts.reads, 0u);
  EXPECT_GT(sweep.instrumentation.counts.simulated_ns, 0.0);
  EXPECT_NE(sweep.instrumentation.summary().find("rig sessions"),
            std::string::npos);
}

TEST(SweepInstrumentation, TrcdSweepCountsOneJobPerLevel) {
  ParallelStudy engine(small_config(1));
  auto sweeps = engine.trcd_sweeps();
  ASSERT_TRUE(sweeps.has_value()) << sweeps.error().to_string();
  const TrcdSweepResult& sweep = sweeps->front();
  ASSERT_EQ(sweep.vpp_levels.size(), 3u);
  EXPECT_EQ(sweep.instrumentation.jobs, 3u);
  // Alg. 2 probes single columns at reduced tRCD: deliberate violations are
  // the methodology, and the counters see them.
  EXPECT_GT(sweep.instrumentation.counts.timing_violations, 0u);
}

TEST(SweepInstrumentation, IsIdenticalAcrossJobCounts) {
  ParallelStudy serial(small_config(1));
  ParallelStudy parallel(small_config(8));
  auto s = serial.rowhammer_sweeps();
  auto p = parallel.rowhammer_sweeps();
  ASSERT_TRUE(s.has_value()) << s.error().to_string();
  ASSERT_TRUE(p.has_value()) << p.error().to_string();
  ASSERT_EQ(s->size(), p->size());
  for (std::size_t m = 0; m < s->size(); ++m) {
    EXPECT_EQ((*s)[m].instrumentation, (*p)[m].instrumentation);
    EXPECT_EQ((*s)[m].instrumentation.summary(),
              (*p)[m].instrumentation.summary());
  }
}

TEST(SweepInstrumentation, StudyFacadeCarriesInstrumentationToo) {
  Study study(small_profile());
  auto config = small_config(1);
  auto sweep = study.trcd_sweep(config.sweep);
  ASSERT_TRUE(sweep.has_value()) << sweep.error().to_string();
  EXPECT_EQ(sweep->instrumentation.jobs, 3u);
  EXPECT_GT(sweep->instrumentation.counts.total_commands(), 0u);
}

TEST(TypedErrors, NoUsableLevelsCrossesTheLayerBoundaryIntact) {
  auto config = small_config(1);
  config.sweep.vpp_levels = {1.0};  // below B3's VPPmin: nothing to run
  ParallelStudy engine(config);
  auto sweeps = engine.rowhammer_sweeps();
  ASSERT_FALSE(sweeps.has_value());
  EXPECT_EQ(sweeps.error().code, common::ErrorCode::kNoUsableLevels);
  EXPECT_EQ(sweeps.error().context.module, "B3");

  // The serial facade forwards the same typed error.
  Study study(small_profile());
  auto single = study.rowhammer_sweep(config.sweep);
  ASSERT_FALSE(single.has_value());
  EXPECT_EQ(single.error().code, common::ErrorCode::kNoUsableLevels);
}

}  // namespace
}  // namespace vppstudy::core
