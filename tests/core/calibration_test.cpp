// Calibration regression suite: the aggregate observations of sections 5/8
// must stay near the paper's headline numbers. Bands are generous because
// the test runs on a small row sample (a handful of rows per module vs the
// paper's 4096); the bench binaries report the same quantities at scale.
//
// The sweeps are expensive (~17s for all 30 modules), and ctest runs every
// TEST in a separate process, so the assertions are grouped into two tests
// sharing one in-process fixture computation.
#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "core/study.hpp"

namespace vppstudy::core {
namespace {

const std::vector<ModuleSweepResult>& all_sweeps() {
  static const std::vector<ModuleSweepResult> kSweeps = [] {
    std::vector<ModuleSweepResult> sweeps;
    SweepConfig cfg;
    cfg.sampling.chunks = 2;
    cfg.sampling.rows_per_chunk = 4;
    cfg.hammer.num_iterations = 1;
    for (const auto& profile : chips::all_profiles()) {
      cfg.vpp_levels = {2.5, profile.vppmin_v};
      Study study(profile);
      auto sweep = study.rowhammer_sweep(cfg);
      if (sweep) sweeps.push_back(std::move(*sweep));
    }
    return sweeps;
  }();
  return kSweeps;
}

TEST(Calibration, HeadlineObservationsNearPaper) {
  ASSERT_EQ(all_sweeps().size(), 30u);
  const auto obs = aggregate_observations(all_sweeps());

  // Obsv. 4: mean HCfirst increase at VPPmin (paper: +7.4%, max +85.8%).
  EXPECT_GT(obs.mean_hc_first_increase, 0.02);
  EXPECT_LT(obs.mean_hc_first_increase, 0.16);
  EXPECT_GT(obs.max_hc_first_increase, 0.45);
  EXPECT_LT(obs.max_hc_first_increase, 1.40);

  // Obsv. 1: mean BER reduction (paper: -15.2%, max -66.9%).
  EXPECT_GT(obs.mean_ber_reduction, 0.06);
  EXPECT_LT(obs.mean_ber_reduction, 0.30);
  EXPECT_GT(obs.max_ber_reduction, 0.40);
  EXPECT_LT(obs.max_ber_reduction, 0.95);

  // Obsv. 4/5: 69.3% of rows increase HCfirst, 14.2% decrease.
  EXPECT_GT(obs.fraction_rows_hc_increase, 0.55);
  EXPECT_LT(obs.fraction_rows_hc_increase, 0.88);
  EXPECT_GT(obs.fraction_rows_hc_decrease, 0.05);
  EXPECT_LT(obs.fraction_rows_hc_decrease, 0.33);

  // Obsv. 1/2: 81.2% of rows reduce BER, 15.4% increase it.
  EXPECT_GT(obs.fraction_rows_ber_decrease, 0.65);
  EXPECT_LT(obs.fraction_rows_ber_decrease, 0.95);
  EXPECT_GT(obs.fraction_rows_ber_increase, 0.04);
  EXPECT_LT(obs.fraction_rows_ber_increase, 0.30);

  // Obsv. 2's increases stay modest (paper max ~11.7%): forbid the >100%
  // explosions that signal a broken restoration-penalty tail.
  double worst_increase = 0.0;
  for (const auto& s : all_sweeps()) {
    for (const double r : s.normalized_ber_at(s.vpp_levels.size() - 1)) {
      worst_increase = std::max(worst_increase, r - 1.0);
    }
  }
  EXPECT_LT(worst_increase, 0.60);
}

TEST(Calibration, PerModuleAnchorsAndRanges) {
  // Module-min HCfirst at 2.5V should sit near the Table 3 anchor for most
  // modules (small samples measure above the anchor, never far below).
  int within = 0;
  int total = 0;
  for (const auto& s : all_sweeps()) {
    const auto profile = chips::profile_by_name(s.module_name);
    ASSERT_TRUE(profile.has_value());
    const double measured = static_cast<double>(s.min_hc_first_at(0));
    const double anchor = profile->hc_first_nominal;
    ++total;
    if (measured > anchor * 0.9 && measured < anchor * 2.2) ++within;
    EXPECT_GT(measured, anchor * 0.85) << s.module_name;
  }
  EXPECT_GE(within, total * 8 / 10);

  // Fig. 6 per-row normalized ranges: A 0.94-1.52, B 0.92-1.86, C 0.91-1.35
  // (checked in padded envelopes for the small sample).
  for (const auto& s : all_sweeps()) {
    for (const double r : s.normalized_hc_first_at(s.vpp_levels.size() - 1)) {
      EXPECT_GT(r, 0.55) << s.module_name;
      EXPECT_LT(r, 2.3) << s.module_name;
    }
  }
}

}  // namespace
}  // namespace vppstudy::core
