// Distribution-primitive contract tests: the canonical shard grid, the
// lease ledger's fencing/expiry state machine (driven by explicit now_ms,
// no clocks), the partial-manifest merge's edge cases (stale token,
// idempotent duplicates, out-of-order arrival, plan-hash mismatch), and
// run_campaign_shards equivalence against the single-host engine.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "chips/module_db.hpp"
#include "common/error.hpp"
#include "core/campaign.hpp"
#include "core/campaign_lease.hpp"
#include "core/export.hpp"

namespace vppstudy::core {
namespace {

using common::ErrorCode;

CampaignPlan small_plan(std::uint64_t seed = 7) {
  StudyConfig config;
  config.sweep.vpp_levels = {2.5, 2.1, 1.7};
  config.sweep.sampling.chunks = 2;
  config.sweep.sampling.rows_per_chunk = 2;
  config.sweep.hammer.num_iterations = 1;
  config.sweep.trcd.num_iterations = 1;
  config.sweep.retention.num_iterations = 1;
  config.modules = {chips::profile_by_name("B3").value(),
                    chips::profile_by_name("A0").value()};
  config.seed = seed;
  config.jobs = 2;
  config.rows_per_shard = 2;
  return CampaignPlan::from_study(std::move(config));
}

/// A fresh spec-only manifest for `plan`, the way a coordinator starts one.
CampaignManifest spec_manifest(const CampaignPlan& plan, JobPhase phase,
                               std::uint64_t planned_shards) {
  CampaignManifest m;
  m.phase = phase;
  m.plan_hash = plan.digest(phase);
  m.sweep = plan.sweep;
  m.axes = plan.axes;
  m.seed = plan.seed;
  m.rows_per_shard = plan.rows_per_shard;
  for (const dram::ModuleProfile& mod : plan.modules) {
    m.modules.emplace_back(mod.name, mod.rows_per_bank);
  }
  m.planned_shards = planned_shards;
  return m;
}

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "campaign_lease_" + tag + "_" +
         std::to_string(::getpid()) + ".json";
}

// --- Canonical shard grid ----------------------------------------------------

TEST(CampaignShardGrid, CompilesModuleMajorCanonicalOrder) {
  const CampaignPlan plan = small_plan();
  auto grid = compile_campaign_shards(plan, JobPhase::kRowHammer);
  ASSERT_TRUE(grid.has_value()) << grid.error().to_string();
  ASSERT_FALSE(grid->empty());

  // Flat indices are dense and match vector position; modules appear in
  // plan order, each module's cells grouped (module-major).
  std::vector<std::string> module_order;
  for (std::size_t i = 0; i < grid->size(); ++i) {
    EXPECT_EQ((*grid)[i].index, i);
    EXPECT_LT((*grid)[i].row_begin, (*grid)[i].row_end);
    if (module_order.empty() || module_order.back() != (*grid)[i].module) {
      module_order.push_back((*grid)[i].module);
    }
  }
  EXPECT_EQ(module_order, (std::vector<std::string>{"B3", "A0"}));
}

TEST(CampaignShardGrid, IndexMapsRecordsBackToCells) {
  const CampaignPlan plan = small_plan();
  auto grid = compile_campaign_shards(plan, JobPhase::kRowHammer);
  ASSERT_TRUE(grid.has_value());
  const ShardGridIndex index(*grid);

  for (const ShardCoord& cell : *grid) {
    ManifestShard record;
    record.module = cell.module;
    record.point = cell.point;
    record.row_begin = cell.row_begin;
    record.row_end = cell.row_end;
    const ShardCoord* found = index.find(record);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->index, cell.index);
  }

  // A record that names no cell of this grid maps to nothing.
  ManifestShard alien;
  alien.module = "B3";
  alien.point = (*grid)[0].point;
  alien.row_begin = 9999;
  alien.row_end = 10001;
  EXPECT_EQ(index.find(alien), nullptr);
}

// --- Lease ledger state machine ---------------------------------------------

CampaignLeaseLedger small_ledger(std::size_t shards = 6) {
  CampaignLeaseLedger ledger;
  ledger.phase = JobPhase::kRowHammer;
  ledger.plan_hash = 0xabcdef;
  ledger.entries.resize(shards);
  return ledger;
}

TEST(CampaignLeaseLedger, LeasesDisjointCanonicalSubsets) {
  CampaignLeaseLedger ledger = small_ledger(6);
  const auto a = ledger.lease("alice", 4, /*now_ms=*/100, /*ttl_ms=*/1000);
  const auto b = ledger.lease("bob", 4, /*now_ms=*/100, /*ttl_ms=*/1000);
  ASSERT_NE(a.token, 0u);
  ASSERT_NE(b.token, 0u);
  EXPECT_LT(a.token, b.token);  // tokens strictly increase
  EXPECT_EQ(a.shards, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(b.shards, (std::vector<std::uint64_t>{4, 5}));

  // Nothing open: an empty grant with token 0, not a partial regrant.
  const auto c = ledger.lease("carol", 4, /*now_ms=*/100, /*ttl_ms=*/1000);
  EXPECT_EQ(c.token, 0u);
  EXPECT_TRUE(c.shards.empty());
  EXPECT_EQ(ledger.count(LeaseState::kLeased), 6u);
}

TEST(CampaignLeaseLedger, ModuleAffinityKeepsWorkersOnDisjointModules) {
  // 8 shards over two modules: entries 0-2 are module 0, 3-7 module 1.
  CampaignLeaseLedger ledger = small_ledger(8);
  const std::vector<std::size_t> modules{0, 0, 0, 1, 1, 1, 1, 1};

  // The first worker starts at the canonical front (module 0); the second
  // skips to the idle module instead of queueing behind the first -- so
  // each module's WCDP prep runs on exactly one worker.
  const auto a = ledger.lease("alice", 2, /*now_ms=*/0, /*ttl_ms=*/1000,
                              &modules);
  EXPECT_EQ(a.shards, (std::vector<std::uint64_t>{0, 1}));
  const auto b = ledger.lease("bob", 2, /*now_ms=*/0, /*ttl_ms=*/1000,
                              &modules);
  EXPECT_EQ(b.shards, (std::vector<std::uint64_t>{3, 4}));

  // Affinity is sticky: each worker continues its own module, whether its
  // earlier shards are still leased or already done.
  ledger.mark_done(0, "alice");
  ledger.mark_done(1, "alice");
  const auto a2 = ledger.lease("alice", 1, /*now_ms=*/0, /*ttl_ms=*/1000,
                               &modules);
  EXPECT_EQ(a2.shards, (std::vector<std::uint64_t>{2}));
  const auto b2 = ledger.lease("bob", 2, /*now_ms=*/0, /*ttl_ms=*/1000,
                               &modules);
  EXPECT_EQ(b2.shards, (std::vector<std::uint64_t>{5, 6}));

  // Once a worker's own modules are exhausted and no idle module remains,
  // it helps finish the contended one rather than going idle.
  ledger.mark_done(2, "alice");
  const auto a3 = ledger.lease("alice", 4, /*now_ms=*/0, /*ttl_ms=*/1000,
                               &modules);
  EXPECT_EQ(a3.shards, (std::vector<std::uint64_t>{7}));

  // Leases stay disjoint under affinity; without a module map the same
  // ledger state grants in plain canonical order.
  EXPECT_EQ(ledger.count(LeaseState::kOpen), 0u);
}

TEST(CampaignLeaseLedger, ExpiryReopensSharesAndCountsAgainstHolder) {
  CampaignLeaseLedger ledger = small_ledger(4);
  const auto grant = ledger.lease("alice", 4, /*now_ms=*/0, /*ttl_ms=*/500);
  ASSERT_EQ(grant.shards.size(), 4u);

  // Before the deadline nothing expires; at it (inclusive) everything
  // reopens and the holder's expired count grows.
  EXPECT_EQ(ledger.expire_stale(/*now_ms=*/499), 0u);
  EXPECT_EQ(ledger.expire_stale(/*now_ms=*/500), 4u);
  EXPECT_EQ(ledger.count(LeaseState::kOpen), 4u);
  ASSERT_EQ(ledger.workers.size(), 1u);
  EXPECT_EQ(ledger.workers[0].worker, "alice");
  EXPECT_EQ(ledger.workers[0].leased, 4u);
  EXPECT_EQ(ledger.workers[0].expired, 4u);
  EXPECT_EQ(ledger.workers[0].completed, 0u);

  // Re-leased under a fresh token: the old token is now stale for these
  // shards, the new one mergeable.
  const auto regrant = ledger.lease("bob", 4, /*now_ms=*/600, /*ttl_ms=*/500);
  ASSERT_NE(regrant.token, 0u);
  EXPECT_NE(regrant.token, grant.token);
  EXPECT_EQ(ledger.check_submit(0, grant.token),
            CampaignLeaseLedger::SubmitCheck::kStale);
  EXPECT_EQ(ledger.check_submit(0, regrant.token),
            CampaignLeaseLedger::SubmitCheck::kMergeable);
}

TEST(CampaignLeaseLedger, RenewExtendsOnlyLiveTokens) {
  CampaignLeaseLedger ledger = small_ledger(3);
  const auto grant = ledger.lease("alice", 2, /*now_ms=*/0, /*ttl_ms=*/100);
  ASSERT_EQ(grant.shards.size(), 2u);

  // Renewed before expiry: the deadline moves, so a probe past the original
  // deadline no longer expires anything.
  EXPECT_EQ(ledger.renew(grant.token, /*now_ms=*/90, /*ttl_ms=*/1000), 2u);
  EXPECT_EQ(ledger.expire_stale(/*now_ms=*/500), 0u);

  // A token that holds nothing renews nothing.
  EXPECT_EQ(ledger.renew(grant.token + 99, /*now_ms=*/90, /*ttl_ms=*/1000),
            0u);
  EXPECT_EQ(ledger.expire_stale(/*now_ms=*/2000), 2u);
  EXPECT_EQ(ledger.renew(grant.token, /*now_ms=*/2000, /*ttl_ms=*/1000), 0u);
}

TEST(CampaignLeaseLedger, MarkDoneIsTerminal) {
  CampaignLeaseLedger ledger = small_ledger(2);
  const auto grant = ledger.lease("alice", 1, /*now_ms=*/0, /*ttl_ms=*/100);
  ledger.mark_done(grant.shards[0], "alice");
  EXPECT_EQ(ledger.check_submit(grant.shards[0], grant.token),
            CampaignLeaseLedger::SubmitCheck::kDuplicate);
  // Done shards never expire back to open.
  EXPECT_EQ(ledger.expire_stale(/*now_ms=*/10000), 0u);
  EXPECT_EQ(ledger.count(LeaseState::kDone), 1u);
  EXPECT_FALSE(ledger.complete());
  ledger.mark_done(1, "bob");
  EXPECT_TRUE(ledger.complete());
}

TEST(CampaignLeaseLedger, JsonRoundTripPreservesEveryField) {
  CampaignLeaseLedger ledger = small_ledger(3);
  ledger.plan_hash = 0xfeedbeefcafe0123ull;
  const auto grant = ledger.lease("alice", 1, /*now_ms=*/42, /*ttl_ms=*/100);
  ledger.mark_done(grant.shards[0], "alice");
  (void)ledger.lease("bob", 1, /*now_ms=*/50, /*ttl_ms=*/100);

  const std::string path = temp_path("roundtrip");
  ASSERT_TRUE(write_campaign_ledger(path, ledger));
  auto loaded = load_campaign_ledger(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().to_string();
  std::remove(path.c_str());

  EXPECT_EQ(loaded->version, ledger.version);
  EXPECT_EQ(loaded->phase, ledger.phase);
  EXPECT_EQ(loaded->plan_hash, ledger.plan_hash);
  EXPECT_EQ(loaded->next_token, ledger.next_token);
  ASSERT_EQ(loaded->entries.size(), ledger.entries.size());
  for (std::size_t i = 0; i < ledger.entries.size(); ++i) {
    EXPECT_EQ(loaded->entries[i].state, ledger.entries[i].state);
    EXPECT_EQ(loaded->entries[i].worker, ledger.entries[i].worker);
    EXPECT_EQ(loaded->entries[i].token, ledger.entries[i].token);
    EXPECT_EQ(loaded->entries[i].expires_at_ms, ledger.entries[i].expires_at_ms);
  }
  ASSERT_EQ(loaded->workers.size(), ledger.workers.size());
  for (std::size_t w = 0; w < ledger.workers.size(); ++w) {
    EXPECT_EQ(loaded->workers[w].worker, ledger.workers[w].worker);
    EXPECT_EQ(loaded->workers[w].leased, ledger.workers[w].leased);
    EXPECT_EQ(loaded->workers[w].completed, ledger.workers[w].completed);
    EXPECT_EQ(loaded->workers[w].expired, ledger.workers[w].expired);
  }

  // Serialization is deterministic: re-encoding the loaded ledger
  // reproduces the original bytes.
  EXPECT_EQ(campaign_ledger_json(*loaded).str(),
            campaign_ledger_json(ledger).str());
}

TEST(CampaignLeaseLedger, LedgerPathSitsBesideManifest) {
  EXPECT_EQ(campaign_ledger_path("/tmp/run.json"), "/tmp/run.json.leases.json");
}

// --- Partial-manifest merge --------------------------------------------------

struct MergeFixtureState {
  CampaignPlan plan;
  std::vector<ShardCoord> grid;
  CampaignManifest manifest;
  CampaignShardBatch batch;  ///< every shard of the grid, computed fresh
};

MergeFixtureState make_merge_fixture() {
  MergeFixtureState s;
  s.plan = small_plan();
  auto grid = compile_campaign_shards(s.plan, JobPhase::kRowHammer);
  EXPECT_TRUE(grid.has_value());
  s.grid = *grid;
  s.manifest = spec_manifest(s.plan, JobPhase::kRowHammer, s.grid.size());
  std::vector<std::uint64_t> all(s.grid.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  auto batch =
      run_campaign_shards(s.plan, JobPhase::kRowHammer, all, nullptr);
  EXPECT_TRUE(batch.has_value());
  s.batch = *std::move(batch);
  return s;
}

TEST(CampaignShardMerge, DuplicateRecordsAreIdempotent) {
  MergeFixtureState s = make_merge_fixture();
  const std::uint64_t hash = s.manifest.plan_hash;

  auto first = merge_campaign_shards(s.manifest, s.grid, hash, s.batch.wcdp,
                                     s.batch.shards);
  ASSERT_TRUE(first.has_value()) << first.error().to_string();
  EXPECT_EQ(first->accepted, s.grid.size());
  EXPECT_EQ(first->duplicates, 0u);
  const std::string merged_once = campaign_manifest_json(s.manifest).str();

  // The exact same batch again: all duplicates, manifest bytes untouched.
  auto again = merge_campaign_shards(s.manifest, s.grid, hash, s.batch.wcdp,
                                     s.batch.shards);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->accepted, 0u);
  EXPECT_EQ(again->duplicates, s.grid.size());
  EXPECT_EQ(campaign_manifest_json(s.manifest).str(), merged_once);
}

TEST(CampaignShardMerge, OutOfOrderArrivalStillAssemblesCanonically) {
  MergeFixtureState s = make_merge_fixture();
  const std::uint64_t hash = s.manifest.plan_hash;

  // Reference: merge everything in canonical order at once.
  CampaignManifest in_order =
      spec_manifest(s.plan, JobPhase::kRowHammer, s.grid.size());
  auto ref = merge_campaign_shards(in_order, s.grid, hash, s.batch.wcdp,
                                   s.batch.shards);
  ASSERT_TRUE(ref.has_value());

  // Adversarial arrival: one record per submit, highest index first, wcdp
  // records delivered with the *last* batch.
  for (std::size_t i = s.batch.shards.size(); i-- > 0;) {
    const std::vector<ManifestShard> one = {s.batch.shards[i]};
    const std::vector<ManifestWcdp> wcdp =
        (i == 0) ? s.batch.wcdp : std::vector<ManifestWcdp>{};
    auto merged = merge_campaign_shards(s.manifest, s.grid, hash, wcdp, one);
    ASSERT_TRUE(merged.has_value()) << merged.error().to_string();
    EXPECT_EQ(merged->accepted, 1u);
  }
  EXPECT_EQ(campaign_manifest_json(s.manifest).str(),
            campaign_manifest_json(in_order).str());
}

TEST(CampaignShardMerge, PlanHashMismatchMergesNothing) {
  MergeFixtureState s = make_merge_fixture();
  const std::string before = campaign_manifest_json(s.manifest).str();

  auto merged = merge_campaign_shards(s.manifest, s.grid,
                                      s.manifest.plan_hash ^ 1, s.batch.wcdp,
                                      s.batch.shards);
  ASSERT_FALSE(merged.has_value());
  EXPECT_EQ(merged.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(merged.error().message.find("nothing merged"), std::string::npos)
      << merged.error().message;
  EXPECT_EQ(campaign_manifest_json(s.manifest).str(), before);
}

TEST(CampaignShardMerge, OffGridRecordRejectsWholeBatch) {
  MergeFixtureState s = make_merge_fixture();
  const std::uint64_t hash = s.manifest.plan_hash;
  const std::string before = campaign_manifest_json(s.manifest).str();

  // One tampered record poisons the batch: even the valid records ahead of
  // it must not land (all-or-nothing validation).
  std::vector<ManifestShard> batch = s.batch.shards;
  batch.back().row_end = batch.back().row_begin + 9999;
  auto merged =
      merge_campaign_shards(s.manifest, s.grid, hash, s.batch.wcdp, batch);
  ASSERT_FALSE(merged.has_value());
  EXPECT_EQ(merged.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(merged.error().message.find("nothing merged"), std::string::npos)
      << merged.error().message;
  EXPECT_EQ(campaign_manifest_json(s.manifest).str(), before);
}

// --- Shard-subset execution vs the single-host engine ------------------------

TEST(CampaignShardRun, DisjointSubsetsMergeToSingleHostResult) {
  const CampaignPlan plan = small_plan();
  auto grid = compile_campaign_shards(plan, JobPhase::kRowHammer);
  ASSERT_TRUE(grid.has_value());
  CampaignManifest manifest =
      spec_manifest(plan, JobPhase::kRowHammer, grid->size());

  // Two "workers" split the grid interleaved (worst case for locality),
  // each computing its half independently.
  std::vector<std::uint64_t> even, odd;
  for (std::uint64_t i = 0; i < grid->size(); ++i) {
    (i % 2 == 0 ? even : odd).push_back(i);
  }
  for (const auto* subset : {&even, &odd}) {
    auto batch =
        run_campaign_shards(plan, JobPhase::kRowHammer, *subset, nullptr);
    ASSERT_TRUE(batch.has_value()) << batch.error().to_string();
    for (const ManifestShard& shard : batch->shards) {
      EXPECT_TRUE(shard.counted);  // disjoint leases always compute fresh
    }
    auto merged = merge_campaign_shards(manifest, *grid, manifest.plan_hash,
                                        batch->wcdp, batch->shards);
    ASSERT_TRUE(merged.has_value()) << merged.error().to_string();
    EXPECT_EQ(merged->accepted, subset->size());
  }
  ASSERT_EQ(manifest.shards.size(), grid->size());

  // Resuming the engine over the merged manifest (zero fresh compute) must
  // reproduce the single-host grids byte for byte.
  const std::string path = temp_path("merged");
  ASSERT_TRUE(write_campaign_manifest(path, manifest));
  CampaignPlan resume_plan = small_plan();
  resume_plan.manifest_path = path;
  CampaignEngine resumed(std::move(resume_plan));
  auto merged_grids = resumed.run_hammer();
  ASSERT_TRUE(merged_grids.has_value()) << merged_grids.error().to_string();
  std::remove(path.c_str());
  std::remove(campaign_ledger_path(path).c_str());

  CampaignEngine single(small_plan());
  auto single_grids = single.run_hammer();
  ASSERT_TRUE(single_grids.has_value());
  ASSERT_EQ(merged_grids->size(), single_grids->size());
  for (std::size_t m = 0; m < single_grids->size(); ++m) {
    EXPECT_EQ(grid_json((*merged_grids)[m]).str(),
              grid_json((*single_grids)[m]).str());
  }
}

}  // namespace
}  // namespace vppstudy::core
