#include "core/study.hpp"

#include <gtest/gtest.h>

#include "chips/module_db.hpp"

namespace vppstudy::core {
namespace {

dram::ModuleProfile small_profile(const char* name) {
  auto p = chips::profile_by_name(name).value();
  p.rows_per_bank = 4096;
  return p;
}

SweepConfig tiny_config() {
  auto c = SweepConfig::quick();
  c.vpp_levels = {2.5, 2.0, 1.6};
  c.sampling.chunks = 2;
  c.sampling.rows_per_chunk = 6;
  return c;
}

TEST(SweepConfig, PaperGridIsFull) {
  const auto c = SweepConfig::paper();
  EXPECT_EQ(c.vpp_levels.size(), 12u);  // 2.5 .. 1.4 in 0.1 steps
  EXPECT_DOUBLE_EQ(c.vpp_levels.front(), 2.5);
  EXPECT_NEAR(c.vpp_levels.back(), 1.4, 1e-9);
  EXPECT_EQ(c.hammer.num_iterations, 10);
  EXPECT_EQ(c.sampling.rows_per_chunk * c.sampling.chunks, 4096u);
}

TEST(Study, LevelsClipAtVppmin) {
  Study study(small_profile("B0"));  // VPPmin = 2.0
  auto sweep = study.rowhammer_sweep(tiny_config());
  ASSERT_TRUE(sweep.has_value()) << sweep.error().message;
  ASSERT_EQ(sweep->vpp_levels.size(), 2u);  // 2.5 and 2.0 only
  EXPECT_DOUBLE_EQ(sweep->vpp_levels.back(), 2.0);
}

TEST(Study, RowhammerSweepProducesFullSeries) {
  Study study(small_profile("B3"));
  auto sweep = study.rowhammer_sweep(tiny_config());
  ASSERT_TRUE(sweep.has_value()) << sweep.error().message;
  EXPECT_FALSE(sweep->rows.empty());
  for (const auto& row : sweep->rows) {
    ASSERT_EQ(row.hc_first.size(), sweep->vpp_levels.size());
    ASSERT_EQ(row.ber.size(), sweep->vpp_levels.size());
    for (const auto hc : row.hc_first) EXPECT_GT(hc, 0u);
  }
}

TEST(Study, ModuleMinHcFirstNearTable3Anchor) {
  Study study(small_profile("B3"));  // anchors: 16.6K @2.5V, 21.1K @1.6V
  auto c = tiny_config();
  c.sampling.rows_per_chunk = 12;
  auto sweep = study.rowhammer_sweep(c);
  ASSERT_TRUE(sweep.has_value()) << sweep.error().message;
  const double nominal =
      static_cast<double>(sweep->min_hc_first_at(0));
  EXPECT_NEAR(nominal, 16.6e3, 16.6e3 * 0.25);
  const double at_min = static_cast<double>(
      sweep->min_hc_first_at(sweep->vpp_levels.size() - 1));
  // B3's HCfirst increases markedly toward VPPmin (Table 3: +27%).
  EXPECT_GT(at_min, nominal * 1.02);
}

TEST(Study, NormalizedSeriesStartAtOne) {
  Study study(small_profile("C0"));
  auto sweep = study.rowhammer_sweep(tiny_config());
  ASSERT_TRUE(sweep.has_value());
  for (const double v : sweep->normalized_hc_first_at(0)) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
  for (const double v : sweep->normalized_ber_at(0)) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(Study, AggregateObservationsMatchHeadlineDirections) {
  // Run two modules with opposite-ish profiles and check the aggregate
  // observation machinery (exact magnitudes are covered by the calibration
  // suite over more rows).
  std::vector<ModuleSweepResult> sweeps;
  for (const char* name : {"B3", "C0"}) {
    Study study(small_profile(name));
    auto sweep = study.rowhammer_sweep(tiny_config());
    ASSERT_TRUE(sweep.has_value()) << name;
    sweeps.push_back(std::move(*sweep));
  }
  const auto obs = aggregate_observations(sweeps);
  EXPECT_GT(obs.mean_hc_first_increase, 0.0);   // Obsv. 4 direction
  EXPECT_GT(obs.mean_ber_reduction, 0.0);       // Obsv. 1 direction
  EXPECT_GT(obs.fraction_rows_hc_increase, 0.5);
  EXPECT_GT(obs.fraction_rows_ber_decrease, 0.5);
  EXPECT_LE(obs.fraction_rows_hc_increase +
                obs.fraction_rows_hc_decrease, 1.0 + 1e-9);
}

TEST(Study, TrcdSweepHealthyVsFailingModules) {
  auto c = tiny_config();
  c.sampling.rows_per_chunk = 4;
  {
    Study study(small_profile("C0"));
    auto sweep = study.trcd_sweep(c);
    ASSERT_TRUE(sweep.has_value()) << sweep.error().message;
    for (const double t : sweep->trcd_min_ns) EXPECT_LE(t, 13.5);
  }
  {
    Study study(small_profile("A0"));
    auto sweep = study.trcd_sweep(c);
    ASSERT_TRUE(sweep.has_value()) << sweep.error().message;
    EXPECT_LE(sweep->trcd_min_ns.front(), 13.5);   // fine at nominal VPP
    EXPECT_GT(sweep->trcd_min_ns.back(), 13.5);    // fails toward VPPmin
    EXPECT_LE(sweep->trcd_min_ns.back(), 24.0);    // fixed by 24ns (Obsv. 7)
  }
}

TEST(Study, RetentionSweepMeanBerGrowsWithWindowAndLowVpp) {
  auto c = tiny_config();
  c.sampling.rows_per_chunk = 4;
  // C2's VPPmin is 1.5V, so the 1.6V level (with a real restoration
  // deficit) stays in the usable grid; above ~2.0V restoration is full and
  // retention is VPP-independent by design.
  Study study(small_profile("C2"));
  auto sweep = study.retention_sweep(c);
  ASSERT_TRUE(sweep.has_value()) << sweep.error().message;
  ASSERT_FALSE(sweep->trefw_ms.empty());
  ASSERT_EQ(sweep->mean_ber.size(), sweep->vpp_levels.size());
  // Monotone in the refresh window at each level.
  for (const auto& series : sweep->mean_ber) {
    for (std::size_t i = 1; i < series.size(); ++i) {
      EXPECT_GE(series[i], series[i - 1] - 1e-12);
    }
  }
  // At the longest window, lower VPP leaks more (Obsv. 12).
  EXPECT_GT(sweep->mean_ber.back().back(), sweep->mean_ber.front().back());
}

}  // namespace
}  // namespace vppstudy::core
