#include "core/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vppstudy::core {
namespace {

ModuleSweepResult fake_sweep() {
  ModuleSweepResult s;
  s.module_name = "T0";
  s.vpp_levels = {2.5, 1.6};
  RowSeries r;
  r.row = 42;
  r.wcdp = dram::DataPattern::kThickCC;
  r.hc_first = {10000, 12000};
  r.ber = {1e-3, 5e-4};
  s.rows.push_back(r);
  return s;
}

TEST(ExportCsv, RowHammerSweepLayout) {
  const auto csv = to_csv(fake_sweep());
  const std::string text = csv.str();
  std::istringstream in(text);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "module,row,wcdp,vpp_v,hc_first,ber");
  std::getline(in, line);
  EXPECT_EQ(line, "T0,42,0xCC,2.5,10000,0.001");
  std::getline(in, line);
  EXPECT_EQ(line, "T0,42,0xCC,1.6,12000,0.0005");
  EXPECT_FALSE(std::getline(in, line));  // exactly 2 data rows
}

TEST(ExportCsv, TrcdSweepLayout) {
  TrcdSweepResult s;
  s.module_name = "T1";
  s.vpp_levels = {2.5, 1.7};
  s.trcd_min_ns = {12.0, 13.5};
  const std::string text = to_csv(s).str();
  EXPECT_NE(text.find("T1,2.5,12"), std::string::npos);
  EXPECT_NE(text.find("T1,1.7,13.5"), std::string::npos);
}

TEST(ExportCsv, RetentionSweepLayout) {
  RetentionSweepResult s;
  s.module_name = "T2";
  s.vpp_levels = {2.5};
  s.trefw_ms = {64.0, 128.0};
  s.mean_ber = {{0.0, 1e-6}};
  const std::string text = to_csv(s).str();
  EXPECT_NE(text.find("T2,2.5,64,0"), std::string::npos);
  EXPECT_NE(text.find("T2,2.5,128,1e-06"), std::string::npos);
}

TEST(ExportCsv, SkipsLevelsWithoutData) {
  auto s = fake_sweep();
  s.rows[0].hc_first.pop_back();  // only one level measured
  s.rows[0].ber.pop_back();
  const auto csv = to_csv(s);
  EXPECT_EQ(csv.row_count(), 1u);
}

}  // namespace
}  // namespace vppstudy::core
