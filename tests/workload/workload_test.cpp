#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "chips/module_db.hpp"
#include "dram/energy.hpp"
#include "workload/runner.hpp"
#include "workload/trace.hpp"

namespace vppstudy::workload {
namespace {

dram::ModuleProfile small_profile() {
  auto p = chips::profile_by_name("C0").value();
  p.rows_per_bank = 4096;
  return p;
}

TraceConfig config_for(TraceKind kind) {
  TraceConfig c;
  c.kind = kind;
  c.rows = 4096;
  return c;
}

TEST(TraceGenerator, SequentialWalksColumnsThenRows) {
  TraceGenerator gen(config_for(TraceKind::kSequential));
  auto first = gen.next();
  auto second = gen.next();
  EXPECT_EQ(first.address.column + 1, second.address.column);
  EXPECT_EQ(first.address.row, second.address.row);
}

TEST(TraceGenerator, RandomStaysInBounds) {
  TraceGenerator gen(config_for(TraceKind::kRandom));
  for (int i = 0; i < 2000; ++i) {
    const auto r = gen.next();
    EXPECT_LT(r.address.bank, dram::kBanksPerRank);
    EXPECT_LT(r.address.row, 4096u);
    EXPECT_LT(r.address.column, dram::kColumnsPerRow);
  }
}

TEST(TraceGenerator, ReadFractionRespected) {
  auto c = config_for(TraceKind::kRandom);
  c.read_fraction = 0.7;
  TraceGenerator gen(c);
  int reads = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    reads += gen.next().kind == memctrl::Request::Kind::kRead ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(reads) / kN, 0.7, 0.02);
}

TEST(TraceGenerator, HotRowsConcentrateAccesses) {
  auto c = config_for(TraceKind::kHotRows);
  c.hot_rows = 8;
  TraceGenerator gen(c);
  int hot = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    const auto r = gen.next();
    if (r.address.row >= 8 && r.address.row < 16) ++hot;
  }
  EXPECT_GT(hot, kN * 80 / 100);
}

TEST(TraceGenerator, HammerAlternatesAggressors) {
  auto c = config_for(TraceKind::kHammer);
  c.hammer_row = 1500;
  TraceGenerator gen(c);
  std::set<std::uint32_t> rows;
  for (int i = 0; i < 10; ++i) rows.insert(gen.next().address.row);
  EXPECT_EQ(rows, (std::set<std::uint32_t>{1499, 1501}));
}

TEST(TraceGenerator, DeterministicForSameSeed) {
  TraceGenerator a(config_for(TraceKind::kRandom));
  TraceGenerator b(config_for(TraceKind::kRandom));
  for (int i = 0; i < 100; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    EXPECT_EQ(ra.address.row, rb.address.row);
    EXPECT_EQ(ra.address.column, rb.address.column);
  }
}

TEST(RunTrace, CollectsLatencyAndEnergy) {
  softmc::Session session(small_profile());
  memctrl::MemoryController mc(session, memctrl::ControllerOptions{},
                               std::make_unique<memctrl::NoMitigation>());
  TraceGenerator gen(config_for(TraceKind::kRandom));
  auto r = run_trace(session, mc, gen, 500);
  ASSERT_TRUE(r.has_value()) << r.error().message;
  EXPECT_EQ(r->requests, 500u);
  EXPECT_GT(r->mean_latency_ns, 20.0);   // at least ACT+RD+PRE
  EXPECT_LT(r->mean_latency_ns, 500.0);
  // Rare refresh-stall outliers can pull the mean slightly above p99.
  EXPECT_GE(r->p99_latency_ns, 0.9 * r->mean_latency_ns);
  EXPECT_GT(r->energy.total_mj(), 0.0);
  EXPECT_GT(r->energy_per_request_uj(), 0.0);
}

TEST(RunTrace, LowerVppUsesLessPumpEnergy) {
  auto profile = small_profile();
  const auto energy_at = [&](double vpp) {
    softmc::Session session(profile);
    (void)session.set_vpp(vpp);
    memctrl::MemoryController mc(session, memctrl::ControllerOptions{},
                                 std::make_unique<memctrl::NoMitigation>());
    TraceGenerator gen(config_for(TraceKind::kRandom));
    auto r = run_trace(session, mc, gen, 300);
    return r.has_value() ? r->energy.vpp_mj : -1.0;
  };
  const double hi = energy_at(2.5);
  const double lo = energy_at(1.7);
  ASSERT_GT(hi, 0.0);
  ASSERT_GT(lo, 0.0);
  // Pump energy ~ VPP^2: (1.7/2.5)^2 = 0.46.
  EXPECT_NEAR(lo / hi, 0.46, 0.05);
}

}  // namespace
}  // namespace vppstudy::workload

namespace vppstudy::dram {
namespace {

TEST(EnergyModel, VppScaleIsQuadratic) {
  const EnergyModel model;
  EXPECT_DOUBLE_EQ(model.vpp_scale(2.5), 1.0);
  EXPECT_NEAR(model.vpp_scale(1.25), 0.25, 1e-12);
}

TEST(EnergyModel, AccountsPerOperation) {
  const EnergyModel model;
  ModuleStats stats;
  stats.activates = 1000;
  stats.reads = 500;
  stats.writes = 200;
  stats.refreshes = 10;
  const auto e = model.account(stats, 2.5, 0.001);
  EXPECT_GT(e.vdd_mj, 0.0);
  EXPECT_GT(e.vpp_mj, 0.0);
  EXPECT_GT(e.static_mj, 0.0);
  EXPECT_DOUBLE_EQ(e.total_mj(), e.vdd_mj + e.vpp_mj + e.static_mj);

  // Doubling the activations doubles the ACT contributions exactly.
  ModuleStats doubled = stats;
  doubled.activates *= 2;
  const auto e2 = model.account(doubled, 2.5, 0.001);
  const double act_vdd =
      1000.0 * model.params().act_pre_vdd_nc * model.params().vdd_v * 1e-6;
  EXPECT_NEAR(e2.vdd_mj - e.vdd_mj, act_vdd, 1e-12);
}

TEST(EnergyModel, ZeroStatsZeroDynamicEnergy) {
  const EnergyModel model;
  const auto e = model.account(ModuleStats{}, 2.5, 0.0);
  EXPECT_DOUBLE_EQ(e.vdd_mj, 0.0);
  EXPECT_DOUBLE_EQ(e.vpp_mj, 0.0);
  EXPECT_DOUBLE_EQ(e.static_mj, 0.0);
}

}  // namespace
}  // namespace vppstudy::dram
