#include "circuit/montecarlo.hpp"

#include <gtest/gtest.h>

namespace vppstudy::circuit {
namespace {

TEST(Perturb, StaysWithinSpread) {
  DramCellSimParams nominal;
  common::Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    const DramCellSimParams p = perturb(nominal, 0.05, rng);
    EXPECT_NEAR(p.cell_c_f, nominal.cell_c_f, 0.05 * nominal.cell_c_f);
    EXPECT_NEAR(p.access_nmos.vt0, nominal.access_nmos.vt0,
                0.05 * nominal.access_nmos.vt0);
    EXPECT_NEAR(p.bitline_r_ohm, nominal.bitline_r_ohm,
                0.05 * nominal.bitline_r_ohm);
  }
}

TEST(Perturb, DeterministicGivenRngState) {
  DramCellSimParams nominal;
  common::Xoshiro256 a(7);
  common::Xoshiro256 b(7);
  const auto pa = perturb(nominal, 0.05, a);
  const auto pb = perturb(nominal, 0.05, b);
  EXPECT_DOUBLE_EQ(pa.cell_c_f, pb.cell_c_f);
  EXPECT_DOUBLE_EQ(pa.sa_pmos.kp, pb.sa_pmos.kp);
}

TEST(MonteCarlo, NominalVppMostRunsReliable) {
  DramCellSimParams nominal;
  MonteCarloOptions opts;
  opts.runs = 20;
  const auto mc = run_monte_carlo(nominal, opts);
  EXPECT_GT(mc.reliability(opts.runs), 0.9);
  EXPECT_EQ(mc.t_rcd_min_ns.size() + mc.failed_runs, opts.runs);
}

TEST(MonteCarlo, DistributionShiftsUpAtLowVpp) {
  // Fig. 8b: the tRCDmin distribution shifts to larger values as VPP drops.
  DramCellSimParams nominal;
  MonteCarloOptions opts;
  opts.runs = 15;
  const auto hi = run_monte_carlo(nominal, opts);
  DramCellSimParams low = nominal;
  low.vpp_v = 1.8;
  const auto lo = run_monte_carlo(low, opts);
  ASSERT_FALSE(hi.t_rcd_min_ns.empty());
  ASSERT_FALSE(lo.t_rcd_min_ns.empty());
  EXPECT_GT(lo.trcd_summary().mean, hi.trcd_summary().mean);
  EXPECT_GE(lo.worst_trcd_ns(), hi.worst_trcd_ns());
}

TEST(MonteCarlo, WorstCaseAtLeastMean) {
  DramCellSimParams nominal;
  MonteCarloOptions opts;
  opts.runs = 10;
  const auto mc = run_monte_carlo(nominal, opts);
  ASSERT_FALSE(mc.t_rcd_min_ns.empty());
  EXPECT_GE(mc.worst_trcd_ns(), mc.trcd_summary().mean);
  EXPECT_GE(mc.worst_tras_ns(), 0.0);
}

TEST(MonteCarlo, EmptyResultHandled) {
  MonteCarloResult r;
  EXPECT_DOUBLE_EQ(r.worst_trcd_ns(), 0.0);
  EXPECT_DOUBLE_EQ(r.worst_tras_ns(), 0.0);
  EXPECT_DOUBLE_EQ(r.reliability(0), 0.0);
}

}  // namespace
}  // namespace vppstudy::circuit
