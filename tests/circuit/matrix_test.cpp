#include "circuit/matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vppstudy::circuit {
namespace {

TEST(LuSolve, Identity) {
  Matrix a(3);
  for (std::size_t i = 0; i < 3; ++i) a.at(i, i) = 1.0;
  std::vector<double> b{1.0, 2.0, 3.0};
  std::vector<double> x;
  ASSERT_TRUE(lu_solve(a, b, x));
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(LuSolve, General3x3) {
  // A = [[2,1,1],[1,3,2],[1,0,0]], x = [1,2,3] -> b = [7,13,1]
  Matrix a(3);
  const double vals[3][3] = {{2, 1, 1}, {1, 3, 2}, {1, 0, 0}};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a.at(r, c) = vals[r][c];
  std::vector<double> b{7.0, 13.0, 1.0};
  std::vector<double> x;
  ASSERT_TRUE(lu_solve(a, b, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a(2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  std::vector<double> b{5.0, 7.0};
  std::vector<double> x;
  ASSERT_TRUE(lu_solve(a, b, x));
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 5.0);
}

TEST(LuSolve, DetectsSingularMatrix) {
  Matrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;  // rank 1
  std::vector<double> b{1.0, 2.0};
  std::vector<double> x;
  EXPECT_FALSE(lu_solve(a, b, x));
}

TEST(LuSolve, IllConditionedButSolvable) {
  Matrix a(2);
  a.at(0, 0) = 1e-8;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 1.0;
  // x = [1, 2] -> b = [1e-8 + 2, 3]
  std::vector<double> b{1e-8 + 2.0, 3.0};
  std::vector<double> x;
  ASSERT_TRUE(lu_solve(a, b, x));
  EXPECT_NEAR(x[0], 1.0, 1e-6);
  EXPECT_NEAR(x[1], 2.0, 1e-6);
}

TEST(Matrix, ClearZeroes) {
  Matrix a(2);
  a.at(0, 1) = 5.0;
  a.clear();
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
}

}  // namespace
}  // namespace vppstudy::circuit
