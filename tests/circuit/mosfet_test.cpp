#include "circuit/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vppstudy::circuit {
namespace {

MosParams simple_nmos() {
  MosParams p;
  p.type = MosType::kNmos;
  p.w_m = 1e-6;
  p.l_m = 1e-7;
  p.kp = 100e-6;
  p.vt0 = 0.5;
  p.lambda = 0.0;
  p.gamma = 0.0;
  return p;
}

TEST(ThresholdVoltage, NoBodyEffectWhenGammaZero) {
  const MosParams p = simple_nmos();
  EXPECT_DOUBLE_EQ(threshold_voltage(p, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(threshold_voltage(p, 1.0), 0.5);
}

TEST(ThresholdVoltage, IncreasesWithSourceBulkBias) {
  MosParams p = simple_nmos();
  p.gamma = 0.4;
  const double vth0 = threshold_voltage(p, 0.0);
  const double vth1 = threshold_voltage(p, 1.0);
  EXPECT_DOUBLE_EQ(vth0, 0.5);
  EXPECT_GT(vth1, vth0);
  // Closed form: vt0 + gamma*(sqrt(phi+vsb)-sqrt(phi)).
  EXPECT_NEAR(vth1, 0.5 + 0.4 * (std::sqrt(1.8) - std::sqrt(0.8)), 1e-12);
}

TEST(EvalNmosForward, CutoffHasNoCurrent) {
  const auto e = eval_nmos_forward(simple_nmos(), 0.3, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(e.ids, 0.0);
  EXPECT_DOUBLE_EQ(e.gm, 0.0);
}

TEST(EvalNmosForward, SaturationCurrentMatchesSquareLaw) {
  const MosParams p = simple_nmos();
  // vgs=1.5, vds=2 > vov=1: saturation. Ids = beta/2 * vov^2.
  const auto e = eval_nmos_forward(p, 1.5, 2.0, 0.0);
  const double beta = p.beta();
  EXPECT_NEAR(e.ids, 0.5 * beta * 1.0, 1e-15);
  EXPECT_NEAR(e.gm, beta * 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(e.gds, 0.0);  // lambda = 0
}

TEST(EvalNmosForward, TriodeCurrentMatchesFormula) {
  const MosParams p = simple_nmos();
  // vgs=1.5 (vov=1), vds=0.5 < vov: triode.
  const auto e = eval_nmos_forward(p, 1.5, 0.5, 0.0);
  const double beta = p.beta();
  EXPECT_NEAR(e.ids, beta * (1.0 * 0.5 - 0.125), 1e-15);
  EXPECT_NEAR(e.gds, beta * 0.5, 1e-15);
}

TEST(EvalNmosForward, ContinuousAtTriodeSaturationBoundary) {
  const MosParams p = simple_nmos();
  const auto lo = eval_nmos_forward(p, 1.5, 1.0 - 1e-9, 0.0);
  const auto hi = eval_nmos_forward(p, 1.5, 1.0 + 1e-9, 0.0);
  EXPECT_NEAR(lo.ids, hi.ids, 1e-12);
}

TEST(EvalNmosForward, LambdaAddsOutputConductance) {
  MosParams p = simple_nmos();
  p.lambda = 0.1;
  const auto e = eval_nmos_forward(p, 1.5, 2.0, 0.0);
  EXPECT_GT(e.gds, 0.0);
}

// Numerical-derivative checks for the full linearization: the stamped
// conductances must match finite differences of the channel current, or the
// Newton iteration would converge to wrong answers.
double channel_current(const MosParams& p, double vg, double vd, double vs,
                       double vb) {
  return linearize_mosfet(p, vg, vd, vs, vb).current(vg, vd, vs, vb);
}

void check_partials(const MosParams& p, double vg, double vd, double vs,
                    double vb) {
  const auto lin = linearize_mosfet(p, vg, vd, vs, vb);
  const double h = 1e-6;
  const double dg = (channel_current(p, vg + h, vd, vs, vb) -
                     channel_current(p, vg - h, vd, vs, vb)) /
                    (2 * h);
  const double dd = (channel_current(p, vg, vd + h, vs, vb) -
                     channel_current(p, vg, vd - h, vs, vb)) /
                    (2 * h);
  const double ds = (channel_current(p, vg, vd, vs + h, vb) -
                     channel_current(p, vg, vd, vs - h, vb)) /
                    (2 * h);
  const double scale =
      std::max({1e-9, std::abs(lin.g_g), std::abs(lin.g_d), std::abs(lin.g_s)});
  EXPECT_NEAR(lin.g_g, dg, 1e-4 * scale + 1e-12);
  EXPECT_NEAR(lin.g_d, dd, 1e-4 * scale + 1e-12);
  EXPECT_NEAR(lin.g_s, ds, 1e-4 * scale + 1e-12);
}

TEST(LinearizeMosfet, PartialsMatchFiniteDifferences_NmosForward) {
  MosParams p = simple_nmos();
  p.lambda = 0.05;
  p.gamma = 0.45;
  check_partials(p, 1.5, 1.0, 0.2, 0.0);   // saturation
  check_partials(p, 1.5, 0.3, 0.1, 0.0);   // triode
}

TEST(LinearizeMosfet, PartialsMatchFiniteDifferences_NmosReversed) {
  MosParams p = simple_nmos();
  p.lambda = 0.05;
  p.gamma = 0.45;
  // Drain below source: internal swap path.
  check_partials(p, 1.8, 0.1, 0.9, 0.0);
}

TEST(LinearizeMosfet, PartialsMatchFiniteDifferences_Pmos) {
  MosParams p = simple_nmos();
  p.type = MosType::kPmos;
  p.lambda = 0.05;
  // Source high (1.2), gate low, drain mid: PMOS conducting.
  check_partials(p, 0.2, 0.6, 1.2, 1.2);
  check_partials(p, 0.2, 1.1, 1.2, 1.2);  // triode-ish
}

TEST(LinearizeMosfet, SymmetricUnderTerminalSwap) {
  // Channel current must be antisymmetric when drain and source swap.
  MosParams p = simple_nmos();
  p.gamma = 0.0;
  p.lambda = 0.0;
  const double i_fwd = channel_current(p, 1.5, 1.0, 0.2, 0.0);
  const double i_rev = channel_current(p, 1.5, 0.2, 1.0, 0.0);
  EXPECT_NEAR(i_fwd, -i_rev, 1e-12);
}

TEST(LinearizeMosfet, PmosConductsWithNegativeVgs) {
  MosParams p = simple_nmos();
  p.type = MosType::kPmos;
  // Gate 0, source 1.2: |vgs| = 1.2 > vth: current flows source -> drain,
  // i.e. the channel current out of the drain node is negative.
  const double i = channel_current(p, 0.0, 0.6, 1.2, 1.2);
  EXPECT_LT(i, 0.0);
}

TEST(LinearizeMosfet, NmosOffWhenGateLow) {
  const MosParams p = simple_nmos();
  EXPECT_DOUBLE_EQ(channel_current(p, 0.0, 1.0, 0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace vppstudy::circuit
