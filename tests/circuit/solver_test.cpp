#include "circuit/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vppstudy::circuit {
namespace {

TEST(DcOperatingPoint, VoltageDivider) {
  Circuit c;
  const NodeId vin = c.add_node("vin");
  const NodeId mid = c.add_node("mid");
  c.add_dc_source(vin, kGround, 10.0);
  c.add_resistor(vin, mid, 1000.0);
  c.add_resistor(mid, kGround, 1000.0);

  Solver s(c);
  auto v = s.dc_operating_point();
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR((*v)[vin], 10.0, 1e-6);
  EXPECT_NEAR((*v)[mid], 5.0, 1e-4);
}

TEST(DcOperatingPoint, NmosCommonSourceAmplifier) {
  // VDD --R(10k)-- drain --NMOS-- gnd with gate at 1.0V.
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId gate = c.add_node("gate");
  const NodeId drain = c.add_node("drain");
  c.add_dc_source(vdd, kGround, 1.8);
  c.add_dc_source(gate, kGround, 1.0);
  c.add_resistor(vdd, drain, 10e3);
  Mosfet m;
  m.gate = gate;
  m.drain = drain;
  m.source = kGround;
  m.bulk = kGround;
  m.params = {MosType::kNmos, 1e-6, 1e-7, 100e-6, 0.5, 0.0, 0.0, 0.8};
  c.add_mosfet(m);

  Solver s(c);
  auto v = s.dc_operating_point();
  ASSERT_TRUE(v.has_value());
  // If saturated: Ids = beta/2 * (0.5)^2 = 125uA -> V(drain) = 1.8-1.25 = 0.55.
  // vds=0.55 > vov=0.5 so saturation assumption holds.
  EXPECT_NEAR((*v)[drain], 0.55, 0.01);
}

TEST(Transient, RcDischargeMatchesAnalyticSolution) {
  // Capacitor charged to 1V discharging through 1k into ground.
  Circuit c;
  const NodeId n = c.add_node("cap");
  c.add_resistor(n, kGround, 1000.0);
  c.add_capacitor(n, kGround, 1e-9);  // tau = 1us

  Solver s(c);
  TransientOptions opts;
  opts.t_stop_s = 2e-6;
  opts.dt_s = 1e-9;
  std::vector<double> init(c.node_count(), 0.0);
  init[n] = 1.0;
  const NodeId rec[] = {n};
  auto wf = s.transient(init, opts, rec);
  ASSERT_TRUE(wf.has_value());

  const auto trace = wf->trace(n);
  // Compare at t = tau: v should be ~exp(-1).
  const std::size_t idx = 1000;  // 1us / 1ns
  EXPECT_NEAR(trace[idx], std::exp(-1.0), 5e-3);
  // And at 2*tau.
  EXPECT_NEAR(trace.back(), std::exp(-2.0), 5e-3);
}

TEST(Transient, RcChargeThroughSource) {
  // Step source charging a cap through a resistor.
  Circuit c;
  const NodeId src = c.add_node("src");
  const NodeId cap = c.add_node("cap");
  c.add_voltage_source(src, kGround, {{0.0, 0.0}, {1e-12, 1.0}});
  c.add_resistor(src, cap, 1000.0);
  c.add_capacitor(cap, kGround, 1e-9);

  Solver s(c);
  TransientOptions opts;
  opts.t_stop_s = 5e-6;
  opts.dt_s = 2e-9;
  std::vector<double> init(c.node_count(), 0.0);
  const NodeId rec[] = {cap};
  auto wf = s.transient(init, opts, rec);
  ASSERT_TRUE(wf.has_value());
  const auto trace = wf->trace(cap);
  EXPECT_NEAR(trace.back(), 1.0, 1e-2);    // fully charged after 5 tau
  // Monotone rise.
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i], trace[i - 1] - 1e-9);
}

TEST(Transient, PwlSourceInterpolation) {
  VoltageSource v;
  v.waveform = {{0.0, 0.0}, {1e-9, 2.0}, {3e-9, 2.0}, {4e-9, 1.0}};
  EXPECT_DOUBLE_EQ(v.value_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(v.value_at(0.5e-9), 1.0);
  EXPECT_DOUBLE_EQ(v.value_at(2e-9), 2.0);
  EXPECT_DOUBLE_EQ(v.value_at(3.5e-9), 1.5);
  EXPECT_DOUBLE_EQ(v.value_at(10e-9), 1.0);
}

TEST(Transient, CmosInverterSwitches) {
  // Static CMOS inverter driven by a ramping input.
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  c.add_dc_source(vdd, kGround, 1.2);
  c.add_voltage_source(in, kGround, {{0.0, 0.0}, {10e-9, 1.2}});
  c.add_capacitor(out, kGround, 10e-15);

  Mosfet nmos;
  nmos.gate = in;
  nmos.drain = out;
  nmos.source = kGround;
  nmos.bulk = kGround;
  nmos.params = {MosType::kNmos, 1e-6, 1e-7, 100e-6, 0.4, 0.05, 0.0, 0.8};
  c.add_mosfet(nmos);
  Mosfet pmos;
  pmos.gate = in;
  pmos.drain = out;
  pmos.source = vdd;
  pmos.bulk = vdd;
  pmos.params = {MosType::kPmos, 2e-6, 1e-7, 50e-6, 0.4, 0.05, 0.0, 0.8};
  c.add_mosfet(pmos);

  Solver s(c);
  TransientOptions opts;
  opts.t_stop_s = 12e-9;
  opts.dt_s = 10e-12;
  std::vector<double> init(c.node_count(), 0.0);
  init[vdd] = 1.2;
  init[out] = 1.2;  // input low -> output high
  const NodeId rec[] = {out};
  auto wf = s.transient(init, opts, rec);
  ASSERT_TRUE(wf.has_value());
  const auto out_trace = wf->trace(out);
  EXPECT_GT(out_trace.front(), 1.0);  // starts high
  EXPECT_LT(out_trace.back(), 0.2);   // ends low after input ramps high
}

TEST(Transient, RecordsRequestedNodesOnly) {
  Circuit c;
  const NodeId a = c.add_node("a");
  const NodeId b = c.add_node("b");
  c.add_dc_source(a, kGround, 1.0);
  c.add_resistor(a, b, 100.0);
  c.add_capacitor(b, kGround, 1e-12);
  Solver s(c);
  TransientOptions opts;
  opts.t_stop_s = 1e-9;
  opts.dt_s = 1e-10;
  std::vector<double> init(c.node_count(), 0.0);
  const NodeId rec[] = {b};
  auto wf = s.transient(init, opts, rec);
  ASSERT_TRUE(wf.has_value());
  EXPECT_EQ(wf->nodes.size(), 1u);
  EXPECT_EQ(wf->v.size(), 1u);
  EXPECT_EQ(wf->t_s.size(), wf->v[0].size());
  EXPECT_EQ(wf->t_s.size(), 11u);  // t=0 plus 10 steps
}

}  // namespace
}  // namespace vppstudy::circuit
