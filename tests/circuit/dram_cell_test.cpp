#include "circuit/dram_cell.hpp"

#include <gtest/gtest.h>

namespace vppstudy::circuit {
namespace {

TEST(SteadyStateCellVoltage, FullVddAtNominalVpp) {
  DramCellSimParams p;
  p.vpp_v = 2.5;
  EXPECT_NEAR(steady_state_cell_voltage(p), p.vdd_v, 1e-6);
}

TEST(SteadyStateCellVoltage, VppLimitedBelowTwoVolts) {
  // Obsv. 10: at 1.7V the cell saturates near 1.0V rather than VDD=1.2V.
  DramCellSimParams p;
  p.vpp_v = 1.7;
  const double v = steady_state_cell_voltage(p);
  EXPECT_LT(v, p.vdd_v - 0.05);
  EXPECT_GT(v, 0.85);
}

TEST(SteadyStateCellVoltage, MonotoneInVpp) {
  DramCellSimParams p;
  double prev = 0.0;
  for (double vpp = 1.4; vpp <= 2.51; vpp += 0.1) {
    p.vpp_v = vpp;
    const double v = steady_state_cell_voltage(p);
    EXPECT_GE(v, prev - 1e-9) << "vpp=" << vpp;
    prev = v;
  }
}

TEST(BuildDramCellCircuit, InitialConditionsArePrecharged) {
  DramCellSimParams p;
  const DramCellCircuit c = build_dram_cell_circuit(p);
  EXPECT_DOUBLE_EQ(c.initial[c.blsa], p.vdd_v / 2.0);
  EXPECT_DOUBLE_EQ(c.initial[c.blb], p.vdd_v / 2.0);
  EXPECT_DOUBLE_EQ(c.initial[c.wl], 0.0);
  EXPECT_NEAR(c.initial[c.cellt], p.vdd_v, 1e-6);  // stored '1' at 2.5V
}

TEST(SimulateActivation, ReliableAtNominalVpp) {
  DramCellSimParams p;
  auto r = simulate_activation(p);
  ASSERT_TRUE(r.has_value()) << r.error().message;
  EXPECT_TRUE(r->reliable);
  EXPECT_GT(r->t_rcd_min_ns, 4.0);
  EXPECT_LT(r->t_rcd_min_ns, 14.0);
  EXPECT_GT(r->v_cell_final, 1.1);  // fully restored
}

TEST(SimulateActivation, StoredZeroRegeneratesDownward) {
  DramCellSimParams p;
  p.cell_stores_one = false;
  auto r = simulate_activation(p);
  ASSERT_TRUE(r.has_value()) << r.error().message;
  EXPECT_TRUE(r->reliable);
  EXPECT_LT(r->v_bitline.back(), 0.1);
  EXPECT_LT(r->v_cell_final, 0.1);
}

TEST(SimulateActivation, TrcdIncreasesAsVppDrops) {
  // Obsv. 8/9: reduced VPP slows activation.
  DramCellSimParams p;
  double prev_trcd = 0.0;
  for (double vpp : {2.5, 2.1, 1.9, 1.7}) {
    p.vpp_v = vpp;
    auto r = simulate_activation(p);
    ASSERT_TRUE(r.has_value()) << "vpp=" << vpp;
    ASSERT_TRUE(r->reliable) << "vpp=" << vpp;
    EXPECT_GE(r->t_rcd_min_ns, prev_trcd - 0.05) << "vpp=" << vpp;
    prev_trcd = r->t_rcd_min_ns;
  }
}

TEST(SimulateActivation, CellSaturatesLowerAtReducedVpp) {
  DramCellSimParams nominal;
  nominal.vpp_v = 2.5;
  DramCellSimParams low = nominal;
  low.vpp_v = 1.7;
  auto rn = simulate_activation(nominal);
  auto rl = simulate_activation(low);
  ASSERT_TRUE(rn.has_value());
  ASSERT_TRUE(rl.has_value());
  EXPECT_GT(rn->v_cell_final, rl->v_cell_final + 0.05);
}

TEST(SimulateActivation, RestorationSlowerAtReducedVpp) {
  DramCellSimParams p;
  p.vpp_v = 2.5;
  auto hi = simulate_activation(p);
  p.vpp_v = 1.8;
  auto lo = simulate_activation(p);
  ASSERT_TRUE(hi.has_value());
  ASSERT_TRUE(lo.has_value());
  ASSERT_GE(hi->t_ras_min_ns, 0.0);
  ASSERT_GE(lo->t_ras_min_ns, 0.0);
  EXPECT_GT(lo->t_ras_min_ns, hi->t_ras_min_ns);
}

TEST(SimulateActivation, WaveformsHaveConsistentLengths) {
  DramCellSimParams p;
  p.t_stop_ns = 20.0;
  p.dt_ps = 50.0;
  auto r = simulate_activation(p);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->t_ns.size(), r->v_bitline.size());
  EXPECT_EQ(r->t_ns.size(), r->v_cell.size());
  EXPECT_EQ(r->t_ns.size(), r->v_blb.size());
  EXPECT_NEAR(r->t_ns.back(), 20.0, 0.06);
}

}  // namespace
}  // namespace vppstudy::circuit
