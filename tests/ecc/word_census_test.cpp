#include "ecc/word_census.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vppstudy::ecc {
namespace {

std::vector<std::uint8_t> filled(std::size_t n, std::uint8_t v) {
  return std::vector<std::uint8_t>(n, v);
}

TEST(WordCensus, CleanRow) {
  const auto a = filled(64, 0xAA);
  const auto c = census_row(a, a);
  EXPECT_EQ(c.total_words, 8u);
  EXPECT_EQ(c.clean_words, 8u);
  EXPECT_EQ(c.erroneous_words(), 0u);
  EXPECT_TRUE(c.secded_correctable());
  EXPECT_EQ(c.flipped_bits, 0u);
}

TEST(WordCensus, SingleBitFlipInOneWord) {
  const auto expected = filled(64, 0x00);
  auto observed = expected;
  observed[3] = 0x01;  // one bit in word 0
  const auto c = census_row(expected, observed);
  EXPECT_EQ(c.single_bit_words, 1u);
  EXPECT_EQ(c.multi_bit_words, 0u);
  EXPECT_EQ(c.clean_words, 7u);
  EXPECT_TRUE(c.secded_correctable());
  EXPECT_EQ(c.flipped_bits, 1u);
}

TEST(WordCensus, TwoFlipsSameWordIsUncorrectable) {
  const auto expected = filled(64, 0x00);
  auto observed = expected;
  observed[0] = 0x01;
  observed[7] = 0x80;  // same 64-bit word (bytes 0..7)
  const auto c = census_row(expected, observed);
  EXPECT_EQ(c.multi_bit_words, 1u);
  EXPECT_FALSE(c.secded_correctable());
}

TEST(WordCensus, TwoFlipsDifferentWordsStillCorrectable) {
  const auto expected = filled(64, 0xFF);
  auto observed = expected;
  observed[0] = 0xFE;   // word 0
  observed[8] = 0xFD;   // word 1
  const auto c = census_row(expected, observed);
  EXPECT_EQ(c.single_bit_words, 2u);
  EXPECT_EQ(c.multi_bit_words, 0u);
  EXPECT_TRUE(c.secded_correctable());
  EXPECT_EQ(c.flipped_bits, 2u);
}

TEST(WordCensus, ManyBitsInOneByte) {
  const auto expected = filled(8, 0x00);
  auto observed = expected;
  observed[2] = 0xFF;
  const auto c = census_row(expected, observed);
  EXPECT_EQ(c.flipped_bits, 8u);
  EXPECT_EQ(c.multi_bit_words, 1u);
}

}  // namespace
}  // namespace vppstudy::ecc
