#include "ecc/secded.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace vppstudy::ecc {
namespace {

TEST(Secded, CleanRoundTrip) {
  for (std::uint64_t data : {0ULL, ~0ULL, 0xdeadbeefcafef00dULL, 1ULL}) {
    const Codeword cw = encode(data);
    const DecodeResult r = decode(cw);
    EXPECT_EQ(r.state, DecodeState::kClean);
    EXPECT_EQ(r.data, data);
  }
}

TEST(Secded, CorrectsEverySingleDataBitError) {
  const std::uint64_t data = 0x0123456789abcdefULL;
  const Codeword cw = encode(data);
  for (int bit = 0; bit < 64; ++bit) {
    const DecodeResult r = decode(flip_bit(cw, bit));
    EXPECT_EQ(r.state, DecodeState::kCorrectedData) << "bit " << bit;
    EXPECT_EQ(r.data, data) << "bit " << bit;
    ASSERT_TRUE(r.corrected_bit.has_value());
    EXPECT_EQ(*r.corrected_bit, bit);
  }
}

TEST(Secded, CorrectsEverySingleCheckBitError) {
  const std::uint64_t data = 0xfedcba9876543210ULL;
  const Codeword cw = encode(data);
  for (int bit = 64; bit < 72; ++bit) {
    const DecodeResult r = decode(flip_bit(cw, bit));
    EXPECT_EQ(r.state, DecodeState::kCorrectedCheck) << "bit " << bit;
    EXPECT_EQ(r.data, data) << "bit " << bit;
  }
}

TEST(Secded, DetectsAllDoubleBitErrorsAsUncorrectable) {
  // Exhaustive over data-bit pairs for one word (64*63/2 = 2016 cases).
  const std::uint64_t data = 0xaaaa5555f0f01234ULL;
  const Codeword cw = encode(data);
  for (int i = 0; i < 64; ++i) {
    for (int j = i + 1; j < 64; ++j) {
      const DecodeResult r = decode(flip_bit(flip_bit(cw, i), j));
      EXPECT_EQ(r.state, DecodeState::kUncorrectable)
          << "bits " << i << "," << j;
    }
  }
}

TEST(Secded, DetectsMixedDataCheckDoubleErrors) {
  const std::uint64_t data = 0x1122334455667788ULL;
  const Codeword cw = encode(data);
  for (int i = 0; i < 64; i += 7) {
    for (int j = 64; j < 72; ++j) {
      const DecodeResult r = decode(flip_bit(flip_bit(cw, i), j));
      EXPECT_EQ(r.state, DecodeState::kUncorrectable)
          << "bits " << i << "," << j;
    }
  }
}

TEST(Secded, RandomizedSingleErrorSweep) {
  common::Xoshiro256 rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t data = rng.next();
    const int bit = static_cast<int>(rng.bounded(72));
    const DecodeResult r = decode(flip_bit(encode(data), bit));
    EXPECT_EQ(r.data, data);
    EXPECT_NE(r.state, DecodeState::kUncorrectable);
    EXPECT_NE(r.state, DecodeState::kClean);
  }
}

TEST(Secded, CheckBitsDifferAcrossData) {
  // Sanity: the code is not degenerate.
  EXPECT_NE(encode(0).check, encode(1).check);
  EXPECT_NE(encode(1).check, encode(2).check);
}

}  // namespace
}  // namespace vppstudy::ecc
