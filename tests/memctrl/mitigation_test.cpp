#include "memctrl/mitigation.hpp"

#include <gtest/gtest.h>

namespace vppstudy::memctrl {
namespace {

TEST(NoMitigation, NeverActs) {
  NoMitigation policy;
  for (int i = 0; i < 1000; ++i) {
    const auto a = policy.on_activate(0, 42);
    EXPECT_TRUE(a.refresh_neighbors_of.empty());
    EXPECT_DOUBLE_EQ(a.throttle_ns, 0.0);
  }
  EXPECT_EQ(policy.mitigations(), 0u);
}

TEST(Para, FiresAtConfiguredRate) {
  Para policy(0.01);
  constexpr int kActs = 100000;
  std::uint64_t fired = 0;
  for (int i = 0; i < kActs; ++i) {
    fired += policy.on_activate(0, 7).refresh_neighbors_of.empty() ? 0 : 1;
  }
  EXPECT_NEAR(static_cast<double>(fired) / kActs, 0.01, 0.002);
  EXPECT_EQ(policy.mitigations(), fired);
}

TEST(Para, ZeroProbabilityNeverFires) {
  Para policy(0.0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(policy.on_activate(0, 7).refresh_neighbors_of.empty());
  }
}

TEST(Para, ResetRestoresDeterministicStream) {
  Para a(0.05, 99);
  Para b(0.05, 99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.on_activate(0, 1).refresh_neighbors_of.size(),
              b.on_activate(0, 1).refresh_neighbors_of.size());
  }
  a.reset();
  Para fresh(0.05, 99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.on_activate(0, 1).refresh_neighbors_of.size(),
              fresh.on_activate(0, 1).refresh_neighbors_of.size());
  }
}

TEST(Graphene, RefreshesAtThreshold) {
  Graphene policy(2, 8, 100);
  std::uint64_t fired = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = policy.on_activate(0, 55);
    if (!a.refresh_neighbors_of.empty()) {
      EXPECT_EQ(a.refresh_neighbors_of.front(), 55u);
      ++fired;
    }
  }
  EXPECT_EQ(fired, 10u);  // every 100 activations
}

TEST(Graphene, GuaranteesBoundWithDecoyPressure) {
  // Even with many decoy rows churning the table, the heavy hitter must be
  // mitigated before accumulating ~2x the threshold.
  Graphene policy(1, 4, 500);
  std::uint64_t aggressor_acts_since_refresh = 0;
  std::uint64_t worst_gap = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto a = policy.on_activate(0, 999);
    ++aggressor_acts_since_refresh;
    if (!a.refresh_neighbors_of.empty()) {
      worst_gap = std::max(worst_gap, aggressor_acts_since_refresh);
      aggressor_acts_since_refresh = 0;
    }
    (void)policy.on_activate(0, static_cast<std::uint32_t>(i % 97));
  }
  EXPECT_GT(policy.mitigations(), 0u);
  EXPECT_LE(worst_gap, 1200u);
}

TEST(Graphene, IndependentBanks) {
  Graphene policy(2, 8, 10);
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(policy.on_activate(0, 1).refresh_neighbors_of.empty());
    EXPECT_TRUE(policy.on_activate(1, 1).refresh_neighbors_of.empty());
  }
  EXPECT_FALSE(policy.on_activate(0, 1).refresh_neighbors_of.empty());
  EXPECT_FALSE(policy.on_activate(1, 1).refresh_neighbors_of.empty());
}

TEST(BlockHammerLite, ThrottlesBlacklistedRows) {
  BlockHammerLite policy(1, 100, 500.0);
  double throttled = 0.0;
  for (int i = 0; i < 300; ++i) {
    throttled += policy.on_activate(0, 3).throttle_ns;
  }
  EXPECT_GT(throttled, 0.0);
  EXPECT_GT(policy.throttled_activations(), 0u);
  // After the first blacklist event the count resets to T/2, so subsequent
  // events come every T/2 activations.
  EXPECT_EQ(policy.throttled_activations(), 1u + (300u - 100u) / 50u);
}

TEST(BlockHammerLite, QuietRowsNeverThrottled) {
  BlockHammerLite policy(1, 1000, 500.0);
  for (int i = 0; i < 500; ++i) {
    EXPECT_DOUBLE_EQ(policy.on_activate(0, static_cast<std::uint32_t>(i)).throttle_ns,
                     0.0);
  }
}

TEST(Policies, NamesAreDescriptive) {
  EXPECT_EQ(NoMitigation{}.name(), "none");
  EXPECT_NE(Para(0.01).name().find("para"), std::string::npos);
  EXPECT_NE(Graphene(1, 4, 100).name().find("100"), std::string::npos);
  EXPECT_NE(BlockHammerLite(1, 50, 1.0).name().find("blockhammer"),
            std::string::npos);
}

}  // namespace
}  // namespace vppstudy::memctrl
