#include <gtest/gtest.h>

#include <memory>

#include "chips/module_db.hpp"
#include "memctrl/controller.hpp"
#include "workload/runner.hpp"

namespace vppstudy::memctrl {
namespace {

dram::ModuleProfile small_profile() {
  auto p = chips::profile_by_name("C0").value();
  p.rows_per_bank = 4096;
  return p;
}

workload::RunResult run_policy(PagePolicy policy, workload::TraceKind kind) {
  softmc::Session session(small_profile());
  ControllerOptions opts;
  opts.page_policy = policy;
  MemoryController mc(session, opts, std::make_unique<NoMitigation>());
  workload::TraceConfig tc;
  tc.kind = kind;
  tc.rows = 4096;
  tc.hot_rows = 1;  // a streaming row: open-page's best case
  workload::TraceGenerator gen(tc);
  auto r = workload::run_trace(session, mc, gen, 2000);
  EXPECT_TRUE(r.has_value());
  return r.has_value() ? *r : workload::RunResult{};
}

TEST(PagePolicy, OpenPageWinsOnHotRows) {
  const auto closed = run_policy(PagePolicy::kClosedPage,
                                 workload::TraceKind::kHotRows);
  const auto open = run_policy(PagePolicy::kOpenPage,
                               workload::TraceKind::kHotRows);
  EXPECT_LT(open.mean_latency_ns, closed.mean_latency_ns * 0.75);
}

TEST(PagePolicy, OpenPageTracksHitsAndMisses) {
  softmc::Session session(small_profile());
  ControllerOptions opts;
  opts.page_policy = PagePolicy::kOpenPage;
  MemoryController mc(session, opts, std::make_unique<NoMitigation>());
  Request r;
  r.kind = Request::Kind::kRead;
  r.address = {0, 100, 0};
  ASSERT_TRUE(mc.execute(r).has_value());  // miss (cold)
  r.address.column = 5;
  ASSERT_TRUE(mc.execute(r).has_value());  // hit
  r.address.row = 101;
  ASSERT_TRUE(mc.execute(r).has_value());  // conflict -> miss
  EXPECT_EQ(mc.stats().row_hits, 1u);
  EXPECT_EQ(mc.stats().row_misses, 2u);
  EXPECT_EQ(mc.stats().activates, 2u);
}

TEST(PagePolicy, OpenPageHitReturnsCorrectData) {
  softmc::Session session(small_profile());
  ControllerOptions opts;
  opts.page_policy = PagePolicy::kOpenPage;
  MemoryController mc(session, opts, std::make_unique<NoMitigation>());
  Request w;
  w.kind = Request::Kind::kWrite;
  w.address = {0, 50, 7};
  w.data.fill(0x77);
  ASSERT_TRUE(mc.execute(w).has_value());
  Request r;
  r.kind = Request::Kind::kRead;
  r.address = {0, 50, 7};  // same open row: served as a hit
  auto resp = mc.execute(r);
  ASSERT_TRUE(resp.has_value());
  std::array<std::uint8_t, 8> expected{};
  expected.fill(0x77);
  EXPECT_EQ(resp->data, expected);
  EXPECT_GE(mc.stats().row_hits, 1u);
}

TEST(PagePolicy, RefreshStillRunsWithOpenRows) {
  softmc::Session session(small_profile());
  ControllerOptions opts;
  opts.page_policy = PagePolicy::kOpenPage;
  MemoryController mc(session, opts, std::make_unique<NoMitigation>());
  Request r;
  r.kind = Request::Kind::kRead;
  r.address = {0, 100, 0};
  ASSERT_TRUE(mc.execute(r).has_value());  // leaves the row open
  ASSERT_TRUE(mc.idle_ms(1.0).ok());       // refresh must close it first
  EXPECT_GT(mc.stats().refresh_commands, 100u);
}

TEST(PagePolicy, GrapheneStillFiresUnderOpenPage) {
  // The hammer trace alternates rows, so every access is a row conflict and
  // the mitigation still observes the activations.
  softmc::Session session(small_profile());
  ControllerOptions opts;
  opts.page_policy = PagePolicy::kOpenPage;
  opts.auto_refresh = false;
  MemoryController mc(session, opts,
                      std::make_unique<Graphene>(16, 16, 500));
  workload::TraceConfig tc;
  tc.kind = workload::TraceKind::kHammer;
  tc.rows = 4096;
  workload::TraceGenerator gen(tc);
  auto run = workload::run_trace(session, mc, gen, 3000);
  ASSERT_TRUE(run.has_value());
  EXPECT_GT(mc.stats().mitigative_refreshes, 0u);
}

}  // namespace
}  // namespace vppstudy::memctrl
