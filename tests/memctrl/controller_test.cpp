#include "memctrl/controller.hpp"

#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "memctrl/retention_profiler.hpp"

namespace vppstudy::memctrl {
namespace {

dram::ModuleProfile small_profile(const char* name = "B3") {
  auto p = chips::profile_by_name(name).value();
  p.rows_per_bank = 4096;
  return p;
}

Request write_req(std::uint32_t bank, std::uint32_t row, std::uint32_t col,
                  std::uint8_t fill) {
  Request r;
  r.kind = Request::Kind::kWrite;
  r.address = {bank, row, col};
  r.data.fill(fill);
  return r;
}

Request read_req(std::uint32_t bank, std::uint32_t row, std::uint32_t col) {
  Request r;
  r.kind = Request::Kind::kRead;
  r.address = {bank, row, col};
  return r;
}

TEST(MemoryController, WriteReadRoundTrip) {
  softmc::Session session(small_profile());
  MemoryController mc(session, ControllerOptions{},
                      std::make_unique<NoMitigation>());
  ASSERT_TRUE(mc.execute(write_req(0, 100, 5, 0x3C)).has_value());
  auto r = mc.execute(read_req(0, 100, 5));
  ASSERT_TRUE(r.has_value());
  std::array<std::uint8_t, 8> expected{};
  expected.fill(0x3C);
  EXPECT_EQ(r->data, expected);
  EXPECT_FALSE(r->corrected);
  EXPECT_FALSE(r->uncorrectable);
  EXPECT_EQ(mc.stats().reads, 1u);
  EXPECT_EQ(mc.stats().writes, 1u);
}

TEST(MemoryController, RefreshKeepsScheduleDuringIdle) {
  softmc::Session session(small_profile());
  MemoryController mc(session, ControllerOptions{},
                      std::make_unique<NoMitigation>());
  ASSERT_TRUE(mc.idle_ms(1.0).ok());
  // 1ms / 7.8us = ~128 REFs.
  EXPECT_GT(mc.stats().refresh_commands, 100u);
  EXPECT_LT(mc.stats().refresh_commands, 160u);
}

TEST(MemoryController, RefreshDisabledIssuesNone) {
  softmc::Session session(small_profile());
  ControllerOptions opts;
  opts.auto_refresh = false;
  MemoryController mc(session, opts, std::make_unique<NoMitigation>());
  ASSERT_TRUE(mc.idle_ms(2.0).ok());
  EXPECT_EQ(mc.stats().refresh_commands, 0u);
}

TEST(MemoryController, SecdedCorrectsInjectedSingleBitError) {
  softmc::Session session(small_profile());
  MemoryController mc(session, ControllerOptions{},
                      std::make_unique<NoMitigation>());
  ASSERT_TRUE(mc.execute(write_req(0, 200, 3, 0xFF)).has_value());
  // Corrupt one stored bit behind the controller's back.
  {
    auto& module = session.module();
    const double now = session.clock_ns() + 100.0;
    ASSERT_TRUE(module.activate(0, 200, now).ok());
    std::array<std::uint8_t, 8> corrupted{};
    corrupted.fill(0xFF);
    corrupted[0] = 0xFE;  // one bit
    ASSERT_TRUE(module
                    .write(0, 3, std::span<const std::uint8_t, 8>(corrupted),
                           now + 20.0)
                    .ok());
    ASSERT_TRUE(module.precharge(0, now + 60.0).ok());
  }
  auto r = mc.execute(read_req(0, 200, 3));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->corrected);
  EXPECT_EQ(r->data[0], 0xFF);  // repaired
  EXPECT_EQ(mc.stats().ecc_corrections, 1u);
}

TEST(MemoryController, SecdedFlagsDoubleBitErrorUncorrectable) {
  softmc::Session session(small_profile());
  MemoryController mc(session, ControllerOptions{},
                      std::make_unique<NoMitigation>());
  ASSERT_TRUE(mc.execute(write_req(0, 201, 3, 0x00)).has_value());
  {
    auto& module = session.module();
    const double now = session.clock_ns() + 100.0;
    ASSERT_TRUE(module.activate(0, 201, now).ok());
    std::array<std::uint8_t, 8> corrupted{};
    corrupted[0] = 0x03;  // two bits
    ASSERT_TRUE(module
                    .write(0, 3, std::span<const std::uint8_t, 8>(corrupted),
                           now + 20.0)
                    .ok());
    ASSERT_TRUE(module.precharge(0, now + 60.0).ok());
  }
  auto r = mc.execute(read_req(0, 201, 3));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->uncorrectable);
  EXPECT_EQ(mc.stats().ecc_uncorrectable, 1u);
}

TEST(MemoryController, TrcdOverrideMakesMarginalModuleReadable) {
  // A0 at its VPPmin needs ~21ns tRCD; the nominal 13.5ns misreads, the
  // Obsv. 7 override (24ns) fixes it.
  auto profile = small_profile("A0");
  const auto run = [&](double trcd_override) {
    softmc::Session session(profile);
    (void)session.set_vpp(profile.vppmin_v);
    ControllerOptions opts;
    opts.trcd_override_ns = trcd_override;
    opts.use_secded = false;
    MemoryController mc(session, opts, std::make_unique<NoMitigation>());
    (void)mc.execute(write_req(0, 300, 0, 0xA5));
    auto r = mc.execute(read_req(0, 300, 0));
    std::array<std::uint8_t, 8> expected{};
    expected.fill(0xA5);
    return r.has_value() && r->data == expected;
  };
  EXPECT_FALSE(run(-1.0));   // nominal tRCD: corrupted read
  EXPECT_TRUE(run(24.0));    // the paper's fix
}

TEST(MemoryController, GraphenePolicyStopsHammerThroughController) {
  auto profile = small_profile();
  const auto run = [&](std::unique_ptr<MitigationPolicy> policy,
                       std::uint64_t* mitigations) {
    softmc::Session session(profile);
    ControllerOptions opts;
    opts.auto_refresh = false;  // isolate the policy's contribution
    opts.use_secded = false;    // and count raw flips
    MemoryController mc(session, opts, std::move(policy));
    const std::uint32_t victim = 500;
    const auto n = session.module().mapping().physical_neighbors(victim);
    // Populate the whole victim row through the controller.
    for (std::uint32_t c = 0; c < dram::kColumnsPerRow; ++c) {
      (void)mc.execute(write_req(0, victim, c, 0xAA));
    }
    // Attack through the controller: 40K activations per aggressor.
    for (int i = 0; i < 40000; ++i) {
      (void)mc.execute(read_req(0, n.below, 0));
      (void)mc.execute(read_req(0, n.above, 0));
    }
    *mitigations = mc.stats().mitigative_refreshes;
    // Scan the full row for damage.
    std::array<std::uint8_t, 8> expected{};
    expected.fill(0xAA);
    for (std::uint32_t c = 0; c < dram::kColumnsPerRow; ++c) {
      auto r = mc.execute(read_req(0, victim, c));
      if (!r.has_value() || r->data != expected) return false;
    }
    return true;
  };
  std::uint64_t none_mit = 0;
  std::uint64_t graphene_mit = 0;
  const bool none_ok =
      run(std::make_unique<NoMitigation>(), &none_mit);
  const bool graphene_ok = run(
      std::make_unique<Graphene>(profile.banks, 16, 2000), &graphene_mit);
  EXPECT_FALSE(none_ok);      // unprotected: the victim's word flips
  EXPECT_TRUE(graphene_ok);   // protected: preventive refreshes win
  EXPECT_EQ(none_mit, 0u);
  EXPECT_GT(graphene_mit, 0u);
}

TEST(RetentionProfiler, FlagsWeakRowsOnlyAtReducedVpp) {
  auto profile = small_profile("B6");  // carries the 64ms weak class
  softmc::Session session(profile);
  ASSERT_TRUE(session.set_temperature(80.0).ok());
  session.set_auto_refresh(false);

  ProfilerOptions opts;
  opts.row_count = 64;
  auto nominal = profile_retention(session, opts);
  ASSERT_TRUE(nominal.has_value()) << nominal.error().message;

  ASSERT_TRUE(session.set_vpp(profile.vppmin_v).ok());
  auto low = profile_retention(session, opts);
  ASSERT_TRUE(low.has_value());
  // At VPPmin, ~15.5% of B6's rows fail the guardbanded window.
  EXPECT_GT(low->weak_rows.size(), nominal->weak_rows.size());
  EXPECT_GT(low->weak_fraction(), 0.05);
  EXPECT_LT(low->weak_fraction(), 0.60);
  EXPECT_EQ(low->rows_scanned, 64u);
}

TEST(MemoryControllerSelectiveRefresh, ProtectsProfiledRowsAtVppmin) {
  auto profile = small_profile("B6");
  softmc::Session session(profile);
  ASSERT_TRUE(session.set_temperature(80.0).ok());
  ASSERT_TRUE(session.set_vpp(profile.vppmin_v).ok());

  ProfilerOptions popts;
  popts.row_count = 48;
  auto prof = profile_retention(session, popts);
  ASSERT_TRUE(prof.has_value());
  ASSERT_FALSE(prof->weak_rows.empty());

  ControllerOptions opts;
  opts.fast_refresh_rows = prof->weak_rows;
  opts.use_secded = false;
  MemoryController mc(session, opts, std::make_unique<NoMitigation>());

  // Write a weak row, idle for a full refresh window, read back: the 2x
  // selective refresh must have restored it in between.
  const auto weak = prof->weak_rows.front();
  ASSERT_TRUE(mc.execute(write_req(weak.bank, weak.row, 0, 0x99)).has_value());
  ASSERT_TRUE(mc.idle_ms(64.0).ok());
  auto r = mc.execute(read_req(weak.bank, weak.row, 0));
  ASSERT_TRUE(r.has_value());
  std::array<std::uint8_t, 8> expected{};
  expected.fill(0x99);
  EXPECT_EQ(r->data, expected);
  EXPECT_GT(mc.stats().selective_refreshes, 0u);
}

}  // namespace
}  // namespace vppstudy::memctrl
