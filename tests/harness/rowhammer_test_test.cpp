#include "harness/rowhammer_test.hpp"

#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "harness/wcdp.hpp"

namespace vppstudy::harness {
namespace {

dram::ModuleProfile small_profile(const char* name = "B3") {
  auto p = chips::profile_by_name(name).value();
  p.rows_per_bank = 4096;
  return p;
}

RowHammerConfig quick_config() {
  RowHammerConfig c;
  c.num_iterations = 1;
  return c;
}

TEST(RowHammerTest, MeasureBerZeroWithoutHammering) {
  softmc::Session s(small_profile());
  RowHammerTest test(s, quick_config());
  auto ber = test.measure_ber(0, 500, dram::DataPattern::kCheckerAA, 0);
  ASSERT_TRUE(ber.has_value());
  EXPECT_DOUBLE_EQ(*ber, 0.0);
}

TEST(RowHammerTest, MeasureBerPositiveAboveThreshold) {
  softmc::Session s(small_profile());
  RowHammerTest test(s, quick_config());
  auto ber = test.measure_ber(0, 500, dram::DataPattern::kCheckerAA, 300'000);
  ASSERT_TRUE(ber.has_value());
  EXPECT_GT(*ber, 0.0);
  EXPECT_LT(*ber, 0.1);
}

TEST(RowHammerTest, BerMonotoneInHammerCount) {
  softmc::Session s(small_profile());
  RowHammerTest test(s, quick_config());
  double prev = -1.0;
  for (const std::uint64_t hc : {50'000ULL, 100'000ULL, 300'000ULL}) {
    auto ber = test.measure_ber(0, 500, dram::DataPattern::kCheckerAA, hc);
    ASSERT_TRUE(ber.has_value());
    EXPECT_GE(*ber, prev);
    prev = *ber;
  }
}

TEST(RowHammerTest, MeasureBerIsRepeatable) {
  softmc::Session s(small_profile());
  RowHammerTest test(s, quick_config());
  auto a = test.measure_ber(0, 500, dram::DataPattern::kCheckerAA, 200'000);
  auto b = test.measure_ber(0, 500, dram::DataPattern::kCheckerAA, 200'000);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(*a, *b);  // flips at consistently predictable locations
}

TEST(RowHammerTest, EdgeVictimRejected) {
  softmc::Session s(small_profile());
  RowHammerTest test(s, quick_config());
  EXPECT_FALSE(test.measure_ber(0, 0, dram::DataPattern::kCheckerAA, 1000)
                   .has_value());
}

TEST(RowHammerTest, TestRowFindsHcFirstNearModuleAnchor) {
  softmc::Session s(small_profile());  // B3: min HCfirst 16.6K
  RowHammerTest test(s, quick_config());
  auto r = test.test_row(0, 500, dram::DataPattern::kCheckerAA);
  ASSERT_TRUE(r.has_value());
  // This particular row's threshold is >= the module anchor and of the same
  // order of magnitude.
  EXPECT_GT(r->hc_first, 10'000u);
  EXPECT_LT(r->hc_first, 200'000u);
  EXPECT_GT(r->ber, 0.0);
}

TEST(RowHammerTest, HcFirstIsActuallyAFlipBoundary) {
  softmc::Session s(small_profile());
  RowHammerTest test(s, quick_config());
  auto r = test.test_row(0, 700, dram::DataPattern::kCheckerAA);
  ASSERT_TRUE(r.has_value());
  // Hammering at the reported HCfirst flips at least one bit...
  auto at = test.measure_ber(0, 700, r->wcdp, r->hc_first);
  ASSERT_TRUE(at.has_value());
  EXPECT_GT(*at, 0.0);
  // ...and hammering well below it flips nothing.
  auto below = test.measure_ber(0, 700, r->wcdp, r->hc_first / 2);
  ASSERT_TRUE(below.has_value());
  EXPECT_DOUBLE_EQ(*below, 0.0);
}

TEST(Wcdp, HammerWcdpIsStablePerRow) {
  softmc::Session s(small_profile());
  auto a = find_wcdp_hammer(s, 0, 500);
  auto b = find_wcdp_hammer(s, 0, 500);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(Wcdp, HammerWcdpMaximizesBer) {
  softmc::Session s(small_profile());
  auto wcdp = find_wcdp_hammer(s, 0, 500);
  ASSERT_TRUE(wcdp.has_value());
  RowHammerTest test(s, quick_config());
  auto worst = test.measure_ber(0, 500, *wcdp, 300'000);
  ASSERT_TRUE(worst.has_value());
  for (const auto p : dram::kAllPatterns) {
    auto ber = test.measure_ber(0, 500, p, 300'000);
    ASSERT_TRUE(ber.has_value());
    EXPECT_LE(*ber, *worst + 1e-12) << dram::pattern_name(p);
  }
}

}  // namespace
}  // namespace vppstudy::harness
