#include "harness/attack_patterns.hpp"

#include <gtest/gtest.h>

#include "chips/module_db.hpp"

namespace vppstudy::harness {
namespace {

dram::ModuleProfile small_profile() {
  auto p = chips::profile_by_name("B3").value();
  p.rows_per_bank = 4096;
  return p;
}

AttackConfig attack(AttackKind kind, std::uint64_t hc) {
  AttackConfig c;
  c.kind = kind;
  c.hammer_count = hc;
  return c;
}

TEST(AttackPatterns, DoubleSidedFlipsAtModerateCounts) {
  softmc::Session s(small_profile());
  auto r = run_attack(s, 0, 700, attack(AttackKind::kDoubleSided, 300'000));
  ASSERT_TRUE(r.has_value()) << r.error().message;
  EXPECT_GT(r->victim_flips, 0u);
  EXPECT_EQ(r->trr_mitigations, 0u);  // no REF issued -> TRR inert
}

TEST(AttackPatterns, DoubleSidedBeatsSingleSided) {
  // Section 4.2: double-sided is the most effective attack absent defenses.
  softmc::Session s1(small_profile());
  auto single =
      run_attack(s1, 0, 700, attack(AttackKind::kSingleSided, 300'000));
  softmc::Session s2(small_profile());
  auto dbl = run_attack(s2, 0, 700, attack(AttackKind::kDoubleSided, 300'000));
  ASSERT_TRUE(single.has_value());
  ASSERT_TRUE(dbl.has_value());
  EXPECT_GT(dbl->victim_flips, single->victim_flips);
}

TEST(AttackPatterns, ManySidedHitsMultipleVictims) {
  softmc::Session s(small_profile());
  AttackConfig c = attack(AttackKind::kManySided, 300'000);
  c.sides = 6;
  auto r = run_attack(s, 0, 700, c);
  ASSERT_TRUE(r.has_value()) << r.error().message;
  EXPECT_GT(r->total_flips, r->victim_flips);
}

TEST(AttackPatterns, RefreshEnablesTrrAgainstDoubleSided) {
  // With REF flowing, the in-DRAM tracker catches a two-aggressor attack.
  softmc::Session s(small_profile());
  AttackConfig c = attack(AttackKind::kDoubleSided, 300'000);
  c.refresh_during_attack = true;
  auto r = run_attack(s, 0, 700, c);
  ASSERT_TRUE(r.has_value()) << r.error().message;
  EXPECT_GT(r->trr_mitigations, 0u);
  EXPECT_EQ(r->victim_flips, 0u);
}

TEST(AttackPatterns, ManySidedThrashesTrrTracker) {
  // TRRespass's insight: more aggressors than tracker entries -> the
  // Misra-Gries table decays and victims flip despite refresh.
  softmc::Session s(small_profile());
  AttackConfig c = attack(AttackKind::kManySided, 300'000);
  c.sides = 20;  // tracker has 8 entries per bank
  c.refresh_during_attack = true;
  auto r = run_attack(s, 0, 700, c);
  ASSERT_TRUE(r.has_value()) << r.error().message;
  EXPECT_GT(r->total_flips, 0u);
}

TEST(AttackPatterns, EdgeVictimRejected) {
  softmc::Session s(small_profile());
  auto r = run_attack(s, 0, 0, attack(AttackKind::kDoubleSided, 1000));
  EXPECT_FALSE(r.has_value());
}

TEST(AttackPatterns, ManySidedNeedsRoom) {
  auto profile = small_profile();
  softmc::Session s(profile);
  AttackConfig c = attack(AttackKind::kManySided, 1000);
  c.sides = 3000;  // cannot fit in a 4096-row bank from row 700
  EXPECT_FALSE(run_attack(s, 0, 700, c).has_value());
}

TEST(AttackPatterns, NamesAreStable) {
  EXPECT_STREQ(attack_name(AttackKind::kSingleSided), "single-sided");
  EXPECT_STREQ(attack_name(AttackKind::kDoubleSided), "double-sided");
  EXPECT_STREQ(attack_name(AttackKind::kManySided), "many-sided");
}

}  // namespace
}  // namespace vppstudy::harness
