// PatternSpec contract tests: JSON round-trips for both encodings, typed
// parse failures with byte offsets, validation errors naming the offending
// field, and the cross-platform stability of spec_hash. The hash is the
// pattern's identity in campaign axis points, cache keys, and manifests, so
// its exact value for the reference patterns is pinned here: a hash change
// silently orphans every cached result and recorded manifest.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "harness/pattern_spec.hpp"

namespace vppstudy::harness {
namespace {

// The corpus crowd-out pattern (tests/harness/corpus/crowd_out.json): eight
// decoys saturate the TRR tracker while the two real aggressors ride in
// bursts small enough to be displaced instead of inserted.
PatternSpec crowd_out_spec() {
  PatternSpec spec;
  spec.name = "crowd-out";
  spec.slots_per_period = 64;
  const std::int32_t offs[] = {-6, -5, -4, -3, 3, 4, 5, 6};
  for (std::uint32_t i = 0; i < 8; ++i) {
    spec.aggressors.push_back({offs[i], i, 1, 24});
  }
  spec.aggressors.push_back({-1, 8, 8, 3});
  spec.aggressors.push_back({1, 9, 8, 3});
  spec.refs_per_period = 2;  // ceil(240 ACTs / 171)
  return spec;
}

TEST(PatternSpecTest, DocumentRoundTripPreservesEveryField) {
  for (const PatternSpec& spec :
       {uniform_double_sided_spec(), crowd_out_spec()}) {
    const std::string text = pattern_spec_document(spec).str();
    auto parsed = parse_pattern_spec_text(text);
    ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
    EXPECT_EQ(*parsed, spec);
    EXPECT_EQ(parsed->spec_hash(), spec.spec_hash());
  }
}

TEST(PatternSpecTest, EmbeddedRoundTripPreservesEveryField) {
  const PatternSpec spec = crowd_out_spec();
  common::JsonWriter json;
  json.begin_object();
  json.key("spec");
  pattern_spec_json(json, spec);
  json.end_object();
  auto doc = common::parse_json(json.str());
  ASSERT_TRUE(doc.has_value());
  auto parsed = parse_pattern_spec(*doc->find("spec"));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  EXPECT_EQ(*parsed, spec);
}

TEST(PatternSpecTest, MalformedJsonFailsWithByteOffset) {
  auto res = parse_pattern_spec_text("{\"schema\": \"x\", ]");
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.error().code, common::ErrorCode::kParseError);
  EXPECT_NE(res.error().message.find("at byte"), std::string::npos)
      << res.error().message;
}

TEST(PatternSpecTest, UnknownSchemaMajorVersionRejected) {
  std::string text = pattern_spec_document(uniform_double_sided_spec()).str();
  const auto pos = text.find("vppstudy-pattern-spec/1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 23, "vppstudy-pattern-spec/9");
  auto res = parse_pattern_spec_text(text);
  ASSERT_FALSE(res.has_value());
}

TEST(PatternSpecTest, ValidationNamesTheOffendingField) {
  PatternSpec spec = uniform_double_sided_spec();
  spec.aggressors[0].offset = 0;
  auto st = spec.validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, common::ErrorCode::kInvalidArgument);
  EXPECT_NE(st.error().message.find("offset must be non-zero"),
            std::string::npos)
      << st.error().message;

  spec = uniform_double_sided_spec();
  spec.aggressors[1].offset = spec.aggressors[0].offset;
  EXPECT_FALSE(spec.validate().ok());  // duplicate physical offset

  spec = uniform_double_sided_spec();
  spec.aggressors[0].phase = spec.slots_per_period;
  EXPECT_FALSE(spec.validate().ok());

  spec = uniform_double_sided_spec();
  spec.aggressors[0].frequency = 0;
  EXPECT_FALSE(spec.validate().ok());

  spec = uniform_double_sided_spec();
  spec.aggressors.clear();
  EXPECT_FALSE(spec.validate().ok());

  // The REF-fairness floor: a spec cannot win by skipping refreshes.
  spec = crowd_out_spec();
  spec.refs_per_period = 1;  // 240 ACTs/period needs >= 2
  EXPECT_FALSE(spec.validate().ok());
}

TEST(PatternSpecTest, ParsedSpecsAreValidated) {
  // Well-formed JSON, invalid field: the parse itself must fail typed.
  auto res = parse_pattern_spec_text(
      "{\"schema\": \"vppstudy-pattern-spec/1\", \"spec\": {"
      "\"slots_per_period\": 64, \"refs_per_period\": 1, "
      "\"act_to_act_ns\": 0, \"aggressors\": ["
      "{\"offset\": 0, \"phase\": 0, \"frequency\": 1, \"amplitude\": 1}"
      "]}}");
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.error().code, common::ErrorCode::kInvalidArgument);
}

TEST(PatternSpecTest, SpecHashPinnedForReferencePatterns) {
  // These exact values live in tests/harness/corpus/GOLDENS.json and in
  // every recorded campaign manifest; changing the hash function is a
  // breaking format change, not a refactor.
  EXPECT_EQ(uniform_double_sided_spec().spec_hash(), 0x6ed7c26d05ff3069ull);
  EXPECT_EQ(crowd_out_spec().spec_hash(), 0xb4fc2a725a8698e4ull);
}

TEST(PatternSpecTest, NameIsNotPartOfTheHash) {
  PatternSpec a = crowd_out_spec();
  PatternSpec b = a;
  b.name = "renamed";
  EXPECT_EQ(a.spec_hash(), b.spec_hash());
  EXPECT_NE(a.spec_hash(), 0u);
  // But any scheduling field is.
  b.aggressors[0].amplitude += 1;
  EXPECT_NE(a.spec_hash(), b.spec_hash());
}

TEST(PatternSpecTest, ScheduleIsOrderedAndMatchesActBudget) {
  const PatternSpec spec = crowd_out_spec();
  const auto events = pattern_schedule(spec);
  std::uint64_t freq_total = 0;
  for (const AggressorSpec& a : spec.aggressors) freq_total += a.frequency;
  EXPECT_EQ(events.size(), freq_total);
  for (std::size_t i = 1; i < events.size(); ++i) {
    const bool ordered =
        events[i - 1].slot < events[i].slot ||
        (events[i - 1].slot == events[i].slot &&
         events[i - 1].aggressor < events[i].aggressor);
    EXPECT_TRUE(ordered) << "event " << i << " out of (slot, index) order";
  }
  EXPECT_EQ(spec.acts_per_period(), 8u * 24u + 2u * 8u * 3u);
  // Periods always cover the budget and never round down to zero.
  EXPECT_EQ(pattern_periods_for_budget(spec, 0), 1u);
  const std::uint64_t periods = pattern_periods_for_budget(spec, 600'000);
  EXPECT_GE(periods * spec.acts_per_period(), 600'000u);
}

}  // namespace
}  // namespace vppstudy::harness
