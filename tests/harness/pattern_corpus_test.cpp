// Corpus regression: every pattern in tests/harness/corpus/ is run at the
// pinned golden conditions (module B3, bank 0, victim row 700, hammer count
// 300000, nominal VPP) and its flip counts and TRR-evasion verdict must
// match GOLDENS.json exactly. The corpus pins the repo's attack-pattern
// semantics: a change that drifts a TRR-bypassing pattern's flip score, or
// flips its evasion verdict, is a behavioral break of the TRR model or the
// pattern compiler, not a tunable -- CI's corpus-regression step runs this
// suite explicitly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chips/module_db.hpp"
#include "common/json.hpp"
#include "harness/attack_patterns.hpp"
#include "harness/pattern_spec.hpp"
#include "softmc/session.hpp"

#ifndef PATTERN_CORPUS_DIR
#error "PATTERN_CORPUS_DIR must point at tests/harness/corpus"
#endif

namespace vppstudy::harness {
namespace {

struct GoldenEntry {
  std::string file;
  std::uint64_t spec_hash = 0;
  std::uint64_t victim_flips = 0;
  std::uint64_t total_flips = 0;
  std::uint64_t trr_mitigations = 0;
  bool trr_evaded = false;
};

struct Goldens {
  std::string module;
  std::uint32_t bank = 0;
  std::uint32_t victim_row = 0;
  std::uint64_t hammer_count = 0;
  std::vector<GoldenEntry> entries;
};

Goldens load_goldens() {
  const std::string path = std::string(PATTERN_CORPUS_DIR) + "/GOLDENS.json";
  auto doc = common::parse_json_file(path);
  EXPECT_TRUE(doc.has_value()) << path;
  Goldens g;
  if (!doc) return g;
  EXPECT_EQ(doc->string_or("schema", ""), "vppstudy-pattern-goldens/1");
  g.module = doc->string_or("module", "");
  g.bank = static_cast<std::uint32_t>(doc->uint_or("bank", 0));
  g.victim_row = static_cast<std::uint32_t>(doc->uint_or("victim_row", 0));
  g.hammer_count = doc->uint_or("hammer_count", 0);
  const common::JsonValue* entries = doc->find("entries");
  EXPECT_NE(entries, nullptr);
  if (!entries) return g;
  for (const common::JsonValue& e : entries->items()) {
    GoldenEntry entry;
    entry.file = e.string_or("file", "");
    entry.spec_hash =
        std::strtoull(e.string_or("spec_hash", "0").c_str(), nullptr, 16);
    entry.victim_flips = e.uint_or("victim_flips", 0);
    entry.total_flips = e.uint_or("total_flips", 0);
    entry.trr_mitigations = e.uint_or("trr_mitigations", 0);
    entry.trr_evaded = e.bool_or("trr_evaded", false);
    g.entries.push_back(std::move(entry));
  }
  return g;
}

TEST(PatternCorpusTest, EveryCorpusSpecMatchesItsGolden) {
  const Goldens goldens = load_goldens();
  ASSERT_FALSE(goldens.entries.empty());
  const auto profile = chips::profile_by_name(goldens.module);
  ASSERT_TRUE(profile.has_value()) << goldens.module;

  // The corpus must contain at least one TRR-bypassing pattern and at least
  // one benign (mitigated) one, or the regression has no discriminating
  // power in either direction.
  bool any_evaded = false;
  bool any_mitigated = false;

  for (const GoldenEntry& golden : goldens.entries) {
    SCOPED_TRACE(golden.file);
    const std::string path =
        std::string(PATTERN_CORPUS_DIR) + "/" + golden.file;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    auto spec = parse_pattern_spec_text(text.str());
    ASSERT_TRUE(spec.has_value()) << spec.error().to_string();
    EXPECT_EQ(spec->spec_hash(), golden.spec_hash)
        << "corpus file drifted from its recorded identity";

    softmc::Session session(*profile);
    AttackConfig config;
    config.kind = AttackKind::kFuzzed;
    config.pattern = &*spec;
    config.hammer_count = goldens.hammer_count;
    auto outcome =
        run_attack(session, goldens.bank, goldens.victim_row, config);
    ASSERT_TRUE(outcome.has_value()) << outcome.error().to_string();

    EXPECT_EQ(outcome->victim_flips, golden.victim_flips);
    EXPECT_EQ(outcome->total_flips, golden.total_flips);
    EXPECT_EQ(outcome->trr_mitigations, golden.trr_mitigations);
    EXPECT_EQ(outcome->trr_evaded, golden.trr_evaded);
    any_evaded |= golden.trr_evaded;
    any_mitigated |= !golden.trr_evaded;
  }
  EXPECT_TRUE(any_evaded) << "corpus lost its TRR-bypassing patterns";
  EXPECT_TRUE(any_mitigated) << "corpus lost its benign reference patterns";
}

TEST(PatternCorpusTest, GoldensCoverEveryCorpusSpecFile) {
  // A corpus file without a golden is an unpinned pattern; GOLDENS.json must
  // enumerate them all (sorted, so drift shows up as a clean diff).
  const Goldens goldens = load_goldens();
  std::vector<std::string> recorded;
  for (const GoldenEntry& e : goldens.entries) recorded.push_back(e.file);
  std::vector<std::string> expected = {"burst_blaster.json", "crowd_out.json",
                                       "decoy_light.json",
                                       "uniform_double_sided.json"};
  EXPECT_EQ(recorded, expected);
}

}  // namespace
}  // namespace vppstudy::harness
