// Fuzzer purity tests: every generated, mutated, crossed-over, or evolved
// spec is a pure function of its inputs (bit-identical across calls) and
// always validates. Determinism is what lets fuzz campaigns checkpoint,
// resume, and replay in CI; validity is what lets the campaign engine run a
// population without per-spec error handling.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "harness/pattern_fuzzer.hpp"
#include "harness/pattern_spec.hpp"

namespace vppstudy::harness {
namespace {

FuzzerConfig small_config() {
  FuzzerConfig config;
  config.population = 8;
  config.elites = 2;
  return config;
}

std::vector<ScoredSpec> score_by_rank(const std::vector<PatternSpec>& specs) {
  std::vector<ScoredSpec> scored;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    scored.push_back({specs[i], static_cast<double>((i * 37) % 101)});
  }
  return scored;
}

TEST(PatternFuzzerTest, InitialPopulationIsDeterministicAndValid) {
  const FuzzerConfig config = small_config();
  const auto a = initial_population(42, config);
  const auto b = initial_population(42, config);
  EXPECT_EQ(a, b);  // bit-identical replay
  ASSERT_EQ(a.size(), config.population);
  // Member 0 is always the uniform double-sided reference.
  EXPECT_EQ(a[0], uniform_double_sided_spec());
  std::set<std::uint64_t> hashes;
  for (const PatternSpec& spec : a) {
    EXPECT_TRUE(spec.validate().ok()) << spec.name;
    EXPECT_TRUE(hashes.insert(spec.spec_hash()).second)
        << "duplicate spec_hash in initial population";
  }
  // A different seed explores a different population (beyond the fixed
  // uniform reference).
  const auto c = initial_population(43, config);
  EXPECT_NE(a, c);
}

TEST(PatternFuzzerTest, CorpusSeedsEnterGenerationZeroAfterUniform) {
  FuzzerConfig config = small_config();
  PatternSpec seed_spec = uniform_double_sided_spec();
  seed_spec.name = "corpus-seed";
  seed_spec.aggressors[0].amplitude = 4;
  seed_spec.aggressors[1].amplitude = 4;
  seed_spec.refs_per_period = 2;  // REF-fairness floor for 256 ACTs/period
  config.seeds = {seed_spec};
  const auto population = initial_population(7, config);
  ASSERT_GE(population.size(), 2u);
  EXPECT_EQ(population[0], uniform_double_sided_spec());
  EXPECT_EQ(population[1], seed_spec);
}

TEST(PatternFuzzerTest, InvalidAndDuplicateSeedsAreSkipped) {
  FuzzerConfig config = small_config();
  PatternSpec invalid;  // no aggressors: validate() fails
  invalid.aggressors.clear();
  config.seeds = {invalid, uniform_double_sided_spec()};
  const auto seeded = initial_population(7, config);
  // The invalid seed is dropped and the uniform duplicate deduped, so the
  // population is exactly the unseeded one.
  config.seeds.clear();
  EXPECT_EQ(seeded, initial_population(7, config));
}

TEST(PatternFuzzerTest, RepairProducesValidSpecsFromGarbage) {
  const FuzzerLimits limits;
  PatternSpec garbage;
  garbage.slots_per_period = 0;
  garbage.refs_per_period = 0;
  garbage.act_to_act_ns = -5.0;
  garbage.aggressors = {{0, 9999, 0, 0}, {0, 9999, 0, 0}, {77, 1, 2, 3}};
  const PatternSpec repaired = repair_pattern_spec(garbage, limits);
  EXPECT_TRUE(repaired.validate().ok())
      << repaired.validate().error().to_string();
  // Repair is deterministic.
  EXPECT_EQ(repaired, repair_pattern_spec(garbage, limits));
}

TEST(PatternFuzzerTest, MutationAndCrossoverAreDeterministicAndValid) {
  const FuzzerLimits limits;
  const PatternSpec a = random_pattern_spec(1, limits);
  const PatternSpec b = random_pattern_spec(2, limits);
  EXPECT_TRUE(a.validate().ok());
  EXPECT_TRUE(b.validate().ok());
  EXPECT_EQ(a, random_pattern_spec(1, limits));
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const PatternSpec m = mutate_pattern_spec(a, seed, limits);
    EXPECT_TRUE(m.validate().ok()) << "mutation seed " << seed;
    EXPECT_EQ(m, mutate_pattern_spec(a, seed, limits));
    const PatternSpec x = crossover_pattern_specs(a, b, seed, limits);
    EXPECT_TRUE(x.validate().ok()) << "crossover seed " << seed;
    EXPECT_EQ(x, crossover_pattern_specs(a, b, seed, limits));
  }
}

TEST(PatternFuzzerTest, EvolutionKeepsElitesAndNeverCollapses) {
  const FuzzerConfig config = small_config();
  auto population = initial_population(99, config);
  for (std::uint32_t gen = 1; gen <= 4; ++gen) {
    const auto scored = score_by_rank(population);
    // Top scorer under (score desc, hash asc): must survive as an elite.
    const ScoredSpec* best = &scored[0];
    for (const ScoredSpec& s : scored) {
      if (s.score > best->score ||
          (s.score == best->score &&
           s.spec.spec_hash() < best->spec.spec_hash())) {
        best = &s;
      }
    }
    population = evolve_population(scored, 99, gen, config);
    ASSERT_EQ(population.size(), config.population);
    EXPECT_EQ(population, evolve_population(scored, 99, gen, config));
    std::set<std::uint64_t> hashes;
    bool best_survived = false;
    for (const PatternSpec& spec : population) {
      EXPECT_TRUE(spec.validate().ok());
      EXPECT_TRUE(hashes.insert(spec.spec_hash()).second)
          << "population collapsed to duplicates at generation " << gen;
      best_survived |= spec.spec_hash() == best->spec.spec_hash();
    }
    EXPECT_TRUE(best_survived) << "elite lost at generation " << gen;
  }
}

}  // namespace
}  // namespace vppstudy::harness
