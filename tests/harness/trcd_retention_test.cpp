#include <gtest/gtest.h>

#include <cmath>

#include "chips/module_db.hpp"
#include "common/units.hpp"
#include "harness/retention_test.hpp"
#include "harness/trcd_test.hpp"

namespace vppstudy::harness {
namespace {

dram::ModuleProfile small_profile(const char* name) {
  auto p = chips::profile_by_name(name).value();
  p.rows_per_bank = 4096;
  return p;
}

TrcdConfig quick_trcd() {
  TrcdConfig c;
  c.num_iterations = 1;
  c.column_stride = 64;
  return c;
}

TEST(TrcdTest, NominalTrcdIsReliableOnHealthyModule) {
  softmc::Session s(small_profile("C0"));  // trcd0 = 11.0ns
  TrcdTest test(s, quick_trcd());
  auto faulty = test.is_faulty(0, 100, dram::DataPattern::kCheckerAA, 13.5);
  ASSERT_TRUE(faulty.has_value());
  EXPECT_FALSE(*faulty);
}

TEST(TrcdTest, VeryShortTrcdIsFaulty) {
  softmc::Session s(small_profile("C0"));
  TrcdTest test(s, quick_trcd());
  auto faulty = test.is_faulty(0, 100, dram::DataPattern::kCheckerAA, 6.0);
  ASSERT_TRUE(faulty.has_value());
  EXPECT_TRUE(*faulty);
}

TEST(TrcdTest, TestRowQuantizesToCommandSlots) {
  softmc::Session s(small_profile("C0"));
  TrcdTest test(s, quick_trcd());
  auto r = test.test_row(0, 100, dram::DataPattern::kCheckerAA);
  ASSERT_TRUE(r.has_value());
  // Result must sit on the 13.5 - k*1.5 grid.
  const double steps = (13.5 - r->trcd_min_ns) / 1.5;
  EXPECT_NEAR(steps, std::round(steps), 1e-9);
  EXPECT_GT(r->trcd_min_ns, 6.0);
  EXPECT_LE(r->trcd_min_ns, 13.5);
}

TEST(TrcdTest, TrcdMinGrowsAtReducedVpp) {
  softmc::Session s(small_profile("A0"));  // strong VPP dependence
  TrcdTest test(s, quick_trcd());
  auto nominal = test.test_row(0, 100, dram::DataPattern::kCheckerAA);
  ASSERT_TRUE(nominal.has_value());
  ASSERT_TRUE(s.set_vpp(1.4).ok());  // A0's VPPmin
  auto low = test.test_row(0, 100, dram::DataPattern::kCheckerAA);
  ASSERT_TRUE(low.has_value());
  EXPECT_GT(low->trcd_min_ns, nominal->trcd_min_ns);
  // A0 at VPPmin needs more than nominal tRCD but works at 24ns (Obsv. 7).
  EXPECT_GT(low->trcd_min_ns, 13.5);
  EXPECT_LE(low->trcd_min_ns, 24.0);
}

TEST(RetentionTest, NoFlipsAtNominalRefreshWindowNominalVpp) {
  softmc::Session s(small_profile("B0"));
  ASSERT_TRUE(s.set_temperature(common::kRetentionTestTempC).ok());
  RetentionTest test(s, RetentionConfig{});
  auto ber = test.measure_ber(0, 100, dram::DataPattern::kCheckerAA, 64.0);
  ASSERT_TRUE(ber.has_value());
  EXPECT_DOUBLE_EQ(*ber, 0.0);
}

TEST(RetentionTest, LongWindowsLeakMonotonically) {
  softmc::Session s(small_profile("C0"));
  ASSERT_TRUE(s.set_temperature(common::kRetentionTestTempC).ok());
  RetentionTest test(s, RetentionConfig{});
  auto r = test.test_row(0, 100, dram::DataPattern::kCheckerAA);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->trefw_ms.size(), 11u);  // 16ms .. 16384ms in powers of two
  EXPECT_DOUBLE_EQ(r->trefw_ms.front(), 16.0);
  for (std::size_t i = 1; i < r->ber.size(); ++i) {
    EXPECT_GE(r->ber[i], r->ber[i - 1] - 1e-12);
  }
  EXPECT_GT(r->ber.back(), 0.0);  // 16s at 80C certainly leaks
}

TEST(RetentionTest, ReducedVppIncreasesRetentionBer) {
  auto profile = small_profile("C0");
  softmc::Session s(profile);
  ASSERT_TRUE(s.set_temperature(common::kRetentionTestTempC).ok());
  RetentionTest test(s, RetentionConfig{});
  auto nominal = test.measure_ber(0, 100, dram::DataPattern::kCheckerAA, 4000.0);
  ASSERT_TRUE(nominal.has_value());
  ASSERT_TRUE(s.set_vpp(profile.vppmin_v).ok());
  auto low = test.measure_ber(0, 100, dram::DataPattern::kCheckerAA, 4000.0);
  ASSERT_TRUE(low.has_value());
  EXPECT_GT(*low, *nominal);
}

TEST(RetentionTest, WeakRowsFailAt64msOnlyAtVppmin) {
  // B6 carries the 64ms weak class. Find a weak row, then check the
  // boundary behavior at nominal VPP vs VPPmin.
  auto profile = small_profile("B6");
  dram::CellPhysics physics(profile);
  std::uint32_t weak_row = 0;
  for (std::uint32_t r = 8; r < 2000; ++r) {
    const auto cells = physics.weak_cells(0, r);
    bool in_64 = false;
    for (const auto& c : cells) in_64 |= c.t_ret_at_vppmin_s < 0.064;
    if (in_64 && physics.weak_cells(0, r).size() <= 8) {
      weak_row = r;
      break;
    }
  }
  ASSERT_NE(weak_row, 0u) << "no weak row found in scan range";

  softmc::Session s(profile);
  ASSERT_TRUE(s.set_temperature(common::kRetentionTestTempC).ok());
  RetentionTest test(s, RetentionConfig{});
  auto nominal = test.measure_ber(0, weak_row, dram::DataPattern::kCheckerAA,
                                  64.0);
  ASSERT_TRUE(nominal.has_value());
  EXPECT_DOUBLE_EQ(*nominal, 0.0);  // holds at nominal VPP
  ASSERT_TRUE(s.set_vpp(profile.vppmin_v).ok());
  auto low = test.measure_ber(0, weak_row, dram::DataPattern::kCheckerAA, 64.0);
  ASSERT_TRUE(low.has_value());
  EXPECT_GT(*low, 0.0);  // fails the 64ms window at VPPmin (Obsv. 13)
}

TEST(RetentionTest, CensusSeesOnlySingleBitWords) {
  // Obsv. 14: at the smallest failing window, no 64-bit word carries more
  // than one flip, so SECDED repairs everything.
  auto profile = small_profile("B6");
  softmc::Session s(profile);
  ASSERT_TRUE(s.set_temperature(common::kRetentionTestTempC).ok());
  ASSERT_TRUE(s.set_vpp(profile.vppmin_v).ok());
  RetentionTest test(s, RetentionConfig{});
  int rows_with_errors = 0;
  for (std::uint32_t row = 8; row < 72 && rows_with_errors < 3; ++row) {
    auto census = test.census_at(0, row, dram::DataPattern::kCheckerAA, 64.0);
    ASSERT_TRUE(census.has_value());
    if (census->census.erroneous_words() == 0) continue;
    ++rows_with_errors;
    EXPECT_TRUE(census->census.secded_correctable()) << "row " << row;
  }
  EXPECT_GT(rows_with_errors, 0);
}

}  // namespace
}  // namespace vppstudy::harness
