#include "harness/adjacency.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "chips/module_db.hpp"

namespace vppstudy::harness {
namespace {

dram::ModuleProfile small_profile(const char* name) {
  auto p = chips::profile_by_name(name).value();
  p.rows_per_bank = 4096;
  return p;
}

TEST(Adjacency, FindVictimsHitsPhysicalNeighbors) {
  auto profile = small_profile("B3");
  softmc::Session s(profile);
  s.module().set_trr_enabled(false);
  AdjacencyRevEng reveng(s, AdjacencyConfig{});

  const std::uint32_t aggressor = 512;
  auto victims = reveng.find_victims(0, aggressor);
  ASSERT_TRUE(victims.has_value());
  // The ground-truth physical neighbors must be among the flipped rows.
  const auto& mapping = s.module().mapping();
  const std::uint32_t phys = mapping.logical_to_physical(aggressor);
  const std::uint32_t below = mapping.physical_to_logical(phys - 1);
  const std::uint32_t above = mapping.physical_to_logical(phys + 1);
  EXPECT_NE(std::find(victims->begin(), victims->end(), below),
            victims->end());
  EXPECT_NE(std::find(victims->begin(), victims->end(), above),
            victims->end());
}

TEST(Adjacency, RecoveredPairsMatchGroundTruthMapping) {
  // The whole point of the reverse-engineering step (section 4.2): the
  // recovered aggressor pairs must equal the device's internal mapping.
  for (const char* module : {"A3", "B3", "C0"}) {
    auto profile = small_profile(module);
    softmc::Session s(profile);
    s.module().set_trr_enabled(false);
    AdjacencyRevEng reveng(s, AdjacencyConfig{});

    auto recovered = reveng.recover_block(0, 512, 8);
    ASSERT_TRUE(recovered.has_value()) << module;
    const auto& mapping = s.module().mapping();
    int verified = 0;
    for (const auto& [victim, pair] : *recovered) {
      if (!pair.complete) continue;
      const auto truth = mapping.physical_neighbors(victim);
      ASSERT_TRUE(truth.valid);
      const auto lo = std::min(truth.below, truth.above);
      const auto hi = std::max(truth.below, truth.above);
      EXPECT_EQ(std::min(pair.below, pair.above), lo)
          << module << " victim " << victim;
      EXPECT_EQ(std::max(pair.below, pair.above), hi)
          << module << " victim " << victim;
      ++verified;
    }
    EXPECT_GE(verified, 6) << module;
  }
}

}  // namespace
}  // namespace vppstudy::harness
