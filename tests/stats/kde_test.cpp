#include "stats/kde.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace vppstudy::stats {
namespace {

TEST(SilvermanBandwidth, PositiveForSpreadData) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_GT(silverman_bandwidth(v), 0.0);
}

TEST(SilvermanBandwidth, ShrinksWithSampleSize) {
  common::Xoshiro256 rng(5);
  std::vector<double> small, large;
  for (int i = 0; i < 30; ++i) small.push_back(rng.normal());
  for (int i = 0; i < 3000; ++i) large.push_back(rng.normal());
  EXPECT_GT(silverman_bandwidth(small), silverman_bandwidth(large));
}

TEST(GaussianKde, IntegratesToApproximatelyOne) {
  common::Xoshiro256 rng(9);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.normal(0.0, 1.0));
  const auto pts = gaussian_kde(sample, -6.0, 6.0, 241);
  double integral = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    integral += 0.5 * (pts[i].density + pts[i - 1].density) *
                (pts[i].x - pts[i - 1].x);
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(GaussianKde, PeaksNearTheMode) {
  common::Xoshiro256 rng(11);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(rng.normal(3.0, 0.5));
  const auto pts = gaussian_kde(sample, 0.0, 6.0, 121);
  double best_x = 0.0;
  double best_d = -1.0;
  for (const auto& p : pts) {
    if (p.density > best_d) {
      best_d = p.density;
      best_x = p.x;
    }
  }
  EXPECT_NEAR(best_x, 3.0, 0.3);
}

TEST(GaussianKde, EmptyInputsHandled) {
  EXPECT_TRUE(gaussian_kde(std::vector<double>{}, 0.0, 1.0, 10).empty());
  const std::vector<double> one{1.0};
  EXPECT_TRUE(gaussian_kde(one, 1.0, 1.0, 10).empty());  // hi <= lo
  EXPECT_TRUE(gaussian_kde(one, 0.0, 1.0, 0).empty());
}

TEST(GaussianKde, ExplicitBandwidthRespected) {
  const std::vector<double> sample{0.0};
  const auto narrow = gaussian_kde(sample, -1.0, 1.0, 3, 0.1);
  const auto wide = gaussian_kde(sample, -1.0, 1.0, 3, 1.0);
  // At the sample point, a narrower kernel is taller.
  EXPECT_GT(narrow[1].density, wide[1].density);
}

}  // namespace
}  // namespace vppstudy::stats
