#include "stats/inference.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace vppstudy::stats {
namespace {

TEST(BootstrapMeanCi, CoversTrueMean) {
  common::Xoshiro256 rng(31);
  int covered = 0;
  constexpr int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> sample;
    for (int i = 0; i < 40; ++i) sample.push_back(rng.normal(3.0, 1.0));
    const auto ci = bootstrap_mean_ci(sample, 0.90, 600,
                                      static_cast<std::uint64_t>(t));
    if (ci.lower <= 3.0 && 3.0 <= ci.upper) ++covered;
  }
  EXPECT_GT(covered, 75);
}

TEST(BootstrapMeanCi, DegenerateInputs) {
  const auto empty = bootstrap_mean_ci({}, 0.9);
  EXPECT_DOUBLE_EQ(empty.lower, 0.0);
  const std::vector<double> one{5.0};
  const auto single = bootstrap_mean_ci(one, 0.9);
  EXPECT_DOUBLE_EQ(single.lower, 5.0);
  EXPECT_DOUBLE_EQ(single.upper, 5.0);
}

TEST(BootstrapMeanCi, DeterministicForSeed) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto a = bootstrap_mean_ci(v, 0.9, 500, 7);
  const auto b = bootstrap_mean_ci(v, 0.9, 500, 7);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(MannWhitneyU, DetectsClearShift) {
  common::Xoshiro256 rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(1.5, 1.0));
  }
  const auto r = mann_whitney_u(a, b);
  EXPECT_LT(r.p_two_sided, 0.001);
  EXPECT_LT(r.effect, 0.3);  // a mostly below b
}

TEST(MannWhitneyU, NoFalsePositiveOnIdenticalDistributions) {
  common::Xoshiro256 rng(9);
  int significant = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> a, b;
    for (int i = 0; i < 30; ++i) {
      a.push_back(rng.normal());
      b.push_back(rng.normal());
    }
    if (mann_whitney_u(a, b).p_two_sided < 0.05) ++significant;
  }
  // ~5% expected by construction.
  EXPECT_LT(significant, kTrials * 12 / 100);
}

TEST(MannWhitneyU, HandlesTies) {
  const std::vector<double> a{1.0, 1.0, 2.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 2.0, 3.0};
  const auto r = mann_whitney_u(a, b);
  EXPECT_GE(r.p_two_sided, 0.0);
  EXPECT_LE(r.p_two_sided, 1.0);
  EXPECT_GT(r.effect, 0.0);
  EXPECT_LT(r.effect, 1.0);
}

TEST(MannWhitneyU, SymmetricEffect) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  const auto ab = mann_whitney_u(a, b);
  const auto ba = mann_whitney_u(b, a);
  EXPECT_NEAR(ab.effect + ba.effect, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(ab.effect, 0.0);  // all of a below all of b
}

TEST(MannWhitneyU, EmptyInputsSafe) {
  const std::vector<double> a{1.0};
  const auto r = mann_whitney_u(a, {});
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
}

}  // namespace
}  // namespace vppstudy::stats
