#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace vppstudy::stats {
namespace {

TEST(Mean, Basics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(SampleStddev, KnownValue) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population sigma is 2; sample stddev is sqrt(32/7).
  EXPECT_NEAR(sample_stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleStddev, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(sample_stddev(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev(std::vector<double>{3.0}), 0.0);
}

TEST(CoefficientOfVariation, MatchesDefinition) {
  const std::vector<double> v{10.0, 12.0, 8.0, 10.0};
  EXPECT_NEAR(coefficient_of_variation(v), sample_stddev(v) / 10.0, 1e-12);
}

TEST(CoefficientOfVariation, ZeroMeanGivesZero) {
  const std::vector<double> v{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(v), 0.0);
}

TEST(Summarize, AllFieldsPopulated) {
  const std::vector<double> v{1.0, 5.0, 3.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);
  EXPECT_NEAR(s.cv, 2.0 / 3.0, 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 17.5);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(PercentileSorted, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 10.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 90.0), 7.0);
}

TEST(MeanConfidenceInterval, CoversTrueMeanOnNormalData) {
  common::Xoshiro256 rng(123);
  int covered = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> sample;
    sample.reserve(50);
    for (int i = 0; i < 50; ++i) sample.push_back(rng.normal(10.0, 2.0));
    const auto ci = mean_confidence_interval(sample, 0.90);
    if (ci.lower <= 10.0 && 10.0 <= ci.upper) ++covered;
  }
  // Expect roughly 90% coverage; allow generous slack for 200 trials.
  EXPECT_GT(covered, kTrials * 80 / 100);
  EXPECT_LT(covered, kTrials * 99 / 100);
}

TEST(MeanConfidenceInterval, DegenerateInputs) {
  const auto empty = mean_confidence_interval(std::vector<double>{}, 0.9);
  EXPECT_DOUBLE_EQ(empty.lower, 0.0);
  EXPECT_DOUBLE_EQ(empty.upper, 0.0);
  const auto single = mean_confidence_interval(std::vector<double>{4.0}, 0.9);
  EXPECT_DOUBLE_EQ(single.lower, 4.0);
  EXPECT_DOUBLE_EQ(single.upper, 4.0);
}

TEST(CentralInterval, MatchesPercentiles) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const auto ci = central_interval(v, 0.90);
  EXPECT_NEAR(ci.lower, 5.0, 1e-9);
  EXPECT_NEAR(ci.upper, 95.0, 1e-9);
}

TEST(Fractions, AboveAndBelow) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fraction_above(v, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(v, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(fraction_above(v, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(v, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_above(std::vector<double>{}, 0.0), 0.0);
}

}  // namespace
}  // namespace vppstudy::stats
