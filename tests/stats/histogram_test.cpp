#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vppstudy::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 2.25);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 1.0, 8);
  for (int i = 0; i < 64; ++i) h.add((i % 8) / 8.0 + 0.01);
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b)
    integral += h.density(b) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, FractionsSumToOne) {
  Histogram h(0.0, 2.0, 5);
  const std::vector<double> vals{0.1, 0.5, 1.2, 1.9, 0.3};
  h.add_all(vals);
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.fraction(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, EmptyDensityIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.density(0), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.25);
  h.add(0.75);
  const std::string s = h.render(10);
  EXPECT_NE(s.find("2"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace vppstudy::stats
