// Tests for the instrumented command dispatch: observer registration order,
// the timing-checker-first contract, SessionCounters against hand-computed
// programs, the trace ring buffer's wrap behavior, and the typed error codes
// the session surfaces for each rig failure mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chips/module_db.hpp"
#include "common/error.hpp"
#include "dram/data_pattern.hpp"
#include "dram/types.hpp"
#include "softmc/counters.hpp"
#include "softmc/session.hpp"
#include "softmc/trace_recorder.hpp"

namespace vppstudy::softmc {
namespace {

dram::ModuleProfile small_profile(const char* name = "B3") {
  auto p = chips::profile_by_name(name).value();
  p.rows_per_bank = 4096;
  return p;
}

/// Appends "<name>:<command>" to a shared log on every command issue, so a
/// test can read off the interleaving across observers.
class RecordingObserver final : public SessionObserver {
 public:
  RecordingObserver(std::vector<std::string>& log, std::string name)
      : log_(log), name_(std::move(name)) {}

  void on_command(const Instruction& inst, double now_ns) override {
    (void)now_ns;
    log_.push_back(name_ + ":" +
                   std::string(dram::command_name(inst.kind)));
  }
  void on_violation(const TimingViolation& violation) override {
    violations_.push_back(violation);
  }
  void on_error(const common::Error& error, double now_ns) override {
    (void)now_ns;
    errors_.push_back(error);
  }

  [[nodiscard]] const std::vector<TimingViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] const std::vector<common::Error>& errors() const {
    return errors_;
  }

 private:
  std::vector<std::string>& log_;
  std::string name_;
  std::vector<TimingViolation> violations_;
  std::vector<common::Error> errors_;
};

TEST(Observers, NotifiedInRegistrationOrderPerCommand) {
  Session s(small_profile());
  std::vector<std::string> log;
  RecordingObserver first(log, "first");
  RecordingObserver second(log, "second");
  s.add_observer(&first);
  s.add_observer(&second);

  Program p(s.timing());
  p.act(0, 1).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());

  const std::vector<std::string> expected = {"first:ACT", "second:ACT",
                                             "first:PRE", "second:PRE"};
  EXPECT_EQ(log, expected);
}

TEST(Observers, TimingCheckerRunsBeforeExternalObservers) {
  // The checker is registered first, so by the time an external observer's
  // on_violation fires, the session's violation log already holds the entry.
  class ViolationWatcher final : public SessionObserver {
   public:
    explicit ViolationWatcher(const Session& session) : session_(session) {}
    void on_violation(const TimingViolation& violation) override {
      rules.push_back(violation.rule);
      log_sizes_at_callback.push_back(session_.violations().size());
    }
    std::vector<std::string> rules;
    std::vector<std::size_t> log_sizes_at_callback;

   private:
    const Session& session_;
  };

  Session s(small_profile("A0"));
  ViolationWatcher watcher(s);
  s.add_observer(&watcher);
  const auto image =
      dram::pattern_row(dram::DataPattern::kCheckerAA, dram::kBytesPerRow);
  ASSERT_TRUE(s.init_row(0, 50, image).ok());
  s.clear_violations();
  ASSERT_TRUE(s.read_column_with_trcd(0, 50, 3, 6.0).has_value());

  ASSERT_FALSE(watcher.rules.empty());
  EXPECT_EQ(watcher.rules.front(), "tRCD");
  for (const std::size_t size : watcher.log_sizes_at_callback) {
    EXPECT_GE(size, 1u);
  }
}

TEST(Observers, RemoveObserverStopsDelivery) {
  Session s(small_profile());
  std::vector<std::string> log;
  RecordingObserver obs(log, "obs");
  s.add_observer(&obs);

  Program p(s.timing());
  p.act(0, 1).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());
  const std::size_t seen_while_registered = log.size();
  EXPECT_EQ(seen_while_registered, 2u);

  s.remove_observer(&obs);
  ASSERT_TRUE(s.execute(p).status.ok());
  EXPECT_EQ(log.size(), seen_while_registered);
}

TEST(Observers, OnErrorDeliversTypedErrorAndAbortsExecution) {
  Session s(small_profile());
  std::vector<std::string> log;
  RecordingObserver obs(log, "obs");
  s.add_observer(&obs);

  Program p(s.timing());
  p.rd(0, 0).pre(0);  // RD with no open row: device protocol error
  const auto result = s.execute(p);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.error().code, common::ErrorCode::kDeviceProtocol);

  ASSERT_EQ(obs.errors().size(), 1u);
  EXPECT_EQ(obs.errors().front().code, common::ErrorCode::kDeviceProtocol);
  EXPECT_EQ(obs.errors().front().context.op, "RD");
  // Execution aborted at the failing RD; the PRE never issued.
  const std::vector<std::string> expected = {"obs:RD"};
  EXPECT_EQ(log, expected);
  EXPECT_EQ(s.counters().device_errors, 1u);
}

TEST(Counters, MatchHandComputedRowPrograms) {
  Session s(small_profile());
  const auto image =
      dram::pattern_row(dram::DataPattern::kChecker55, dram::kBytesPerRow);
  // init_row is ACT + 1024 WR + PRE; read_row is ACT + 1024 RD + PRE.
  ASSERT_TRUE(s.init_row(0, 7, image).ok());
  ASSERT_TRUE(s.read_row(0, 7).has_value());

  const CommandCounts& c = s.counters();
  EXPECT_EQ(c.activates, 2u);
  EXPECT_EQ(c.writes, static_cast<std::uint64_t>(dram::kColumnsPerRow));
  EXPECT_EQ(c.reads, static_cast<std::uint64_t>(dram::kColumnsPerRow));
  EXPECT_EQ(c.precharges, 2u);
  EXPECT_EQ(c.refreshes, 0u);
  EXPECT_EQ(c.hammer_loops, 0u);
  EXPECT_EQ(c.total_commands(), 4u + 2u * dram::kColumnsPerRow);
  // The counters observe every clock advance, so the simulated time equals
  // the session clock (which started at zero).
  EXPECT_DOUBLE_EQ(c.simulated_ns, s.clock_ns());
}

TEST(Counters, HammerLoopExpandsToPerAggressorActivations) {
  Session s(small_profile());
  const auto n = s.module().mapping().physical_neighbors(500);
  ASSERT_TRUE(n.valid);
  ASSERT_TRUE(s.hammer_double_sided(0, n.below, n.above, 1000).ok());

  const CommandCounts& c = s.counters();
  EXPECT_EQ(c.hammer_loops, 1u);
  EXPECT_EQ(c.hammer_activations, 2000u);  // two aggressors, 1000 ACTs each
  EXPECT_EQ(c.activates, 0u);              // no explicit ACTs issued
  EXPECT_EQ(c.total_commands(), 2000u);
}

TEST(Counters, ResetClearsEveryField) {
  Session s(small_profile());
  const auto image =
      dram::pattern_row(dram::DataPattern::kAllOnes, dram::kBytesPerRow);
  ASSERT_TRUE(s.init_row(0, 3, image).ok());
  ASSERT_NE(s.counters(), CommandCounts{});
  s.reset_counters();
  EXPECT_EQ(s.counters(), CommandCounts{});
}

TEST(Trace, RingWrapsKeepingNewestOldestFirst) {
  Session s(small_profile());
  s.enable_trace(4);
  ASSERT_NE(s.trace(), nullptr);
  EXPECT_EQ(s.trace()->capacity(), 4u);

  Program p(s.timing());
  // Six commands through a four-slot ring: ACT RD0 RD1 RD2 RD3 PRE.
  p.act(0, 1).rd(0, 0).rd(0, 1).rd(0, 2).rd(0, 3).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());

  EXPECT_EQ(s.trace()->total_recorded(), 6u);
  const auto entries = s.trace()->entries();
  ASSERT_EQ(entries.size(), 4u);
  // The first two commands (ACT, RD col 0) were overwritten.
  EXPECT_EQ(entries[0].kind, dram::CommandKind::kRead);
  EXPECT_EQ(entries[0].column, 1u);
  EXPECT_EQ(entries[1].column, 2u);
  EXPECT_EQ(entries[2].column, 3u);
  EXPECT_EQ(entries[3].kind, dram::CommandKind::kPrecharge);
  // Timestamps are the issue clock: strictly increasing oldest to newest.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i].at_ns, entries[i - 1].at_ns);
  }
}

TEST(Trace, DisableDetachesAndEnableReplaces) {
  Session s(small_profile());
  EXPECT_EQ(s.trace(), nullptr);  // off by default: tracing is opt-in
  s.enable_trace(2);
  Program p(s.timing());
  p.act(0, 1).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());
  EXPECT_EQ(s.trace()->total_recorded(), 2u);

  s.disable_trace();
  EXPECT_EQ(s.trace(), nullptr);
  ASSERT_TRUE(s.execute(p).status.ok());  // runs fine with no recorder

  s.enable_trace(8);  // a fresh recorder, empty again
  EXPECT_EQ(s.trace()->capacity(), 8u);
  EXPECT_EQ(s.trace()->total_recorded(), 0u);
}

TEST(Session, SurfacesTypedCodesPerFailureMode) {
  Session s(small_profile());  // B3: VPPmin 1.6V

  auto out_of_range = s.set_vpp(9.0);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.error().code, common::ErrorCode::kVppOutOfRange);

  auto unresponsive = s.set_vpp(1.5);  // in instrument range, below VPPmin
  ASSERT_FALSE(unresponsive.ok());
  EXPECT_EQ(unresponsive.error().code,
            common::ErrorCode::kModuleUnresponsive);
  EXPECT_EQ(unresponsive.error().context.module, "B3");
  EXPECT_EQ(unresponsive.error().context.vpp_mv, 1500);

  ASSERT_TRUE(s.set_vpp(2.5).ok());  // recover for the next probes

  auto bad_image = s.init_row(0, 1, std::vector<std::uint8_t>(16, 0xFF));
  ASSERT_FALSE(bad_image.ok());
  EXPECT_EQ(bad_image.error().code, common::ErrorCode::kBadRowImage);
  EXPECT_EQ(bad_image.error().context.module, "B3");

  Program p(s.timing());
  p.rd(0, 0);  // read with no open row
  const auto result = s.execute(p);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.error().code, common::ErrorCode::kDeviceProtocol);
}

}  // namespace
}  // namespace vppstudy::softmc
