// Tests for the lab-rig models: external power rail and thermal chamber.
#include <gtest/gtest.h>

#include "softmc/power_rail.hpp"
#include "softmc/thermal.hpp"

namespace vppstudy::softmc {
namespace {

TEST(PowerRail, QuantizesToOneMillivolt) {
  PowerRail rail(2.5);
  auto v = rail.set_voltage(1.7004);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(*v, 1.700, 1e-9);
  v = rail.set_voltage(1.7006);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(*v, 1.701, 1e-9);
}

TEST(PowerRail, RejectsOutOfRangeRequests) {
  PowerRail rail(2.5);
  EXPECT_FALSE(rail.set_voltage(-0.5).has_value());
  EXPECT_FALSE(rail.set_voltage(7.0).has_value());
  EXPECT_NEAR(rail.voltage(), 2.5, 1e-9);  // unchanged after rejection
}

TEST(PowerRail, CustomLimitsRespected) {
  PowerRail rail(1.0, RailLimits{0.5, 3.0, 0.01});
  EXPECT_FALSE(rail.set_voltage(0.4).has_value());
  auto v = rail.set_voltage(1.234);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(*v, 1.23, 1e-9);
}

TEST(PowerRail, CurrentEstimateScalesWithActivity) {
  PowerRail rail(2.5);
  const double idle = rail.estimate_current_a(0.0);
  const double busy = rail.estimate_current_a(20e6);
  EXPECT_GT(idle, 0.0);
  EXPECT_GT(busy, idle);
}

TEST(PidController, DrivesPlantToSetpoint) {
  PidController pid(PidController::Gains{});
  ThermalPlant plant(ThermalPlant::Params{});
  for (int i = 0; i < 4000; ++i) {
    const double power = pid.step(50.0, plant.temperature_c(), 0.5);
    EXPECT_GE(power, 0.0);
    EXPECT_LE(power, 60.0);
    plant.step(power, 0.5);
  }
  EXPECT_NEAR(plant.temperature_c(), 50.0, 0.2);
}

TEST(PidController, ResetClearsIntegrator) {
  PidController pid(PidController::Gains{});
  for (int i = 0; i < 100; ++i) (void)pid.step(80.0, 25.0, 0.5);
  pid.reset();
  // After reset the first step's output has no accumulated integral: it
  // matches a fresh controller's output.
  PidController fresh(PidController::Gains{});
  EXPECT_DOUBLE_EQ(pid.step(80.0, 25.0, 0.5), fresh.step(80.0, 25.0, 0.5));
}

TEST(ThermalPlant, ApproachesEquilibriumExponentially) {
  ThermalPlant plant(ThermalPlant::Params{25.0, 1.0, 10.0});
  // 20W heater: equilibrium at 45C.
  for (int i = 0; i < 1000; ++i) plant.step(20.0, 0.5);
  EXPECT_NEAR(plant.temperature_c(), 45.0, 0.1);
}

TEST(ThermalChamber, SettlesAtHammerAndRetentionSetpoints) {
  ThermalChamber chamber;
  const auto r50 = chamber.settle(50.0);
  EXPECT_TRUE(r50.converged);
  EXPECT_NEAR(r50.temperature_c, 50.0, 0.1);
  const auto r80 = chamber.settle(80.0);
  EXPECT_TRUE(r80.converged);
  EXPECT_NEAR(r80.temperature_c, 80.0, 0.1);
  // Cooling back down also works (the rig's minimum is bounded by ambient).
  const auto r50b = chamber.settle(50.0);
  EXPECT_TRUE(r50b.converged);
}

TEST(ThermalChamber, CannotSettleBelowAmbient) {
  ThermalChamber chamber;
  const auto r = chamber.settle(10.0, /*max_seconds=*/200.0);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace vppstudy::softmc
