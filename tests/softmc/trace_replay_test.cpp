// Round-trip property tests for trace-driven replay: a session's command
// trace serialized to the versioned JSON dump, parsed back, and replayed
// through a fresh session must reproduce the original run exactly --
// identical SessionCounters, identical ModuleStats, and (for a failing run)
// the identical typed ErrorCode. This is the acceptance contract behind
// `vppctl replay` and the replay-fuzz CI job.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "chips/module_db.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "dram/data_pattern.hpp"
#include "softmc/fault_injector.hpp"
#include "softmc/session.hpp"
#include "softmc/trace_dump.hpp"
#include "softmc/trace_replayer.hpp"

namespace vppstudy::softmc {
namespace {

dram::ModuleProfile small_profile() {
  auto p = chips::profile_by_name("B3").value();
  p.rows_per_bank = 4096;
  return p;
}

void expect_same_stats(const dram::ModuleStats& a, const dram::ModuleStats& b) {
  EXPECT_EQ(a.activates, b.activates);
  EXPECT_EQ(a.precharges, b.precharges);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_EQ(a.hammer_bit_flips, b.hammer_bit_flips);
  EXPECT_EQ(a.retention_bit_flips, b.retention_bit_flips);
  EXPECT_EQ(a.trcd_read_errors, b.trcd_read_errors);
  EXPECT_EQ(a.trr_mitigations, b.trr_mitigations);
  EXPECT_EQ(a.ondie_ecc_corrections, b.ondie_ecc_corrections);
}

/// A short but representative rig run: row init (WR bursts), a double-sided
/// hammer loop, and a verification read.
void run_workload(Session& s) {
  const auto image =
      dram::pattern_row(dram::DataPattern::kCheckerAA, dram::kBytesPerRow);
  ASSERT_TRUE(s.init_row(0, 500, image).ok());
  ASSERT_TRUE(s.hammer_double_sided(0, 499, 501, 2000).ok());
  ASSERT_TRUE(s.read_row(0, 500).has_value());
}

TEST(TraceReplay, JsonRoundTripPreservesTheDumpBitExactly) {
  Session s(small_profile());
  s.set_noise_stream(77);
  s.enable_trace(8192);
  run_workload(s);

  const TraceDump dump = capture_trace_dump(s);
  EXPECT_FALSE(dump.has_failure());
  EXPECT_FALSE(dump.truncated());
  EXPECT_EQ(dump.module, "B3");
  EXPECT_EQ(dump.noise_stream, 77u);
  EXPECT_EQ(dump.total_recorded, dump.entries.size());

  const auto doc = common::parse_json(trace_dump_json(dump).str());
  ASSERT_TRUE(doc.has_value());
  const auto parsed = parse_trace_dump(*doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, dump);
}

TEST(TraceReplay, CleanRunReplaysToIdenticalCountersAndStats) {
  Session s(small_profile());
  s.set_noise_stream(42);
  s.enable_trace(8192);
  run_workload(s);

  // Through the full serialization path, as vppctl replay would see it.
  const auto doc =
      common::parse_json(trace_dump_json(capture_trace_dump(s)).str());
  ASSERT_TRUE(doc.has_value());
  const auto dump = parse_trace_dump(*doc);
  ASSERT_TRUE(dump.has_value());

  TraceReplayer replayer(*dump);
  const auto report = replayer.replay_on_profile(small_profile());
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->reproduced());
  EXPECT_FALSE(report->replay_failed);
  EXPECT_FALSE(report->truncated);
  EXPECT_EQ(report->commands_replayed, dump->entries.size());

  // The replay is command-for-command and timestamp-for-timestamp the same
  // run, so every counter matches -- including simulated time.
  const CommandCounts& original = s.counters();
  const CommandCounts& replayed = report->counters;
  EXPECT_EQ(replayed.activates, original.activates);
  EXPECT_EQ(replayed.hammer_loops, original.hammer_loops);
  EXPECT_EQ(replayed.hammer_activations, original.hammer_activations);
  EXPECT_EQ(replayed.reads, original.reads);
  EXPECT_EQ(replayed.writes, original.writes);
  EXPECT_EQ(replayed.precharges, original.precharges);
  EXPECT_EQ(replayed.refreshes, original.refreshes);
  EXPECT_EQ(replayed.waits, original.waits);
  EXPECT_EQ(replayed.timing_violations, original.timing_violations);
  EXPECT_EQ(replayed.device_errors, original.device_errors);
  EXPECT_DOUBLE_EQ(replayed.simulated_ns, original.simulated_ns);

  expect_same_stats(report->stats, s.module().stats());
}

TEST(TraceReplay, InjectedDropActFailureReproducesOriginalErrorCode) {
  Session s(small_profile());
  s.set_noise_stream(5);
  s.enable_trace(8192);
  FaultInjector inj(FaultPlan::parse("seed=3;drop_act@0").value());
  s.set_fault_injector(&inj);

  const auto image =
      dram::pattern_row(dram::DataPattern::kCheckerAA, dram::kBytesPerRow);
  const auto status = s.init_row(0, 500, image);
  ASSERT_FALSE(status.ok());
  ASSERT_EQ(status.error().code, common::ErrorCode::kDeviceProtocol);

  // Capture with the failure attached, round-trip through JSON, replay on a
  // fresh rig with no injector: the trace holds what the *device* saw (the
  // dropped ACT is absent), so the same protocol error must recur.
  const common::Error failure = status.error();
  const auto doc = common::parse_json(
      trace_dump_json(capture_trace_dump(s, &failure)).str());
  ASSERT_TRUE(doc.has_value());
  const auto dump = parse_trace_dump(*doc);
  ASSERT_TRUE(dump.has_value());
  EXPECT_TRUE(dump->has_failure());
  EXPECT_EQ(dump->error_code, common::ErrorCode::kDeviceProtocol);

  TraceReplayer replayer(*dump);
  const auto report = replayer.replay_on_profile(small_profile());
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->original_failed);
  EXPECT_TRUE(report->replay_failed);
  EXPECT_EQ(report->replay_code, common::ErrorCode::kDeviceProtocol);
  EXPECT_TRUE(report->reproduced());
}

TEST(TraceReplay, TruncatedRingReplaysBestEffort) {
  Session s(small_profile());
  s.enable_trace(2);  // far smaller than the workload
  run_workload(s);

  const TraceDump dump = capture_trace_dump(s);
  EXPECT_TRUE(dump.truncated());
  ASSERT_EQ(dump.entries.size(), 2u);
  EXPECT_GT(dump.total_recorded, 2u);

  TraceReplayer replayer(dump);
  const auto report = replayer.replay_on_profile(small_profile());
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->truncated);
  // The missing prefix opened the row; replaying the suffix alone cannot
  // reproduce a clean run, and the report says so rather than crashing.
  EXPECT_FALSE(report->reproduced());
}

TEST(TraceReplay, NonMonotonicTimestampsAreATypedParseError) {
  Session s(small_profile());
  s.enable_trace(64);
  Program p(s.timing());
  p.act(0, 1).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());

  TraceDump dump = capture_trace_dump(s);
  ASSERT_EQ(dump.entries.size(), 2u);
  std::swap(dump.entries[0].at_ns, dump.entries[1].at_ns);

  TraceReplayer replayer(dump);
  const auto report = replayer.replay_on_profile(small_profile());
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error().code, common::ErrorCode::kParseError);
}

TEST(TraceReplay, DumpFileRoundTripsThroughDisk) {
  Session s(small_profile());
  s.enable_trace(64);
  Program p(s.timing());
  p.act(0, 9).rd(0, 0).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());

  const TraceDump dump = capture_trace_dump(s);
  const std::string path = testing::TempDir() + "vppstudy_replay_test.json";
  ASSERT_TRUE(write_trace_dump(path, dump));
  const auto loaded = load_trace_dump(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, dump);
}

TEST(TraceReplay, RejectsFutureSchemaVersion) {
  Session s(small_profile());
  s.enable_trace(16);
  Program p(s.timing());
  p.act(0, 1).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());

  std::string json = trace_dump_json(capture_trace_dump(s)).str();
  const std::string from = "vppstudy-trace-dump/1";
  const std::size_t at = json.find(from);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, from.size(), "vppstudy-trace-dump/999");

  const auto doc = common::parse_json(json);
  ASSERT_TRUE(doc.has_value());
  const auto dump = parse_trace_dump(*doc);
  ASSERT_FALSE(dump.has_value());
  EXPECT_EQ(dump.error().code, common::ErrorCode::kParseError);
}

}  // namespace
}  // namespace vppstudy::softmc
