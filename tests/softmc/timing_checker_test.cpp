#include "softmc/timing_checker.hpp"

#include <gtest/gtest.h>

namespace vppstudy::softmc {
namespace {

dram::Ddr4Timing timing() { return dram::timing_for_speed_grade(2400); }

bool has_rule(const TimingChecker& c, const std::string& rule) {
  for (const auto& v : c.violations()) {
    if (v.rule == rule) return true;
  }
  return false;
}

TEST(TimingChecker, CleanSequenceHasNoViolations) {
  TimingChecker c(timing());
  c.observe(dram::CommandKind::kActivate, 0, 0.0);
  c.observe(dram::CommandKind::kRead, 0, 13.5);
  c.observe(dram::CommandKind::kPrecharge, 0, 32.0);
  c.observe(dram::CommandKind::kActivate, 0, 45.5);
  EXPECT_TRUE(c.violations().empty());
}

TEST(TimingChecker, DetectsTrcdViolation) {
  TimingChecker c(timing());
  c.observe(dram::CommandKind::kActivate, 0, 0.0);
  c.observe(dram::CommandKind::kRead, 0, 6.0);
  EXPECT_TRUE(has_rule(c, "tRCD"));
}

TEST(TimingChecker, DetectsTrasViolation) {
  TimingChecker c(timing());
  c.observe(dram::CommandKind::kActivate, 0, 0.0);
  c.observe(dram::CommandKind::kPrecharge, 0, 10.0);
  EXPECT_TRUE(has_rule(c, "tRAS"));
}

TEST(TimingChecker, DetectsTrpViolation) {
  TimingChecker c(timing());
  c.observe(dram::CommandKind::kActivate, 0, 0.0);
  c.observe(dram::CommandKind::kPrecharge, 0, 32.0);
  c.observe(dram::CommandKind::kActivate, 0, 35.0);
  EXPECT_TRUE(has_rule(c, "tRP"));
}

TEST(TimingChecker, DetectsTfawViolation) {
  TimingChecker c(timing());
  // Five activates to different banks within 21ns.
  for (std::uint32_t b = 0; b < 5; ++b) {
    c.observe(dram::CommandKind::kActivate, b, b * 5.0);
  }
  EXPECT_TRUE(has_rule(c, "tFAW"));
}

TEST(TimingChecker, DetectsTrrdViolation) {
  TimingChecker c(timing());
  c.observe(dram::CommandKind::kActivate, 0, 0.0);
  c.observe(dram::CommandKind::kActivate, 1, 1.5);
  EXPECT_TRUE(has_rule(c, "tRRD"));
}

TEST(TimingChecker, HammerLoopAtNominalRateIsClean) {
  TimingChecker c(timing());
  c.observe_hammer(0, 300000, timing().t_rc_ns, 0.0, 300000 * 2 * 45.5);
  EXPECT_TRUE(c.violations().empty());
}

TEST(TimingChecker, HammerLoopTooFastIsFlagged) {
  TimingChecker c(timing());
  c.observe_hammer(0, 1000, 20.0, 0.0, 1000 * 2 * 20.0);
  EXPECT_TRUE(has_rule(c, "tRC(loop)"));
}

TEST(TimingChecker, ClearViolationsResets) {
  TimingChecker c(timing());
  c.observe(dram::CommandKind::kActivate, 0, 0.0);
  c.observe(dram::CommandKind::kRead, 0, 2.0);
  EXPECT_FALSE(c.violations().empty());
  c.clear_violations();
  EXPECT_TRUE(c.violations().empty());
}

TEST(TimingChecker, ViolationRecordsContext) {
  TimingChecker c(timing());
  c.observe(dram::CommandKind::kActivate, 3, 100.0);
  c.observe(dram::CommandKind::kRead, 3, 104.0);
  ASSERT_FALSE(c.violations().empty());
  const auto& v = c.violations().front();
  EXPECT_EQ(v.bank, 3u);
  EXPECT_DOUBLE_EQ(v.required_ns, 13.5);
  EXPECT_DOUBLE_EQ(v.actual_ns, 4.0);
  EXPECT_DOUBLE_EQ(v.at_ns, 104.0);
}

}  // namespace
}  // namespace vppstudy::softmc
