// Wrap-boundary regression tests for the command trace ring. The subtle
// case is a ring filled to *exactly* its capacity: `next_` has wrapped to 0,
// and entries()/for_each()/last() must all still report chronological
// (oldest-first) order -- an off-by-one here silently reorders the dump a
// failed sweep leaves behind, which would corrupt trace replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "chips/module_db.hpp"
#include "dram/types.hpp"
#include "softmc/session.hpp"
#include "softmc/trace_recorder.hpp"

namespace vppstudy::softmc {
namespace {

dram::ModuleProfile small_profile() {
  auto p = chips::profile_by_name("B3").value();
  p.rows_per_bank = 4096;
  return p;
}

std::vector<TraceEntry> via_for_each(const CommandTraceRecorder& trace) {
  std::vector<TraceEntry> out;
  trace.for_each([&out](const TraceEntry& e) { out.push_back(e); });
  return out;
}

TEST(TraceRing, ExactCapacityFillStaysChronological) {
  Session s(small_profile());
  s.enable_trace(4);

  // Exactly four commands: the ring is full and next_ has wrapped to slot 0,
  // the one state where "storage order" and "chronological order" coincide
  // only if the wrap logic is right.
  Program p(s.timing());
  p.act(0, 1).rd(0, 0).rd(0, 1).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());

  ASSERT_EQ(s.trace()->size(), 4u);
  EXPECT_EQ(s.trace()->total_recorded(), 4u);
  const auto entries = s.trace()->entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].kind, dram::CommandKind::kActivate);
  EXPECT_EQ(entries[1].kind, dram::CommandKind::kRead);
  EXPECT_EQ(entries[1].column, 0u);
  EXPECT_EQ(entries[2].column, 1u);
  EXPECT_EQ(entries[3].kind, dram::CommandKind::kPrecharge);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i].at_ns, entries[i - 1].at_ns);
  }
  EXPECT_EQ(via_for_each(*s.trace()), entries);
}

TEST(TraceRing, OneCommandPastCapacityEvictsOnlyTheOldest) {
  Session s(small_profile());
  s.enable_trace(4);

  Program p(s.timing());
  p.act(0, 1).rd(0, 0).rd(0, 1).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());
  Program extra(s.timing());
  extra.act(0, 2);  // the fifth command overwrites slot 0 (the original ACT)
  ASSERT_TRUE(s.execute(extra).status.ok());

  EXPECT_EQ(s.trace()->total_recorded(), 5u);
  const auto entries = s.trace()->entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].kind, dram::CommandKind::kRead);
  EXPECT_EQ(entries[0].column, 0u);
  EXPECT_EQ(entries[3].kind, dram::CommandKind::kActivate);
  EXPECT_EQ(entries[3].row, 2u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i].at_ns, entries[i - 1].at_ns);
  }
  EXPECT_EQ(via_for_each(*s.trace()), entries);
}

TEST(TraceRing, PartialFillReportsInsertionOrder) {
  Session s(small_profile());
  s.enable_trace(8);
  Program p(s.timing());
  p.act(0, 3).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());

  EXPECT_EQ(s.trace()->size(), 2u);
  EXPECT_EQ(s.trace()->total_recorded(), 2u);
  const auto entries = s.trace()->entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].kind, dram::CommandKind::kActivate);
  EXPECT_EQ(entries[1].kind, dram::CommandKind::kPrecharge);
  EXPECT_EQ(via_for_each(*s.trace()), entries);
}

TEST(TraceRing, LastReturnsNewestSuffixOldestFirst) {
  Session s(small_profile());
  s.enable_trace(4);
  Program p(s.timing());
  p.act(0, 1).rd(0, 0).rd(0, 1).rd(0, 2).rd(0, 3).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());  // six commands through four slots

  const auto entries = s.trace()->entries();
  ASSERT_EQ(entries.size(), 4u);

  const auto last2 = s.trace()->last(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0], entries[2]);
  EXPECT_EQ(last2[1], entries[3]);

  EXPECT_TRUE(s.trace()->last(0).empty());
  // Asking for more than is retained clamps to the full ring.
  EXPECT_EQ(s.trace()->last(100), entries);
}

TEST(TraceRing, ClearResetsRingAndLifetimeTotal) {
  Session s(small_profile());
  s.enable_trace(2);
  Program p(s.timing());
  p.act(0, 1).rd(0, 0).pre(0);
  ASSERT_TRUE(s.execute(p).status.ok());
  EXPECT_EQ(s.trace()->total_recorded(), 3u);

  // enable_trace replaces the recorder wholesale; clear() is the in-place
  // equivalent exercised directly on a standalone ring.
  CommandTraceRecorder ring(2);
  Instruction inst;
  inst.kind = dram::CommandKind::kActivate;
  ring.on_command(inst, 1.0);
  ring.on_command(inst, 2.0);
  ring.on_command(inst, 3.0);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.total_recorded(), 3u);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.entries().empty());
  // Refilling after clear() starts a fresh chronology.
  ring.on_command(inst, 9.0);
  ASSERT_EQ(ring.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(ring.entries()[0].at_ns, 9.0);
}

}  // namespace
}  // namespace vppstudy::softmc
