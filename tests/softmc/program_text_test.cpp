#include "softmc/program_text.hpp"

#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "softmc/session.hpp"

namespace vppstudy::softmc {
namespace {

dram::Ddr4Timing timing() { return dram::timing_for_speed_grade(2400); }

TEST(ProgramText, RoundTripsEveryOpcode) {
  Program p(timing());
  std::array<std::uint8_t, 8> word{};
  word.fill(0xA5);
  p.act(0, 42).wr(0, 3, word).pre(0).ref().wait_ns(1234.5).hammer(1, 10, 12,
                                                                  5000);
  p.rd(0, 7, 6.0);

  const std::string text = program_to_text(p);
  auto parsed = program_from_text(text, timing());
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  const auto& a = p.instructions();
  const auto& b = parsed->instructions();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "instr " << i;
    EXPECT_EQ(a[i].bank, b[i].bank) << "instr " << i;
    EXPECT_EQ(a[i].row, b[i].row) << "instr " << i;
    EXPECT_EQ(a[i].column, b[i].column) << "instr " << i;
    EXPECT_EQ(a[i].write_data, b[i].write_data) << "instr " << i;
    EXPECT_EQ(a[i].slots_after_previous, b[i].slots_after_previous)
        << "instr " << i;
    EXPECT_EQ(a[i].loop_count, b[i].loop_count) << "instr " << i;
    EXPECT_DOUBLE_EQ(a[i].extra_wait_ns, b[i].extra_wait_ns) << "instr " << i;
  }
}

TEST(ProgramText, CommentsAndBlanksIgnored) {
  const char* text =
      "# a full test\n"
      "\n"
      "ACT 0 10   # open the row\n"
      "RD 0 0\n";
  auto p = program_from_text(text, timing());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->instructions().size(), 2u);
}

TEST(ProgramText, ErrorsCarryLineNumbers) {
  auto p = program_from_text("ACT 0 1\nBOGUS 3\n", timing());
  ASSERT_FALSE(p.has_value());
  EXPECT_NE(p.error().message.find("line 2"), std::string::npos);
}

TEST(ProgramText, MalformedOperandsRejected) {
  EXPECT_FALSE(program_from_text("ACT 0\n", timing()).has_value());
  EXPECT_FALSE(program_from_text("WR 0 0 zz\n", timing()).has_value());
  EXPECT_FALSE(program_from_text("WR 0 0 a5a5\n", timing()).has_value());
  EXPECT_FALSE(program_from_text("WAIT\n", timing()).has_value());
  EXPECT_FALSE(program_from_text("HAMMER 0 1 2\n", timing()).has_value());
}

TEST(ProgramText, ParsedProgramActuallyRuns) {
  auto profile = chips::profile_by_name("C0").value();
  profile.rows_per_bank = 1024;
  Session session(profile);
  const char* text =
      "ACT 0 100\n"
      "RD 0 0 @6.0\n"    // deliberate tRCD violation: 6ns after the ACT
      "WR 0 0 4242424242424242 @13.5\n"
      "PRE 0 @40\n";
  auto p = program_from_text(text, session.timing());
  ASSERT_TRUE(p.has_value()) << p.error().message;
  const auto result = session.execute(*p);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.reads.size(), 1u);
  EXPECT_GT(result.timing_violations, 0u);  // the 6ns read was flagged
}

}  // namespace
}  // namespace vppstudy::softmc
