#include "softmc/program.hpp"

#include <gtest/gtest.h>

namespace vppstudy::softmc {
namespace {

dram::Ddr4Timing timing() { return dram::timing_for_speed_grade(2400); }

TEST(Program, SlotsRoundUpToCommandGranularity) {
  EXPECT_EQ(Program::slots_for(1.5), 1u);
  EXPECT_EQ(Program::slots_for(1.6), 2u);
  EXPECT_EQ(Program::slots_for(13.5), 9u);
  EXPECT_EQ(Program::slots_for(0.0), 1u);
  EXPECT_EQ(Program::slots_for(-3.0), 1u);
}

TEST(Program, BuilderProducesExpectedSequence) {
  Program p(timing());
  p.act(0, 42).rd(0, 3).pre(0);
  const auto& ins = p.instructions();
  ASSERT_EQ(ins.size(), 3u);
  EXPECT_EQ(ins[0].kind, dram::CommandKind::kActivate);
  EXPECT_EQ(ins[0].row, 42u);
  EXPECT_EQ(ins[1].kind, dram::CommandKind::kRead);
  EXPECT_EQ(ins[1].column, 3u);
  // Default RD delay is the nominal tRCD (13.5ns -> 9 slots).
  EXPECT_EQ(ins[1].slots_after_previous, 9u);
  EXPECT_EQ(ins[2].kind, dram::CommandKind::kPrecharge);
}

TEST(Program, ExplicitDelaysOverrideDefaults) {
  Program p(timing());
  p.act(0, 1).rd(0, 0, /*delay_ns=*/6.0);
  EXPECT_EQ(p.instructions()[1].slots_after_previous, 4u);  // ceil(6/1.5)
}

TEST(Program, HammerCarriesLoopFields) {
  Program p(timing());
  p.hammer(2, 10, 12, 30000);
  const auto& i = p.instructions().front();
  EXPECT_EQ(i.loop_count, 30000u);
  EXPECT_EQ(i.row, 10u);
  EXPECT_EQ(i.loop_row_b, 12u);
  EXPECT_DOUBLE_EQ(i.loop_act_to_act_ns, timing().t_rc_ns);
}

TEST(Program, WaitCarriesExtraTime) {
  Program p(timing());
  p.wait_ns(64e6);
  EXPECT_DOUBLE_EQ(p.instructions().front().extra_wait_ns, 64e6);
  EXPECT_EQ(p.instructions().front().kind, dram::CommandKind::kNop);
}

}  // namespace
}  // namespace vppstudy::softmc
