// Tests for the deterministic fault injector: plan-spec parsing round-trips,
// the documented FaultKind -> ErrorCode mapping (asserted against a live
// session per kind), determinism of the injection log under a fixed seed,
// and the re-salting semantics of retry attempts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chips/module_db.hpp"
#include "common/error.hpp"
#include "dram/data_pattern.hpp"
#include "softmc/fault_injector.hpp"
#include "softmc/session.hpp"

namespace vppstudy::softmc {
namespace {

dram::ModuleProfile small_profile() {
  auto p = chips::profile_by_name("B3").value();
  p.rows_per_bank = 4096;
  return p;
}

std::vector<std::uint8_t> test_image() {
  return dram::pattern_row(dram::DataPattern::kCheckerAA, dram::kBytesPerRow);
}

// Shared scratch for lambdas that need ASSERT_* (which injects `return;`)
// yet must hand results back to the enclosing test.
std::vector<FaultInjector::InjectionEvent> log_;
FaultInjector::InjectionCounts counts_;

TEST(FaultPlan, ParsesEveryClauseForm) {
  const auto plan = FaultPlan::parse(
      "seed=42;drop_act=0.001;flip_read=0.0005,bits=2;"
      "delay_pre@7,ns=12.5;spurious@5000,code=kThermalTimeout");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->rules.size(), 4u);
  EXPECT_EQ(plan->rules[0].kind, FaultKind::kDropAct);
  EXPECT_DOUBLE_EQ(plan->rules[0].probability, 0.001);
  EXPECT_EQ(plan->rules[0].at_command, FaultRule::kNoSchedule);
  EXPECT_EQ(plan->rules[1].kind, FaultKind::kFlipReadBits);
  EXPECT_EQ(plan->rules[1].bits, 2u);
  EXPECT_EQ(plan->rules[2].kind, FaultKind::kDelayPre);
  EXPECT_EQ(plan->rules[2].at_command, 7u);
  EXPECT_DOUBLE_EQ(plan->rules[2].delay_ns, 12.5);
  EXPECT_EQ(plan->rules[3].kind, FaultKind::kSpuriousError);
  EXPECT_EQ(plan->rules[3].at_command, 5000u);
  EXPECT_EQ(plan->rules[3].code, common::ErrorCode::kThermalTimeout);
}

TEST(FaultPlan, ToStringParseRoundTrips) {
  const auto plan = FaultPlan::parse(
      "seed=7;dup_act=0.25;drop_read@3;flip_read=0.5,bits=8;"
      "delay_pre=0.1,ns=20;spurious=0.01,code=kDeviceProtocol");
  ASSERT_TRUE(plan.has_value());
  const auto reparsed = FaultPlan::parse(plan->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*plan, *reparsed);
  EXPECT_EQ(plan->to_string(), reparsed->to_string());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  for (const char* bad :
       {"bogus_kind=0.1", "drop_act", "drop_act=1.5", "drop_act=-0.1",
        "flip_read=0.1,bits=0", "flip_read=0.1,bits=65",
        "delay_pre=0.1,ns=-5", "spurious=0.1,code=kNotACode",
        "drop_act=0.1,wat=3"}) {
    const auto plan = FaultPlan::parse(bad);
    ASSERT_FALSE(plan.has_value()) << bad;
    EXPECT_EQ(plan.error().code, common::ErrorCode::kParseError) << bad;
  }
}

TEST(FaultPlan, EmptySpecIsCleanPlan) {
  const auto plan = FaultPlan::parse("seed=9");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
}

TEST(FaultInjector, DocumentedErrorCodeMapping) {
  EXPECT_EQ(expected_error_code(FaultKind::kDropAct),
            common::ErrorCode::kDeviceProtocol);
  EXPECT_EQ(expected_error_code(FaultKind::kDuplicateAct),
            common::ErrorCode::kDeviceProtocol);
  EXPECT_EQ(expected_error_code(FaultKind::kDropRead),
            common::ErrorCode::kReadUnderrun);
  EXPECT_EQ(expected_error_code(FaultKind::kFlipReadBits),
            common::ErrorCode::kUnknown);
  EXPECT_EQ(expected_error_code(FaultKind::kDelayPre),
            common::ErrorCode::kUnknown);
  EXPECT_EQ(expected_error_code(FaultKind::kSpuriousError),
            common::ErrorCode::kModuleUnresponsive);
}

TEST(FaultInjector, DroppedActSurfacesDeviceProtocol) {
  Session s(small_profile());
  FaultInjector inj(FaultPlan::parse("seed=1;drop_act@0").value());
  s.set_fault_injector(&inj);

  // The first command of init_row is the ACT; dropping it leaves the bank
  // closed, so the first WR is rejected by the device.
  const auto status = s.init_row(0, 10, test_image());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, expected_error_code(FaultKind::kDropAct));
  EXPECT_EQ(inj.counts().dropped_acts, 1u);
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].kind, FaultKind::kDropAct);
  EXPECT_EQ(inj.log()[0].command_index, 0u);
}

TEST(FaultInjector, DuplicatedActSurfacesDeviceProtocol) {
  Session s(small_profile());
  FaultInjector inj(FaultPlan::parse("seed=1;dup_act@0").value());
  s.set_fault_injector(&inj);

  // The duplicated ACT lands on the bank it just opened.
  const auto status = s.init_row(0, 10, test_image());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code,
            expected_error_code(FaultKind::kDuplicateAct));
  EXPECT_EQ(inj.counts().duplicated_acts, 1u);
}

TEST(FaultInjector, DroppedReadSurfacesReadUnderrun) {
  Session s(small_profile());
  ASSERT_TRUE(s.init_row(0, 10, test_image()).ok());

  FaultInjector inj(FaultPlan::parse("seed=1;drop_read=1").value());
  s.set_fault_injector(&inj);
  const auto row = s.read_row(0, 10);
  ASSERT_FALSE(row.has_value());
  EXPECT_EQ(row.error().code, expected_error_code(FaultKind::kDropRead));
  EXPECT_GT(inj.counts().dropped_reads, 0u);
}

TEST(FaultInjector, FlippedReadBitsAreSilentCorruption) {
  Session s(small_profile());
  const auto image = test_image();
  ASSERT_TRUE(s.init_row(0, 10, image).ok());

  FaultInjector inj(FaultPlan::parse("seed=1;flip_read=1,bits=2").value());
  s.set_fault_injector(&inj);
  const auto row = s.read_row(0, 10);
  ASSERT_TRUE(row.has_value());  // no typed error: the rig lies silently
  EXPECT_NE(*row, image);
  EXPECT_EQ(inj.counts().corrupted_reads,
            static_cast<std::uint64_t>(dram::kColumnsPerRow));
  EXPECT_EQ(inj.counts().flipped_bits, 2u * dram::kColumnsPerRow);

  // Without the injector the same read is clean: the corruption never
  // touched the stored array.
  s.set_fault_injector(nullptr);
  const auto clean = s.read_row(0, 10);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(*clean, image);
}

TEST(FaultInjector, DelayedPreTripsTrpWithoutTypedError) {
  Session s(small_profile());
  FaultInjector inj(FaultPlan::parse("seed=1;delay_pre=1,ns=11").value());
  s.set_fault_injector(&inj);

  Program p(s.timing());
  p.act(0, 1).pre(0).act(0, 2).pre(0);
  const auto result = s.execute(p);
  EXPECT_TRUE(result.status.ok());  // silent: only the checker notices
  EXPECT_GT(inj.counts().delayed_pres, 0u);
  ASSERT_FALSE(s.violations().empty());
  bool saw_trp = false;
  for (const auto& v : s.violations()) saw_trp |= v.rule == "tRP";
  EXPECT_TRUE(saw_trp);
}

TEST(FaultInjector, SpuriousErrorSurfacesConfiguredCode) {
  Session s(small_profile());
  FaultInjector inj(
      FaultPlan::parse("seed=1;spurious@2,code=kThermalTimeout").value());
  s.set_fault_injector(&inj);

  const auto status = s.init_row(0, 10, test_image());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::ErrorCode::kThermalTimeout);
  EXPECT_EQ(inj.counts().spurious_errors, 1u);
}

TEST(FaultInjector, SameSeedSameCommandsSameInjectionLog) {
  const auto plan =
      FaultPlan::parse("seed=33;drop_read=0.01;flip_read=0.02").value();
  auto run = [&plan]() {
    Session s(small_profile());
    FaultInjector inj(plan);
    ASSERT_TRUE(s.init_row(0, 10, test_image()).ok());
    s.set_fault_injector(&inj);
    (void)s.read_row(0, 10);
    s.set_fault_injector(nullptr);
    // Copy out before `inj` dies.
    log_ = inj.log();
    counts_ = inj.counts();
  };
  run();
  const auto first_log = log_;
  const auto first_counts = counts_;
  run();
  EXPECT_FALSE(first_log.empty());
  EXPECT_EQ(first_log, log_);
  EXPECT_EQ(first_counts, counts_);
}

TEST(FaultInjector, AttemptResaltsProbabilisticDraws) {
  const auto plan = FaultPlan::parse("seed=5;drop_read=0.5").value();
  FaultInjector inj(plan);

  auto read_with_attempt = [&inj](std::uint32_t attempt) {
    Session s(small_profile());
    ASSERT_TRUE(s.init_row(0, 10, test_image()).ok());
    inj.set_attempt(attempt);
    s.set_fault_injector(&inj);
    (void)s.read_row(0, 10);
    s.set_fault_injector(nullptr);
    log_ = inj.log();
  };

  read_with_attempt(0);
  const auto attempt0 = log_;
  read_with_attempt(1);
  const auto attempt1 = log_;
  read_with_attempt(0);
  // Same attempt replays identically; a different attempt draws a different
  // fault set (over ~1k reads at p=0.5, identical sets are impossible in
  // practice and this is deterministic either way).
  EXPECT_EQ(log_, attempt0);
  EXPECT_NE(attempt0, attempt1);
}

TEST(FaultInjector, SetAttemptResetsAccounting) {
  FaultInjector inj(FaultPlan::parse("seed=1;drop_act@0").value());
  Session s(small_profile());
  s.set_fault_injector(&inj);
  ASSERT_FALSE(s.init_row(0, 10, test_image()).ok());
  EXPECT_GT(inj.commands_seen(), 0u);
  EXPECT_FALSE(inj.log().empty());

  inj.set_attempt(1);
  EXPECT_EQ(inj.attempt(), 1u);
  EXPECT_EQ(inj.commands_seen(), 0u);
  EXPECT_TRUE(inj.log().empty());
  EXPECT_EQ(inj.counts(), FaultInjector::InjectionCounts{});

  // Scheduled rules key off the absolute command index, so the same fault
  // fires at the same place on every attempt.
  ASSERT_FALSE(s.init_row(0, 10, test_image()).ok());
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].command_index, 0u);
}

}  // namespace
}  // namespace vppstudy::softmc
