#include "softmc/session.hpp"

#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "common/units.hpp"
#include "dram/data_pattern.hpp"

namespace vppstudy::softmc {
namespace {

dram::ModuleProfile small_profile(const char* name = "B3") {
  auto p = chips::profile_by_name(name).value();
  p.rows_per_bank = 4096;
  return p;
}

TEST(Session, InitAndReadRowRoundTrips) {
  Session s(small_profile());
  const auto image = dram::pattern_row(dram::DataPattern::kThickCC,
                                       dram::kBytesPerRow);
  ASSERT_TRUE(s.init_row(0, 100, image).ok());
  auto read = s.read_row(0, 100);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, image);
  EXPECT_EQ(s.violations().size(), 0u);
}

TEST(Session, ClockAdvancesMonotonically) {
  Session s(small_profile());
  const double t0 = s.clock_ns();
  const auto image = dram::pattern_row(dram::DataPattern::kAllOnes,
                                       dram::kBytesPerRow);
  ASSERT_TRUE(s.init_row(0, 1, image).ok());
  EXPECT_GT(s.clock_ns(), t0);
  ASSERT_TRUE(s.wait_ms(2.0).ok());
  EXPECT_GT(s.clock_ns(), t0 + 2e6);
}

TEST(Session, SetVppFailsBelowVppmin) {
  Session s(small_profile());  // B3: VPPmin 1.6V
  EXPECT_TRUE(s.set_vpp(1.7).ok());
  EXPECT_FALSE(s.set_vpp(1.5).ok());
  EXPECT_FALSE(s.set_vpp(9.0).ok());  // outside instrument range
}

TEST(Session, SetTemperatureReachesSetpoint) {
  Session s(small_profile());
  ASSERT_TRUE(s.set_temperature(80.0).ok());
  EXPECT_NEAR(s.temperature(), 80.0, 0.15);
  EXPECT_NEAR(s.module().temperature(), 80.0, 0.15);
}

TEST(Session, ReadColumnWithReducedTrcdViolatesTimingOnPurpose) {
  Session s(small_profile("A0"));
  const auto image = dram::pattern_row(dram::DataPattern::kCheckerAA,
                                       dram::kBytesPerRow);
  ASSERT_TRUE(s.init_row(0, 50, image).ok());
  s.clear_violations();
  auto word = s.read_column_with_trcd(0, 50, 3, 6.0);
  ASSERT_TRUE(word.has_value());
  // The checker flags the deliberate tRCD violation...
  bool flagged = false;
  for (const auto& v : s.violations()) flagged |= (v.rule == "tRCD");
  EXPECT_TRUE(flagged);
  // ...and the device returns corrupted data at 6ns on this module.
  std::array<std::uint8_t, dram::kBytesPerColumn> expected{};
  expected.fill(0xAA);
  EXPECT_NE(*word, expected);
}

TEST(Session, HammerDoubleSidedFlipsVictimBits) {
  Session s(small_profile());
  s.module().set_trr_enabled(false);
  const std::uint32_t victim = 500;
  const auto n = s.module().mapping().physical_neighbors(victim);
  ASSERT_TRUE(n.valid);
  const auto vimg = dram::pattern_row(dram::DataPattern::kCheckerAA,
                                      dram::kBytesPerRow);
  const auto aimg = dram::pattern_row(dram::DataPattern::kChecker55,
                                      dram::kBytesPerRow);
  ASSERT_TRUE(s.init_row(0, victim, vimg).ok());
  ASSERT_TRUE(s.init_row(0, n.below, aimg).ok());
  ASSERT_TRUE(s.init_row(0, n.above, aimg).ok());
  ASSERT_TRUE(s.hammer_double_sided(0, n.below, n.above, 300'000).ok());
  auto observed = s.read_row(0, victim);
  ASSERT_TRUE(observed.has_value());
  EXPECT_NE(*observed, vimg);
}

TEST(Session, ExecuteCollectsReads) {
  Session s(small_profile());
  const auto image = dram::pattern_row(dram::DataPattern::kAllOnes,
                                       dram::kBytesPerRow);
  ASSERT_TRUE(s.init_row(0, 9, image).ok());
  Program p(s.timing());
  p.act(0, 9).rd(0, 0).rd(0, 1, 3.0).pre(0);
  const auto result = s.execute(p);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.reads.size(), 2u);
  for (const auto& burst : result.reads) {
    for (const auto b : burst) EXPECT_EQ(b, 0xFF);
  }
}

TEST(Session, ExecuteAbortsOnDeviceError) {
  Session s(small_profile());
  Program p(s.timing());
  p.rd(0, 0);  // read with no open row
  const auto result = s.execute(p);
  EXPECT_FALSE(result.status.ok());
}

TEST(Session, WaitWithAutoRefreshIssuesRefs) {
  Session s(small_profile());
  s.set_auto_refresh(true);
  const auto refs_before = s.module().stats().refreshes;
  ASSERT_TRUE(s.wait_ms(1.0).ok());
  // 1ms / 7.8us tREFI: ~128 REF commands.
  const auto refs = s.module().stats().refreshes - refs_before;
  EXPECT_GT(refs, 100u);
  EXPECT_LT(refs, 160u);
}

TEST(Session, WaitWithoutRefreshIssuesNone) {
  Session s(small_profile());
  s.set_auto_refresh(false);
  ASSERT_TRUE(s.wait_ms(5.0).ok());
  EXPECT_EQ(s.module().stats().refreshes, 0u);
}

/// Hammer + marginal-tRCD reads + a long wait: enough activity to dirty the
/// device, clock, counters, and timing history. Returns the victim's bytes.
std::vector<std::uint8_t> dirty_the_rig(Session& s) {
  EXPECT_TRUE(s.set_temperature(85.0).ok());
  EXPECT_TRUE(s.set_vpp(1.7).ok());
  s.set_noise_stream(123);
  s.module().set_trr_enabled(false);
  const auto image =
      dram::pattern_row(dram::DataPattern::kCheckerAA, dram::kBytesPerRow);
  EXPECT_TRUE(s.init_row(0, 500, image).ok());
  EXPECT_TRUE(s.hammer_double_sided(0, 499, 501, 200000).ok());
  (void)s.read_column_with_trcd(0, 500, 3, 6.0);
  EXPECT_TRUE(s.wait_ms(200.0).ok());
  auto bytes = s.read_row(0, 500);
  EXPECT_TRUE(bytes.has_value());
  return bytes.has_value() ? *bytes : std::vector<std::uint8_t>{};
}

TEST(Session, ResetForJobMatchesFreshSessionBitForBit) {
  // The sweep engine's arena reuse stands on this: a session that already ran
  // a full (and deliberately messy) job, once reset, must reproduce a fresh
  // session's run exactly -- same bytes, same stats, same counters, same
  // recorded violations, same clock.
  Session reused(small_profile());
  (void)dirty_the_rig(reused);
  reused.enable_trace();
  reused.reset_for_job();

  Session fresh(small_profile());
  const auto fresh_bytes = dirty_the_rig(fresh);
  const auto reused_bytes = dirty_the_rig(reused);

  EXPECT_EQ(fresh_bytes, reused_bytes);
  EXPECT_TRUE(fresh.module().stats() == reused.module().stats());
  EXPECT_EQ(fresh.counters(), reused.counters());
  EXPECT_EQ(fresh.violations().size(), reused.violations().size());
  EXPECT_DOUBLE_EQ(fresh.clock_ns(), reused.clock_ns());
  EXPECT_EQ(reused.trace(), nullptr);  // reset detaches instrumentation
}

TEST(Session, ResetForJobRestoresRigDefaults) {
  Session s(small_profile());
  ASSERT_TRUE(s.set_vpp(2.0).ok());
  ASSERT_TRUE(s.set_temperature(80.0).ok());
  s.set_auto_refresh(true);
  ASSERT_TRUE(s.wait_ms(1.0).ok());
  ASSERT_GT(s.clock_ns(), 0.0);

  s.reset_for_job();
  EXPECT_DOUBLE_EQ(s.vpp(), common::kNominalVppV);
  EXPECT_DOUBLE_EQ(s.clock_ns(), 0.0);
  EXPECT_EQ(s.counters().total_commands(), 0u);
  EXPECT_EQ(s.module().stats().refreshes, 0u);
  // Auto-refresh is off again: a long wait issues no REFs.
  ASSERT_TRUE(s.wait_ms(5.0).ok());
  EXPECT_EQ(s.module().stats().refreshes, 0u);
}

}  // namespace
}  // namespace vppstudy::softmc
