#include "chips/module_db.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vppstudy::chips {
namespace {

using dram::Manufacturer;

TEST(ModuleDb, ThirtyModulesTenPerVendor) {
  const auto& all = all_profiles();
  EXPECT_EQ(all.size(), 30u);
  int a = 0, b = 0, c = 0;
  for (const auto& p : all) {
    switch (p.mfr) {
      case Manufacturer::kMfrA: ++a; break;
      case Manufacturer::kMfrB: ++b; break;
      case Manufacturer::kMfrC: ++c; break;
    }
  }
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, 10);
  EXPECT_EQ(c, 10);
}

TEST(ModuleDb, TwoHundredSeventyTwoChips) {
  EXPECT_EQ(total_chip_count(), 272);  // the paper's headline chip count
}

TEST(ModuleDb, NamesUniqueAndLookupsWork) {
  std::set<std::string> names;
  for (const auto& p : all_profiles()) {
    EXPECT_TRUE(names.insert(p.name).second);
  }
  EXPECT_TRUE(profile_by_name("B3").has_value());
  EXPECT_TRUE(profile_by_name("C9").has_value());
  EXPECT_FALSE(profile_by_name("D0").has_value());
  EXPECT_EQ(profile_by_name("A5")->dimm_model, "CT4G4SFS8213.C8FBD1");
}

TEST(ModuleDb, Table3AnchorsSpotChecks) {
  const auto b3 = profile_by_name("B3").value();
  EXPECT_DOUBLE_EQ(b3.hc_first_nominal, 16.6e3);
  EXPECT_DOUBLE_EQ(b3.ber_nominal, 2.73e-3);
  EXPECT_DOUBLE_EQ(b3.vppmin_v, 1.6);
  EXPECT_DOUBLE_EQ(b3.hc_first_vppmin, 21.1e3);

  const auto a5 = profile_by_name("A5").value();
  EXPECT_DOUBLE_EQ(a5.hc_first_nominal, 140.7e3);  // oldest, strongest chip
  EXPECT_DOUBLE_EQ(a5.vppmin_v, 2.4);              // highest VPPmin

  const auto a0 = profile_by_name("A0").value();
  EXPECT_DOUBLE_EQ(a0.vppmin_v, 1.4);  // lowest VPPmin (section 7)
}

TEST(ModuleDb, AnchorsAreInternallyConsistent) {
  for (const auto& p : all_profiles()) {
    EXPECT_GT(p.hc_first_nominal, 0.0) << p.name;
    EXPECT_GT(p.ber_nominal, 0.0) << p.name;
    EXPECT_GE(p.vppmin_v, 1.4) << p.name;
    EXPECT_LE(p.vppmin_v, 2.4) << p.name;
    EXPECT_GE(p.vpp_rec_v, p.vppmin_v) << p.name;
    EXPECT_LE(p.vpp_rec_v, 2.5) << p.name;
    EXPECT_GT(p.rows_per_bank, 0u) << p.name;
    EXPECT_TRUE(p.num_chips == 8 || p.num_chips == 16) << p.name;
    EXPECT_NE(p.seed, 0u) << p.name;
  }
}

TEST(ModuleDb, SeedsAreUniquePerModule) {
  std::set<std::uint64_t> seeds;
  for (const auto& p : all_profiles()) {
    EXPECT_TRUE(seeds.insert(p.seed).second) << p.name;
  }
}

TEST(ModuleDb, TrcdCalibrationMatchesFig7Structure) {
  // Only A0-A2 (24ns class) and B2/B5 (15ns class) may exceed the nominal
  // 13.5ns at their VPPmin; everyone else must stay below it.
  for (const auto& p : all_profiles()) {
    const double worst = p.trcd0_ns + p.trcd_vpp_slope_ns;
    const bool exceeds = worst > 13.5;
    const bool expected_exceed = p.name == "A0" || p.name == "A1" ||
                                 p.name == "A2" || p.name == "B2" ||
                                 p.name == "B5";
    EXPECT_EQ(exceeds, expected_exceed) << p.name << " worst=" << worst;
    if (expected_exceed) {
      const double cap = (p.name[0] == 'A') ? 24.0 : 15.0;
      EXPECT_LE(worst, cap) << p.name;
    }
  }
}

TEST(ModuleDb, FailingChipCountsMatchPaper) {
  // 48 chips fixed by tRCD=24ns (A0-A2, 16 chips each), 16 by 15ns (B2/B5).
  int chips_24 = 0, chips_15 = 0, chips_ok = 0;
  for (const auto& p : all_profiles()) {
    const double worst = p.trcd0_ns + p.trcd_vpp_slope_ns;
    if (worst > 13.5) {
      (p.mfr == Manufacturer::kMfrA ? chips_24 : chips_15) += p.num_chips;
    } else {
      chips_ok += p.num_chips;
    }
  }
  EXPECT_EQ(chips_24, 48);
  EXPECT_EQ(chips_15, 16);
  EXPECT_EQ(chips_ok, 208);  // Obsv. 7: 208 of 272 chips
}

TEST(ModuleDb, RetentionWeakClassesMatchObsv13) {
  // 64ms failures at VPPmin: exactly B6/B8/B9 and C1/C3/C5/C9 (7 modules).
  std::set<std::string> weak64;
  for (const auto& p : all_profiles()) {
    if (p.weak_64ms.row_fraction > 0.0) weak64.insert(p.name);
  }
  EXPECT_EQ(weak64, (std::set<std::string>{"B6", "B8", "B9", "C1", "C3", "C5",
                                           "C9"}));
  // Every module carries a (small) 128ms class.
  for (const auto& p : all_profiles()) {
    EXPECT_GT(p.weak_128ms.row_fraction, 0.0) << p.name;
    EXPECT_GE(p.weak_128ms.t_ret_lo_ms, 64.0) << p.name;
    EXPECT_LE(p.weak_128ms.t_ret_hi_ms, 128.0) << p.name;
  }
}

TEST(ModuleDb, DensityGeometryConsistent) {
  for (const auto& p : all_profiles()) {
    switch (p.density_gbit) {
      case 4: EXPECT_EQ(p.rows_per_bank, 32768u) << p.name; break;
      case 8: EXPECT_EQ(p.rows_per_bank, 65536u) << p.name; break;
      case 16: EXPECT_EQ(p.rows_per_bank, 131072u) << p.name; break;
      default: ADD_FAILURE() << "unexpected density for " << p.name;
    }
  }
}

TEST(ModuleDb, NoTestedModuleHasOnDieEcc) {
  // Section 4.1: modules are selected without ECC so nothing masks flips.
  for (const auto& p : all_profiles()) {
    EXPECT_FALSE(p.has_ondie_ecc) << p.name;
  }
}

}  // namespace
}  // namespace vppstudy::chips
