#include "dram/module.hpp"

#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "dram/data_pattern.hpp"

namespace vppstudy::dram {
namespace {

ModuleProfile small_profile() {
  auto p = chips::profile_by_name("B3").value();
  p.rows_per_bank = 4096;  // keep tests snappy
  return p;
}

std::array<std::uint8_t, kBytesPerColumn> word_of(std::uint8_t b) {
  std::array<std::uint8_t, kBytesPerColumn> w{};
  w.fill(b);
  return w;
}

TEST(Module, WriteThenReadRoundTrips) {
  Module m(small_profile());
  double t = 0.0;
  ASSERT_TRUE(m.activate(0, 100, t).ok());
  t += 13.5;
  const auto w = word_of(0x5A);
  ASSERT_TRUE(m.write(0, 7, w, t).ok());
  t += 5.0;
  auto r = m.read(0, 7, t);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, w);
}

TEST(Module, ActOnOpenBankRejected) {
  Module m(small_profile());
  ASSERT_TRUE(m.activate(0, 100, 0.0).ok());
  const auto st = m.activate(0, 101, 50.0);
  EXPECT_FALSE(st.ok());
}

TEST(Module, ReadWithoutOpenRowRejected) {
  Module m(small_profile());
  EXPECT_FALSE(m.read(0, 0, 0.0).has_value());
  EXPECT_FALSE(m.write(0, 0, word_of(0), 0.0).ok());
}

TEST(Module, PrechargeThenReactivateWorks) {
  Module m(small_profile());
  double t = 0.0;
  ASSERT_TRUE(m.activate(0, 100, t).ok());
  t += 35.0;
  ASSERT_TRUE(m.precharge(0, t).ok());
  t += 13.5;
  EXPECT_TRUE(m.activate(0, 101, t).ok());
}

TEST(Module, OutOfRangeAddressesRejected) {
  Module m(small_profile());
  EXPECT_FALSE(m.activate(99, 0, 0.0).ok());
  EXPECT_FALSE(m.activate(0, 1u << 30, 0.0).ok());
  ASSERT_TRUE(m.activate(0, 0, 0.0).ok());
  EXPECT_FALSE(m.read(0, kColumnsPerRow, 20.0).has_value());
}

TEST(Module, UnresponsiveBelowVppmin) {
  auto profile = small_profile();  // B3: VPPmin = 1.6V
  Module m(std::move(profile));
  m.set_vpp(1.5);
  EXPECT_FALSE(m.responsive());
  EXPECT_FALSE(m.activate(0, 0, 0.0).ok());
  m.set_vpp(1.6);
  EXPECT_TRUE(m.responsive());
  EXPECT_TRUE(m.activate(0, 0, 0.0).ok());
}

TEST(Module, DataSurvivesShortIdlePeriods) {
  Module m(small_profile());
  double t = 0.0;
  ASSERT_TRUE(m.activate(0, 200, t).ok());
  ASSERT_TRUE(m.write(0, 0, word_of(0xC3), t + 14.0).ok());
  ASSERT_TRUE(m.precharge(0, t + 50.0).ok());
  // 30ms idle at 50C: no retention flips expected (tests run within the
  // refresh window; section 4.1).
  t += 30e6;
  ASSERT_TRUE(m.activate(0, 200, t).ok());
  auto r = m.read(0, 0, t + 13.5);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, word_of(0xC3));
}

TEST(Module, HammerPairCausesFlipsInVictim) {
  Module m(small_profile());
  m.set_trr_enabled(false);
  const std::uint32_t victim = 500;
  const auto n = m.mapping().physical_neighbors(victim);
  ASSERT_TRUE(n.valid);

  double t = 0.0;
  // Victim stores the pattern; aggressors its inverse.
  const auto fill_row = [&](std::uint32_t row, std::uint8_t value) {
    ASSERT_TRUE(m.activate(0, row, t).ok());
    t += 13.5;
    for (std::uint32_t c = 0; c < kColumnsPerRow; ++c) {
      ASSERT_TRUE(m.write(0, c, word_of(value), t).ok());
      t += 3.0;
    }
    t += 20.0;
    ASSERT_TRUE(m.precharge(0, t).ok());
    t += 13.5;
  };
  fill_row(victim, 0xAA);
  fill_row(n.below, 0x55);
  fill_row(n.above, 0x55);

  // Hammer well above this module's HCfirst anchor (16.6K).
  ASSERT_TRUE(m.hammer_pair(0, n.below, n.above, 300'000, 45.5, t).ok());

  const auto data = m.debug_row_snapshot(0, victim, t);
  std::uint64_t flips = 0;
  for (const auto b : data) {
    flips += static_cast<std::uint64_t>(__builtin_popcount(
        static_cast<unsigned>(b ^ 0xAA)));
  }
  EXPECT_GT(flips, 0u);
  EXPECT_GT(m.stats().hammer_bit_flips, 0u);
  // And flips are at consistently predictable locations: re-running the same
  // experiment on a fresh module reproduces the same flipped bytes.
  Module m2(small_profile());
  m2.set_trr_enabled(false);
  double t2 = 0.0;
  const auto fill2 = [&](std::uint32_t row, std::uint8_t value) {
    ASSERT_TRUE(m2.activate(0, row, t2).ok());
    t2 += 13.5;
    for (std::uint32_t c = 0; c < kColumnsPerRow; ++c) {
      ASSERT_TRUE(m2.write(0, c, word_of(value), t2).ok());
      t2 += 3.0;
    }
    t2 += 20.0;
    ASSERT_TRUE(m2.precharge(0, t2).ok());
    t2 += 13.5;
  };
  fill2(victim, 0xAA);
  fill2(n.below, 0x55);
  fill2(n.above, 0x55);
  ASSERT_TRUE(m2.hammer_pair(0, n.below, n.above, 300'000, 45.5, t2).ok());
  EXPECT_EQ(m2.debug_row_snapshot(0, victim, t2), data);
}

TEST(Module, HammerBelowFloorCausesNoFlips) {
  Module m(small_profile());
  m.set_trr_enabled(false);
  const std::uint32_t victim = 600;
  const auto n = m.mapping().physical_neighbors(victim);
  ASSERT_TRUE(n.valid);
  double t = 0.0;
  ASSERT_TRUE(m.activate(0, victim, t).ok());
  ASSERT_TRUE(m.write(0, 0, word_of(0xAA), t + 14).ok());
  ASSERT_TRUE(m.precharge(0, t + 50).ok());
  t += 100.0;
  // 1K activations per side: far below the 16.6K HCfirst anchor.
  ASSERT_TRUE(m.hammer_pair(0, n.below, n.above, 1000, 45.5, t).ok());
  EXPECT_EQ(m.stats().hammer_bit_flips, 0u);
}

TEST(Module, RefreshPreventsRetentionDecay) {
  auto profile = small_profile();
  Module m(std::move(profile));
  m.set_temperature(80.0);
  double t = 0.0;
  ASSERT_TRUE(m.activate(0, 50, t).ok());
  ASSERT_TRUE(m.write(0, 0, word_of(0xFF), t + 14).ok());
  ASSERT_TRUE(m.precharge(0, t + 50).ok());
  t += 100.0;
  // Refresh the whole device repeatedly over a long period: every row is
  // visited every 8192 REFs, so issue them densely and verify no decay.
  for (int i = 0; i < 8192; ++i) {
    ASSERT_TRUE(m.refresh(t).ok());
    t += 7800.0;
  }
  EXPECT_GT(m.stats().refreshes, 8000u);
}

// Regression for the refresh-stripe wrap bug: refresh() iterated
// `refresh_cursor_ + r` without reducing modulo rows_per_bank, so when the
// stripe reached past the end of the bank -- e.g. an MRS switching to FGR 2x
// widened it while the cursor sat at the last 1x position -- the wrapped tail
// rows (physical 0, 1, ...) were silently skipped for that cycle.
//
// Detection uses the neighbor-activation snapshots sensing takes: a REF that
// visits physical row 0 between two sub-threshold hammer phases absorbs the
// first phase's disturbance into a fresh snapshot, so the final sense sees
// only the second phase (below the deterministic flip floor -> zero flips).
// If the REF skips row 0, the phases add up past the floor and bits flip.
TEST(Module, RefreshStripeWrapsAroundBankEnd) {
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 16384;  // stripe 2 at 1x refresh, 4 under FGR 2x

  // Single-sided hammer on the physical neighbor of row 0: the victim's
  // effective count is half the aggressor activations.
  const auto victim_flips = [&](std::uint64_t aggressor_acts) -> int {
    Module m(profile);
    m.set_trr_enabled(false);
    const std::uint32_t victim = m.mapping().physical_to_logical(0);
    const std::uint32_t agg1 = m.mapping().physical_to_logical(1);
    const std::uint32_t agg3 = m.mapping().physical_to_logical(3);
    double t = 100.0;
    const auto before = m.debug_row_snapshot(0, victim, t);
    EXPECT_TRUE(m.hammer_pair(0, agg1, agg3, aggressor_acts, 46.0, t).ok());
    const auto after = m.debug_row_snapshot(0, victim, t);
    int flips = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      flips += __builtin_popcount(
          static_cast<unsigned>(before[i] ^ after[i]));
    }
    return flips;
  };

  // Calibrate: the smallest activation count that flips this victim. The
  // flip floor is a hard threshold, so any count below ~80% of this is
  // deterministically flip-free.
  std::uint64_t acts_flip = 20000;
  while (victim_flips(acts_flip) == 0) {
    acts_flip = acts_flip + acts_flip / 4;
    ASSERT_LT(acts_flip, 10'000'000u) << "no flips found during calibration";
  }
  const std::uint64_t phase_acts = acts_flip / 2;

  // The scenario: park the refresh cursor at the last 1x stripe position,
  // widen the stripe with FGR 2x, hammer, REF (must wrap onto rows 0 and 1),
  // hammer again, sense.
  Module m(profile);
  m.set_trr_enabled(false);
  const std::uint32_t victim = m.mapping().physical_to_logical(0);
  const std::uint32_t agg1 = m.mapping().physical_to_logical(1);
  const std::uint32_t agg3 = m.mapping().physical_to_logical(3);
  double t = 100.0;
  const auto initial = m.debug_row_snapshot(0, victim, t);
  for (int i = 0; i < 8191; ++i) {  // cursor: 8191 * 2 = 16382
    ASSERT_TRUE(m.refresh(t).ok());
    t += 200.0;
  }
  ModeRegisters fgr;
  fgr.refresh_mode = RefreshMode::kFgr2x;
  ASSERT_TRUE(m.load_mode_register(4, encode_mr4(fgr), t).ok());

  ASSERT_TRUE(m.hammer_pair(0, agg1, agg3, phase_acts, 46.0, t).ok());
  ASSERT_TRUE(m.refresh(t).ok());  // covers 16382, 16383, -> 0, 1
  ASSERT_TRUE(m.hammer_pair(0, agg1, agg3, phase_acts, 46.0, t).ok());

  const auto final_bytes = m.debug_row_snapshot(0, victim, t);
  EXPECT_EQ(initial, final_bytes)
      << "REF did not wrap onto physical row 0: the two sub-threshold "
         "hammer phases accumulated into a super-threshold disturbance";
  EXPECT_EQ(m.stats().hammer_bit_flips, 0u);
}

TEST(Module, RefreshRequiresPrechargedBanks) {
  Module m(small_profile());
  ASSERT_TRUE(m.activate(0, 1, 0.0).ok());
  EXPECT_FALSE(m.refresh(40.0).ok());
  ASSERT_TRUE(m.precharge(0, 40.0).ok());
  EXPECT_TRUE(m.refresh(60.0).ok());
}

TEST(Module, ShortTrcdReadsReturnErrors) {
  auto profile = chips::profile_by_name("A0").value();  // trcd0 = 12.7ns
  profile.rows_per_bank = 4096;
  Module m(std::move(profile));
  double t = 0.0;
  ASSERT_TRUE(m.activate(0, 300, t).ok());
  ASSERT_TRUE(m.write(0, 5, word_of(0xF0), t + 14).ok());
  ASSERT_TRUE(m.precharge(0, t + 60).ok());
  t += 100.0;
  ASSERT_TRUE(m.activate(0, 300, t).ok());
  // Read far too early: 6ns after ACT on a module whose tRCDmin is ~12.7ns.
  auto early = m.read(0, 5, t + 6.0);
  ASSERT_TRUE(early.has_value());
  EXPECT_NE(*early, word_of(0xF0));
  EXPECT_GT(m.stats().trcd_read_errors, 0u);
  // A nominal-latency read of the same column is clean.
  auto ok = m.read(0, 5, t + 13.5);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, word_of(0xF0));
}

TEST(Module, StatsCountCommands) {
  Module m(small_profile());
  double t = 0.0;
  ASSERT_TRUE(m.activate(0, 1, t).ok());
  ASSERT_TRUE(m.write(0, 0, word_of(1), t + 14).ok());
  auto r = m.read(0, 0, t + 20);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(m.precharge(0, t + 50).ok());
  EXPECT_EQ(m.stats().activates, 1u);
  EXPECT_EQ(m.stats().writes, 1u);
  EXPECT_EQ(m.stats().reads, 1u);
  EXPECT_EQ(m.stats().precharges, 1u);
}

TEST(Module, OnDieEccSuppressesSingleBitFlips) {
  auto profile = small_profile();
  profile.has_ondie_ecc = true;
  Module m(std::move(profile));
  m.set_trr_enabled(false);
  const std::uint32_t victim = 500;
  const auto n = m.mapping().physical_neighbors(victim);
  double t = 0.0;
  ASSERT_TRUE(m.activate(0, victim, t).ok());
  for (std::uint32_t c = 0; c < kColumnsPerRow; ++c) {
    ASSERT_TRUE(m.write(0, c, word_of(0xAA), t + 14 + c).ok());
  }
  ASSERT_TRUE(m.precharge(0, t + 14 + kColumnsPerRow + 20).ok());
  t += 3000.0;
  ASSERT_TRUE(m.hammer_pair(0, n.below, n.above, 40'000, 45.5, t).ok());
  (void)m.debug_row_snapshot(0, victim, t);
  // Moderate hammering produces sparse flips; on-die ECC eats the singles.
  EXPECT_GT(m.stats().ondie_ecc_corrections, 0u);
}

}  // namespace
}  // namespace vppstudy::dram
