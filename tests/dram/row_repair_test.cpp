// Post-manufacturing row repair (section 4.2): repaired logical rows live on
// spare physical rows, so their hammer neighborhood is nowhere near
// logical +/- 1 -- and the reverse-engineering harness must still find it.
#include <gtest/gtest.h>

#include <set>

#include "chips/module_db.hpp"
#include "dram/mapping.hpp"
#include "harness/experiment.hpp"
#include "harness/rowhammer_test.hpp"
#include "softmc/session.hpp"

namespace vppstudy::dram {
namespace {

TEST(RowRepair, MappingStaysBijectiveWithRepairs) {
  const std::vector<RowRepair> repairs{{100, 4090}, {2000, 4088}};
  for (const MappingScheme scheme :
       {MappingScheme::kIdentity, MappingScheme::kBitSwizzle,
        MappingScheme::kMirroredPairs, MappingScheme::kBlockInvert}) {
    const RowMapping m(scheme, 4096, repairs);
    std::set<std::uint32_t> seen;
    for (std::uint32_t r = 0; r < 4096; ++r) {
      const std::uint32_t p = m.logical_to_physical(r);
      ASSERT_LT(p, 4096u);
      ASSERT_TRUE(seen.insert(p).second)
          << "collision at row " << r << " scheme " << static_cast<int>(scheme);
      EXPECT_EQ(m.physical_to_logical(p), r) << "row " << r;
    }
  }
}

TEST(RowRepair, RepairedRowLandsOnSpare) {
  const RowMapping m(MappingScheme::kIdentity, 4096, {{100, 4090}});
  EXPECT_EQ(m.logical_to_physical(100), 4090u);
  EXPECT_EQ(m.physical_to_logical(4090), 100u);
  // The displaced logical row (base target 4090) takes the fused slot (100).
  EXPECT_EQ(m.logical_to_physical(4090), 100u);
}

TEST(RowRepair, RepairedRowNeighborsAreAtTheSpare) {
  const RowMapping m(MappingScheme::kIdentity, 4096, {{100, 4090}});
  const auto n = m.physical_neighbors(100);
  ASSERT_TRUE(n.valid);
  // Physical neighbors of the spare position 4090 are 4089 and 4091.
  EXPECT_EQ(m.logical_to_physical(n.below), 4089u);
  EXPECT_EQ(m.logical_to_physical(n.above), 4091u);
}

TEST(RowRepair, OutOfRangeRepairsDroppedOnShrink) {
  // Catalog profiles carry repairs sized to the full bank; shrinking the
  // geometry (as tests do) must not break the mapping.
  const RowMapping m(MappingScheme::kIdentity, 64, {{100, 4090}});
  EXPECT_TRUE(m.repairs().empty());
  EXPECT_EQ(m.logical_to_physical(10), 10u);
}

TEST(RowRepair, CatalogModulesCarryRepairs) {
  for (const auto& p : chips::all_profiles()) {
    EXPECT_EQ(p.row_repairs.size(), 2u) << p.name;
    for (const auto& r : p.row_repairs) {
      EXPECT_LT(r.logical_row, p.rows_per_bank) << p.name;
      EXPECT_GE(r.spare_physical, p.rows_per_bank - 16) << p.name;
    }
  }
}

TEST(RowRepair, RepairedVictimStillHammerableViaRecoveredNeighbors) {
  auto profile = chips::profile_by_name("C0").value();
  profile.rows_per_bank = 4096;
  profile.row_repairs = {{600, 4090}};
  softmc::Session s(profile);
  s.module().set_trr_enabled(false);

  // The attacker targets logical row 600, which physically lives on spare
  // 4090: its double-sided aggressors are the logical rows adjacent to the
  // spare, not 599/601.
  const auto& mapping = s.module().mapping();
  const auto n = mapping.physical_neighbors(600);
  ASSERT_TRUE(n.valid);
  EXPECT_EQ(mapping.logical_to_physical(n.below), 4089u);
  EXPECT_EQ(mapping.logical_to_physical(n.above), 4091u);

  // Hammering those aggressors flips the repaired victim...
  harness::RowHammerConfig cfg;
  cfg.num_iterations = 1;
  harness::RowHammerTest test(s, cfg);
  auto ber = test.measure_ber(0, 600, DataPattern::kCheckerAA, 400'000);
  ASSERT_TRUE(ber.has_value()) << ber.error().message;
  EXPECT_GT(*ber, 0.0);
  // ...while hammering the naive logical +/- 1 rows does nothing.
  const auto vimg = pattern_row(DataPattern::kCheckerAA, kBytesPerRow);
  ASSERT_TRUE(s.init_row(0, 600, vimg).ok());
  ASSERT_TRUE(s.hammer_double_sided(0, 599, 601, 400'000).ok());
  auto observed = s.read_row(0, 600, harness::kSafeReadTrcdNs);
  ASSERT_TRUE(observed.has_value());
  EXPECT_EQ(harness::count_bit_flips(vimg, *observed), 0u);
}

}  // namespace
}  // namespace vppstudy::dram
