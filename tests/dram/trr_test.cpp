#include "dram/trr.hpp"

#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "dram/module.hpp"

namespace vppstudy::dram {
namespace {

TEST(TrrEngine, TracksFrequentAggressor) {
  TrrEngine trr(4, {8, 100});
  for (int i = 0; i < 500; ++i) trr.observe_activate(0, 42);
  const auto m = trr.on_refresh();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->bank, 0u);
  EXPECT_EQ(m->physical_row, 42u);
}

TEST(TrrEngine, BelowThresholdNoMitigation) {
  TrrEngine trr(4, {8, 1000});
  for (int i = 0; i < 500; ++i) trr.observe_activate(0, 42);
  EXPECT_FALSE(trr.on_refresh().has_value());
}

TEST(TrrEngine, MitigationConsumesCounter) {
  TrrEngine trr(4, {8, 100});
  trr.observe_activates(1, 7, 500);
  ASSERT_TRUE(trr.on_refresh().has_value());
  EXPECT_FALSE(trr.on_refresh().has_value());
}

TEST(TrrEngine, SurvivesDecoyFlooding) {
  // Misra-Gries keeps the heavy hitter even when many one-off rows churn
  // through the table.
  TrrEngine trr(1, {4, 1000});
  for (int round = 0; round < 2000; ++round) {
    trr.observe_activate(0, 99);
    trr.observe_activate(0, static_cast<std::uint32_t>(round % 64));
  }
  const auto m = trr.on_refresh();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->physical_row, 99u);
}

TEST(TrrEngine, PerBankIsolation) {
  TrrEngine trr(2, {8, 100});
  trr.observe_activates(0, 11, 500);
  trr.observe_activates(1, 22, 800);
  const auto first = trr.on_refresh();
  ASSERT_TRUE(first.has_value());
  const auto second = trr.on_refresh();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->bank, second->bank);
}

TEST(TrrEngine, ResetClearsState) {
  TrrEngine trr(2, {8, 100});
  trr.observe_activates(0, 5, 500);
  trr.reset();
  EXPECT_FALSE(trr.on_refresh().has_value());
}

// End-to-end: with refresh flowing, TRR refreshes hammer victims and
// prevents the bit flips the refresh-free methodology exposes (this is why
// the paper issues no REF during tests, section 4.1).
TEST(TrrIntegration, RefreshDrivenMitigationPreventsFlips) {
  auto profile = chips::profile_by_name("B3").value();
  profile.rows_per_bank = 4096;
  const std::uint32_t victim = 500;

  const auto run = [&](bool with_refresh) {
    Module m{dram::ModuleProfile{profile}};
    const auto n = m.mapping().physical_neighbors(victim);
    double t = 0.0;
    auto fill = [&](std::uint32_t row, std::uint8_t v) {
      ASSERT_TRUE(m.activate(0, row, t).ok());
      t += 13.5;
      std::array<std::uint8_t, kBytesPerColumn> w{};
      w.fill(v);
      for (std::uint32_t c = 0; c < kColumnsPerRow; ++c) {
        ASSERT_TRUE(m.write(0, c, w, t).ok());
        t += 3.0;
      }
      t += 20.0;
      ASSERT_TRUE(m.precharge(0, t).ok());
      t += 13.5;
    };
    fill(victim, 0xAA);
    fill(n.below, 0x55);
    fill(n.above, 0x55);

    // Hammer in bursts; optionally interleave REF commands (as a normal
    // memory controller would every tREFI).
    for (int burst = 0; burst < 40; ++burst) {
      ASSERT_TRUE(m.hammer_pair(0, n.below, n.above, 5000, 45.5, t).ok());
      if (with_refresh) {
        for (int i = 0; i < 8; ++i) {
          ASSERT_TRUE(m.refresh(t).ok());
          t += 350.0;
        }
      }
    }
    (void)m.debug_row_snapshot(0, victim, t);
    if (with_refresh) {
      EXPECT_GT(m.stats().trr_mitigations, 0u);
      EXPECT_EQ(m.stats().hammer_bit_flips, 0u);
    } else {
      EXPECT_GT(m.stats().hammer_bit_flips, 0u);
    }
  };
  run(/*with_refresh=*/false);
  run(/*with_refresh=*/true);
}

}  // namespace
}  // namespace vppstudy::dram
