// Blast radius: prior work [11] shows RowHammer disturbs rows up to two
// positions away, with distance-2 coupling ~30x weaker. These tests pin the
// model's distance structure.
#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "dram/data_pattern.hpp"
#include "harness/experiment.hpp"
#include "softmc/session.hpp"

namespace vppstudy::dram {
namespace {

ModuleProfile small_profile() {
  auto p = chips::profile_by_name("B3").value();
  p.rows_per_bank = 4096;
  return p;
}

/// Hammer one aggressor hard; return flips at each physical distance.
std::vector<std::uint64_t> flips_by_distance(std::uint64_t hc) {
  auto profile = small_profile();
  softmc::Session s(profile);
  s.module().set_trr_enabled(false);
  const auto& mapping = s.module().mapping();
  const std::uint32_t agg_phys = 600;
  const std::uint32_t aggressor = mapping.physical_to_logical(agg_phys);
  const auto image = pattern_row(DataPattern::kCheckerAA, kBytesPerRow);

  // Initialize distance 1..3 on both sides.
  for (int d = -3; d <= 3; ++d) {
    if (d == 0) continue;
    const std::uint32_t row = mapping.physical_to_logical(
        static_cast<std::uint32_t>(static_cast<int>(agg_phys) + d));
    EXPECT_TRUE(s.init_row(0, row, image).ok());
  }
  const std::uint32_t partner =
      mapping.physical_to_logical(agg_phys + 2048 - 7);
  EXPECT_TRUE(s.init_row(0, aggressor,
                         pattern_row(DataPattern::kChecker55, kBytesPerRow))
                  .ok());
  EXPECT_TRUE(s.hammer_double_sided(0, aggressor, partner, hc).ok());

  std::vector<std::uint64_t> by_distance(4, 0);
  for (int d = -3; d <= 3; ++d) {
    if (d == 0) continue;
    const std::uint32_t row = mapping.physical_to_logical(
        static_cast<std::uint32_t>(static_cast<int>(agg_phys) + d));
    auto observed = s.read_row(0, row, harness::kSafeReadTrcdNs);
    EXPECT_TRUE(observed.has_value());
    by_distance[static_cast<std::size_t>(std::abs(d))] +=
        harness::count_bit_flips(image, *observed);
  }
  return by_distance;
}

TEST(BlastRadius, ModerateHammeringOnlyReachesDistanceOne) {
  // 100K single-sided activations: well above B3's threshold for the
  // immediate neighbor, far below the distance-2 threshold (~30x higher).
  const auto flips = flips_by_distance(100'000);
  EXPECT_GT(flips[1], 0u);
  EXPECT_EQ(flips[2], 0u);
  EXPECT_EQ(flips[3], 0u);
}

TEST(BlastRadius, ExtremeHammeringReachesDistanceTwoButNotThree) {
  // 2M activations: distance-2 effective count ~66K > HCfirst.
  const auto flips = flips_by_distance(2'000'000);
  EXPECT_GT(flips[1], 0u);
  EXPECT_GT(flips[2], 0u);
  EXPECT_EQ(flips[3], 0u);
  // Distance-1 damage dominates distance-2 by a wide margin.
  EXPECT_GT(flips[1], flips[2] * 3);
}

}  // namespace
}  // namespace vppstudy::dram
