#include "dram/physics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "chips/module_db.hpp"
#include "circuit/dram_cell.hpp"
#include "common/units.hpp"

namespace vppstudy::dram {
namespace {

ModuleProfile test_profile() {
  auto p = chips::profile_by_name("B3");
  return p.value();
}

TEST(AnalyticRestoredVoltage, MatchesCircuitModelFixedPoint) {
  // The behavioral device model and the transistor-level circuit model must
  // agree on the VPP-limited restoration level (same constants).
  for (double vpp = 1.4; vpp <= 2.5 + 1e-9; vpp += 0.1) {
    circuit::DramCellSimParams c;
    c.vpp_v = vpp;
    EXPECT_NEAR(analytic_restored_voltage(vpp),
                circuit::steady_state_cell_voltage(c), 1e-6)
        << "vpp=" << vpp;
  }
}

TEST(AnalyticRestoredVoltage, MatchesPaperSaturationNumbers) {
  // Obsv. 10: saturation deficits of ~4.1% / 11.0% / 18.1% at 1.9/1.8/1.7V.
  EXPECT_NEAR(analytic_restored_voltage(2.5), 1.2, 1e-9);
  EXPECT_NEAR(analytic_restored_voltage(2.0), 1.2, 1e-6);
  EXPECT_NEAR(restore_deficit(1.9), 0.041, 0.015);
  EXPECT_NEAR(restore_deficit(1.8), 0.110, 0.015);
  EXPECT_NEAR(restore_deficit(1.7), 0.181, 0.015);
}

TEST(RestoreDeficit, ZeroAboveTwoVolts) {
  EXPECT_DOUBLE_EQ(restore_deficit(2.5), 0.0);
  EXPECT_DOUBLE_EQ(restore_deficit(2.1), 0.0);
  EXPECT_GT(restore_deficit(1.6), restore_deficit(1.8));
}

TEST(CellPhysics, RowParamsAreDeterministic) {
  const CellPhysics phys(test_profile());
  const auto a = phys.row_params(0, 1234);
  const auto b = phys.row_params(0, 1234);
  EXPECT_DOUBLE_EQ(a.hc_first, b.hc_first);
  EXPECT_DOUBLE_EQ(a.alpha_nom, b.alpha_nom);
  EXPECT_DOUBLE_EQ(a.s, b.s);
  const auto c = phys.row_params(0, 1235);
  EXPECT_NE(a.hc_first, c.hc_first);
}

TEST(CellPhysics, RowStrengthNeverBelowModuleAnchor) {
  const auto profile = test_profile();
  const CellPhysics phys(profile);
  for (std::uint32_t r = 0; r < 2000; ++r) {
    EXPECT_GE(phys.row_params(0, r).hc_first,
              profile.hc_first_nominal - 1e-6);
  }
}

TEST(CellPhysics, SensitivityShapeAnchors) {
  const auto profile = test_profile();
  const CellPhysics phys(profile);
  EXPECT_NEAR(phys.sensitivity_shape(common::kNominalVppV), 0.0, 1e-12);
  EXPECT_NEAR(phys.sensitivity_shape(profile.vppmin_v), 1.0, 1e-12);
  EXPECT_GT(phys.sensitivity_shape(1.8), phys.sensitivity_shape(2.2));
}

TEST(CellPhysics, HammerMultiplierOneAtNominal) {
  const CellPhysics phys(test_profile());
  for (std::uint32_t r : {0u, 7u, 99u}) {
    const auto rp = phys.row_params(0, r);
    EXPECT_NEAR(phys.hammer_multiplier(rp, common::kNominalVppV), 1.0, 1e-9);
  }
}

TEST(CellPhysics, ModuleAnchorRatioEncodedInLogM) {
  const auto profile = test_profile();  // B3: 16.6K -> 21.1K
  const CellPhysics phys(profile);
  EXPECT_NEAR(std::exp(phys.log_m_module()),
              profile.hc_first_vppmin / profile.hc_first_nominal, 1e-9);
}

TEST(CellPhysics, HammerFlipProbabilityFloorAndGrowth) {
  const auto profile = test_profile();
  const CellPhysics phys(profile);
  const auto rp = phys.row_params(0, 42);
  // Below the row threshold: exactly zero.
  EXPECT_DOUBLE_EQ(
      phys.hammer_flip_probability(rp, rp.hc_first * 0.5, 2.5, 1.0, 1.0), 0.0);
  // At the threshold: about one expected flip among the vulnerable cells.
  const double p_at =
      phys.hammer_flip_probability(rp, rp.hc_first, 2.5, 1.0, 1.0);
  EXPECT_NEAR(p_at * (kBitsPerRow / 2.0), 1.0, 0.2);
  // Monotone growth above.
  const double p2 =
      phys.hammer_flip_probability(rp, rp.hc_first * 2, 2.5, 1.0, 1.0);
  EXPECT_GT(p2, p_at);
}

TEST(CellPhysics, PartialRestoreLowersTheFloor) {
  const CellPhysics phys(test_profile());
  const auto rp = phys.row_params(0, 7);
  const double full =
      phys.hammer_flip_probability(rp, rp.hc_first * 1.2, 2.5, 1.0, 1.0);
  const double partial =
      phys.hammer_flip_probability(rp, rp.hc_first * 1.2, 2.5, 1.0, 0.6);
  EXPECT_GT(partial, full);
}

TEST(CellPhysics, PatternFactorAtLeastOneAndDeterministic) {
  const CellPhysics phys(test_profile());
  std::set<double> values;
  for (std::uint8_t sig : {0xFF, 0x00, 0xAA, 0x55, 0xCC, 0x33}) {
    const double f = phys.pattern_factor(0, 10, sig, 25);
    EXPECT_GE(f, 1.0);
    EXPECT_LE(f, 1.2);
    EXPECT_DOUBLE_EQ(f, phys.pattern_factor(0, 10, sig, 25));
    values.insert(f);
  }
  EXPECT_GT(values.size(), 3u);  // patterns are actually distinguished
}

TEST(CellPhysics, RetentionProbabilityBasics) {
  const CellPhysics phys(test_profile());
  const auto rp = phys.row_params(0, 3);
  // Millisecond scale: negligible. Minutes: appreciable. Monotone.
  const double p_64ms = phys.retention_flip_probability(rp, 0.064, 2.5, 80.0, 1.0);
  const double p_4s = phys.retention_flip_probability(rp, 4.0, 2.5, 80.0, 1.0);
  const double p_64s = phys.retention_flip_probability(rp, 64.0, 2.5, 80.0, 1.0);
  EXPECT_LT(p_64ms, 1e-8);
  EXPECT_GT(p_4s, p_64ms);
  EXPECT_GT(p_64s, p_4s);
}

TEST(CellPhysics, RetentionWorseAtLowVppAndHighTemperature) {
  const CellPhysics phys(test_profile());
  const auto rp = phys.row_params(0, 3);
  EXPECT_GT(phys.retention_flip_probability(rp, 4.0, 1.6, 80.0, 1.0),
            phys.retention_flip_probability(rp, 4.0, 2.5, 80.0, 1.0));
  EXPECT_GT(phys.retention_flip_probability(rp, 4.0, 2.5, 90.0, 1.0),
            phys.retention_flip_probability(rp, 4.0, 2.5, 80.0, 1.0));
}

TEST(CellPhysics, RetentionCertainWhenChargeBelowThreshold) {
  const CellPhysics phys(test_profile());
  const auto rp = phys.row_params(0, 3);
  EXPECT_DOUBLE_EQ(phys.retention_flip_probability(rp, 1.0, 2.5, 80.0, 0.3),
                   1.0);
}

TEST(CellPhysics, TrcdGrowsAsVppDrops) {
  const auto profile = test_profile();
  const CellPhysics phys(profile);
  const auto rp = phys.row_params(0, 5);
  const double at_nom = phys.trcd_row_mean_ns(rp, 2.5);
  const double at_min = phys.trcd_row_mean_ns(rp, profile.vppmin_v);
  EXPECT_NEAR(at_nom, profile.trcd0_ns + rp.trcd_offset_ns, 1e-9);
  EXPECT_NEAR(at_min - at_nom, profile.trcd_vpp_slope_ns, 1e-9);
}

TEST(CellPhysics, TrcdFailProbabilityMonotone) {
  const CellPhysics phys(test_profile());
  const auto rp = phys.row_params(0, 5);
  const double relaxed = phys.trcd_fail_probability(rp, 13.5, 2.5);
  const double tight = phys.trcd_fail_probability(rp, 9.0, 2.5);
  EXPECT_LT(relaxed, 1e-6);
  EXPECT_GT(tight, relaxed);
}

TEST(CellPhysics, RestoreFractionSaturatesAtFullTras) {
  const CellPhysics phys(test_profile());
  EXPECT_DOUBLE_EQ(phys.restore_fraction(60.0, 2.5), 1.0);
  EXPECT_LT(phys.restore_fraction(10.0, 2.5), 1.0);
  EXPECT_GE(phys.restore_fraction(1.0, 2.5), 0.3);
  // Lower VPP needs longer to fully restore.
  EXPECT_GT(phys.restore_fraction(30.0, 2.5),
            phys.restore_fraction(30.0, 1.5) - 1e-12);
}

TEST(CellPhysics, ChargedValueRoughlyBalanced) {
  const CellPhysics phys(test_profile());
  int charged = 0;
  constexpr int kN = 4096;
  for (int i = 0; i < kN; ++i) {
    charged += phys.charged_value(0, 17, static_cast<std::uint32_t>(i)) ? 1 : 0;
  }
  EXPECT_GT(charged, kN * 45 / 100);
  EXPECT_LT(charged, kN * 55 / 100);
}

TEST(CellPhysics, WeakCellsLandInDistinctWords) {
  // B6 has the 64ms weak classes (Obsv. 14 requires one flip per word).
  const CellPhysics phys(chips::profile_by_name("B6").value());
  int rows_with_weak = 0;
  for (std::uint32_t r = 0; r < 500; ++r) {
    const auto cells = phys.weak_cells(0, r);
    if (cells.empty()) continue;
    ++rows_with_weak;
    std::set<std::uint32_t> words;
    for (const auto& c : cells) {
      EXPECT_LT(c.bit, kBitsPerRow);
      EXPECT_TRUE(words.insert(c.bit / 64).second)
          << "two weak cells share a 64-bit word";
      EXPECT_GT(c.t_ret_at_vppmin_s, 0.030);
      EXPECT_LT(c.t_ret_at_vppmin_s, 0.130);
    }
  }
  // ~15.5% + 4.7% of rows should be in some weak class.
  EXPECT_GT(rows_with_weak, 50);
  EXPECT_LT(rows_with_weak, 180);
}

TEST(CellPhysics, WeakCellScaleAboveOneAtNominal) {
  const CellPhysics phys(chips::profile_by_name("B6").value());
  EXPECT_GT(phys.weak_cell_ret_scale(2.5), 1.5);
  EXPECT_NEAR(phys.weak_cell_ret_scale(
                  chips::profile_by_name("B6")->vppmin_v),
              1.0, 1e-9);
}

TEST(CellPhysics, NoWeak64msCellsForMfrAModules) {
  const CellPhysics phys(chips::profile_by_name("A3").value());
  for (std::uint32_t r = 0; r < 300; ++r) {
    for (const auto& c : phys.weak_cells(0, r)) {
      // Mfr. A contributes only the 128ms class (Obsv. 13).
      EXPECT_GT(c.t_ret_at_vppmin_s, 0.064);
    }
  }
}

TEST(VendorCurves, DistinctPerVendor) {
  const auto& a = vendor_curve(Manufacturer::kMfrA);
  const auto& b = vendor_curve(Manufacturer::kMfrB);
  const auto& c = vendor_curve(Manufacturer::kMfrC);
  EXPECT_NE(a.s_jitter_sigma, b.s_jitter_sigma);
  EXPECT_NE(b.ret_vpp_kappa, c.ret_vpp_kappa);
  // Mfr. C has the tightest per-row spread (Fig. 6: 0.91-1.35).
  EXPECT_LT(c.s_jitter_sigma, b.s_jitter_sigma);
}

}  // namespace
}  // namespace vppstudy::dram
