// Aggressor on-time sensitivity ([12]; later weaponized as RowPress):
// keeping the aggressor row open longer disturbs the victim more per
// activation. Plus bank-isolation sanity: hammering one bank never touches
// another.
#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "dram/data_pattern.hpp"
#include "dram/physics.hpp"
#include "harness/experiment.hpp"
#include "softmc/session.hpp"

namespace vppstudy::dram {
namespace {

ModuleProfile small_profile() {
  auto p = chips::profile_by_name("B3").value();
  p.rows_per_bank = 4096;
  return p;
}

TEST(OnTimeFactor, OneAtNominalSpacing) {
  const CellPhysics phys(small_profile());
  // Nominal loop spacing tRC=45.5ns leaves the row open ~32ns.
  EXPECT_NEAR(phys.on_time_factor(32.0), 1.0, 1e-9);
}

TEST(OnTimeFactor, MonotoneAndBounded) {
  const CellPhysics phys(small_profile());
  double prev = 0.0;
  for (double on = 2.0; on < 4000.0; on *= 2.0) {
    const double f = phys.on_time_factor(on);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.6);
    EXPECT_LE(f, 2.5);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(phys.on_time_factor(0.5), 0.6);
}

std::uint64_t flips_with_spacing(double act_to_act_ns, std::uint64_t count) {
  softmc::Session s(small_profile());
  s.module().set_trr_enabled(false);
  const std::uint32_t victim = 700;
  const auto n = s.module().mapping().physical_neighbors(victim);
  const auto vimg = pattern_row(DataPattern::kCheckerAA, kBytesPerRow);
  const auto aimg = pattern_row(DataPattern::kChecker55, kBytesPerRow);
  EXPECT_TRUE(s.init_row(0, victim, vimg).ok());
  EXPECT_TRUE(s.init_row(0, n.below, aimg).ok());
  EXPECT_TRUE(s.init_row(0, n.above, aimg).ok());
  EXPECT_TRUE(
      s.hammer_double_sided(0, n.below, n.above, count, act_to_act_ns).ok());
  auto observed = s.read_row(0, victim, harness::kSafeReadTrcdNs);
  EXPECT_TRUE(observed.has_value());
  return harness::count_bit_flips(vimg, *observed);
}

TEST(OnTime, LongerOpenTimeFlipsMoreAtEqualCounts) {
  // 40K activations per side near B3's threshold: at nominal spacing a
  // moderate number of flips; at 4x the open time, substantially more.
  const std::uint64_t nominal = flips_with_spacing(45.5, 40'000);
  const std::uint64_t pressed = flips_with_spacing(4 * 45.5, 40'000);
  EXPECT_GT(pressed, nominal);
}

TEST(OnTime, PressStyleFlipsBelowTheNominalThreshold) {
  // Find a count that flips at nominal spacing by coarse halving, then take
  // 70% of it: safe at nominal spacing (the hard flip floor sits at 97% of
  // the threshold), but the ~2x on-time factor at 8x tRC pushes the
  // effective count back over it.
  std::uint64_t flipping = 320'000;
  while (flipping > 2'000 && flips_with_spacing(45.5, flipping / 2) > 0) {
    flipping /= 2;
  }
  // The true threshold T is in (flipping/2, flipping]. probe = 0.45*flipping
  // sits safely below T at nominal spacing; at 16x tRC the on-time factor
  // (2.34, clamped) lifts the effective count to 1.05*flipping >= 1.05*T.
  const std::uint64_t probe = flipping * 45 / 100;
  EXPECT_EQ(flips_with_spacing(45.5, probe), 0u);
  EXPECT_GT(flips_with_spacing(16 * 45.5, probe), 0u);
}

TEST(BankIsolation, HammerInOneBankNeverTouchesAnother) {
  softmc::Session s(small_profile());
  s.module().set_trr_enabled(false);
  const std::uint32_t victim = 700;
  const auto n = s.module().mapping().physical_neighbors(victim);
  const auto vimg = pattern_row(DataPattern::kCheckerAA, kBytesPerRow);
  // Same victim address in bank 1, plus the aggressor addresses in bank 1.
  ASSERT_TRUE(s.init_row(1, victim, vimg).ok());
  ASSERT_TRUE(s.init_row(1, n.below, vimg).ok());
  ASSERT_TRUE(s.init_row(1, n.above, vimg).ok());
  // Hammer hard in bank 0.
  const auto aimg = pattern_row(DataPattern::kChecker55, kBytesPerRow);
  ASSERT_TRUE(s.init_row(0, victim, vimg).ok());
  ASSERT_TRUE(s.init_row(0, n.below, aimg).ok());
  ASSERT_TRUE(s.init_row(0, n.above, aimg).ok());
  ASSERT_TRUE(s.hammer_double_sided(0, n.below, n.above, 500'000).ok());
  // Bank 0's victim flips; bank 1's rows are untouched.
  auto b0 = s.read_row(0, victim, harness::kSafeReadTrcdNs);
  ASSERT_TRUE(b0.has_value());
  EXPECT_GT(harness::count_bit_flips(vimg, *b0), 0u);
  for (const std::uint32_t row : {victim, n.below, n.above}) {
    auto b1 = s.read_row(1, row, harness::kSafeReadTrcdNs);
    ASSERT_TRUE(b1.has_value());
    EXPECT_EQ(harness::count_bit_flips(vimg, *b1), 0u) << "bank 1 row " << row;
  }
}

}  // namespace
}  // namespace vppstudy::dram
