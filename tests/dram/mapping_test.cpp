#include "dram/mapping.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vppstudy::dram {
namespace {

constexpr std::uint32_t kRows = 4096;

TEST(RowMapping, AllSchemesAreBijections) {
  for (const MappingScheme scheme :
       {MappingScheme::kIdentity, MappingScheme::kBitSwizzle,
        MappingScheme::kMirroredPairs, MappingScheme::kBlockInvert}) {
    const RowMapping m(scheme, kRows);
    std::set<std::uint32_t> seen;
    for (std::uint32_t r = 0; r < kRows; ++r) {
      const std::uint32_t p = m.logical_to_physical(r);
      ASSERT_LT(p, kRows);
      ASSERT_TRUE(seen.insert(p).second)
          << "collision in scheme " << static_cast<int>(scheme);
    }
  }
}

TEST(RowMapping, RoundTripsThroughInverse) {
  for (const MappingScheme scheme :
       {MappingScheme::kIdentity, MappingScheme::kBitSwizzle,
        MappingScheme::kMirroredPairs, MappingScheme::kBlockInvert}) {
    const RowMapping m(scheme, kRows);
    for (std::uint32_t r = 0; r < kRows; ++r) {
      EXPECT_EQ(m.physical_to_logical(m.logical_to_physical(r)), r);
    }
  }
}

TEST(RowMapping, IdentityIsIdentity) {
  const RowMapping m(MappingScheme::kIdentity, kRows);
  EXPECT_EQ(m.logical_to_physical(17), 17u);
  const auto n = m.physical_neighbors(17);
  ASSERT_TRUE(n.valid);
  EXPECT_EQ(n.below, 16u);
  EXPECT_EQ(n.above, 18u);
}

TEST(RowMapping, SwizzleMovesSomeRows) {
  const RowMapping m(MappingScheme::kBitSwizzle, kRows);
  int moved = 0;
  for (std::uint32_t r = 0; r < 64; ++r) {
    if (m.logical_to_physical(r) != r) ++moved;
  }
  EXPECT_GT(moved, 8);
  EXPECT_LT(moved, 64);
}

TEST(RowMapping, MirroredPairsSwapMiddleOfEachBlock) {
  const RowMapping m(MappingScheme::kMirroredPairs, kRows);
  EXPECT_EQ(m.logical_to_physical(0), 0u);
  EXPECT_EQ(m.logical_to_physical(1), 2u);
  EXPECT_EQ(m.logical_to_physical(2), 1u);
  EXPECT_EQ(m.logical_to_physical(3), 3u);
}

TEST(RowMapping, BlockInvertOnlyTouchesOddBlocks) {
  const RowMapping m(MappingScheme::kBlockInvert, kRows);
  EXPECT_EQ(m.logical_to_physical(5), 5u);          // block 0: untouched
  EXPECT_EQ(m.logical_to_physical(1024 + 5), 1024u + (5u ^ 7u));
}

TEST(RowMapping, NeighborsConsistentWithMapping) {
  for (const MappingScheme scheme :
       {MappingScheme::kBitSwizzle, MappingScheme::kMirroredPairs,
        MappingScheme::kBlockInvert}) {
    const RowMapping m(scheme, kRows);
    for (std::uint32_t r = 8; r < 128; ++r) {
      const auto n = m.physical_neighbors(r);
      ASSERT_TRUE(n.valid);
      const std::uint32_t phys = m.logical_to_physical(r);
      EXPECT_EQ(m.logical_to_physical(n.below), phys - 1);
      EXPECT_EQ(m.logical_to_physical(n.above), phys + 1);
    }
  }
}

TEST(RowMapping, EdgeRowsHaveNoValidNeighborhood) {
  const RowMapping m(MappingScheme::kIdentity, kRows);
  EXPECT_FALSE(m.physical_neighbors(0).valid);
  EXPECT_FALSE(m.physical_neighbors(kRows - 1).valid);
  EXPECT_TRUE(m.physical_neighbors(1).valid);
}

TEST(RowMapping, VendorSchemeAssignment) {
  EXPECT_EQ(scheme_for(Manufacturer::kMfrA), MappingScheme::kBitSwizzle);
  EXPECT_EQ(scheme_for(Manufacturer::kMfrB), MappingScheme::kMirroredPairs);
  EXPECT_EQ(scheme_for(Manufacturer::kMfrC), MappingScheme::kBlockInvert);
}

}  // namespace
}  // namespace vppstudy::dram
