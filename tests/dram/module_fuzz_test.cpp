// Robustness fuzzing: throw long random command sequences at the device and
// the session. Illegal sequences must come back as clean errors (never
// crashes, never silent corruption of the state machine), and legal state
// must stay self-consistent throughout.
#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "common/rng.hpp"
#include "softmc/session.hpp"

namespace vppstudy::dram {
namespace {

ModuleProfile small_profile() {
  auto p = chips::profile_by_name("C0").value();
  p.rows_per_bank = 1024;
  return p;
}

TEST(ModuleFuzz, RandomCommandStormNeverCrashes) {
  Module m(small_profile());
  common::Xoshiro256 rng(0xF022);
  double t = 0.0;
  int ok_commands = 0;
  int rejected = 0;
  for (int i = 0; i < 20000; ++i) {
    t += 5.0 + rng.uniform() * 50.0;
    const auto bank = static_cast<std::uint32_t>(rng.bounded(18));  // 2 invalid
    const auto row = static_cast<std::uint32_t>(rng.bounded(1100)); // some invalid
    const auto col = static_cast<std::uint32_t>(rng.bounded(1100));
    switch (rng.bounded(6)) {
      case 0: {
        const auto st = m.activate(bank, row, t);
        (st.ok() ? ok_commands : rejected) += 1;
        break;
      }
      case 1: {
        const auto st = m.precharge(bank, t);
        (st.ok() ? ok_commands : rejected) += 1;
        break;
      }
      case 2: {
        const auto r = m.read(bank, col, t);
        (r.has_value() ? ok_commands : rejected) += 1;
        break;
      }
      case 3: {
        std::array<std::uint8_t, kBytesPerColumn> w{};
        w.fill(static_cast<std::uint8_t>(rng.next()));
        const auto st = m.write(bank, col, w, t);
        (st.ok() ? ok_commands : rejected) += 1;
        break;
      }
      case 4: {
        const auto st = m.refresh(t);
        (st.ok() ? ok_commands : rejected) += 1;
        break;
      }
      case 5: {
        const auto st = m.precharge_all(t);
        (st.ok() ? ok_commands : rejected) += 1;
        break;
      }
    }
  }
  // The storm must contain both accepted and rejected commands, and the
  // device stats must agree with what was accepted.
  EXPECT_GT(ok_commands, 1000);
  EXPECT_GT(rejected, 1000);
  EXPECT_GT(m.stats().activates, 0u);
}

TEST(ModuleFuzz, StormedModuleStillWorksCorrectly) {
  Module m(small_profile());
  common::Xoshiro256 rng(0xF055);
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    t += 30.0;
    switch (rng.bounded(4)) {
      case 0: (void)m.activate(0, static_cast<std::uint32_t>(rng.bounded(1024)), t); break;
      case 1: (void)m.precharge(0, t); break;
      case 2: (void)m.read(0, static_cast<std::uint32_t>(rng.bounded(1024)), t); break;
      case 3: (void)m.refresh(t); break;
    }
  }
  // After the chaos: a clean precharge + write/read round trip must work.
  t += 100.0;
  (void)m.precharge_all(t);
  t += 20.0;
  ASSERT_TRUE(m.activate(0, 77, t).ok());
  std::array<std::uint8_t, kBytesPerColumn> w{};
  w.fill(0x42);
  ASSERT_TRUE(m.write(0, 9, w, t + 15.0).ok());
  auto r = m.read(0, 9, t + 20.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, w);
}

TEST(SessionFuzz, RandomProgramsExecuteOrFailCleanly) {
  softmc::Session s(small_profile());
  common::Xoshiro256 rng(0xF077);
  for (int round = 0; round < 150; ++round) {
    softmc::Program p(s.timing());
    const int len = 1 + static_cast<int>(rng.bounded(12));
    for (int i = 0; i < len; ++i) {
      const auto bank = static_cast<std::uint32_t>(rng.bounded(16));
      const auto row = static_cast<std::uint32_t>(rng.bounded(1024));
      switch (rng.bounded(5)) {
        case 0: p.act(bank, row); break;
        case 1: p.pre(bank); break;
        case 2: p.rd(bank, static_cast<std::uint32_t>(rng.bounded(1024))); break;
        case 3: p.ref(); break;
        case 4: p.wait_ns(rng.uniform(1.0, 1000.0)); break;
      }
    }
    const auto result = s.execute(p);
    // Either outcome is fine; a failure must carry a message.
    if (!result.status.ok()) {
      EXPECT_FALSE(result.status.error().message.empty());
    }
  }
  // The clock must have advanced monotonically through it all.
  EXPECT_GT(s.clock_ns(), 0.0);
}

}  // namespace
}  // namespace vppstudy::dram
