// Tier-1 checks for the runtime-dispatched SIMD layer (common/simd.hpp): the
// AVX2 and portable scalar word-walk kernels must agree bit-for-bit at every
// layer that consumes them -- raw hash walks, per-cell uniform batches, the
// charged-polarity words, the sorted flip index, and finally whole-device
// runs (identical stored bytes and ModuleStats across VPP levels, with the
// reference full-row scan both off and on). On CPUs without AVX2 the
// cross-implementation cases skip; the definitional checks still run against
// the scalar kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "chips/module_db.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "dram/module.hpp"
#include "dram/physics.hpp"

namespace vppstudy::dram {
namespace {

using common::simd::Impl;

ModuleProfile small_profile() {
  auto p = chips::profile_by_name("B3").value();
  p.rows_per_bank = 4096;
  return p;
}

/// Every test restores auto-detected dispatch, pass or fail: a forced
/// implementation leaking out of one test must not silently change what the
/// rest of the suite exercises.
class SimdWordWalk : public ::testing::Test {
 protected:
  void TearDown() override { common::simd::force_impl(std::nullopt); }
};

TEST_F(SimdWordWalk, ForceImplControlsDispatch) {
  ASSERT_TRUE(common::simd::force_impl(Impl::kScalar));
  EXPECT_EQ(common::simd::active_impl(), Impl::kScalar);
  EXPECT_STREQ(common::simd::active_impl_name(), "scalar");
  if (common::simd::avx2_supported()) {
    ASSERT_TRUE(common::simd::force_impl(Impl::kAvx2));
    EXPECT_EQ(common::simd::active_impl(), Impl::kAvx2);
    EXPECT_STREQ(common::simd::active_impl_name(), "avx2");
  } else {
    EXPECT_FALSE(common::simd::force_impl(Impl::kAvx2));
    EXPECT_EQ(common::simd::active_impl(), Impl::kScalar);
  }
}

TEST_F(SimdWordWalk, WalkMatchesHashKeyDefinition) {
  // Whatever implementation is active, the batched walk must equal the
  // one-at-a-time hash_key fold it factors: hash_key({a, b, index, tag})
  // with the (a, b) prefix folded once.
  const std::uint64_t a = 0x5eedULL;
  const std::uint64_t b = 3;  // e.g. a bank
  std::uint64_t prefix = common::hash_accumulate(common::kHashInit, a);
  prefix = common::hash_accumulate(prefix, b);

  const std::uint64_t tag = 42;
  const std::uint64_t index0 = 1'000'000;
  std::vector<std::uint64_t> out(133);
  common::simd::hash_index_walk(prefix, tag, index0, out.size(), out.data());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], common::hash_key({a, b, index0 + i, tag})) << i;
  }
}

TEST_F(SimdWordWalk, ScalarAndAvx2HashWalksMatchWordForWord) {
  if (!common::simd::avx2_supported()) GTEST_SKIP() << "CPU lacks AVX2";
  // Lengths straddle the 4-lane width (tails of 0..3) and the sizes the
  // device model actually issues (64-bit polarity words, 1024-bit batches).
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{5}, std::size_t{64}, std::size_t{65},
                              std::size_t{1024}}) {
    std::vector<std::uint64_t> scalar(n), avx2(n);
    std::vector<double> scalar_u(n), avx2_u(n);
    ASSERT_TRUE(common::simd::force_impl(Impl::kScalar));
    common::simd::hash_index_walk(0x1234, 7, 65'000, n, scalar.data());
    common::simd::uniform_index_walk(0x1234, 7, 65'000, n, scalar_u.data());
    ASSERT_TRUE(common::simd::force_impl(Impl::kAvx2));
    common::simd::hash_index_walk(0x1234, 7, 65'000, n, avx2.data());
    common::simd::uniform_index_walk(0x1234, 7, 65'000, n, avx2_u.data());
    EXPECT_EQ(scalar, avx2) << "n=" << n;
    EXPECT_EQ(scalar_u, avx2_u) << "n=" << n;  // exact: same bits, same dyadic
  }
}

TEST_F(SimdWordWalk, CellUniformBatchMatchesPerBitDraws) {
  const CellPhysics physics(small_profile());
  constexpr std::uint32_t kBit0 = 5000;
  constexpr std::uint32_t kCount = 300;
  std::vector<double> batch(kCount);
  for (const auto what :
       {CellPhysics::CellDraw::kHammer, CellPhysics::CellDraw::kRetention,
        CellPhysics::CellDraw::kTrcd, CellPhysics::CellDraw::kPolarity}) {
    physics.cell_uniform_batch(0, 700, kBit0, kCount, what, batch.data());
    for (std::uint32_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(batch[i], physics.cell_uniform(0, 700, kBit0 + i, what))
          << "draw " << static_cast<int>(what) << " bit " << (kBit0 + i);
    }
  }
}

TEST_F(SimdWordWalk, PhysicsDerivedTablesMatchAcrossImpls) {
  if (!common::simd::avx2_supported()) GTEST_SKIP() << "CPU lacks AVX2";
  const CellPhysics physics(small_profile());

  ASSERT_TRUE(common::simd::force_impl(Impl::kScalar));
  const auto words_scalar = physics.charged_words(0, 321);
  const auto index_scalar =
      physics.build_flip_index(0, 321, CellPhysics::CellDraw::kHammer);
  ASSERT_TRUE(common::simd::force_impl(Impl::kAvx2));
  const auto words_avx2 = physics.charged_words(0, 321);
  const auto index_avx2 =
      physics.build_flip_index(0, 321, CellPhysics::CellDraw::kHammer);

  EXPECT_EQ(words_scalar, words_avx2);
  ASSERT_EQ(index_scalar.cells.size(), index_avx2.cells.size());
  EXPECT_EQ(index_scalar.floor_u, index_avx2.floor_u);
  for (std::size_t i = 0; i < index_scalar.cells.size(); ++i) {
    EXPECT_EQ(index_scalar.cells[i].bit, index_avx2.cells[i].bit) << i;
    EXPECT_EQ(index_scalar.cells[i].u, index_avx2.cells[i].u) << i;
  }
}

/// Drive a module through hammer + retention + short-tRCD sensing and return
/// the victim row's final bytes (mirrors the determinism suite's scenario).
std::vector<std::uint8_t> run_device_scenario(Module& m, double vpp) {
  m.set_trr_enabled(false);
  m.set_vpp(vpp);
  const std::uint32_t victim = 500;
  const auto neighbors = m.mapping().physical_neighbors(victim);
  EXPECT_TRUE(neighbors.valid);

  double t = 100.0;
  (void)m.debug_row_snapshot(0, victim, t);
  EXPECT_TRUE(
      m.hammer_pair(0, neighbors.below, neighbors.above, 150000, 46.0, t).ok());
  EXPECT_TRUE(m.activate(0, victim, t).ok());
  t += 35.0;
  EXPECT_TRUE(m.precharge(0, t).ok());
  t += 300e6;  // 300ms unrefreshed
  EXPECT_TRUE(m.activate(0, victim, t).ok());
  for (std::uint32_t c = 0; c < 8; ++c) {
    auto r = m.read(0, c, t + 2.0 + 0.1 * c);
    EXPECT_TRUE(r.has_value());
  }
  t += 50.0;
  EXPECT_TRUE(m.precharge(0, t).ok());
  return m.debug_row_snapshot(0, victim, t);
}

class SimdWordWalkDevice : public ::testing::TestWithParam<double> {
 protected:
  void TearDown() override { common::simd::force_impl(std::nullopt); }
};

TEST_P(SimdWordWalkDevice, WholeDeviceRunsAreBitExactAcrossImpls) {
  if (!common::simd::avx2_supported()) GTEST_SKIP() << "CPU lacks AVX2";
  const double vpp = GetParam();
  for (const bool reference_sensing : {false, true}) {
    Module::Options options;
    options.reference_sensing = reference_sensing;

    ASSERT_TRUE(common::simd::force_impl(Impl::kScalar));
    Module scalar(small_profile(), options);
    const auto scalar_bytes = run_device_scenario(scalar, vpp);

    ASSERT_TRUE(common::simd::force_impl(Impl::kAvx2));
    Module avx2(small_profile(), options);
    const auto avx2_bytes = run_device_scenario(avx2, vpp);

    EXPECT_EQ(scalar_bytes, avx2_bytes)
        << "vpp=" << vpp << " reference_sensing=" << reference_sensing;
    EXPECT_TRUE(scalar.stats() == avx2.stats())
        << "vpp=" << vpp << " reference_sensing=" << reference_sensing;
  }
}

// Nominal, mid-sweep, and B3's VPPmin: the flip probability (and with it the
// fast path vs full-scan mix) changes across these levels.
INSTANTIATE_TEST_SUITE_P(VppLevels, SimdWordWalkDevice,
                         ::testing::Values(2.5, 1.9, 1.6));

}  // namespace
}  // namespace vppstudy::dram
