#include <gtest/gtest.h>

#include "dram/data_pattern.hpp"
#include "dram/timing.hpp"

namespace vppstudy::dram {
namespace {

TEST(Timing, SpeedGradesHaveSensibleValues) {
  for (const int mts : {2133, 2400, 2666, 3200}) {
    const auto t = timing_for_speed_grade(mts);
    EXPECT_GT(t.t_rcd_ns, 10.0) << mts;
    EXPECT_LT(t.t_rcd_ns, 16.0) << mts;
    EXPECT_GT(t.t_ras_ns, t.t_rcd_ns) << mts;
    EXPECT_NEAR(t.t_rc_ns, t.t_ras_ns + t.t_rp_ns, 0.6) << mts;
    EXPECT_GT(t.t_ck_ns, 0.0) << mts;
  }
}

TEST(Timing, UnknownGradeFallsBackToDdr42400) {
  const auto def = timing_for_speed_grade(2400);
  const auto unk = timing_for_speed_grade(1866);
  EXPECT_DOUBLE_EQ(def.t_rcd_ns, unk.t_rcd_ns);
  EXPECT_DOUBLE_EQ(def.t_ck_ns, unk.t_ck_ns);
}

TEST(Timing, FasterClockForHigherDataRate) {
  EXPECT_LT(timing_for_speed_grade(3200).t_ck_ns,
            timing_for_speed_grade(2133).t_ck_ns);
}

TEST(DataPattern, BytesMatchTheSixCanonicalPatterns) {
  EXPECT_EQ(pattern_byte(DataPattern::kAllOnes), 0xFF);
  EXPECT_EQ(pattern_byte(DataPattern::kAllZeros), 0x00);
  EXPECT_EQ(pattern_byte(DataPattern::kCheckerAA), 0xAA);
  EXPECT_EQ(pattern_byte(DataPattern::kChecker55), 0x55);
  EXPECT_EQ(pattern_byte(DataPattern::kThickCC), 0xCC);
  EXPECT_EQ(pattern_byte(DataPattern::kThick33), 0x33);
}

TEST(DataPattern, InverseIsBitwiseComplement) {
  for (const DataPattern p : kAllPatterns) {
    EXPECT_EQ(pattern_byte(inverse_pattern(p)),
              static_cast<std::uint8_t>(~pattern_byte(p)));
    EXPECT_EQ(inverse_pattern(inverse_pattern(p)), p);
  }
}

TEST(DataPattern, RowFillAndSignature) {
  const auto row = pattern_row(DataPattern::kThickCC, 64);
  EXPECT_EQ(row.size(), 64u);
  for (const auto b : row) EXPECT_EQ(b, 0xCC);
  EXPECT_EQ(pattern_signature(row), 0xCC);
  EXPECT_EQ(pattern_signature(std::vector<std::uint8_t>{}), 0);
}

TEST(DataPattern, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const DataPattern p : kAllPatterns) {
    EXPECT_TRUE(names.insert(pattern_name(p)).second);
  }
}

}  // namespace
}  // namespace vppstudy::dram
