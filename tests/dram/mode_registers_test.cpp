#include "dram/mode_registers.hpp"

#include <gtest/gtest.h>

#include "chips/module_db.hpp"
#include "dram/module.hpp"

namespace vppstudy::dram {
namespace {

TEST(ModeRegisters, Mr0RoundTrip) {
  ModeRegisters mr;
  mr.cas_latency = 19;
  mr.burst_length = 4;
  auto decoded = apply_mrs(ModeRegisters{}, 0, encode_mr0(mr));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->cas_latency, 19);
  EXPECT_EQ(decoded->burst_length, 4);
}

TEST(ModeRegisters, Mr2RoundTrip) {
  ModeRegisters mr;
  mr.cas_write_latency = 14;
  auto decoded = apply_mrs(ModeRegisters{}, 2, encode_mr2(mr));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->cas_write_latency, 14);
}

TEST(ModeRegisters, Mr4ControlsRefreshOptions) {
  ModeRegisters mr;
  mr.refresh_mode = RefreshMode::kFgr2x;
  mr.temp_controlled_refresh = true;
  auto decoded = apply_mrs(ModeRegisters{}, 4, encode_mr4(mr));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->refresh_mode, RefreshMode::kFgr2x);
  EXPECT_TRUE(decoded->temp_controlled_refresh);
}

TEST(ModeRegisters, Mr6ControlsTrr) {
  ModeRegisters mr;
  mr.trr_enabled = false;
  auto decoded = apply_mrs(ModeRegisters{}, 6, encode_mr6(mr));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->trr_enabled);
}

TEST(ModeRegisters, RejectsInvalidFields) {
  EXPECT_FALSE(apply_mrs(ModeRegisters{}, 0, 0x1).has_value());  // BL code 1
  EXPECT_FALSE(apply_mrs(ModeRegisters{}, 3, 0).has_value());    // MR3 n/a
  EXPECT_FALSE(apply_mrs(ModeRegisters{}, 9, 0).has_value());
}

TEST(ModeRegisters, RefreshMultiplierComposes) {
  ModeRegisters mr;
  EXPECT_DOUBLE_EQ(mr.refresh_rate_multiplier(50.0), 1.0);
  mr.refresh_mode = RefreshMode::kFgr2x;
  EXPECT_DOUBLE_EQ(mr.refresh_rate_multiplier(50.0), 2.0);
  mr.temp_controlled_refresh = true;
  EXPECT_DOUBLE_EQ(mr.refresh_rate_multiplier(84.0), 2.0);
  EXPECT_DOUBLE_EQ(mr.refresh_rate_multiplier(85.0), 4.0);  // footnote 7
}

ModuleProfile small_profile() {
  auto p = chips::profile_by_name("B3").value();
  p.rows_per_bank = 8192;
  return p;
}

TEST(ModuleMrs, RequiresPrechargedBanks) {
  Module m(small_profile());
  ASSERT_TRUE(m.activate(0, 10, 0.0).ok());
  EXPECT_FALSE(m.load_mode_register(4, 0x8, 40.0).ok());
  ASSERT_TRUE(m.precharge(0, 40.0).ok());
  EXPECT_TRUE(m.load_mode_register(4, 0x8, 60.0).ok());
  EXPECT_EQ(m.mode_registers().refresh_mode, RefreshMode::kFgr2x);
}

TEST(ModuleMrs, Fgr2xDoublesRefreshCoverage) {
  // With 8192 rows and 8192 REFs per window, the 1x stripe is one row per
  // REF; FGR 2x doubles it.
  Module normal(small_profile());
  ASSERT_TRUE(normal.refresh(0.0).ok());

  Module fgr(small_profile());
  ASSERT_TRUE(fgr.load_mode_register(4, 0x8, 0.0).ok());
  // Touch rows 0..3 so refresh has state to walk over, then compare how far
  // the cursor advances per REF via retention behavior: indirect check --
  // use the stripe arithmetic through stats instead.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fgr.refresh(10.0 * (i + 1)).ok());
  }
  EXPECT_EQ(fgr.stats().refreshes, 4u);
  // Functional consequence: at >= 85C with TCR the multiplier doubles again
  // (covered by the unit test above); here we just require REF to accept
  // the mode without error.
}

TEST(ModuleMrs, TrrDisableViaMr) {
  // Disabling TRR through the vendor MR bit has the same effect as the
  // test-harness switch: no mitigations fire even with refresh flowing.
  Module m(small_profile());
  ASSERT_TRUE(m.load_mode_register(6, 0x0, 0.0).ok());
  double t = 100.0;
  const auto n = m.mapping().physical_neighbors(500);
  ASSERT_TRUE(n.valid);
  ASSERT_TRUE(m.hammer_pair(0, n.below, n.above, 5000, 45.5, t).ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(m.refresh(t).ok());
    t += 350.0;
  }
  EXPECT_EQ(m.stats().trr_mitigations, 0u);
}

}  // namespace
}  // namespace vppstudy::dram
