// Determinism suite for the sensing hot path: the flip-index fast path and
// the reference full-row scan (Module::Options::reference_sensing) must be
// bit-exact -- identical stored bytes, identical ModuleStats, identical
// exported CSV series -- across hammer, retention, and tRCD scenarios, at
// several VPP levels, including the high-probability regime where the fast
// path falls back to the full scan.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "chips/module_db.hpp"
#include "core/export.hpp"
#include "core/study.hpp"
#include "dram/module.hpp"

namespace vppstudy::dram {
namespace {

ModuleProfile small_profile() {
  auto p = chips::profile_by_name("B3").value();
  p.rows_per_bank = 4096;
  return p;
}

Module::Options reference_options() {
  Module::Options o;
  o.reference_sensing = true;
  return o;
}

/// Drive `m` through a mixed scenario: double-sided hammer on a victim, a
/// long unrefreshed wait (retention + weak cells), and a short-tRCD read
/// burst. Returns the victim row's final bytes.
std::vector<std::uint8_t> run_scenario(Module& m, double vpp,
                                       std::uint64_t hc) {
  m.set_trr_enabled(false);
  m.set_vpp(vpp);
  const std::uint32_t victim = 500;
  const auto neighbors = m.mapping().physical_neighbors(victim);
  EXPECT_TRUE(neighbors.valid);

  double t = 100.0;
  (void)m.debug_row_snapshot(0, victim, t);  // initialize victim content

  // Double-sided hammer, then sense the victim.
  EXPECT_TRUE(
      m.hammer_pair(0, neighbors.below, neighbors.above, hc, 46.0, t).ok());
  EXPECT_TRUE(m.activate(0, victim, t).ok());
  t += 35.0;
  EXPECT_TRUE(m.precharge(0, t).ok());

  // Retention: a long unrefreshed window before the next sense.
  t += 300e6;  // 300ms
  EXPECT_TRUE(m.activate(0, victim, t).ok());

  // Short-tRCD reads while the row buffer is still settling.
  for (std::uint32_t c = 0; c < 8; ++c) {
    auto r = m.read(0, c, t + 2.0 + 0.1 * c);
    EXPECT_TRUE(r.has_value());
  }
  t += 50.0;
  EXPECT_TRUE(m.precharge(0, t).ok());

  return m.debug_row_snapshot(0, victim, t);
}

void expect_identical_stats(const ModuleStats& a, const ModuleStats& b) {
  EXPECT_EQ(a.activates, b.activates);
  EXPECT_EQ(a.precharges, b.precharges);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_EQ(a.hammer_bit_flips, b.hammer_bit_flips);
  EXPECT_EQ(a.retention_bit_flips, b.retention_bit_flips);
  EXPECT_EQ(a.trcd_read_errors, b.trcd_read_errors);
  EXPECT_EQ(a.trr_mitigations, b.trr_mitigations);
  EXPECT_EQ(a.ondie_ecc_corrections, b.ondie_ecc_corrections);
}

class SensingEquivalence
    : public ::testing::TestWithParam<std::pair<double, std::uint64_t>> {};

TEST_P(SensingEquivalence, FastAndReferenceAreBitExact) {
  const auto [vpp, hc] = GetParam();
  Module fast(small_profile());
  Module reference(small_profile(), reference_options());
  ASSERT_FALSE(fast.reference_sensing());
  ASSERT_TRUE(reference.reference_sensing());

  const auto fast_bytes = run_scenario(fast, vpp, hc);
  const auto ref_bytes = run_scenario(reference, vpp, hc);

  ASSERT_EQ(fast_bytes.size(), ref_bytes.size());
  EXPECT_EQ(fast_bytes, ref_bytes);
  expect_identical_stats(fast.stats(), reference.stats());
}

// VPP levels from nominal down to VPPmin (1.6V for B3); the 2M-activation case
// pushes the flip probability past the index tail so the fast path takes
// the full-scan fallback (equivalence must hold there too).
INSTANTIATE_TEST_SUITE_P(
    VppLevels, SensingEquivalence,
    ::testing::Values(std::pair<double, std::uint64_t>{2.5, 120000},
                      std::pair<double, std::uint64_t>{1.8, 120000},
                      std::pair<double, std::uint64_t>{1.6, 120000},
                      std::pair<double, std::uint64_t>{2.5, 2000000}));

TEST(SensingEquivalence, FlipsAccumulateIdenticallyAcrossRepeatedHammer) {
  // Repeated sub-threshold-to-threshold hammering: every sense reuses the
  // cached flip index; the reference re-scans. Stats must track exactly.
  Module fast(small_profile());
  Module reference(small_profile(), reference_options());
  for (Module* m : {&fast, &reference}) {
    m->set_trr_enabled(false);
    double t = 100.0;
    (void)m->debug_row_snapshot(0, 500, t);
    const auto neighbors = m->mapping().physical_neighbors(500);
    for (int round = 0; round < 20; ++round) {
      ASSERT_TRUE(m->hammer_pair(0, neighbors.below, neighbors.above, 150000,
                                 46.0, t)
                      .ok());
      ASSERT_TRUE(m->activate(0, 500, t).ok());
      t += 35.0;
      ASSERT_TRUE(m->precharge(0, t).ok());
      t += 15.0;
    }
  }
  expect_identical_stats(fast.stats(), reference.stats());
  EXPECT_GT(fast.stats().hammer_bit_flips, 0u);
  EXPECT_EQ(fast.debug_row_snapshot(0, 500, 1e9),
            reference.debug_row_snapshot(0, 500, 1e9));
}

TEST(SensingEquivalence, StudySweepCsvAndInstrumentationIdentical) {
  // End-to-end: the exported CSV series and the per-sweep instrumentation
  // sidecar of a RowHammer sweep must not depend on the sensing path.
  const auto run = [](bool reference) {
    core::Study study(small_profile());
    study.session().module().set_reference_sensing(reference);
    core::SweepConfig cfg = core::SweepConfig::quick();
    cfg.vpp_levels = {2.5, 1.8, 1.5};
    auto sweep = study.rowhammer_sweep(cfg);
    EXPECT_TRUE(sweep.has_value());
    return *sweep;
  };
  const core::ModuleSweepResult fast = run(false);
  const core::ModuleSweepResult reference = run(true);

  EXPECT_EQ(core::to_csv(fast).str(), core::to_csv(reference).str());
  EXPECT_EQ(fast.instrumentation, reference.instrumentation);
  EXPECT_EQ(core::instrumentation_json(fast).str(),
            core::instrumentation_json(reference).str());
}

}  // namespace
}  // namespace vppstudy::dram
