// End-to-end integration tests: a real vppd child process (the binary CMake
// built, path injected via VPPD_PATH), the port-file handshake, and the
// full socket protocol. The load-bearing assertions are the PR's acceptance
// criteria: a fully-overlapping second sweep performs zero cell
// recomputation (cache-hit counters) and returns a byte-identical "result",
// and remote results match a fresh in-process engine byte for byte.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server_test_util.hpp"

namespace vppstudy::server {
namespace {

using testing::extract_result_text;
using testing::raw_sweep;
using testing::RawConn;
using testing::reference_result_text;
using testing::response_error_code;
using testing::response_stats;

/// Spawns one vppd child per fixture instance and tears it down (shutdown
/// request first, SIGKILL as a last resort) so no test leaks a daemon.
class VppdProcess : public ::testing::Test {
 protected:
  void SetUp() override {
    port_file_ = ::testing::TempDir() + "vppd_port_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name();
    std::remove(port_file_.c_str());
    pid_ = ::fork();
    ASSERT_GE(pid_, 0) << "fork failed";
    if (pid_ == 0) {
      ::execl(VPPD_PATH, VPPD_PATH, "--port-file", port_file_.c_str(),
              "--rows-per-shard", "2", "--jobs", "2", static_cast<char*>(nullptr));
      std::perror("execl vppd");
      ::_exit(127);
    }
    // Handshake: poll for the atomically-published port file.
    for (int i = 0; i < 400 && port_ == 0; ++i) {
      std::FILE* f = std::fopen(port_file_.c_str(), "r");
      if (f != nullptr) {
        unsigned port = 0;
        const int fields = std::fscanf(f, "%u", &port);
        std::fclose(f);
        if (fields == 1 && port != 0) {
          port_ = static_cast<std::uint16_t>(port);
          break;
        }
      }
      ::usleep(25 * 1000);
    }
    ASSERT_NE(port_, 0) << "vppd never published its port";
  }

  void TearDown() override {
    if (pid_ > 0) {
      if (!shut_down_) {
        auto client = Client::connect(port_);
        if (client) (void)client->shutdown_server();
      }
      // reap_child asserts on the exit code in tests that care; here we only
      // guarantee the process is gone.
      if (!reaped_) {
        for (int i = 0; i < 400; ++i) {
          int status = 0;
          const pid_t done = ::waitpid(pid_, &status, WNOHANG);
          if (done == pid_) {
            reaped_ = true;
            break;
          }
          ::usleep(25 * 1000);
        }
        if (!reaped_) {
          ::kill(pid_, SIGKILL);
          ::waitpid(pid_, nullptr, 0);
        }
      }
    }
    std::remove(port_file_.c_str());
  }

  /// Blocking reap with an exit-code assertion (for the shutdown test).
  int reap_child() {
    int status = 0;
    EXPECT_EQ(::waitpid(pid_, &status, 0), pid_);
    reaped_ = true;
    EXPECT_TRUE(WIFEXITED(status));
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  std::uint16_t port() const { return port_; }
  void mark_shut_down() { shut_down_ = true; }

 private:
  std::string port_file_;
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
  bool shut_down_ = false;
  bool reaped_ = false;
};

TEST_F(VppdProcess, PingAndStatsAnswerInline) {
  auto client = Client::connect(port());
  ASSERT_TRUE(client.has_value());
  EXPECT_TRUE(client->ping().ok());

  const std::uint64_t id = client->next_id();
  auto stats = client->call_result(id, encode_stats_request(id));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->string_or("kind", ""), "stats");
  ASSERT_NE(stats->find("cache"), nullptr);
  ASSERT_NE(stats->find("queue"), nullptr);
}

// The acceptance criterion: a second fully-overlapping sweep recomputes
// nothing (cache-hit counters prove it) and its response "result" text is
// byte-identical -- and both match a fresh in-process engine.
TEST_F(VppdProcess, RepeatedSweepIsFullyCachedAndByteIdentical) {
  RawConn conn = RawConn::connect(port());
  SweepRequest request;
  request.module = "B3";
  request.test = "rowhammer";
  request.rows = 4;
  request.step = 0.4;
  request.seed = 7;

  const std::string first = raw_sweep(conn, 1, request);
  auto first_doc = common::parse_json(first);
  ASSERT_TRUE(first_doc.has_value());
  ASSERT_TRUE(first_doc->bool_or("ok", false)) << first;
  const auto first_stats = response_stats(*first_doc);
  EXPECT_EQ(first_stats.hits, 0u);
  EXPECT_GT(first_stats.misses, 0u);

  const std::string second = raw_sweep(conn, 2, request);
  auto second_doc = common::parse_json(second);
  ASSERT_TRUE(second_doc.has_value());
  ASSERT_TRUE(second_doc->bool_or("ok", false)) << second;
  const auto second_stats = response_stats(*second_doc);
  EXPECT_EQ(second_stats.misses, 0u) << "second sweep recomputed cells";
  EXPECT_EQ(second_stats.hits, first_stats.misses);

  const std::string first_result = extract_result_text(first);
  EXPECT_EQ(first_result, extract_result_text(second));
  EXPECT_EQ(first_result, reference_result_text(request));
}

// A coarser grid after a finer one is a subset of the same millivolt grid:
// zero recomputation across *different* requests.
TEST_F(VppdProcess, CoarserGridAfterFinerRecomputesNothing) {
  RawConn conn = RawConn::connect(port());
  SweepRequest fine;
  fine.rows = 4;
  fine.step = 0.2;
  SweepRequest coarse = fine;
  coarse.step = 0.4;

  const std::string first = raw_sweep(conn, 1, fine);
  auto first_doc = common::parse_json(first);
  ASSERT_TRUE(first_doc.has_value());
  ASSERT_TRUE(first_doc->bool_or("ok", false)) << first;

  const std::string second = raw_sweep(conn, 2, coarse);
  auto second_doc = common::parse_json(second);
  ASSERT_TRUE(second_doc.has_value());
  ASSERT_TRUE(second_doc->bool_or("ok", false)) << second;
  EXPECT_EQ(response_stats(*second_doc).misses, 0u)
      << "coarse grid is a subset of the fine grid; nothing should recompute";
  EXPECT_EQ(extract_result_text(second), reference_result_text(coarse));
}

TEST_F(VppdProcess, TrcdAndRetentionSweepsMatchInProcessReference) {
  RawConn conn = RawConn::connect(port());
  SweepRequest request;
  request.rows = 4;
  request.step = 0.4;
  for (const char* test : {"trcd", "retention"}) {
    request.test = test;
    const std::string response = raw_sweep(conn, 1, request);
    auto doc = common::parse_json(response);
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->bool_or("ok", false)) << response;
    EXPECT_EQ(extract_result_text(response), reference_result_text(request))
        << "remote " << test << " diverged from the in-process engine";
  }
}

TEST_F(VppdProcess, TypedErrorsForBadRequests) {
  RawConn conn = RawConn::connect(port());

  SweepRequest unknown_module;
  unknown_module.module = "no-such-module";
  unknown_module.rows = 4;
  conn.send_payload(encode_sweep_request(1, unknown_module));
  auto response = conn.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_error_code(*response), "kInvalidArgument");

  conn.send_payload("{\"id\":2,\"type\":\"sweep\",\"test\":\"voodoo\"}");
  response = conn.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_error_code(*response), "kInvalidArgument");

  conn.send_payload("{\"id\":3,\"type\":\"frobnicate\"}");
  response = conn.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->uint_or("id", 0), 3u);
  EXPECT_EQ(response_error_code(*response), "kUnknownRequest");

  // The connection survived all three errors.
  conn.send_payload(encode_ping_request(4));
  response = conn.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->bool_or("ok", false));
}

TEST_F(VppdProcess, ShutdownRequestExitsCleanly) {
  auto client = Client::connect(port());
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(client->shutdown_server().ok());
  mark_shut_down();
  EXPECT_EQ(reap_child(), 0);
}

}  // namespace
}  // namespace vppstudy::server
