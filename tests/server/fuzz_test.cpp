// Protocol fuzz / negative-path tests (slow tier): malformed frames from
// the seed corpus in tests/server/corpus/ plus a deterministic randomized
// round. The contract under attack input is "typed error or clean close,
// never a crash": after every hostile connection the daemon still answers
// ping on a fresh one.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "server/server.hpp"
#include "server_test_util.hpp"

namespace vppstudy::server {
namespace {

using testing::RawConn;
using testing::response_error_code;

class ServerFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    Server::Config config;
    config.service.jobs = 1;
    auto server = Server::start(config);
    ASSERT_TRUE(server.has_value());
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::uint16_t port() const { return server_->port(); }

  void expect_alive() {
    RawConn probe = RawConn::connect(port());
    probe.send_payload(encode_ping_request(1));
    auto response = probe.recv_response();
    ASSERT_TRUE(response.has_value()) << "daemon stopped answering ping";
    EXPECT_TRUE(response->bool_or("ok", false));
  }

 private:
  std::unique_ptr<Server> server_;
};

std::string frame(const std::string& payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>(len & 0xFF));
  out += payload;
  return out;
}

// Every seed corpus file is raw socket bytes (frame prefix included, when
// the case has one). The daemon must survive each and keep serving.
TEST_F(ServerFuzz, SeedCorpusNeverKillsTheDaemon) {
  const std::filesystem::path corpus(CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(corpus)) << corpus;
  int cases = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in.good()) << entry.path();
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    SCOPED_TRACE(entry.path().filename().string());

    RawConn conn = RawConn::connect(port());
    conn.send_raw(bytes);
    conn.close();  // hostile client: never reads its responses
    expect_alive();
    ++cases;
  }
  // The corpus documents the attack classes; losing it should fail loudly.
  EXPECT_GE(cases, 7) << "seed corpus went missing or shrank";
}

TEST_F(ServerFuzz, OversizedDeclaredLengthGetsTypedResponseThenClose) {
  RawConn conn = RawConn::connect(port());
  const std::string prefix = {'\x7F', '\x00', '\x00', '\x00'};  // ~2 GiB
  conn.send_raw(prefix);
  auto response = conn.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->uint_or("id", 99), 0u);  // unattributable
  EXPECT_EQ(response_error_code(*response), "kFrameTooLarge");
  // The stream cannot be resynced: the daemon closes after responding.
  std::string payload;
  auto more = read_frame(conn.socket(), payload);
  EXPECT_TRUE(!more.has_value() || !*more);
  expect_alive();
}

TEST_F(ServerFuzz, InvalidJsonGetsParseErrorAndConnectionSurvives) {
  RawConn conn = RawConn::connect(port());
  conn.send_raw(frame("{\"id\":1,\"type\":"));
  auto response = conn.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_error_code(*response), "kParseError");

  // Same connection keeps working: framing never lost sync.
  conn.send_payload(encode_ping_request(2));
  response = conn.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->bool_or("ok", false));
}

TEST_F(ServerFuzz, NonObjectRequestIsParseError) {
  RawConn conn = RawConn::connect(port());
  for (const char* payload : {"42", "[1,2,3]", "\"sweep\"", "null", ""}) {
    conn.send_raw(frame(payload));
    auto response = conn.recv_response();
    ASSERT_TRUE(response.has_value()) << payload;
    EXPECT_EQ(response_error_code(*response), "kParseError") << payload;
  }
}

TEST_F(ServerFuzz, UnknownRequestTypeIsTypedAndKeepsId) {
  RawConn conn = RawConn::connect(port());
  conn.send_raw(frame("{\"id\":77,\"type\":\"frobnicate\"}"));
  auto response = conn.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->uint_or("id", 0), 77u);
  EXPECT_EQ(response_error_code(*response), "kUnknownRequest");
}

TEST_F(ServerFuzz, NestingDepthAbuseIsAParseErrorNotAStackOverflow) {
  RawConn conn = RawConn::connect(port());
  std::string bomb(512, '[');
  bomb += std::string(512, ']');
  conn.send_raw(frame(bomb));
  auto response = conn.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_error_code(*response), "kParseError");
  expect_alive();
}

// Deterministic randomized round: well-framed garbage payloads of every
// byte class. No response is read until the end (a hostile writer), so this
// also exercises response buffering against a slow reader.
TEST_F(ServerFuzz, RandomizedFramedGarbageSurvives) {
  std::uint64_t state = 0x243F6A8885A308D3ull;  // fixed seed: reproducible
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  RawConn conn = RawConn::connect(port());
  for (int i = 0; i < 200; ++i) {
    const std::size_t len = next() % 64;
    std::string payload;
    payload.reserve(len);
    for (std::size_t j = 0; j < len; ++j) {
      payload.push_back(static_cast<char>(next() & 0xFF));
    }
    conn.send_raw(frame(payload));
  }
  conn.close();
  expect_alive();
}

}  // namespace
}  // namespace vppstudy::server
