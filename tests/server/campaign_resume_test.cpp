// Daemon-layer campaign tests: the ResultCache keys every axis coordinate
// (a 65C cell must never alias the VPP-only default cell), and a vppd
// killed mid-sweep resumes from its --manifest-dir checkpoint after restart
// with a byte-identical merged result.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/axis.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/result_cache.hpp"
#include "server_test_util.hpp"

namespace vppstudy::server {
namespace {

using testing::extract_result_text;
using testing::raw_sweep;
using testing::RawConn;
using testing::reference_result_text;
using testing::response_stats;

// --- ResultCache axis keying -------------------------------------------------

TEST(ServerCacheAxisKeys, BaselinePointSharesTheLegacyCellKey) {
  // Normalized baseline points must hash to exactly the VPP-only key: a
  // multi-axis request at the phase defaults shares cells with legacy
  // sweeps instead of recomputing them.
  const core::AxisPoint baseline{.vpp_v = 2.1};
  EXPECT_EQ(ResultCache::point_key(0xBEEF, core::JobPhase::kRowHammer, 99,
                                   baseline, 1234),
            ResultCache::cell_key(0xBEEF, core::JobPhase::kRowHammer, 99,
                                  core::vpp_millivolts(2.1), 1234));
}

TEST(ServerCacheAxisKeys, OffDefaultTemperatureNeverAliasesTheBaseline) {
  // The negative test of the satellite: a 65C cell keyed like the VPP-only
  // cell would serve 50C results for a 65C request.
  const core::AxisPoint baseline{.vpp_v = 2.1};
  const core::AxisPoint at65{.vpp_v = 2.1, .temperature_c = 65.0};
  const core::AxisPoint at80{.vpp_v = 2.1, .temperature_c = 80.0};
  const std::uint64_t base_key = ResultCache::point_key(
      0xBEEF, core::JobPhase::kRowHammer, 99, baseline, 1234);
  const std::uint64_t key65 = ResultCache::point_key(
      0xBEEF, core::JobPhase::kRowHammer, 99, at65, 1234);
  const std::uint64_t key80 = ResultCache::point_key(
      0xBEEF, core::JobPhase::kRowHammer, 99, at80, 1234);
  EXPECT_NE(key65, base_key);
  EXPECT_NE(key80, base_key);
  EXPECT_NE(key65, key80);

  const core::AxisPoint heavy{.vpp_v = 2.1, .hammer_count = 600000};
  const core::AxisPoint slow{.vpp_v = 2.1, .act_to_act_ns = 90.0};
  EXPECT_NE(ResultCache::point_key(0xBEEF, core::JobPhase::kRowHammer, 99,
                                   heavy, 1234),
            base_key);
  EXPECT_NE(ResultCache::point_key(0xBEEF, core::JobPhase::kRowHammer, 99,
                                   slow, 1234),
            base_key);
}

// --- vppd kill / restart / resume --------------------------------------------

/// Like integration_test's VppdProcess, but restartable and with a campaign
/// manifest directory plus an optional deterministic kill switch
/// (VPP_CAMPAIGN_KILL_AFTER) armed in the child's environment.
class VppdCampaignResume : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag = std::to_string(::getpid()) + "_" +
                            ::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name();
    port_file_ = ::testing::TempDir() + "vppd_port_" + tag;
    manifest_dir_ = ::testing::TempDir() + "vppd_manifests_" + tag;
  }

  void TearDown() override {
    stop_daemon(/*expect_signalled=*/false);
    std::remove(port_file_.c_str());
  }

  void start_daemon(int kill_after_writes) {
    std::remove(port_file_.c_str());
    port_ = 0;
    pid_ = ::fork();
    ASSERT_GE(pid_, 0) << "fork failed";
    if (pid_ == 0) {
      if (kill_after_writes > 0) {
        ::setenv("VPP_CAMPAIGN_KILL_AFTER",
                 std::to_string(kill_after_writes).c_str(), 1);
      } else {
        ::unsetenv("VPP_CAMPAIGN_KILL_AFTER");
      }
      ::execl(VPPD_PATH, VPPD_PATH, "--port-file", port_file_.c_str(),
              "--rows-per-shard", "2", "--jobs", "2", "--manifest-dir",
              manifest_dir_.c_str(), static_cast<char*>(nullptr));
      std::perror("execl vppd");
      ::_exit(127);
    }
    for (int i = 0; i < 400 && port_ == 0; ++i) {
      std::FILE* f = std::fopen(port_file_.c_str(), "r");
      if (f != nullptr) {
        unsigned port = 0;
        const int fields = std::fscanf(f, "%u", &port);
        std::fclose(f);
        if (fields == 1 && port != 0) {
          port_ = static_cast<std::uint16_t>(port);
          break;
        }
      }
      ::usleep(25 * 1000);
    }
    ASSERT_NE(port_, 0) << "vppd never published its port";
  }

  /// Reap the daemon; with expect_signalled, assert it died of SIGKILL
  /// (the armed kill switch), otherwise shut it down cooperatively.
  void stop_daemon(bool expect_signalled) {
    if (pid_ <= 0) return;
    if (!expect_signalled) {
      auto client = Client::connect(port_);
      if (client) (void)client->shutdown_server();
    }
    int status = 0;
    bool reaped = false;
    for (int i = 0; i < 400; ++i) {
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        reaped = true;
        break;
      }
      ::usleep(25 * 1000);
    }
    if (!reaped) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, &status, 0);
    }
    if (expect_signalled) {
      EXPECT_TRUE(WIFSIGNALED(status)) << "daemon survived the kill switch";
      if (WIFSIGNALED(status)) {
        EXPECT_EQ(WTERMSIG(status), SIGKILL);
      }
    }
    pid_ = -1;
  }

  std::uint16_t port() const { return port_; }
  const std::string& manifest_dir() const { return manifest_dir_; }

 private:
  std::string port_file_;
  std::string manifest_dir_;
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
};

SweepRequest resume_request() {
  SweepRequest request;
  request.module = "B3";
  request.test = "rowhammer";
  request.rows = 4;
  request.step = 0.4;
  request.seed = 11;
  return request;
}

// The acceptance criterion: SIGKILL the daemon mid-campaign (deterministic
// shard, via the manifest writer's kill switch), restart it on the same
// --manifest-dir, and the re-issued sweep completes from the checkpoint with
// a "result" byte-identical to a fresh in-process engine.
TEST_F(VppdCampaignResume, KilledDaemonResumesFromManifestByteIdentical) {
  const SweepRequest request = resume_request();

  // Daemon A: dies at the 2nd manifest write. The campaign checkpoints on
  // every wcdp prep and shard completion (1 wcdp + 2 shards here), so the
  // daemon dies with the prep and exactly one shard persisted -- a genuine
  // mid-campaign interruption.
  start_daemon(/*kill_after_writes=*/2);
  {
    RawConn conn = RawConn::connect(port());
    conn.send_payload(encode_sweep_request(1, request));
    auto payload = conn.recv_payload();
    EXPECT_FALSE(payload.has_value())
        << "daemon answered a sweep it should have died during: " << *payload;
  }
  stop_daemon(/*expect_signalled=*/true);

  // Daemon B: same manifest dir, kill switch disarmed. The sweep resumes
  // from completed shards; its cache is empty, so every *resumed* row comes
  // from the manifest, not the cache.
  start_daemon(/*kill_after_writes=*/0);
  RawConn conn = RawConn::connect(port());
  const std::string response = raw_sweep(conn, 1, request);
  auto doc = common::parse_json(response);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->bool_or("ok", false)) << response;
  EXPECT_EQ(extract_result_text(response), reference_result_text(request, 2));

  // And a repeat on the live daemon is served fully from cache -- the
  // manifest-resumed rows were inserted like computed ones.
  const std::string repeat = raw_sweep(conn, 2, request);
  auto repeat_doc = common::parse_json(repeat);
  ASSERT_TRUE(repeat_doc.has_value());
  ASSERT_TRUE(repeat_doc->bool_or("ok", false)) << repeat;
  EXPECT_EQ(response_stats(*repeat_doc).misses, 0u);
  EXPECT_EQ(extract_result_text(repeat), extract_result_text(response));
}

// A multi-axis request answers with the rowhammer_grid kind and resumes the
// same way (the temperature axis is first-class through the whole daemon).
TEST_F(VppdCampaignResume, MultiAxisSweepRoundTripsAndIsCached) {
  SweepRequest request = resume_request();
  request.temps = {50.0, 65.0};

  start_daemon(/*kill_after_writes=*/0);
  RawConn conn = RawConn::connect(port());
  const std::string response = raw_sweep(conn, 1, request);
  auto doc = common::parse_json(response);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->bool_or("ok", false)) << response;
  const std::string result = extract_result_text(response);
  EXPECT_NE(result.find("\"kind\":\"rowhammer_grid\""), std::string::npos)
      << result.substr(0, 200);
  EXPECT_EQ(result, reference_result_text(request, 2));

  // The 65C points must not have been served from the 50C/default cells:
  // the grid has 2x the points, so the first run misses on every cell and a
  // repeat hits on every cell.
  const std::string repeat = raw_sweep(conn, 2, request);
  auto repeat_doc = common::parse_json(repeat);
  ASSERT_TRUE(repeat_doc.has_value());
  EXPECT_EQ(response_stats(*repeat_doc).misses, 0u);
  EXPECT_EQ(extract_result_text(repeat), result);

  // A VPP-only sweep shares exactly the baseline half of those cells.
  SweepRequest vpp_only = resume_request();
  const std::string legacy = raw_sweep(conn, 3, vpp_only);
  auto legacy_doc = common::parse_json(legacy);
  ASSERT_TRUE(legacy_doc.has_value());
  ASSERT_TRUE(legacy_doc->bool_or("ok", false)) << legacy;
  EXPECT_EQ(response_stats(*legacy_doc).misses, 0u)
      << "baseline cells of the grid should cover the VPP-only sweep";
  EXPECT_EQ(extract_result_text(legacy), reference_result_text(vpp_only, 2));
}

}  // namespace
}  // namespace vppstudy::server
