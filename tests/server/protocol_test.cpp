// Wire-protocol unit tests: framing over a real loopback socket, request
// and response codec round trips, the VPP level quantization that keeps the
// cache key and the physics in agreement, and the content-addressed cache's
// key derivation and hit/miss accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/socket.hpp"
#include "core/parallel_study.hpp"
#include "core/study.hpp"
#include "server/protocol.hpp"
#include "server/result_cache.hpp"

namespace vppstudy::server {
namespace {

using common::ErrorCode;

/// One connected loopback socket pair (client end + accepted server end).
struct SocketPair {
  common::Socket client;
  common::Socket server;
};

SocketPair make_socket_pair() {
  auto listener = common::ServerSocket::listen_loopback(0);
  EXPECT_TRUE(listener.has_value());
  // Loopback backlog admits the connection before accept() runs, so the
  // single-threaded connect-then-accept order cannot deadlock.
  auto client = common::connect_loopback(listener->port());
  EXPECT_TRUE(client.has_value());
  auto server = listener->accept();
  EXPECT_TRUE(server.has_value());
  return SocketPair{std::move(*client), std::move(*server)};
}

TEST(ServerProtocol, FrameRoundTripPreservesPayloadBytes) {
  SocketPair pair = make_socket_pair();
  const std::string payload = "{\"id\":1,\"type\":\"ping\"}";
  ASSERT_TRUE(write_frame(pair.client, payload).ok());

  std::string received;
  auto more = read_frame(pair.server, received);
  ASSERT_TRUE(more.has_value());
  EXPECT_TRUE(*more);
  EXPECT_EQ(received, payload);
}

TEST(ServerProtocol, EmptyFrameIsAValidFrame) {
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(write_frame(pair.client, "").ok());
  std::string received = "sentinel";
  auto more = read_frame(pair.server, received);
  ASSERT_TRUE(more.has_value());
  EXPECT_TRUE(*more);
  EXPECT_EQ(received, "");
}

TEST(ServerProtocol, CloseAtFrameBoundaryIsClean) {
  SocketPair pair = make_socket_pair();
  pair.client.close();
  std::string received;
  auto more = read_frame(pair.server, received);
  ASSERT_TRUE(more.has_value());
  EXPECT_FALSE(*more);  // clean close, not an error
}

TEST(ServerProtocol, CloseMidPrefixIsIoError) {
  SocketPair pair = make_socket_pair();
  const unsigned char half[2] = {0x00, 0x00};
  ASSERT_TRUE(pair.client.send_all(half, sizeof(half)).ok());
  pair.client.close();
  std::string received;
  auto more = read_frame(pair.server, received);
  ASSERT_FALSE(more.has_value());
  EXPECT_EQ(more.error().code, ErrorCode::kIoError);
}

TEST(ServerProtocol, OversizedDeclaredLengthIsRefusedBeforePayload) {
  SocketPair pair = make_socket_pair();
  // Declares kMaxFrameBytes + 1: the reader must refuse on the prefix alone.
  const std::uint32_t len = static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
  const unsigned char prefix[4] = {
      static_cast<unsigned char>((len >> 24) & 0xFF),
      static_cast<unsigned char>((len >> 16) & 0xFF),
      static_cast<unsigned char>((len >> 8) & 0xFF),
      static_cast<unsigned char>(len & 0xFF),
  };
  ASSERT_TRUE(pair.client.send_all(prefix, sizeof(prefix)).ok());
  std::string received;
  auto more = read_frame(pair.server, received);
  ASSERT_FALSE(more.has_value());
  EXPECT_EQ(more.error().code, ErrorCode::kFrameTooLarge);
}

TEST(ServerProtocol, OversizedOutgoingFrameIsRefusedLocally) {
  SocketPair pair = make_socket_pair();
  const std::string huge(kMaxFrameBytes + 1, 'x');
  auto status = write_frame(pair.client, huge);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kFrameTooLarge);
}

TEST(ServerProtocol, SweepRequestRoundTrips) {
  SweepRequest request;
  request.module = "A0";
  request.test = "retention";
  request.rows = 24;
  request.step = 0.35;
  request.seed = 99;
  auto doc = common::parse_json(encode_sweep_request(7, request));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->uint_or("id", 0), 7u);
  EXPECT_EQ(doc->string_or("type", ""), "sweep");
  auto parsed = parse_sweep_request(*doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->module, request.module);
  EXPECT_EQ(parsed->test, request.test);
  EXPECT_EQ(parsed->rows, request.rows);
  EXPECT_EQ(parsed->step, request.step);
  EXPECT_EQ(parsed->seed, request.seed);
}

TEST(ServerProtocol, SweepRequestValidationIsTyped) {
  const auto parse = [](const std::string& body) {
    auto doc = common::parse_json(body);
    EXPECT_TRUE(doc.has_value());
    return parse_sweep_request(*doc);
  };
  auto bad_test = parse("{\"id\":1,\"type\":\"sweep\",\"test\":\"voodoo\"}");
  ASSERT_FALSE(bad_test.has_value());
  EXPECT_EQ(bad_test.error().code, ErrorCode::kInvalidArgument);

  auto zero_rows = parse("{\"id\":1,\"type\":\"sweep\",\"rows\":0}");
  ASSERT_FALSE(zero_rows.has_value());
  EXPECT_EQ(zero_rows.error().code, ErrorCode::kInvalidArgument);

  auto huge_rows = parse("{\"id\":1,\"type\":\"sweep\",\"rows\":100000}");
  ASSERT_FALSE(huge_rows.has_value());
  EXPECT_EQ(huge_rows.error().code, ErrorCode::kInvalidArgument);

  auto bad_step = parse("{\"id\":1,\"type\":\"sweep\",\"step\":5.0}");
  ASSERT_FALSE(bad_step.has_value());
  EXPECT_EQ(bad_step.error().code, ErrorCode::kInvalidArgument);
}

TEST(ServerProtocol, InjectRequestRoundTrips) {
  InjectRequest request;
  request.faults = "seed=9;drop_act=0.001";
  request.modules = {"B3", "A0"};
  request.rows = 12;
  request.retries = 5;
  request.seed = 42;
  request.trace_cap = 512;
  auto doc = common::parse_json(encode_inject_request(3, request));
  ASSERT_TRUE(doc.has_value());
  auto parsed = parse_inject_request(*doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->faults, request.faults);
  EXPECT_EQ(parsed->modules, request.modules);
  EXPECT_EQ(parsed->rows, request.rows);
  EXPECT_EQ(parsed->retries, request.retries);
  EXPECT_EQ(parsed->seed, request.seed);
  EXPECT_EQ(parsed->trace_cap, request.trace_cap);
}

TEST(ServerProtocol, InjectRequestNeedsModules) {
  auto doc = common::parse_json(
      "{\"id\":1,\"type\":\"inject\",\"modules\":[]}");
  ASSERT_TRUE(doc.has_value());
  auto parsed = parse_inject_request(*doc);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code, ErrorCode::kInvalidArgument);
}

TEST(ServerProtocol, ResultResponseSplicesResultVerbatim) {
  RequestStats stats;
  stats.cache_hits = 5;
  stats.cache_misses = 7;
  const std::string result = "{\"kind\":\"pong\",\"x\":[1,2.5,3]}";
  const std::string response = encode_result_response(11, result, stats);
  EXPECT_NE(response.find("\"result\":" + result), std::string::npos);

  auto doc = common::parse_json(response);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->uint_or("id", 0), 11u);
  EXPECT_TRUE(doc->bool_or("ok", false));
  auto unwrapped = response_result(*doc);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(unwrapped->string_or("kind", ""), "pong");
}

TEST(ServerProtocol, ErrorResponseRoundTripsCodeMessageAndModule) {
  common::Error error{ErrorCode::kQuotaExceeded, "too many jobs"};
  error.context.module = "B3";
  auto doc = common::parse_json(encode_error_response(4, error));
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(doc->bool_or("ok", true));
  auto unwrapped = response_result(*doc);
  ASSERT_FALSE(unwrapped.has_value());
  EXPECT_EQ(unwrapped.error().code, ErrorCode::kQuotaExceeded);
  EXPECT_EQ(unwrapped.error().message, "too many jobs");
  EXPECT_EQ(unwrapped.error().context.module, "B3");
}

TEST(ServerProtocol, LevelQuantizationMakesCoarseGridASubsetOfFine) {
  SweepRequest fine;
  fine.step = 0.2;
  SweepRequest coarse;
  coarse.step = 0.4;
  const auto fine_cfg = sweep_config_from_request(fine);
  const auto coarse_cfg = sweep_config_from_request(coarse);
  // Every coarse level must be bitwise-equal to some fine level: the cache
  // keys by millivolt, and step 0.4 arithmetic must land on the exact
  // doubles step 0.2 produced.
  for (const double v : coarse_cfg.vpp_levels) {
    bool found = false;
    for (const double f : fine_cfg.vpp_levels) {
      if (f == v) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "coarse level " << v << " not on the fine grid";
  }
  // And quantization means every level sits exactly on the mV grid.
  for (const double v : fine_cfg.vpp_levels) {
    EXPECT_EQ(v, static_cast<double>(core::vpp_millivolts(v)) / 1000.0);
  }
}

TEST(ServerProtocol, HammerSweepCodecRoundTripsByteIdentically) {
  core::ModuleSweepResult sweep;
  sweep.module_name = "B3";
  sweep.mfr = static_cast<dram::Manufacturer>(1);
  sweep.vppmin_v = 1.9;
  sweep.vpp_levels = {2.5, 2.1, 1.7};
  core::RowSeries row;
  row.row = 129;
  row.wcdp = dram::DataPattern::kCheckerAA;
  row.hc_first = {17869, 19047, 20801};
  row.ber = {2.6398e-03, 0.0, 1.25e-07};
  sweep.rows.push_back(row);

  const std::string json = hammer_sweep_to_json(sweep);
  auto doc = common::parse_json(json);
  ASSERT_TRUE(doc.has_value());
  auto decoded = hammer_sweep_from_json(*doc);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(hammer_sweep_to_json(*decoded), json);
}

TEST(ServerProtocol, TrcdSweepCodecRoundTripsByteIdentically) {
  core::TrcdSweepResult sweep;
  sweep.module_name = "A0";
  sweep.vppmin_v = 2.0;
  sweep.vpp_levels = {2.5, 2.3};
  sweep.trcd_min_ns = {13.5, 16.123456789012345};
  const std::string json = trcd_sweep_to_json(sweep);
  auto doc = common::parse_json(json);
  ASSERT_TRUE(doc.has_value());
  auto decoded = trcd_sweep_from_json(*doc);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(trcd_sweep_to_json(*decoded), json);
}

TEST(ServerProtocol, RetentionSweepCodecRoundTripsByteIdentically) {
  core::RetentionSweepResult sweep;
  sweep.module_name = "B3";
  sweep.mfr = static_cast<dram::Manufacturer>(2);
  sweep.vpp_levels = {2.5, 2.1};
  sweep.trefw_ms = {16.0, 32.0, 64.0};
  sweep.mean_ber = {{0.0, 1e-9, 2.5e-8}, {0.0, 3e-9, 4.5e-8}};
  sweep.row_ber_at_reference = {{1e-9}, {3e-9}};
  const std::string json = retention_sweep_to_json(sweep);
  auto doc = common::parse_json(json);
  ASSERT_TRUE(doc.has_value());
  auto decoded = retention_sweep_from_json(*doc);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(retention_sweep_to_json(*decoded), json);
}

TEST(ServerProtocol, ConfigDigestPinsEveryResultAffectingField) {
  SweepRequest request;
  const core::SweepConfig base = sweep_config_from_request(request);
  const std::uint64_t digest = ResultCache::config_digest(base, 0);
  EXPECT_EQ(ResultCache::config_digest(base, 0), digest);  // stable
  EXPECT_NE(ResultCache::config_digest(base, 1), digest);  // seed

  core::SweepConfig sampling = base;
  sampling.sampling.rows_per_chunk += 1;
  EXPECT_NE(ResultCache::config_digest(sampling, 0), digest);

  core::SweepConfig hammer = base;
  hammer.hammer.initial_hc += 1;
  EXPECT_NE(ResultCache::config_digest(hammer, 0), digest);

  core::SweepConfig retention = base;
  retention.retention.min_trefw_ms *= 2.0;
  EXPECT_NE(ResultCache::config_digest(retention, 0), digest);

  // The level grid is deliberately NOT in the digest: that is what lets
  // overlapping grids (step 0.4 vs 0.2) share cells.
  core::SweepConfig levels = base;
  levels.vpp_levels.pop_back();
  EXPECT_EQ(ResultCache::config_digest(levels, 0), digest);
}

TEST(ServerProtocol, CellKeySeparatesEveryAxis) {
  const std::uint64_t digest = 0x1234;
  const std::uint64_t key = ResultCache::cell_key(
      digest, core::JobPhase::kRowHammer, 7, 2500, 100);
  EXPECT_EQ(ResultCache::cell_key(digest, core::JobPhase::kRowHammer, 7, 2500,
                                  100),
            key);
  EXPECT_NE(ResultCache::cell_key(digest, core::JobPhase::kTrcd, 7, 2500, 100),
            key);
  EXPECT_NE(ResultCache::cell_key(digest, core::JobPhase::kRowHammer, 8, 2500,
                                  100),
            key);
  EXPECT_NE(ResultCache::cell_key(digest, core::JobPhase::kRowHammer, 7, 2300,
                                  100),
            key);
  EXPECT_NE(ResultCache::cell_key(digest, core::JobPhase::kRowHammer, 7, 2500,
                                  101),
            key);
  EXPECT_NE(ResultCache::cell_key(digest + 1, core::JobPhase::kRowHammer, 7,
                                  2500, 100),
            key);
}

TEST(ServerProtocol, ResultCacheCountsHitsAndMisses) {
  ResultCache cache;
  CellValue cell;
  EXPECT_FALSE(cache.lookup(42, &cell));
  CellValue stored;
  stored.hc_first = 12345;
  stored.ber = 0.5;
  cache.insert(42, stored);
  EXPECT_TRUE(cache.lookup(42, &cell));
  EXPECT_EQ(cell.hc_first, 12345u);
  EXPECT_EQ(cell.ber, 0.5);

  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.cells, 1u);

  std::vector<dram::DataPattern> wcdp{dram::DataPattern::kCheckerAA};
  EXPECT_FALSE(cache.lookup_wcdp(7, &wcdp));
  cache.insert_wcdp(7, wcdp);
  std::vector<dram::DataPattern> out;
  EXPECT_TRUE(cache.lookup_wcdp(7, &out));
  EXPECT_EQ(out, wcdp);
  // WCDP preps are bookkeeping, not grid cells: no hit/miss accounting.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().wcdp_preps, 1u);
}

}  // namespace
}  // namespace vppstudy::server
