// Distributed-campaign suites: coordinator fencing and crash-restart
// reconciliation (explicit now_ms, no sleeping), the lease/submit/heartbeat
// verbs over a real loopback daemon, two-worker byte-identity against the
// single-host engine, and the result cache's LRU bound.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chips/module_db.hpp"
#include "common/error.hpp"
#include "core/campaign.hpp"
#include "core/campaign_lease.hpp"
#include "core/export.hpp"
#include "server/client.hpp"
#include "server/coordinator.hpp"
#include "server/result_cache.hpp"
#include "server/server.hpp"
#include "server/worker.hpp"

namespace vppstudy::server {
namespace {

using common::ErrorCode;
using core::JobPhase;

core::CampaignPlan small_plan(std::uint64_t seed = 11) {
  core::StudyConfig config;
  config.sweep.vpp_levels = {2.5, 2.1, 1.7};
  config.sweep.sampling.chunks = 2;
  config.sweep.sampling.rows_per_chunk = 2;
  config.sweep.hammer.num_iterations = 1;
  config.sweep.trcd.num_iterations = 1;
  config.sweep.retention.num_iterations = 1;
  config.modules = {chips::profile_by_name("B3").value()};
  config.seed = seed;
  config.jobs = 1;
  config.rows_per_shard = 2;
  return core::CampaignPlan::from_study(std::move(config));
}

std::string temp_manifest(const char* tag) {
  return ::testing::TempDir() + "distributed_" + tag + "_" +
         std::to_string(::getpid()) + ".json";
}

void remove_campaign_files(const std::string& manifest_path) {
  std::remove(manifest_path.c_str());
  std::remove(core::campaign_ledger_path(manifest_path).c_str());
}

/// The grid-shard batch a worker would compute for `indices`.
core::CampaignShardBatch compute_batch(
    const core::CampaignPlan& plan, const std::vector<std::uint64_t>& indices) {
  auto batch =
      core::run_campaign_shards(plan, JobPhase::kRowHammer, indices, nullptr);
  EXPECT_TRUE(batch.has_value())
      << (batch ? "" : batch.error().to_string());
  return batch ? *std::move(batch) : core::CampaignShardBatch{};
}

// --- Coordinator fencing (in-memory, explicit clocks) ------------------------

TEST(ServerCoordinator, StaleTokenSubmitRejectedAndNothingMerged) {
  auto coordinator =
      CampaignCoordinator::open(small_plan(), JobPhase::kRowHammer, "");
  ASSERT_TRUE(coordinator.has_value()) << coordinator.error().to_string();
  CampaignCoordinator& coord = **coordinator;

  auto slow = coord.lease("slow", 2, /*ttl_ms=*/100, /*now_ms=*/0);
  ASSERT_TRUE(slow.has_value());
  ASSERT_EQ(slow->shards.size(), 2u);
  const core::CampaignShardBatch batch = compute_batch(
      small_plan(), slow->shards);

  // The lease expires; the same shards are re-granted to a faster worker
  // under a new fencing token.
  auto fast = coord.lease("fast", 2, /*ttl_ms=*/100, /*now_ms=*/200);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(fast->shards, slow->shards);
  EXPECT_NE(fast->token, slow->token);

  // The slow worker's late submission is rejected with the typed error and
  // merges nothing -- even though (by determinism) its bytes match.
  auto late = coord.submit("slow", slow->token, coord.plan_hash(), batch.wcdp,
                           batch.shards, /*now_ms=*/250);
  ASSERT_FALSE(late.has_value());
  EXPECT_EQ(late.error().code, ErrorCode::kLeaseExpired);
  EXPECT_NE(late.error().message.find("nothing merged"), std::string::npos);
  EXPECT_EQ(coord.status().done, 0u);

  // The holder of the live token submits the identical records and wins.
  auto merged = coord.submit("fast", fast->token, coord.plan_hash(),
                             batch.wcdp, batch.shards, /*now_ms=*/260);
  ASSERT_TRUE(merged.has_value()) << merged.error().to_string();
  EXPECT_EQ(merged->accepted, 2u);
  EXPECT_EQ(coord.status().done, 2u);

  const auto stats = coord.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].worker, "slow");
  EXPECT_EQ(stats[0].expired, 2u);
  EXPECT_EQ(stats[0].completed, 0u);
  EXPECT_EQ(stats[1].worker, "fast");
  EXPECT_EQ(stats[1].completed, 2u);
}

TEST(ServerCoordinator, GrantsCarryMergedWcdpPreps) {
  auto coordinator =
      CampaignCoordinator::open(small_plan(), JobPhase::kRowHammer, "");
  ASSERT_TRUE(coordinator.has_value()) << coordinator.error().to_string();
  CampaignCoordinator& coord = **coordinator;

  // Before anything is merged there is no prep to ship.
  auto first = coord.lease("w1", 2, /*ttl_ms=*/1000, /*now_ms=*/0);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->wcdp.empty());

  // The first submitted batch carries the module's WCDP prep; every grant
  // after the merge ships it, so a second worker seeds its memo instead of
  // recomputing the prep.
  const core::CampaignShardBatch batch =
      compute_batch(small_plan(), first->shards);
  ASSERT_FALSE(batch.wcdp.empty());
  auto merged = coord.submit("w1", first->token, coord.plan_hash(),
                             batch.wcdp, batch.shards, /*now_ms=*/10);
  ASSERT_TRUE(merged.has_value()) << merged.error().to_string();

  auto second = coord.lease("w2", 2, /*ttl_ms=*/1000, /*now_ms=*/20);
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(second->wcdp.size(), 1u);
  EXPECT_EQ(second->wcdp[0].module, "B3");
  EXPECT_EQ(second->wcdp[0].wcdp, batch.wcdp[0].wcdp);
}

TEST(ServerCoordinator, WrongPlanHashIsTypedAndAtomic) {
  auto coordinator =
      CampaignCoordinator::open(small_plan(), JobPhase::kRowHammer, "");
  ASSERT_TRUE(coordinator.has_value());
  CampaignCoordinator& coord = **coordinator;

  auto grant = coord.lease("w", 2, /*ttl_ms=*/1000, /*now_ms=*/0);
  ASSERT_TRUE(grant.has_value());
  const core::CampaignShardBatch batch =
      compute_batch(small_plan(), grant->shards);

  auto wrong = coord.submit("w", grant->token, coord.plan_hash() ^ 1,
                            batch.wcdp, batch.shards, /*now_ms=*/10);
  ASSERT_FALSE(wrong.has_value());
  EXPECT_EQ(wrong.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(wrong.error().message.find("nothing merged"), std::string::npos);
  EXPECT_EQ(coord.status().done, 0u);

  // Nothing was consumed: the same token still merges.
  auto merged = coord.submit("w", grant->token, coord.plan_hash(), batch.wcdp,
                             batch.shards, /*now_ms=*/20);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->accepted, grant->shards.size());
}

TEST(ServerCoordinator, HeartbeatExtendsUntilExpiry) {
  auto coordinator =
      CampaignCoordinator::open(small_plan(), JobPhase::kRowHammer, "");
  ASSERT_TRUE(coordinator.has_value());
  CampaignCoordinator& coord = **coordinator;

  // Lease every shard (max_shards 0 = all open) so the probe below can only
  // be fed by expiry.
  auto grant = coord.lease("w", 0, /*ttl_ms=*/100, /*now_ms=*/0);
  ASSERT_TRUE(grant.has_value());
  const std::uint64_t planned = coord.status().planned;
  ASSERT_EQ(grant->shards.size(), planned);

  // Renewed at 90: the deadline moves to 1090, so at 150 nothing is open
  // for a second worker.
  auto renewed = coord.heartbeat(grant->token, /*ttl_ms=*/1000, /*now_ms=*/90);
  ASSERT_TRUE(renewed.has_value());
  EXPECT_EQ(*renewed, planned);
  auto probe = coord.lease("other", 8, /*ttl_ms=*/100, /*now_ms=*/150);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->token, 0u);
  EXPECT_TRUE(probe->shards.empty());
  EXPECT_FALSE(probe->complete);

  // Past the renewed deadline the shards are re-granted, after which the
  // original token heartbeats kLeaseExpired.
  auto regrant = coord.lease("other", 0, /*ttl_ms=*/100, /*now_ms=*/2000);
  ASSERT_TRUE(regrant.has_value());
  EXPECT_EQ(regrant->shards.size(), planned);
  auto dead = coord.heartbeat(grant->token, /*ttl_ms=*/100, /*now_ms=*/2010);
  ASSERT_FALSE(dead.has_value());
  EXPECT_EQ(dead.error().code, ErrorCode::kLeaseExpired);
}

TEST(ServerCoordinator, RestartReconcilesManifestIntoLedger) {
  const std::string path = temp_manifest("restart");
  remove_campaign_files(path);

  auto first =
      CampaignCoordinator::open(small_plan(), JobPhase::kRowHammer, path);
  ASSERT_TRUE(first.has_value()) << first.error().to_string();
  const std::uint64_t planned = (*first)->status().planned;
  ASSERT_GT(planned, 2u);

  auto grant = (*first)->lease("w1", 2, /*ttl_ms=*/1000, /*now_ms=*/0);
  ASSERT_TRUE(grant.has_value());
  const core::CampaignShardBatch batch =
      compute_batch(small_plan(), grant->shards);
  auto merged = (*first)->submit("w1", grant->token, (*first)->plan_hash(),
                                 batch.wcdp, batch.shards, /*now_ms=*/10);
  ASSERT_TRUE(merged.has_value());
  first->reset();  // "crash" the coordinator

  // A reopened coordinator resumes from the files: merged work stays done,
  // the submitter's stats survive, and the rest is still open for lease.
  auto second =
      CampaignCoordinator::open(small_plan(), JobPhase::kRowHammer, path);
  ASSERT_TRUE(second.has_value()) << second.error().to_string();
  EXPECT_EQ((*second)->status().done, 2u);
  EXPECT_EQ((*second)->status().open, planned - 2);
  const auto stats = (*second)->worker_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].worker, "w1");
  EXPECT_EQ(stats[0].completed, 2u);

  // A changed plan must not adopt the files.
  auto mismatch = CampaignCoordinator::open(small_plan(/*seed=*/99),
                                            JobPhase::kRowHammer, path);
  ASSERT_FALSE(mismatch.has_value());
  EXPECT_EQ(mismatch.error().code, ErrorCode::kInvalidArgument);
  remove_campaign_files(path);
}

// --- The lease verbs over a real loopback daemon -----------------------------

TEST(ServerDistributed, LeaseVerbsDriveACampaignToCompletion) {
  auto server = Server::start({});
  ASSERT_TRUE(server.has_value()) << server.error().to_string();

  // The campaign spec text a coordinator ships to need_plan workers doubles
  // as the campaign_open payload.
  auto local =
      CampaignCoordinator::open(small_plan(), JobPhase::kRowHammer, "");
  ASSERT_TRUE(local.has_value());
  const std::string spec = (*local)->campaign_spec_json();
  const std::uint64_t plan_hash = (*local)->plan_hash();

  auto client = Client::connect((*server)->port());
  ASSERT_TRUE(client.has_value()) << client.error().to_string();

  // campaign_open is idempotent: opening twice is joining, not an error.
  for (int round = 0; round < 2; ++round) {
    auto opened = client->campaign_open(spec);
    ASSERT_TRUE(opened.has_value()) << opened.error().to_string();
    std::uint64_t opened_hash = 0;
    ASSERT_TRUE(
        core::parse_u64_hex(opened->string_or("plan_hash", ""), opened_hash));
    EXPECT_EQ(opened_hash, plan_hash);
    EXPECT_FALSE(opened->bool_or("complete", true));
  }

  // Lease -> heartbeat -> compute -> submit until complete, like a worker,
  // but driving each verb explicitly. The first grant carries the plan.
  LeaseRequest lease_request;
  lease_request.plan_hash = plan_hash;
  lease_request.worker = "drive";
  lease_request.max_shards = 2;
  lease_request.need_plan = true;
  core::CampaignPlan plan;
  bool have_plan = false;
  std::uint64_t accepted = 0;
  for (;;) {
    auto grant = client->lease(lease_request);
    ASSERT_TRUE(grant.has_value()) << grant.error().to_string();
    if (!have_plan) {
      ASSERT_TRUE(grant->has_campaign);
      auto from_spec = core::plan_from_manifest(grant->campaign);
      ASSERT_TRUE(from_spec.has_value()) << from_spec.error().to_string();
      plan = *std::move(from_spec);
      plan.manifest_path.clear();
      EXPECT_EQ(plan.digest(JobPhase::kRowHammer), plan_hash);
      have_plan = true;
      lease_request.need_plan = false;
    }
    if (grant->shards.empty()) {
      EXPECT_TRUE(grant->complete);
      break;
    }
    auto renewed = client->heartbeat({plan_hash, grant->token, 30000});
    ASSERT_TRUE(renewed.has_value()) << renewed.error().to_string();
    EXPECT_EQ(*renewed, grant->shards.size());

    const core::CampaignShardBatch batch = compute_batch(plan, grant->shards);
    SubmitRequest submit;
    submit.plan_hash = plan_hash;
    submit.phase = JobPhase::kRowHammer;
    submit.worker = "drive";
    submit.token = grant->token;
    submit.wcdp = batch.wcdp;
    submit.shards = batch.shards;
    auto outcome = client->submit(submit);
    ASSERT_TRUE(outcome.has_value()) << outcome.error().to_string();
    EXPECT_EQ(outcome->duplicates, 0u);
    accepted += outcome->accepted;

    // Resubmitting the merged batch is pure duplicates -- idempotent over
    // the wire, not just in-process.
    auto resubmit = client->submit(submit);
    ASSERT_TRUE(resubmit.has_value()) << resubmit.error().to_string();
    EXPECT_EQ(resubmit->accepted, 0u);
    EXPECT_EQ(resubmit->duplicates, batch.shards.size());
    if (outcome->complete) break;
  }
  EXPECT_EQ(accepted, (*local)->status().planned);

  // A submit against a plan hash nobody opened is a typed failure.
  SubmitRequest alien;
  alien.plan_hash = plan_hash ^ 1;
  alien.phase = JobPhase::kRowHammer;
  alien.worker = "drive";
  alien.token = 1;
  auto unknown = client->submit(alien);
  ASSERT_FALSE(unknown.has_value());
  EXPECT_EQ(unknown.error().code, ErrorCode::kInvalidArgument);
  (*server)->stop();
}

TEST(ServerDistributed, TwoWorkersMergeByteIdenticalToSingleHost) {
  const std::string path = temp_manifest("two_workers");
  remove_campaign_files(path);

  auto coordinator =
      CampaignCoordinator::open(small_plan(), JobPhase::kRowHammer, path);
  ASSERT_TRUE(coordinator.has_value()) << coordinator.error().to_string();
  auto server = Server::start({});
  ASSERT_TRUE(server.has_value()) << server.error().to_string();
  std::shared_ptr<CampaignCoordinator> shared = *std::move(coordinator);
  (*server)->service().adopt_campaign(shared);

  // Two real workers over loopback, small leases so both get work.
  std::vector<common::Result<CampaignWorker::Summary>> summaries;
  summaries.resize(2, CampaignWorker::Summary{});
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      CampaignWorker::Options options;
      options.port = (*server)->port();
      options.worker_id = "w" + std::to_string(w + 1);
      options.lease_shards = 2;
      options.ttl_ms = 30000;
      summaries[w] = CampaignWorker::run(options);
    });
  }
  for (std::thread& t : threads) t.join();
  (*server)->stop();

  std::uint64_t accepted = 0;
  for (const auto& summary : summaries) {
    ASSERT_TRUE(summary.has_value()) << summary.error().to_string();
    accepted += summary->shards;
  }
  EXPECT_EQ(accepted, shared->status().planned);
  EXPECT_TRUE(shared->complete());

  // The merged manifest resumes to grids byte-identical to a single-host
  // run of the same plan.
  core::CampaignPlan resume_plan = small_plan();
  resume_plan.manifest_path = path;
  core::CampaignEngine resumed(std::move(resume_plan));
  auto merged_grids = resumed.run_hammer();
  ASSERT_TRUE(merged_grids.has_value()) << merged_grids.error().to_string();

  core::CampaignEngine single(small_plan());
  auto single_grids = single.run_hammer();
  ASSERT_TRUE(single_grids.has_value());
  ASSERT_EQ(merged_grids->size(), single_grids->size());
  for (std::size_t m = 0; m < single_grids->size(); ++m) {
    EXPECT_EQ(core::grid_json((*merged_grids)[m]).str(),
              core::grid_json((*single_grids)[m]).str());
  }
  remove_campaign_files(path);
}

// --- Result cache LRU bound --------------------------------------------------

CellValue cell_of(std::uint64_t tag) {
  CellValue value;
  value.hc_first = tag;
  return value;
}

TEST(ServerCacheLru, EvictsLeastRecentlyUsedAtCapacity) {
  ResultCache cache(/*max_cells=*/3);
  cache.insert(1, cell_of(1));
  cache.insert(2, cell_of(2));
  cache.insert(3, cell_of(3));

  // Touch key 1 so key 2 is the least recently used, then overflow.
  CellValue out;
  ASSERT_TRUE(cache.lookup(1, &out));
  cache.insert(4, cell_of(4));

  EXPECT_TRUE(cache.lookup(1, &out));
  EXPECT_EQ(out.hc_first, 1u);
  EXPECT_FALSE(cache.lookup(2, &out));  // evicted
  EXPECT_TRUE(cache.lookup(3, &out));
  EXPECT_TRUE(cache.lookup(4, &out));

  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.cells, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.max_cells, 3u);
}

TEST(ServerCacheLru, ReinsertRefreshesRecencyInsteadOfGrowing) {
  ResultCache cache(/*max_cells=*/2);
  cache.insert(1, cell_of(1));
  cache.insert(2, cell_of(2));
  cache.insert(1, cell_of(100));  // refresh + overwrite, not a third cell
  cache.insert(3, cell_of(3));    // evicts 2, the stale one

  CellValue out;
  EXPECT_TRUE(cache.lookup(1, &out));
  EXPECT_EQ(out.hc_first, 100u);
  EXPECT_FALSE(cache.lookup(2, &out));
  EXPECT_TRUE(cache.lookup(3, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServerCacheLru, UnboundedByDefaultAndWcdpNeverEvicts) {
  ResultCache unbounded;
  for (std::uint64_t k = 0; k < 64; ++k) {
    unbounded.insert(k, cell_of(k));
  }
  EXPECT_EQ(unbounded.stats().cells, 64u);
  EXPECT_EQ(unbounded.stats().evictions, 0u);
  EXPECT_EQ(unbounded.stats().max_cells, 0u);

  // WCDP preps are one-per-(digest, module) and sit outside the cell bound.
  ResultCache tiny(/*max_cells=*/1);
  tiny.insert_wcdp(7, {dram::DataPattern::kCheckerAA});
  tiny.insert_wcdp(8, {dram::DataPattern::kChecker55});
  std::vector<dram::DataPattern> wcdp;
  EXPECT_TRUE(tiny.lookup_wcdp(7, &wcdp));
  EXPECT_TRUE(tiny.lookup_wcdp(8, &wcdp));
  EXPECT_EQ(tiny.stats().wcdp_preps, 2u);
  EXPECT_EQ(tiny.stats().evictions, 0u);
}

}  // namespace
}  // namespace vppstudy::server
