// Shared helpers of the tests/server suites: a raw framed connection (for
// byte-level protocol assertions the typed Client would paper over), result
// text extraction (the byte-identity contract covers the spliced "result"
// substring of a response), and an in-process reference sweep.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/expected.hpp"
#include "common/json.hpp"
#include "common/socket.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/service.hpp"

namespace vppstudy::server::testing {

/// A client connection that speaks raw frames (and, for the fuzz suites,
/// raw bytes that are not frames at all).
class RawConn {
 public:
  static RawConn connect(std::uint16_t port) {
    auto socket = common::connect_loopback(port);
    EXPECT_TRUE(socket.has_value()) << "connect_loopback failed";
    return RawConn(std::move(*socket));
  }

  explicit RawConn(common::Socket socket) : socket_(std::move(socket)) {}

  [[nodiscard]] const common::Socket& socket() const { return socket_; }

  /// Send one well-formed frame.
  void send_payload(std::string_view payload) {
    ASSERT_TRUE(write_frame(socket_, payload).ok());
  }

  /// Send bytes verbatim -- no framing, no validity promise.
  void send_raw(const std::string& bytes) {
    ASSERT_TRUE(socket_.send_all(bytes.data(), bytes.size()).ok());
  }

  /// Read one response frame's raw payload text.
  [[nodiscard]] common::Result<std::string> recv_payload() {
    std::string payload;
    auto more = read_frame(socket_, payload);
    if (!more) return std::move(more).error();
    if (!*more) {
      return common::Error{common::ErrorCode::kIoError,
                           "peer closed at frame boundary"};
    }
    return payload;
  }

  /// Read one response frame as a parsed document.
  [[nodiscard]] common::Result<common::JsonValue> recv_response() {
    auto payload = recv_payload();
    if (!payload) return std::move(payload).error();
    return common::parse_json(*payload);
  }

  void close() { socket_.close(); }

 private:
  common::Socket socket_;
};

/// The spliced "result" substring of a successful response payload -- the
/// exact bytes the byte-identity contract covers.
inline std::string extract_result_text(const std::string& response) {
  constexpr std::string_view kPrefix = "\"ok\":true,\"result\":";
  constexpr std::string_view kSuffix = ",\"stats\":{\"cache_hits\":";
  const std::size_t start = response.find(kPrefix);
  const std::size_t end = response.rfind(kSuffix);
  EXPECT_NE(start, std::string::npos) << response.substr(0, 200);
  EXPECT_NE(end, std::string::npos) << response.substr(0, 200);
  if (start == std::string::npos || end == std::string::npos) return {};
  const std::size_t begin = start + kPrefix.size();
  return response.substr(begin, end - begin);
}

/// The error code name of a failed response payload ("" when ok).
inline std::string response_error_code(const common::JsonValue& response) {
  if (response.bool_or("ok", false)) return "";
  const common::JsonValue* error = response.find("error");
  if (error == nullptr) return "(no error member)";
  return error->string_or("code", "(no code)");
}

struct SweepStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

inline SweepStats response_stats(const common::JsonValue& response) {
  SweepStats out;
  if (const common::JsonValue* stats = response.find("stats")) {
    out.hits = stats->uint_or("cache_hits", 0);
    out.misses = stats->uint_or("cache_misses", 0);
  }
  return out;
}

/// One sweep request/response cycle over a raw connection; returns the full
/// raw response payload so callers can assert byte identity.
inline std::string raw_sweep(RawConn& conn, std::uint64_t id,
                             const SweepRequest& request) {
  conn.send_payload(encode_sweep_request(id, request));
  auto payload = conn.recv_payload();
  EXPECT_TRUE(payload.has_value());
  return payload ? *payload : std::string();
}

/// The "result" text a fresh in-process engine computes for `request` -- the
/// reference the daemon's responses must match byte for byte. A new Service
/// per call so no cache state leaks between references.
inline std::string reference_result_text(const SweepRequest& request,
                                         std::uint32_t rows_per_shard = 4) {
  Service::Config config;
  config.jobs = 2;
  config.rows_per_shard = rows_per_shard;
  Service service(config);
  auto outcome = service.sweep(request, common::CancelToken());
  EXPECT_TRUE(outcome.has_value())
      << (outcome ? "" : outcome.error().to_string());
  return outcome ? outcome->result_json : std::string();
}

}  // namespace vppstudy::server::testing
