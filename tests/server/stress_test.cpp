// Concurrency stress tests (slow tier, sanitizer-clean by construction):
// deterministic JobQueue backpressure/quota semantics exercised directly,
// then an in-process Server hammered by concurrent clients with overlapping
// sweeps -- every response must be ok and byte-identical across clients,
// and afterwards the whole grid must be resident in the cache.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/job_queue.hpp"
#include "server/server.hpp"
#include "server_test_util.hpp"

namespace vppstudy::server {
namespace {

using common::ErrorCode;
using testing::extract_result_text;
using testing::raw_sweep;
using testing::RawConn;
using testing::response_stats;

/// A job that parks its dispatcher until released, making queue occupancy
/// deterministic for the admission tests.
class Gate {
 public:
  JobQueue::Job job() {
    return [this](const common::CancelToken&) {
      std::unique_lock lock(mu_);
      ++running_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    };
  }

  void wait_running(int n) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return running_ >= n; });
  }

  void release() {
    std::lock_guard lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int running_ = 0;
  bool released_ = false;
};

TEST(ServerStress, QueueFullIsTypedBackpressure) {
  JobQueue::Config config;
  config.capacity = 1;
  config.per_client_quota = 8;
  config.dispatchers = 1;
  JobQueue queue(config);
  Gate gate;

  // Job 1 occupies the only dispatcher; job 2 fills the pending queue.
  ASSERT_TRUE(queue.submit(1, 1, gate.job()).ok());
  gate.wait_running(1);
  ASSERT_TRUE(queue.submit(1, 2, gate.job()).ok());

  auto rejected = queue.submit(1, 3, gate.job());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kQueueFull);
  EXPECT_EQ(queue.stats().rejected_full, 1u);

  gate.release();
  queue.shutdown();
  EXPECT_EQ(queue.stats().completed, 2u);
}

TEST(ServerStress, PerClientQuotaIsTypedAndPerClient) {
  JobQueue::Config config;
  config.capacity = 16;
  config.per_client_quota = 1;
  config.dispatchers = 1;
  JobQueue queue(config);
  Gate gate;

  ASSERT_TRUE(queue.submit(1, 1, gate.job()).ok());
  gate.wait_running(1);

  auto rejected = queue.submit(1, 2, gate.job());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kQuotaExceeded);
  EXPECT_EQ(queue.stats().rejected_quota, 1u);

  // The quota is per client: another client is admitted immediately.
  EXPECT_TRUE(queue.submit(2, 1, gate.job()).ok());

  gate.release();
  queue.shutdown();
}

TEST(ServerStress, DuplicateInFlightRequestIdIsInvalid) {
  JobQueue::Config config;
  config.dispatchers = 1;
  JobQueue queue(config);
  Gate gate;

  ASSERT_TRUE(queue.submit(1, 1, gate.job()).ok());
  gate.wait_running(1);
  auto duplicate = queue.submit(1, 1, gate.job());
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.error().code, ErrorCode::kInvalidArgument);

  gate.release();
  queue.shutdown();
}

TEST(ServerStress, CancelTripsTokenAndCompletionPathIsUniform) {
  JobQueue::Config config;
  config.dispatchers = 1;
  JobQueue queue(config);
  Gate gate;

  std::atomic<bool> observed_cancel{false};
  ASSERT_TRUE(queue.submit(1, 1, gate.job()).ok());
  gate.wait_running(1);
  ASSERT_TRUE(queue
                  .submit(1, 2,
                          [&](const common::CancelToken& token) {
                            observed_cancel = token.cancelled();
                          })
                  .ok());
  // Cancel the *pending* job: it must still run (through the uniform
  // completion path) and observe its tripped token immediately.
  EXPECT_TRUE(queue.cancel(1, 2));
  EXPECT_FALSE(queue.cancel(1, 99));  // unknown request id
  EXPECT_FALSE(queue.cancel(9, 2));   // wrong client

  gate.release();
  queue.shutdown();
  EXPECT_TRUE(observed_cancel.load());
  EXPECT_EQ(queue.stats().completed, 2u);
  EXPECT_EQ(queue.stats().cancel_requests, 1u);
}

TEST(ServerStress, ShutdownRunsPendingJobsWithTrippedTokens) {
  JobQueue::Config config;
  config.dispatchers = 1;
  JobQueue queue(config);
  Gate gate;

  std::atomic<int> ran{0};
  std::atomic<int> cancelled{0};
  ASSERT_TRUE(queue.submit(1, 1, gate.job()).ok());
  gate.wait_running(1);
  for (std::uint64_t id = 2; id <= 4; ++id) {
    ASSERT_TRUE(queue
                    .submit(1, id,
                            [&](const common::CancelToken& token) {
                              ++ran;
                              if (token.cancelled()) ++cancelled;
                            })
                    .ok());
  }
  // Shut down while the gate still holds the dispatcher, so jobs 2..4 are
  // pending at shutdown time. shutdown() blocks joining the dispatcher, so
  // it runs on its own thread; the gate is only released once admission
  // refuses (kCancelled) -- proof the shutdown already tripped every
  // in-flight token. (Probe jobs admitted before the flip are no-ops.)
  std::thread shutter([&] { queue.shutdown(); });
  for (std::uint64_t probe_id = 100;; ++probe_id) {
    auto probe = queue.submit(2, probe_id, [](const common::CancelToken&) {});
    if (!probe.ok()) {
      EXPECT_EQ(probe.error().code, ErrorCode::kCancelled);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.release();
  shutter.join();
  // Every pending job still ran (response delivery is the job's duty), each
  // observing its tripped token.
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(cancelled.load(), 3);

  auto late = queue.submit(1, 9, [](const common::CancelToken&) {});
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().code, ErrorCode::kCancelled);
}

// N clients, overlapping grids, concurrent connections: every response ok,
// identical requests byte-identical across clients, and a final sweep runs
// entirely from the cache.
TEST(ServerStress, ConcurrentOverlappingSweepsStayConsistent) {
  Server::Config config;
  config.service.jobs = 2;
  config.service.rows_per_shard = 2;
  auto server = Server::start(config);
  ASSERT_TRUE(server.has_value());
  const std::uint16_t port = (*server)->port();

  constexpr int kClients = 4;
  const double steps[kClients] = {0.4, 0.2, 0.4, 0.2};
  std::vector<std::string> coarse_results;
  std::mutex results_mu;
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      RawConn conn = RawConn::connect(port);
      SweepRequest request;
      request.rows = 4;
      request.step = steps[c];
      for (std::uint64_t id = 1; id <= 2; ++id) {
        const std::string response = raw_sweep(conn, id, request);
        auto doc = common::parse_json(response);
        if (!doc || !doc->bool_or("ok", false)) {
          ++failures;
          continue;
        }
        if (request.step == 0.4) {
          std::lock_guard lock(results_mu);
          coarse_results.push_back(extract_result_text(response));
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  ASSERT_FALSE(coarse_results.empty());
  for (const std::string& result : coarse_results) {
    EXPECT_EQ(result, coarse_results.front())
        << "identical requests diverged across concurrent clients";
  }

  // By now every cell of the fine grid exists; a fresh client's fine sweep
  // must be pure cache.
  RawConn conn = RawConn::connect(port);
  SweepRequest fine;
  fine.rows = 4;
  fine.step = 0.2;
  const std::string response = raw_sweep(conn, 1, fine);
  auto doc = common::parse_json(response);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->bool_or("ok", false)) << response;
  EXPECT_EQ(response_stats(*doc).misses, 0u);

  (*server)->stop();
}

// Admission limits surface over the socket as typed error responses: with
// quota 1 and a single dispatcher, pipelined sweeps 2 and 3 arrive while
// sweep 1 is still running and must be rejected, never crash or hang.
TEST(ServerStress, PipelinedRequestsBeyondQuotaGetTypedRejections) {
  Server::Config config;
  config.service.jobs = 1;
  config.service.rows_per_shard = 1;
  config.queue.capacity = 1;
  config.queue.per_client_quota = 1;
  config.queue.dispatchers = 1;
  auto server = Server::start(config);
  ASSERT_TRUE(server.has_value());

  RawConn conn = RawConn::connect((*server)->port());
  SweepRequest request;
  request.rows = 8;
  request.step = 0.2;
  // Pipeline three identical sweeps back to back. The rejections answer
  // inline (reader thread) while the admitted sweep computes, so they
  // arrive first; ids pair responses to requests regardless of order.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    conn.send_payload(encode_sweep_request(id, request));
  }
  int ok_count = 0;
  int rejected = 0;
  for (int i = 0; i < 3; ++i) {
    auto response = conn.recv_response();
    ASSERT_TRUE(response.has_value());
    if (response->bool_or("ok", false)) {
      ++ok_count;
      continue;
    }
    const std::string code = testing::response_error_code(*response);
    EXPECT_TRUE(code == "kQuotaExceeded" || code == "kQueueFull") << code;
    ++rejected;
  }
  EXPECT_EQ(ok_count, 1);
  EXPECT_EQ(rejected, 2);
  const JobQueue::Stats stats = (*server)->queue_stats();
  EXPECT_EQ(stats.rejected_full + stats.rejected_quota, 2u);

  (*server)->stop();
}

}  // namespace
}  // namespace vppstudy::server
