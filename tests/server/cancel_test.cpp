// Cancellation coverage: a pre-cancelled token short-circuits the service
// with a typed kCancelled; a mid-flight socket cancel leaves the queue
// drained and the cache untorn (whole rows only), so a re-issued request
// completes and matches the serial reference byte for byte; a vanished
// client's jobs are cancelled on connection teardown.
#include <gtest/gtest.h>

#include <string>

#include "common/cancel.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "server_test_util.hpp"

namespace vppstudy::server {
namespace {

using common::ErrorCode;
using testing::extract_result_text;
using testing::raw_sweep;
using testing::RawConn;
using testing::reference_result_text;
using testing::response_error_code;

TEST(ServerCancel, PreCancelledTokenShortCircuitsSweep) {
  Service::Config config;
  config.jobs = 1;
  Service service(config);
  common::CancelToken token;
  token.cancel();

  SweepRequest request;
  request.rows = 4;
  request.step = 0.4;
  auto outcome = service.sweep(request, token);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::kCancelled);

  // A subsequent un-cancelled sweep on the same service completes and is
  // byte-identical to a fresh engine: the cancelled attempt left no torn
  // state behind.
  auto retry = service.sweep(request, common::CancelToken());
  ASSERT_TRUE(retry.has_value()) << retry.error().to_string();
  EXPECT_EQ(retry->result_json, reference_result_text(request));
}

TEST(ServerCancel, PreCancelledTokenShortCircuitsInjectAndReplay) {
  Service::Config config;
  config.jobs = 1;
  Service service(config);
  common::CancelToken token;
  token.cancel();

  auto inject = service.inject(InjectRequest{}, token);
  ASSERT_FALSE(inject.has_value());
  EXPECT_EQ(inject.error().code, ErrorCode::kCancelled);

  auto replay = service.replay("{}", token);
  ASSERT_FALSE(replay.has_value());
  EXPECT_EQ(replay.error().code, ErrorCode::kCancelled);
}

// Cancel a sweep mid-shard over the socket. Whatever the race outcome (the
// sweep may squeak through), the invariants hold: the response is ok or
// typed kCancelled, the queue drains, and a re-issued request completes
// byte-identical to the serial reference -- cached partial progress is
// whole rows or nothing.
TEST(ServerCancel, MidFlightCancelLeavesNoTornCells) {
  Server::Config config;
  config.service.jobs = 1;
  config.service.rows_per_shard = 1;  // many small shards: cancel lands mid-sweep
  config.queue.dispatchers = 1;
  auto server = Server::start(config);
  ASSERT_TRUE(server.has_value());

  RawConn conn = RawConn::connect((*server)->port());
  SweepRequest request;
  request.rows = 8;
  request.step = 0.2;
  conn.send_payload(encode_sweep_request(1, request));
  conn.send_payload(encode_cancel_request(2, 1));

  bool sweep_cancelled = false;
  bool saw_cancel_ack = false;
  for (int i = 0; i < 2; ++i) {
    auto response = conn.recv_response();
    ASSERT_TRUE(response.has_value());
    const std::uint64_t id = response->uint_or("id", 0);
    if (id == 2) {
      ASSERT_TRUE(response->bool_or("ok", false));
      saw_cancel_ack = true;
      continue;
    }
    ASSERT_EQ(id, 1u);
    if (!response->bool_or("ok", false)) {
      EXPECT_EQ(response_error_code(*response), "kCancelled");
      sweep_cancelled = true;
    }
  }
  EXPECT_TRUE(saw_cancel_ack);
  // rows_per_shard=1 makes the cancel race overwhelmingly land mid-sweep,
  // but the assertion is on the invariants either way.
  if (!sweep_cancelled) {
    GTEST_LOG_(INFO) << "sweep completed before the cancel landed";
  }

  // Queue drained: an inline request answers immediately.
  conn.send_payload(encode_ping_request(3));
  auto pong = conn.recv_response();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->bool_or("ok", false));

  // Re-issue: completes, and matches a fresh serial engine byte for byte
  // even though some shards of the cancelled attempt were cached.
  const std::string retry = raw_sweep(conn, 4, request);
  auto retry_doc = common::parse_json(retry);
  ASSERT_TRUE(retry_doc.has_value());
  ASSERT_TRUE(retry_doc->bool_or("ok", false)) << retry;
  EXPECT_EQ(extract_result_text(retry), reference_result_text(request));

  (*server)->stop();
}

TEST(ServerCancel, CancelUnknownTargetReportsNotFound) {
  Server::Config config;
  config.service.jobs = 1;
  auto server = Server::start(config);
  ASSERT_TRUE(server.has_value());

  RawConn conn = RawConn::connect((*server)->port());
  conn.send_payload(encode_cancel_request(1, 12345));
  auto response = conn.recv_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->bool_or("ok", false));
  const common::JsonValue* result = response->find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_FALSE(result->bool_or("found", true));

  (*server)->stop();
}

// A client that vanishes mid-job must not wedge the daemon: connection
// teardown cancels its in-flight work and later clients are served.
TEST(ServerCancel, DisconnectCancelsInFlightJobs) {
  Server::Config config;
  config.service.jobs = 1;
  config.service.rows_per_shard = 1;
  config.queue.dispatchers = 1;
  auto server = Server::start(config);
  ASSERT_TRUE(server.has_value());
  const std::uint16_t port = (*server)->port();

  {
    RawConn doomed = RawConn::connect(port);
    SweepRequest request;
    request.rows = 8;
    request.step = 0.2;
    doomed.send_payload(encode_sweep_request(1, request));
    doomed.close();  // vanish without reading the response
  }

  // The daemon keeps serving: a small sweep on a fresh connection completes
  // promptly (the orphaned job was cancelled, not left hogging the single
  // dispatcher for its full runtime).
  RawConn conn = RawConn::connect(port);
  SweepRequest small;
  small.rows = 2;
  small.step = 0.4;
  const std::string response = raw_sweep(conn, 1, small);
  auto doc = common::parse_json(response);
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->bool_or("ok", false)) << response;

  (*server)->stop();
}

}  // namespace
}  // namespace vppstudy::server
