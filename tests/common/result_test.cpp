// Tests for the typed-diagnostics machinery: ErrorCode taxonomy, the
// ErrorContext with_*() chain (fill-blanks-only semantics), to_string
// rendering, the monadic Result helpers, and the propagation macros that
// every layer uses to forward errors without re-wrapping strings.
#include "common/expected.hpp"

#include <gtest/gtest.h>

#include <string>
#include <type_traits>

#include "common/error.hpp"

namespace vppstudy::common {
namespace {

TEST(ErrorCodeName, IsStablePerCode) {
  EXPECT_EQ(error_code_name(ErrorCode::kUnknown), "kUnknown");
  EXPECT_EQ(error_code_name(ErrorCode::kVppOutOfRange), "kVppOutOfRange");
  EXPECT_EQ(error_code_name(ErrorCode::kReadUnderrun), "kReadUnderrun");
  EXPECT_EQ(error_code_name(ErrorCode::kNoUsableLevels), "kNoUsableLevels");
}

TEST(Error, DefaultsToUnknownWithEmptyContext) {
  const Error e{"something broke"};
  EXPECT_EQ(e.code, ErrorCode::kUnknown);
  EXPECT_EQ(e.message, "something broke");
  EXPECT_TRUE(e.context.empty());
}

TEST(Error, WithCodeRefinesOnlyUnknown) {
  const Error refined = Error{"parse failed"}.with_code(ErrorCode::kParseError);
  EXPECT_EQ(refined.code, ErrorCode::kParseError);
  // A concrete code is closest to the failure; later layers cannot clobber.
  Error copy = refined;
  const Error reclobbered = std::move(copy).with_code(ErrorCode::kDeviceProtocol);
  EXPECT_EQ(reclobbered.code, ErrorCode::kParseError);
}

TEST(Error, ChainersFillOnlyBlankFields) {
  Error inner = Error{ErrorCode::kDeviceProtocol, "RD with no open row"}
                    .with_module("B3")
                    .with_bank_row(2, 17)
                    .with_vpp_mv(1700);
  // The inner layer already attributed the failure; outer guesses lose.
  // Blank fields (op here) do get filled.
  const Error e = std::move(inner)
                      .with_module("A0")
                      .with_bank_row(0, 0)
                      .with_vpp_mv(2500)
                      .with_op("RD");
  EXPECT_EQ(e.context.module, "B3");
  EXPECT_EQ(e.context.bank, 2);
  EXPECT_EQ(e.context.row, 17);
  EXPECT_EQ(e.context.vpp_mv, 1700);
  EXPECT_EQ(e.context.op, "RD");
}

TEST(Error, NotesChainOutermostFirst) {
  const Error e =
      Error{"boom"}.with_context("inner layer").with_context("outer layer");
  EXPECT_EQ(e.context.notes, "outer layer <- inner layer");
}

TEST(Error, ConstWithContextLeavesOriginalIntact) {
  const Error e = Error{"boom"}.with_context("first");
  const Error annotated = e.with_context("second");
  EXPECT_EQ(e.context.notes, "first");
  EXPECT_EQ(annotated.context.notes, "second <- first");
}

TEST(Error, ToStringRendersCodeContextAndNotes) {
  const Error e = Error{ErrorCode::kReadUnderrun, "short read"}
                      .with_module("B3")
                      .with_op("RD")
                      .with_bank_row(0, 17)
                      .with_vpp_mv(1700)
                      .with_context("phase B")
                      .with_context("read verification");
  EXPECT_EQ(e.to_string(),
            "[kReadUnderrun] short read "
            "(module=B3 op=RD bank=0 row=17 vpp=1700mV) "
            "{ctx: read verification <- phase B}");
}

TEST(Error, ToStringOmitsEmptyContext) {
  const Error e{ErrorCode::kEmptySample, "no rows"};
  EXPECT_EQ(e.to_string(), "[kEmptySample] no rows");
}

TEST(ResultAlias, UnifiesExpectedAndStatus) {
  static_assert(std::is_same_v<Result<>, Status>);
  static_assert(std::is_same_v<Result<void>, Status>);
  static_assert(std::is_same_v<Result<int>, Expected<int>>);
  SUCCEED();
}

// --- Monadic helpers ---------------------------------------------------------

Expected<int> parse_positive(int v) {
  if (v <= 0) return Error{ErrorCode::kInvalidArgument, "not positive"};
  return v;
}

TEST(Expected, AndThenChainsOnSuccess) {
  const auto r = parse_positive(4).and_then(
      [](const int v) -> Expected<std::string> { return std::to_string(v); });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, "4");
}

TEST(Expected, AndThenForwardsErrorIntact) {
  const auto r = parse_positive(-1).and_then(
      [](const int v) -> Expected<std::string> { return std::to_string(v); });
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.error().message, "not positive");
}

TEST(Expected, TransformWrapsPlainValue) {
  const auto r = parse_positive(5).transform([](const int v) { return 2 * v; });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 10);
}

TEST(Expected, TransformErrorChainsContext) {
  auto r = parse_positive(-1);
  auto annotated = std::move(r).transform_error(
      [](Error&& e) { return std::move(e).with_context("layer above"); });
  ASSERT_FALSE(annotated.has_value());
  EXPECT_EQ(annotated.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(annotated.error().context.notes, "layer above");
}

TEST(Status, AndThenRunsOnOk) {
  const Status ok;
  const auto r =
      ok.and_then([]() -> Expected<int> { return 3; });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 3);
}

TEST(Status, TransformErrorChainsContext) {
  Status st = Error{ErrorCode::kThermalTimeout, "no settle"};
  st = std::move(st).transform_error(
      [](Error&& e) { return std::move(e).with_context("retention init"); });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kThermalTimeout);
  EXPECT_EQ(st.error().context.notes, "retention init");
}

// --- Propagation macros ------------------------------------------------------
// A three-layer stack: the innermost failure's code and context survive the
// crossing of every boundary, while each layer adds one breadcrumb.

Status device_layer(bool fail) {
  if (fail) {
    return Error{ErrorCode::kDeviceProtocol, "RD with no open row"}
        .with_op("RD")
        .with_bank(1);
  }
  return Status::ok_status();
}

Status harness_layer(bool fail) {
  VPP_RETURN_IF_ERROR_CTX(device_layer(fail), "measure_ber");
  return Status::ok_status();
}

Expected<int> core_layer(bool fail) {
  // Status error converts to the Expected<int> return type.
  VPP_RETURN_IF_ERROR_CTX(harness_layer(fail), "rowhammer job");
  return 42;
}

TEST(Macros, ReturnIfErrorForwardsTypedErrorAcrossLayers) {
  const auto r = core_layer(true);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kDeviceProtocol);
  EXPECT_EQ(r.error().context.op, "RD");
  EXPECT_EQ(r.error().context.bank, 1);
  EXPECT_EQ(r.error().context.notes, "rowhammer job <- measure_ber");
}

TEST(Macros, ReturnIfErrorPassesOkThrough) {
  const auto r = core_layer(false);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 42);
}

Expected<int> doubled(int v) {
  VPP_ASSIGN_OR_RETURN(const int x, parse_positive(v));
  return 2 * x;
}

TEST(Macros, AssignOrReturnDeclaresValueOrForwards) {
  const auto ok = doubled(21);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 42);

  const auto err = doubled(0);
  ASSERT_FALSE(err.has_value());
  EXPECT_EQ(err.error().code, ErrorCode::kInvalidArgument);
}

TEST(Macros, AssignOrReturnMovesNonCopyableValues) {
  // The macro moves out of the Expected; a move-only payload compiles.
  struct MoveOnly {
    explicit MoveOnly(int v) : value(v) {}
    MoveOnly(MoveOnly&&) = default;
    MoveOnly& operator=(MoveOnly&&) = default;
    MoveOnly(const MoveOnly&) = delete;
    int value;
  };
  const auto make = []() -> Expected<MoveOnly> { return MoveOnly{9}; };
  const auto use = [&]() -> Expected<int> {
    VPP_ASSIGN_OR_RETURN(const MoveOnly m, make());
    return m.value;
  };
  const auto r = use();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 9);
}

}  // namespace
}  // namespace vppstudy::common
