#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace vppstudy::common {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Mix64, AvalanchesSingleBitChanges) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t base = mix64(0x1234567890abcdefULL);
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t flipped = mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    const int differing = __builtin_popcountll(base ^ flipped);
    EXPECT_GT(differing, 10) << "weak diffusion at input bit " << bit;
    EXPECT_LT(differing, 54) << "weak diffusion at input bit " << bit;
  }
}

TEST(HashKey, OrderSensitive) {
  EXPECT_NE(hash_key({1, 2}), hash_key({2, 1}));
  EXPECT_NE(hash_key({1, 2}), hash_key({1, 2, 0}));
}

TEST(UniformAt, InUnitInterval) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = uniform_at({i, 7});
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(UniformAt, MeanIsApproximatelyHalf) {
  double sum = 0.0;
  constexpr int kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) sum += uniform_at({i, 99});
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447), 1.0, 1e-4);
}

TEST(InverseNormalCdf, RoundTripsThroughCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(inverse_normal_cdf(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(InverseNormalCdf, HandlesExtremeInputsWithoutInfinities) {
  EXPECT_TRUE(std::isfinite(inverse_normal_cdf(0.0)));
  EXPECT_TRUE(std::isfinite(inverse_normal_cdf(1.0)));
  EXPECT_LT(inverse_normal_cdf(1e-12), -6.0);
  EXPECT_GT(inverse_normal_cdf(1.0 - 1e-12), 6.0);
}

TEST(NormalAt, ApproximatelyStandardNormal) {
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    const double z = normal_at({i, 3});
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, UniformRangeRespected) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.5);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Xoshiro256, NormalMomentsReasonable) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal(5.0, 2.0);
    sum += z;
    sum_sq += (z - 5.0) * (z - 5.0);
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / kN), 2.0, 0.05);
}

TEST(Xoshiro256, BoundedStaysBelowBound) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.bounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
  EXPECT_EQ(rng.bounded(0), 0u);
}

}  // namespace
}  // namespace vppstudy::common
