#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vppstudy::common {
namespace {

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, RunsManyTasksAcrossWorkers) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i, &counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_EQ(sum, kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const auto caller = std::this_thread::get_id();
  auto future = pool.submit([caller] {
    return std::this_thread::get_id() == caller;
  });
  // The inline pool must have finished the task before submit returned.
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(future.get());
}

TEST(ThreadPool, ZeroWorkersStillPropagatesExceptions) {
  ThreadPool pool(0);
  auto future = pool.submit([]() -> int { throw std::logic_error("inline"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPool, StealsWorkSubmittedFromWithinTasks) {
  // One producer task fans nested tasks out; idle workers must steal them.
  ThreadPool pool(4);
  constexpr int kNested = 64;
  std::vector<std::future<int>> nested;
  nested.reserve(kNested);
  auto producer = pool.submit([&pool, &nested] {
    for (int i = 0; i < kNested; ++i) {
      nested.push_back(pool.submit([i] { return i + 1; }));
    }
    return 0;
  });
  producer.get();
  int sum = 0;
  for (auto& f : nested) sum += f.get();
  EXPECT_EQ(sum, kNested * (kNested + 1) / 2);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      auto future = pool.submit([&done] {
        done.fetch_add(1, std::memory_order_relaxed);
      });
      (void)future;  // futures dropped on purpose: destructor must still run
    }
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, WorkerLocalSlotsAreStableAcrossSubmissions) {
  // A worker must see the *same* slot every time a task lands on it: the
  // sweep engine parks a rig session in its slot and reuses it across shard
  // jobs. Record each task's slot address and value; a slot's value may only
  // ever be touched by its owning worker, so per-slot counters must add up.
  constexpr unsigned kWorkers = 3;
  WorkerLocal<int> counters(kWorkers);
  ASSERT_EQ(counters.size(), kWorkers + 1u);
  ThreadPool pool(kWorkers);

  constexpr int kTasks = 200;
  std::vector<std::future<int*>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&counters, &pool] {
      int& slot = counters.local(pool);
      ++slot;
      return &slot;
    }));
  }
  std::vector<int*> slots;
  slots.reserve(kTasks);
  for (auto& f : futures) slots.push_back(f.get());

  int total = 0;
  for (std::size_t s = 0; s < counters.size(); ++s) total += counters.slot(s);
  EXPECT_EQ(total, kTasks);
  // Every returned address is one of the arena's slots, and slot 0 (the
  // non-worker slot) was never handed to a pool worker.
  for (int* p : slots) {
    bool found = false;
    for (std::size_t s = 1; s < counters.size(); ++s) {
      if (p == &counters.slot(s)) found = true;
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(counters.slot(0), 0);
}

TEST(ThreadPool, WorkerLocalInlinePoolUsesCallerSlot) {
  // A 0-worker pool runs tasks inline on the submitting thread, which maps
  // to slot 0 -- the same slot the coordinator itself would get.
  WorkerLocal<int> counters(0);
  ThreadPool pool(0);
  EXPECT_EQ(pool.slot_of_current_thread(), 0u);
  for (int i = 0; i < 5; ++i) {
    pool.submit([&counters, &pool] { ++counters.local(pool); }).get();
  }
  EXPECT_EQ(counters.slot(0), 5);
  EXPECT_EQ(&counters.local(pool), &counters.slot(0));
}

TEST(ThreadPool, WorkerLocalValuesSurviveIntoPoolDestructorDrain) {
  // The drain in ~ThreadPool still runs queued tasks; the arena (declared
  // before the pool, per the lifetime rule) must absorb those late touches.
  WorkerLocal<int> counters(2);
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      auto f = pool.submit([&counters, &pool] { ++counters.local(pool); });
      (void)f;
    }
  }
  int total = 0;
  for (std::size_t s = 0; s < counters.size(); ++s) total += counters.slot(s);
  EXPECT_EQ(total, 64);
}

TEST(ThreadPool, ResolveJobsMapsUserFacingValues) {
  EXPECT_EQ(ThreadPool::resolve_jobs(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_jobs(7), 7u);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);   // all hardware threads
  EXPECT_GE(ThreadPool::resolve_jobs(-3), 1u);
  EXPECT_EQ(ThreadPool::workers_for_jobs(1), 0u);  // serial => inline pool
  EXPECT_EQ(ThreadPool::workers_for_jobs(5), 5u);
}

}  // namespace
}  // namespace vppstudy::common
