// Tests for the JSON parser that reads back what JsonWriter produced:
// writer/parser round-trips, typed kParseError failures with byte offsets,
// the depth cap, and the unknown-key tolerance the versioned trace-dump
// format relies on to grow compatibly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"

namespace vppstudy::common {
namespace {

TEST(JsonParse, RoundTripsWriterDocument) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "vppstudy-trace-dump/1");
  w.kv("count", std::uint64_t{42});
  w.kv("vpp_v", 2.5);
  w.kv("ok", true);
  w.key("entries").begin_array();
  w.begin_object().kv("cmd", "ACT").kv("row", std::uint64_t{1500}).end_object();
  w.begin_object().kv("cmd", "PRE").kv("row", std::uint64_t{0}).end_object();
  w.end_array();
  w.end_object();

  const auto doc = parse_json(w.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->string_or("schema", ""), "vppstudy-trace-dump/1");
  EXPECT_EQ(doc->uint_or("count", 0), 42u);
  EXPECT_DOUBLE_EQ(doc->number_or("vpp_v", 0.0), 2.5);
  EXPECT_TRUE(doc->bool_or("ok", false));

  const JsonValue* entries = doc->find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_TRUE(entries->is_array());
  ASSERT_EQ(entries->items().size(), 2u);
  EXPECT_EQ(entries->items()[0].string_or("cmd", ""), "ACT");
  EXPECT_EQ(entries->items()[1].string_or("cmd", ""), "PRE");
}

TEST(JsonParse, RoundTripsDoublesExactly) {
  // The writer emits %.17g, enough digits to reconstruct any double
  // bit-exactly -- which is what makes trace-dump timestamps replayable.
  const double values[] = {0.0, 1.0 / 3.0, 6.25e-9, 123456.789012345,
                           2.8421709430404007e-14};
  for (const double v : values) {
    JsonWriter w;
    w.begin_object().kv("x", v).end_object();
    const auto doc = parse_json(w.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->number_or("x", -1.0), v);
  }
}

TEST(JsonParse, RoundTripsEscapedStrings) {
  const std::string original = "a\"b\\c\nd\te\x01f";
  JsonWriter w;
  w.begin_object().kv("s", original).end_object();
  const auto doc = parse_json(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("s", ""), original);
}

TEST(JsonParse, UnknownKeysAreIgnorable) {
  // Forward compatibility: lookups on keys a reader does not know about
  // simply miss, and extra keys never make a document unparseable.
  const auto doc =
      parse_json(R"({"known": 1, "from_the_future": {"nested": [1, 2]}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->uint_or("known", 0), 1u);
  EXPECT_EQ(doc->find("absent"), nullptr);
  EXPECT_EQ(doc->uint_or("absent", 7), 7u);
  EXPECT_EQ(doc->string_or("from_the_future", "fallback"), "fallback");
}

TEST(JsonParse, FailsWithByteOffsetOnTruncation) {
  const auto doc = parse_json(R"({"a": )");
  ASSERT_FALSE(doc.has_value());
  EXPECT_EQ(doc.error().code, ErrorCode::kParseError);
  EXPECT_NE(doc.error().message.find("at byte"), std::string::npos);
}

TEST(JsonParse, FailsOnTrailingGarbage) {
  const auto doc = parse_json(R"({"a": 1} extra)");
  ASSERT_FALSE(doc.has_value());
  EXPECT_EQ(doc.error().code, ErrorCode::kParseError);
}

TEST(JsonParse, FailsOnMalformedLiteralsAndNumbers) {
  for (const char* bad : {"tru", "{\"a\": nul}", "[1, 2,]", "{\"a\" 1}",
                          "1.2.3", "--5", "\"unterminated"}) {
    const auto doc = parse_json(bad);
    ASSERT_FALSE(doc.has_value()) << bad;
    EXPECT_EQ(doc.error().code, ErrorCode::kParseError) << bad;
  }
}

TEST(JsonParse, RejectsHostileNestingDepth) {
  // A dump must not be able to overflow the parser's stack.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  const auto doc = parse_json(deep);
  ASSERT_FALSE(doc.has_value());
  EXPECT_EQ(doc.error().code, ErrorCode::kParseError);
  EXPECT_NE(doc.error().message.find("nesting too deep"), std::string::npos);
}

TEST(JsonParse, AcceptsReasonableNestingDepth) {
  std::string nested;
  for (int i = 0; i < 32; ++i) nested += '[';
  nested += '1';
  for (int i = 0; i < 32; ++i) nested += ']';
  EXPECT_TRUE(parse_json(nested).has_value());
}

TEST(JsonParseFile, MissingFileIsTypedParseError) {
  const auto doc = parse_json_file("/nonexistent/vppstudy-test.json");
  ASSERT_FALSE(doc.has_value());
  EXPECT_EQ(doc.error().code, ErrorCode::kParseError);
}

}  // namespace
}  // namespace vppstudy::common
