#include "common/expected.hpp"

#include <gtest/gtest.h>

#include <string>

namespace vppstudy::common {
namespace {

Expected<int> parse_positive(int v) {
  if (v <= 0) return Error{"not positive"};
  return v;
}

TEST(Expected, HoldsValue) {
  const Expected<int> e = parse_positive(5);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 5);
  EXPECT_EQ(*e, 5);
}

TEST(Expected, HoldsError) {
  const Expected<int> e = parse_positive(-1);
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().message, "not positive");
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> e = std::string("payload");
  const std::string s = std::move(e).value();
  EXPECT_EQ(s, "payload");
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> e = std::string("abc");
  EXPECT_EQ(e->size(), 3u);
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
}

TEST(Status, CarriesError) {
  const Status s = Error{"rail fault"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().message, "rail fault");
}

}  // namespace
}  // namespace vppstudy::common
