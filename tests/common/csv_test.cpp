#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace vppstudy::common {
namespace {

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, QuotesFieldsWithSeparators) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, HeaderOnly) {
  const CsvWriter w({"a", "b"});
  EXPECT_EQ(w.str(), "a,b\n");
  EXPECT_EQ(w.row_count(), 0u);
}

TEST(CsvWriter, RowsAndTypes) {
  CsvWriter w({"name", "x", "n"});
  w.begin_row();
  w.add("first");
  w.add(1.5);
  w.add(std::uint64_t{42});
  w.begin_row();
  w.add("second");
  w.add(-2.25);
  w.add(std::int64_t{-7});
  EXPECT_EQ(w.str(), "name,x,n\nfirst,1.5,42\nsecond,-2.25,-7\n");
}

TEST(CsvWriter, RowCountExcludesOpenRow) {
  CsvWriter w({"a"});
  w.begin_row();
  w.add("x");
  EXPECT_EQ(w.row_count(), 0u);
  w.begin_row();  // closes the first row
  EXPECT_EQ(w.row_count(), 1u);
}

TEST(CsvWriter, WritesFile) {
  CsvWriter w({"k", "v"});
  w.begin_row();
  w.add("vpp");
  w.add(2.5);
  const std::string path = testing::TempDir() + "/csv_test_out.csv";
  ASSERT_TRUE(w.write_file(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
  std::getline(f, line);
  EXPECT_EQ(line, "vpp,2.5");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vppstudy::common
