// Parameterized property sweeps of the circuit simulator across VPP levels:
// invariants that must hold at every operating point.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dram_cell.hpp"
#include "circuit/solver.hpp"

namespace vppstudy::circuit {
namespace {

class ActivationAtVpp : public ::testing::TestWithParam<double> {
 protected:
  DramCellSimParams params() const {
    DramCellSimParams p;
    p.vpp_v = GetParam();
    return p;
  }
};

TEST_P(ActivationAtVpp, TransientConvergesAndIsBounded) {
  auto r = simulate_activation(params());
  ASSERT_TRUE(r.has_value()) << r.error().message;
  for (std::size_t i = 0; i < r->t_ns.size(); ++i) {
    EXPECT_GT(r->v_bitline[i], -0.2) << "t=" << r->t_ns[i];
    EXPECT_LT(r->v_bitline[i], 1.5) << "t=" << r->t_ns[i];
    EXPECT_GT(r->v_cell[i], -0.2);
    EXPECT_LT(r->v_cell[i], 1.5);
  }
}

TEST_P(ActivationAtVpp, ChargeSharingNeverExceedsSteadyState) {
  const auto p = params();
  auto r = simulate_activation(p);
  ASSERT_TRUE(r.has_value());
  const double vsat = steady_state_cell_voltage(p);
  EXPECT_LE(r->v_cell_final, vsat + 0.02) << "cell overshoot";
}

TEST_P(ActivationAtVpp, BitlinesSeparateAfterSensing) {
  auto r = simulate_activation(params());
  ASSERT_TRUE(r.has_value());
  // By the end of the transient the latch must have railed the pair apart.
  const double sep = r->v_bitline.back() - r->v_blb.back();
  EXPECT_GT(std::abs(sep), 0.8);
}

TEST_P(ActivationAtVpp, StoredZeroIsAlwaysReadReliably) {
  // A '0' does not depend on the wordline overdrive: discharging works at
  // every VPP the study tested.
  auto p = params();
  p.cell_stores_one = false;
  auto r = simulate_activation(p);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->reliable) << "vpp=" << p.vpp_v;
  EXPECT_LT(r->v_cell_final, 0.1);
}

TEST_P(ActivationAtVpp, EnergyDecaysNothingOscillates) {
  // Backward Euler is L-stable: the recorded waveforms must not ring. Check
  // the bitline is monotone after the latch has clearly railed.
  auto r = simulate_activation(params());
  ASSERT_TRUE(r.has_value());
  std::size_t start = r->t_ns.size() * 3 / 4;
  for (std::size_t i = start + 1; i < r->t_ns.size(); ++i) {
    EXPECT_NEAR(r->v_bitline[i], r->v_bitline[i - 1], 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(VppGrid, ActivationAtVpp,
                         ::testing::Values(2.5, 2.3, 2.1, 2.0, 1.9, 1.8, 1.7),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "Vpp" +
                                  std::to_string(static_cast<int>(
                                      std::lround(info.param * 10)));
                         });

// Grid-independence: halving the timestep must not materially change the
// extracted tRCDmin (a classic transient-solver sanity property).
TEST(CircuitProperties, TrcdStableUnderTimestepRefinement) {
  DramCellSimParams coarse;
  coarse.dt_ps = 50.0;
  DramCellSimParams fine;
  fine.dt_ps = 12.5;
  auto rc = simulate_activation(coarse);
  auto rf = simulate_activation(fine);
  ASSERT_TRUE(rc.has_value());
  ASSERT_TRUE(rf.has_value());
  EXPECT_NEAR(rc->t_rcd_min_ns, rf->t_rcd_min_ns, 0.25);
}

// The solver must satisfy KCL at the DC operating point of a loaded divider
// with a MOSFET: total current into the output node is ~zero.
TEST(CircuitProperties, DcSolutionSatisfiesKcl) {
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId gate = c.add_node("gate");
  const NodeId out = c.add_node("out");
  c.add_dc_source(vdd, kGround, 1.8);
  c.add_dc_source(gate, kGround, 1.1);
  c.add_resistor(vdd, out, 5e3);
  c.add_resistor(out, kGround, 50e3);
  Mosfet m;
  m.gate = gate;
  m.drain = out;
  m.source = kGround;
  m.bulk = kGround;
  m.params = {MosType::kNmos, 2e-6, 1e-7, 120e-6, 0.5, 0.02, 0.0, 0.8};
  c.add_mosfet(m);

  Solver s(c);
  auto v = s.dc_operating_point();
  ASSERT_TRUE(v.has_value());
  const double vout = (*v)[out];
  const double i_in = (1.8 - vout) / 5e3;
  const double i_leak = vout / 50e3;
  const auto lin = linearize_mosfet(m.params, (*v)[gate], vout, 0.0, 0.0);
  const double i_fet = lin.current((*v)[gate], vout, 0.0, 0.0);
  EXPECT_NEAR(i_in, i_leak + i_fet, 1e-7);
}

}  // namespace
}  // namespace vppstudy::circuit
