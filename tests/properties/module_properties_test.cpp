// Parameterized property sweeps over all 30 module profiles: invariants the
// device physics must satisfy for *every* DIMM in the catalog, not just the
// handful used in the unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "chips/module_db.hpp"
#include "common/units.hpp"
#include "dram/data_pattern.hpp"
#include "dram/physics.hpp"

namespace vppstudy::dram {
namespace {

class ModulePhysicsProperty : public ::testing::TestWithParam<std::string> {
 protected:
  ModuleProfile profile() const {
    return chips::profile_by_name(GetParam()).value();
  }
};

TEST_P(ModulePhysicsProperty, SensitivityShapeIsMonotoneAndAnchored) {
  const CellPhysics phys(profile());
  EXPECT_NEAR(phys.sensitivity_shape(2.5), 0.0, 1e-12);
  EXPECT_NEAR(phys.sensitivity_shape(profile().vppmin_v), 1.0, 1e-12);
  double prev = -1.0;
  for (double vpp = 2.5; vpp >= profile().vppmin_v - 1e-9; vpp -= 0.05) {
    const double s = phys.sensitivity_shape(vpp);
    EXPECT_GE(s, prev - 1e-12) << "vpp=" << vpp;
    prev = s;
  }
}

TEST_P(ModulePhysicsProperty, HammerMultiplierIsOneAtNominalForAllRows) {
  const CellPhysics phys(profile());
  for (std::uint32_t row = 1; row < 600; row += 37) {
    const auto rp = phys.row_params(0, row);
    EXPECT_NEAR(phys.hammer_multiplier(rp, common::kNominalVppV), 1.0, 1e-9)
        << "row " << row;
  }
}

TEST_P(ModulePhysicsProperty, FlipProbabilityIsMonotoneInHammerCount) {
  const CellPhysics phys(profile());
  const auto rp = phys.row_params(0, 123);
  double prev = -1.0;
  for (double f = 0.5; f < 40.0; f *= 1.7) {
    const double p =
        phys.hammer_flip_probability(rp, rp.hc_first * f, 2.5, 1.0, 1.0);
    EXPECT_GE(p, prev) << "factor " << f;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST_P(ModulePhysicsProperty, ExpectedFlipsAtAnchorIsAboutOne) {
  const CellPhysics phys(profile());
  // For the weakest rows (hc_first near the module anchor) the expected
  // flip count at hc_first must be ~1 by construction.
  for (std::uint32_t row = 1; row < 400; row += 61) {
    const auto rp = phys.row_params(0, row);
    const double p =
        phys.hammer_flip_probability(rp, rp.hc_first, 2.5, 1.0, 1.0);
    EXPECT_NEAR(p * (kBitsPerRow / 2.0), 1.0, 0.25) << "row " << row;
  }
}

TEST_P(ModulePhysicsProperty, RetentionIsMonotoneInTimeAndTemperature) {
  const CellPhysics phys(profile());
  const auto rp = phys.row_params(0, 77);
  double prev = -1.0;
  for (double t = 0.016; t <= 16.5; t *= 2.0) {
    const double p = phys.retention_flip_probability(rp, t, 2.5, 80.0, 1.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_LE(phys.retention_flip_probability(rp, 1.0, 2.5, 45.0, 1.0),
            phys.retention_flip_probability(rp, 1.0, 2.5, 85.0, 1.0));
}

TEST_P(ModulePhysicsProperty, RetentionNeverImprovesWhenVppDrops) {
  const CellPhysics phys(profile());
  const auto rp = phys.row_params(0, 77);
  double prev = 1.0;
  for (double vpp = 2.5; vpp >= profile().vppmin_v - 1e-9; vpp -= 0.1) {
    const double p = phys.retention_flip_probability(rp, 2.0, vpp, 80.0, 1.0);
    // Lower VPP -> shallower restoration -> equal or higher flip chance.
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_GE(p + 1e-15, prev == 1.0 ? 0.0 : prev) << "vpp=" << vpp;
    prev = p;
  }
}

TEST_P(ModulePhysicsProperty, TrcdRowMeanGrowsMonotonicallyTowardVppmin) {
  const CellPhysics phys(profile());
  const auto rp = phys.row_params(0, 5);
  double prev = 0.0;
  for (double vpp = 2.5; vpp >= profile().vppmin_v - 1e-9; vpp -= 0.1) {
    const double t = phys.trcd_row_mean_ns(rp, vpp);
    EXPECT_GE(t, prev - 1e-12) << "vpp=" << vpp;
    prev = t;
  }
}

TEST_P(ModulePhysicsProperty, WeakCellsAlwaysInDistinctWordsAndInRange) {
  const CellPhysics phys(profile());
  for (std::uint32_t row = 0; row < 400; row += 7) {
    const auto cells = phys.weak_cells(0, row);
    std::set<std::uint32_t> words;
    for (const auto& c : cells) {
      EXPECT_LT(c.bit, kBitsPerRow);
      EXPECT_TRUE(words.insert(c.bit / 64).second);
      EXPECT_GT(c.t_ret_at_vppmin_s, 0.0);
      EXPECT_LT(c.t_ret_at_vppmin_s, 0.2);
    }
  }
}

TEST_P(ModulePhysicsProperty, PatternFactorsBoundedForAllPatterns) {
  const CellPhysics phys(profile());
  for (std::uint32_t row = 1; row < 200; row += 31) {
    for (const auto p : kAllPatterns) {
      const double f =
          phys.pattern_factor(0, row, pattern_byte(p), 25);
      EXPECT_GE(f, 1.0);
      EXPECT_LE(f, 1.25);
      const double fr = phys.pattern_retention_factor(0, row, pattern_byte(p));
      EXPECT_GE(fr, 1.0);
      EXPECT_LE(fr, 1.3);
    }
  }
}

TEST_P(ModulePhysicsProperty, RowParamsIndependentAcrossBanks) {
  const CellPhysics phys(profile());
  const auto a = phys.row_params(0, 99);
  const auto b = phys.row_params(1, 99);
  EXPECT_NE(a.hc_first, b.hc_first);
}

INSTANTIATE_TEST_SUITE_P(
    AllModules, ModulePhysicsProperty,
    ::testing::Values("A0", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8",
                      "A9", "B0", "B1", "B2", "B3", "B4", "B5", "B6", "B7",
                      "B8", "B9", "C0", "C1", "C2", "C3", "C4", "C5", "C6",
                      "C7", "C8", "C9"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace vppstudy::dram
