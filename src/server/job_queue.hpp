// Bounded job queue of the vppd daemon.
//
// Sweep/inject/replay requests are admitted here before any work happens.
// Admission enforces two documented limits, each surfacing as a typed error
// the client can act on:
//   - kQueueFull      -- the pending queue is at capacity (backpressure;
//                        transient, retry later -- see harness/recovery's
//                        classification),
//   - kQuotaExceeded  -- this client already has its quota of jobs in
//                        flight (pending + running; persistent, the client
//                        must drain its own work first).
//
// Each admitted job carries a private CancelToken. cancel() never yanks a
// job out of the queue: it trips the token and lets a worker run the job
// normally, so the completion path (sending the response, releasing the
// quota slot) is uniform -- a cancelled pending job runs, observes its
// token immediately, and reports kCancelled. Running jobs poll the token
// between sampled rows (core/parallel_study), so a cancelled queue drains
// in at most one row's worth of work per worker.
//
// The queue owns a small set of dispatcher threads, distinct from the
// sweep engine's shard pool: dispatchers block on shard futures, pool
// workers never block on anything, so the two layers cannot deadlock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>
#include <condition_variable>

#include "common/cancel.hpp"
#include "common/expected.hpp"

namespace vppstudy::server {

class JobQueue {
 public:
  struct Config {
    std::size_t capacity = 16;         ///< max pending (not yet running) jobs
    std::size_t per_client_quota = 8;  ///< max in-flight jobs per client
    unsigned dispatchers = 2;          ///< worker threads draining the queue
  };

  /// A job runs on a dispatcher thread and is responsible for its own
  /// response delivery; the token is tripped by cancel() and shutdown().
  using Job = std::function<void(const common::CancelToken&)>;

  explicit JobQueue(Config config);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admit a job for (client_id, request_id). Typed failures: kQueueFull,
  /// kQuotaExceeded, kInvalidArgument (duplicate in-flight request id),
  /// kCancelled (queue shut down).
  [[nodiscard]] common::Status submit(std::uint64_t client_id,
                                      std::uint64_t request_id, Job job);

  /// Trip the token of an in-flight job. False when no such job (already
  /// completed, or never admitted).
  bool cancel(std::uint64_t client_id, std::uint64_t request_id);

  /// Trip every in-flight token of a client (connection teardown).
  void cancel_client(std::uint64_t client_id);

  /// Stop admitting, cancel everything in flight, run the queue dry, and
  /// join the dispatchers. Idempotent; the destructor calls it.
  void shutdown();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_quota = 0;
    std::uint64_t cancel_requests = 0;  ///< cancel() calls that found a job
    std::uint64_t pending = 0;          ///< currently queued
    std::uint64_t running = 0;          ///< currently on a dispatcher
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::uint64_t client = 0;
    std::uint64_t request = 0;
    Job job;
    common::CancelToken token;
  };

  void dispatcher_loop();

  Config config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> pending_;
  /// Tokens of every in-flight job (pending or running), for cancel().
  std::map<std::pair<std::uint64_t, std::uint64_t>, common::CancelToken>
      in_flight_;
  std::map<std::uint64_t, std::size_t> per_client_;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t rejected_quota_ = 0;
  std::uint64_t cancel_requests_ = 0;
  std::uint64_t running_ = 0;
  std::vector<std::thread> dispatchers_;
};

}  // namespace vppstudy::server
