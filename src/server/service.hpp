// Request execution layer of the vppd daemon: turns admitted requests into
// deterministic result documents by dispatching them through
// core::CampaignEngine, serving every grid cell it can from the
// content-addressed ResultCache and computing only the uncovered remainder
// on a long-lived shard pool.
//
// A sweep request becomes a one-module CampaignPlan (VPP levels plus the
// request's optional temperature axis) and the engine does the planning the
// service used to reimplement: usable levels, sampled rows, row-range
// shards. The cache plugs in as the engine's CellStore -- cells already
// present are merged into the result, and only the uncovered rows are
// computed. Because every cell is a pure function of its stream key, the
// merged output is bit-identical to a fresh in-process sweep, and the
// response's "result" text is byte-identical whether 0% or 100% of it came
// from the cache (tests/server/ asserts both). Completed shards are
// inserted into the cache even when a later shard fails or the request is
// cancelled: whole rows only, so partial progress is reusable but never
// torn.
//
// Checkpointing: with Config::manifest_dir set, every sweep runs with a
// campaign manifest keyed by the plan digest, so a daemon killed mid-sweep
// resumes from completed shards after restart and the merged result is
// byte-identical (the cache is in-memory and dies with the process; the
// manifest is the durable layer).
//
// Threading: handlers run on JobQueue dispatcher threads and block on shard
// futures; the shard pool workers never block on futures, so the two layers
// cannot deadlock. Worker-local Session arenas (one per (worker, module))
// are lent to each engine run via CampaignEngine::Execution.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/cancel.hpp"
#include "common/expected.hpp"
#include "common/thread_pool.hpp"
#include "core/campaign.hpp"
#include "server/coordinator.hpp"
#include "server/protocol.hpp"
#include "server/result_cache.hpp"
#include "softmc/session.hpp"

namespace vppstudy::server {

class Service {
 public:
  struct Config {
    /// Shard pool workers (the --jobs convention of vppctl); values <= 0
    /// use all hardware threads. The pool is long-lived: arenas keep one
    /// rig Session per (worker, module) warm across requests.
    int jobs = 0;
    /// Sampled rows per shard job (StudyConfig::rows_per_shard); a pure
    /// performance knob by the determinism contract.
    std::uint32_t rows_per_shard = 4;
    /// Directory for campaign manifests (vppd --manifest-dir); empty
    /// disables checkpointing. One manifest per (plan digest, phase), so
    /// concurrent distinct sweeps never share a file.
    std::string manifest_dir;
    /// Result-cache cell bound (vppd --cache-max-cells); 0 = unbounded.
    /// Eviction is LRU and only ever costs recompute (result_cache.hpp).
    std::uint64_t cache_max_cells = 0;
  };

  explicit Service(Config config);

  struct Outcome {
    std::string result_json;  ///< the deterministic "result" member text
    RequestStats stats;
  };

  [[nodiscard]] common::Result<Outcome> sweep(const SweepRequest& request,
                                              const common::CancelToken& cancel);
  [[nodiscard]] common::Result<Outcome> inject(const InjectRequest& request,
                                               const common::CancelToken& cancel);
  [[nodiscard]] common::Result<Outcome> replay(const std::string& dump_json,
                                               const common::CancelToken& cancel);

  [[nodiscard]] ResultCache::Stats cache_stats() const { return cache_.stats(); }

  // --- Campaign registry -----------------------------------------------------
  // Distributed campaigns the daemon currently coordinates, keyed by plan
  // hash. `campaign_open` requests create coordinators here; `vppctl
  // campaign distribute` with in-process workers injects its own via
  // adopt_campaign so the manifest lands at the exact path the user named.

  /// Open (or idempotently re-open) a campaign from a wire spec document
  /// (a zero-shard manifest). The manifest path derives from
  /// Config::manifest_dir; with no manifest dir the campaign is in-memory.
  [[nodiscard]] common::Result<std::shared_ptr<CampaignCoordinator>>
  open_campaign(const core::CampaignManifest& spec);

  /// Register an externally created coordinator (replaces any existing
  /// coordinator of the same plan hash).
  void adopt_campaign(std::shared_ptr<CampaignCoordinator> coordinator);

  /// Look up a campaign: plan_hash 0 addresses the sole open campaign (an
  /// error when none or several are open).
  [[nodiscard]] common::Result<std::shared_ptr<CampaignCoordinator>>
  find_campaign(std::uint64_t plan_hash);

 private:
  Config config_;
  ResultCache cache_;
  // Arena before pool: the pool's destructor drains queued jobs that touch
  // their worker's arena (common/thread_pool lifetime rule).
  common::WorkerLocal<core::SessionArena> arenas_;
  common::ThreadPool pool_;

  std::mutex campaigns_mu_;
  std::map<std::uint64_t, std::shared_ptr<CampaignCoordinator>> campaigns_;
};

}  // namespace vppstudy::server
