// Request execution layer of the vppd daemon: turns admitted requests into
// deterministic result documents, serving every grid cell it can from the
// content-addressed ResultCache and computing only the uncovered remainder
// on a long-lived shard pool.
//
// A sweep request is planned exactly like core/parallel_study plans a
// campaign -- usable levels, sampled rows, row-range shards -- except the
// plan first consults the cache: cells already present are copied into the
// result, and only the uncovered (level, row) cells are regrouped into
// shards and submitted. Because every cell is a pure function of its
// row_stream_seed key, the merged output is bit-identical to a fresh
// in-process sweep, and the response's "result" text is byte-identical
// whether 0% or 100% of it came from the cache (tests/server/ asserts
// both). Completed shards are inserted into the cache even when a later
// shard fails or the request is cancelled: whole rows only, so partial
// progress is reusable but never torn.
//
// Threading: handlers run on JobQueue dispatcher threads and block on shard
// futures; the shard pool workers never block on futures, so the two layers
// cannot deadlock. Worker-local Session arenas (one per (worker, module))
// follow core/parallel_study's reuse discipline.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/cancel.hpp"
#include "common/expected.hpp"
#include "common/thread_pool.hpp"
#include "server/protocol.hpp"
#include "server/result_cache.hpp"
#include "softmc/session.hpp"

namespace vppstudy::server {

class Service {
 public:
  struct Config {
    /// Shard pool workers (the --jobs convention of vppctl); values <= 0
    /// use all hardware threads. The pool is long-lived: arenas keep one
    /// rig Session per (worker, module) warm across requests.
    int jobs = 0;
    /// Sampled rows per shard job (StudyConfig::rows_per_shard); a pure
    /// performance knob by the determinism contract.
    std::uint32_t rows_per_shard = 4;
  };

  explicit Service(Config config);

  struct Outcome {
    std::string result_json;  ///< the deterministic "result" member text
    RequestStats stats;
  };

  [[nodiscard]] common::Result<Outcome> sweep(const SweepRequest& request,
                                              const common::CancelToken& cancel);
  [[nodiscard]] common::Result<Outcome> inject(const InjectRequest& request,
                                               const common::CancelToken& cancel);
  [[nodiscard]] common::Result<Outcome> replay(const std::string& dump_json,
                                               const common::CancelToken& cancel);

  [[nodiscard]] ResultCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  /// One reusable Session per (worker, module name); the daemon serves many
  /// requests, so unlike core/parallel_study's index-keyed arena this one
  /// keys by module name.
  struct Arena {
    std::map<std::string, std::unique_ptr<softmc::Session>> sessions;
    softmc::Session& acquire(const dram::ModuleProfile& profile);
  };

  [[nodiscard]] common::Result<Outcome> hammer_sweep(
      const SweepRequest& request, const common::CancelToken& cancel,
      const dram::ModuleProfile& profile, const core::SweepConfig& cfg,
      const std::vector<double>& levels,
      const std::vector<std::uint32_t>& rows, std::uint64_t digest);
  [[nodiscard]] common::Result<Outcome> trcd_sweep(
      const SweepRequest& request, const common::CancelToken& cancel,
      const dram::ModuleProfile& profile, const core::SweepConfig& cfg,
      const std::vector<double>& levels,
      const std::vector<std::uint32_t>& rows, std::uint64_t digest);
  [[nodiscard]] common::Result<Outcome> retention_sweep(
      const SweepRequest& request, const common::CancelToken& cancel,
      const dram::ModuleProfile& profile, const core::SweepConfig& cfg,
      const std::vector<double>& levels,
      const std::vector<std::uint32_t>& rows, std::uint64_t digest);

  Config config_;
  ResultCache cache_;
  // Arena before pool: the pool's destructor drains queued jobs that touch
  // their worker's arena (common/thread_pool lifetime rule).
  common::WorkerLocal<Arena> arenas_;
  common::ThreadPool pool_;
};

}  // namespace vppstudy::server
