// Wire protocol of the vppd characterization daemon.
//
// Transport: length-prefixed JSON frames over a loopback TCP stream. A
// frame is a 4-byte big-endian payload length followed by that many bytes
// of UTF-8 JSON. Frames above kMaxFrameBytes are rejected with a typed
// kFrameTooLarge error before any payload is read; the declared length is
// the only trust decision the framing layer makes.
//
// Requests are objects {"id": N, "type": "...", ...}; a client may pipeline
// requests and responses carry the id they answer, so completion order is
// free. Responses are {"id": N, "ok": true, "result": {...}, "stats": {...}}
// or {"id": N, "ok": false, "error": {"code": "kQueueFull", "message": ...}}.
// The "result" member is a deterministic serialization: two requests for the
// same work produce byte-identical "result" text whether served from the
// cache or computed fresh (asserted by tests/server/).
//
// Request types: ping, stats, sweep, inject, replay, cancel, shutdown,
// plus the campaign distribution verbs campaign_open, lease, submit and
// heartbeat (see DESIGN.md sections 9 and 11 for field tables).
#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"
#include "common/json.hpp"
#include "common/socket.hpp"
#include "core/campaign.hpp"
#include "core/resilient_study.hpp"
#include "core/study.hpp"

namespace vppstudy::server {

/// Frames above this are refused (kFrameTooLarge): large enough for any
/// full-grid sweep response, small enough that a hostile length prefix
/// cannot make the daemon allocate unbounded memory.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

/// Write one frame (length prefix + payload).
[[nodiscard]] common::Status write_frame(const common::Socket& socket,
                                         std::string_view payload);

/// Read one frame into `payload`. Returns false on a clean close at a frame
/// boundary; kFrameTooLarge when the declared length exceeds kMaxFrameBytes
/// (nothing further is read -- the connection cannot be resynced);
/// kIoError when the peer vanishes mid-frame.
[[nodiscard]] common::Result<bool> read_frame(const common::Socket& socket,
                                              std::string& payload);

// --- Requests ----------------------------------------------------------------

/// A sweep request mirrors the `vppctl sweep` flag surface; the client and
/// the daemon both expand it through sweep_config_from_request so a remote
/// sweep is configured exactly like a local one.
struct SweepRequest {
  std::string module = "B3";
  std::string test = "rowhammer";  ///< rowhammer | trcd | retention
  std::uint32_t rows = 16;
  double step = 0.2;
  std::uint64_t seed = 0;
  /// Optional temperature axis (core::CampaignAxes::temperatures_c). Empty
  /// runs the phase-default temperature and the response is the legacy
  /// per-test result kind; non-empty selects the multi-axis engine path and
  /// a "*_grid" result kind. Encoded on the wire only when non-empty, so
  /// requests without the axis are byte-identical to older clients'.
  std::vector<double> temps;
  /// Optional pattern axis (core::CampaignAxes::patterns; rowhammer only).
  /// Every spec must pass PatternSpec::validate. Like temps, encoded on the
  /// wire only when non-empty so pattern-free requests are byte-identical
  /// to older clients'.
  std::vector<harness::PatternSpec> patterns;
};

/// Expand a SweepRequest into the engine's SweepConfig. VPP levels are
/// quantized to the rig supply's millivolt grid so that any arithmetic
/// producing the same level (e.g. step 0.2 twice vs 0.4 once) yields the
/// same double -- the daemon's cache keys levels by millivolt, and the
/// physics must agree with the key.
[[nodiscard]] core::SweepConfig sweep_config_from_request(
    const SweepRequest& request);

/// An inject request mirrors `vppctl inject`.
struct InjectRequest {
  std::string faults = "seed=1";
  std::vector<std::string> modules = {"B3"};
  std::uint32_t rows = 8;
  std::uint32_t retries = 3;
  std::uint64_t seed = 1;
  std::uint64_t trace_cap = 4096;
};

/// Encoders used by the client (and tests).
[[nodiscard]] std::string encode_ping_request(std::uint64_t id);
[[nodiscard]] std::string encode_stats_request(std::uint64_t id);
[[nodiscard]] std::string encode_shutdown_request(std::uint64_t id);
[[nodiscard]] std::string encode_cancel_request(std::uint64_t id,
                                                std::uint64_t target);
[[nodiscard]] std::string encode_sweep_request(std::uint64_t id,
                                               const SweepRequest& request);
[[nodiscard]] std::string encode_inject_request(std::uint64_t id,
                                                const InjectRequest& request);
/// `dump_json` is the raw text of a trace dump file (vppctl inject
/// --dump-dir), shipped verbatim so the daemon replays exactly what the
/// client has on disk.
[[nodiscard]] std::string encode_replay_request(std::uint64_t id,
                                                const std::string& dump_json);

/// Decoders used by the daemon.
[[nodiscard]] common::Result<SweepRequest> parse_sweep_request(
    const common::JsonValue& body);
[[nodiscard]] common::Result<InjectRequest> parse_inject_request(
    const common::JsonValue& body);

// --- Campaign distribution ---------------------------------------------------
// The coordinator side of `vppctl campaign distribute`: a campaign is opened
// on the daemon (campaign_open ships a zero-shard manifest -- the full plan
// spec), then workers loop lease -> compute -> submit, with heartbeat
// extending a slow worker's leases. 64-bit hashes and fencing tokens travel
// as hex strings (core::u64_hex): the JSON DOM stores numbers as doubles,
// which would silently truncate values past 2^53.

/// A worker's request for a batch of open shards.
struct LeaseRequest {
  /// Which campaign: 0 addresses the daemon's sole open campaign (an error
  /// when none or several are open).
  std::uint64_t plan_hash = 0;
  std::string worker;
  std::uint64_t max_shards = 4;  ///< 0 = every open shard
  std::int64_t ttl_ms = 30000;
  /// Ship the campaign spec (zero-shard manifest) with the grant; a worker
  /// that connected with nothing but a port sets this on its first lease.
  bool need_plan = false;
};

/// A worker's completed shard batch, streamed back for the merge.
struct SubmitRequest {
  std::uint64_t plan_hash = 0;
  core::JobPhase phase = core::JobPhase::kRowHammer;
  std::string worker;
  std::uint64_t token = 0;  ///< the fencing token the batch was leased under
  std::vector<core::ManifestWcdp> wcdp;
  std::vector<core::ManifestShard> shards;
};

struct HeartbeatRequest {
  std::uint64_t plan_hash = 0;
  std::uint64_t token = 0;
  std::int64_t ttl_ms = 30000;
};

/// The coordinator's answer to a lease request (result kind "lease").
struct LeaseGrant {
  core::JobPhase phase = core::JobPhase::kRowHammer;
  std::uint64_t plan_hash = 0;
  std::uint64_t token = 0;                ///< 0 when no shard was available
  std::vector<std::uint64_t> shards;      ///< canonical grid indices
  /// Every WCDP prep merged so far, shipped with each grant so a worker
  /// whose module was already prepped elsewhere seeds its memo instead of
  /// recomputing. Preps are deterministic, so a seeded worker produces the
  /// same rows it would have computed -- byte identity is unaffected.
  std::vector<core::ManifestWcdp> wcdp;
  std::uint64_t done = 0;
  std::uint64_t remaining = 0;
  bool complete = false;
  bool has_campaign = false;  ///< the spec rode along (need_plan)
  core::CampaignManifest campaign;
};

/// The coordinator's answer to a submit (result kind "submit").
struct SubmitOutcome {
  std::uint64_t accepted = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t done = 0;
  std::uint64_t remaining = 0;
  bool complete = false;
};

/// `manifest_json` is the pre-rendered zero-shard manifest text, spliced
/// verbatim (the plan-spec analogue of the result splice below).
[[nodiscard]] std::string encode_campaign_open_request(
    std::uint64_t id, std::string_view manifest_json);
[[nodiscard]] std::string encode_lease_request(std::uint64_t id,
                                               const LeaseRequest& request);
[[nodiscard]] std::string encode_submit_request(std::uint64_t id,
                                                const SubmitRequest& request);
[[nodiscard]] std::string encode_heartbeat_request(
    std::uint64_t id, const HeartbeatRequest& request);

[[nodiscard]] common::Result<LeaseRequest> parse_lease_request(
    const common::JsonValue& body);
[[nodiscard]] common::Result<SubmitRequest> parse_submit_request(
    const common::JsonValue& body);
[[nodiscard]] common::Result<HeartbeatRequest> parse_heartbeat_request(
    const common::JsonValue& body);

/// Result-document encoders of the coordinator. `campaign_json` is the
/// cached zero-shard manifest text, spliced when non-empty (need_plan);
/// `grant.has_campaign`/`grant.campaign` are ignored here -- they are the
/// *parsed* view.
[[nodiscard]] std::string encode_lease_result(const LeaseGrant& grant,
                                              std::string_view campaign_json);
[[nodiscard]] std::string encode_submit_result(const SubmitOutcome& outcome);
[[nodiscard]] std::string encode_heartbeat_result(std::uint64_t renewed,
                                                  bool complete);

/// Worker-side decoders of the lease/submit result documents.
[[nodiscard]] common::Result<LeaseGrant> parse_lease_result(
    const common::JsonValue& result);
[[nodiscard]] common::Result<SubmitOutcome> parse_submit_result(
    const common::JsonValue& result);

// --- Responses ---------------------------------------------------------------

/// Per-request service accounting, reported in every successful response.
struct RequestStats {
  std::uint64_t cache_hits = 0;    ///< grid cells served from the cache
  std::uint64_t cache_misses = 0;  ///< grid cells computed for this request
};

[[nodiscard]] std::string encode_result_response(std::uint64_t id,
                                                 std::string_view result_json,
                                                 const RequestStats& stats);
[[nodiscard]] std::string encode_error_response(std::uint64_t id,
                                                const common::Error& error);

/// Turn a response document into the request's typed outcome: the raw
/// "result" text on ok, the decoded Error otherwise.
[[nodiscard]] common::Result<common::JsonValue> response_result(
    const common::JsonValue& response);

// --- Result serialization ----------------------------------------------------
// Deterministic, field-ordered encodings of the three sweep result kinds.
// Doubles are written with %.17g (common::JsonWriter), which round-trips
// exactly: a client reconstructing the struct from JSON and re-rendering a
// CSV gets the same bytes as the in-process path.

[[nodiscard]] std::string hammer_sweep_to_json(
    const core::ModuleSweepResult& sweep);
[[nodiscard]] std::string trcd_sweep_to_json(const core::TrcdSweepResult& sweep);
[[nodiscard]] std::string retention_sweep_to_json(
    const core::RetentionSweepResult& sweep);

[[nodiscard]] common::Result<core::ModuleSweepResult> hammer_sweep_from_json(
    const common::JsonValue& doc);
[[nodiscard]] common::Result<core::TrcdSweepResult> trcd_sweep_from_json(
    const common::JsonValue& doc);
[[nodiscard]] common::Result<core::RetentionSweepResult>
retention_sweep_from_json(const common::JsonValue& doc);

[[nodiscard]] std::string campaign_result_to_json(
    const core::CampaignResult& campaign);

}  // namespace vppstudy::server
