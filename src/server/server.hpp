// The vppd daemon core: a loopback TCP server speaking the length-prefixed
// JSON protocol of server/protocol.hpp.
//
// One thread accepts connections; each connection gets a reader thread that
// decodes frames and dispatches requests. Cheap requests (ping, stats,
// cancel, shutdown) are answered inline on the reader thread; work requests
// (sweep, inject, replay) are admitted through the bounded JobQueue --
// admission failures (kQueueFull, kQuotaExceeded) are answered immediately
// with a typed error -- and executed on dispatcher threads, which write
// their response through the connection's write mutex whenever they finish
// (responses may be reordered relative to pipelined requests; ids pair them
// up).
//
// Malformed input never kills the daemon: an undecodable frame gets a typed
// kParseError response (id 0, since no id could be read) and the connection
// continues; an oversized length prefix gets a kFrameTooLarge response and
// then the connection closes, because the stream cannot be resynced.
//
// A `shutdown` request (or stop()) closes the listener, drains the job
// queue (in-flight jobs observe their cancelled tokens), unblocks every
// reader, and joins all threads; wait() parks the caller until then.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/expected.hpp"
#include "common/socket.hpp"
#include "server/job_queue.hpp"
#include "server/service.hpp"

namespace vppstudy::server {

class Server {
 public:
  struct Config {
    std::uint16_t port = 0;  ///< 0 binds an ephemeral port (see port())
    Service::Config service;
    JobQueue::Config queue;
  };

  /// Bind, listen, and start the accept thread.
  [[nodiscard]] static common::Result<std::unique_ptr<Server>> start(
      Config config);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the ephemeral one when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Block until a client sends `shutdown` or stop() is called.
  void wait();

  /// Shut down: close the listener, drain the job queue, unblock and join
  /// every connection thread. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] Service& service() noexcept { return service_; }
  [[nodiscard]] JobQueue::Stats queue_stats() const {
    return queue_.stats();
  }

 private:
  struct Connection {
    common::Socket socket;
    std::mutex write_mu;
    std::uint64_t id = 0;
  };

  Server(Config config, common::ServerSocket listener);

  void accept_loop();
  void handle_connection(const std::shared_ptr<Connection>& conn);
  /// Decode and dispatch one frame; false when the connection must close.
  bool handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::string& payload);
  void send_frame(Connection& conn, std::string_view payload);
  void request_shutdown();

  Config config_;
  common::ServerSocket listener_;
  std::uint16_t port_ = 0;
  Service service_;
  JobQueue queue_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::uint64_t next_client_id_ = 1;
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>>
      connections_;
  std::thread accept_thread_;
};

/// Options of the vppd daemon front ends (tools/vppd and `vppctl serve`).
struct DaemonOptions {
  Server::Config config;
  /// When non-empty, the bound port is published here (written to a temp
  /// file and renamed, so a reader never sees a partial write) -- the
  /// child-process handshake of tests/server.
  std::string port_file;
};

/// Run a daemon until a client requests shutdown. Returns the process exit
/// code: 0 on a clean shutdown, 3 on a typed startup error.
[[nodiscard]] int run_daemon(const DaemonOptions& options);

}  // namespace vppstudy::server
