#include "server/coordinator.hpp"

#include <chrono>
#include <fstream>
#include <utility>

namespace vppstudy::server {

using common::Error;
using common::ErrorCode;
using core::CampaignLeaseLedger;
using core::LeaseState;

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

common::Result<std::unique_ptr<CampaignCoordinator>> CampaignCoordinator::open(
    core::CampaignPlan plan, core::JobPhase phase, std::string manifest_path) {
  std::unique_ptr<CampaignCoordinator> coord(new CampaignCoordinator());
  coord->phase_ = phase;
  coord->plan_hash_ = plan.digest(phase);
  coord->manifest_path_ = std::move(manifest_path);
  // The plan's own manifest path is not used here: the coordinator is the
  // only writer, and the workers' engine runs must not checkpoint.
  plan.manifest_path.clear();
  VPP_ASSIGN_OR_RETURN(coord->grid_,
                       core::compile_campaign_shards(plan, phase));
  coord->grid_index_ = core::ShardGridIndex(coord->grid_);
  coord->shard_modules_.reserve(coord->grid_.size());
  for (const core::ShardCoord& coord_cell : coord->grid_) {
    coord->shard_modules_.push_back(coord_cell.module_index);
  }
  coord->plan_ = std::move(plan);

  // Manifest: resume an existing checkpoint (the same validation the engine
  // applies) or start a fresh spec document.
  const core::CampaignPlan& p = coord->plan_;
  bool have_manifest = false;
  if (!coord->manifest_path_.empty()) {
    if (std::ifstream probe(coord->manifest_path_); probe.good()) {
      VPP_ASSIGN_OR_RETURN(coord->manifest_,
                           core::load_campaign_manifest(coord->manifest_path_));
      have_manifest = true;
      if (coord->manifest_.phase != phase) {
        return Error{ErrorCode::kInvalidArgument,
                     "campaign manifest phase mismatch: checkpoint is " +
                         std::string(core::campaign_phase_name(
                             coord->manifest_.phase)) +
                         ", plan wants " +
                         std::string(core::campaign_phase_name(phase))};
      }
      if (coord->manifest_.plan_hash != coord->plan_hash_) {
        return Error{ErrorCode::kInvalidArgument,
                     "campaign manifest plan hash mismatch (the plan changed "
                     "since the checkpoint was written)"};
      }
    }
  }
  if (!have_manifest) {
    coord->manifest_.phase = phase;
    coord->manifest_.plan_hash = coord->plan_hash_;
    coord->manifest_.sweep = p.sweep;
    coord->manifest_.axes = p.axes;
    coord->manifest_.seed = p.seed;
    coord->manifest_.rows_per_shard = p.rows_per_shard;
    for (const dram::ModuleProfile& mod : p.modules) {
      coord->manifest_.modules.emplace_back(mod.name, mod.rows_per_bank);
    }
  }
  coord->manifest_.planned_shards = coord->grid_.size();

  // Ledger: resume or start fresh (entries parallel to the grid).
  bool have_ledger = false;
  if (!coord->manifest_path_.empty()) {
    const std::string ledger_path =
        core::campaign_ledger_path(coord->manifest_path_);
    if (std::ifstream probe(ledger_path); probe.good()) {
      VPP_ASSIGN_OR_RETURN(coord->ledger_,
                           core::load_campaign_ledger(ledger_path));
      have_ledger = true;
      if (coord->ledger_.phase != phase ||
          coord->ledger_.plan_hash != coord->plan_hash_ ||
          coord->ledger_.entries.size() != coord->grid_.size()) {
        return Error{ErrorCode::kInvalidArgument,
                     "campaign lease ledger does not match the plan (wrong "
                     "phase, plan hash, or shard count)"};
      }
    }
  }
  if (!have_ledger) {
    coord->ledger_.phase = phase;
    coord->ledger_.plan_hash = coord->plan_hash_;
    coord->ledger_.entries.resize(coord->grid_.size());
  }

  // Reconcile: every shard already in the manifest is done, whatever the
  // ledger thinks (a crash between the manifest flush and the ledger flush
  // must not re-lease merged work forever). Stats stay untouched -- the
  // submitting worker was already credited when the ledger last flushed.
  for (const core::ManifestShard& shard : coord->manifest_.shards) {
    const core::ShardCoord* coord_cell = coord->grid_index_.find(shard);
    if (coord_cell == nullptr) {
      return Error{ErrorCode::kInvalidArgument,
                   "campaign manifest holds a shard record that is not a "
                   "cell of the plan's grid"};
    }
    core::LeaseEntry& entry = coord->ledger_.entries[coord_cell->index];
    if (entry.state != LeaseState::kDone) {
      entry.state = LeaseState::kDone;
      entry.token = 0;
      entry.expires_at_ms = 0;
    }
  }

  // Cache the zero-shard spec document shipped to need_plan workers.
  core::CampaignManifest spec = coord->manifest_;
  spec.wcdp.clear();
  spec.shards.clear();
  coord->spec_json_ = core::campaign_manifest_json(spec).str();

  {
    std::lock_guard lock(coord->mu_);
    if (auto st = coord->flush_locked(); !st.ok()) {
      return std::move(st).error();
    }
  }
  return coord;
}

common::Status CampaignCoordinator::flush_locked() {
  if (manifest_path_.empty()) return common::Status::ok_status();
  if (!core::write_campaign_manifest(manifest_path_, manifest_)) {
    return Error{ErrorCode::kIoError,
                 "failed to write campaign manifest " + manifest_path_};
  }
  const std::string ledger_path = core::campaign_ledger_path(manifest_path_);
  if (!core::write_campaign_ledger(ledger_path, ledger_)) {
    return Error{ErrorCode::kIoError,
                 "failed to write campaign lease ledger " + ledger_path};
  }
  return common::Status::ok_status();
}

LeaseGrant CampaignCoordinator::grant_snapshot_locked() const {
  LeaseGrant grant;
  grant.phase = phase_;
  grant.plan_hash = plan_hash_;
  grant.done = ledger_.count(LeaseState::kDone);
  grant.remaining = ledger_.entries.size() - grant.done;
  grant.complete = ledger_.complete();
  return grant;
}

common::Result<LeaseGrant> CampaignCoordinator::lease(
    const std::string& worker, std::uint64_t max_shards, std::int64_t ttl_ms,
    std::int64_t now_ms) {
  std::lock_guard lock(mu_);
  CampaignLeaseLedger::Grant granted =
      ledger_.lease(worker, static_cast<std::size_t>(max_shards), now_ms,
                    ttl_ms, &shard_modules_);
  if (granted.token != 0 && !manifest_path_.empty()) {
    // Ledger only: the manifest did not change, and an extra manifest write
    // would shift the deterministic VPP_CAMPAIGN_KILL_AFTER count.
    const std::string ledger_path = core::campaign_ledger_path(manifest_path_);
    if (!core::write_campaign_ledger(ledger_path, ledger_)) {
      return Error{ErrorCode::kIoError,
                   "failed to write campaign lease ledger " + ledger_path};
    }
  }
  LeaseGrant grant = grant_snapshot_locked();
  grant.token = granted.token;
  grant.shards = std::move(granted.shards);
  // Ship every merged WCDP prep with the grant: a worker that has not yet
  // prepped one of these modules seeds its memo from the coordinator's copy
  // instead of recomputing a (deterministic) prep another worker already
  // paid for.
  grant.wcdp = manifest_.wcdp;
  return grant;
}

common::Result<SubmitOutcome> CampaignCoordinator::submit(
    const std::string& worker, std::uint64_t token, std::uint64_t plan_hash,
    const std::vector<core::ManifestWcdp>& wcdp,
    const std::vector<core::ManifestShard>& shards, std::int64_t now_ms) {
  std::lock_guard lock(mu_);
  ledger_.expire_stale(now_ms);

  // Fencing before merging -- but only once the batch provably belongs to
  // this campaign's grid; a wrong plan hash or an off-grid record takes the
  // merge's kInvalidArgument path (which validates everything up front and
  // merges nothing on failure).
  std::vector<std::uint64_t> mergeable;
  if (plan_hash == plan_hash_) {
    for (const core::ManifestShard& shard : shards) {
      const core::ShardCoord* cell = grid_index_.find(shard);
      if (cell == nullptr) break;  // let the merge produce the typed error
      switch (ledger_.check_submit(cell->index, token)) {
        case CampaignLeaseLedger::SubmitCheck::kStale:
          return Error{ErrorCode::kLeaseExpired,
                       "stale fencing token for shard " +
                           std::to_string(cell->index) +
                           " (the lease expired and the shard was "
                           "re-granted); nothing merged"};
        case CampaignLeaseLedger::SubmitCheck::kMergeable:
          mergeable.push_back(cell->index);
          break;
        case CampaignLeaseLedger::SubmitCheck::kDuplicate:
          break;
      }
    }
  }
  VPP_ASSIGN_OR_RETURN(
      const core::ShardMergeOutcome merged,
      core::merge_campaign_shards(manifest_, grid_, plan_hash, wcdp, shards));
  for (const std::uint64_t index : mergeable) {
    ledger_.mark_done(index, worker);
  }
  if (auto st = flush_locked(); !st.ok()) return std::move(st).error();

  SubmitOutcome outcome;
  outcome.accepted = merged.accepted;
  outcome.duplicates = merged.duplicates;
  outcome.done = ledger_.count(LeaseState::kDone);
  outcome.remaining = ledger_.entries.size() - outcome.done;
  outcome.complete = ledger_.complete();
  return outcome;
}

common::Result<std::uint64_t> CampaignCoordinator::heartbeat(
    std::uint64_t token, std::int64_t ttl_ms, std::int64_t now_ms) {
  std::lock_guard lock(mu_);
  const std::size_t renewed = ledger_.renew(token, now_ms, ttl_ms);
  if (renewed == 0) {
    return Error{ErrorCode::kLeaseExpired,
                 "no shard remains leased under token " +
                     core::u64_hex(token) + "; re-lease"};
  }
  if (!manifest_path_.empty()) {
    const std::string ledger_path = core::campaign_ledger_path(manifest_path_);
    if (!core::write_campaign_ledger(ledger_path, ledger_)) {
      return Error{ErrorCode::kIoError,
                   "failed to write campaign lease ledger " + ledger_path};
    }
  }
  return static_cast<std::uint64_t>(renewed);
}

bool CampaignCoordinator::complete() const {
  std::lock_guard lock(mu_);
  return ledger_.complete();
}

CampaignCoordinator::Status CampaignCoordinator::status() const {
  std::lock_guard lock(mu_);
  Status s;
  s.phase = phase_;
  s.plan_hash = plan_hash_;
  s.planned = ledger_.entries.size();
  s.open = ledger_.count(LeaseState::kOpen);
  s.leased = ledger_.count(LeaseState::kLeased);
  s.done = ledger_.count(LeaseState::kDone);
  s.complete = ledger_.complete();
  return s;
}

std::vector<core::LeaseWorkerStats> CampaignCoordinator::worker_stats() const {
  std::lock_guard lock(mu_);
  return ledger_.workers;
}

}  // namespace vppstudy::server
