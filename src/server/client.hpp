// Synchronous client of the vppd daemon, used by vppctl's --connect mode
// and the integration tests. One Client is one connection; calls are
// sequential (send a request, read frames until the matching id arrives --
// pipelined responses for other ids are queued and returned in order by
// later calls).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/expected.hpp"
#include "common/socket.hpp"
#include "server/protocol.hpp"

namespace vppstudy::server {

class Client {
 public:
  [[nodiscard]] static common::Result<Client> connect(std::uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// A fresh request id (monotonic per connection).
  [[nodiscard]] std::uint64_t next_id() noexcept { return next_id_++; }

  /// Send one already-encoded request frame.
  [[nodiscard]] common::Status send(std::string_view payload);

  /// Read the next response frame (any id) into a parsed document.
  [[nodiscard]] common::Result<common::JsonValue> receive();

  /// Read response frames until the one answering `id` arrives; responses
  /// to other (pipelined) ids are buffered for later wait_for() calls.
  [[nodiscard]] common::Result<common::JsonValue> wait_for(std::uint64_t id);

  /// send + wait_for in one step. `payload` must carry `id`.
  [[nodiscard]] common::Result<common::JsonValue> call(std::uint64_t id,
                                                       std::string_view payload);

  /// One successful request/response cycle unwrapped to its "result": the
  /// server's typed error becomes this call's error.
  [[nodiscard]] common::Result<common::JsonValue> call_result(
      std::uint64_t id, std::string_view payload);

  struct SweepResponse {
    common::JsonValue result;  ///< the deterministic "result" document
    RequestStats stats;        ///< the server's cache accounting
  };
  [[nodiscard]] common::Result<SweepResponse> sweep(const SweepRequest& request);

  [[nodiscard]] common::Result<common::JsonValue> inject(
      const InjectRequest& request);
  [[nodiscard]] common::Result<common::JsonValue> replay(
      const std::string& dump_json);

  // Campaign distribution verbs (the worker loop of server/worker.hpp).
  /// Open (or re-open, idempotently) a campaign on the daemon;
  /// `manifest_json` is a zero-shard manifest spec document.
  [[nodiscard]] common::Result<common::JsonValue> campaign_open(
      const std::string& manifest_json);
  [[nodiscard]] common::Result<LeaseGrant> lease(const LeaseRequest& request);
  [[nodiscard]] common::Result<SubmitOutcome> submit(
      const SubmitRequest& request);
  /// Returns how many shards were renewed; kLeaseExpired when the token no
  /// longer holds any.
  [[nodiscard]] common::Result<std::uint64_t> heartbeat(
      const HeartbeatRequest& request);
  [[nodiscard]] common::Status ping();
  /// Ask the daemon to exit; returns once the daemon acknowledged.
  [[nodiscard]] common::Status shutdown_server();

 private:
  explicit Client(common::Socket socket) : socket_(std::move(socket)) {}

  common::Socket socket_;
  std::uint64_t next_id_ = 1;
  std::deque<common::JsonValue> buffered_;
};

}  // namespace vppstudy::server
