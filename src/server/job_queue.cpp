#include "server/job_queue.hpp"

#include <algorithm>
#include <utility>

namespace vppstudy::server {

using common::Error;
using common::ErrorCode;

JobQueue::JobQueue(Config config) : config_(config) {
  const unsigned n = std::max(1u, config_.dispatchers);
  dispatchers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

JobQueue::~JobQueue() { shutdown(); }

common::Status JobQueue::submit(std::uint64_t client_id,
                                std::uint64_t request_id, Job job) {
  std::lock_guard lock(mu_);
  if (stopping_) {
    return Error{ErrorCode::kCancelled, "job queue is shutting down"};
  }
  if (in_flight_.count({client_id, request_id}) != 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "request id " + std::to_string(request_id) +
                     " is already in flight for this client"};
  }
  if (pending_.size() >= config_.capacity) {
    ++rejected_full_;
    return Error{ErrorCode::kQueueFull,
                 "job queue at capacity (" + std::to_string(config_.capacity) +
                     " pending); retry later"};
  }
  if (per_client_[client_id] >= config_.per_client_quota) {
    ++rejected_quota_;
    return Error{ErrorCode::kQuotaExceeded,
                 "client quota of " +
                     std::to_string(config_.per_client_quota) +
                     " in-flight jobs reached"};
  }
  Entry entry;
  entry.client = client_id;
  entry.request = request_id;
  entry.job = std::move(job);
  in_flight_.emplace(std::make_pair(client_id, request_id), entry.token);
  ++per_client_[client_id];
  ++submitted_;
  pending_.push_back(std::move(entry));
  cv_.notify_one();
  return common::Status::ok_status();
}

bool JobQueue::cancel(std::uint64_t client_id, std::uint64_t request_id) {
  std::lock_guard lock(mu_);
  const auto it = in_flight_.find({client_id, request_id});
  if (it == in_flight_.end()) return false;
  it->second.cancel();
  ++cancel_requests_;
  return true;
}

void JobQueue::cancel_client(std::uint64_t client_id) {
  std::lock_guard lock(mu_);
  for (auto& [key, token] : in_flight_) {
    if (key.first == client_id) token.cancel();
  }
}

void JobQueue::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& [key, token] : in_flight_) token.cancel();
    cv_.notify_all();
  }
  for (auto& t : dispatchers_) t.join();
  dispatchers_.clear();
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.rejected_full = rejected_full_;
  s.rejected_quota = rejected_quota_;
  s.cancel_requests = cancel_requests_;
  s.pending = pending_.size();
  s.running = running_;
  return s;
}

void JobQueue::dispatcher_loop() {
  for (;;) {
    Entry entry;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      // On shutdown the queue still runs dry: every remaining job executes
      // with a tripped token so its completion path (response, quota
      // release) happens exactly once.
      if (pending_.empty()) return;
      entry = std::move(pending_.front());
      pending_.pop_front();
      ++running_;
    }
    entry.job(entry.token);
    {
      std::lock_guard lock(mu_);
      --running_;
      ++completed_;
      in_flight_.erase({entry.client, entry.request});
      auto it = per_client_.find(entry.client);
      if (it != per_client_.end() && --it->second == 0) per_client_.erase(it);
    }
  }
}

}  // namespace vppstudy::server
