// The coordinator side of distributed campaign execution.
//
// A CampaignCoordinator owns one (plan, phase) pair: the canonical shard
// grid compiled from the plan, the manifest the merged results accumulate
// into, and the lease ledger that fences workers. It is the single writer
// of both files -- workers only ever talk to it over the lease/submit/
// heartbeat verbs (server/protocol.hpp), so the merge is serialized here
// under one mutex and the merged manifest is indistinguishable from a
// single-host checkpoint (core/campaign_lease.hpp explains why that makes
// the final CSV/JSON byte-identical).
//
// All time-dependent operations take an explicit `now_ms` so lease expiry
// and fencing are unit-testable without sleeping; the daemon passes
// steady_now_ms(). With an empty manifest path the coordinator is purely
// in-memory (tests); otherwise every accepted submit flushes the manifest
// first and the ledger second, so a crash between the two re-leases work
// that is already merged -- which the merge then counts as duplicates, the
// safe direction.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "core/campaign.hpp"
#include "core/campaign_lease.hpp"
#include "server/protocol.hpp"

namespace vppstudy::server {

/// Milliseconds on the monotonic clock -- lease deadlines must not jump
/// with wall-clock adjustments.
[[nodiscard]] std::int64_t steady_now_ms();

class CampaignCoordinator {
 public:
  /// Compile the plan's shard grid and open (or resume) the campaign.
  /// With a non-empty `manifest_path`, an existing manifest and ledger are
  /// loaded and validated against the plan hash; manifest shards missing
  /// from the ledger are reconciled to done (a coordinator restart after a
  /// crash-between-flushes must not re-lease merged work forever).
  [[nodiscard]] static common::Result<std::unique_ptr<CampaignCoordinator>>
  open(core::CampaignPlan plan, core::JobPhase phase,
       std::string manifest_path);

  /// Lease up to `max_shards` open shards to `worker` under a fresh fencing
  /// token. An empty grant (token 0) with complete()==false means
  /// everything is currently leased out -- poll again.
  [[nodiscard]] common::Result<LeaseGrant> lease(const std::string& worker,
                                                 std::uint64_t max_shards,
                                                 std::int64_t ttl_ms,
                                                 std::int64_t now_ms);

  /// Merge a worker's batch. Fencing: every submitted shard must still be
  /// leased under `token` (or already done, the idempotent duplicate case);
  /// a stale token rejects the whole batch with kLeaseExpired and nothing
  /// is merged. A wrong plan hash or a record off the grid rejects with
  /// kInvalidArgument, nothing merged.
  [[nodiscard]] common::Result<SubmitOutcome> submit(
      const std::string& worker, std::uint64_t token,
      std::uint64_t plan_hash, const std::vector<core::ManifestWcdp>& wcdp,
      const std::vector<core::ManifestShard>& shards, std::int64_t now_ms);

  /// Extend every lease still held under `token`. kLeaseExpired when none
  /// is (the worker should re-lease).
  [[nodiscard]] common::Result<std::uint64_t> heartbeat(std::uint64_t token,
                                                        std::int64_t ttl_ms,
                                                        std::int64_t now_ms);

  [[nodiscard]] bool complete() const;
  [[nodiscard]] std::uint64_t plan_hash() const noexcept { return plan_hash_; }
  [[nodiscard]] core::JobPhase phase() const noexcept { return phase_; }
  [[nodiscard]] const std::string& manifest_path() const noexcept {
    return manifest_path_;
  }
  /// The zero-shard manifest text shipped to need_plan workers (cached; the
  /// spec never changes after open).
  [[nodiscard]] const std::string& campaign_spec_json() const noexcept {
    return spec_json_;
  }

  /// Status snapshot for campaign_open responses and `vppctl campaign
  /// status` style displays.
  struct Status {
    core::JobPhase phase = core::JobPhase::kRowHammer;
    std::uint64_t plan_hash = 0;
    std::uint64_t planned = 0;
    std::uint64_t open = 0;
    std::uint64_t leased = 0;
    std::uint64_t done = 0;
    bool complete = false;
  };
  [[nodiscard]] Status status() const;
  [[nodiscard]] std::vector<core::LeaseWorkerStats> worker_stats() const;

 private:
  CampaignCoordinator() = default;

  /// Manifest first, ledger second (see file comment). Caller holds mu_.
  [[nodiscard]] common::Status flush_locked();
  [[nodiscard]] LeaseGrant grant_snapshot_locked() const;

  core::CampaignPlan plan_;
  core::JobPhase phase_ = core::JobPhase::kRowHammer;
  std::uint64_t plan_hash_ = 0;
  std::string manifest_path_;  ///< empty = in-memory
  std::string spec_json_;
  std::vector<core::ShardCoord> grid_;
  core::ShardGridIndex grid_index_;
  /// Entry -> module map handed to the ledger so leases are module-affine
  /// (campaign_lease.hpp): concurrent workers land on disjoint modules and
  /// each WCDP prep runs once fleet-wide.
  std::vector<std::size_t> shard_modules_;

  mutable std::mutex mu_;
  core::CampaignManifest manifest_;
  core::CampaignLeaseLedger ledger_;
};

}  // namespace vppstudy::server
