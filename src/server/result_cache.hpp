// Content-addressed result cache of the vppd daemon.
//
// The sweep engine's determinism contract (core/parallel_study: every
// sampled row derives its noise from row_stream_seed, never from scheduling
// or shard grouping) makes each grid cell -- one sampled row at one VPP
// level under one experiment phase -- a pure function of its key. This cache
// stores cells under
//
//   hash_key({config_digest, phase, module_seed, vpp_mv, row})
//
// where config_digest folds in every result-affecting field of the
// SweepConfig plus the campaign seed. Two requests whose digests match share
// cells: an overlapping sweep (e.g. step 0.4 after step 0.2 -- a subset of
// the same millivolt grid) recomputes nothing, and a partially overlapping
// one recomputes exactly the uncovered cells. Cache hits are byte-identical
// to fresh computation because the cached value *is* the fresh computation.
//
// The WCDP determination pass (phase A, section 4.1) is cached separately
// per (digest, module): it walks all sampled rows in one session at nominal
// VPP and its output vector is parallel to the row set, which the digest
// pins via the sampling fields.
//
// Capacity: by default the cache grows without bound (the historical
// behavior). Constructing with max_cells > 0 bounds the *cell* map: once
// resident cells exceed the cap, the least recently used cells are evicted
// (lookups and inserts both refresh recency). Eviction only ever costs
// recompute -- an evicted cell is recomputed bit-identically on the next
// request -- so correctness is untouched. WCDP prep vectors are NOT bounded:
// there is one per (digest, module), a population too small to matter and
// too expensive to recompute per request.
//
// Thread safety: all methods are safe to call concurrently (one mutex; cell
// values are copied out). Insertion happens only with whole completed rows
// -- a cancelled shard inserts nothing -- so no reader can observe a torn
// cell.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/parallel_study.hpp"
#include "core/study.hpp"

namespace vppstudy::server {

/// One cached grid cell. The phase is part of the key, so each entry only
/// populates its own phase's fields; the rest stay at defaults.
struct CellValue {
  dram::DataPattern wcdp = dram::DataPattern::kCheckerAA;
  // kRowHammer
  std::uint64_t hc_first = 0;
  double ber = 0.0;
  // kTrcd
  double trcd_min_ns = 0.0;
  // kRetention: worst BER per tREFW window (the window grid is part of the
  // config digest, so parallel vectors from the same digest line up).
  std::vector<double> retention_ber;
};

class ResultCache {
 public:
  /// `max_cells` == 0 leaves the cell map unbounded; > 0 caps resident
  /// cells with LRU eviction (vppd --cache-max-cells).
  explicit ResultCache(std::uint64_t max_cells = 0) : max_cells_(max_cells) {}

  /// Digest of every result-affecting request-level input: the campaign
  /// seed, the row sampling (which pins the sampled row set), the nominal
  /// VPP level (the WCDP pass's operating point), and all three phase
  /// configs. The per-cell axes -- phase, module, VPP level, row -- are NOT
  /// in the digest; they are the key's other components, which is what lets
  /// requests with different level grids share cells.
  [[nodiscard]] static std::uint64_t config_digest(
      const core::SweepConfig& sweep, std::uint64_t seed);

  [[nodiscard]] static std::uint64_t cell_key(std::uint64_t digest,
                                              core::JobPhase phase,
                                              std::uint64_t module_seed,
                                              std::uint64_t vpp_mv,
                                              std::uint32_t row);

  /// Cell key of one sampled row at one multi-axis grid point. `point` must
  /// be normalized (core::AxisPoint::normalized): a baseline point hashes to
  /// exactly cell_key(...) -- multi-axis requests share every baseline cell
  /// with VPP-only requests -- and each off-default coordinate extends the
  /// key with its quantized axis word, so e.g. a 65C hammer cell can never
  /// alias the 50C default cell of the same (digest, module, vpp, row).
  [[nodiscard]] static std::uint64_t point_key(std::uint64_t digest,
                                               core::JobPhase phase,
                                               std::uint64_t module_seed,
                                               const core::AxisPoint& point,
                                               std::uint32_t row);
  [[nodiscard]] static std::uint64_t wcdp_key(std::uint64_t digest,
                                              std::uint64_t module_seed);

  /// Copy the cell under `key` into `*out`. Counts a hit or a miss.
  [[nodiscard]] bool lookup(std::uint64_t key, CellValue* out) const;
  void insert(std::uint64_t key, CellValue value);

  [[nodiscard]] bool lookup_wcdp(std::uint64_t key,
                                 std::vector<dram::DataPattern>* out) const;
  void insert_wcdp(std::uint64_t key, std::vector<dram::DataPattern> wcdp);

  /// Cumulative accounting since construction (served by the `stats`
  /// request and asserted by the stress tests).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t cells = 0;       ///< resident cell entries
    std::uint64_t wcdp_preps = 0;  ///< resident WCDP prep vectors
    std::uint64_t evictions = 0;   ///< cells dropped by the LRU bound
    std::uint64_t max_cells = 0;   ///< the configured bound (0 = unbounded)
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct CellEntry {
    CellValue value;
    /// This cell's position in lru_ (most recent at the front). list
    /// iterators survive splicing, so refreshing recency never touches the
    /// map entry.
    std::list<std::uint64_t>::iterator pos;
  };

  void evict_over_cap();

  const std::uint64_t max_cells_;
  mutable std::mutex mu_;
  mutable std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, CellEntry> cells_;
  std::unordered_map<std::uint64_t, std::vector<dram::DataPattern>> wcdp_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace vppstudy::server
