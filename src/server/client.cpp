#include "server/client.hpp"

#include <utility>

namespace vppstudy::server {

using common::Error;
using common::ErrorCode;
using common::JsonValue;

common::Result<Client> Client::connect(std::uint16_t port) {
  auto socket = common::connect_loopback(port);
  if (!socket) return std::move(socket).error();
  return Client(std::move(*socket));
}

common::Status Client::send(std::string_view payload) {
  return write_frame(socket_, payload);
}

common::Result<JsonValue> Client::receive() {
  if (!buffered_.empty()) {
    JsonValue doc = std::move(buffered_.front());
    buffered_.pop_front();
    return doc;
  }
  std::string payload;
  auto more = read_frame(socket_, payload);
  if (!more) return std::move(more).error();
  if (!*more) {
    return Error{ErrorCode::kIoError, "server closed the connection"};
  }
  return common::parse_json(payload);
}

common::Result<JsonValue> Client::wait_for(std::uint64_t id) {
  for (std::size_t i = 0; i < buffered_.size(); ++i) {
    if (buffered_[i].uint_or("id", 0) == id) {
      JsonValue doc = std::move(buffered_[i]);
      buffered_.erase(buffered_.begin() + static_cast<std::ptrdiff_t>(i));
      return doc;
    }
  }
  for (;;) {
    std::string payload;
    auto more = read_frame(socket_, payload);
    if (!more) return std::move(more).error();
    if (!*more) {
      return Error{ErrorCode::kIoError,
                   "server closed the connection before answering request " +
                       std::to_string(id)};
    }
    auto doc = common::parse_json(payload);
    if (!doc) return std::move(doc).error();
    if (doc->uint_or("id", 0) == id) return std::move(*doc);
    buffered_.push_back(std::move(*doc));
  }
}

common::Result<JsonValue> Client::call(std::uint64_t id,
                                       std::string_view payload) {
  if (auto st = send(payload); !st.ok()) return std::move(st).error();
  return wait_for(id);
}

common::Result<JsonValue> Client::call_result(std::uint64_t id,
                                              std::string_view payload) {
  auto response = call(id, payload);
  if (!response) return std::move(response).error();
  return response_result(*response);
}

common::Result<Client::SweepResponse> Client::sweep(
    const SweepRequest& request) {
  const std::uint64_t id = next_id();
  auto response = call(id, encode_sweep_request(id, request));
  if (!response) return std::move(response).error();
  auto result = response_result(*response);
  if (!result) return std::move(result).error();
  SweepResponse out;
  out.result = std::move(*result);
  if (const JsonValue* stats = response->find("stats")) {
    out.stats.cache_hits = stats->uint_or("cache_hits", 0);
    out.stats.cache_misses = stats->uint_or("cache_misses", 0);
  }
  return out;
}

common::Result<JsonValue> Client::inject(const InjectRequest& request) {
  const std::uint64_t id = next_id();
  return call_result(id, encode_inject_request(id, request));
}

common::Result<JsonValue> Client::replay(const std::string& dump_json) {
  const std::uint64_t id = next_id();
  return call_result(id, encode_replay_request(id, dump_json));
}

common::Result<JsonValue> Client::campaign_open(
    const std::string& manifest_json) {
  const std::uint64_t id = next_id();
  return call_result(id, encode_campaign_open_request(id, manifest_json));
}

common::Result<LeaseGrant> Client::lease(const LeaseRequest& request) {
  const std::uint64_t id = next_id();
  auto result = call_result(id, encode_lease_request(id, request));
  if (!result) return std::move(result).error();
  return parse_lease_result(*result);
}

common::Result<SubmitOutcome> Client::submit(const SubmitRequest& request) {
  const std::uint64_t id = next_id();
  auto result = call_result(id, encode_submit_request(id, request));
  if (!result) return std::move(result).error();
  return parse_submit_result(*result);
}

common::Result<std::uint64_t> Client::heartbeat(
    const HeartbeatRequest& request) {
  const std::uint64_t id = next_id();
  auto result = call_result(id, encode_heartbeat_request(id, request));
  if (!result) return std::move(result).error();
  return result->uint_or("renewed", 0);
}

common::Status Client::ping() {
  const std::uint64_t id = next_id();
  auto result = call_result(id, encode_ping_request(id));
  if (!result) return std::move(result).error();
  return common::Status::ok_status();
}

common::Status Client::shutdown_server() {
  const std::uint64_t id = next_id();
  auto result = call_result(id, encode_shutdown_request(id));
  if (!result) return std::move(result).error();
  return common::Status::ok_status();
}

}  // namespace vppstudy::server
