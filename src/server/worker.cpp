#include "server/worker.hpp"

#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "core/campaign_lease.hpp"
#include "server/client.hpp"

namespace vppstudy::server {

using common::Error;
using common::ErrorCode;

namespace {

/// Per-worker WCDP prep memo: each module's prep runs at most once per
/// worker process no matter how many leases touch it. Row-level lookups
/// stay at the CellStore default (miss): leases are disjoint, so rows are
/// always computed fresh -- exactly like a storeless single-host run.
class WcdpMemoStore final : public core::CellStore {
 public:
  bool lookup_wcdp(const dram::ModuleProfile& profile,
                   std::vector<dram::DataPattern>* out) override {
    std::lock_guard lock(mu_);
    const auto it = memo_.find(profile.seed);
    if (it == memo_.end()) return false;
    *out = it->second;
    return true;
  }
  void store_wcdp(const dram::ModuleProfile& profile,
                  const std::vector<dram::DataPattern>& wcdp) override {
    std::lock_guard lock(mu_);
    memo_.insert_or_assign(profile.seed, wcdp);
  }

  /// Seed the memo from the coordinator's merged preps (shipped with every
  /// lease grant): any module another worker already prepped becomes a memo
  /// hit here instead of a duplicate compute. Already-memoized modules are
  /// left alone -- preps are deterministic, so the bytes would be equal
  /// anyway.
  void seed(const core::CampaignPlan& plan,
            const std::vector<core::ManifestWcdp>& records) {
    std::lock_guard lock(mu_);
    for (const core::ManifestWcdp& record : records) {
      for (const dram::ModuleProfile& profile : plan.modules) {
        if (profile.name != record.module) continue;
        memo_.try_emplace(profile.seed, record.wcdp);
        break;
      }
    }
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<dram::DataPattern>> memo_;
};

}  // namespace

common::Result<CampaignWorker::Summary> CampaignWorker::run(
    const Options& options) {
  if (options.worker_id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "worker needs a non-empty id"};
  }
  VPP_ASSIGN_OR_RETURN(Client client, Client::connect(options.port));

  Summary summary;
  WcdpMemoStore memo;
  bool have_plan = false;
  core::CampaignPlan plan;
  core::JobPhase phase = core::JobPhase::kRowHammer;
  std::uint64_t plan_hash = 0;

  for (;;) {
    LeaseRequest request;
    request.plan_hash = plan_hash;
    request.worker = options.worker_id;
    request.max_shards = options.lease_shards;
    request.ttl_ms = options.ttl_ms;
    request.need_plan = !have_plan;
    VPP_ASSIGN_OR_RETURN(LeaseGrant grant, client.lease(request));

    if (!have_plan) {
      if (!grant.has_campaign) {
        return Error{ErrorCode::kInvalidArgument,
                     "lease grant did not carry the campaign spec"};
      }
      VPP_ASSIGN_OR_RETURN(plan, core::plan_from_manifest(grant.campaign));
      phase = grant.phase;
      plan_hash = grant.plan_hash;
      // The spec must hash to the coordinator's plan hash -- a mismatch
      // means the wire document does not describe the campaign we would be
      // computing cells for.
      if (plan.digest(phase) != plan_hash) {
        return Error{ErrorCode::kInvalidArgument,
                     "campaign spec does not hash to the coordinator's "
                     "plan hash"};
      }
      plan.jobs = options.jobs;
      plan.manifest_path.clear();  // the coordinator owns the checkpoint
      have_plan = true;
    }
    memo.seed(plan, grant.wcdp);

    if (grant.shards.empty()) {
      if (grant.complete) break;
      // Everything is leased out to other workers right now; poll.
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
      continue;
    }

    // Renew once before computing: exercises the heartbeat path and skips
    // the compute when the lease is somehow already gone.
    HeartbeatRequest hb;
    hb.plan_hash = plan_hash;
    hb.token = grant.token;
    hb.ttl_ms = options.ttl_ms;
    if (auto renewed = client.heartbeat(hb); !renewed) {
      if (renewed.error().code == ErrorCode::kLeaseExpired) {
        ++summary.dropped;
        continue;
      }
      return std::move(renewed).error();
    }

    VPP_ASSIGN_OR_RETURN(
        core::CampaignShardBatch batch,
        core::run_campaign_shards(plan, phase, grant.shards, &memo));

    SubmitRequest submit;
    submit.plan_hash = plan_hash;
    submit.phase = phase;
    submit.worker = options.worker_id;
    submit.token = grant.token;
    submit.wcdp = std::move(batch.wcdp);
    submit.shards = std::move(batch.shards);
    auto outcome = client.submit(submit);
    if (!outcome) {
      if (outcome.error().code == ErrorCode::kLeaseExpired) {
        // Our lease expired mid-compute and the shards were re-granted; the
        // other worker's bytes are identical by determinism, so dropping
        // this batch loses nothing.
        ++summary.dropped;
        continue;
      }
      return std::move(outcome).error();
    }
    ++summary.leases;
    summary.shards += outcome->accepted;
    summary.duplicates += outcome->duplicates;
    if (outcome->complete) break;
  }
  return summary;
}

}  // namespace vppstudy::server
