// The worker side of distributed campaign execution (`vppd --connect`).
//
// A CampaignWorker connects to a coordinator daemon and loops
// lease -> compute -> submit until the campaign completes: each granted
// shard subset runs through core::run_campaign_shards (bit-identical to the
// single-host engine), and the completed ManifestShard records stream back
// in a submit frame for the coordinator's canonical-order merge. A local
// WCDP memo ensures each module's prep runs at most once per worker even
// across many small leases.
//
// Liveness: a heartbeat between lease and compute exercises renewal; a
// batch whose lease expired mid-compute is rejected by the coordinator with
// kLeaseExpired -- the worker *drops* that batch and keeps leasing (its
// shards were re-granted to someone faster; by determinism the other
// worker's bytes are the same). Every other error is fatal.
#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"

namespace vppstudy::server {

class CampaignWorker {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< the coordinator daemon's loopback port
    std::string worker_id;   ///< must be non-empty and unique per worker
    std::uint64_t lease_shards = 4;  ///< shards per lease (0 = all open)
    std::int64_t ttl_ms = 30000;
    int jobs = 1;       ///< local shard pool width (results unaffected)
    int poll_ms = 50;   ///< back-off when everything is leased out
  };

  struct Summary {
    std::uint64_t shards = 0;      ///< shard records accepted by the merge
    std::uint64_t leases = 0;      ///< non-empty grants processed
    std::uint64_t duplicates = 0;  ///< records the merge already had
    std::uint64_t dropped = 0;     ///< batches lost to lease expiry
  };

  /// Run until the campaign is complete (or a fatal error).
  [[nodiscard]] static common::Result<Summary> run(const Options& options);
};

}  // namespace vppstudy::server
