#include "server/result_cache.hpp"

#include <bit>

#include "common/rng.hpp"

namespace vppstudy::server {

namespace {

std::uint64_t bits(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}

}  // namespace

std::uint64_t ResultCache::config_digest(const core::SweepConfig& sweep,
                                         std::uint64_t seed) {
  const std::uint64_t nominal_mv =
      sweep.vpp_levels.empty() ? 0
                               : core::vpp_millivolts(sweep.vpp_levels.front());
  return common::hash_key({
      0x76707064ULL,  // "vppd" domain separator
      seed,
      nominal_mv,
      sweep.sampling.bank,
      sweep.sampling.chunks,
      sweep.sampling.rows_per_chunk,
      sweep.determine_wcdp ? 1ULL : 0ULL,
      sweep.hammer.initial_hc,
      sweep.hammer.initial_step,
      sweep.hammer.min_step,
      sweep.hammer.ber_hc,
      static_cast<std::uint64_t>(sweep.hammer.num_iterations),
      bits(sweep.trcd.start_ns),
      bits(sweep.trcd.step_ns),
      bits(sweep.trcd.max_ns),
      static_cast<std::uint64_t>(sweep.trcd.num_iterations),
      sweep.trcd.column_stride,
      bits(sweep.retention.min_trefw_ms),
      bits(sweep.retention.max_trefw_ms),
      static_cast<std::uint64_t>(sweep.retention.num_iterations),
  });
}

std::uint64_t ResultCache::cell_key(std::uint64_t digest, core::JobPhase phase,
                                    std::uint64_t module_seed,
                                    std::uint64_t vpp_mv, std::uint32_t row) {
  return common::hash_key({digest, static_cast<std::uint64_t>(phase),
                           module_seed, vpp_mv, row});
}

std::uint64_t ResultCache::point_key(std::uint64_t digest,
                                     core::JobPhase phase,
                                     std::uint64_t module_seed,
                                     const core::AxisPoint& point,
                                     std::uint32_t row) {
  const std::uint64_t vpp_mv = core::vpp_millivolts(point.vpp_v);
  if (point.baseline()) {
    return cell_key(digest, phase, module_seed, vpp_mv, row);
  }
  std::uint64_t key = common::hash_key(
      {digest, static_cast<std::uint64_t>(phase), module_seed, vpp_mv, row,
       static_cast<std::uint64_t>(
           core::temperature_millidegrees(point.temperature_c)),
       point.hammer_count,
       static_cast<std::uint64_t>(
           core::act_to_act_picoseconds(point.act_to_act_ns))});
  // The pattern axis folds in only when present: hash_key is a left fold,
  // so every pre-pattern key -- and therefore every cached result of a
  // pattern-free campaign -- is untouched by the axis existing.
  if (point.pattern_hash != 0) {
    key = common::hash_accumulate(key, point.pattern_hash);
  }
  return key;
}

std::uint64_t ResultCache::wcdp_key(std::uint64_t digest,
                                    std::uint64_t module_seed) {
  return common::hash_key(
      {digest, static_cast<std::uint64_t>(core::JobPhase::kWcdp), module_seed});
}

bool ResultCache::lookup(std::uint64_t key, CellValue* out) const {
  std::lock_guard lock(mu_);
  const auto it = cells_.find(key);
  if (it == cells_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.pos);
  *out = it->second.value;
  return true;
}

void ResultCache::insert(std::uint64_t key, CellValue value) {
  std::lock_guard lock(mu_);
  const auto it = cells_.find(key);
  if (it != cells_.end()) {
    it->second.value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return;
  }
  lru_.push_front(key);
  cells_.emplace(key, CellEntry{std::move(value), lru_.begin()});
  evict_over_cap();
}

void ResultCache::evict_over_cap() {
  if (max_cells_ == 0) return;
  while (cells_.size() > max_cells_) {
    cells_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

bool ResultCache::lookup_wcdp(std::uint64_t key,
                              std::vector<dram::DataPattern>* out) const {
  std::lock_guard lock(mu_);
  const auto it = wcdp_.find(key);
  if (it == wcdp_.end()) return false;
  *out = it->second;
  return true;
}

void ResultCache::insert_wcdp(std::uint64_t key,
                              std::vector<dram::DataPattern> wcdp) {
  std::lock_guard lock(mu_);
  wcdp_.insert_or_assign(key, std::move(wcdp));
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.cells = cells_.size();
  s.wcdp_preps = wcdp_.size();
  s.evictions = evictions_;
  s.max_cells = max_cells_;
  return s;
}

}  // namespace vppstudy::server
