#include "server/service.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <optional>
#include <utility>

#include "chips/module_db.hpp"
#include "core/parallel_study.hpp"
#include "softmc/fault_injector.hpp"
#include "softmc/trace_dump.hpp"
#include "softmc/trace_replayer.hpp"

namespace vppstudy::server {

using common::CancelToken;
using common::Error;
using common::ErrorCode;

namespace {

/// The uncovered (level, row) cells of one shard job: a regrouped, owned
/// slice of the request's grid. Indices point back into the sampled row
/// list so completed values land in their final positions.
struct MissShard {
  std::size_t level = 0;
  double vpp = 0.0;
  std::vector<std::uint32_t> rows;
  std::vector<std::size_t> row_index;
  std::vector<dram::DataPattern> wcdp;  ///< hammer only, parallel to rows
};

/// Reconstruct the tREFW window grid RetentionTest::test_row probes: a pure
/// function of the config (doubling from min to max), needed when every
/// cell of a level is served from the cache and no fresh row carries it.
std::vector<double> retention_windows(const core::SweepConfig& cfg) {
  std::vector<double> windows;
  for (double t = cfg.retention.min_trefw_ms; t <= cfg.retention.max_trefw_ms;
       t *= 2.0) {
    windows.push_back(t);
  }
  return windows;
}

}  // namespace

softmc::Session& Service::Arena::acquire(const dram::ModuleProfile& profile) {
  auto& slot = sessions[profile.name];
  if (slot) {
    slot->reset_for_job();
  } else {
    slot = std::make_unique<softmc::Session>(profile);
  }
  return *slot;
}

Service::Service(Config config)
    : config_(config),
      arenas_(std::max(1u, common::ThreadPool::workers_for_jobs(config.jobs))),
      pool_(static_cast<unsigned>(arenas_.size() - 1)) {}

common::Result<Service::Outcome> Service::sweep(const SweepRequest& request,
                                                const CancelToken& cancel) {
  const auto profile = chips::profile_by_name(request.module);
  if (!profile) {
    return Error{ErrorCode::kInvalidArgument,
                 "unknown module '" + request.module + "'"};
  }
  const core::SweepConfig cfg = sweep_config_from_request(request);
  const std::vector<double> levels =
      core::usable_vpp_levels(cfg, profile->vppmin_v);
  if (levels.empty()) {
    return Error{ErrorCode::kNoUsableLevels,
                 "no usable VPP levels for module " + profile->name}
        .with_module(profile->name);
  }
  const std::vector<std::uint32_t> rows =
      core::sample_campaign_rows(*profile, cfg.sampling);
  if (rows.empty()) {
    return Error{ErrorCode::kEmptySample, "row sampling produced no rows"}
        .with_module(profile->name);
  }
  const std::uint64_t digest = ResultCache::config_digest(cfg, request.seed);
  if (request.test == "trcd") {
    return trcd_sweep(request, cancel, *profile, cfg, levels, rows, digest);
  }
  if (request.test == "retention") {
    return retention_sweep(request, cancel, *profile, cfg, levels, rows,
                           digest);
  }
  return hammer_sweep(request, cancel, *profile, cfg, levels, rows, digest);
}

common::Result<Service::Outcome> Service::hammer_sweep(
    const SweepRequest& request, const CancelToken& cancel,
    const dram::ModuleProfile& profile, const core::SweepConfig& cfg,
    const std::vector<double>& levels, const std::vector<std::uint32_t>& rows,
    std::uint64_t digest) {
  const std::uint64_t seed = request.seed;

  // Phase A: WCDP determination at nominal VPP, cached per (digest, module).
  std::vector<dram::DataPattern> wcdp;
  const std::uint64_t wk = ResultCache::wcdp_key(digest, profile.seed);
  if (!cache_.lookup_wcdp(wk, &wcdp)) {
    if (cancel.cancelled()) {
      return Error{ErrorCode::kCancelled, "sweep cancelled before WCDP prep"}
          .with_module(profile.name);
    }
    const double nominal = levels.front();
    auto future = pool_.submit([this, &profile, &cfg, seed, nominal, &rows] {
      return core::run_wcdp_prep(arenas_.local(pool_).acquire(profile), cfg,
                                 seed, nominal, rows);
    });
    auto prep = future.get();
    if (!prep) return std::move(prep).error();
    wcdp = std::move(prep->wcdp);
    cache_.insert_wcdp(wk, wcdp);
  }

  // Plan: copy cached cells straight into the result grid, regroup the
  // uncovered remainder into row-range shards.
  std::vector<core::RowSeries> series(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    series[i].row = rows[i];
    series[i].wcdp = wcdp[i];
    series[i].hc_first.assign(levels.size(), 0);
    series[i].ber.assign(levels.size(), 0.0);
  }
  RequestStats stats;
  const std::size_t shard_size =
      config_.rows_per_shard == 0 ? rows.size() : config_.rows_per_shard;
  std::vector<MissShard> shards;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const std::uint64_t vpp_mv = core::vpp_millivolts(levels[l]);
    MissShard cur;
    cur.level = l;
    cur.vpp = levels[l];
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::uint64_t key = ResultCache::cell_key(
          digest, core::JobPhase::kRowHammer, profile.seed, vpp_mv, rows[i]);
      CellValue cell;
      if (cache_.lookup(key, &cell)) {
        ++stats.cache_hits;
        series[i].hc_first[l] = cell.hc_first;
        series[i].ber[l] = cell.ber;
        continue;
      }
      ++stats.cache_misses;
      cur.rows.push_back(rows[i]);
      cur.row_index.push_back(i);
      cur.wcdp.push_back(wcdp[i]);
      if (cur.rows.size() >= shard_size) {
        shards.push_back(std::move(cur));
        cur = MissShard{};
        cur.level = l;
        cur.vpp = levels[l];
      }
    }
    if (!cur.rows.empty()) shards.push_back(std::move(cur));
  }

  std::vector<std::future<common::Expected<core::HammerCell>>> futures;
  futures.reserve(shards.size());
  for (const MissShard& shard : shards) {
    futures.push_back(pool_.submit([this, &profile, &cfg, seed, &shard,
                                    cancel] {
      return core::run_hammer_rows(arenas_.local(pool_).acquire(profile), cfg,
                                   seed, shard.vpp, shard.rows, shard.wcdp,
                                   cancel);
    }));
  }

  // Drain every shard even after a failure: completed shards are whole rows
  // and go into the cache (reusable, never torn); the first error -- in
  // deterministic shard order -- is what the client sees.
  std::optional<Error> first_error;
  for (std::size_t s = 0; s < futures.size(); ++s) {
    auto cell = futures[s].get();
    if (!cell) {
      if (!first_error) first_error = std::move(cell).error();
      continue;
    }
    const MissShard& shard = shards[s];
    const std::uint64_t vpp_mv = core::vpp_millivolts(shard.vpp);
    for (std::size_t j = 0; j < shard.rows.size(); ++j) {
      CellValue value;
      value.wcdp = shard.wcdp[j];
      value.hc_first = cell->rows[j].hc_first;
      value.ber = cell->rows[j].ber;
      cache_.insert(
          ResultCache::cell_key(digest, core::JobPhase::kRowHammer,
                                profile.seed, vpp_mv, shard.rows[j]),
          std::move(value));
      series[shard.row_index[j]].hc_first[shard.level] = cell->rows[j].hc_first;
      series[shard.row_index[j]].ber[shard.level] = cell->rows[j].ber;
    }
  }
  if (first_error) return std::move(*first_error);

  core::ModuleSweepResult result;
  result.module_name = profile.name;
  result.mfr = profile.mfr;
  result.vppmin_v = profile.vppmin_v;
  result.vpp_levels = levels;
  result.rows = std::move(series);
  Outcome out;
  out.result_json = hammer_sweep_to_json(result);
  out.stats = stats;
  return out;
}

common::Result<Service::Outcome> Service::trcd_sweep(
    const SweepRequest& request, const CancelToken& cancel,
    const dram::ModuleProfile& profile, const core::SweepConfig& cfg,
    const std::vector<double>& levels, const std::vector<std::uint32_t>& rows,
    std::uint64_t digest) {
  const std::uint64_t seed = request.seed;
  std::vector<std::vector<double>> grid(levels.size(),
                                        std::vector<double>(rows.size(), 0.0));
  RequestStats stats;
  const std::size_t shard_size =
      config_.rows_per_shard == 0 ? rows.size() : config_.rows_per_shard;
  std::vector<MissShard> shards;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const std::uint64_t vpp_mv = core::vpp_millivolts(levels[l]);
    MissShard cur;
    cur.level = l;
    cur.vpp = levels[l];
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::uint64_t key = ResultCache::cell_key(
          digest, core::JobPhase::kTrcd, profile.seed, vpp_mv, rows[i]);
      CellValue cell;
      if (cache_.lookup(key, &cell)) {
        ++stats.cache_hits;
        grid[l][i] = cell.trcd_min_ns;
        continue;
      }
      ++stats.cache_misses;
      cur.rows.push_back(rows[i]);
      cur.row_index.push_back(i);
      if (cur.rows.size() >= shard_size) {
        shards.push_back(std::move(cur));
        cur = MissShard{};
        cur.level = l;
        cur.vpp = levels[l];
      }
    }
    if (!cur.rows.empty()) shards.push_back(std::move(cur));
  }

  std::vector<std::future<common::Expected<core::TrcdCell>>> futures;
  futures.reserve(shards.size());
  for (const MissShard& shard : shards) {
    futures.push_back(
        pool_.submit([this, &profile, &cfg, seed, &shard, cancel] {
          return core::run_trcd_rows(arenas_.local(pool_).acquire(profile),
                                     cfg, seed, shard.vpp, shard.rows, cancel);
        }));
  }

  std::optional<Error> first_error;
  for (std::size_t s = 0; s < futures.size(); ++s) {
    auto cell = futures[s].get();
    if (!cell) {
      if (!first_error) first_error = std::move(cell).error();
      continue;
    }
    const MissShard& shard = shards[s];
    const std::uint64_t vpp_mv = core::vpp_millivolts(shard.vpp);
    for (std::size_t j = 0; j < shard.rows.size(); ++j) {
      CellValue value;
      value.wcdp = cell->rows[j].wcdp;
      value.trcd_min_ns = cell->rows[j].trcd_min_ns;
      cache_.insert(ResultCache::cell_key(digest, core::JobPhase::kTrcd,
                                          profile.seed, vpp_mv, shard.rows[j]),
                    std::move(value));
      grid[shard.level][shard.row_index[j]] = cell->rows[j].trcd_min_ns;
    }
  }
  if (first_error) return std::move(*first_error);

  core::TrcdSweepResult result;
  result.module_name = profile.name;
  result.vppmin_v = profile.vppmin_v;
  result.vpp_levels = levels;
  result.trcd_min_ns.reserve(levels.size());
  for (std::size_t l = 0; l < levels.size(); ++l) {
    // Module tRCDmin is the max across sampled rows, reduced in fixed row
    // order exactly like core/parallel_study's assembly.
    double trcd_min_ns = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      trcd_min_ns = std::max(trcd_min_ns, grid[l][i]);
    }
    result.trcd_min_ns.push_back(trcd_min_ns);
  }
  Outcome out;
  out.result_json = trcd_sweep_to_json(result);
  out.stats = stats;
  return out;
}

common::Result<Service::Outcome> Service::retention_sweep(
    const SweepRequest& request, const CancelToken& cancel,
    const dram::ModuleProfile& profile, const core::SweepConfig& cfg,
    const std::vector<double>& levels, const std::vector<std::uint32_t>& rows,
    std::uint64_t digest) {
  const std::uint64_t seed = request.seed;
  const std::vector<double> windows = retention_windows(cfg);
  std::vector<std::vector<std::vector<double>>> grid(
      levels.size(), std::vector<std::vector<double>>(rows.size()));
  RequestStats stats;
  const std::size_t shard_size =
      config_.rows_per_shard == 0 ? rows.size() : config_.rows_per_shard;
  std::vector<MissShard> shards;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const std::uint64_t vpp_mv = core::vpp_millivolts(levels[l]);
    MissShard cur;
    cur.level = l;
    cur.vpp = levels[l];
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::uint64_t key = ResultCache::cell_key(
          digest, core::JobPhase::kRetention, profile.seed, vpp_mv, rows[i]);
      CellValue cell;
      if (cache_.lookup(key, &cell)) {
        ++stats.cache_hits;
        grid[l][i] = std::move(cell.retention_ber);
        continue;
      }
      ++stats.cache_misses;
      cur.rows.push_back(rows[i]);
      cur.row_index.push_back(i);
      if (cur.rows.size() >= shard_size) {
        shards.push_back(std::move(cur));
        cur = MissShard{};
        cur.level = l;
        cur.vpp = levels[l];
      }
    }
    if (!cur.rows.empty()) shards.push_back(std::move(cur));
  }

  std::vector<std::future<common::Expected<core::RetentionCell>>> futures;
  futures.reserve(shards.size());
  for (const MissShard& shard : shards) {
    futures.push_back(
        pool_.submit([this, &profile, &cfg, seed, &shard, cancel] {
          return core::run_retention_rows(arenas_.local(pool_).acquire(profile),
                                          cfg, seed, shard.vpp, shard.rows,
                                          cancel);
        }));
  }

  std::optional<Error> first_error;
  for (std::size_t s = 0; s < futures.size(); ++s) {
    auto cell = futures[s].get();
    if (!cell) {
      if (!first_error) first_error = std::move(cell).error();
      continue;
    }
    const MissShard& shard = shards[s];
    const std::uint64_t vpp_mv = core::vpp_millivolts(shard.vpp);
    for (std::size_t j = 0; j < shard.rows.size(); ++j) {
      CellValue value;
      value.wcdp = cell->rows[j].wcdp;
      value.retention_ber = cell->rows[j].ber;
      grid[shard.level][shard.row_index[j]] = cell->rows[j].ber;
      cache_.insert(ResultCache::cell_key(digest, core::JobPhase::kRetention,
                                          profile.seed, vpp_mv, shard.rows[j]),
                    std::move(value));
    }
  }
  if (first_error) return std::move(*first_error);

  core::RetentionSweepResult result;
  result.module_name = profile.name;
  result.mfr = profile.mfr;
  result.vpp_levels = levels;
  result.trefw_ms = windows;
  const double row_count = static_cast<double>(rows.size());
  for (std::size_t l = 0; l < levels.size(); ++l) {
    std::vector<double> sums(windows.size(), 0.0);
    std::vector<double> ref_bers;
    ref_bers.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::vector<double>& ber = grid[l][i];
      for (std::size_t w = 0; w < ber.size() && w < sums.size(); ++w) {
        sums[w] += ber[w];
      }
      std::size_t ref = 0;
      for (std::size_t w = 0; w < windows.size(); ++w) {
        if (std::abs(windows[w] - result.reference_trefw_ms) <
            std::abs(windows[ref] - result.reference_trefw_ms)) {
          ref = w;
        }
      }
      ref_bers.push_back(ber.empty() ? 0.0 : ber[ref]);
    }
    for (double& s : sums) s /= row_count;
    result.mean_ber.push_back(std::move(sums));
    result.row_ber_at_reference.push_back(std::move(ref_bers));
  }
  Outcome out;
  out.result_json = retention_sweep_to_json(result);
  out.stats = stats;
  return out;
}

common::Result<Service::Outcome> Service::inject(const InjectRequest& request,
                                                 const CancelToken& cancel) {
  if (cancel.cancelled()) {
    return Error{ErrorCode::kCancelled, "inject cancelled before start"};
  }
  auto plan = softmc::FaultPlan::parse(request.faults);
  if (!plan) return std::move(plan).error();

  // Mirrors vppctl inject's config construction field for field, so a
  // remote campaign is the same campaign the CLI would run locally.
  core::ResilientConfig config;
  config.faults = std::move(*plan);
  config.seed = request.seed;
  config.retry.max_attempts = request.retries;
  config.trace_capacity = static_cast<std::size_t>(request.trace_cap);
  config.sweep = core::SweepConfig::quick();
  config.sweep.sampling.chunks = 2;
  config.sweep.sampling.rows_per_chunk = std::max(1u, request.rows / 2);
  for (const std::string& name : request.modules) {
    auto profile = chips::profile_by_name(name);
    if (!profile) {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown module '" + name + "'"};
    }
    profile->rows_per_bank = 4096;
    config.modules.push_back(std::move(*profile));
  }

  const core::CampaignResult campaign = core::run_resilient_rowhammer(config);
  Outcome out;
  out.result_json = campaign_result_to_json(campaign);
  return out;
}

common::Result<Service::Outcome> Service::replay(const std::string& dump_json,
                                                 const CancelToken& cancel) {
  if (cancel.cancelled()) {
    return Error{ErrorCode::kCancelled, "replay cancelled before start"};
  }
  auto doc = common::parse_json(dump_json);
  if (!doc) return std::move(doc).error();
  auto dump = softmc::parse_trace_dump(*doc);
  if (!dump) return std::move(dump).error();
  const auto profile = chips::profile_by_name(dump->module);
  if (!profile) {
    return Error{ErrorCode::kInvalidArgument,
                 "dump names unknown module '" + dump->module + "'"};
  }
  const std::size_t entries = dump->entries.size();
  softmc::TraceReplayer replayer(std::move(*dump));
  auto report = replayer.replay_on_profile(*profile);
  if (!report) return std::move(report).error();

  common::JsonWriter w;
  w.begin_object()
      .kv("kind", "replay")
      .kv("module", profile->name)
      .kv("entries", static_cast<std::uint64_t>(entries))
      .kv("commands_replayed", report->commands_replayed)
      .kv("timing_violations",
          static_cast<std::uint64_t>(report->timing_violations))
      .kv("original_failed", report->original_failed)
      .kv("replay_failed", report->replay_failed)
      .kv("reproduced", report->reproduced())
      .end_object();
  Outcome out;
  out.result_json = w.str();
  return out;
}

}  // namespace vppstudy::server
