#include "server/service.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "chips/module_db.hpp"
#include "core/export.hpp"
#include "core/parallel_study.hpp"
#include "softmc/fault_injector.hpp"
#include "softmc/trace_dump.hpp"
#include "softmc/trace_replayer.hpp"

namespace vppstudy::server {

using common::CancelToken;
using common::Error;
using common::ErrorCode;

namespace {

/// Reconstruct the tREFW window grid RetentionTest::test_row probes: a pure
/// function of the config (doubling from min to max), needed to rebuild a
/// full retention row from a cached BER vector.
std::vector<double> retention_windows(const core::SweepConfig& cfg) {
  std::vector<double> windows;
  for (double t = cfg.retention.min_trefw_ms; t <= cfg.retention.max_trefw_ms;
       t *= 2.0) {
    windows.push_back(t);
  }
  return windows;
}

/// The daemon's ResultCache adapted to the engine's CellStore interface.
/// Keys fold every axis coordinate of the (normalized) grid point
/// (ResultCache::point_key), so a 65C cell can never alias the 50C default
/// cell. Request-level hit/miss accounting lands in `stats`.
class CacheStore final : public core::CellStore {
 public:
  CacheStore(ResultCache& cache, std::uint64_t digest,
             std::vector<double> windows, RequestStats& stats)
      : cache_(cache),
        digest_(digest),
        windows_(std::move(windows)),
        stats_(stats) {}

  bool lookup_wcdp(const dram::ModuleProfile& profile,
                   std::vector<dram::DataPattern>* out) override {
    return cache_.lookup_wcdp(ResultCache::wcdp_key(digest_, profile.seed),
                              out);
  }
  void store_wcdp(const dram::ModuleProfile& profile,
                  const std::vector<dram::DataPattern>& wcdp) override {
    cache_.insert_wcdp(ResultCache::wcdp_key(digest_, profile.seed), wcdp);
  }

  bool lookup_hammer(const dram::ModuleProfile& profile,
                     const core::AxisPoint& point, std::uint32_t row,
                     harness::RowHammerRowResult* out) override {
    CellValue cell;
    if (!fetch(core::JobPhase::kRowHammer, profile, point, row, &cell)) {
      return false;
    }
    out->row = row;
    out->wcdp = cell.wcdp;
    out->hc_first = cell.hc_first;
    out->ber = cell.ber;
    return true;
  }
  void store_hammer(const dram::ModuleProfile& profile,
                    const core::AxisPoint& point,
                    const harness::RowHammerRowResult& row) override {
    CellValue value;
    value.wcdp = row.wcdp;
    value.hc_first = row.hc_first;
    value.ber = row.ber;
    cache_.insert(ResultCache::point_key(digest_, core::JobPhase::kRowHammer,
                                         profile.seed, point, row.row),
                  std::move(value));
  }

  bool lookup_trcd(const dram::ModuleProfile& profile,
                   const core::AxisPoint& point, std::uint32_t row,
                   harness::TrcdRowResult* out) override {
    CellValue cell;
    if (!fetch(core::JobPhase::kTrcd, profile, point, row, &cell)) {
      return false;
    }
    out->row = row;
    out->wcdp = cell.wcdp;
    out->trcd_min_ns = cell.trcd_min_ns;
    return true;
  }
  void store_trcd(const dram::ModuleProfile& profile,
                  const core::AxisPoint& point,
                  const harness::TrcdRowResult& row) override {
    CellValue value;
    value.wcdp = row.wcdp;
    value.trcd_min_ns = row.trcd_min_ns;
    cache_.insert(ResultCache::point_key(digest_, core::JobPhase::kTrcd,
                                         profile.seed, point, row.row),
                  std::move(value));
  }

  bool lookup_retention(const dram::ModuleProfile& profile,
                        const core::AxisPoint& point, std::uint32_t row,
                        harness::RetentionRowResult* out) override {
    CellValue cell;
    if (!fetch(core::JobPhase::kRetention, profile, point, row, &cell)) {
      return false;
    }
    out->row = row;
    out->wcdp = cell.wcdp;
    out->trefw_ms = windows_;
    out->ber = std::move(cell.retention_ber);
    return true;
  }
  void store_retention(const dram::ModuleProfile& profile,
                       const core::AxisPoint& point,
                       const harness::RetentionRowResult& row) override {
    CellValue value;
    value.wcdp = row.wcdp;
    value.retention_ber = row.ber;
    cache_.insert(ResultCache::point_key(digest_, core::JobPhase::kRetention,
                                         profile.seed, point, row.row),
                  std::move(value));
  }

 private:
  bool fetch(core::JobPhase phase, const dram::ModuleProfile& profile,
             const core::AxisPoint& point, std::uint32_t row,
             CellValue* cell) {
    if (!cache_.lookup(
            ResultCache::point_key(digest_, phase, profile.seed, point, row),
            cell)) {
      ++stats_.cache_misses;
      return false;
    }
    ++stats_.cache_hits;
    return true;
  }

  ResultCache& cache_;
  std::uint64_t digest_;
  std::vector<double> windows_;
  RequestStats& stats_;
};

std::string manifest_path_for(const std::string& dir, core::JobPhase phase,
                              std::uint64_t plan_hash) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(plan_hash));
  return dir + "/campaign-" + std::string(core::campaign_phase_name(phase)) +
         "-" + hex + ".json";
}

}  // namespace

Service::Service(Config config)
    : config_(std::move(config)),
      cache_(config_.cache_max_cells),
      arenas_(std::max(1u, common::ThreadPool::workers_for_jobs(config_.jobs))),
      pool_(static_cast<unsigned>(arenas_.size() - 1)) {
  // A fresh --manifest-dir must not fail every checkpoint write with
  // kIoError; EEXIST (or a race with another daemon) is fine.
  if (!config_.manifest_dir.empty()) {
    ::mkdir(config_.manifest_dir.c_str(), 0755);
  }
}

common::Result<std::shared_ptr<CampaignCoordinator>> Service::open_campaign(
    const core::CampaignManifest& spec) {
  VPP_ASSIGN_OR_RETURN(core::CampaignPlan plan,
                       core::plan_from_manifest(spec));
  const std::uint64_t hash = plan.digest(spec.phase);
  if (spec.plan_hash != hash) {
    return Error{ErrorCode::kInvalidArgument,
                 "campaign spec does not hash to its declared plan hash"};
  }
  {
    // Idempotent re-open: a second campaign_open for the same plan joins
    // the existing coordinator (two clients may race to open one campaign).
    std::lock_guard lock(campaigns_mu_);
    const auto it = campaigns_.find(hash);
    if (it != campaigns_.end()) return it->second;
  }
  std::string manifest_path;
  if (!config_.manifest_dir.empty()) {
    manifest_path = manifest_path_for(config_.manifest_dir, spec.phase, hash);
  }
  auto opened = CampaignCoordinator::open(std::move(plan), spec.phase,
                                          std::move(manifest_path));
  if (!opened) return std::move(opened).error();
  std::shared_ptr<CampaignCoordinator> coordinator = std::move(*opened);
  std::lock_guard lock(campaigns_mu_);
  const auto [it, inserted] = campaigns_.emplace(hash, coordinator);
  return inserted ? coordinator : it->second;  // lost the race: join theirs
}

void Service::adopt_campaign(std::shared_ptr<CampaignCoordinator> coordinator) {
  std::lock_guard lock(campaigns_mu_);
  campaigns_.insert_or_assign(coordinator->plan_hash(),
                              std::move(coordinator));
}

common::Result<std::shared_ptr<CampaignCoordinator>> Service::find_campaign(
    std::uint64_t plan_hash) {
  std::lock_guard lock(campaigns_mu_);
  if (plan_hash != 0) {
    const auto it = campaigns_.find(plan_hash);
    if (it == campaigns_.end()) {
      return Error{ErrorCode::kInvalidArgument,
                   "no open campaign with plan hash " +
                       core::u64_hex(plan_hash) +
                       " (send campaign_open first)"};
    }
    return it->second;
  }
  if (campaigns_.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "no campaign is open on this daemon"};
  }
  if (campaigns_.size() > 1) {
    return Error{ErrorCode::kInvalidArgument,
                 "several campaigns are open; address one by plan_hash"};
  }
  return campaigns_.begin()->second;
}

common::Result<Service::Outcome> Service::sweep(const SweepRequest& request,
                                                const CancelToken& cancel) {
  const auto profile = chips::profile_by_name(request.module);
  if (!profile) {
    return Error{ErrorCode::kInvalidArgument,
                 "unknown module '" + request.module + "'"};
  }
  const core::SweepConfig cfg = sweep_config_from_request(request);
  const std::uint64_t digest = ResultCache::config_digest(cfg, request.seed);
  const core::JobPhase phase = request.test == "trcd"
                                   ? core::JobPhase::kTrcd
                                   : request.test == "retention"
                                         ? core::JobPhase::kRetention
                                         : core::JobPhase::kRowHammer;

  core::CampaignPlan plan;
  plan.sweep = cfg;
  plan.axes.temperatures_c = request.temps;
  plan.axes.patterns = request.patterns;
  plan.modules.push_back(*profile);
  plan.seed = request.seed;
  plan.rows_per_shard = config_.rows_per_shard;
  plan.cancel = cancel;
  if (!config_.manifest_dir.empty()) {
    plan.manifest_path =
        manifest_path_for(config_.manifest_dir, phase, plan.digest(phase));
  }
  // The request's presence of an axis selects the result kind: a bare sweep
  // answers with the legacy per-test document (byte-identical to the
  // pre-engine daemon), an axis sweep answers with the "*_grid" kind.
  const bool multi_axis = !plan.axes.vpp_only();

  Outcome out;
  CacheStore store(cache_, digest, retention_windows(cfg), out.stats);
  core::CampaignEngine engine(std::move(plan), &store,
                              {.arenas = &arenas_, .pool = &pool_});

  switch (phase) {
    case core::JobPhase::kTrcd: {
      VPP_ASSIGN_OR_RETURN(const std::vector<core::TrcdGrid> grids,
                           engine.run_trcd());
      out.result_json = multi_axis
                            ? core::grid_json(grids.front()).str()
                            : trcd_sweep_to_json(grids.front().to_sweep());
      return out;
    }
    case core::JobPhase::kRetention: {
      VPP_ASSIGN_OR_RETURN(const std::vector<core::RetentionGrid> grids,
                           engine.run_retention());
      out.result_json =
          multi_axis ? core::grid_json(grids.front()).str()
                     : retention_sweep_to_json(grids.front().to_sweep());
      return out;
    }
    default: {
      VPP_ASSIGN_OR_RETURN(const std::vector<core::HammerGrid> grids,
                           engine.run_hammer());
      out.result_json = multi_axis
                            ? core::grid_json(grids.front()).str()
                            : hammer_sweep_to_json(grids.front().to_sweep());
      return out;
    }
  }
}

common::Result<Service::Outcome> Service::inject(const InjectRequest& request,
                                                 const CancelToken& cancel) {
  if (cancel.cancelled()) {
    return Error{ErrorCode::kCancelled, "inject cancelled before start"};
  }
  auto plan = softmc::FaultPlan::parse(request.faults);
  if (!plan) return std::move(plan).error();

  // Mirrors vppctl inject's config construction field for field, so a
  // remote campaign is the same campaign the CLI would run locally.
  core::ResilientConfig config;
  config.faults = std::move(*plan);
  config.seed = request.seed;
  config.retry.max_attempts = request.retries;
  config.trace_capacity = static_cast<std::size_t>(request.trace_cap);
  config.sweep = core::SweepConfig::quick();
  config.sweep.sampling.chunks = 2;
  config.sweep.sampling.rows_per_chunk = std::max(1u, request.rows / 2);
  for (const std::string& name : request.modules) {
    auto profile = chips::profile_by_name(name);
    if (!profile) {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown module '" + name + "'"};
    }
    profile->rows_per_bank = 4096;
    config.modules.push_back(std::move(*profile));
  }

  const core::CampaignResult campaign = core::run_resilient_rowhammer(config);
  Outcome out;
  out.result_json = campaign_result_to_json(campaign);
  return out;
}

common::Result<Service::Outcome> Service::replay(const std::string& dump_json,
                                                 const CancelToken& cancel) {
  if (cancel.cancelled()) {
    return Error{ErrorCode::kCancelled, "replay cancelled before start"};
  }
  auto doc = common::parse_json(dump_json);
  if (!doc) return std::move(doc).error();
  auto dump = softmc::parse_trace_dump(*doc);
  if (!dump) return std::move(dump).error();
  const auto profile = chips::profile_by_name(dump->module);
  if (!profile) {
    return Error{ErrorCode::kInvalidArgument,
                 "dump names unknown module '" + dump->module + "'"};
  }
  const std::size_t entries = dump->entries.size();
  softmc::TraceReplayer replayer(std::move(*dump));
  auto report = replayer.replay_on_profile(*profile);
  if (!report) return std::move(report).error();

  common::JsonWriter w;
  w.begin_object()
      .kv("kind", "replay")
      .kv("module", profile->name)
      .kv("entries", static_cast<std::uint64_t>(entries))
      .kv("commands_replayed", report->commands_replayed)
      .kv("timing_violations",
          static_cast<std::uint64_t>(report->timing_violations))
      .kv("original_failed", report->original_failed)
      .kv("replay_failed", report->replay_failed)
      .kv("reproduced", report->reproduced())
      .end_object();
  Outcome out;
  out.result_json = w.str();
  return out;
}

}  // namespace vppstudy::server
