#include "server/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace vppstudy::server {

using common::Error;
using common::ErrorCode;
using common::JsonValue;
using common::JsonWriter;

common::Status write_frame(const common::Socket& socket,
                           std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Error{ErrorCode::kFrameTooLarge,
                 "outgoing frame of " + std::to_string(payload.size()) +
                     " bytes exceeds cap"};
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>((len >> 24) & 0xFF),
      static_cast<unsigned char>((len >> 16) & 0xFF),
      static_cast<unsigned char>((len >> 8) & 0xFF),
      static_cast<unsigned char>(len & 0xFF),
  };
  if (auto st = socket.send_all(prefix, sizeof(prefix)); !st.ok()) return st;
  return socket.send_all(payload.data(), payload.size());
}

common::Result<bool> read_frame(const common::Socket& socket,
                                std::string& payload) {
  unsigned char prefix[4];
  bool clean_eof = false;
  if (auto st = socket.recv_exact(prefix, sizeof(prefix), &clean_eof);
      !st.ok()) {
    return std::move(st).error().with_context("frame length prefix");
  }
  if (clean_eof) return false;
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > kMaxFrameBytes) {
    return Error{ErrorCode::kFrameTooLarge,
                 "frame declares " + std::to_string(len) +
                     " bytes (cap " + std::to_string(kMaxFrameBytes) + ")"};
  }
  payload.resize(len);
  if (len > 0) {
    if (auto st = socket.recv_exact(payload.data(), len); !st.ok()) {
      return std::move(st).error().with_context("frame payload");
    }
  }
  return true;
}

core::SweepConfig sweep_config_from_request(const SweepRequest& request) {
  core::SweepConfig cfg = core::SweepConfig::quick();
  cfg.vpp_levels.clear();
  const double step = request.step > 0.0 ? request.step : 0.2;
  for (double v = 2.5; v >= 1.4 - 1e-9; v -= step) {
    // Quantize to the rig supply's mV grid: the cache keys cells by
    // millivolt, so the physics must see the exact double the key names
    // regardless of how the level was computed.
    cfg.vpp_levels.push_back(
        static_cast<double>(std::llround(v * 1000.0)) / 1000.0);
  }
  cfg.sampling.chunks = 4;
  cfg.sampling.rows_per_chunk = std::max(1u, request.rows / 4);
  return cfg;
}

// --- Request encoding --------------------------------------------------------

namespace {

JsonWriter request_header(std::uint64_t id, std::string_view type) {
  JsonWriter w;
  w.begin_object().kv("id", id).kv("type", type);
  return w;
}

std::string close_object(JsonWriter&& w) {
  w.end_object();
  return w.str();
}

}  // namespace

std::string encode_ping_request(std::uint64_t id) {
  return close_object(request_header(id, "ping"));
}

std::string encode_stats_request(std::uint64_t id) {
  return close_object(request_header(id, "stats"));
}

std::string encode_shutdown_request(std::uint64_t id) {
  return close_object(request_header(id, "shutdown"));
}

std::string encode_cancel_request(std::uint64_t id, std::uint64_t target) {
  JsonWriter w = request_header(id, "cancel");
  w.kv("target", target);
  return close_object(std::move(w));
}

std::string encode_sweep_request(std::uint64_t id,
                                 const SweepRequest& request) {
  JsonWriter w = request_header(id, "sweep");
  w.kv("module", request.module)
      .kv("test", request.test)
      .kv("rows", static_cast<std::uint64_t>(request.rows))
      .kv("step", request.step)
      .kv("seed", request.seed);
  if (!request.temps.empty()) {
    w.key("temps").begin_array();
    for (const double t : request.temps) w.value(t);
    w.end_array();
  }
  if (!request.patterns.empty()) {
    w.key("patterns").begin_array();
    for (const harness::PatternSpec& spec : request.patterns) {
      harness::pattern_spec_json(w, spec);
    }
    w.end_array();
  }
  return close_object(std::move(w));
}

std::string encode_inject_request(std::uint64_t id,
                                  const InjectRequest& request) {
  JsonWriter w = request_header(id, "inject");
  w.kv("faults", request.faults);
  w.key("modules").begin_array();
  for (const auto& m : request.modules) w.value(m);
  w.end_array();
  w.kv("rows", static_cast<std::uint64_t>(request.rows))
      .kv("retries", static_cast<std::uint64_t>(request.retries))
      .kv("seed", request.seed)
      .kv("trace_cap", request.trace_cap);
  return close_object(std::move(w));
}

std::string encode_replay_request(std::uint64_t id,
                                  const std::string& dump_json) {
  JsonWriter w = request_header(id, "replay");
  w.kv("dump", dump_json);
  return close_object(std::move(w));
}

// --- Request decoding --------------------------------------------------------

common::Result<SweepRequest> parse_sweep_request(const JsonValue& body) {
  SweepRequest request;
  request.module = body.string_or("module", request.module);
  request.test = body.string_or("test", request.test);
  request.rows = static_cast<std::uint32_t>(
      body.uint_or("rows", request.rows));
  request.step = body.number_or("step", request.step);
  request.seed = body.uint_or("seed", request.seed);
  if (request.test != "rowhammer" && request.test != "trcd" &&
      request.test != "retention") {
    return Error{ErrorCode::kInvalidArgument,
                 "unknown sweep test '" + request.test + "'"};
  }
  if (request.rows == 0 || request.rows > 65536) {
    return Error{ErrorCode::kInvalidArgument,
                 "rows must be in [1, 65536], got " +
                     std::to_string(request.rows)};
  }
  if (!(request.step >= 0.01 && request.step <= 1.2)) {
    return Error{ErrorCode::kInvalidArgument, "step must be in [0.01, 1.2]"};
  }
  if (const JsonValue* temps = body.find("temps");
      temps != nullptr && temps->is_array()) {
    for (const auto& t : temps->items()) {
      if (!t.is_number()) {
        return Error{ErrorCode::kInvalidArgument,
                     "temps entries must be numbers"};
      }
      const double temp_c = t.as_number();
      if (!(temp_c >= -40.0 && temp_c <= 120.0)) {
        return Error{ErrorCode::kInvalidArgument,
                     "temps entries must be in [-40, 120] C"};
      }
      request.temps.push_back(temp_c);
    }
  }
  if (const JsonValue* patterns = body.find("patterns");
      patterns != nullptr && patterns->is_array()) {
    if (request.test != "rowhammer") {
      return Error{ErrorCode::kInvalidArgument,
                   "the pattern axis applies to rowhammer sweeps only"};
    }
    for (const auto& item : patterns->items()) {
      VPP_ASSIGN_OR_RETURN(harness::PatternSpec spec,
                           harness::parse_pattern_spec(item));
      VPP_RETURN_IF_ERROR(spec.validate());
      request.patterns.push_back(std::move(spec));
    }
  }
  return request;
}

common::Result<InjectRequest> parse_inject_request(const JsonValue& body) {
  InjectRequest request;
  request.faults = body.string_or("faults", request.faults);
  if (const JsonValue* modules = body.find("modules");
      modules != nullptr && modules->is_array()) {
    request.modules.clear();
    for (const auto& m : modules->items()) {
      if (!m.is_string()) {
        return Error{ErrorCode::kInvalidArgument,
                     "inject modules must be strings"};
      }
      request.modules.push_back(m.as_string());
    }
  }
  if (request.modules.empty()) {
    return Error{ErrorCode::kInvalidArgument, "inject needs >= 1 module"};
  }
  request.rows = static_cast<std::uint32_t>(body.uint_or("rows", request.rows));
  request.retries =
      static_cast<std::uint32_t>(body.uint_or("retries", request.retries));
  request.seed = body.uint_or("seed", request.seed);
  request.trace_cap = body.uint_or("trace_cap", request.trace_cap);
  if (request.rows == 0 || request.rows > 65536) {
    return Error{ErrorCode::kInvalidArgument, "rows must be in [1, 65536]"};
  }
  return request;
}

// --- Campaign distribution ---------------------------------------------------

namespace {

/// Read a u64 wire field (hex string, core::u64_hex). Absent is fine when
/// !required (out keeps its default); present-but-malformed never is.
common::Status parse_hex_member(const JsonValue& body, std::string_view key,
                                bool required, std::uint64_t& out) {
  const JsonValue* v = body.find(key);
  if (v == nullptr) {
    if (!required) return common::Status::ok_status();
    return Error{ErrorCode::kInvalidArgument,
                 "missing required field '" + std::string(key) + "'"};
  }
  if (!v->is_string() || !core::parse_u64_hex(v->as_string(), out)) {
    return Error{ErrorCode::kInvalidArgument,
                 "field '" + std::string(key) + "' must be a hex string"};
  }
  return common::Status::ok_status();
}

common::Result<core::JobPhase> parse_phase_member(const JsonValue& body) {
  core::JobPhase phase = core::JobPhase::kRowHammer;
  const std::string name = body.string_or("phase", "");
  if (!core::campaign_phase_from_name(name, phase)) {
    return Error{ErrorCode::kInvalidArgument,
                 "unknown campaign phase '" + name + "'"};
  }
  return phase;
}

}  // namespace

std::string encode_campaign_open_request(std::uint64_t id,
                                         std::string_view manifest_json) {
  // The spec document is spliced as pre-rendered text, like result splicing:
  // the zero-shard manifest is the plan's canonical serialization and must
  // arrive byte-identical to what load_campaign_manifest would read.
  JsonWriter w = request_header(id, "campaign_open");
  std::string out = w.str();
  out += ",\"campaign\":";
  out += manifest_json;
  out += "}";
  return out;
}

std::string encode_lease_request(std::uint64_t id, const LeaseRequest& request) {
  JsonWriter w = request_header(id, "lease");
  w.kv("plan_hash", core::u64_hex(request.plan_hash))
      .kv("worker", request.worker)
      .kv("max_shards", request.max_shards)
      .kv("ttl_ms", request.ttl_ms)
      .kv("need_plan", request.need_plan);
  return close_object(std::move(w));
}

std::string encode_submit_request(std::uint64_t id,
                                  const SubmitRequest& request) {
  JsonWriter w = request_header(id, "submit");
  w.kv("plan_hash", core::u64_hex(request.plan_hash))
      .kv("phase", core::campaign_phase_name(request.phase))
      .kv("worker", request.worker)
      .kv("token", core::u64_hex(request.token));
  w.key("wcdp").begin_array();
  for (const auto& record : request.wcdp) core::manifest_wcdp_json(w, record);
  w.end_array();
  w.key("shards").begin_array();
  for (const auto& shard : request.shards) {
    core::manifest_shard_json(w, shard, request.phase);
  }
  w.end_array();
  return close_object(std::move(w));
}

std::string encode_heartbeat_request(std::uint64_t id,
                                     const HeartbeatRequest& request) {
  JsonWriter w = request_header(id, "heartbeat");
  w.kv("plan_hash", core::u64_hex(request.plan_hash))
      .kv("token", core::u64_hex(request.token))
      .kv("ttl_ms", request.ttl_ms);
  return close_object(std::move(w));
}

common::Result<LeaseRequest> parse_lease_request(const JsonValue& body) {
  LeaseRequest request;
  if (auto st = parse_hex_member(body, "plan_hash", false, request.plan_hash);
      !st.ok()) {
    return std::move(st).error();
  }
  request.worker = body.string_or("worker", "");
  if (request.worker.empty()) {
    return Error{ErrorCode::kInvalidArgument, "lease needs a worker name"};
  }
  request.max_shards = body.uint_or("max_shards", request.max_shards);
  request.ttl_ms = static_cast<std::int64_t>(
      body.uint_or("ttl_ms", static_cast<std::uint64_t>(request.ttl_ms)));
  if (request.ttl_ms <= 0) {
    return Error{ErrorCode::kInvalidArgument, "ttl_ms must be positive"};
  }
  request.need_plan = body.bool_or("need_plan", false);
  return request;
}

common::Result<SubmitRequest> parse_submit_request(const JsonValue& body) {
  SubmitRequest request;
  if (auto st = parse_hex_member(body, "plan_hash", true, request.plan_hash);
      !st.ok()) {
    return std::move(st).error();
  }
  VPP_ASSIGN_OR_RETURN(request.phase, parse_phase_member(body));
  request.worker = body.string_or("worker", "");
  if (request.worker.empty()) {
    return Error{ErrorCode::kInvalidArgument, "submit needs a worker name"};
  }
  if (auto st = parse_hex_member(body, "token", true, request.token);
      !st.ok()) {
    return std::move(st).error();
  }
  if (request.token == 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "submit needs a nonzero fencing token"};
  }
  if (const JsonValue* wcdp = body.find("wcdp");
      wcdp != nullptr && wcdp->is_array()) {
    for (const auto& item : wcdp->items()) {
      VPP_ASSIGN_OR_RETURN(core::ManifestWcdp record,
                           core::parse_manifest_wcdp(item));
      request.wcdp.push_back(std::move(record));
    }
  }
  if (const JsonValue* shards = body.find("shards");
      shards != nullptr && shards->is_array()) {
    for (const auto& item : shards->items()) {
      VPP_ASSIGN_OR_RETURN(core::ManifestShard shard,
                           core::parse_manifest_shard(item, request.phase));
      request.shards.push_back(std::move(shard));
    }
  }
  return request;
}

common::Result<HeartbeatRequest> parse_heartbeat_request(const JsonValue& body) {
  HeartbeatRequest request;
  if (auto st = parse_hex_member(body, "plan_hash", false, request.plan_hash);
      !st.ok()) {
    return std::move(st).error();
  }
  if (auto st = parse_hex_member(body, "token", true, request.token);
      !st.ok()) {
    return std::move(st).error();
  }
  if (request.token == 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "heartbeat needs a nonzero fencing token"};
  }
  request.ttl_ms = static_cast<std::int64_t>(
      body.uint_or("ttl_ms", static_cast<std::uint64_t>(request.ttl_ms)));
  if (request.ttl_ms <= 0) {
    return Error{ErrorCode::kInvalidArgument, "ttl_ms must be positive"};
  }
  return request;
}

std::string encode_lease_result(const LeaseGrant& grant,
                                std::string_view campaign_json) {
  JsonWriter w;
  w.begin_object()
      .kv("kind", "lease")
      .kv("phase", core::campaign_phase_name(grant.phase))
      .kv("plan_hash", core::u64_hex(grant.plan_hash))
      .kv("token", core::u64_hex(grant.token));
  w.key("shards").begin_array();
  for (const std::uint64_t index : grant.shards) w.value(index);
  w.end_array();
  w.key("wcdp").begin_array();
  for (const auto& record : grant.wcdp) core::manifest_wcdp_json(w, record);
  w.end_array();
  w.kv("done", grant.done)
      .kv("remaining", grant.remaining)
      .kv("complete", grant.complete);
  if (campaign_json.empty()) {
    w.end_object();
    return w.str();
  }
  std::string out = w.str();
  out += ",\"campaign\":";
  out += campaign_json;
  out += "}";
  return out;
}

std::string encode_submit_result(const SubmitOutcome& outcome) {
  JsonWriter w;
  w.begin_object()
      .kv("kind", "submit")
      .kv("accepted", outcome.accepted)
      .kv("duplicates", outcome.duplicates)
      .kv("done", outcome.done)
      .kv("remaining", outcome.remaining)
      .kv("complete", outcome.complete)
      .end_object();
  return w.str();
}

std::string encode_heartbeat_result(std::uint64_t renewed, bool complete) {
  JsonWriter w;
  w.begin_object()
      .kv("kind", "heartbeat")
      .kv("renewed", renewed)
      .kv("complete", complete)
      .end_object();
  return w.str();
}

common::Result<LeaseGrant> parse_lease_result(const JsonValue& result) {
  LeaseGrant grant;
  VPP_ASSIGN_OR_RETURN(grant.phase, parse_phase_member(result));
  if (auto st = parse_hex_member(result, "plan_hash", true, grant.plan_hash);
      !st.ok()) {
    return std::move(st).error();
  }
  if (auto st = parse_hex_member(result, "token", true, grant.token);
      !st.ok()) {
    return std::move(st).error();
  }
  const JsonValue* shards = result.find("shards");
  if (shards == nullptr || !shards->is_array()) {
    return Error{ErrorCode::kParseError, "lease result without shards"};
  }
  for (const auto& v : shards->items()) {
    if (!v.is_number()) {
      return Error{ErrorCode::kParseError, "non-numeric shard index"};
    }
    grant.shards.push_back(static_cast<std::uint64_t>(v.as_number()));
  }
  if (const JsonValue* wcdp = result.find("wcdp");
      wcdp != nullptr && wcdp->is_array()) {
    for (const auto& item : wcdp->items()) {
      VPP_ASSIGN_OR_RETURN(core::ManifestWcdp record,
                           core::parse_manifest_wcdp(item));
      grant.wcdp.push_back(std::move(record));
    }
  }
  grant.done = result.uint_or("done", 0);
  grant.remaining = result.uint_or("remaining", 0);
  grant.complete = result.bool_or("complete", false);
  if (const JsonValue* campaign = result.find("campaign")) {
    VPP_ASSIGN_OR_RETURN(grant.campaign,
                         core::parse_campaign_manifest(*campaign));
    grant.has_campaign = true;
  }
  return grant;
}

common::Result<SubmitOutcome> parse_submit_result(const JsonValue& result) {
  SubmitOutcome outcome;
  outcome.accepted = result.uint_or("accepted", 0);
  outcome.duplicates = result.uint_or("duplicates", 0);
  outcome.done = result.uint_or("done", 0);
  outcome.remaining = result.uint_or("remaining", 0);
  outcome.complete = result.bool_or("complete", false);
  return outcome;
}

// --- Responses ---------------------------------------------------------------

std::string encode_result_response(std::uint64_t id,
                                   std::string_view result_json,
                                   const RequestStats& stats) {
  // The result is spliced in as pre-rendered text: re-encoding through a DOM
  // could reorder members or reformat doubles, and the byte-identity
  // contract covers exactly this substring.
  JsonWriter w;
  w.begin_object().kv("id", id).kv("ok", true);
  std::string out = w.str();
  out += ",\"result\":";
  out += result_json;
  JsonWriter stats_w;
  stats_w.begin_object()
      .kv("cache_hits", stats.cache_hits)
      .kv("cache_misses", stats.cache_misses)
      .end_object();
  out += ",\"stats\":";
  out += stats_w.str();
  out += "}";
  return out;
}

std::string encode_error_response(std::uint64_t id,
                                  const common::Error& error) {
  JsonWriter w;
  w.begin_object().kv("id", id).kv("ok", false);
  w.key("error").begin_object();
  w.kv("code", common::error_code_name(error.code));
  w.kv("message", error.message);
  if (!error.context.module.empty()) w.kv("module", error.context.module);
  w.end_object().end_object();
  return w.str();
}

common::Result<JsonValue> response_result(const JsonValue& response) {
  if (!response.is_object()) {
    return Error{ErrorCode::kParseError, "response is not an object"};
  }
  if (response.bool_or("ok", false)) {
    const JsonValue* result = response.find("result");
    if (result == nullptr) {
      return Error{ErrorCode::kParseError, "ok response without result"};
    }
    return *result;
  }
  const JsonValue* error = response.find("error");
  if (error == nullptr) {
    return Error{ErrorCode::kParseError, "error response without error"};
  }
  Error out{common::error_code_from_name(error->string_or("code", "kUnknown")),
            error->string_or("message", "(no message)")};
  out.context.module = error->string_or("module", "");
  return out;
}

// --- Result serialization ----------------------------------------------------

namespace {

void write_double_array(JsonWriter& w, std::string_view key,
                        const std::vector<double>& values) {
  w.key(key).begin_array();
  for (const double v : values) w.value(v);
  w.end_array();
}

common::Result<std::vector<double>> read_double_array(const JsonValue& doc,
                                                      std::string_view key) {
  const JsonValue* arr = doc.find(key);
  if (arr == nullptr || !arr->is_array()) {
    return Error{ErrorCode::kParseError,
                 "missing array '" + std::string(key) + "'"};
  }
  std::vector<double> out;
  out.reserve(arr->items().size());
  for (const auto& v : arr->items()) {
    if (!v.is_number()) {
      return Error{ErrorCode::kParseError,
                   "non-numeric entry in '" + std::string(key) + "'"};
    }
    out.push_back(v.as_number());
  }
  return out;
}

}  // namespace

std::string hammer_sweep_to_json(const core::ModuleSweepResult& sweep) {
  JsonWriter w;
  w.begin_object()
      .kv("kind", "rowhammer")
      .kv("module", sweep.module_name)
      .kv("mfr", static_cast<std::uint64_t>(sweep.mfr))
      .kv("vppmin_v", sweep.vppmin_v);
  write_double_array(w, "vpp_levels", sweep.vpp_levels);
  w.key("rows").begin_array();
  for (const auto& row : sweep.rows) {
    w.begin_object()
        .kv("row", static_cast<std::uint64_t>(row.row))
        .kv("wcdp", static_cast<std::uint64_t>(row.wcdp));
    w.key("hc_first").begin_array();
    for (const std::uint64_t hc : row.hc_first) w.value(hc);
    w.end_array();
    write_double_array(w, "ber", row.ber);
    w.end_object();
  }
  w.end_array().end_object();
  return w.str();
}

common::Result<core::ModuleSweepResult> hammer_sweep_from_json(
    const JsonValue& doc) {
  core::ModuleSweepResult sweep;
  sweep.module_name = doc.string_or("module", "");
  sweep.mfr = static_cast<dram::Manufacturer>(doc.uint_or("mfr", 0));
  sweep.vppmin_v = doc.number_or("vppmin_v", 0.0);
  auto levels = read_double_array(doc, "vpp_levels");
  if (!levels) return std::move(levels).error();
  sweep.vpp_levels = std::move(*levels);
  const JsonValue* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return Error{ErrorCode::kParseError, "rowhammer result without rows"};
  }
  for (const auto& row_doc : rows->items()) {
    core::RowSeries series;
    series.row = static_cast<std::uint32_t>(row_doc.uint_or("row", 0));
    series.wcdp = static_cast<dram::DataPattern>(row_doc.uint_or("wcdp", 0));
    const JsonValue* hc = row_doc.find("hc_first");
    if (hc == nullptr || !hc->is_array()) {
      return Error{ErrorCode::kParseError, "row without hc_first"};
    }
    for (const auto& v : hc->items()) {
      series.hc_first.push_back(static_cast<std::uint64_t>(v.as_number()));
    }
    auto ber = read_double_array(row_doc, "ber");
    if (!ber) return std::move(ber).error();
    series.ber = std::move(*ber);
    sweep.rows.push_back(std::move(series));
  }
  return sweep;
}

std::string trcd_sweep_to_json(const core::TrcdSweepResult& sweep) {
  JsonWriter w;
  w.begin_object()
      .kv("kind", "trcd")
      .kv("module", sweep.module_name)
      .kv("vppmin_v", sweep.vppmin_v);
  write_double_array(w, "vpp_levels", sweep.vpp_levels);
  write_double_array(w, "trcd_min_ns", sweep.trcd_min_ns);
  w.end_object();
  return w.str();
}

common::Result<core::TrcdSweepResult> trcd_sweep_from_json(
    const JsonValue& doc) {
  core::TrcdSweepResult sweep;
  sweep.module_name = doc.string_or("module", "");
  sweep.vppmin_v = doc.number_or("vppmin_v", 0.0);
  auto levels = read_double_array(doc, "vpp_levels");
  if (!levels) return std::move(levels).error();
  sweep.vpp_levels = std::move(*levels);
  auto trcd = read_double_array(doc, "trcd_min_ns");
  if (!trcd) return std::move(trcd).error();
  sweep.trcd_min_ns = std::move(*trcd);
  return sweep;
}

std::string retention_sweep_to_json(const core::RetentionSweepResult& sweep) {
  JsonWriter w;
  w.begin_object()
      .kv("kind", "retention")
      .kv("module", sweep.module_name)
      .kv("mfr", static_cast<std::uint64_t>(sweep.mfr))
      .kv("reference_trefw_ms", sweep.reference_trefw_ms);
  write_double_array(w, "vpp_levels", sweep.vpp_levels);
  write_double_array(w, "trefw_ms", sweep.trefw_ms);
  w.key("mean_ber").begin_array();
  for (const auto& level : sweep.mean_ber) {
    w.begin_array();
    for (const double v : level) w.value(v);
    w.end_array();
  }
  w.end_array();
  w.key("row_ber_at_reference").begin_array();
  for (const auto& level : sweep.row_ber_at_reference) {
    w.begin_array();
    for (const double v : level) w.value(v);
    w.end_array();
  }
  w.end_array().end_object();
  return w.str();
}

common::Result<core::RetentionSweepResult> retention_sweep_from_json(
    const JsonValue& doc) {
  core::RetentionSweepResult sweep;
  sweep.module_name = doc.string_or("module", "");
  sweep.mfr = static_cast<dram::Manufacturer>(doc.uint_or("mfr", 0));
  sweep.reference_trefw_ms =
      doc.number_or("reference_trefw_ms", sweep.reference_trefw_ms);
  auto levels = read_double_array(doc, "vpp_levels");
  if (!levels) return std::move(levels).error();
  sweep.vpp_levels = std::move(*levels);
  auto trefw = read_double_array(doc, "trefw_ms");
  if (!trefw) return std::move(trefw).error();
  sweep.trefw_ms = std::move(*trefw);
  const auto read_matrix =
      [&doc](std::string_view key)
      -> common::Result<std::vector<std::vector<double>>> {
    const JsonValue* arr = doc.find(key);
    if (arr == nullptr || !arr->is_array()) {
      return Error{ErrorCode::kParseError,
                   "missing matrix '" + std::string(key) + "'"};
    }
    std::vector<std::vector<double>> out;
    for (const auto& level : arr->items()) {
      if (!level.is_array()) {
        return Error{ErrorCode::kParseError,
                     "non-array row in '" + std::string(key) + "'"};
      }
      std::vector<double> vals;
      vals.reserve(level.items().size());
      for (const auto& v : level.items()) vals.push_back(v.as_number());
      out.push_back(std::move(vals));
    }
    return out;
  };
  auto mean = read_matrix("mean_ber");
  if (!mean) return std::move(mean).error();
  sweep.mean_ber = std::move(*mean);
  auto ref = read_matrix("row_ber_at_reference");
  if (!ref) return std::move(ref).error();
  sweep.row_ber_at_reference = std::move(*ref);
  return sweep;
}

std::string campaign_result_to_json(const core::CampaignResult& campaign) {
  JsonWriter w;
  w.begin_object().kv("kind", "campaign");
  w.key("modules").begin_array();
  for (const auto& m : campaign.modules) {
    w.begin_object()
        .kv("module", m.module_name)
        .kv("completed", m.completed)
        .kv("attempts", static_cast<std::uint64_t>(m.attempts))
        .kv("injected", m.injections.total());
    if (!m.completed) {
      w.kv("error_code", common::error_code_name(m.error_code));
      w.kv("error", m.error_message);
    }
    w.end_object();
  }
  w.end_array();
  w.kv("completed",
       static_cast<std::uint64_t>(campaign.completed_count()))
      .kv("hc_first_cv", campaign.hc_first_cv())
      .end_object();
  return w.str();
}

}  // namespace vppstudy::server
