#include "server/server.hpp"

#include <cstdio>
#include <string_view>
#include <utility>

#include "common/json.hpp"
#include "server/protocol.hpp"

namespace vppstudy::server {

using common::Error;
using common::ErrorCode;

common::Result<std::unique_ptr<Server>> Server::start(Config config) {
  auto listener = common::ServerSocket::listen_loopback(config.port);
  if (!listener) return std::move(listener).error();
  // make_unique needs a public constructor; new keeps it private.
  std::unique_ptr<Server> server(
      new Server(std::move(config), std::move(*listener)));
  server->accept_thread_ = std::thread([s = server.get()] { s->accept_loop(); });
  return server;
}

Server::Server(Config config, common::ServerSocket listener)
    : config_(config),
      listener_(std::move(listener)),
      port_(listener_.port()),
      service_(config.service),
      queue_(config.queue) {}

Server::~Server() { stop(); }

void Server::wait() {
  std::unique_lock lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::request_shutdown() {
  std::lock_guard lock(mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void Server::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
  // Order matters: silence the listener first (no new connections), then
  // drain the job queue (in-flight jobs see tripped tokens and still write
  // their kCancelled responses), then unblock and join the readers.
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_.shutdown();
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> conns;
  {
    std::lock_guard lock(mu_);
    conns.swap(connections_);
  }
  for (auto& [conn, thread] : conns) {
    conn->socket.shutdown_both();
    if (thread.joinable()) thread.join();
  }
}

void Server::accept_loop() {
  for (;;) {
    auto socket = listener_.accept();
    if (!socket) return;  // listener shut down
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(*socket);
    {
      std::lock_guard lock(mu_);
      if (stopped_ || shutdown_requested_) return;
      conn->id = next_client_id_++;
      connections_.emplace_back(
          conn, std::thread([this, conn] { handle_connection(conn); }));
    }
  }
}

void Server::handle_connection(const std::shared_ptr<Connection>& conn) {
  std::string payload;
  for (;;) {
    auto more = read_frame(conn->socket, payload);
    if (!more) {
      // kFrameTooLarge still earns a typed response -- the frame was
      // refused before any payload allocation -- but the stream cannot be
      // resynced afterwards, so the connection closes.
      if (more.error().code == ErrorCode::kFrameTooLarge) {
        send_frame(*conn, encode_error_response(0, more.error()));
      }
      break;
    }
    if (!*more) break;  // clean close at a frame boundary
    if (!handle_frame(conn, payload)) break;
  }
  // The reader is gone: nobody will read this client's responses, so its
  // in-flight jobs only waste workers -- cancel them. And actually close the
  // stream: the Connection object outlives this thread (connections_ holds
  // it until stop()), so without the shutdown a peer waiting on the
  // documented close-after-kFrameTooLarge would block forever.
  queue_.cancel_client(conn->id);
  conn->socket.shutdown_both();
}

bool Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const std::string& payload) {
  auto doc = common::parse_json(payload);
  if (!doc) {
    // No id could be decoded; id 0 is the protocol's "unattributable".
    send_frame(*conn, encode_error_response(0, doc.error()));
    return true;
  }
  if (!doc->is_object()) {
    send_frame(*conn,
               encode_error_response(
                   0, Error{ErrorCode::kParseError,
                            "request must be a JSON object"}));
    return true;
  }
  const std::uint64_t id = doc->uint_or("id", 0);
  const std::string type = doc->string_or("type", "");

  if (type == "ping") {
    send_frame(*conn,
               encode_result_response(id, "{\"kind\":\"pong\"}", {}));
    return true;
  }
  if (type == "stats") {
    const ResultCache::Stats cache = service_.cache_stats();
    const JobQueue::Stats jobs = queue_.stats();
    common::JsonWriter w;
    w.begin_object().kv("kind", "stats");
    w.key("cache")
        .begin_object()
        .kv("hits", cache.hits)
        .kv("misses", cache.misses)
        .kv("cells", cache.cells)
        .kv("wcdp_preps", cache.wcdp_preps)
        .kv("evictions", cache.evictions)
        .kv("max_cells", cache.max_cells)
        .end_object();
    w.key("queue")
        .begin_object()
        .kv("submitted", jobs.submitted)
        .kv("completed", jobs.completed)
        .kv("rejected_full", jobs.rejected_full)
        .kv("rejected_quota", jobs.rejected_quota)
        .kv("cancel_requests", jobs.cancel_requests)
        .kv("pending", jobs.pending)
        .kv("running", jobs.running)
        .end_object();
    w.end_object();
    send_frame(*conn, encode_result_response(id, w.str(), {}));
    return true;
  }
  if (type == "cancel") {
    const std::uint64_t target = doc->uint_or("target", 0);
    const bool found = queue_.cancel(conn->id, target);
    common::JsonWriter w;
    w.begin_object().kv("kind", "cancel").kv("found", found).end_object();
    send_frame(*conn, encode_result_response(id, w.str(), {}));
    return true;
  }
  // Campaign distribution verbs are answered inline on the reader thread,
  // like stats/cancel: the coordinator's merge is bookkeeping, not compute
  // -- the expensive part (shard execution) happens on the *workers*.
  if (type == "campaign_open") {
    const common::JsonValue* spec_doc = doc->find("campaign");
    if (spec_doc == nullptr || !spec_doc->is_object()) {
      send_frame(*conn, encode_error_response(
                            id, Error{ErrorCode::kInvalidArgument,
                                      "campaign_open needs a campaign spec "
                                      "object"}));
      return true;
    }
    auto spec = core::parse_campaign_manifest(*spec_doc);
    if (!spec) {
      send_frame(*conn, encode_error_response(id, spec.error()));
      return true;
    }
    auto coordinator = service_.open_campaign(*spec);
    if (!coordinator) {
      send_frame(*conn, encode_error_response(id, coordinator.error()));
      return true;
    }
    const CampaignCoordinator::Status status = (*coordinator)->status();
    common::JsonWriter w;
    w.begin_object()
        .kv("kind", "campaign")
        .kv("phase", core::campaign_phase_name(status.phase))
        .kv("plan_hash", core::u64_hex(status.plan_hash))
        .kv("planned_shards", status.planned)
        .kv("done", status.done)
        .kv("remaining", status.planned - status.done)
        .kv("complete", status.complete)
        .end_object();
    send_frame(*conn, encode_result_response(id, w.str(), {}));
    return true;
  }
  if (type == "lease") {
    auto request = parse_lease_request(*doc);
    if (!request) {
      send_frame(*conn, encode_error_response(id, request.error()));
      return true;
    }
    auto coordinator = service_.find_campaign(request->plan_hash);
    if (!coordinator) {
      send_frame(*conn, encode_error_response(id, coordinator.error()));
      return true;
    }
    auto grant = (*coordinator)
                     ->lease(request->worker, request->max_shards,
                             request->ttl_ms, steady_now_ms());
    if (!grant) {
      send_frame(*conn, encode_error_response(id, grant.error()));
      return true;
    }
    const std::string_view spec_json =
        request->need_plan
            ? std::string_view((*coordinator)->campaign_spec_json())
            : std::string_view();
    send_frame(*conn, encode_result_response(
                          id, encode_lease_result(*grant, spec_json), {}));
    return true;
  }
  if (type == "submit") {
    auto request = parse_submit_request(*doc);
    if (!request) {
      send_frame(*conn, encode_error_response(id, request.error()));
      return true;
    }
    auto coordinator = service_.find_campaign(request->plan_hash);
    if (!coordinator) {
      send_frame(*conn, encode_error_response(id, coordinator.error()));
      return true;
    }
    auto outcome = (*coordinator)
                       ->submit(request->worker, request->token,
                                request->plan_hash, request->wcdp,
                                request->shards, steady_now_ms());
    if (!outcome) {
      send_frame(*conn, encode_error_response(id, outcome.error()));
      return true;
    }
    send_frame(*conn,
               encode_result_response(id, encode_submit_result(*outcome), {}));
    return true;
  }
  if (type == "heartbeat") {
    auto request = parse_heartbeat_request(*doc);
    if (!request) {
      send_frame(*conn, encode_error_response(id, request.error()));
      return true;
    }
    auto coordinator = service_.find_campaign(request->plan_hash);
    if (!coordinator) {
      send_frame(*conn, encode_error_response(id, coordinator.error()));
      return true;
    }
    auto renewed =
        (*coordinator)->heartbeat(request->token, request->ttl_ms,
                                  steady_now_ms());
    if (!renewed) {
      send_frame(*conn, encode_error_response(id, renewed.error()));
      return true;
    }
    send_frame(*conn, encode_result_response(
                          id,
                          encode_heartbeat_result(*renewed,
                                                  (*coordinator)->complete()),
                          {}));
    return true;
  }
  if (type == "shutdown") {
    send_frame(*conn,
               encode_result_response(id, "{\"kind\":\"shutdown\"}", {}));
    request_shutdown();
    return false;
  }
  if (type == "sweep") {
    auto request = parse_sweep_request(*doc);
    if (!request) {
      send_frame(*conn, encode_error_response(id, request.error()));
      return true;
    }
    auto admitted = queue_.submit(
        conn->id, id,
        [this, conn, id, request = std::move(*request)](
            const common::CancelToken& token) {
          auto outcome = service_.sweep(request, token);
          send_frame(*conn,
                     outcome ? encode_result_response(id, outcome->result_json,
                                                      outcome->stats)
                             : encode_error_response(id, outcome.error()));
        });
    if (!admitted.ok()) {
      send_frame(*conn, encode_error_response(id, admitted.error()));
    }
    return true;
  }
  if (type == "inject") {
    auto request = parse_inject_request(*doc);
    if (!request) {
      send_frame(*conn, encode_error_response(id, request.error()));
      return true;
    }
    auto admitted = queue_.submit(
        conn->id, id,
        [this, conn, id, request = std::move(*request)](
            const common::CancelToken& token) {
          auto outcome = service_.inject(request, token);
          send_frame(*conn,
                     outcome ? encode_result_response(id, outcome->result_json,
                                                      outcome->stats)
                             : encode_error_response(id, outcome.error()));
        });
    if (!admitted.ok()) {
      send_frame(*conn, encode_error_response(id, admitted.error()));
    }
    return true;
  }
  if (type == "replay") {
    std::string dump = doc->string_or("dump", "");
    auto admitted = queue_.submit(
        conn->id, id,
        [this, conn, id, dump = std::move(dump)](
            const common::CancelToken& token) {
          auto outcome = service_.replay(dump, token);
          send_frame(*conn,
                     outcome ? encode_result_response(id, outcome->result_json,
                                                      outcome->stats)
                             : encode_error_response(id, outcome.error()));
        });
    if (!admitted.ok()) {
      send_frame(*conn, encode_error_response(id, admitted.error()));
    }
    return true;
  }
  send_frame(*conn,
             encode_error_response(
                 id, Error{ErrorCode::kUnknownRequest,
                           "unknown request type '" + type + "'"}));
  return true;
}

void Server::send_frame(Connection& conn, std::string_view payload) {
  std::lock_guard lock(conn.write_mu);
  // A vanished client makes the write fail; the reader loop notices the
  // same condition on its side, so the failure needs no handling here.
  (void)write_frame(conn.socket, payload);
}

int run_daemon(const DaemonOptions& options) {
  auto server = Server::start(options.config);
  if (!server) {
    std::fprintf(stderr, "vppd: %s\n", server.error().to_string().c_str());
    return 3;
  }
  if (!options.port_file.empty()) {
    const std::string tmp = options.port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "vppd: cannot write %s\n", tmp.c_str());
      return 3;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>((*server)->port()));
    std::fclose(f);
    if (std::rename(tmp.c_str(), options.port_file.c_str()) != 0) {
      std::fprintf(stderr, "vppd: cannot publish %s\n",
                   options.port_file.c_str());
      return 3;
    }
  }
  std::printf("vppd listening on 127.0.0.1:%u\n",
              static_cast<unsigned>((*server)->port()));
  std::fflush(stdout);
  (*server)->wait();
  (*server)->stop();
  return 0;
}

}  // namespace vppstudy::server
