// Descriptive statistics used throughout the characterization study:
// mean / stddev / coefficient of variation (section 4.6), percentiles, and
// normal-approximation confidence intervals (the 90% CI bands of Figs. 3/5/10).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vppstudy::stats {

/// Summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;      // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  /// Coefficient of variation = stddev / |mean| (0 when mean == 0).
  double cv = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

[[nodiscard]] double mean(std::span<const double> values);
[[nodiscard]] double sample_stddev(std::span<const double> values);

/// Coefficient of variation, the paper's statistical-significance metric
/// (section 4.6): stddev over mean of repeated measurements.
[[nodiscard]] double coefficient_of_variation(std::span<const double> values);

/// Linear-interpolated percentile; `p` in [0, 100]. Sorts a copy.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Percentile over data the caller has already sorted ascending.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double p);

/// Two-sided normal-approximation confidence interval for the mean.
/// `confidence` in (0,1), e.g. 0.90 for the paper's 90% bands.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
};
[[nodiscard]] ConfidenceInterval mean_confidence_interval(
    std::span<const double> values, double confidence);

/// Distribution-free central interval: the [ (1-c)/2, (1+c)/2 ] percentile
/// band of the sample itself (used for across-row bands in Figs. 3/5).
[[nodiscard]] ConfidenceInterval central_interval(std::span<const double> values,
                                                  double confidence);

/// Fraction of values strictly greater / strictly less than a threshold.
[[nodiscard]] double fraction_above(std::span<const double> values,
                                    double threshold);
[[nodiscard]] double fraction_below(std::span<const double> values,
                                    double threshold);

}  // namespace vppstudy::stats
