#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"

namespace vppstudy::stats {

double silverman_bandwidth(std::span<const double> sample) {
  if (sample.size() < 2) return 1.0;
  const double sd = sample_stddev(sample);
  const double iqr =
      percentile(sample, 75.0) - percentile(sample, 25.0);
  double spread = sd;
  if (iqr > 0.0) spread = std::min(sd, iqr / 1.34);
  if (spread <= 0.0) spread = sd > 0.0 ? sd : 1.0;
  return 0.9 * spread *
         std::pow(static_cast<double>(sample.size()), -0.2);
}

std::vector<KdePoint> gaussian_kde(std::span<const double> sample, double lo,
                                   double hi, std::size_t grid_points,
                                   double bandwidth) {
  std::vector<KdePoint> out;
  if (sample.empty() || grid_points == 0 || hi <= lo) return out;
  if (bandwidth <= 0.0) bandwidth = silverman_bandwidth(sample);
  if (bandwidth <= 0.0) bandwidth = 1e-6;

  const double norm =
      1.0 / (static_cast<double>(sample.size()) * bandwidth *
             std::sqrt(2.0 * M_PI));
  out.reserve(grid_points);
  const double step =
      grid_points > 1 ? (hi - lo) / static_cast<double>(grid_points - 1) : 0.0;
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    double acc = 0.0;
    for (double s : sample) {
      const double z = (x - s) / bandwidth;
      acc += std::exp(-0.5 * z * z);
    }
    out.push_back({x, acc * norm});
  }
  return out;
}

}  // namespace vppstudy::stats
