// Nonparametric inference utilities: bootstrap confidence intervals for the
// across-row means the figures report, and the Mann-Whitney U test for
// claims of the form "vendor C's rows improve more than vendor A's"
// (Obsv. 3/6 compare population distributions, not just means).
#pragma once

#include <cstdint>
#include <span>

#include "stats/descriptive.hpp"

namespace vppstudy::stats {

/// Percentile-bootstrap CI of the sample mean.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(
    std::span<const double> sample, double confidence,
    std::size_t resamples = 2000, std::uint64_t seed = 0xb007);

struct MannWhitneyResult {
  double u_statistic = 0.0;   ///< U for the first sample
  double z = 0.0;             ///< normal approximation (tie-corrected)
  double p_two_sided = 1.0;
  /// Common-language effect size: P(X > Y) + 0.5 P(X == Y).
  double effect = 0.5;
};

/// Two-sided Mann-Whitney U (Wilcoxon rank-sum) via the normal approximation
/// with tie correction. Suitable for the n >= ~20 populations the sweeps
/// produce.
[[nodiscard]] MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                               std::span<const double> b);

}  // namespace vppstudy::stats
