// Fixed-bin histogram used for the population-density figures (4, 6, 8b, 9b,
// 10b, 11) and for quick text rendering in the bench binaries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vppstudy::stats {

class Histogram {
 public:
  /// Bins partition [lo, hi) uniformly; values outside are clamped into the
  /// first/last bin so density mass is never silently dropped.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Probability density estimate of a bin: count / (total * bin_width).
  [[nodiscard]] double density(std::size_t bin) const;
  /// Fraction of samples in a bin.
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// ASCII bar rendering (one line per bin) for the bench binaries.
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace vppstudy::stats
