#include "stats/inference.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace vppstudy::stats {

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample,
                                     double confidence,
                                     std::size_t resamples,
                                     std::uint64_t seed) {
  if (sample.empty()) return {};
  if (sample.size() == 1) return {sample[0], sample[0]};
  common::Xoshiro256 rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  const auto n = sample.size();
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += sample[rng.bounded(n)];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  return central_interval(means, confidence);
}

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b) {
  MannWhitneyResult result;
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();
  if (n1 == 0 || n2 == 0) return result;

  // Pool, sort, and assign midranks.
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> pool;
  pool.reserve(n1 + n2);
  for (double v : a) pool.push_back({v, true});
  for (double v : b) pool.push_back({v, false});
  std::sort(pool.begin(), pool.end(),
            [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

  double rank_sum_a = 0.0;
  double tie_term = 0.0;  // sum of t^3 - t over tie groups
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j + 1 < pool.size() && pool[j + 1].value == pool[i].value) ++j;
    const double midrank =
        (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    const double t = static_cast<double>(j - i + 1);
    if (t > 1.0) tie_term += t * t * t - t;
    for (std::size_t k = i; k <= j; ++k) {
      if (pool[k].from_a) rank_sum_a += midrank;
    }
    i = j + 1;
  }

  const double dn1 = static_cast<double>(n1);
  const double dn2 = static_cast<double>(n2);
  const double u1 = rank_sum_a - dn1 * (dn1 + 1.0) / 2.0;
  result.u_statistic = u1;
  result.effect = u1 / (dn1 * dn2);

  const double mean_u = dn1 * dn2 / 2.0;
  const double n = dn1 + dn2;
  const double variance =
      dn1 * dn2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (variance <= 0.0) return result;
  // Continuity correction toward the mean.
  const double cc = u1 > mean_u ? -0.5 : (u1 < mean_u ? 0.5 : 0.0);
  result.z = (u1 - mean_u + cc) / std::sqrt(variance);
  result.p_two_sided =
      2.0 * (1.0 - common::normal_cdf(std::abs(result.z)));
  result.p_two_sided = std::clamp(result.p_two_sided, 0.0, 1.0);
  return result;
}

}  // namespace vppstudy::stats
