#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace vppstudy::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double value) {
  double idx = (value - lo_) / width_;
  auto bin = static_cast<std::ptrdiff_t>(std::floor(idx));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

std::uint64_t Histogram::count(std::size_t bin) const { return counts_.at(bin); }

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_center(std::size_t bin) const {
  return bin_low(bin) + width_ / 2.0;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) /
         (static_cast<double>(total_) * width_);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        std::llround(static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak) *
                                     static_cast<double>(max_bar_width)));
    os << std::setw(10) << std::setprecision(4) << bin_center(i) << " | "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace vppstudy::stats
