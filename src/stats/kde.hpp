// Gaussian kernel density estimation -- the smooth population-density curves
// of Figs. 4 and 6 are KDEs over per-row normalized metrics.
#pragma once

#include <span>
#include <vector>

namespace vppstudy::stats {

struct KdePoint {
  double x = 0.0;
  double density = 0.0;
};

/// Silverman's rule-of-thumb bandwidth for a Gaussian kernel.
[[nodiscard]] double silverman_bandwidth(std::span<const double> sample);

/// Evaluate a Gaussian KDE of `sample` on `grid_points` uniformly spaced
/// points in [lo, hi]. Pass `bandwidth <= 0` to use Silverman's rule.
[[nodiscard]] std::vector<KdePoint> gaussian_kde(std::span<const double> sample,
                                                 double lo, double hi,
                                                 std::size_t grid_points,
                                                 double bandwidth = 0.0);

}  // namespace vppstudy::stats
