#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace vppstudy::stats {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double sample_stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double coefficient_of_variation(std::span<const double> values) {
  const double m = mean(values);
  if (m == 0.0) return 0.0;
  return sample_stddev(values) / std::abs(m);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = mean(values);
  s.stddev = sample_stddev(values);
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  s.min = *lo;
  s.max = *hi;
  s.cv = (s.mean != 0.0) ? s.stddev / std::abs(s.mean) : 0.0;
  return s;
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> values, double p) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

ConfidenceInterval mean_confidence_interval(std::span<const double> values,
                                            double confidence) {
  ConfidenceInterval ci;
  if (values.empty()) return ci;
  const double m = mean(values);
  if (values.size() == 1) return {m, m};
  const double se =
      sample_stddev(values) / std::sqrt(static_cast<double>(values.size()));
  const double alpha = 1.0 - std::clamp(confidence, 0.0, 0.999999);
  const double z = common::inverse_normal_cdf(1.0 - alpha / 2.0);
  return {m - z * se, m + z * se};
}

ConfidenceInterval central_interval(std::span<const double> values,
                                    double confidence) {
  if (values.empty()) return {};
  confidence = std::clamp(confidence, 0.0, 1.0);
  const double tail = (1.0 - confidence) / 2.0 * 100.0;
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return {percentile_sorted(copy, tail), percentile_sorted(copy, 100.0 - tail)};
}

double fraction_above(std::span<const double> values, double threshold) {
  if (values.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : values)
    if (v > threshold) ++n;
  return static_cast<double>(n) / static_cast<double>(values.size());
}

double fraction_below(std::span<const double> values, double threshold) {
  if (values.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : values)
    if (v < threshold) ++n;
  return static_cast<double>(n) / static_cast<double>(values.size());
}

}  // namespace vppstudy::stats
