#include "circuit/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace vppstudy::circuit {

void Matrix::clear() { std::fill(data_.begin(), data_.end(), 0.0); }

bool lu_solve(Matrix& a, std::vector<double>& b, std::vector<double>& x) {
  const std::size_t n = a.size();
  x.assign(n, 0.0);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-18) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    const double diag = a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c)
        a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a.at(ri, c) * x[c];
    x[ri] = acc / a.at(ri, ri);
  }
  return true;
}

}  // namespace vppstudy::circuit
