// Netlist representation for the MNA solver.
//
// A Circuit owns nodes and elements. Node 0 is ground. Voltage sources add a
// branch-current unknown (classic Modified Nodal Analysis).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/mosfet.hpp"

namespace vppstudy::circuit {

using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

/// A point of a piecewise-linear source waveform.
struct PwlPoint {
  double t_s = 0.0;
  double v = 0.0;
};

struct Resistor {
  NodeId a = kGround;
  NodeId b = kGround;
  double ohms = 1.0;
};

struct Capacitor {
  NodeId a = kGround;
  NodeId b = kGround;
  double farads = 1e-15;
};

/// Independent voltage source; value follows a PWL waveform (a single point
/// makes it DC). Held constant after the last point.
struct VoltageSource {
  NodeId plus = kGround;
  NodeId minus = kGround;
  std::vector<PwlPoint> waveform;

  [[nodiscard]] double value_at(double t_s) const noexcept;
};

struct Mosfet {
  NodeId gate = kGround;
  NodeId drain = kGround;
  NodeId source = kGround;
  NodeId bulk = kGround;
  MosParams params;
};

class Circuit {
 public:
  Circuit();

  /// Create a named node; returns its id. Node 0 (ground) pre-exists.
  NodeId add_node(std::string name);
  [[nodiscard]] std::size_t node_count() const noexcept { return names_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId n) const;

  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads);
  /// Returns the source index (usable to query branch current later).
  std::size_t add_voltage_source(NodeId plus, NodeId minus,
                                 std::vector<PwlPoint> waveform);
  std::size_t add_dc_source(NodeId plus, NodeId minus, double volts);
  void add_mosfet(const Mosfet& m);

  [[nodiscard]] const std::vector<Resistor>& resistors() const noexcept {
    return resistors_;
  }
  [[nodiscard]] const std::vector<Capacitor>& capacitors() const noexcept {
    return capacitors_;
  }
  [[nodiscard]] const std::vector<VoltageSource>& sources() const noexcept {
    return sources_;
  }
  [[nodiscard]] std::vector<VoltageSource>& sources() noexcept {
    return sources_;
  }
  [[nodiscard]] const std::vector<Mosfet>& mosfets() const noexcept {
    return mosfets_;
  }
  [[nodiscard]] std::vector<Mosfet>& mosfets() noexcept { return mosfets_; }

  /// Total MNA unknowns: (nodes - 1) + voltage-source branches.
  [[nodiscard]] std::size_t unknown_count() const noexcept;

 private:
  std::vector<std::string> names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VoltageSource> sources_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace vppstudy::circuit
