// MNA solver: DC operating point and fixed-step backward-Euler transient with
// a Newton-Raphson inner loop (voltage-step damping + gmin for robustness on
// the regenerative sense-amplifier latch).
#pragma once

#include <span>
#include <vector>

#include "circuit/matrix.hpp"
#include "circuit/netlist.hpp"
#include "common/expected.hpp"

namespace vppstudy::circuit {

struct TransientOptions {
  double t_stop_s = 60e-9;
  double dt_s = 25e-12;
  int max_nr_iterations = 80;
  double v_tolerance = 1e-6;     ///< NR convergence: max |dV| across nodes
  double v_step_limit = 0.4;     ///< NR damping: clamp per-iteration |dV|
  double gmin_s = 1e-12;         ///< shunt conductance to ground on all nodes
};

/// Recorded node-voltage traces: `v[k][i]` is node `nodes[k]` at `t_s[i]`.
struct Waveform {
  std::vector<NodeId> nodes;
  std::vector<double> t_s;
  std::vector<std::vector<double>> v;

  /// Index into `v` for a node id; asserts the node was recorded.
  [[nodiscard]] std::span<const double> trace(NodeId node) const;
};

class Solver {
 public:
  explicit Solver(const Circuit& circuit);

  /// Solve the DC operating point at t=0 source values. Returns node
  /// voltages indexed by NodeId (entry 0 is ground = 0).
  [[nodiscard]] common::Expected<std::vector<double>> dc_operating_point(
      const TransientOptions& opts = {});

  /// Backward-Euler transient from explicit initial node voltages
  /// (SPICE `.tran uic` style). `initial` is indexed by NodeId.
  [[nodiscard]] common::Expected<Waveform> transient(
      std::span<const double> initial, const TransientOptions& opts,
      std::span<const NodeId> record_nodes);

 private:
  /// One NR solve of the (possibly time-discretized) nonlinear system.
  /// `prev` holds node voltages at the previous timestep (ignored for DC).
  /// `v` is in/out: initial guess in, solution out.
  [[nodiscard]] common::Status newton_solve(double t_s, bool is_transient,
                                            double dt_s,
                                            std::span<const double> prev,
                                            std::vector<double>& v,
                                            const TransientOptions& opts);

  void stamp_linear(Matrix& g, std::vector<double>& rhs, double t_s,
                    bool is_transient, double dt_s,
                    std::span<const double> prev, double gmin) const;
  void stamp_mosfets(Matrix& g, std::vector<double>& rhs,
                     std::span<const double> v) const;

  const Circuit& circuit_;
  std::size_t n_nodes_;     // including ground
  std::size_t n_unknowns_;  // (nodes-1) + source branches
};

}  // namespace vppstudy::circuit
