// Dense linear algebra for the MNA solver. Circuits in this study have ~10
// unknowns, so a straightforward partial-pivot LU is both simplest and fast.
#pragma once

#include <cstddef>
#include <vector>

namespace vppstudy::circuit {

/// Row-major dense square matrix.
class Matrix {
 public:
  explicit Matrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * n_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * n_ + c];
  }
  void clear();

 private:
  std::size_t n_;
  std::vector<double> data_;
};

/// Solve A x = b in place via LU with partial pivoting. `a` and `b` are
/// destroyed; the solution is returned in `x`. Returns false if the matrix is
/// numerically singular (pivot below 1e-18).
bool lu_solve(Matrix& a, std::vector<double>& b, std::vector<double>& x);

}  // namespace vppstudy::circuit
