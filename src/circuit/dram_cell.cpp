#include "circuit/dram_cell.hpp"

#include <algorithm>
#include <cmath>

namespace vppstudy::circuit {

double steady_state_cell_voltage(const DramCellSimParams& p) {
  // Fixed-point iteration of v = min(VDD, VPP - Vth(vsb=v)); converges fast
  // because dVth/dv < 1.
  double v = p.vdd_v;
  for (int i = 0; i < 64; ++i) {
    const double vth = threshold_voltage(p.access_nmos, v);
    const double next = std::min(p.vdd_v, p.vpp_v - vth);
    if (std::abs(next - v) < 1e-9) return std::max(next, 0.0);
    v = next;
  }
  return std::max(v, 0.0);
}

DramCellCircuit build_dram_cell_circuit(const DramCellSimParams& p) {
  DramCellCircuit c;
  Circuit& ckt = c.circuit;

  c.bl0 = ckt.add_node("bl0");
  c.blsa = ckt.add_node("blsa");
  c.blb = ckt.add_node("blb");
  c.celln = ckt.add_node("celln");
  c.cellt = ckt.add_node("cellt");
  c.wl = ckt.add_node("wl");
  c.san = ckt.add_node("san");
  c.sap = ckt.add_node("sap");

  // Bitline as a pi-model: half the capacitance at each end, the full
  // distributed resistance between the cell tap and the sense amplifier.
  ckt.add_capacitor(c.bl0, kGround, p.bitline_c_f / 2.0);
  ckt.add_capacitor(c.blsa, kGround, p.bitline_c_f / 2.0);
  ckt.add_resistor(c.bl0, c.blsa, p.bitline_r_ohm);
  // Reference bitline: lumped (no cell dumps charge on it).
  ckt.add_capacitor(c.blb, kGround, p.bitline_c_f);

  // Cell: access NMOS, series contact resistance, storage capacitor.
  Mosfet access;
  access.gate = c.wl;
  access.drain = c.bl0;
  access.source = c.celln;
  access.bulk = kGround;
  access.params = p.access_nmos;
  ckt.add_mosfet(access);
  ckt.add_resistor(c.celln, c.cellt, p.cell_r_ohm);
  ckt.add_capacitor(c.cellt, kGround, p.cell_c_f);

  // Sense amplifier: cross-coupled inverter pair between BLSA and BLB. The
  // two NMOS thresholds are skewed by +/- half the mismatch to model
  // sense-amplifier offset.
  Mosfet n1;  // pulls BLSA toward SAN when BLB is high
  n1.gate = c.blb;
  n1.drain = c.blsa;
  n1.source = c.san;
  n1.bulk = kGround;
  n1.params = p.sa_nmos;
  n1.params.vt0 += p.sa_vt_mismatch_v / 2.0;
  ckt.add_mosfet(n1);
  Mosfet n2;
  n2.gate = c.blsa;
  n2.drain = c.blb;
  n2.source = c.san;
  n2.bulk = kGround;
  n2.params = p.sa_nmos;
  n2.params.vt0 -= p.sa_vt_mismatch_v / 2.0;
  ckt.add_mosfet(n2);
  Mosfet p1;  // pulls BLSA toward SAP when BLB is low
  p1.gate = c.blb;
  p1.drain = c.blsa;
  p1.source = c.sap;
  p1.bulk = c.sap;
  p1.params = p.sa_pmos;
  ckt.add_mosfet(p1);
  Mosfet p2;
  p2.gate = c.blsa;
  p2.drain = c.blb;
  p2.source = c.sap;
  p2.bulk = c.sap;
  p2.params = p.sa_pmos;
  ckt.add_mosfet(p2);

  // Stimulus sources.
  const double half_vdd = p.vdd_v / 2.0;
  const double ns = 1e-9;
  ckt.add_voltage_source(
      c.wl, kGround,
      {{0.0, 0.0}, {p.wl_rise_ns * ns, p.vpp_v}});
  ckt.add_voltage_source(
      c.san, kGround,
      {{0.0, half_vdd},
       {p.sense_enable_ns * ns, half_vdd},
       {(p.sense_enable_ns + p.sense_ramp_ns) * ns, 0.0}});
  ckt.add_voltage_source(
      c.sap, kGround,
      {{0.0, half_vdd},
       {p.sense_enable_ns * ns, half_vdd},
       {(p.sense_enable_ns + p.sense_ramp_ns) * ns, p.vdd_v}});

  // Initial conditions: precharged bitlines, stored cell level.
  c.initial.assign(ckt.node_count(), 0.0);
  const double cell_v =
      p.initial_cell_v >= 0.0
          ? p.initial_cell_v
          : (p.cell_stores_one ? steady_state_cell_voltage(p) : 0.0);
  c.initial[c.bl0] = half_vdd;
  c.initial[c.blsa] = half_vdd;
  c.initial[c.blb] = half_vdd;
  c.initial[c.celln] = cell_v;
  c.initial[c.cellt] = cell_v;
  c.initial[c.wl] = 0.0;
  c.initial[c.san] = half_vdd;
  c.initial[c.sap] = half_vdd;
  return c;
}

common::Expected<ActivationResult> simulate_activation(
    const DramCellSimParams& p) {
  DramCellCircuit c = build_dram_cell_circuit(p);
  Solver solver(c.circuit);

  TransientOptions opts;
  opts.t_stop_s = p.t_stop_ns * 1e-9;
  opts.dt_s = p.dt_ps * 1e-12;

  const NodeId record[] = {c.blsa, c.blb, c.cellt};
  auto wf = solver.transient(c.initial, opts, record);
  if (!wf) return std::move(wf).error().with_context("simulate_activation");

  ActivationResult res;
  const auto& t_s = wf->t_s;
  const auto bl = wf->trace(c.blsa);
  const auto blb = wf->trace(c.blb);
  const auto cell = wf->trace(c.cellt);
  res.t_ns.reserve(t_s.size());
  for (double t : t_s) res.t_ns.push_back(t * 1e9);
  res.v_bitline.assign(bl.begin(), bl.end());
  res.v_blb.assign(blb.begin(), blb.end());
  res.v_cell.assign(cell.begin(), cell.end());

  res.v_cell_final = res.v_cell.back();

  // For a stored '1' the bitline must regenerate upward; a stored '0'
  // mirrors downward. Normalize so the detection logic is shared.
  const bool one = p.cell_stores_one;
  const double vth =
      one ? p.read_vth_frac * p.vdd_v : (1.0 - p.read_vth_frac) * p.vdd_v;

  for (std::size_t i = 0; i < res.t_ns.size(); ++i) {
    const bool crossed = one ? res.v_bitline[i] >= vth
                             : res.v_bitline[i] <= vth;
    if (crossed) {
      res.t_rcd_min_ns = res.t_ns[i] + p.trcd_overhead_ns;
      break;
    }
  }

  // Restoration: within restore_band_frac of the final level, and staying
  // there (scan backwards for the last point outside the band). The band is
  // relative to the achievable final level: a VPP-limited cell completes its
  // (shallower) restoration too.
  const double band =
      std::max(p.restore_band_frac * std::abs(res.v_cell_final), 1e-3);
  std::size_t last_outside = 0;
  bool any_outside = false;
  for (std::size_t i = 0; i < res.v_cell.size(); ++i) {
    if (std::abs(res.v_cell[i] - res.v_cell_final) > band) {
      last_outside = i;
      any_outside = true;
    }
  }
  if (!any_outside) {
    res.t_ras_min_ns = res.t_ns.front();
  } else if (last_outside + 1 < res.t_ns.size()) {
    res.t_ras_min_ns = res.t_ns[last_outside + 1];
  }

  // Reliability: correct regeneration direction, a crossed read threshold,
  // and (for a stored '1') enough restored charge to sense again next time.
  const double final_sep = res.v_bitline.back() - res.v_blb.back();
  const bool correct_direction = one ? final_sep > 0.1 : final_sep < -0.1;
  const bool restored_ok = !one || res.v_cell_final >= p.min_restored_v;
  res.reliable = correct_direction && res.t_rcd_min_ns >= 0.0 && restored_ok;
  return res;
}

}  // namespace vppstudy::circuit
