#include "circuit/netlist.hpp"

#include <algorithm>
#include <cassert>

namespace vppstudy::circuit {

double VoltageSource::value_at(double t_s) const noexcept {
  if (waveform.empty()) return 0.0;
  if (t_s <= waveform.front().t_s) return waveform.front().v;
  for (std::size_t i = 1; i < waveform.size(); ++i) {
    if (t_s <= waveform[i].t_s) {
      const auto& a = waveform[i - 1];
      const auto& b = waveform[i];
      const double span = b.t_s - a.t_s;
      if (span <= 0.0) return b.v;
      return a.v + (b.v - a.v) * (t_s - a.t_s) / span;
    }
  }
  return waveform.back().v;
}

Circuit::Circuit() { names_.emplace_back("gnd"); }

NodeId Circuit::add_node(std::string name) {
  names_.push_back(std::move(name));
  return names_.size() - 1;
}

const std::string& Circuit::node_name(NodeId n) const { return names_.at(n); }

void Circuit::add_resistor(NodeId a, NodeId b, double ohms) {
  assert(ohms > 0.0);
  resistors_.push_back({a, b, ohms});
}

void Circuit::add_capacitor(NodeId a, NodeId b, double farads) {
  assert(farads > 0.0);
  capacitors_.push_back({a, b, farads});
}

std::size_t Circuit::add_voltage_source(NodeId plus, NodeId minus,
                                        std::vector<PwlPoint> waveform) {
  assert(!waveform.empty());
  assert(std::is_sorted(waveform.begin(), waveform.end(),
                        [](const PwlPoint& a, const PwlPoint& b) {
                          return a.t_s < b.t_s;
                        }));
  sources_.push_back({plus, minus, std::move(waveform)});
  return sources_.size() - 1;
}

std::size_t Circuit::add_dc_source(NodeId plus, NodeId minus, double volts) {
  return add_voltage_source(plus, minus, {{0.0, volts}});
}

void Circuit::add_mosfet(const Mosfet& m) { mosfets_.push_back(m); }

std::size_t Circuit::unknown_count() const noexcept {
  return (names_.size() - 1) + sources_.size();
}

}  // namespace vppstudy::circuit
