#include "circuit/montecarlo.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace vppstudy::circuit {

double MonteCarloResult::worst_trcd_ns() const {
  if (t_rcd_min_ns.empty()) return 0.0;
  return *std::max_element(t_rcd_min_ns.begin(), t_rcd_min_ns.end());
}

double MonteCarloResult::worst_tras_ns() const {
  if (t_ras_min_ns.empty()) return 0.0;
  return *std::max_element(t_ras_min_ns.begin(), t_ras_min_ns.end());
}

double MonteCarloResult::reliability(std::size_t total_runs) const {
  if (total_runs == 0) return 0.0;
  return 1.0 -
         static_cast<double>(failed_runs) / static_cast<double>(total_runs);
}

DramCellSimParams perturb(const DramCellSimParams& nominal, double spread,
                          common::Xoshiro256& rng) {
  DramCellSimParams p = nominal;
  const auto jitter = [&](double v) {
    return v * (1.0 + rng.uniform(-spread, spread));
  };
  p.cell_c_f = jitter(p.cell_c_f);
  p.cell_r_ohm = jitter(p.cell_r_ohm);
  p.bitline_c_f = jitter(p.bitline_c_f);
  p.bitline_r_ohm = jitter(p.bitline_r_ohm);
  p.access_nmos.kp = jitter(p.access_nmos.kp);
  p.access_nmos.vt0 = jitter(p.access_nmos.vt0);
  p.sa_nmos.kp = jitter(p.sa_nmos.kp);
  p.sa_nmos.vt0 = jitter(p.sa_nmos.vt0);
  p.sa_pmos.kp = jitter(p.sa_pmos.kp);
  p.sa_pmos.vt0 = jitter(p.sa_pmos.vt0);
  p.wl_rise_ns = jitter(p.wl_rise_ns);
  // Sense-amplifier offset: the latch thresholds never match exactly. Scale
  // the mismatch with the overall process spread (5% spread ~ +/-10mV).
  p.sa_vt_mismatch_v =
      nominal.sa_vt_mismatch_v + rng.uniform(-spread * 0.2, spread * 0.2);
  return p;
}

MonteCarloResult run_monte_carlo(const DramCellSimParams& nominal,
                                 const MonteCarloOptions& opts) {
  MonteCarloResult result;
  result.t_rcd_min_ns.reserve(opts.runs);
  result.t_ras_min_ns.reserve(opts.runs);
  result.v_cell_final.reserve(opts.runs);

  common::Xoshiro256 rng(opts.seed);
  for (std::size_t i = 0; i < opts.runs; ++i) {
    const DramCellSimParams p = perturb(nominal, opts.spread, rng);
    auto sim = simulate_activation(p);
    if (!sim || !sim->reliable) {
      ++result.failed_runs;
      continue;
    }
    result.t_rcd_min_ns.push_back(sim->t_rcd_min_ns);
    if (sim->t_ras_min_ns >= 0.0) {
      result.t_ras_min_ns.push_back(sim->t_ras_min_ns);
    }
    result.v_cell_final.push_back(sim->v_cell_final);
  }
  return result;
}

}  // namespace vppstudy::circuit
