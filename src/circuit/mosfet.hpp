// Level-1 (Shichman-Hodges) MOSFET model with channel-length modulation and
// body effect. The study's SPICE runs use 22nm PTM devices; a level-1 model
// with calibrated K'/Vth reproduces the qualitative waveforms the paper
// reports (it explicitly does not expect SPICE to match real silicon).
#pragma once

#include <cmath>

namespace vppstudy::circuit {

enum class MosType { kNmos, kPmos };

/// Process + geometry parameters of one transistor.
struct MosParams {
  MosType type = MosType::kNmos;
  double w_m = 1e-6;        ///< channel width [m]
  double l_m = 1e-7;        ///< channel length [m]
  double kp = 300e-6;       ///< transconductance parameter K' = u*Cox [A/V^2]
  double vt0 = 0.45;        ///< zero-bias threshold voltage [V]
  double lambda = 0.05;     ///< channel-length modulation [1/V]
  double gamma = 0.45;      ///< body-effect coefficient [sqrt(V)]
  double phi = 0.8;         ///< 2*phi_F surface potential [V]

  [[nodiscard]] double beta() const noexcept { return kp * w_m / l_m; }
};

/// Evaluation of the drain current and its small-signal conductances at an
/// operating point, in the device's forward orientation (vds >= 0).
struct MosEval {
  double ids = 0.0;  ///< drain current [A]
  double gm = 0.0;   ///< dIds/dVgs
  double gds = 0.0;  ///< dIds/dVds
  double gmb = 0.0;  ///< dIds/dVbs
};

/// Linearized channel current w.r.t. the four *absolute* terminal voltages:
/// I(v) = i0 + g_g*vg + g_d*vd + g_s*vs + g_b*vb. I flows out of the drain
/// node and into the source node. Handles drain/source swap (vds < 0) and
/// PMOS polarity.
struct MosLinear {
  double i0 = 0.0;
  double g_g = 0.0;
  double g_d = 0.0;
  double g_s = 0.0;
  double g_b = 0.0;

  [[nodiscard]] double current(double vg, double vd, double vs,
                               double vb) const noexcept {
    return i0 + g_g * vg + g_d * vd + g_s * vs + g_b * vb;
  }
};

/// Threshold voltage including body effect. `vsb` is source-to-bulk voltage
/// in the device's own polarity (>= 0 increases |Vth|).
[[nodiscard]] inline double threshold_voltage(const MosParams& p,
                                              double vsb) noexcept {
  if (p.gamma == 0.0) return p.vt0;
  const double vsb_eff = std::max(vsb, -p.phi * 0.5);
  return p.vt0 +
         p.gamma * (std::sqrt(p.phi + vsb_eff) - std::sqrt(p.phi));
}

/// Evaluate a level-1 NMOS in its forward orientation (requires vds >= 0 for
/// meaningful results). Exposed for unit tests of the device equations.
[[nodiscard]] MosEval eval_nmos_forward(const MosParams& p, double vgs,
                                        double vds, double vsb) noexcept;

/// Full evaluation at absolute terminal voltages; see MosLinear.
[[nodiscard]] MosLinear linearize_mosfet(const MosParams& p, double vg,
                                         double vd, double vs,
                                         double vb) noexcept;

}  // namespace vppstudy::circuit
