#include "circuit/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vppstudy::circuit {

std::span<const double> Waveform::trace(NodeId node) const {
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    if (nodes[k] == node) return v[k];
  }
  assert(false && "node was not recorded");
  return {};
}

Solver::Solver(const Circuit& circuit)
    : circuit_(circuit),
      n_nodes_(circuit.node_count()),
      n_unknowns_(circuit.unknown_count()) {}

void Solver::stamp_linear(Matrix& g, std::vector<double>& rhs, double t_s,
                          bool is_transient, double dt_s,
                          std::span<const double> prev, double gmin) const {
  // Unknown layout: [v1..v_{N-1}, i_src0..i_srcM]. Node k maps to row k-1.
  const auto row_of = [](NodeId n) { return n - 1; };

  // gmin shunts keep otherwise-floating nodes well conditioned.
  for (NodeId n = 1; n < n_nodes_; ++n) g.at(row_of(n), row_of(n)) += gmin;

  for (const auto& r : circuit_.resistors()) {
    const double cond = 1.0 / r.ohms;
    if (r.a != kGround) g.at(row_of(r.a), row_of(r.a)) += cond;
    if (r.b != kGround) g.at(row_of(r.b), row_of(r.b)) += cond;
    if (r.a != kGround && r.b != kGround) {
      g.at(row_of(r.a), row_of(r.b)) -= cond;
      g.at(row_of(r.b), row_of(r.a)) -= cond;
    }
  }

  if (is_transient) {
    // Backward-Euler companion: I = (C/dt) * (v_ab - v_ab_prev).
    for (const auto& c : circuit_.capacitors()) {
      const double geq = c.farads / dt_s;
      const double va_prev = c.a == kGround ? 0.0 : prev[c.a];
      const double vb_prev = c.b == kGround ? 0.0 : prev[c.b];
      const double ieq = geq * (va_prev - vb_prev);
      if (c.a != kGround) {
        g.at(row_of(c.a), row_of(c.a)) += geq;
        rhs[row_of(c.a)] += ieq;
      }
      if (c.b != kGround) {
        g.at(row_of(c.b), row_of(c.b)) += geq;
        rhs[row_of(c.b)] -= ieq;
      }
      if (c.a != kGround && c.b != kGround) {
        g.at(row_of(c.a), row_of(c.b)) -= geq;
        g.at(row_of(c.b), row_of(c.a)) -= geq;
      }
    }
  }

  const std::size_t branch_base = n_nodes_ - 1;
  const auto& sources = circuit_.sources();
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const auto& src = sources[s];
    const std::size_t br = branch_base + s;
    if (src.plus != kGround) {
      g.at(row_of(src.plus), br) += 1.0;
      g.at(br, row_of(src.plus)) += 1.0;
    }
    if (src.minus != kGround) {
      g.at(row_of(src.minus), br) -= 1.0;
      g.at(br, row_of(src.minus)) -= 1.0;
    }
    rhs[br] += src.value_at(t_s);
  }
}

void Solver::stamp_mosfets(Matrix& g, std::vector<double>& rhs,
                           std::span<const double> v) const {
  const auto row_of = [](NodeId n) { return n - 1; };
  const auto volt = [&](NodeId n) { return n == kGround ? 0.0 : v[n]; };

  for (const auto& m : circuit_.mosfets()) {
    const MosLinear lin = linearize_mosfet(m.params, volt(m.gate),
                                           volt(m.drain), volt(m.source),
                                           volt(m.bulk));
    // Current lin.i0 + sum(g_x * v_x) leaves the drain, enters the source.
    struct Term {
      NodeId node;
      double cond;
    };
    const Term terms[] = {{m.gate, lin.g_g},
                          {m.drain, lin.g_d},
                          {m.source, lin.g_s},
                          {m.bulk, lin.g_b}};
    if (m.drain != kGround) {
      for (const auto& t : terms) {
        if (t.node != kGround) g.at(row_of(m.drain), row_of(t.node)) += t.cond;
      }
      rhs[row_of(m.drain)] -= lin.i0;
    }
    if (m.source != kGround) {
      for (const auto& t : terms) {
        if (t.node != kGround) g.at(row_of(m.source), row_of(t.node)) -= t.cond;
      }
      rhs[row_of(m.source)] += lin.i0;
    }
  }
}

common::Status Solver::newton_solve(double t_s, bool is_transient, double dt_s,
                                    std::span<const double> prev,
                                    std::vector<double>& v,
                                    const TransientOptions& opts) {
  Matrix g(n_unknowns_);
  std::vector<double> rhs(n_unknowns_, 0.0);
  std::vector<double> solution;

  for (int iter = 0; iter < opts.max_nr_iterations; ++iter) {
    g.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);
    stamp_linear(g, rhs, t_s, is_transient, dt_s, prev, opts.gmin_s);
    stamp_mosfets(g, rhs, v);

    if (!lu_solve(g, rhs, solution)) {
      return common::Error{"singular MNA matrix at t=" + std::to_string(t_s)};
    }

    // Damped update + convergence check on node voltages.
    double max_dv = 0.0;
    for (NodeId n = 1; n < n_nodes_; ++n) {
      double dv = solution[n - 1] - v[n];
      max_dv = std::max(max_dv, std::abs(dv));
      dv = std::clamp(dv, -opts.v_step_limit, opts.v_step_limit);
      v[n] += dv;
    }
    if (max_dv < opts.v_tolerance) return common::Status::ok_status();
  }
  return common::Error{common::ErrorCode::kSolverDiverged,
                       "Newton-Raphson did not converge at t=" +
                           std::to_string(t_s)};
}

common::Expected<std::vector<double>> Solver::dc_operating_point(
    const TransientOptions& opts) {
  std::vector<double> v(n_nodes_, 0.0);
  // gmin stepping: start with a heavy shunt and relax it, reusing the
  // previous solution as the next initial guess.
  for (double gmin : {1e-3, 1e-6, 1e-9, opts.gmin_s}) {
    TransientOptions o = opts;
    o.gmin_s = gmin;
    if (auto st = newton_solve(0.0, /*is_transient=*/false, 0.0, v, v, o);
        !st.ok()) {
      return std::move(st).error().with_context("dc_operating_point");
    }
  }
  return v;
}

common::Expected<Waveform> Solver::transient(
    std::span<const double> initial, const TransientOptions& opts,
    std::span<const NodeId> record_nodes) {
  assert(initial.size() == n_nodes_);
  Waveform wf;
  wf.nodes.assign(record_nodes.begin(), record_nodes.end());
  wf.v.resize(record_nodes.size());

  std::vector<double> prev(initial.begin(), initial.end());
  std::vector<double> v = prev;

  const auto steps = static_cast<std::size_t>(opts.t_stop_s / opts.dt_s);
  wf.t_s.reserve(steps + 1);
  for (auto& tr : wf.v) tr.reserve(steps + 1);

  const auto record = [&](double t) {
    wf.t_s.push_back(t);
    for (std::size_t k = 0; k < wf.nodes.size(); ++k) {
      wf.v[k].push_back(wf.nodes[k] == kGround ? 0.0 : v[wf.nodes[k]]);
    }
  };
  record(0.0);

  for (std::size_t i = 1; i <= steps; ++i) {
    const double t = static_cast<double>(i) * opts.dt_s;
    if (auto st = newton_solve(t, /*is_transient=*/true, opts.dt_s, prev, v,
                               opts);
        !st.ok()) {
      return std::move(st).error().with_context("transient");
    }
    prev.assign(v.begin(), v.end());
    record(t);
  }
  return wf;
}

}  // namespace vppstudy::circuit
