// Monte-Carlo driver for the cell-activation experiment (section 4.5): every
// run perturbs component parameters by up to +/-5% (uniform), mirroring the
// paper's 10K-run methodology for Figs. 8b and 9b.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/dram_cell.hpp"
#include "common/rng.hpp"
#include "stats/descriptive.hpp"

namespace vppstudy::circuit {

struct MonteCarloOptions {
  std::size_t runs = 1000;
  double spread = 0.05;      ///< max relative parameter perturbation
  std::uint64_t seed = 0x5eed;
};

struct MonteCarloResult {
  std::vector<double> t_rcd_min_ns;  ///< per successful run
  std::vector<double> t_ras_min_ns;
  std::vector<double> v_cell_final;
  std::size_t failed_runs = 0;       ///< unreliable or non-converged runs

  [[nodiscard]] stats::Summary trcd_summary() const {
    return stats::summarize(t_rcd_min_ns);
  }
  [[nodiscard]] stats::Summary tras_summary() const {
    return stats::summarize(t_ras_min_ns);
  }
  /// Worst-case (largest) reliable tRCDmin across all runs, the quantity the
  /// paper's Fig. 8b annotates with vertical lines. 0 when no run succeeded.
  [[nodiscard]] double worst_trcd_ns() const;
  [[nodiscard]] double worst_tras_ns() const;
  /// Fraction of runs that produced a reliable activation.
  [[nodiscard]] double reliability(std::size_t total_runs) const;
};

/// Apply one +/-spread perturbation to all process-sensitive parameters.
[[nodiscard]] DramCellSimParams perturb(const DramCellSimParams& nominal,
                                        double spread,
                                        common::Xoshiro256& rng);

/// Run the Monte-Carlo sweep at the VPP baked into `nominal`.
[[nodiscard]] MonteCarloResult run_monte_carlo(
    const DramCellSimParams& nominal, const MonteCarloOptions& opts);

}  // namespace vppstudy::circuit
