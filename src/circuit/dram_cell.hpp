// The DRAM cell / bitline / sense-amplifier circuit of Table 2, and the
// activation + charge-restoration transient experiments behind Figs. 8 and 9.
//
// Topology (all values default to Table 2):
//
//   WL ----+                       SAP (pulses to VDD at sense enable)
//          |                        |
//         gate                   [P1][P2]  cross-coupled PMOS
//   BL0 --[access NMOS]-- CELLN    |  |
//    |         (R_cell) -- CELLT  BLSA--BLB
//  C_bl/2        C_cell -- gnd     |  |
//    |                           [N1][N2]  cross-coupled NMOS
//   (R_bl to BLSA, C_bl/2 there)    |
//                                  SAN (pulses to 0 at sense enable)
//
// The bitline pair is precharged to VDD/2; asserting the wordline to VPP
// shares cell charge onto BL, the latch is enabled, and regeneration drives
// BL/BLB apart. tRCDmin is when the bitline crosses the read threshold;
// tRASmin is when the cell capacitor has recovered to within a band of its
// final (possibly VPP-limited) level.
#pragma once

#include <vector>

#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/solver.hpp"
#include "common/expected.hpp"

namespace vppstudy::circuit {

/// All knobs of the cell-activation experiment. Defaults reproduce Table 2
/// plus the calibrated operating points discussed in DESIGN.md.
struct DramCellSimParams {
  double vdd_v = 1.2;
  double vpp_v = 2.5;

  // Table 2 passives.
  double cell_c_f = 16.8e-15;
  double cell_r_ohm = 698.0;
  double bitline_c_f = 100.5e-15;
  double bitline_r_ohm = 6980.0;

  // Table 2 transistor geometries; K'/Vth calibrated so the nominal-VPP
  // activation lands at the paper's SPICE operating point (mean tRCDmin of
  // 11.6ns at 2.5V rising to ~13.6ns at 1.7V; see DESIGN.md section 5).
  MosParams access_nmos{MosType::kNmos, 55e-9, 85e-9, 8e-6, 0.45,
                        0.04, 0.58, 0.8};
  MosParams sa_nmos{MosType::kNmos, 1.3e-6, 0.1e-6, 25e-6, 0.40,
                    0.05, 0.0, 0.8};
  MosParams sa_pmos{MosType::kPmos, 0.9e-6, 0.1e-6, 12e-6, 0.42,
                    0.05, 0.0, 0.8};
  /// Threshold mismatch between the two latch NMOS devices (sense-amplifier
  /// offset); Monte-Carlo perturbs this around zero.
  double sa_vt_mismatch_v = 0.0;

  // Event timing.
  double wl_rise_ns = 1.2;        ///< wordline 0 -> VPP ramp
  double sense_enable_ns = 2.5;   ///< SAN/SAP fire this long after ACT
  double sense_ramp_ns = 1.5;     ///< SAN/SAP transition time

  // Transient controls.
  double t_stop_ns = 80.0;
  double dt_ps = 25.0;

  /// True: cell stores a '1' (starts at its VPP-limited restored level).
  bool cell_stores_one = true;
  /// Override the initial cell voltage; <0 means "use the steady-state
  /// restored level for this VPP" (see steady_state_cell_voltage).
  double initial_cell_v = -1.0;

  /// Bitline voltage that must be exceeded for a reliable read (fraction of
  /// VDD). The paper's Fig. 8a annotates this as VTH.
  double read_vth_frac = 0.75;
  /// Charge restoration is "complete" when the cell is within this fraction
  /// *of its final level* of that final level (calibrated so the nominal-VPP
  /// tRASmin sits inside the DDR4 tRAS guardband and drops out of it below
  /// 2.0V, per Obsv. 11).
  double restore_band_frac = 0.05;
  /// Fixed post-sensing margin added to the VTH crossing to form tRCD
  /// (column decode + IO timing not modeled by the analog netlist).
  double trcd_overhead_ns = 4.7;
  /// Minimum acceptable restored cell level for a '1'. Below this the next
  /// sensing operation has no margin left, so the run counts as unreliable --
  /// this is what makes SPICE report no reliable operation at VPP <= 1.6V
  /// (footnote 13 of the paper).
  double min_restored_v = 0.92;
};

/// Outcome of one activation transient.
struct ActivationResult {
  std::vector<double> t_ns;
  std::vector<double> v_bitline;  ///< sense-amp side bitline (BLSA)
  std::vector<double> v_blb;      ///< reference bitline
  std::vector<double> v_cell;     ///< cell capacitor top plate

  /// Time at which BLSA crossed read_vth_frac*VDD plus trcd_overhead_ns;
  /// < 0 when the threshold was never crossed (failed activation).
  double t_rcd_min_ns = -1.0;
  /// Time at which the cell entered its restore band; < 0 if never.
  double t_ras_min_ns = -1.0;
  /// Final (saturated) cell voltage at t_stop.
  double v_cell_final = 0.0;
  /// True if the latch regenerated in the correct direction and the read
  /// threshold was crossed.
  bool reliable = false;
};

/// Fixed point of v = min(VDD, VPP - Vth(v)) -- the VPP-limited level a cell
/// saturates at after repeated restorations (Obsv. 10).
[[nodiscard]] double steady_state_cell_voltage(const DramCellSimParams& p);

/// Build the Table 2 netlist. Exposed for white-box tests; most callers use
/// simulate_activation.
struct DramCellCircuit {
  Circuit circuit;
  NodeId bl0 = 0, blsa = 0, blb = 0, celln = 0, cellt = 0;
  NodeId wl = 0, san = 0, sap = 0;
  std::vector<double> initial;  ///< initial node voltages, indexed by NodeId
};
[[nodiscard]] DramCellCircuit build_dram_cell_circuit(
    const DramCellSimParams& p);

/// Run the activation transient and extract tRCDmin / tRASmin.
[[nodiscard]] common::Expected<ActivationResult> simulate_activation(
    const DramCellSimParams& p);

}  // namespace vppstudy::circuit
