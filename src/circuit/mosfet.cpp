#include "circuit/mosfet.hpp"

#include <algorithm>

namespace vppstudy::circuit {

MosEval eval_nmos_forward(const MosParams& p, double vgs, double vds,
                          double vsb) noexcept {
  MosEval e;
  const double vth = threshold_voltage(p, vsb);
  const double vov = vgs - vth;
  const double beta = p.beta();
  // Ids depends on vgs - vth(vsb); dIds/dVbs = gm * dVth/dVsb.
  const double dvth_dvsb =
      p.gamma > 0.0
          ? p.gamma / (2.0 * std::sqrt(std::max(p.phi + vsb, 1e-6)))
          : 0.0;
  if (vov <= 0.0) {
    return e;  // cutoff: the solver adds gmin shunts for conditioning
  }
  const double clm = 1.0 + p.lambda * vds;
  if (vds < vov) {
    // Triode.
    e.ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
    e.gm = beta * vds * clm;
    e.gds = beta * (vov - vds) * clm +
            beta * (vov * vds - 0.5 * vds * vds) * p.lambda;
  } else {
    // Saturation.
    e.ids = 0.5 * beta * vov * vov * clm;
    e.gm = beta * vov * clm;
    e.gds = 0.5 * beta * vov * vov * p.lambda;
  }
  e.gmb = e.gm * dvth_dvsb;
  return e;
}

MosLinear linearize_mosfet(const MosParams& p, double vg, double vd, double vs,
                           double vb) noexcept {
  // PMOS: evaluate the mirrored NMOS problem; the current flips sign while
  // the partials w.r.t. absolute voltages keep their sign (double negation).
  const double sign = (p.type == MosType::kPmos) ? -1.0 : 1.0;
  double eg = sign * vg, ed = sign * vd, es = sign * vs, eb = sign * vb;

  const bool swapped = ed < es;
  if (swapped) std::swap(ed, es);

  const MosEval e = eval_nmos_forward(p, eg - es, ed - es, es - eb);

  // Partials of the forward current (drain->source in forward orientation)
  // w.r.t. the mirrored terminal voltages.
  double gg = e.gm;
  double gd = e.gds;
  double gs = -(e.gm + e.gds + e.gmb);
  double gb = e.gmb;
  double ids = e.ids;
  if (swapped) {
    // Actual channel current is the negated forward current; the drain and
    // source partials exchange roles.
    ids = -ids;
    gg = -gg;
    gb = -gb;
    std::swap(gd, gs);
    gd = -gd;
    gs = -gs;
  }
  MosLinear lin;
  lin.g_g = gg;
  lin.g_d = gd;
  lin.g_s = gs;
  lin.g_b = gb;
  const double i_actual = sign < 0 ? -ids : ids;
  lin.i0 = i_actual - (gg * vg + gd * vd + gs * vs + gb * vb);
  return lin;
}

}  // namespace vppstudy::circuit
