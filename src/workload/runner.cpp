#include "workload/runner.hpp"

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"

namespace vppstudy::workload {

using common::Error;

common::Expected<RunResult> run_trace(softmc::Session& session,
                                      memctrl::MemoryController& controller,
                                      TraceGenerator& gen,
                                      std::uint64_t request_count,
                                      const dram::EnergyModel& energy_model) {
  RunResult result;
  std::vector<double> latencies;
  latencies.reserve(request_count);

  const double start_ns = session.clock_ns();
  const auto stats_before = session.module().stats();

  for (std::uint64_t i = 0; i < request_count; ++i) {
    const memctrl::Request req = gen.next();
    const double t0 = session.clock_ns();
    auto response = controller.execute(req);
    if (!response) {
      return std::move(response).error().with_context(
          "workload request " + std::to_string(i));
    }
    latencies.push_back(session.clock_ns() - t0);
  }

  result.requests = request_count;
  result.mean_latency_ns = stats::mean(latencies);
  result.p99_latency_ns = stats::percentile(latencies, 99.0);
  result.elapsed_ms = (session.clock_ns() - start_ns) / 1e6;
  result.ecc_corrections = controller.stats().ecc_corrections;
  result.ecc_uncorrectable = controller.stats().ecc_uncorrectable;

  // Energy over this window only: difference the module counters.
  dram::ModuleStats delta = session.module().stats();
  delta.activates -= stats_before.activates;
  delta.reads -= stats_before.reads;
  delta.writes -= stats_before.writes;
  delta.refreshes -= stats_before.refreshes;
  result.energy = energy_model.account(delta, session.vpp(),
                                       (session.clock_ns() - start_ns) / 1e9);
  return result;
}

}  // namespace vppstudy::workload
