#include "workload/trace.hpp"

namespace vppstudy::workload {

const char* trace_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kSequential: return "sequential";
    case TraceKind::kRandom: return "random";
    case TraceKind::kHotRows: return "hot-rows";
    case TraceKind::kHammer: return "hammer";
  }
  return "?";
}

TraceGenerator::TraceGenerator(TraceConfig config)
    : config_(config), rng_(config.seed) {}

memctrl::Request TraceGenerator::next() {
  memctrl::Request req;
  req.kind = rng_.uniform() < config_.read_fraction
                 ? memctrl::Request::Kind::kRead
                 : memctrl::Request::Kind::kWrite;
  if (req.kind == memctrl::Request::Kind::kWrite) {
    for (auto& b : req.data) b = static_cast<std::uint8_t>(rng_.next());
  }

  switch (config_.kind) {
    case TraceKind::kSequential: {
      const std::uint64_t i = counter_++;
      req.address.column =
          static_cast<std::uint32_t>(i % dram::kColumnsPerRow);
      req.address.row = static_cast<std::uint32_t>(
          (i / dram::kColumnsPerRow) % config_.rows);
      req.address.bank = static_cast<std::uint32_t>(
          (i / (static_cast<std::uint64_t>(dram::kColumnsPerRow) *
                config_.rows)) %
          config_.banks);
      break;
    }
    case TraceKind::kRandom:
      req.address.bank = static_cast<std::uint32_t>(rng_.bounded(config_.banks));
      req.address.row = static_cast<std::uint32_t>(rng_.bounded(config_.rows));
      req.address.column = static_cast<std::uint32_t>(
          rng_.bounded(dram::kColumnsPerRow));
      break;
    case TraceKind::kHotRows: {
      req.address.bank = 0;
      if (rng_.uniform() < 0.9) {
        req.address.row = static_cast<std::uint32_t>(
            8 + rng_.bounded(config_.hot_rows));
      } else {
        req.address.row =
            static_cast<std::uint32_t>(rng_.bounded(config_.rows));
      }
      req.address.column = static_cast<std::uint32_t>(
          rng_.bounded(dram::kColumnsPerRow));
      break;
    }
    case TraceKind::kHammer: {
      // Double-sided pattern in logical space around the victim; the
      // controller's policy sees these as ordinary row activations.
      req.kind = memctrl::Request::Kind::kRead;
      req.address.bank = 0;
      req.address.row =
          (counter_++ % 2 == 0) ? config_.hammer_row - 1 : config_.hammer_row + 1;
      req.address.column = 0;
      break;
    }
  }
  return req;
}

}  // namespace vppstudy::workload
