// Drives a trace through the memory controller and collects latency and
// energy statistics (the performance axis of section 8's Pareto analysis).
#pragma once

#include <cstdint>

#include "common/expected.hpp"
#include "dram/energy.hpp"
#include "memctrl/controller.hpp"
#include "workload/trace.hpp"

namespace vppstudy::workload {

struct RunResult {
  std::uint64_t requests = 0;
  double mean_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double elapsed_ms = 0.0;
  dram::EnergyBreakdown energy;  ///< over the run window, at the run's VPP
  std::uint64_t ecc_corrections = 0;
  std::uint64_t ecc_uncorrectable = 0;

  [[nodiscard]] double energy_per_request_uj() const noexcept {
    return requests == 0 ? 0.0 : energy.total_mj() * 1000.0 / requests;
  }
};

/// Execute `request_count` requests from `gen` through `controller`, then
/// account energy from the module's stats at the session's current VPP.
[[nodiscard]] common::Expected<RunResult> run_trace(
    softmc::Session& session, memctrl::MemoryController& controller,
    TraceGenerator& gen, std::uint64_t request_count,
    const dram::EnergyModel& energy_model = dram::EnergyModel{});

}  // namespace vppstudy::workload
