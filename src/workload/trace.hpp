// Synthetic access-trace generators for driving the memory controller:
// the workloads behind the performance side of the paper's section 8
// trade-off discussion (plus an adversarial tenant for security runs).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "dram/types.hpp"
#include "memctrl/controller.hpp"

namespace vppstudy::workload {

enum class TraceKind {
  kSequential,    ///< streaming: walks rows/columns in order
  kRandom,        ///< uniform random addresses
  kHotRows,       ///< 90% of accesses to a small hot set (row-buffer friendly)
  kHammer,        ///< adversarial: alternates two aggressor rows
};

[[nodiscard]] const char* trace_name(TraceKind kind) noexcept;

struct TraceConfig {
  TraceKind kind = TraceKind::kRandom;
  std::uint32_t banks = dram::kBanksPerRank;
  std::uint32_t rows = 4096;
  double read_fraction = 0.7;
  std::uint32_t hot_rows = 8;      ///< kHotRows: size of the hot set
  std::uint32_t hammer_row = 1500; ///< kHammer: victim whose neighbors alternate
  std::uint64_t seed = 0x77a0e;
};

/// Deterministic request stream.
class TraceGenerator {
 public:
  explicit TraceGenerator(TraceConfig config);

  [[nodiscard]] memctrl::Request next();
  [[nodiscard]] const TraceConfig& config() const noexcept { return config_; }

 private:
  TraceConfig config_;
  common::Xoshiro256 rng_;
  std::uint64_t counter_ = 0;
};

}  // namespace vppstudy::workload
