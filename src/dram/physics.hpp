// Mechanistic cell physics: how VPP, hammer counts, elapsed time, timing
// violations, and data patterns turn into bit flips.
//
// The model follows the error mechanisms the paper names (section 2.3/2.4):
//
//  * Disturbance per aggressor activation combines electron injection/drift
//    (~linear in VPP) and capacitive crosstalk (~quadratic in VPP), so
//    lowering VPP weakens hammering -> HCfirst rises, BER falls (Obsv. 1/4).
//  * Charge restoration saturates at min(VDD, VPP - Vth) (Obsv. 10); the
//    restoration deficit at low VPP *opposes* the disturbance reduction and
//    produces the minority of rows whose vulnerability worsens (Obsv. 2/5).
//  * Retention: exponential leakage with lognormal cell time constants; the
//    restoration deficit shortens effective retention (Obsv. 12).
//  * Activation latency: a weaker wordline overdrive slows charge sharing
//    (Obsv. 7-9; cross-checked against src/circuit's transistor-level sim).
//
// Every per-row / per-cell quantity is a pure function of (module seed,
// coordinates), so flips are at consistently predictable locations.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/profile.hpp"

namespace vppstudy::dram {

/// Per-vendor behavioral coefficients (calibrated against the per-vendor
/// spreads of Figs. 4, 6, 10b; see DESIGN.md section 5).
struct VendorCurve {
  double shape_gamma = 1.2;        ///< curvature of the VPP sensitivity shape
  double s_jitter_sigma = 0.12;    ///< per-row spread of HCfirst sensitivity
  double inversion_fraction = 0.2; ///< rows with a restoration-penalty term
  double inversion_scale = 0.25;   ///< strength of that penalty
  double alpha_jitter_sigma = 0.06;///< per-row spread of the BER exponent
  double row_strength_sigma = 0.35;///< spread of per-row HCfirst above the min
  double trcd_row_sigma_ns = 0.25; ///< row-to-row tRCDmin offset
  double trcd_cell_sigma_ns = 0.12;///< cell-level tRCDmin spread within a row
  double ret_sigma_log = 1.0;      ///< per-cell lognormal retention sigma
  double ret_vpp_kappa = 0.5;      ///< retention sensitivity to VPP deficit
  double ret_mu_jitter = 0.25;     ///< per-row retention median jitter
  double pattern_spread = 0.10;    ///< WCDP tilt magnitude on HCfirst
};

[[nodiscard]] const VendorCurve& vendor_curve(Manufacturer mfr) noexcept;

/// Analytic VPP-limited restored cell voltage: fixed point of
/// v = min(VDD, VPP - Vth(v)) with the same access-transistor constants as
/// the circuit model (cross-checked in tests against
/// circuit::steady_state_cell_voltage).
[[nodiscard]] double analytic_restored_voltage(double vpp_v) noexcept;

/// Normalized restoration deficit in [0,1): 0 when the cell restores to full
/// VDD (VPP >= ~2.0V), growing as VPP drops.
[[nodiscard]] double restore_deficit(double vpp_v) noexcept;

class CellPhysics {
 public:
  explicit CellPhysics(const ModuleProfile& profile);
  /// Ablation-study constructor: override the vendor behavioral curve
  /// (e.g. zero the inversion terms to show Obsv. 2/5 vanish without the
  /// restoration-penalty mechanism).
  CellPhysics(const ModuleProfile& profile, const VendorCurve& curve);

  /// Deterministic per-row parameters.
  struct RowParams {
    double hc_first = 30e3;    ///< weakest-cell flip threshold at 2.5V
    double alpha_nom = 2.0;    ///< per-cell flip-probability exponent at 2.5V
    double s = 0.0;            ///< VPP sensitivity scale (row-specific)
    double penalty_w = 0.0;    ///< restoration-penalty weight (0 for most rows)
    double trcd_offset_ns = 0.0;
    double ret_mu = 4.1;       ///< ln(median retention seconds) at 80C/2.5V
    /// Per-row temperature coefficient of the RowHammer threshold. Prior
    /// work (Orosa+ MICRO'21, cited as [12]) shows the interaction is
    /// row-dependent with both signs; the paper defers the three-way
    /// VPP/temperature study to future work (section 7) -- this term lets
    /// the bench suite explore it.
    double temp_sens = 0.0;
  };
  [[nodiscard]] RowParams row_params(std::uint32_t bank,
                                     std::uint32_t phys_row) const;

  /// Normalized VPP sensitivity shape: 0 at nominal VPP, 1 at this module's
  /// VPPmin, smooth in between.
  [[nodiscard]] double sensitivity_shape(double vpp_v) const noexcept;

  /// Row-level HCfirst multiplier M_row(vpp) (1 at nominal VPP).
  [[nodiscard]] double hammer_multiplier(const RowParams& rp,
                                         double vpp_v) const noexcept;

  /// Effective flip-probability exponent at a VPP level (the BER-vs-HC slope
  /// steepens/flattens slightly with VPP so that both HCfirst and BER anchors
  /// of Table 3 are hit; see DESIGN.md).
  [[nodiscard]] double alpha_at(const RowParams& rp,
                                double vpp_v) const noexcept;

  /// Data-pattern multiplier on hc0 (>= 1; the WCDP is the pattern with the
  /// smallest factor). `signature` is the row's fill byte; `vpp_bucket`
  /// introduces the rare WCDP flips across VPP the paper reports (~2.4% of
  /// rows, footnote 9).
  [[nodiscard]] double pattern_factor(std::uint32_t bank, std::uint32_t row,
                                      std::uint8_t signature,
                                      int vpp_bucket) const;

  /// Data-pattern multiplier on *effective elapsed time* for retention
  /// (>= 1): some patterns couple more leakage into a row's cells, so the
  /// retention WCDP is the pattern with the largest factor (section 4.4).
  [[nodiscard]] double pattern_retention_factor(std::uint32_t bank,
                                                std::uint32_t row,
                                                std::uint8_t signature) const;

  /// Per-cell flip probability after `hc` activations of *each* of the two
  /// physical neighbors, at wordline voltage `vpp_v` and chip temperature
  /// `temp_c`, for cells whose stored value leaves them chargeable (the
  /// vulnerable half). Tests run at 50C (section 4.1), where the
  /// temperature term vanishes.
  [[nodiscard]] double hammer_flip_probability(
      const RowParams& rp, double hc, double vpp_v, double pattern_factor,
      double restore_q, double temp_c = 50.0) const noexcept;

  /// Row-level HCfirst multiplier from temperature alone (1 at the 50C
  /// characterization setpoint; direction is row-dependent).
  [[nodiscard]] double temperature_multiplier(const RowParams& rp,
                                              double temp_c) const noexcept;

  /// Disturbance weight of one aggressor activation as a function of how
  /// long the aggressor row stays open ([12] characterizes this "aggressor
  /// on-time" axis; RowPress later weaponized it). 1.0 at the nominal tRAS
  /// of 32ns, growing logarithmically with longer open times.
  [[nodiscard]] double on_time_factor(double on_ns) const noexcept;

  /// Per-cell probability that leakage flips a charged cell after `dt_s`
  /// seconds without refresh. `restore_q` in (0,1] scales the initial charge
  /// (1 = fully restored at the given VPP).
  [[nodiscard]] double retention_flip_probability(const RowParams& rp,
                                                  double dt_s, double vpp_v,
                                                  double temp_c,
                                                  double restore_q) const noexcept;

  /// Row-level mean of the minimum reliable activation latency at a VPP.
  [[nodiscard]] double trcd_row_mean_ns(const RowParams& rp,
                                        double vpp_v) const noexcept;

  /// Probability that a single cell misreads when accessed `trcd_ns` after
  /// ACT (cell-level spread around the row mean).
  [[nodiscard]] double trcd_fail_probability(const RowParams& rp,
                                             double trcd_ns,
                                             double vpp_v) const noexcept;

  /// Bound on the per-read timing jitter applied by the device model:
  /// 0.04 * normal_at(...), and inverse_normal_cdf clamps its input to
  /// [1e-300, 1-1e-16] so |draw| < 37.5 -> |jitter| < 1.5ns. 2ns is a
  /// strict upper bound on any representable draw.
  static constexpr double kTrcdJitterBoundNs = 2.0;

  /// Conservative fast check for the read hot path: true when a read issued
  /// `trcd_ns` after ACT cannot fail *any* cell even under the most extreme
  /// representable jitter draw -- i.e. trcd_fail_probability at
  /// (trcd_ns - kTrcdJitterBoundNs) is far below the negligible-probability
  /// floor (z <= -7.5 => p < 4e-14 < 1e-12). Callers may then skip the
  /// jitter draw and the failure evaluation entirely; behavior is
  /// bit-identical because the skipped block could not have flipped a bit.
  /// `row_mean_ns` is trcd_row_mean_ns(rp, vpp) (cacheable per row x VPP).
  [[nodiscard]] bool trcd_certainly_safe(double row_mean_ns,
                                         double trcd_ns) const noexcept {
    const double z =
        (row_mean_ns - (trcd_ns - kTrcdJitterBoundNs)) /
            curve_.trcd_cell_sigma_ns -
        4.0;
    return z <= -7.5;
  }

  /// Fraction of full restoration achieved when a row stays open for
  /// `open_ns` before precharge (tRAS violations cause partial restore).
  [[nodiscard]] double restore_fraction(double open_ns,
                                        double vpp_v) const noexcept;

  /// Stable per-cell uniform draw for a named purpose.
  enum class CellDraw : std::uint64_t {
    kHammer = 1,
    kRetention = 2,
    kTrcd = 3,
    kPolarity = 4,
  };
  [[nodiscard]] double cell_uniform(std::uint32_t bank, std::uint32_t row,
                                    std::uint32_t bit, CellDraw what) const;
  /// Batched form of cell_uniform over a contiguous bit range:
  /// out[i] = cell_uniform(bank, row, bit0 + i, what) for i in [0, n).
  /// Dispatches to the common/simd.hpp walk kernels (bit-exact vs the
  /// scalar per-bit calls by construction).
  void cell_uniform_batch(std::uint32_t bank, std::uint32_t row,
                          std::uint32_t bit0, std::uint32_t n, CellDraw what,
                          double* out) const;
  /// True-cell / anti-cell layout: the stored value that corresponds to a
  /// *charged* capacitor for this cell.
  [[nodiscard]] bool charged_value(std::uint32_t bank, std::uint32_t row,
                                   std::uint32_t bit) const;
  /// One 64-bit polarity word per column: bit i of word w is
  /// charged_value(bank, row, w*64 + i). A per-row cache of these words
  /// turns the per-bit polarity hash into a bit test (dram::Module caches
  /// them in its RowState; see docs/MODEL.md "Sensing hot path").
  [[nodiscard]] std::vector<std::uint64_t> charged_words(
      std::uint32_t bank, std::uint32_t row) const;

  /// Default depth of a row flip index (see build_flip_index).
  static constexpr std::uint32_t kFlipIndexTopK = 512;
  /// Conservative per-cell probability below which a freshly built
  /// default-depth index is expected to cover the draw: the K-th largest of
  /// N uniforms concentrates at 1 - K/N, so half of K leaves ample margin.
  /// Callers check RowFlipIndex::covers() for the exact per-row answer.
  static constexpr double kFlipIndexSafeP =
      static_cast<double>(kFlipIndexTopK) / (2.0 * kBitsPerRow);

  /// Sorted weak-tail index of one row's per-cell uniforms for one draw
  /// kind. Because cell_uniform is a pure function of its coordinates, the
  /// set {bit : uniform > 1 - p} -- exactly the cells a probability-p flip
  /// evaluation selects -- is a prefix of the row's uniforms sorted
  /// descending. The index retains the top-K of them; any p with
  /// 1 - p >= floor_u is answered in O(actual flips) instead of a
  /// 65536-bit scan.
  struct RowFlipIndex {
    struct Entry {
      double u = 0.0;          ///< the cell's uniform draw
      std::uint32_t bit = 0;   ///< bit index within the row
    };
    std::vector<Entry> cells;  ///< descending by u
    double floor_u = 0.0;      ///< smallest uniform retained

    /// True when the prefix {u > 1 - p} is fully contained in `cells`.
    [[nodiscard]] bool covers(double p) const noexcept {
      return !cells.empty() && (1.0 - p) >= floor_u;
    }
  };
  [[nodiscard]] RowFlipIndex build_flip_index(
      std::uint32_t bank, std::uint32_t row, CellDraw what,
      std::uint32_t top_k = kFlipIndexTopK) const;

  /// Retention-weak cells of a row (Obsv. 14/15): bit index plus the cell's
  /// retention time at VPPmin, placed in distinct 64-bit words.
  struct WeakCell {
    std::uint32_t bit = 0;
    double t_ret_at_vppmin_s = 0.0;
  };
  [[nodiscard]] std::vector<WeakCell> weak_cells(std::uint32_t bank,
                                                 std::uint32_t row) const;

  /// Retention-time multiplier of weak cells at `vpp_v`, relative to their
  /// specified time at VPPmin (> 1 at nominal VPP: weak cells only cross the
  /// 64ms boundary when VPP is reduced, Obsv. 13).
  [[nodiscard]] double weak_cell_ret_scale(double vpp_v) const noexcept;

  [[nodiscard]] const ModuleProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] const VendorCurve& curve() const noexcept { return curve_; }

  /// Module-level anchors derived from the profile (exposed for tests).
  [[nodiscard]] double alpha_nominal_module() const noexcept { return alpha_nom_mod_; }
  [[nodiscard]] double alpha_vppmin_module() const noexcept { return alpha_min_mod_; }
  [[nodiscard]] double log_m_module() const noexcept { return log_m_mod_; }

 private:
  ModuleProfile profile_;
  VendorCurve curve_;
  double alpha_nom_mod_ = 2.0;  ///< ln(N*BER)/ln(300K/HCfirst) at 2.5V
  double alpha_min_mod_ = 2.0;  ///< same anchored at VPPmin
  double log_m_mod_ = 0.0;      ///< ln(HCfirst@VPPmin / HCfirst@2.5V)
  double mu_mod_ = 0.0;         ///< per-row mean sensitivity at VPPmin
  double gap_mod_ = 0.0;        ///< mu_mod_ - log_m_mod_ (penalty tail depth)
};

}  // namespace vppstudy::dram
