#include "dram/energy.hpp"

#include "common/units.hpp"

namespace vppstudy::dram {

double EnergyModel::vpp_scale(double vpp_v) const noexcept {
  const double r = vpp_v / common::kNominalVppV;
  return r * r;
}

EnergyBreakdown EnergyModel::account(const ModuleStats& stats, double vpp_v,
                                     double elapsed_s) const noexcept {
  EnergyBreakdown e;
  const auto acts = static_cast<double>(stats.activates);
  const auto reads = static_cast<double>(stats.reads);
  const auto writes = static_cast<double>(stats.writes);
  const auto refs = static_cast<double>(stats.refreshes);

  // E = Q * V; charges are specified in nC at their rail voltage, results
  // in mJ (nC * V = nJ; /1e6 = mJ).
  e.vdd_mj = (acts * params_.act_pre_vdd_nc + reads * params_.rd_vdd_nc +
              writes * params_.wr_vdd_nc + refs * params_.ref_vdd_nc) *
             params_.vdd_v * 1e-6;

  // Pump charge Q = C_wordline * VPP scales linearly with VPP and the energy
  // Q * VPP quadratically; vpp_scale() is that V^2 factor vs nominal.
  e.vpp_mj = (acts * params_.act_vpp_nc_at_nominal +
              refs * params_.ref_vpp_nc_at_nominal) *
             common::kNominalVppV * 1e-6 * vpp_scale(vpp_v);

  // Static power: mW * s = mJ.
  e.static_mj = (params_.static_vdd_mw +
                 params_.static_vpp_mw_at_nominal * vpp_scale(vpp_v)) *
                elapsed_s;
  return e;
}

}  // namespace vppstudy::dram
