// DRAM energy accounting split by rail. DDR4 exposes VDD and VPP
// separately, and the wordline pump's draw (the IPP currents of the
// datasheet) scales with the pumped voltage -- which is exactly why the
// paper argues VPP scaling comes at "a fixed hardware cost for a given
// power budget" (section 3). This model turns ModuleStats into energy
// numbers so benches can report the power side of the trade-off.
//
// Current values follow DDR4-2400 x8 datasheet IDD/IPP specs
// (order-of-magnitude; see e.g. Micron MT40A docs).
#pragma once

#include "dram/module.hpp"

namespace vppstudy::dram {

struct EnergyModelParams {
  double vdd_v = 1.2;
  // Per-operation charge drawn from VDD [nC] (core + IO).
  double act_pre_vdd_nc = 2.2;   ///< one ACT+PRE cycle
  double rd_vdd_nc = 1.3;        ///< one burst read
  double wr_vdd_nc = 1.4;        ///< one burst write
  double ref_vdd_nc = 28.0;      ///< one REF command (8K rows / 8192 REFs)
  // Per-activation charge drawn from the VPP pump at nominal 2.5V [nC];
  // scales ~quadratically with VPP (pump charges the wordline capacitance
  // to VPP through a VPP-proportional transfer).
  double act_vpp_nc_at_nominal = 0.48;
  double ref_vpp_nc_at_nominal = 6.0;
  // Static draw [mW] per rail.
  double static_vdd_mw = 45.0;
  double static_vpp_mw_at_nominal = 4.0;
};

struct EnergyBreakdown {
  double vdd_mj = 0.0;      ///< dynamic energy from the VDD rail [mJ]
  double vpp_mj = 0.0;      ///< dynamic energy from the VPP rail [mJ]
  double static_mj = 0.0;   ///< static energy over the elapsed window [mJ]

  [[nodiscard]] double total_mj() const noexcept {
    return vdd_mj + vpp_mj + static_mj;
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyModelParams params = {}) : params_(params) {}

  /// Energy consumed by the operations in `stats` at wordline voltage
  /// `vpp_v`, over `elapsed_s` of wall-clock (for the static component).
  [[nodiscard]] EnergyBreakdown account(const ModuleStats& stats,
                                        double vpp_v,
                                        double elapsed_s) const noexcept;

  /// VPP-rail scale factor relative to nominal (quadratic in voltage).
  [[nodiscard]] double vpp_scale(double vpp_v) const noexcept;

  [[nodiscard]] const EnergyModelParams& params() const noexcept {
    return params_;
  }

 private:
  EnergyModelParams params_;
};

}  // namespace vppstudy::dram
