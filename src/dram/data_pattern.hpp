// The six data patterns used throughout the study (section 4.1): row stripe
// (0xFF / 0x00), checkerboard (0xAA / 0x55), and thick checker (0xCC / 0x33).
// For a given victim pattern, aggressor rows are initialized with its bitwise
// inverse (Alg. 1).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace vppstudy::dram {

enum class DataPattern : std::uint8_t {
  kAllOnes = 0,     // 0xFF
  kAllZeros = 1,    // 0x00
  kCheckerAA = 2,   // 0xAA
  kChecker55 = 3,   // 0x55
  kThickCC = 4,     // 0xCC
  kThick33 = 5,     // 0x33
};

inline constexpr std::array<DataPattern, 6> kAllPatterns = {
    DataPattern::kAllOnes,  DataPattern::kAllZeros, DataPattern::kCheckerAA,
    DataPattern::kChecker55, DataPattern::kThickCC, DataPattern::kThick33,
};

/// The repeating fill byte of a pattern.
[[nodiscard]] constexpr std::uint8_t pattern_byte(DataPattern p) noexcept {
  switch (p) {
    case DataPattern::kAllOnes: return 0xFF;
    case DataPattern::kAllZeros: return 0x00;
    case DataPattern::kCheckerAA: return 0xAA;
    case DataPattern::kChecker55: return 0x55;
    case DataPattern::kThickCC: return 0xCC;
    case DataPattern::kThick33: return 0x33;
  }
  return 0;
}

/// The pattern whose fill byte is the bitwise inverse (used for aggressors).
[[nodiscard]] constexpr DataPattern inverse_pattern(DataPattern p) noexcept {
  switch (p) {
    case DataPattern::kAllOnes: return DataPattern::kAllZeros;
    case DataPattern::kAllZeros: return DataPattern::kAllOnes;
    case DataPattern::kCheckerAA: return DataPattern::kChecker55;
    case DataPattern::kChecker55: return DataPattern::kCheckerAA;
    case DataPattern::kThickCC: return DataPattern::kThick33;
    case DataPattern::kThick33: return DataPattern::kThickCC;
  }
  return p;
}

[[nodiscard]] constexpr std::string_view pattern_name(DataPattern p) noexcept {
  switch (p) {
    case DataPattern::kAllOnes: return "0xFF";
    case DataPattern::kAllZeros: return "0x00";
    case DataPattern::kCheckerAA: return "0xAA";
    case DataPattern::kChecker55: return "0x55";
    case DataPattern::kThickCC: return "0xCC";
    case DataPattern::kThick33: return "0x33";
  }
  return "?";
}

/// A full row image for a pattern.
[[nodiscard]] std::vector<std::uint8_t> pattern_row(DataPattern p,
                                                    std::size_t bytes);

/// Classify a row image back to a canonical pattern via its fill byte;
/// returns the byte value itself (the device physics keys pattern-dependent
/// coupling off this signature; see CellPhysics::pattern_factor).
[[nodiscard]] std::uint8_t pattern_signature(
    std::span<const std::uint8_t> row) noexcept;

}  // namespace vppstudy::dram
