// Per-module characterization profile. One of these exists for each of the
// 30 DIMMs of Table 3 (src/chips/module_db.cpp); it carries both the public
// catalog data (density, organization, dates) and the calibration anchors
// the cell physics uses so the harness re-measures the paper's numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dram/mapping.hpp"
#include "dram/types.hpp"

namespace vppstudy::dram {

/// A class of retention-weak rows (Obsv. 15 / Fig. 11): a fraction of rows
/// carries `words_affected` weak cells whose retention time at VPPmin falls
/// just below a refresh-window boundary. Weak cells land in *distinct* 64-bit
/// words (which is why SECDED repairs them, Obsv. 14).
struct RetentionWeakClass {
  double row_fraction = 0.0;       ///< fraction of rows in this class
  std::uint32_t words_affected = 0;///< weak cells (= erroneous words) per row
  /// Retention time band of the weak cells at VPPmin [ms]. Choose inside
  /// (32, 64] to populate Fig. 11a, (64, 128] for Fig. 11b.
  double t_ret_lo_ms = 0.0;
  double t_ret_hi_ms = 0.0;
};

struct ModuleProfile {
  // --- Catalog data (Tables 1 and 3) ---------------------------------------
  std::string name;        ///< e.g. "A0"
  std::string dimm_model;  ///< e.g. "MTA18ASF2G72PZ-2G3B1QK"
  Manufacturer mfr = Manufacturer::kMfrA;
  int num_chips = 8;
  int density_gbit = 8;    ///< per-chip density
  int org_width = 8;       ///< x4 / x8
  std::string die_revision;///< "-" when the DIMM vendor scrubbed it
  std::string mfr_date;    ///< week-year, "-" when unknown
  int frequency_mts = 2400;

  // --- Geometry -------------------------------------------------------------
  std::uint32_t rows_per_bank = 65536;
  std::uint32_t banks = kBanksPerRank;
  /// Post-manufacturing row repairs (fused-out rows remapped to spares);
  /// section 4.2 cites these as a reason internal mappings must be
  /// reverse-engineered.
  std::vector<RowRepair> row_repairs;

  // --- RowHammer calibration anchors (Table 3) -------------------------------
  double hc_first_nominal = 30e3;  ///< module-min HCfirst at VPP = 2.5V
  double ber_nominal = 1e-3;       ///< worst-row BER at HC=300K, VPP = 2.5V
  double vppmin_v = 1.6;           ///< lowest VPP with working communication
  double hc_first_vppmin = 32e3;   ///< module-min HCfirst at VPPmin
  double ber_vppmin = 0.8e-3;      ///< worst-row BER at HC=300K at VPPmin
  double vpp_rec_v = 2.5;          ///< recommended VPP (Table 3, VPP_Rec)

  // --- Row activation latency model (Fig. 7) --------------------------------
  double trcd0_ns = 11.0;          ///< module tRCDmin at nominal VPP
  double trcd_vpp_slope_ns = 1.0;  ///< growth toward VPPmin (x sensitivity shape)

  // --- Retention model (Figs. 10/11) ----------------------------------------
  /// Median of ln(retention seconds) across normal cells at 80C, VPP=2.5V.
  double ret_mu_log_s = 4.1;
  RetentionWeakClass weak_64ms;    ///< rows failing first at tREFW = 64ms
  RetentionWeakClass weak_64ms_b;  ///< secondary 64ms class (Mfr. B's 116-word rows)
  RetentionWeakClass weak_128ms;   ///< rows failing first at tREFW = 128ms

  // --- Feature flags ----------------------------------------------------------
  bool has_trr = true;       ///< on-die TRR present (inert without REF)
  bool has_ondie_ecc = false;///< none of the tested modules has on-die ECC

  /// Deterministic seed for all per-cell parameter synthesis.
  std::uint64_t seed = 1;

  [[nodiscard]] int total_chips() const noexcept { return num_chips; }
};

}  // namespace vppstudy::dram
