// DDR4 mode registers (JESD79-4 MR0-MR6), modeled for the fields that
// matter to this study's physics and methodology:
//   * MR0: CAS latency / burst length (decoded, informational),
//   * MR2: CAS write latency,
//   * MR4: refresh options -- temperature-controlled refresh and the 2x
//          fine-granularity refresh mode (footnote 7: DDR4 doubles the
//          refresh rate at >= 85C),
//   * MR6 (vendor space here): the TRR enable the paper's methodology
//          sidesteps by never issuing REF.
#pragma once

#include <cstdint>

#include "common/expected.hpp"

namespace vppstudy::dram {

enum class RefreshMode : std::uint8_t {
  kNormal1x = 0,  ///< every cell refreshed once per tREFW
  kFgr2x = 1,     ///< fine-granularity 2x: half the stripe, twice the rate
};

struct ModeRegisters {
  // MR0
  int cas_latency = 17;
  int burst_length = 8;
  // MR2
  int cas_write_latency = 12;
  // MR4
  RefreshMode refresh_mode = RefreshMode::kNormal1x;
  bool temp_controlled_refresh = false;
  // Vendor space
  bool trr_enabled = true;

  /// Effective refresh-rate multiplier at a given chip temperature:
  /// FGR 2x always doubles; temperature-controlled refresh doubles at the
  /// 85C boundary (footnote 7 / JESD79-4).
  [[nodiscard]] double refresh_rate_multiplier(double temp_c) const noexcept {
    double mult = refresh_mode == RefreshMode::kFgr2x ? 2.0 : 1.0;
    if (temp_controlled_refresh && temp_c >= 85.0) mult *= 2.0;
    return mult;
  }
};

/// Decode a raw MRS operand for a register index (0, 2 or 4 supported; the
/// vendor TRR bit rides on index 6). Unknown indices are rejected.
[[nodiscard]] common::Expected<ModeRegisters> apply_mrs(
    ModeRegisters current, int mr_index, std::uint32_t operand);

/// Encode the supported registers back into raw operands (round-trip form).
[[nodiscard]] std::uint32_t encode_mr0(const ModeRegisters& mr) noexcept;
[[nodiscard]] std::uint32_t encode_mr2(const ModeRegisters& mr) noexcept;
[[nodiscard]] std::uint32_t encode_mr4(const ModeRegisters& mr) noexcept;
[[nodiscard]] std::uint32_t encode_mr6(const ModeRegisters& mr) noexcept;

}  // namespace vppstudy::dram
