#include "dram/trr.hpp"

#include <algorithm>

namespace vppstudy::dram {

TrrEngine::TrrEngine(std::uint32_t banks, Options options)
    : options_(options), tables_(banks) {}

void TrrEngine::observe_activate(std::uint32_t bank,
                                 std::uint32_t physical_row) {
  observe_activates(bank, physical_row, 1);
}

void TrrEngine::observe_activates(std::uint32_t bank,
                                  std::uint32_t physical_row,
                                  std::uint64_t count) {
  if (bank >= tables_.size() || count == 0) return;
  counters_.observed_acts += count;
  auto& table = tables_[bank];
  for (auto& e : table) {
    if (e.row == physical_row) {
      e.count += count;
      counters_.tracked_acts += count;
      return;
    }
  }
  if (table.size() < options_.table_entries) {
    table.push_back({physical_row, count});
    counters_.tracked_acts += count;
    ++counters_.insertions;
    return;
  }
  // Misra-Gries: decrement everyone by the smaller of (count, min count);
  // a displaced entry makes room for the newcomer.
  auto min_it = std::min_element(
      table.begin(), table.end(),
      [](const Entry& a, const Entry& b) { return a.count < b.count; });
  if (count > min_it->count) {
    const std::uint64_t dec = min_it->count;
    for (auto& e : table) e.count -= std::min(e.count, dec);
    *min_it = {physical_row, count - dec};
    counters_.tracked_acts += count - dec;
    counters_.displaced_acts += dec;
    ++counters_.insertions;
    ++counters_.evictions;
  } else {
    for (auto& e : table) e.count -= std::min(e.count, count);
    counters_.displaced_acts += count;
  }
}

std::optional<TrrEngine::Mitigation> TrrEngine::on_refresh() {
  // Round-robin over banks so a single hot bank cannot starve the others.
  for (std::uint32_t i = 0; i < tables_.size(); ++i) {
    const std::uint32_t bank =
        (refresh_scan_bank_ + i) % static_cast<std::uint32_t>(tables_.size());
    auto& table = tables_[bank];
    auto hot = std::max_element(
        table.begin(), table.end(),
        [](const Entry& a, const Entry& b) { return a.count < b.count; });
    if (hot != table.end() && hot->count >= options_.act_threshold) {
      Mitigation m{bank, hot->row};
      hot->count = 0;
      ++counters_.mitigations;
      refresh_scan_bank_ = (bank + 1) % static_cast<std::uint32_t>(tables_.size());
      return m;
    }
  }
  return std::nullopt;
}

void TrrEngine::reset() {
  for (auto& t : tables_) t.clear();
  refresh_scan_bank_ = 0;
  counters_ = Counters{};
}

}  // namespace vppstudy::dram
