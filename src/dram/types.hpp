// Shared vocabulary types for the DRAM device model.
#pragma once

#include <cstdint>
#include <string>

namespace vppstudy::dram {

/// The three major DRAM manufacturers of the study (Table 1). The paper
/// anonymizes them as Mfr. A/B/C (Micron / Samsung / SK Hynix).
enum class Manufacturer { kMfrA, kMfrB, kMfrC };

[[nodiscard]] inline const char* manufacturer_name(Manufacturer m) noexcept {
  switch (m) {
    case Manufacturer::kMfrA: return "Mfr. A (Micron)";
    case Manufacturer::kMfrB: return "Mfr. B (Samsung)";
    case Manufacturer::kMfrC: return "Mfr. C (SK Hynix)";
  }
  return "?";
}

[[nodiscard]] inline char manufacturer_letter(Manufacturer m) noexcept {
  switch (m) {
    case Manufacturer::kMfrA: return 'A';
    case Manufacturer::kMfrB: return 'B';
    case Manufacturer::kMfrC: return 'C';
  }
  return '?';
}

/// Logical DRAM coordinates as seen over the DDR4 interface.
struct Address {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column = 0;
};

/// Geometry constants of the modeled rank (chips operate in lock-step, so the
/// model works at module granularity; see DESIGN.md).
inline constexpr std::uint32_t kBytesPerRow = 8192;   ///< 8KB rank page
inline constexpr std::uint32_t kBitsPerRow = kBytesPerRow * 8;
inline constexpr std::uint32_t kBytesPerColumn = 8;   ///< one 64-bit word
inline constexpr std::uint32_t kColumnsPerRow = kBytesPerRow / kBytesPerColumn;
inline constexpr std::uint32_t kBanksPerRank = 16;    ///< DDR4 x8: 4 BG x 4

/// DDR4 command identifiers (the subset the study exercises).
enum class CommandKind : std::uint8_t {
  kActivate,
  kPrecharge,
  kPrechargeAll,
  kRead,
  kWrite,
  kRefresh,
  kNop,
};

[[nodiscard]] inline const char* command_name(CommandKind k) noexcept {
  switch (k) {
    case CommandKind::kActivate: return "ACT";
    case CommandKind::kPrecharge: return "PRE";
    case CommandKind::kPrechargeAll: return "PREA";
    case CommandKind::kRead: return "RD";
    case CommandKind::kWrite: return "WR";
    case CommandKind::kRefresh: return "REF";
    case CommandKind::kNop: return "NOP";
  }
  return "?";
}

}  // namespace vppstudy::dram
