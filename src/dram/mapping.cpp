#include "dram/mapping.hpp"

#include <cassert>

namespace vppstudy::dram {

MappingScheme scheme_for(Manufacturer mfr) noexcept {
  switch (mfr) {
    case Manufacturer::kMfrA: return MappingScheme::kBitSwizzle;
    case Manufacturer::kMfrB: return MappingScheme::kMirroredPairs;
    case Manufacturer::kMfrC: return MappingScheme::kBlockInvert;
  }
  return MappingScheme::kIdentity;
}

RowMapping::RowMapping(MappingScheme scheme, std::uint32_t rows) noexcept
    : scheme_(scheme), rows_(rows) {
  assert(rows >= 8 && (rows & (rows - 1)) == 0 && "rows must be a power of 2");
}

RowMapping::RowMapping(MappingScheme scheme, std::uint32_t rows,
                       std::vector<RowRepair> repairs)
    : scheme_(scheme), rows_(rows), repairs_(std::move(repairs)) {
  assert(rows >= 8 && (rows & (rows - 1)) == 0 && "rows must be a power of 2");
  // Drop repairs that do not fit this geometry (tests shrink rows_per_bank
  // after pulling a profile from the catalog).
  std::erase_if(repairs_, [&](const RowRepair& r) {
    return r.logical_row >= rows_ || r.spare_physical >= rows_;
  });
}

namespace {

// Mfr. A style: XOR row bit 3 into bits 1..2. Involutive (applying it twice
// is the identity), which keeps the inverse trivial.
std::uint32_t swizzle(std::uint32_t r) noexcept {
  const std::uint32_t b3 = (r >> 3) & 1u;
  return r ^ (b3 << 1) ^ (b3 << 2);
}

// Mfr. B style: within each block of 4 rows, swap the middle two
// (0,1,2,3 -> 0,2,1,3). Involutive.
std::uint32_t mirror_pairs(std::uint32_t r) noexcept {
  const std::uint32_t low = r & 3u;
  if (low == 1u) return r + 1;
  if (low == 2u) return r - 1;
  return r;
}

// Mfr. C style: invert the low 3 row bits inside odd 1K blocks. Involutive.
std::uint32_t block_invert(std::uint32_t r) noexcept {
  if ((r >> 10) & 1u) return r ^ 7u;
  return r;
}

}  // namespace

std::uint32_t RowMapping::base_transform(std::uint32_t row) const noexcept {
  switch (scheme_) {
    case MappingScheme::kIdentity: return row;
    case MappingScheme::kBitSwizzle: return swizzle(row);
    case MappingScheme::kMirroredPairs: return mirror_pairs(row);
    case MappingScheme::kBlockInvert: return block_invert(row);
  }
  return row;
}

// With base involution B and a repair (L -> spare S), the full map M is B
// with the *outputs* of inputs L and B(S) transposed:
//   M(L)    = S
//   M(B(S)) = B(L)   (the displaced logical row takes the fused-out slot)
//   M(x)    = B(x) otherwise.
// Hence M^-1(S) = L, M^-1(B(L)) = B(S), else M^-1(p) = B(p).

std::uint32_t RowMapping::logical_to_physical(std::uint32_t row) const noexcept {
  assert(row < rows_);
  for (const auto& rep : repairs_) {
    if (row == rep.logical_row) return rep.spare_physical;
    if (row == base_transform(rep.spare_physical)) {
      return base_transform(rep.logical_row);
    }
  }
  return base_transform(row);
}

std::uint32_t RowMapping::physical_to_logical(std::uint32_t row) const noexcept {
  assert(row < rows_);
  for (const auto& rep : repairs_) {
    if (row == rep.spare_physical) return rep.logical_row;
    if (row == base_transform(rep.logical_row)) {
      return base_transform(rep.spare_physical);
    }
  }
  return base_transform(row);
}

RowMapping::Neighbors RowMapping::physical_neighbors(
    std::uint32_t logical_row) const noexcept {
  Neighbors n;
  const std::uint32_t phys = logical_to_physical(logical_row);
  if (phys == 0 || phys + 1 >= rows_) {
    return n;  // physical edge of the bank
  }
  n.below = physical_to_logical(phys - 1);
  n.above = physical_to_logical(phys + 1);
  n.valid = true;
  return n;
}

}  // namespace vppstudy::dram
