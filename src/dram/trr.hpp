// In-DRAM Target Row Refresh (TRR) model. Modern DDR4 chips track frequently
// activated rows and refresh their neighbors during REF commands [36,43].
// Crucially -- and this is how the paper disables it (section 4.1) -- TRR can
// only act when the memory controller issues REF; a refresh-free test window
// renders it inert.
//
// The tracker is a per-bank Misra-Gries frequent-item table, which matches
// the counter-table behavior reverse-engineered from real chips by U-TRR.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace vppstudy::dram {

class TrrEngine {
 public:
  struct Options {
    std::uint32_t table_entries = 8;    ///< tracked aggressor candidates/bank
    std::uint64_t act_threshold = 512;  ///< count needed to earn a mitigation
  };

  /// Tracker-dynamics tally. Patterns are judged on these: a TRR-bypassing
  /// pattern keeps its real aggressors out of the table (high displaced_acts
  /// relative to its activations) or below threshold (zero mitigations), a
  /// benign one is sampled and mitigated. Pure integer sums, so per-pattern
  /// deltas aggregate deterministically.
  struct Counters {
    std::uint64_t observed_acts = 0;   ///< activations seen by the tracker
    std::uint64_t tracked_acts = 0;    ///< acts credited to a table entry
    std::uint64_t displaced_acts = 0;  ///< acts absorbed by decrement/eviction
    std::uint64_t insertions = 0;      ///< rows entering the table
    std::uint64_t evictions = 0;       ///< rows displaced from a full table
    std::uint64_t mitigations = 0;     ///< neighbor refreshes issued on REF
    friend bool operator==(const Counters&, const Counters&) = default;
  };

  TrrEngine(std::uint32_t banks, Options options);

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  /// Called on every ACT.
  void observe_activate(std::uint32_t bank, std::uint32_t physical_row);
  /// Bulk form used by the hammer fast path.
  void observe_activates(std::uint32_t bank, std::uint32_t physical_row,
                         std::uint64_t count);

  /// Called on REF: returns the aggressor row (if any) whose neighbors the
  /// chip decides to refresh now, consuming its counter.
  struct Mitigation {
    std::uint32_t bank = 0;
    std::uint32_t physical_row = 0;
  };
  [[nodiscard]] std::optional<Mitigation> on_refresh();

  void reset();

 private:
  struct Entry {
    std::uint32_t row = 0;
    std::uint64_t count = 0;
  };
  Options options_;
  std::vector<std::vector<Entry>> tables_;  // per bank
  std::uint32_t refresh_scan_bank_ = 0;
  Counters counters_;
};

}  // namespace vppstudy::dram
