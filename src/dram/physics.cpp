#include "dram/physics.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/units.hpp"

namespace vppstudy::dram {

using common::hash_key;
using common::inverse_normal_cdf;
using common::normal_cdf;
using common::to_unit_double;

namespace {

// Parameter-id tags mixed into every hash to keep draws independent.
enum class Tag : std::uint64_t {
  kRowStrength = 0x10,
  kRowSensitivity = 0x11,
  kRowPenaltySelect = 0x12,
  kRowPenaltyWeight = 0x13,
  kRowAlphaJitter = 0x14,
  kRowTrcdOffset = 0x15,
  kRowRetMu = 0x16,
  kPattern = 0x17,
  kPatternVpp = 0x18,
  kWeakRowSelect = 0x19,
  kWeakCellBase = 0x1a,
  kWeakCellBit = 0x1b,
  kWeakCellTime = 0x1c,
  kRowTempSens = 0x1d,
};

// Access-transistor constants shared with circuit::DramCellSimParams'
// defaults; tests cross-check the two implementations.
constexpr double kVt0 = 0.45;
constexpr double kGamma = 0.58;
constexpr double kPhi = 0.8;
constexpr double kVdd = 1.2;

/// Sense threshold of a charged cell as a fraction of full charge: the point
/// below which the sense amplifier reads the wrong value.
constexpr double kChargeThreshold = 0.5;

constexpr double kBerAnchorHammerCount = 300e3;  // section 4.2

/// Number of pattern-vulnerable (chargeable) cells per row: with random
/// true-/anti-cell layout, half the row stores its value as "charged".
constexpr double kVulnerableCellsPerRow = kBitsPerRow / 2.0;

double clamp_alpha(double a) noexcept { return std::clamp(a, 1.2, 6.0); }

/// ln(N * BER) / ln(300K / HCfirst): the flip-probability exponent implied by
/// a (HCfirst, BER@300K) anchor pair (see DESIGN.md section 5). Degenerate
/// anchors (very strong chips like A5 whose BER stays below one flip per row
/// at 300K) clamp to the steep end.
double implied_alpha(double hc_first, double ber) noexcept {
  const double num = std::log(std::max(ber, 1e-12) * kBitsPerRow);
  const double den = std::log(kBerAnchorHammerCount / hc_first);
  if (den <= 1e-9 || num <= 0.0) return 6.0;
  return clamp_alpha(num / den);
}

/// No cell in a row flips below this fraction of the row's weakest-cell
/// threshold: real cells have a hard physical disturbance floor, which is
/// what pins the module-minimum HCfirst at Table 3's value instead of
/// letting an unbounded power-law tail erode it across thousands of rows.
constexpr double kRowFlipFloor = 0.97;

/// Fold of the fixed (seed, bank, row) leading words of every per-cell hash
/// key; the batched walk kernels vary only the trailing (bit, tag) words.
std::uint64_t cell_hash_prefix(std::uint64_t seed, std::uint32_t bank,
                               std::uint32_t row) noexcept {
  std::uint64_t h = common::hash_accumulate(common::kHashInit, seed);
  h = common::hash_accumulate(h, bank);
  return common::hash_accumulate(h, row);
}

}  // namespace

const VendorCurve& vendor_curve(Manufacturer mfr) noexcept {
  // Calibrated against the per-vendor normalized ranges of Figs. 4 and 6,
  // the per-vendor increase fractions of Obsv. 3/6, and Fig. 10b.
  static const VendorCurve kCurveA{
      /*shape_gamma=*/1.15, /*s_jitter_sigma=*/0.105,
      /*inversion_fraction=*/0.30, /*inversion_scale=*/0.05,
      /*alpha_jitter_sigma=*/0.06, /*row_strength_sigma=*/0.40,
      /*trcd_row_sigma_ns=*/0.25, /*trcd_cell_sigma_ns=*/0.12,
      /*ret_sigma_log=*/1.0, /*ret_vpp_kappa=*/0.50, /*ret_mu_jitter=*/0.25,
      /*pattern_spread=*/0.10};
  static const VendorCurve kCurveB{
      /*shape_gamma=*/1.30, /*s_jitter_sigma=*/0.125,
      /*inversion_fraction=*/0.25, /*inversion_scale=*/0.06,
      /*alpha_jitter_sigma=*/0.07, /*row_strength_sigma=*/0.45,
      /*trcd_row_sigma_ns=*/0.28, /*trcd_cell_sigma_ns=*/0.12,
      /*ret_sigma_log=*/1.0, /*ret_vpp_kappa=*/0.43, /*ret_mu_jitter=*/0.25,
      /*pattern_spread=*/0.12};
  static const VendorCurve kCurveC{
      /*shape_gamma=*/1.10, /*s_jitter_sigma=*/0.065,
      /*inversion_fraction=*/0.12, /*inversion_scale=*/0.05,
      /*alpha_jitter_sigma=*/0.05, /*row_strength_sigma=*/0.35,
      /*trcd_row_sigma_ns=*/0.22, /*trcd_cell_sigma_ns=*/0.10,
      /*ret_sigma_log=*/1.0, /*ret_vpp_kappa=*/0.35, /*ret_mu_jitter=*/0.30,
      /*pattern_spread=*/0.09};
  switch (mfr) {
    case Manufacturer::kMfrA: return kCurveA;
    case Manufacturer::kMfrB: return kCurveB;
    case Manufacturer::kMfrC: return kCurveC;
  }
  return kCurveA;
}

double analytic_restored_voltage(double vpp_v) noexcept {
  double v = kVdd;
  for (int i = 0; i < 64; ++i) {
    const double vsb = std::max(v, 0.0);
    const double vth = kVt0 + kGamma * (std::sqrt(kPhi + vsb) - std::sqrt(kPhi));
    const double next = std::min(kVdd, vpp_v - vth);
    if (std::abs(next - v) < 1e-9) return std::max(next, 0.0);
    v = next;
  }
  return std::max(v, 0.0);
}

double restore_deficit(double vpp_v) noexcept {
  return std::max(0.0, 1.0 - analytic_restored_voltage(vpp_v) / kVdd);
}

CellPhysics::CellPhysics(const ModuleProfile& profile)
    : CellPhysics(profile, vendor_curve(profile.mfr)) {}

CellPhysics::CellPhysics(const ModuleProfile& profile,
                         const VendorCurve& curve)
    : profile_(profile), curve_(curve) {
  alpha_nom_mod_ = implied_alpha(profile.hc_first_nominal, profile.ber_nominal);
  alpha_min_mod_ = implied_alpha(profile.hc_first_vppmin, profile.ber_vppmin);
  log_m_mod_ = std::log(profile.hc_first_vppmin / profile.hc_first_nominal);
  // The per-row *mean* sensitivity is not the module-minimum ratio: even
  // modules whose minimum HCfirst drops at VPPmin (an outlier row) show
  // mostly improving rows (Fig. 6). Keep the mean mildly positive and let
  // the penalty tail reach down to the anchored minimum.
  mu_mod_ = std::max(log_m_mod_, 0.4 * log_m_mod_ + 0.02);
  gap_mod_ = mu_mod_ - log_m_mod_;
}

double CellPhysics::sensitivity_shape(double vpp_v) const noexcept {
  const double span = common::kNominalVppV - profile_.vppmin_v;
  if (span <= 1e-9) return 0.0;
  const double x =
      std::clamp((common::kNominalVppV - vpp_v) / span, 0.0, 1.5);
  return std::pow(x, curve_.shape_gamma);
}

CellPhysics::RowParams CellPhysics::row_params(std::uint32_t bank,
                                               std::uint32_t phys_row) const {
  RowParams rp;
  const std::uint64_t s = profile_.seed;
  const auto tag = [&](Tag t) {
    return hash_key({s, bank, phys_row, static_cast<std::uint64_t>(t)});
  };

  // Row strength: weakest rows sit at the module anchor, the rest above it.
  const double z_strength =
      std::abs(inverse_normal_cdf(to_unit_double(tag(Tag::kRowStrength))));
  const double rf = 1.0 + curve_.row_strength_sigma * z_strength;
  rp.hc_first = profile_.hc_first_nominal * rf;

  const double z_alpha =
      inverse_normal_cdf(to_unit_double(tag(Tag::kRowAlphaJitter)));
  rp.alpha_nom =
      clamp_alpha(alpha_nom_mod_ * (1.0 + curve_.alpha_jitter_sigma * z_alpha));

  // Per-row sensitivity jitter. The population is asymmetric (Figs. 4/6):
  // rows improve by up to ~50-90% but worsen by at most ~10%, so the
  // negative side of the distribution is compressed.
  {
    const double z =
        inverse_normal_cdf(to_unit_double(tag(Tag::kRowSensitivity)));
    rp.s = curve_.s_jitter_sigma * (z >= 0.0 ? z : 0.55 * z);
  }

  // A minority of rows carries a restoration-penalty weight (raw |z|, scaled
  // in hammer_multiplier): those are the rows whose RowHammer vulnerability
  // *worsens* at low VPP (Obsv. 2/5).
  if (to_unit_double(tag(Tag::kRowPenaltySelect)) < curve_.inversion_fraction) {
    rp.penalty_w = std::abs(
        inverse_normal_cdf(to_unit_double(tag(Tag::kRowPenaltyWeight))));
  }

  rp.trcd_offset_ns =
      curve_.trcd_row_sigma_ns *
      inverse_normal_cdf(to_unit_double(tag(Tag::kRowTrcdOffset)));

  rp.ret_mu = profile_.ret_mu_log_s +
              curve_.ret_mu_jitter *
                  inverse_normal_cdf(to_unit_double(tag(Tag::kRowRetMu)));

  rp.temp_sens =
      0.15 * inverse_normal_cdf(to_unit_double(tag(Tag::kRowTempSens)));
  return rp;
}

double CellPhysics::temperature_multiplier(const RowParams& rp,
                                           double temp_c) const noexcept {
  // Row-dependent direction and magnitude, pinned to 1 at the 50C setpoint;
  // the +/-15% per 40C scale follows the spreads reported by [12].
  const double x = (temp_c - 50.0) / 40.0;
  return std::max(0.3, 1.0 + rp.temp_sens * x);
}

double CellPhysics::hammer_multiplier(const RowParams& rp,
                                      double vpp_v) const noexcept {
  const double shape = sensitivity_shape(vpp_v);
  const double deficit_norm = restore_deficit(vpp_v) / 0.31;
  // Table 3 anchors the *module minimum* HCfirst ratio, which sits below the
  // per-row mean: among the handful of weakest rows, the smallest jitter and
  // the strongest restoration penalty dominate the minimum. mu_mod_ carries
  // the mean, bias_sigma compensates the min-statistics of the jitter, and
  // penalty rows reach down through gap_mod_ to the anchored minimum.
  const double bias_sigma = 0.1 * curve_.s_jitter_sigma;
  const double penalty =
      rp.penalty_w *
      (0.8 * gap_mod_ * shape + curve_.inversion_scale * deficit_norm);
  const double log_m = (mu_mod_ + bias_sigma + rp.s) * shape - penalty;
  return std::max(0.05, std::exp(log_m));
}

double CellPhysics::alpha_at(const RowParams& rp,
                             double vpp_v) const noexcept {
  const double shape = std::min(sensitivity_shape(vpp_v), 1.0);
  return clamp_alpha(rp.alpha_nom + (alpha_min_mod_ - alpha_nom_mod_) * shape);
}

double CellPhysics::pattern_factor(std::uint32_t bank, std::uint32_t row,
                                   std::uint8_t signature,
                                   int vpp_bucket) const {
  const std::uint64_t s = profile_.seed;
  const double base = to_unit_double(hash_key(
      {s, bank, row, signature, static_cast<std::uint64_t>(Tag::kPattern)}));
  // Small VPP-dependent wobble: the WCDP flips for a few percent of rows
  // across VPP levels (footnote 9 of the paper).
  const double wobble = to_unit_double(hash_key(
      {s, bank, row, signature, static_cast<std::uint64_t>(vpp_bucket),
       static_cast<std::uint64_t>(Tag::kPatternVpp)}));
  return 1.0 + curve_.pattern_spread * base + 0.002 * wobble;
}

double CellPhysics::pattern_retention_factor(std::uint32_t bank,
                                             std::uint32_t row,
                                             std::uint8_t signature) const {
  const double u = to_unit_double(
      hash_key({profile_.seed, bank, row, signature, 0x52455450ULL}));
  return 1.0 + 0.25 * u;
}

double CellPhysics::hammer_flip_probability(const RowParams& rp, double hc,
                                            double vpp_v,
                                            double pattern_factor,
                                            double restore_q,
                                            double temp_c) const noexcept {
  if (hc <= 0.0) return 0.0;
  // A partially restored row starts closer to the flip threshold: scale the
  // effective hammer count up by the missing charge fraction.
  const double hc_eff = hc / std::clamp(restore_q, 0.05, 1.0);
  const double hc_first_row = rp.hc_first * hammer_multiplier(rp, vpp_v) *
                              pattern_factor *
                              temperature_multiplier(rp, temp_c);
  // Hard floor: below the weakest cell's threshold nothing flips.
  if (hc_eff < kRowFlipFloor * hc_first_row) return 0.0;
  // Above it the flipped-cell population grows as (HC/HCfirst)^alpha, i.e.
  // exactly one expected flip at HCfirst.
  const double p = std::pow(hc_eff / hc_first_row, alpha_at(rp, vpp_v)) /
                   kVulnerableCellsPerRow;
  return std::clamp(p, 0.0, 1.0);
}

double CellPhysics::retention_flip_probability(const RowParams& rp,
                                               double dt_s, double vpp_v,
                                               double temp_c,
                                               double restore_q) const noexcept {
  if (dt_s <= 0.0) return 0.0;
  // Hotter chips leak faster: effective elapsed time doubles every 10C
  // (classic DRAM retention scaling; the study tests retention at 80C).
  const double dt_eff = dt_s * std::exp2((temp_c - 80.0) / 10.0);
  // Initial charge after restoration at this VPP, scaled by any tRAS
  // violation (restore_q).
  const double q0 = std::clamp(
      restore_q * analytic_restored_voltage(vpp_v) / kVdd, 0.0, 1.0);
  if (q0 <= kChargeThreshold) return 1.0;
  // Exponential decay q(t) = q0 * exp(-t/tau): the flip time scales with
  // ln(q0/qth), so a charge deficit multiplies retention time by
  // rfac = ln(q0/qth)/ln(1/qth) < 1 (raised to a vendor-specific kappa).
  const double rfac =
      std::log(q0 / kChargeThreshold) / std::log(1.0 / kChargeThreshold);
  const double mu_eff =
      rp.ret_mu + curve_.ret_vpp_kappa * std::log(std::max(rfac, 1e-6));
  const double z = (std::log(dt_eff) - mu_eff) / curve_.ret_sigma_log;
  return normal_cdf(z);
}

double CellPhysics::trcd_row_mean_ns(const RowParams& rp,
                                     double vpp_v) const noexcept {
  return profile_.trcd0_ns + profile_.trcd_vpp_slope_ns * sensitivity_shape(vpp_v) +
         rp.trcd_offset_ns;
}

double CellPhysics::trcd_fail_probability(const RowParams& rp, double trcd_ns,
                                          double vpp_v) const noexcept {
  // The row's tRCDmin marks the slowest cell; cells spread below it with
  // sigma trcd_cell_sigma_ns. Offset by ~4 sigma so that at trcd == row
  // tRCDmin only a handful of cells (the slowest tail) are marginal.
  const double row_min = trcd_row_mean_ns(rp, vpp_v);
  const double z =
      (row_min - trcd_ns) / curve_.trcd_cell_sigma_ns - 4.0;
  return normal_cdf(z);
}

double CellPhysics::restore_fraction(double open_ns,
                                     double vpp_v) const noexcept {
  // Full restoration needs longer at reduced VPP (weaker channel, Obsv. 11).
  // `restore_fraction` is the fraction of the *achievable* (VPP-limited)
  // level reached: restoring toward a lower saturation level does not take
  // proportionally longer, so the penalty is capped -- a nominal-tRAS cycle
  // must stay (barely) above the sensing threshold even at the lowest
  // VPPmin of the tested population (1.4V), or the device could not have
  // been characterized there at all.
  const double deficit = std::min(restore_deficit(vpp_v), 0.20);
  const double needed_ns = 28.0 + 24.0 * deficit / 0.31;
  if (open_ns >= needed_ns) return 1.0;
  return std::clamp(0.55 + 0.45 * open_ns / needed_ns, 0.55, 1.0);
}

double CellPhysics::cell_uniform(std::uint32_t bank, std::uint32_t row,
                                 std::uint32_t bit, CellDraw what) const {
  return to_unit_double(hash_key(
      {profile_.seed, bank, row, bit, static_cast<std::uint64_t>(what)}));
}

void CellPhysics::cell_uniform_batch(std::uint32_t bank, std::uint32_t row,
                                     std::uint32_t bit0, std::uint32_t n,
                                     CellDraw what, double* out) const {
  common::simd::uniform_index_walk(cell_hash_prefix(profile_.seed, bank, row),
                                   static_cast<std::uint64_t>(what), bit0, n,
                                   out);
}

bool CellPhysics::charged_value(std::uint32_t bank, std::uint32_t row,
                                std::uint32_t bit) const {
  return (hash_key({profile_.seed, bank, row, bit,
                    static_cast<std::uint64_t>(CellDraw::kPolarity)}) &
          1u) != 0;
}

std::vector<std::uint64_t> CellPhysics::charged_words(std::uint32_t bank,
                                                      std::uint32_t row) const {
  std::vector<std::uint64_t> words(kColumnsPerRow, 0);
  const std::uint64_t prefix = cell_hash_prefix(profile_.seed, bank, row);
  constexpr std::uint64_t kTag =
      static_cast<std::uint64_t>(CellDraw::kPolarity);
  std::uint64_t hashes[64];
  for (std::uint32_t w = 0; w < kColumnsPerRow; ++w) {
    common::simd::hash_index_walk(prefix, kTag, std::uint64_t{w} * 64, 64,
                                  hashes);
    std::uint64_t word = 0;
    for (std::uint32_t i = 0; i < 64; ++i) {
      word |= (hashes[i] & 1u) << i;
    }
    words[w] = word;
  }
  return words;
}

CellPhysics::RowFlipIndex CellPhysics::build_flip_index(
    std::uint32_t bank, std::uint32_t row, CellDraw what,
    std::uint32_t top_k) const {
  RowFlipIndex index;
  if (top_k == 0) return index;
  // Partial selection: keep the running top-K in a min-heap keyed on u so
  // one pass over the row suffices. Ties cannot occur (cell_uniform values
  // are distinct 53-bit dyadics with overwhelming probability, and equal
  // values would land in the same position of the sorted tail anyway).
  auto& heap = index.cells;
  heap.reserve(top_k + 1);
  const auto less_u = [](const RowFlipIndex::Entry& a,
                         const RowFlipIndex::Entry& b) { return a.u > b.u; };
  // The uniforms come from the batched SIMD walk (values identical to the
  // scalar per-bit calls); heap maintenance stays scalar and processes bits
  // in ascending order, so the resulting index is byte-identical either way.
  constexpr std::uint32_t kBatch = 1024;
  double uniforms[kBatch];
  for (std::uint32_t base = 0; base < kBitsPerRow; base += kBatch) {
    cell_uniform_batch(bank, row, base, kBatch, what, uniforms);
    for (std::uint32_t i = 0; i < kBatch; ++i) {
      const std::uint32_t bit = base + i;
      const double u = uniforms[i];
      if (heap.size() < top_k) {
        heap.push_back({u, bit});
        std::push_heap(heap.begin(), heap.end(), less_u);
      } else if (u > heap.front().u) {
        std::pop_heap(heap.begin(), heap.end(), less_u);
        heap.back() = {u, bit};
        std::push_heap(heap.begin(), heap.end(), less_u);
      }
    }
  }
  std::sort(heap.begin(), heap.end(),
            [](const RowFlipIndex::Entry& a, const RowFlipIndex::Entry& b) {
              return a.u > b.u;
            });
  index.floor_u = heap.back().u;
  return index;
}

std::vector<CellPhysics::WeakCell> CellPhysics::weak_cells(
    std::uint32_t bank, std::uint32_t row) const {
  std::vector<WeakCell> cells;
  const std::uint64_t s = profile_.seed;
  const double u = to_unit_double(
      hash_key({s, bank, row, static_cast<std::uint64_t>(Tag::kWeakRowSelect)}));

  // Disjoint class selection: [0, f1) -> weak_64ms, [f1, f1+f2) -> the
  // secondary 64ms class, then the 128ms class.
  const RetentionWeakClass* cls = nullptr;
  double lo = 0.0;
  for (const RetentionWeakClass* c :
       {&profile_.weak_64ms, &profile_.weak_64ms_b, &profile_.weak_128ms}) {
    if (c->row_fraction <= 0.0 || c->words_affected == 0) continue;
    if (u >= lo && u < lo + c->row_fraction) {
      cls = c;
      break;
    }
    lo += c->row_fraction;
  }
  if (cls == nullptr) return cells;

  const std::uint32_t base_word = static_cast<std::uint32_t>(
      hash_key({s, bank, row, static_cast<std::uint64_t>(Tag::kWeakCellBase)}) %
      kColumnsPerRow);
  cells.reserve(cls->words_affected);
  for (std::uint32_t i = 0; i < cls->words_affected; ++i) {
    // Stride 97 is coprime with 1024 columns: every weak cell lands in a
    // distinct 64-bit word, so SECDED corrects all of them (Obsv. 14).
    const std::uint32_t word = (base_word + i * 97u) % kColumnsPerRow;
    const std::uint32_t bit_in_word = static_cast<std::uint32_t>(
        hash_key({s, bank, row, i, static_cast<std::uint64_t>(Tag::kWeakCellBit)}) %
        64u);
    const double ut = to_unit_double(hash_key(
        {s, bank, row, i, static_cast<std::uint64_t>(Tag::kWeakCellTime)}));
    WeakCell wc;
    wc.bit = word * 64u + bit_in_word;
    wc.t_ret_at_vppmin_s =
        (cls->t_ret_lo_ms + ut * (cls->t_ret_hi_ms - cls->t_ret_lo_ms)) * 1e-3;
    cells.push_back(wc);
  }
  return cells;
}

double CellPhysics::on_time_factor(double on_ns) const noexcept {
  if (on_ns <= 1.0) return 0.6;
  const double factor = 1.0 + 0.3 * std::log2(on_ns / 32.0);
  return std::clamp(factor, 0.6, 2.5);
}

double CellPhysics::weak_cell_ret_scale(double vpp_v) const noexcept {
  const auto rfac = [](double vpp) {
    const double q0 = std::clamp(analytic_restored_voltage(vpp) / kVdd,
                                 kChargeThreshold + 1e-3, 1.0);
    return std::log(q0 / kChargeThreshold) / std::log(1.0 / kChargeThreshold);
  };
  // Weak cells sit on marginal leakage paths that respond much more sharply
  // to the restored charge level than the bulk population: at nominal VPP
  // they hold comfortably past the 64ms window, and only the restoration
  // deficit at VPPmin pulls them under it (Obsv. 13).
  constexpr double kWeakKappa = 3.0;
  const double scale =
      std::pow(rfac(vpp_v) / rfac(profile_.vppmin_v), kWeakKappa);
  return std::max(scale, 1e-3);
}

}  // namespace vppstudy::dram
