// DRAM-internal address mapping (section 4.2, "Finding Physically Adjacent
// Rows"): manufacturers translate the logical row addresses on the DDR4
// interface into internal physical locations. Double-sided RowHammer needs
// the *physical* neighbors of a victim, so the harness reverse-engineers the
// scheme (src/harness/adjacency.*), exactly as prior work [11,12] does.
//
// Each scheme here is a bijection on the row address space, modeled after
// publicly documented vendor behaviors: bit-swizzled (XOR of low bits),
// pairwise-mirrored blocks, and identity-with-block-inversion.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/types.hpp"

namespace vppstudy::dram {

enum class MappingScheme {
  kIdentity,        ///< logical == physical
  kBitSwizzle,      ///< XOR folding of low row bits (Mfr. A style)
  kMirroredPairs,   ///< swap rows 1,2 mod 4 within blocks (Mfr. B style)
  kBlockInvert,     ///< invert low bits in odd 1K blocks (Mfr. C style)
};

/// The scheme a manufacturer's chips use in this model.
[[nodiscard]] MappingScheme scheme_for(Manufacturer mfr) noexcept;

/// Post-manufacturing row repair: a faulty physical row is fused out and its
/// logical address points at a spare. Section 4.2 names this as one of the
/// two reasons internal mappings exist (and why attackers/auditors must
/// reverse-engineer adjacency rather than assume row +/- 1).
struct RowRepair {
  std::uint32_t logical_row = 0;   ///< the repaired logical address
  std::uint32_t spare_physical = 0;///< its new physical location
};

class RowMapping {
 public:
  RowMapping(MappingScheme scheme, std::uint32_t rows) noexcept;
  RowMapping(MappingScheme scheme, std::uint32_t rows,
             std::vector<RowRepair> repairs);

  [[nodiscard]] std::uint32_t logical_to_physical(std::uint32_t row) const noexcept;
  [[nodiscard]] std::uint32_t physical_to_logical(std::uint32_t row) const noexcept;
  [[nodiscard]] const std::vector<RowRepair>& repairs() const noexcept {
    return repairs_;
  }
  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] MappingScheme scheme() const noexcept { return scheme_; }

  /// Logical addresses of the two physical neighbors of `logical_row` (the
  /// rows a double-sided attack must activate). Neighbors outside the bank
  /// clamp inward (edge rows are attacked single-sided in practice; the
  /// harness skips edge victims instead).
  struct Neighbors {
    std::uint32_t below = 0;  ///< logical address of physical row - 1
    std::uint32_t above = 0;  ///< logical address of physical row + 1
    bool valid = false;       ///< false at the physical edges of the bank
  };
  [[nodiscard]] Neighbors physical_neighbors(std::uint32_t logical_row) const noexcept;

 private:
  [[nodiscard]] std::uint32_t base_transform(std::uint32_t row) const noexcept;

  MappingScheme scheme_;
  std::uint32_t rows_;
  std::vector<RowRepair> repairs_;
};

}  // namespace vppstudy::dram
