// DDR4 timing parameters (JESD79-4) for the speed grades of the tested
// modules. All values in nanoseconds. The SoftMC timing checker consumes
// these; the characterization harness deliberately violates some of them
// (that is the whole point of an FPGA-based testing platform).
#pragma once

#include <cstdint>

namespace vppstudy::dram {

struct Ddr4Timing {
  double t_ck_ns = 0.833;     ///< clock period (DDR4-2400)
  double t_rcd_ns = 13.5;     ///< ACT -> RD/WR
  double t_ras_ns = 32.0;     ///< ACT -> PRE
  double t_rp_ns = 13.5;      ///< PRE -> ACT
  double t_rc_ns = 45.5;      ///< ACT -> ACT (same bank)
  double t_rrd_s_ns = 3.3;    ///< ACT -> ACT (different bank group)
  double t_rrd_l_ns = 4.9;    ///< ACT -> ACT (same bank group)
  double t_faw_ns = 21.0;     ///< rolling four-activate window
  double t_wr_ns = 15.0;      ///< write recovery
  double t_rtp_ns = 7.5;      ///< read to precharge
  double t_cl_ns = 13.5;      ///< CAS latency
  double t_cwl_ns = 10.0;     ///< CAS write latency
  double t_refi_ns = 7800.0;  ///< average refresh interval
  double t_rfc_ns = 350.0;    ///< refresh cycle time
  double t_refw_ms = 64.0;    ///< refresh window (all rows refreshed once)
};

/// Timing set for a standard speed grade, selected by data rate in MT/s.
/// Values follow JESD79-4 bin tables; unknown rates fall back to DDR4-2400.
[[nodiscard]] Ddr4Timing timing_for_speed_grade(int mega_transfers_per_s);

}  // namespace vppstudy::dram
