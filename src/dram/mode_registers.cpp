#include "dram/mode_registers.hpp"

#include <string>

namespace vppstudy::dram {

using common::Error;

namespace {

// Field layouts (simplified but stable encodings used by this model):
//   MR0: [6:3] CL - 9, [1:0] burst (0 = BL8, 2 = BC4)
//   MR2: [5:3] CWL - 9
//   MR4: [3] FGR 2x, [2] temperature-controlled refresh
//   MR6: [0] TRR enable
constexpr std::uint32_t kMr4Fgr = 1u << 3;
constexpr std::uint32_t kMr4Tcr = 1u << 2;
constexpr std::uint32_t kMr6Trr = 1u << 0;

}  // namespace

common::Expected<ModeRegisters> apply_mrs(ModeRegisters current, int mr_index,
                                          std::uint32_t operand) {
  switch (mr_index) {
    case 0: {
      const int cl = static_cast<int>((operand >> 3) & 0xF) + 9;
      const std::uint32_t bl = operand & 0x3;
      if (bl != 0 && bl != 2) return Error{"MR0: unsupported burst mode"};
      if (cl < 9 || cl > 24) return Error{"MR0: CAS latency out of range"};
      current.cas_latency = cl;
      current.burst_length = bl == 0 ? 8 : 4;
      return current;
    }
    case 2: {
      const int cwl = static_cast<int>((operand >> 3) & 0x7) + 9;
      if (cwl < 9 || cwl > 16) return Error{"MR2: CWL out of range"};
      current.cas_write_latency = cwl;
      return current;
    }
    case 4: {
      current.refresh_mode = (operand & kMr4Fgr) ? RefreshMode::kFgr2x
                                                 : RefreshMode::kNormal1x;
      current.temp_controlled_refresh = (operand & kMr4Tcr) != 0;
      return current;
    }
    case 6: {
      current.trr_enabled = (operand & kMr6Trr) != 0;
      return current;
    }
    default:
      return Error{"unsupported mode register MR" + std::to_string(mr_index)};
  }
}

std::uint32_t encode_mr0(const ModeRegisters& mr) noexcept {
  return (static_cast<std::uint32_t>(mr.cas_latency - 9) << 3) |
         (mr.burst_length == 8 ? 0u : 2u);
}

std::uint32_t encode_mr2(const ModeRegisters& mr) noexcept {
  return static_cast<std::uint32_t>(mr.cas_write_latency - 9) << 3;
}

std::uint32_t encode_mr4(const ModeRegisters& mr) noexcept {
  std::uint32_t v = 0;
  if (mr.refresh_mode == RefreshMode::kFgr2x) v |= kMr4Fgr;
  if (mr.temp_controlled_refresh) v |= kMr4Tcr;
  return v;
}

std::uint32_t encode_mr6(const ModeRegisters& mr) noexcept {
  return mr.trr_enabled ? kMr6Trr : 0u;
}

}  // namespace vppstudy::dram
