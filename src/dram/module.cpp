#include "dram/module.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"
#include "common/simd.hpp"

namespace vppstudy::dram {

using common::Error;
using common::ErrorCode;
using common::Status;

namespace {

/// Skip a whole-row physics pass when the expected flip count is below this.
constexpr double kNegligibleExpectedFlips = 1e-3;

/// Probability floor below which individual hash draws are skipped.
constexpr double kNegligibleCellProbability = 1e-12;

}  // namespace

Error Module::range_error(std::string what, std::uint32_t value,
                          std::uint32_t limit) const {
  return Error{ErrorCode::kInvalidArgument,
               std::move(what) + " " + std::to_string(value) +
                   " out of range (limit " + std::to_string(limit) + ")"}
      .with_module(profile_.name);
}

Module::Module(ModuleProfile profile)
    : Module(std::move(profile), Options{}) {}

Module::Module(ModuleProfile profile, Options options)
    : profile_(std::move(profile)),
      options_(options),
      physics_(profile_),
      mapping_(scheme_for(profile_.mfr), profile_.rows_per_bank,
               profile_.row_repairs),
      trr_(profile_.banks, TrrEngine::Options{}),
      banks_(profile_.banks),
      physics_store_(profile_.banks) {}

void Module::reset_device_state() {
  banks_.clear();
  banks_.resize(profile_.banks);  // physics_store_ survives, by design
  stats_ = ModuleStats{};
  vpp_v_ = common::kNominalVppV;
  temp_c_ = common::kHammerTestTempC;
  refresh_cursor_ = 0;
  noise_stream_ = 0;
  read_noise_counter_ = 0;
  hammer_noise_counter_ = 0;
  measurement_noise_sigma_ = 0.0;
  mode_registers_ = ModeRegisters{};
  trr_.reset();
  trr_enabled_ = true;
}

Status Module::check_responsive() const {
  if (!responsive()) {
    return Error{ErrorCode::kModuleUnresponsive,
                 "module " + profile_.name +
                     " does not respond: VPP below VPPmin (" +
                     std::to_string(profile_.vppmin_v) + "V)"}
        .with_module(profile_.name)
        .with_vpp_mv(static_cast<std::int64_t>(std::lround(vpp_v_ * 1000.0)));
  }
  return Status::ok_status();
}

double Module::acts_of(const BankState& b,
                       std::uint32_t physical_row) const {
  const auto it = b.acts.find(physical_row);
  return it == b.acts.end() ? 0.0 : it->second;
}

Module::RowState& Module::row_state(BankState& bank_state, std::uint32_t bank,
                                    std::uint32_t physical_row) {
  auto [it, inserted] = bank_state.rows.try_emplace(physical_row);
  RowState& rs = it->second;
  if (inserted) {
    // A never-touched row: treat it as restored "long ago" with power-up
    // content. Its first activation will not see artificial decay because
    // restore_time starts at the current epoch when first sensed.
    rs.restore_time_ns = 0.0;
    rs.restore_vpp = vpp_v_;
    rs.neigh_below_acts = acts_of(bank_state, physical_row - 1);
    rs.neigh_above_acts = acts_of(bank_state, physical_row + 1);
    rs.neigh2_below_acts = acts_of(bank_state, physical_row - 2);
    rs.neigh2_above_acts = acts_of(bank_state, physical_row + 2);
    rs.physics = &physics_store_[bank][physical_row];
  }
  return rs;
}

void Module::ensure_initialized(std::uint32_t bank,
                                std::uint32_t physical_row, RowState& rs) {
  if (rs.initialized) return;
  RowPhysicsCache& pc = *rs.physics;
  if (pc.powerup.empty()) {
    // Deterministic power-up content:
    // byte[i] = hash_key({seed, bank, row, i, 0xb007}), batched through the
    // SIMD walk kernel over the fixed (seed, bank, row) prefix.
    pc.powerup.resize(kBytesPerRow);
    std::uint64_t prefix =
        common::hash_accumulate(common::kHashInit, profile_.seed);
    prefix = common::hash_accumulate(prefix, bank);
    prefix = common::hash_accumulate(prefix, physical_row);
    constexpr std::uint32_t kChunk = 1024;
    std::uint64_t hashes[kChunk];
    for (std::uint32_t base = 0; base < kBytesPerRow; base += kChunk) {
      common::simd::hash_index_walk(prefix, 0xb007ULL, base, kChunk, hashes);
      for (std::uint32_t i = 0; i < kChunk; ++i) {
        pc.powerup[base + i] = static_cast<std::uint8_t>(hashes[i]);
      }
    }
  }
  rs.data = pc.powerup;
  rs.initialized = true;
}

const CellPhysics::RowParams& Module::cached_row_params(
    std::uint32_t bank, std::uint32_t physical_row, RowState& rs) {
  auto& cache = *rs.physics;
  if (!cache.has_params) {
    cache.params = physics_.row_params(bank, physical_row);
    cache.has_params = true;
  }
  return cache.params;
}

const std::vector<CellPhysics::WeakCell>& Module::cached_weak_cells(
    std::uint32_t bank, std::uint32_t physical_row, RowState& rs) {
  auto& cache = *rs.physics;
  if (!cache.has_weak) {
    cache.weak = physics_.weak_cells(bank, physical_row);
    std::sort(cache.weak.begin(), cache.weak.end(),
              [](const CellPhysics::WeakCell& a,
                 const CellPhysics::WeakCell& b) { return a.bit < b.bit; });
    cache.has_weak = true;
  }
  return cache.weak;
}

const std::vector<std::uint64_t>& Module::cached_polarity(
    std::uint32_t bank, std::uint32_t physical_row, RowState& rs) {
  auto& cache = *rs.physics;
  if (cache.polarity.empty()) {
    cache.polarity = physics_.charged_words(bank, physical_row);
  }
  return cache.polarity;
}

const CellPhysics::RowFlipIndex* Module::usable_flip_index(
    std::uint32_t bank, std::uint32_t physical_row, RowState& rs,
    CellPhysics::CellDraw what, double p) {
  auto& cache = *rs.physics;
  const bool hammer = what == CellPhysics::CellDraw::kHammer;
  bool& built = hammer ? cache.has_hammer_index : cache.has_retention_index;
  auto& index = hammer ? cache.hammer_index : cache.retention_index;
  if (!built) {
    // Building costs one full-row pass; only worth it when the requested
    // probability is small enough that the default tail depth will cover
    // it (large p means the full scan is the right tool anyway).
    if (p > CellPhysics::kFlipIndexSafeP) return nullptr;
    index = physics_.build_flip_index(bank, physical_row, what);
    built = true;
  }
  return index.covers(p) ? &index : nullptr;
}

void Module::apply_flips(std::uint32_t bank, std::uint32_t physical_row,
                         RowState& rs, double p_hammer, double p_retention,
                         double dt_s) {
  const bool do_hammer = p_hammer > kNegligibleCellProbability;
  const bool do_retention = p_retention > kNegligibleCellProbability;

  // Weak retention cells (Obsv. 14/15): flip when the elapsed time exceeds
  // their (VPP-scaled) retention time. The cached list is sorted by bit.
  std::vector<std::uint32_t> weak_flips;
  if (dt_s > 1e-3) {
    const double scale = physics_.weak_cell_ret_scale(rs.restore_vpp) *
                         std::exp2((80.0 - temp_c_) / 10.0);
    for (const auto& wc : cached_weak_cells(bank, physical_row, rs)) {
      if (dt_s > wc.t_ret_at_vppmin_s * scale) weak_flips.push_back(wc.bit);
    }
  }
  if (!do_hammer && !do_retention && weak_flips.empty()) return;

  const double hammer_threshold = 1.0 - p_hammer;
  const double retention_threshold = 1.0 - p_retention;
  const auto stored_bit = [&](std::uint32_t bit) {
    return ((rs.data[bit / 8] >> (bit % 8)) & 1u) != 0;
  };

  // Candidate flips per mechanism, each sorted ascending by bit. A bit that
  // qualifies for both mechanisms is classified as a hammer flip (matching
  // the reference scan, which tests the hammer draw first).
  std::vector<std::uint32_t> hammer_bits;
  std::vector<std::uint32_t> retention_bits;

  const CellPhysics::RowFlipIndex* hammer_index =
      do_hammer && !options_.reference_sensing
          ? usable_flip_index(bank, physical_row, rs,
                              CellPhysics::CellDraw::kHammer, p_hammer)
          : nullptr;
  const CellPhysics::RowFlipIndex* retention_index =
      do_retention && !options_.reference_sensing
          ? usable_flip_index(bank, physical_row, rs,
                              CellPhysics::CellDraw::kRetention, p_retention)
          : nullptr;
  const bool fast = !options_.reference_sensing &&
                    (!do_hammer || hammer_index != nullptr) &&
                    (!do_retention || retention_index != nullptr);

  if (fast) {
    // O(flips): the cells whose uniform exceeds 1-p are exactly the prefix
    // of the index (sorted descending by uniform), so walk it until the
    // threshold and keep the charged ones. Only cells holding charge can
    // lose it: a cell whose stored value is the discharged state is immune
    // to both hammering and leakage.
    if (hammer_index != nullptr) {
      for (const auto& e : hammer_index->cells) {
        if (e.u <= hammer_threshold) break;
        if (stored_bit(e.bit) ==
            physics_.charged_value(bank, physical_row, e.bit)) {
          hammer_bits.push_back(e.bit);
        }
      }
      std::sort(hammer_bits.begin(), hammer_bits.end());
    }
    if (retention_index != nullptr) {
      for (const auto& e : retention_index->cells) {
        if (e.u <= retention_threshold) break;
        if (std::binary_search(hammer_bits.begin(), hammer_bits.end(),
                               e.bit)) {
          continue;  // already flipped by hammer this pass
        }
        if (stored_bit(e.bit) ==
            physics_.charged_value(bank, physical_row, e.bit)) {
          retention_bits.push_back(e.bit);
        }
      }
      std::sort(retention_bits.begin(), retention_bits.end());
    }
  } else if (do_hammer || do_retention) {
    // Reference full-row scan: every bit, charge polarity via the cached
    // per-row polarity words, then the per-bit uniform draws. This is the
    // path the flip index must stay bit-exact against. The scan works one
    // 64-bit word at a time: an eligibility mask (stored == charged) from
    // the polarity words, then batched uniform draws from the SIMD walk
    // kernels. Drawing a whole word at once evaluates some uniforms the
    // per-bit loop would skip, but cell_uniform is a pure function of its
    // coordinates, so the *used* values -- and therefore the flip sets --
    // are identical; retention draws stay lazy per word exactly like the
    // scalar loop (only bits not already flipped by hammer consult them).
    const std::vector<std::uint64_t>& polarity =
        cached_polarity(bank, physical_row, rs);
    double u_hammer[64];
    double u_retention[64];
    for (std::uint32_t w = 0; w < kColumnsPerRow; ++w) {
      std::uint64_t stored = 0;
      for (std::uint32_t b = 0; b < 8; ++b) {
        stored |= static_cast<std::uint64_t>(rs.data[w * 8 + b]) << (8 * b);
      }
      const std::uint64_t eligible = ~(stored ^ polarity[w]);
      if (eligible == 0) continue;
      const std::uint32_t base = w * 64;
      if (do_hammer) {
        physics_.cell_uniform_batch(bank, physical_row, base, 64,
                                    CellPhysics::CellDraw::kHammer, u_hammer);
      }
      std::uint64_t retention_candidates = 0;
      for (std::uint64_t m = eligible; m != 0; m &= m - 1) {
        const auto j = static_cast<std::uint32_t>(std::countr_zero(m));
        if (do_hammer && u_hammer[j] > hammer_threshold) {
          hammer_bits.push_back(base + j);
        } else if (do_retention) {
          retention_candidates |= 1ULL << j;
        }
      }
      if (retention_candidates != 0) {
        physics_.cell_uniform_batch(bank, physical_row, base, 64,
                                    CellPhysics::CellDraw::kRetention,
                                    u_retention);
        for (std::uint64_t m = retention_candidates; m != 0; m &= m - 1) {
          const auto j = static_cast<std::uint32_t>(std::countr_zero(m));
          if (u_retention[j] > retention_threshold) {
            retention_bits.push_back(base + j);
          }
        }
      }
    }
  }

  stats_.hammer_bit_flips += hammer_bits.size();
  stats_.retention_bit_flips += retention_bits.size();

  // Sorted union of the two (disjoint) mechanism lists.
  std::vector<std::uint32_t> flipped_bits;
  flipped_bits.reserve(hammer_bits.size() + retention_bits.size() +
                       weak_flips.size());
  std::merge(hammer_bits.begin(), hammer_bits.end(), retention_bits.begin(),
             retention_bits.end(), std::back_inserter(flipped_bits));

  // Weak cells flip unconditionally (no charge check: the study identifies
  // them under each row's worst-case pattern, which by construction charges
  // them) unless the bit already flipped above. Both lists are sorted, so a
  // single merge pass replaces the old per-bit std::find dedup.
  if (!weak_flips.empty()) {
    std::vector<std::uint32_t> merged;
    merged.reserve(flipped_bits.size() + weak_flips.size());
    auto it = flipped_bits.begin();
    for (const std::uint32_t bit : weak_flips) {
      while (it != flipped_bits.end() && *it < bit) merged.push_back(*it++);
      if (it != flipped_bits.end() && *it == bit) continue;  // deduped
      merged.push_back(bit);
      ++stats_.retention_bit_flips;
    }
    merged.insert(merged.end(), it, flipped_bits.end());
    flipped_bits = std::move(merged);
  }

  if (flipped_bits.empty()) return;

  // Optional on-die ECC: a single flipped bit inside a 64-bit device word is
  // silently corrected during sensing; multi-bit words are not. The bit list
  // is sorted, so same-word flips form consecutive runs.
  if (profile_.has_ondie_ecc) {
    std::vector<std::uint32_t> surviving;
    surviving.reserve(flipped_bits.size());
    for (std::size_t i = 0; i < flipped_bits.size();) {
      std::size_t j = i + 1;
      while (j < flipped_bits.size() &&
             flipped_bits[j] / 64 == flipped_bits[i] / 64) {
        ++j;
      }
      if (j - i >= 2) {
        surviving.insert(surviving.end(), flipped_bits.begin() + i,
                         flipped_bits.begin() + j);
      } else {
        ++stats_.ondie_ecc_corrections;
      }
      i = j;
    }
    flipped_bits = std::move(surviving);
  }

  for (const auto bit : flipped_bits) {
    rs.data[bit / 8] = static_cast<std::uint8_t>(rs.data[bit / 8] ^
                                                 (1u << (bit % 8)));
  }
}

void Module::sense_and_restore(std::uint32_t bank, BankState& bs,
                               std::uint32_t physical_row, RowState& rs,
                               double now_ns) {
  if (rs.initialized) {
    const double dt_s = std::max(0.0, (now_ns - rs.restore_time_ns) * 1e-9);
    const double below = acts_of(bs, physical_row - 1) - rs.neigh_below_acts;
    const double above = acts_of(bs, physical_row + 1) - rs.neigh_above_acts;
    const double below2 =
        acts_of(bs, physical_row - 2) - rs.neigh2_below_acts;
    const double above2 =
        acts_of(bs, physical_row + 2) - rs.neigh2_above_acts;
    // Per-aggressor hammer count: a double-sided attack with HC activations
    // per side contributes (HC+HC)/2 = HC (section 4.2's definition).
    // Distance-2 aggressors couple ~30x more weakly (the "blast radius"
    // measured by [11]): they matter only under extreme hammering.
    constexpr double kDistance2Coupling = 1.0 / 30.0;
    const double hc = (below + above) / 2.0 +
                      kDistance2Coupling * (below2 + above2) / 2.0;

    const CellPhysics::RowParams& rp =
        cached_row_params(bank, physical_row, rs);
    double p_hammer = 0.0;
    if (hc > 0.0) {
      const std::uint8_t signature = rs.data.empty() ? 0 : rs.data[0];
      const int vpp_bucket = static_cast<int>(std::lround(vpp_v_ * 10.0));
      const double pf =
          physics_.pattern_factor(bank, physical_row, signature, vpp_bucket);
      double hc_eff = hc;
      if (measurement_noise_sigma_ > 0.0) {
        hc_eff *= 1.0 + measurement_noise_sigma_ *
                            common::normal_at({profile_.seed ^ noise_stream_,
                                               ++hammer_noise_counter_,
                                               0xc0ffeeULL});
      }
      p_hammer = physics_.hammer_flip_probability(rp, hc_eff, vpp_v_, pf,
                                                  rs.restore_q, temp_c_);
    }
    const std::uint8_t ret_signature = rs.data.empty() ? 0 : rs.data[0];
    const double ret_pf =
        physics_.pattern_retention_factor(bank, physical_row, ret_signature);
    const double p_retention = physics_.retention_flip_probability(
        rp, dt_s * ret_pf, rs.restore_vpp, temp_c_, rs.restore_q);

    const double expected_flips =
        (p_hammer + p_retention) * kBitsPerRow / 2.0;
    if (expected_flips > kNegligibleExpectedFlips || dt_s > 1e-3) {
      apply_flips(bank, physical_row, rs, p_hammer, p_retention, dt_s);
    }
  }
  rs.restore_time_ns = now_ns;
  rs.restore_vpp = vpp_v_;
  rs.restore_q = 1.0;  // adjusted at precharge if tRAS was violated
  rs.neigh_below_acts = acts_of(bs, physical_row - 1);
  rs.neigh_above_acts = acts_of(bs, physical_row + 1);
  rs.neigh2_below_acts = acts_of(bs, physical_row - 2);
  rs.neigh2_above_acts = acts_of(bs, physical_row + 2);
}

Status Module::activate(std::uint32_t bank, std::uint32_t logical_row,
                        double now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  if (logical_row >= profile_.rows_per_bank) {
    return range_error("row", logical_row, profile_.rows_per_bank)
        .with_bank(static_cast<std::int32_t>(bank));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row >= 0) {
    return Error{ErrorCode::kDeviceProtocol,
                 "ACT to bank " + std::to_string(bank) +
                     " which already has an open row"}
        .with_module(profile_.name)
        .with_bank_row(static_cast<std::int32_t>(bank), logical_row)
        .with_op("ACT");
  }
  const std::uint32_t phys = mapping_.logical_to_physical(logical_row);
  bs.acts[phys] += 1.0;
  ++stats_.activates;
  if (trr_enabled_ && profile_.has_trr) trr_.observe_activate(bank, phys);

  RowState& rs = row_state(bs, bank, phys);
  sense_and_restore(bank, bs, phys, rs, now_ns);

  bs.open_physical_row = phys;
  bs.open_row_state = &rs;  // nodes are pointer-stable; rows are never erased
  bs.activate_time_ns = now_ns;
  return Status::ok_status();
}

Status Module::precharge(std::uint32_t bank, double now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row >= 0) {
    // A row closed before its charge-restoration completed keeps only part
    // of its charge (tRAS violation; section 6.2).
    const double open_ns = now_ns - bs.activate_time_ns;
    if (bs.open_row_state != nullptr) {
      bs.open_row_state->restore_q = physics_.restore_fraction(open_ns, vpp_v_);
    }
    bs.open_physical_row = -1;
    bs.open_row_state = nullptr;
  }
  ++stats_.precharges;
  return Status::ok_status();
}

Status Module::precharge_all(double now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    if (auto st = precharge(b, now_ns); !st.ok()) return st;
    --stats_.precharges;  // count PREA as one operation below
  }
  ++stats_.precharges;
  return Status::ok_status();
}

common::Expected<std::array<std::uint8_t, kBytesPerColumn>> Module::read(
    std::uint32_t bank, std::uint32_t column, double now_ns) {
  if (auto st = check_responsive(); !st.ok()) return std::move(st).error();
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  if (column >= kColumnsPerRow) {
    return range_error("column", column, kColumnsPerRow)
        .with_bank(static_cast<std::int32_t>(bank));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row < 0) {
    return Error{ErrorCode::kDeviceProtocol,
                 "RD to bank " + std::to_string(bank) + " with no open row"}
        .with_module(profile_.name)
        .with_bank(static_cast<std::int32_t>(bank))
        .with_op("RD");
  }
  const auto phys = static_cast<std::uint32_t>(bs.open_physical_row);
  RowState& rs = bs.open_row_state != nullptr ? *bs.open_row_state
                                              : row_state(bs, bank, phys);
  ensure_initialized(bank, phys, rs);
  ++stats_.reads;

  std::array<std::uint8_t, kBytesPerColumn> out{};
  std::copy_n(rs.data.begin() + column * kBytesPerColumn, kBytesPerColumn,
              out.begin());

  // Reads issued before the row's slowest cells have sensed return wrong
  // values for those cells (the data in the array is unaffected -- the row
  // buffer simply had not settled). A small per-read jitter models the
  // analog noise of marginal timing.
  const double trcd_ns = now_ns - bs.activate_time_ns;
  const CellPhysics::RowParams& rp = cached_row_params(bank, phys, rs);
  RowPhysicsCache& pc = *rs.physics;
  if (pc.trcd_mean_vpp != vpp_v_) {
    pc.trcd_mean_ns = physics_.trcd_row_mean_ns(rp, vpp_v_);
    pc.trcd_mean_vpp = vpp_v_;
  }
  // The jitter draw position is consumed whether or not the draw's value can
  // matter (keeping the noise-counter sequence identical); the draw and the
  // failure evaluation are skipped when no representable jitter could make
  // the read marginal (see CellPhysics::trcd_certainly_safe).
  ++read_noise_counter_;
  double p_fail = 0.0;
  if (!physics_.trcd_certainly_safe(pc.trcd_mean_ns, trcd_ns)) {
    const double jitter =
        0.04 * common::normal_at({profile_.seed ^ noise_stream_,
                                  read_noise_counter_, 0x7eadULL});
    p_fail = physics_.trcd_fail_probability(rp, trcd_ns + jitter, vpp_v_);
  }
  if (p_fail > kNegligibleCellProbability) {
    const double threshold = 1.0 - p_fail;
    for (std::uint32_t i = 0; i < kBytesPerColumn * 8; ++i) {
      const std::uint32_t bit = column * kBytesPerColumn * 8 + i;
      if (physics_.cell_uniform(bank, phys, bit,
                                CellPhysics::CellDraw::kTrcd) > threshold) {
        out[i / 8] = static_cast<std::uint8_t>(out[i / 8] ^ (1u << (i % 8)));
        ++stats_.trcd_read_errors;
      }
    }
  }
  return out;
}

Status Module::write(std::uint32_t bank, std::uint32_t column,
                     std::span<const std::uint8_t, kBytesPerColumn> data,
                     double now_ns) {
  (void)now_ns;
  if (auto st = check_responsive(); !st.ok()) return st;
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  if (column >= kColumnsPerRow) {
    return range_error("column", column, kColumnsPerRow)
        .with_bank(static_cast<std::int32_t>(bank));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row < 0) {
    return Error{ErrorCode::kDeviceProtocol,
                 "WR to bank " + std::to_string(bank) + " with no open row"}
        .with_module(profile_.name)
        .with_bank(static_cast<std::int32_t>(bank))
        .with_op("WR");
  }
  const auto phys = static_cast<std::uint32_t>(bs.open_physical_row);
  RowState& rs = bs.open_row_state != nullptr ? *bs.open_row_state
                                              : row_state(bs, bank, phys);
  ensure_initialized(bank, phys, rs);
  std::copy(data.begin(), data.end(),
            rs.data.begin() + column * kBytesPerColumn);
  ++stats_.writes;
  return Status::ok_status();
}

void Module::refresh_physical_row(std::uint32_t bank,
                                  std::uint32_t physical_row, double now_ns) {
  BankState& bs = banks_[bank];
  const auto it = bs.rows.find(physical_row);
  if (it == bs.rows.end()) return;  // never-touched rows have nothing to lose
  sense_and_restore(bank, bs, physical_row, it->second, now_ns);
}

Status Module::refresh(double now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    if (banks_[b].open_physical_row >= 0) {
      return Error{ErrorCode::kDeviceProtocol,
                   "REF with open row in bank " + std::to_string(b)}
          .with_module(profile_.name)
          .with_bank(static_cast<std::int32_t>(b))
          .with_op("REF");
    }
  }
  // Each REF covers rows_per_bank / 8192 consecutive rows in every bank
  // (JESD79-4: 8192 REFs per refresh window); FGR 2x / temperature-
  // controlled refresh widen the stripe so rows are visited more often.
  const double rate = mode_registers_.refresh_rate_multiplier(temp_c_);
  const std::uint32_t stripe = std::max(
      1u, static_cast<std::uint32_t>(
              static_cast<double>(profile_.rows_per_bank) / 8192.0 * rate));
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    for (std::uint32_t r = 0; r < stripe; ++r) {
      // Wrap the stripe: when the cursor sits near the end of the bank (or a
      // mid-cycle MRS widened the stripe) the tail rows are 0, 1, ... --
      // without the modulo they were silently skipped every cycle.
      refresh_physical_row(b, (refresh_cursor_ + r) % profile_.rows_per_bank,
                           now_ns);
    }
  }
  refresh_cursor_ = (refresh_cursor_ + stripe) % profile_.rows_per_bank;
  ++stats_.refreshes;

  if (trr_enabled_ && profile_.has_trr && mode_registers_.trr_enabled) {
    if (const auto m = trr_.on_refresh()) {
      // Refresh the physical neighbors of the suspected aggressor.
      if (m->physical_row > 0) {
        refresh_physical_row(m->bank, m->physical_row - 1, now_ns);
      }
      if (m->physical_row + 1 < profile_.rows_per_bank) {
        refresh_physical_row(m->bank, m->physical_row + 1, now_ns);
      }
      ++stats_.trr_mitigations;
    }
  }
  return Status::ok_status();
}

Status Module::load_mode_register(int mr_index, std::uint32_t operand,
                                  double now_ns) {
  (void)now_ns;
  if (auto st = check_responsive(); !st.ok()) return st;
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    if (banks_[b].open_physical_row >= 0) {
      return Error{ErrorCode::kDeviceProtocol,
                   "MRS with open row in bank " + std::to_string(b)}
          .with_module(profile_.name)
          .with_bank(static_cast<std::int32_t>(b))
          .with_op("MRS");
    }
  }
  auto updated = apply_mrs(mode_registers_, mr_index, operand);
  if (!updated) {
    return std::move(updated).error().with_module(profile_.name).with_op(
        "MRS");
  }
  mode_registers_ = *updated;
  return Status::ok_status();
}

Status Module::hammer_pair(std::uint32_t bank, std::uint32_t logical_row_a,
                           std::uint32_t logical_row_b, std::uint64_t count,
                           double act_to_act_ns, double& now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row >= 0) {
    return Error{ErrorCode::kDeviceProtocol,
                 "hammer loop needs a precharged bank"}
        .with_module(profile_.name)
        .with_bank(static_cast<std::int32_t>(bank))
        .with_op("HAMMER");
  }
  const std::uint32_t pa = mapping_.logical_to_physical(logical_row_a);
  const std::uint32_t pb = mapping_.logical_to_physical(logical_row_b);
  if (pa == pb) {
    return Error{ErrorCode::kInvalidArgument, "hammer rows must differ"}
        .with_module(profile_.name)
        .with_bank_row(static_cast<std::int32_t>(bank), logical_row_a)
        .with_op("HAMMER");
  }

  // Settle both aggressors' pending physics at the loop start, then account
  // the activations in bulk. Because the loop interleaves ACT a / ACT b,
  // each aggressor is re-restored between any two neighbor activations, so
  // the per-interval disturbance on the aggressors themselves is
  // sub-threshold -- absorbing the counts into fresh snapshots at the end is
  // physically equivalent and makes 300K-activation loops O(1).
  RowState& ra = row_state(bs, bank, pa);
  sense_and_restore(bank, bs, pa, ra, now_ns);
  RowState& rb = row_state(bs, bank, pb);
  sense_and_restore(bank, bs, pb, rb, now_ns);

  // Each loop activation leaves the aggressor open for (act_to_act - tRP);
  // longer on-times disturb more per activation ([12]'s on-time axis). At
  // the nominal tRC spacing the factor is exactly 1.
  const double on_ns = act_to_act_ns - 13.5;
  const double weight =
      physics_.on_time_factor(on_ns) * static_cast<double>(count);
  bs.acts[pa] += weight;
  bs.acts[pb] += weight;
  stats_.activates += 2 * count;
  stats_.precharges += 2 * count;
  if (trr_enabled_ && profile_.has_trr) {
    trr_.observe_activates(bank, pa, count);
    trr_.observe_activates(bank, pb, count);
  }
  now_ns += static_cast<double>(2 * count) * act_to_act_ns;

  // Final restore snapshots after the loop.
  sense_and_restore(bank, bs, pa, ra, now_ns);
  sense_and_restore(bank, bs, pb, rb, now_ns);
  return Status::ok_status();
}

Status Module::hammer_single(std::uint32_t bank, std::uint32_t logical_row,
                             std::uint64_t count, double act_to_act_ns,
                             double& now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row >= 0) {
    return Error{ErrorCode::kDeviceProtocol,
                 "hammer loop needs a precharged bank"}
        .with_module(profile_.name)
        .with_bank(static_cast<std::int32_t>(bank))
        .with_op("HAMMER");
  }
  const std::uint32_t phys = mapping_.logical_to_physical(logical_row);

  // Same bulk-accounting argument as hammer_pair: the aggressor itself is
  // re-restored every activation, so settling its physics at the loop
  // boundaries is exact while neighbor disturbance accrues via acts[].
  RowState& rs = row_state(bs, bank, phys);
  sense_and_restore(bank, bs, phys, rs, now_ns);

  const double on_ns = act_to_act_ns - 13.5;
  const double weight =
      physics_.on_time_factor(on_ns) * static_cast<double>(count);
  bs.acts[phys] += weight;
  stats_.activates += count;
  stats_.precharges += count;
  if (trr_enabled_ && profile_.has_trr) {
    trr_.observe_activates(bank, phys, count);
  }
  now_ns += static_cast<double>(count) * act_to_act_ns;

  sense_and_restore(bank, bs, phys, rs, now_ns);
  return Status::ok_status();
}

std::vector<std::uint8_t> Module::debug_row_snapshot(std::uint32_t bank,
                                                     std::uint32_t logical_row,
                                                     double now_ns) {
  BankState& bs = banks_.at(bank);
  const std::uint32_t phys = mapping_.logical_to_physical(logical_row);
  RowState& rs = row_state(bs, bank, phys);
  ensure_initialized(bank, phys, rs);
  sense_and_restore(bank, bs, phys, rs, now_ns);
  return rs.data;
}

}  // namespace vppstudy::dram
