#include "dram/module.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace vppstudy::dram {

using common::Error;
using common::ErrorCode;
using common::Status;

namespace {

/// Skip a whole-row physics pass when the expected flip count is below this.
constexpr double kNegligibleExpectedFlips = 1e-3;

/// Probability floor below which individual hash draws are skipped.
constexpr double kNegligibleCellProbability = 1e-12;

}  // namespace

Error Module::range_error(std::string what, std::uint32_t value,
                          std::uint32_t limit) const {
  return Error{ErrorCode::kInvalidArgument,
               std::move(what) + " " + std::to_string(value) +
                   " out of range (limit " + std::to_string(limit) + ")"}
      .with_module(profile_.name);
}

Module::Module(ModuleProfile profile)
    : profile_(std::move(profile)),
      physics_(profile_),
      mapping_(scheme_for(profile_.mfr), profile_.rows_per_bank,
               profile_.row_repairs),
      trr_(profile_.banks, TrrEngine::Options{}),
      banks_(profile_.banks) {}

Status Module::check_responsive() const {
  if (!responsive()) {
    return Error{ErrorCode::kModuleUnresponsive,
                 "module " + profile_.name +
                     " does not respond: VPP below VPPmin (" +
                     std::to_string(profile_.vppmin_v) + "V)"}
        .with_module(profile_.name)
        .with_vpp_mv(static_cast<std::int64_t>(std::lround(vpp_v_ * 1000.0)));
  }
  return Status::ok_status();
}

double Module::acts_of(const BankState& b,
                       std::uint32_t physical_row) const {
  const auto it = b.acts.find(physical_row);
  return it == b.acts.end() ? 0.0 : it->second;
}

Module::RowState& Module::row_state(BankState& bank_state, std::uint32_t bank,
                                    std::uint32_t physical_row) {
  auto [it, inserted] = bank_state.rows.try_emplace(physical_row);
  RowState& rs = it->second;
  if (inserted) {
    // A never-touched row: treat it as restored "long ago" with power-up
    // content. Its first activation will not see artificial decay because
    // restore_time starts at the current epoch when first sensed.
    rs.restore_time_ns = 0.0;
    rs.restore_vpp = vpp_v_;
    rs.neigh_below_acts = acts_of(bank_state, physical_row - 1);
    rs.neigh_above_acts = acts_of(bank_state, physical_row + 1);
    rs.neigh2_below_acts = acts_of(bank_state, physical_row - 2);
    rs.neigh2_above_acts = acts_of(bank_state, physical_row + 2);
    (void)bank;
  }
  return rs;
}

void Module::ensure_initialized(std::uint32_t bank,
                                std::uint32_t physical_row, RowState& rs) {
  if (rs.initialized) return;
  rs.data.resize(kBytesPerRow);
  // Deterministic power-up content.
  for (std::uint32_t i = 0; i < kBytesPerRow; ++i) {
    rs.data[i] = static_cast<std::uint8_t>(
        common::hash_key({profile_.seed, bank, physical_row, i, 0xb007ULL}));
  }
  rs.initialized = true;
}

void Module::apply_flips(std::uint32_t bank, std::uint32_t physical_row,
                         RowState& rs, double p_hammer, double p_retention,
                         double dt_s) {
  const bool do_hammer = p_hammer > kNegligibleCellProbability;
  const bool do_retention = p_retention > kNegligibleCellProbability;

  // Weak retention cells (Obsv. 14/15): flip when the elapsed time exceeds
  // their (VPP-scaled) retention time.
  std::vector<std::uint32_t> weak_flips;
  if (dt_s > 1e-3) {
    const double scale = physics_.weak_cell_ret_scale(rs.restore_vpp) *
                         std::exp2((80.0 - temp_c_) / 10.0);
    for (const auto& wc : physics_.weak_cells(bank, physical_row)) {
      if (dt_s > wc.t_ret_at_vppmin_s * scale) weak_flips.push_back(wc.bit);
    }
  }
  if (!do_hammer && !do_retention && weak_flips.empty()) return;

  const double hammer_threshold = 1.0 - p_hammer;
  const double retention_threshold = 1.0 - p_retention;

  std::vector<std::uint32_t> flipped_bits;
  const auto consider_bit = [&](std::uint32_t bit, bool hammer, bool retention,
                                bool weak) {
    const std::uint32_t byte = bit / 8;
    const std::uint32_t in_byte = bit % 8;
    const bool stored = ((rs.data[byte] >> in_byte) & 1u) != 0;
    // Only cells holding charge can lose it: a cell whose stored value is
    // the discharged state is immune to both hammering and leakage. Weak
    // retention cells are the exception: the study identifies them under
    // each row's worst-case pattern, which by construction charges them, so
    // the model treats them as charged under every canonical pattern.
    if (!weak &&
        stored != physics_.charged_value(bank, physical_row, bit)) {
      return;
    }
    bool flips = false;
    std::uint64_t flip_kind = 0;
    if (hammer && physics_.cell_uniform(bank, physical_row, bit,
                                        CellPhysics::CellDraw::kHammer) >
                      hammer_threshold) {
      flips = true;
      flip_kind = 1;
    }
    if (!flips && retention &&
        physics_.cell_uniform(bank, physical_row, bit,
                              CellPhysics::CellDraw::kRetention) >
            retention_threshold) {
      flips = true;
      flip_kind = 2;
    }
    if (!flips && weak) {
      flips = true;
      flip_kind = 2;
    }
    if (!flips) return;
    flipped_bits.push_back(bit);
    if (flip_kind == 1) {
      ++stats_.hammer_bit_flips;
    } else {
      ++stats_.retention_bit_flips;
    }
  };

  if (do_hammer || do_retention) {
    for (std::uint32_t bit = 0; bit < kBitsPerRow; ++bit) {
      consider_bit(bit, do_hammer, do_retention, false);
    }
  }
  for (const std::uint32_t bit : weak_flips) {
    if (std::find(flipped_bits.begin(), flipped_bits.end(), bit) ==
        flipped_bits.end()) {
      consider_bit(bit, false, false, true);
    }
  }

  if (flipped_bits.empty()) return;

  // Optional on-die ECC: a single flipped bit inside a 64-bit device word is
  // silently corrected during sensing; multi-bit words are not.
  if (profile_.has_ondie_ecc) {
    std::unordered_map<std::uint32_t, std::uint32_t> flips_per_word;
    for (const auto bit : flipped_bits) ++flips_per_word[bit / 64];
    std::vector<std::uint32_t> surviving;
    surviving.reserve(flipped_bits.size());
    for (const auto bit : flipped_bits) {
      if (flips_per_word[bit / 64] >= 2) {
        surviving.push_back(bit);
      } else {
        ++stats_.ondie_ecc_corrections;
      }
    }
    flipped_bits = std::move(surviving);
  }

  for (const auto bit : flipped_bits) {
    rs.data[bit / 8] = static_cast<std::uint8_t>(rs.data[bit / 8] ^
                                                 (1u << (bit % 8)));
  }
}

void Module::sense_and_restore(std::uint32_t bank, BankState& bs,
                               std::uint32_t physical_row, RowState& rs,
                               double now_ns) {
  if (rs.initialized) {
    const double dt_s = std::max(0.0, (now_ns - rs.restore_time_ns) * 1e-9);
    const double below = acts_of(bs, physical_row - 1) - rs.neigh_below_acts;
    const double above = acts_of(bs, physical_row + 1) - rs.neigh_above_acts;
    const double below2 =
        acts_of(bs, physical_row - 2) - rs.neigh2_below_acts;
    const double above2 =
        acts_of(bs, physical_row + 2) - rs.neigh2_above_acts;
    // Per-aggressor hammer count: a double-sided attack with HC activations
    // per side contributes (HC+HC)/2 = HC (section 4.2's definition).
    // Distance-2 aggressors couple ~30x more weakly (the "blast radius"
    // measured by [11]): they matter only under extreme hammering.
    constexpr double kDistance2Coupling = 1.0 / 30.0;
    const double hc = (below + above) / 2.0 +
                      kDistance2Coupling * (below2 + above2) / 2.0;

    const auto rp = physics_.row_params(bank, physical_row);
    double p_hammer = 0.0;
    if (hc > 0.0) {
      const std::uint8_t signature = rs.data.empty() ? 0 : rs.data[0];
      const int vpp_bucket = static_cast<int>(std::lround(vpp_v_ * 10.0));
      const double pf =
          physics_.pattern_factor(bank, physical_row, signature, vpp_bucket);
      double hc_eff = hc;
      if (measurement_noise_sigma_ > 0.0) {
        hc_eff *= 1.0 + measurement_noise_sigma_ *
                            common::normal_at({profile_.seed ^ noise_stream_,
                                               ++hammer_noise_counter_,
                                               0xc0ffeeULL});
      }
      p_hammer = physics_.hammer_flip_probability(rp, hc_eff, vpp_v_, pf,
                                                  rs.restore_q, temp_c_);
    }
    const std::uint8_t ret_signature = rs.data.empty() ? 0 : rs.data[0];
    const double ret_pf =
        physics_.pattern_retention_factor(bank, physical_row, ret_signature);
    const double p_retention = physics_.retention_flip_probability(
        rp, dt_s * ret_pf, rs.restore_vpp, temp_c_, rs.restore_q);

    const double expected_flips =
        (p_hammer + p_retention) * kBitsPerRow / 2.0;
    if (expected_flips > kNegligibleExpectedFlips || dt_s > 1e-3) {
      apply_flips(bank, physical_row, rs, p_hammer, p_retention, dt_s);
    }
  }
  rs.restore_time_ns = now_ns;
  rs.restore_vpp = vpp_v_;
  rs.restore_q = 1.0;  // adjusted at precharge if tRAS was violated
  rs.neigh_below_acts = acts_of(bs, physical_row - 1);
  rs.neigh_above_acts = acts_of(bs, physical_row + 1);
  rs.neigh2_below_acts = acts_of(bs, physical_row - 2);
  rs.neigh2_above_acts = acts_of(bs, physical_row + 2);
}

Status Module::activate(std::uint32_t bank, std::uint32_t logical_row,
                        double now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  if (logical_row >= profile_.rows_per_bank) {
    return range_error("row", logical_row, profile_.rows_per_bank)
        .with_bank(static_cast<std::int32_t>(bank));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row >= 0) {
    return Error{ErrorCode::kDeviceProtocol,
                 "ACT to bank " + std::to_string(bank) +
                     " which already has an open row"}
        .with_module(profile_.name)
        .with_bank_row(static_cast<std::int32_t>(bank), logical_row)
        .with_op("ACT");
  }
  const std::uint32_t phys = mapping_.logical_to_physical(logical_row);
  bs.acts[phys] += 1.0;
  ++stats_.activates;
  if (trr_enabled_ && profile_.has_trr) trr_.observe_activate(bank, phys);

  RowState& rs = row_state(bs, bank, phys);
  sense_and_restore(bank, bs, phys, rs, now_ns);

  bs.open_physical_row = phys;
  bs.activate_time_ns = now_ns;
  return Status::ok_status();
}

Status Module::precharge(std::uint32_t bank, double now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row >= 0) {
    // A row closed before its charge-restoration completed keeps only part
    // of its charge (tRAS violation; section 6.2).
    const double open_ns = now_ns - bs.activate_time_ns;
    auto it = bs.rows.find(static_cast<std::uint32_t>(bs.open_physical_row));
    if (it != bs.rows.end()) {
      it->second.restore_q = physics_.restore_fraction(open_ns, vpp_v_);
    }
    bs.open_physical_row = -1;
  }
  ++stats_.precharges;
  return Status::ok_status();
}

Status Module::precharge_all(double now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    if (auto st = precharge(b, now_ns); !st.ok()) return st;
    --stats_.precharges;  // count PREA as one operation below
  }
  ++stats_.precharges;
  return Status::ok_status();
}

common::Expected<std::array<std::uint8_t, kBytesPerColumn>> Module::read(
    std::uint32_t bank, std::uint32_t column, double now_ns) {
  if (auto st = check_responsive(); !st.ok()) return std::move(st).error();
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  if (column >= kColumnsPerRow) {
    return range_error("column", column, kColumnsPerRow)
        .with_bank(static_cast<std::int32_t>(bank));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row < 0) {
    return Error{ErrorCode::kDeviceProtocol,
                 "RD to bank " + std::to_string(bank) + " with no open row"}
        .with_module(profile_.name)
        .with_bank(static_cast<std::int32_t>(bank))
        .with_op("RD");
  }
  const auto phys = static_cast<std::uint32_t>(bs.open_physical_row);
  RowState& rs = row_state(bs, bank, phys);
  ensure_initialized(bank, phys, rs);
  ++stats_.reads;

  std::array<std::uint8_t, kBytesPerColumn> out{};
  std::copy_n(rs.data.begin() + column * kBytesPerColumn, kBytesPerColumn,
              out.begin());

  // Reads issued before the row's slowest cells have sensed return wrong
  // values for those cells (the data in the array is unaffected -- the row
  // buffer simply had not settled). A small per-read jitter models the
  // analog noise of marginal timing.
  const double trcd_ns = now_ns - bs.activate_time_ns;
  const auto rp = physics_.row_params(bank, phys);
  const double jitter =
      0.04 * common::normal_at({profile_.seed ^ noise_stream_,
                                ++read_noise_counter_, 0x7eadULL});
  const double p_fail =
      physics_.trcd_fail_probability(rp, trcd_ns + jitter, vpp_v_);
  if (p_fail > kNegligibleCellProbability) {
    const double threshold = 1.0 - p_fail;
    for (std::uint32_t i = 0; i < kBytesPerColumn * 8; ++i) {
      const std::uint32_t bit = column * kBytesPerColumn * 8 + i;
      if (physics_.cell_uniform(bank, phys, bit,
                                CellPhysics::CellDraw::kTrcd) > threshold) {
        out[i / 8] = static_cast<std::uint8_t>(out[i / 8] ^ (1u << (i % 8)));
        ++stats_.trcd_read_errors;
      }
    }
  }
  return out;
}

Status Module::write(std::uint32_t bank, std::uint32_t column,
                     std::span<const std::uint8_t, kBytesPerColumn> data,
                     double now_ns) {
  (void)now_ns;
  if (auto st = check_responsive(); !st.ok()) return st;
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  if (column >= kColumnsPerRow) {
    return range_error("column", column, kColumnsPerRow)
        .with_bank(static_cast<std::int32_t>(bank));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row < 0) {
    return Error{ErrorCode::kDeviceProtocol,
                 "WR to bank " + std::to_string(bank) + " with no open row"}
        .with_module(profile_.name)
        .with_bank(static_cast<std::int32_t>(bank))
        .with_op("WR");
  }
  const auto phys = static_cast<std::uint32_t>(bs.open_physical_row);
  RowState& rs = row_state(bs, bank, phys);
  ensure_initialized(bank, phys, rs);
  std::copy(data.begin(), data.end(),
            rs.data.begin() + column * kBytesPerColumn);
  ++stats_.writes;
  return Status::ok_status();
}

void Module::refresh_physical_row(std::uint32_t bank,
                                  std::uint32_t physical_row, double now_ns) {
  BankState& bs = banks_[bank];
  const auto it = bs.rows.find(physical_row);
  if (it == bs.rows.end()) return;  // never-touched rows have nothing to lose
  sense_and_restore(bank, bs, physical_row, it->second, now_ns);
}

Status Module::refresh(double now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    if (banks_[b].open_physical_row >= 0) {
      return Error{ErrorCode::kDeviceProtocol,
                   "REF with open row in bank " + std::to_string(b)}
          .with_module(profile_.name)
          .with_bank(static_cast<std::int32_t>(b))
          .with_op("REF");
    }
  }
  // Each REF covers rows_per_bank / 8192 consecutive rows in every bank
  // (JESD79-4: 8192 REFs per refresh window); FGR 2x / temperature-
  // controlled refresh widen the stripe so rows are visited more often.
  const double rate = mode_registers_.refresh_rate_multiplier(temp_c_);
  const std::uint32_t stripe = std::max(
      1u, static_cast<std::uint32_t>(
              static_cast<double>(profile_.rows_per_bank) / 8192.0 * rate));
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    for (std::uint32_t r = 0; r < stripe; ++r) {
      refresh_physical_row(b, refresh_cursor_ + r, now_ns);
    }
  }
  refresh_cursor_ = (refresh_cursor_ + stripe) % profile_.rows_per_bank;
  ++stats_.refreshes;

  if (trr_enabled_ && profile_.has_trr && mode_registers_.trr_enabled) {
    if (const auto m = trr_.on_refresh()) {
      // Refresh the physical neighbors of the suspected aggressor.
      if (m->physical_row > 0) {
        refresh_physical_row(m->bank, m->physical_row - 1, now_ns);
      }
      if (m->physical_row + 1 < profile_.rows_per_bank) {
        refresh_physical_row(m->bank, m->physical_row + 1, now_ns);
      }
      ++stats_.trr_mitigations;
    }
  }
  return Status::ok_status();
}

Status Module::load_mode_register(int mr_index, std::uint32_t operand,
                                  double now_ns) {
  (void)now_ns;
  if (auto st = check_responsive(); !st.ok()) return st;
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    if (banks_[b].open_physical_row >= 0) {
      return Error{ErrorCode::kDeviceProtocol,
                   "MRS with open row in bank " + std::to_string(b)}
          .with_module(profile_.name)
          .with_bank(static_cast<std::int32_t>(b))
          .with_op("MRS");
    }
  }
  auto updated = apply_mrs(mode_registers_, mr_index, operand);
  if (!updated) {
    return std::move(updated).error().with_module(profile_.name).with_op(
        "MRS");
  }
  mode_registers_ = *updated;
  return Status::ok_status();
}

Status Module::hammer_pair(std::uint32_t bank, std::uint32_t logical_row_a,
                           std::uint32_t logical_row_b, std::uint64_t count,
                           double act_to_act_ns, double& now_ns) {
  if (auto st = check_responsive(); !st.ok()) return st;
  if (bank >= banks_.size()) {
    return range_error("bank", bank,
                       static_cast<std::uint32_t>(banks_.size()));
  }
  BankState& bs = banks_[bank];
  if (bs.open_physical_row >= 0) {
    return Error{ErrorCode::kDeviceProtocol,
                 "hammer loop needs a precharged bank"}
        .with_module(profile_.name)
        .with_bank(static_cast<std::int32_t>(bank))
        .with_op("HAMMER");
  }
  const std::uint32_t pa = mapping_.logical_to_physical(logical_row_a);
  const std::uint32_t pb = mapping_.logical_to_physical(logical_row_b);
  if (pa == pb) {
    return Error{ErrorCode::kInvalidArgument, "hammer rows must differ"}
        .with_module(profile_.name)
        .with_bank_row(static_cast<std::int32_t>(bank), logical_row_a)
        .with_op("HAMMER");
  }

  // Settle both aggressors' pending physics at the loop start, then account
  // the activations in bulk. Because the loop interleaves ACT a / ACT b,
  // each aggressor is re-restored between any two neighbor activations, so
  // the per-interval disturbance on the aggressors themselves is
  // sub-threshold -- absorbing the counts into fresh snapshots at the end is
  // physically equivalent and makes 300K-activation loops O(1).
  RowState& ra = row_state(bs, bank, pa);
  sense_and_restore(bank, bs, pa, ra, now_ns);
  RowState& rb = row_state(bs, bank, pb);
  sense_and_restore(bank, bs, pb, rb, now_ns);

  // Each loop activation leaves the aggressor open for (act_to_act - tRP);
  // longer on-times disturb more per activation ([12]'s on-time axis). At
  // the nominal tRC spacing the factor is exactly 1.
  const double on_ns = act_to_act_ns - 13.5;
  const double weight =
      physics_.on_time_factor(on_ns) * static_cast<double>(count);
  bs.acts[pa] += weight;
  bs.acts[pb] += weight;
  stats_.activates += 2 * count;
  stats_.precharges += 2 * count;
  if (trr_enabled_ && profile_.has_trr) {
    trr_.observe_activates(bank, pa, count);
    trr_.observe_activates(bank, pb, count);
  }
  now_ns += static_cast<double>(2 * count) * act_to_act_ns;

  // Final restore snapshots after the loop.
  sense_and_restore(bank, bs, pa, ra, now_ns);
  sense_and_restore(bank, bs, pb, rb, now_ns);
  return Status::ok_status();
}

std::vector<std::uint8_t> Module::debug_row_snapshot(std::uint32_t bank,
                                                     std::uint32_t logical_row,
                                                     double now_ns) {
  BankState& bs = banks_.at(bank);
  const std::uint32_t phys = mapping_.logical_to_physical(logical_row);
  RowState& rs = row_state(bs, bank, phys);
  ensure_initialized(bank, phys, rs);
  sense_and_restore(bank, bs, phys, rs, now_ns);
  return rs.data;
}

}  // namespace vppstudy::dram
