#include "dram/data_pattern.hpp"

namespace vppstudy::dram {

std::vector<std::uint8_t> pattern_row(DataPattern p, std::size_t bytes) {
  return std::vector<std::uint8_t>(bytes, pattern_byte(p));
}

std::uint8_t pattern_signature(std::span<const std::uint8_t> row) noexcept {
  return row.empty() ? 0 : row.front();
}

}  // namespace vppstudy::dram
